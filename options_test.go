package relive_test

import (
	"bytes"
	"strings"
	"testing"

	"relive"
)

func observedServer(t *testing.T) *relive.System {
	t.Helper()
	sys, err := relive.ParseSystemString(`
init idle
idle request busy
busy result idle
busy reject idle
`)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestWithRecorder: the options entry point must produce the same
// verdicts as the plain API and fill the attached trace.
func TestWithRecorder(t *testing.T) {
	sys := observedServer(t)
	f := relive.MustParseLTL("G F result")

	tr := relive.NewTrace()
	checker := relive.With(relive.WithRecorder(tr))
	rep, err := checker.CheckAll(sys, f)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := relive.CheckAll(sys, f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied != plain.Satisfied ||
		rep.RelativeLiveness != plain.RelativeLiveness ||
		rep.RelativeSafety != plain.RelativeSafety {
		t.Errorf("verdicts diverge with recorder: %+v vs %+v", rep, plain)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("recorder saw no spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"core.CheckAll", "Lemma 4.3", "Lemma 4.4", "buchi.Intersect"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("phase tree missing %q:\n%s", want, buf.String())
		}
	}
}

// TestWithNoOptions: a bare Checker must behave like the plain API.
func TestWithNoOptions(t *testing.T) {
	sys := observedServer(t)
	f := relive.MustParseLTL("G F result")
	res, err := relive.With().CheckRelativeLiveness(sys, f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("G F result should be a relative liveness property of the server")
	}
}

// TestTraceJSONRoundTripPublic: the public re-exports cover the dump
// cycle used by -trace-json consumers.
func TestTraceJSONRoundTripPublic(t *testing.T) {
	sys := observedServer(t)
	tr := relive.NewTrace()
	if _, err := relive.With(relive.WithRecorder(tr)).CheckSatisfies(sys, relive.MustParseLTL("G F result")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := relive.ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != len(tr.Spans()) {
		t.Errorf("dump has %d spans, trace has %d", len(d.Spans), len(tr.Spans()))
	}
}

// TestWithSimulationCap: disabling the antichain kernels' simulation
// seeding (cap 0) must not change any verdict — the preorder only
// prunes redundant search work. Checked against the plain API on the
// antichain kernel, where the seeding would otherwise run.
func TestWithSimulationCap(t *testing.T) {
	sys := observedServer(t)
	f := relive.MustParseLTL("G F result")

	plain, err := relive.CheckAll(sys, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{0, 1, 1 << 20} {
		rep, err := relive.With(
			relive.WithKernel(relive.KernelAntichain),
			relive.WithSimulationCap(cap),
		).CheckAll(sys, f)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Satisfied != plain.Satisfied ||
			rep.RelativeLiveness != plain.RelativeLiveness ||
			rep.RelativeSafety != plain.RelativeSafety {
			t.Errorf("cap %d: verdicts diverge: %+v vs %+v", cap, rep, plain)
		}
	}
	// The option alone (no WithKernel) must also route through the
	// context path and keep verdicts.
	rep, err := relive.With(relive.WithSimulationCap(0)).CheckAll(sys, f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied != plain.Satisfied {
		t.Errorf("sim-cap-only checker diverges: %+v vs %+v", rep, plain)
	}
}
