// Benchmarks regenerating every figure and claim of the paper (one per
// experiment row in DESIGN.md §4 / EXPERIMENTS.md), plus ablation
// benchmarks comparing the independent decision routes the library
// implements. Run with:
//
//	go test -bench=. -benchmem
package relive_test

import (
	"fmt"
	"math/rand"
	"testing"

	"relive"
	"relive/internal/alphabet"
	"relive/internal/core"
	"relive/internal/exp"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/paper"
	"relive/internal/telecom"
	"relive/internal/ts"
)

// --- E1: Figure 1 → Figure 2 ---

func BenchmarkFig1ReachabilityGraph(b *testing.B) {
	net := paper.Fig1Net()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := net.ReachabilityGraph(64); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: Figure 2, relative liveness of □◇result ---

func BenchmarkFig2RelativeLiveness(b *testing.B) {
	sys, err := paper.Fig2System()
	if err != nil {
		b.Fatal(err)
	}
	p := core.FromFormula(paper.PropertyInfResults(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RelativeLiveness(sys, p)
		if err != nil || !res.Holds {
			b.Fatalf("unexpected verdict %v, %v", res.Holds, err)
		}
	}
}

// --- E3: Figure 3, counterexample extraction ---

func BenchmarkFig3NotRelativeLiveness(b *testing.B) {
	sys := paper.Fig3System()
	p := core.FromFormula(paper.PropertyInfResults(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RelativeLiveness(sys, p)
		if err != nil || res.Holds {
			b.Fatalf("unexpected verdict %v, %v", res.Holds, err)
		}
	}
}

// --- E4: Figure 4, abstract check ---

func BenchmarkFig4AbstractCheck(b *testing.B) {
	sys, err := paper.Fig4System()
	if err != nil {
		b.Fatal(err)
	}
	p := core.FromFormula(paper.PropertyInfResults(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RelativeLiveness(sys, p)
		if err != nil || !res.Holds {
			b.Fatalf("unexpected verdict %v, %v", res.Holds, err)
		}
	}
}

// --- E5: simplicity decision on Figures 2 and 3 ---

func BenchmarkSimplicityCheck(b *testing.B) {
	fig2, err := paper.Fig2System()
	if err != nil {
		b.Fatal(err)
	}
	fig3 := paper.Fig3System()
	for _, tc := range []struct {
		name string
		sys  *ts.System
		want bool
	}{
		{"Fig2-simple", fig2, true},
		{"Fig3-nonsimple", fig3, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			a, err := tc.sys.NFA()
			if err != nil {
				b.Fatal(err)
			}
			h := paper.AbstractionHom(tc.sys)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := h.IsSimple(a)
				if err != nil || res.Simple != tc.want {
					b.Fatalf("unexpected verdict %v, %v", res.Simple, err)
				}
			}
		})
	}
}

// --- E6: Figure 5, the R̄ transformation ---

func BenchmarkRbarTransform(b *testing.B) {
	eta := paper.PropertyInfResults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ltl.Rbar(eta); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: Theorem 5.1 synthesis on the Section 5 example ---

func BenchmarkFairImplementation(b *testing.B) {
	sys := paper.Section5System()
	p := core.FromFormula(paper.Section5Property(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fi, err := core.SynthesizeFairImplementation(sys, p)
		if err != nil {
			b.Fatal(err)
		}
		ok, _, err := fi.AllStronglyFairRunsSatisfy(p)
		if err != nil || !ok {
			b.Fatalf("implementation check failed: %v, %v", ok, err)
		}
	}
}

// --- E8: Theorem 4.5 stand-in, decision-procedure scaling ---

func BenchmarkRelLivenessScaling(b *testing.B) {
	ab := gen.Letters(2)
	p := core.FromFormula(ltl.MustParse("G F a"), nil)
	for _, n := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("states=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			sys := benchSystem(rng, ab, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RelativeLiveness(sys, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRelSafetyScaling(b *testing.B) {
	ab := gen.Letters(2)
	p := core.FromFormula(ltl.MustParse("G F a"), nil)
	for _, n := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("states=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			sys := benchSystem(rng, ab, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RelativeSafety(sys, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFormulaSizeScaling(b *testing.B) {
	ab := gen.Letters(2)
	rng := rand.New(rand.NewSource(8))
	sys := benchSystem(rng, ab, 8)
	for _, d := range []int{1, 2, 3, 4} {
		f := nestedUntilFormula(d)
		p := core.FromFormula(f, nil)
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RelativeLiveness(sys, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: Theorem 4.7 over a random corpus ---

func BenchmarkConjunctionTheorem(b *testing.B) {
	rng := rand.New(rand.NewSource(47))
	ab := gen.Letters(2)
	sys := benchSystem(rng, ab, 6)
	p := core.FromFormula(ltl.MustParse("G (a -> F b)"), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		direct, err := core.Satisfies(sys, p)
		if err != nil {
			b.Fatal(err)
		}
		conj, err := core.SatisfiesViaConjunction(sys, p)
		if err != nil {
			b.Fatal(err)
		}
		if direct.Holds != conj {
			b.Fatal("Theorem 4.7 violated")
		}
	}
}

// --- E10: machine closure route ---

func BenchmarkMachineClosure(b *testing.B) {
	sys, err := paper.Fig2System()
	if err != nil {
		b.Fatal(err)
	}
	p := core.FromFormula(paper.PropertyInfResults(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RelativeLivenessViaMachineClosure(sys, p)
		if err != nil || !res.Holds {
			b.Fatalf("unexpected verdict %v, %v", res.Holds, err)
		}
	}
}

// --- E11: compositional abstraction ---

func BenchmarkCompositionalAbstraction(b *testing.B) {
	for _, n := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			farm, err := exp.WorkerFarm(n)
			if err != nil {
				b.Fatal(err)
			}
			h := relive.ObserveActions(farm.Alphabet(), "req0", "res0")
			eta := ltl.MustParse("G (req0 -> F res0)")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := core.VerifyViaAbstraction(farm, h, eta)
				if err != nil || report.Conclusion != core.ConcreteHolds {
					b.Fatalf("unexpected outcome: %v, %v", report.Conclusion, err)
				}
			}
		})
	}
}

// --- E12: feature-interaction case study ---

func BenchmarkFeatureInteraction(b *testing.B) {
	for _, tc := range []struct {
		name string
		sys  *ts.System
		want core.Conclusion
	}{
		{"well-integrated", telecom.WellIntegrated(), core.ConcreteHolds},
		{"misintegrated", telecom.Misintegrated(), core.Inconclusive},
	} {
		b.Run(tc.name, func(b *testing.B) {
			eta := telecom.HandledProperty()
			h := telecom.Abstraction(tc.sys)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := core.VerifyViaAbstraction(tc.sys, h, eta)
				if err != nil || report.Conclusion != tc.want {
					b.Fatalf("unexpected outcome: %v, %v", report.Conclusion, err)
				}
			}
		})
	}
}

// --- Ablation: the four relative-liveness decision routes ---

func BenchmarkRLAblation(b *testing.B) {
	sys, err := paper.Fig2System()
	if err != nil {
		b.Fatal(err)
	}
	p := core.FromFormula(paper.PropertyInfResults(), nil)
	routes := []struct {
		name string
		run  func() (bool, error)
	}{
		{"lemma4.3", func() (bool, error) {
			r, err := core.RelativeLiveness(sys, p)
			return r.Holds, err
		}},
		{"definition4.1", func() (bool, error) {
			r, err := core.RelativeLivenessDirect(sys, p)
			return r.Holds, err
		}},
		{"machine-closure", func() (bool, error) {
			r, err := core.RelativeLivenessViaMachineClosure(sys, p)
			return r.Holds, err
		}},
		{"cantor-density", func() (bool, error) {
			r, err := core.RelativeLivenessTopological(sys, p)
			return r.Holds, err
		}},
	}
	for _, route := range routes {
		b.Run(route.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				holds, err := route.run()
				if err != nil || !holds {
					b.Fatalf("unexpected verdict %v, %v", holds, err)
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkLTLTranslation(b *testing.B) {
	ab := gen.Letters(2)
	lab := ltl.Canonical(ab)
	for _, tc := range []struct {
		name    string
		formula string
	}{
		{"GFa", "G F a"},
		{"response", "G (a -> F b)"},
		{"nested", "G ((a U b) U (F a))"},
	} {
		f := ltl.MustParse(tc.formula)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ltl.TranslateBuchi(f, lab)
			}
		})
	}
}

func BenchmarkExperimentHarness(b *testing.B) {
	// The full rlbench run, minus the slow scaling sweep.
	quick := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7"}
	for i := 0; i < b.N; i++ {
		for _, e := range exp.All() {
			for _, id := range quick {
				if e.ID != id {
					continue
				}
				r, err := e.Run()
				if err != nil || !r.Passed() {
					b.Fatalf("%s failed: %v", e.ID, err)
				}
			}
		}
	}
}

// --- helpers ---

func benchSystem(rng *rand.Rand, ab *alphabet.Alphabet, n int) *ts.System {
	s := ts.New(ab)
	for i := 0; i < n; i++ {
		s.AddState(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < n; i++ {
		for _, sym := range ab.Symbols() {
			for k := 0; k < 2; k++ {
				if rng.Float64() < 0.45 {
					from, _ := s.LookupState(fmt.Sprintf("s%d", i))
					to, _ := s.LookupState(fmt.Sprintf("s%d", rng.Intn(n)))
					s.AddTransition(from, sym, to)
				}
			}
		}
	}
	init, _ := s.LookupState("s0")
	s.SetInitial(init)
	return s
}

func nestedUntilFormula(depth int) *ltl.Formula {
	f := ltl.Atom("a")
	for i := 0; i < depth; i++ {
		atom := "b"
		if i%2 == 1 {
			atom = "a"
		}
		f = ltl.Until(f, ltl.Eventually(ltl.Atom(atom)))
	}
	return ltl.Globally(f)
}
