package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const concreteText = `
init idle
idle request deciding
deciding accept granted
deciding deny denied
granted result idle
denied reject idle
`

func writeSystem(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sys.ts")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestObserveWithProperty(t *testing.T) {
	path := writeSystem(t, concreteText)
	var out, errOut strings.Builder
	code := run([]string{
		"-sys", path,
		"-observe", "request, result, reject",
		"-ltl", "G F result",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr %s)", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"simple=true",
		"abstract check:     holds=true",
		"Theorem 8.2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestHomSpecAndPrint(t *testing.T) {
	path := writeSystem(t, concreteText)
	var out, errOut strings.Builder
	code := run([]string{
		"-sys", path,
		"-hom", "request=>request, result=>result, reject=>reject, accept=>, deny=>",
		"-print",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "abstract system:") {
		t.Errorf("missing printed abstract system:\n%s", got)
	}
	if !strings.Contains(got, "init ") {
		t.Errorf("abstract system not in text format:\n%s", got)
	}
}

func TestInconclusiveExitOne(t *testing.T) {
	// Broken variant: once locked, never free again.
	broken := `
init F.idle
F.idle request F.waiting
F.waiting yes F.granted
F.waiting no F.denied
F.granted result F.idle
F.denied reject F.idle
F.idle lock L.idle
L.idle request L.waiting
L.waiting no L.denied
L.denied reject L.idle
`
	path := writeSystem(t, broken)
	var out, errOut strings.Builder
	code := run([]string{
		"-sys", path,
		"-observe", "request,result,reject",
		"-ltl", "G F result",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "simple=false") {
		t.Errorf("expected non-simple verdict:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	path := writeSystem(t, concreteText)
	tests := [][]string{
		{},
		{"-sys", path}, // neither -hom nor -observe
		{"-sys", path, "-hom", "a=>x", "-observe", "a"}, // both
		{"-sys", "/nonexistent", "-observe", "a"},
		{"-sys", path, "-hom", "zzz=>x"},                      // unknown letter
		{"-sys", path, "-observe", "request", "-ltl", ")((«"}, // bad formula
	}
	for _, args := range tests {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

func TestPropertyOverHiddenLetterRejected(t *testing.T) {
	path := writeSystem(t, concreteText)
	var out, errOut strings.Builder
	code := run([]string{
		"-sys", path,
		"-observe", "request,result",
		"-ltl", "G F deny", // hidden action
	}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "normal form") {
		t.Errorf("stderr: %s", errOut.String())
	}
}
