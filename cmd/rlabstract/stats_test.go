package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relive"
)

// TestStatsShowsAbstractionPipeline: -stats must print the Corollary
// 8.4 pipeline as a nested phase tree on standard error.
func TestStatsShowsAbstractionPipeline(t *testing.T) {
	path := writeSystem(t, concreteText)
	var out, errOut strings.Builder
	code := run([]string{
		"-sys", path,
		"-observe", "request, result, reject",
		"-ltl", "G F result",
		"-stats",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	tree := errOut.String()
	for _, want := range []string{
		"core.VerifyViaAbstraction",
		"Corollary 8.4",
		"h(L)",
		"simplicity of h",
		"Definition 6.3",
		"R̄(η)",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("-stats tree missing %q:\n%s", want, tree)
		}
	}
}

// TestTraceJSONFile: -trace-json must write a dump readable by the
// public trace reader.
func TestTraceJSONFile(t *testing.T) {
	path := writeSystem(t, concreteText)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut strings.Builder
	code := run([]string{
		"-sys", path,
		"-observe", "request, result, reject",
		"-trace-json", tracePath,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dump, err := relive.ReadTraceJSON(f)
	if err != nil {
		t.Fatalf("trace file is not a valid dump: %v", err)
	}
	if len(dump.Spans) == 0 {
		t.Fatal("trace dump has no spans")
	}
}

// TestMalformedSystemContent: a present-but-unparsable file exits 2.
func TestMalformedSystemContent(t *testing.T) {
	path := writeSystem(t, "not a valid system file at all\n")
	var out, errOut strings.Builder
	if code := run([]string{"-sys", path, "-observe", "a"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 (stderr %s)", code, errOut.String())
	}
}

// TestProfileFlags: the pprof flags must produce non-empty files.
func TestProfileFlags(t *testing.T) {
	path := writeSystem(t, concreteText)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errOut strings.Builder
	code := run([]string{
		"-sys", path,
		"-observe", "request, result, reject",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	for _, p := range []string{cpu, mem} {
		if info, err := os.Stat(p); err != nil {
			t.Errorf("profile not written: %v", err)
		} else if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
