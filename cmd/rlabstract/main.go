// Command rlabstract applies an abstracting homomorphism to a
// transition system, decides its simplicity (Definition 6.3 of Nitsche
// & Wolper, PODC'97), and optionally runs the full abstraction-based
// relative-liveness verification of Corollary 8.4.
//
// Usage:
//
//	rlabstract -sys server.ts -observe request,result,reject [-ltl "G F result"]
//	rlabstract -sys server.ts -hom "yes=>,no=>,request=>request" -print
//
// With -stats the abstraction pipeline's phase tree (durations,
// automaton sizes, paper tags) is printed to standard error;
// -trace-json writes the same spans as JSON ("-" for standard output);
// -cpuprofile/-memprofile write pprof profiles. Exit status: 0 on a
// positive conclusion (or no -ltl), 1 when the property is refuted or
// the verdict is inconclusive, 2 on errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"relive"
	"relive/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("rlabstract", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sysPath := fs.String("sys", "", "transition system file (- for stdin)")
	homSpec := fs.String("hom", "", "homomorphism, e.g. \"a=>x, b=>\" (empty target hides)")
	observe := fs.String("observe", "", "comma-separated actions to keep (hides the rest)")
	ltlText := fs.String("ltl", "", "abstract PLTL property in Σ'-normal form (optional)")
	printAbstract := fs.Bool("print", false, "print the abstract system in text format")
	stats := fs.Bool("stats", false, "print the phase tree (durations, automaton sizes) to stderr")
	traceJSON := fs.String("trace-json", "", "write the span/metric trace as JSON to this file (- for stdout)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *sysPath == "" {
		fmt.Fprintln(stderr, "rlabstract: -sys is required")
		fs.Usage()
		return 2
	}
	if (*homSpec == "") == (*observe == "") {
		fmt.Fprintln(stderr, "rlabstract: exactly one of -hom or -observe is required")
		return 2
	}
	stopProf, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintf(stderr, "rlabstract: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "rlabstract: %v\n", err)
			code = 2
		}
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintf(stderr, "rlabstract: %v\n", err)
			code = 2
		}
	}()
	var trace *relive.Trace
	checker := relive.With()
	if *stats || *traceJSON != "" {
		trace = relive.NewTrace()
		// Stamp a fresh trace ID so the exported dump is self-contained
		// and joinable with rlserve's /debug/checks/{traceID} format.
		trace.SetTraceID(obs.NewTraceID())
		checker = relive.With(relive.WithRecorder(trace))
	}
	defer func() {
		if trace == nil {
			return
		}
		if *stats {
			if err := trace.WriteTree(stderr); err != nil {
				fmt.Fprintf(stderr, "rlabstract: %v\n", err)
				code = 2
			}
		}
		if *traceJSON != "" {
			if err := writeTrace(trace, *traceJSON, stdout); err != nil {
				fmt.Fprintf(stderr, "rlabstract: %v\n", err)
				code = 2
			}
		}
	}()
	sys, err := readSystem(*sysPath)
	if err != nil {
		fmt.Fprintf(stderr, "rlabstract: %v\n", err)
		return 2
	}
	var h *relive.Hom
	if *homSpec != "" {
		h, err = relive.ParseHom(sys.Alphabet(), *homSpec)
		if err != nil {
			fmt.Fprintf(stderr, "rlabstract: %v\n", err)
			return 2
		}
	} else {
		keep := strings.Split(*observe, ",")
		for i := range keep {
			keep[i] = strings.TrimSpace(keep[i])
		}
		h = relive.ObserveActions(sys.Alphabet(), keep...)
	}

	if *ltlText == "" {
		// Without a property, report the abstraction and simplicity only.
		eta := relive.MustParseLTL("true")
		report, err := checker.VerifyViaAbstraction(sys, h, eta)
		if err != nil {
			fmt.Fprintf(stderr, "rlabstract: %v\n", err)
			return 2
		}
		printReport(stdout, sys, report, *printAbstract, false)
		return 0
	}
	eta, err := relive.ParseLTL(*ltlText)
	if err != nil {
		fmt.Fprintf(stderr, "rlabstract: %v\n", err)
		return 2
	}
	report, err := checker.VerifyViaAbstraction(sys, h, eta)
	if err != nil {
		fmt.Fprintf(stderr, "rlabstract: %v\n", err)
		return 2
	}
	printReport(stdout, sys, report, *printAbstract, true)
	if report.Conclusion == relive.ConcreteHolds {
		return 0
	}
	return 1
}

func printReport(w io.Writer, sys *relive.System, r *relive.AbstractionReport, printAbstract, withProperty bool) {
	fmt.Fprintf(w, "abstract states:    %d\n", r.Abstract.NumStates())
	if r.ExtendedMaximal {
		fmt.Fprintf(w, "maximal words:      extended with #* (witness %s)\n",
			r.MaximalWitness.String(r.Abstract.Alphabet()))
	}
	fmt.Fprintf(w, "homomorphism:       simple=%v", r.Simple)
	if !r.Simple {
		fmt.Fprintf(w, " (witness %s)", r.SimplicityWitness.String(sys.Alphabet()))
	}
	fmt.Fprintln(w)
	if withProperty {
		fmt.Fprintf(w, "abstract check:     holds=%v", r.AbstractHolds)
		if !r.AbstractHolds {
			fmt.Fprintf(w, " (bad prefix %s)", r.AbstractBadPrefix.String(r.Abstract.Alphabet()))
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "transformed R̄(η):   %s\n", r.Transformed)
		fmt.Fprintf(w, "conclusion:         %s\n", r.Conclusion)
	}
	if printAbstract {
		fmt.Fprintln(w, "abstract system:")
		fmt.Fprint(w, r.Abstract.FormatString())
	}
}

// writeTrace dumps the trace as JSON to path, with "-" meaning the
// command's standard output.
func writeTrace(trace *relive.Trace, path string, stdout io.Writer) error {
	if path == "-" {
		return trace.WriteJSON(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readSystem(path string) (*relive.System, error) {
	if path == "-" {
		return relive.ParseSystem(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relive.ParseSystem(f)
}
