// Command rlserve runs the checking service: an HTTP/JSON front end
// over the relative-liveness, relative-safety, satisfaction, portfolio,
// and abstraction decision procedures, with per-request cancellation, a
// structural-hash keyed artifact cache, bounded-queue admission
// control, and graceful shutdown.
//
// Usage:
//
//	rlserve -addr :8080
//	rlserve -addr 127.0.0.1:0 -workers 8 -queue 64 -timeout 30s
//	rlserve -addr :8080 -slow 100ms -log-level info -log-json
//	rlserve -version
//
// The bound address is printed to standard output once listening (so
// ":0" can be used in scripts and tests). Every request carries a trace
// ID (caller-supplied traceparent or minted); completed checks land in
// the flight recorder behind /debug/checks, and checks slower than
// -slow keep their full span tree for /debug/checks/{traceID}.
// -log-level enables per-request logging to stderr (debug, info, warn,
// error; default off), -log-json switches it to JSON lines.
// SIGINT/SIGTERM starts a graceful drain: /healthz flips to "draining"
// (503), new checks are rejected, in-flight checks finish, then the
// process exits. See docs/SERVICE.md for the endpoints and wire format.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relive/internal/kernel"
	"relive/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the server and blocks until shutdown. A non-nil ready
// channel receives the bound address once listening (used by tests);
// the same address is always printed to stdout.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("rlserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port, :0 for an ephemeral port)")
	workers := fs.Int("workers", 0, "max concurrent checks (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max queued checks beyond the running ones before shedding with 429 (0 = 64)")
	par := fs.Int("par", 0, "per-check verdict parallelism for CheckAll (0 = serial)")
	timeout := fs.Duration("timeout", 0, "default per-check timeout when the request sets none (0 = 60s)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight checks on shutdown")
	flight := fs.Int("flight", 0, "flight recorder size: completed checks kept for /debug/checks (0 = 256, negative disables tracing)")
	slow := fs.Duration("slow", 0, "slow-check threshold: checks at or over it keep their full span tree for /debug/checks/{traceID} (0 = 250ms)")
	logLevel := fs.String("log-level", "off", "per-request logging to stderr: debug, info, warn, error, or off")
	logJSON := fs.Bool("log-json", false, "log requests as JSON lines instead of text")
	version := fs.Bool("version", false, "print build info as JSON and exit")
	kernelFlag := fs.String("kernel", "auto", "decision-procedure kernel: auto, subset, or antichain")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	kern, err := kernel.Parse(*kernelFlag)
	if err != nil {
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}
	kernel.SetDefault(kern)
	if *version {
		enc := json.NewEncoder(stdout)
		enc.Encode(serve.Build())
		return 0
	}
	logger, err := buildLogger(*logLevel, *logJSON, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Parallelism:    *par,
		DefaultTimeout: *timeout,
		FlightEntries:  *flight,
		SlowThreshold:  *slow,
		Logger:         logger,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "rlserve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "rlserve: %v, draining\n", sig)
	case err := <-errc:
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "rlserve: drain: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "rlserve: shutdown: %v\n", err)
		return 2
	}
	fmt.Fprintln(stderr, "rlserve: drained, exiting")
	return 0
}

// buildLogger constructs the request logger for -log-level/-log-json;
// "off" (the default) disables logging entirely (a nil logger).
func buildLogger(level string, jsonLines bool, w io.Writer) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "off", "":
		return nil, nil
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug, info, warn, error, off)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if jsonLines {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}
