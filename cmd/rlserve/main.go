// Command rlserve runs the checking service: an HTTP/JSON front end
// over the relative-liveness, relative-safety, satisfaction, portfolio,
// and abstraction decision procedures, with per-request cancellation, a
// structural-hash keyed artifact cache, bounded-queue admission
// control, and graceful shutdown.
//
// Usage:
//
//	rlserve -addr :8080
//	rlserve -addr 127.0.0.1:0 -workers 8 -queue 64 -timeout 30s
//	rlserve -addr :8080 -slow 100ms -log-level info -log-json
//	rlserve -addr :8080 -store /var/lib/relive -store-max-bytes 1073741824
//	rlserve -addr :8081 -route http://127.0.0.1:8080,http://127.0.0.1:8082
//	rlserve -version
//
// With -store DIR the server layers a persistent content-addressed
// artifact store under its in-memory caches: completed reports survive
// restarts, and replicas pointing -store at one shared volume reuse
// each other's completed work. With -route the process runs as a shard
// router instead of a backend: requests are spread over the listed
// rlserve backends by the structural hash of their system (consistent
// hashing, bounded load), concurrent identical requests coalesce into
// one proxied check, and unhealthy backends are failed over
// automatically. Answers through the router are bit-identical to
// single-node rlserve.
//
// The bound address is printed to standard output once listening (so
// ":0" can be used in scripts and tests). Every request carries a trace
// ID (caller-supplied traceparent or minted); completed checks land in
// the flight recorder behind /debug/checks, and checks slower than
// -slow keep their full span tree for /debug/checks/{traceID}.
// -log-level enables per-request logging to stderr (debug, info, warn,
// error; default off), -log-json switches it to JSON lines.
// SIGINT/SIGTERM starts a graceful drain: /healthz flips to "draining"
// (503), new checks are rejected, in-flight checks finish, then the
// process exits. See docs/SERVICE.md for the endpoints and wire format.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relive/internal/kernel"
	"relive/internal/serve"
	"relive/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the server and blocks until shutdown. A non-nil ready
// channel receives the bound address once listening (used by tests);
// the same address is always printed to stdout.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("rlserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port, :0 for an ephemeral port)")
	workers := fs.Int("workers", 0, "max concurrent checks (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max queued checks beyond the running ones before shedding with 429 (0 = 64)")
	par := fs.Int("par", 0, "per-check verdict parallelism for CheckAll (0 = serial)")
	timeout := fs.Duration("timeout", 0, "default per-check timeout when the request sets none (0 = 60s)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight checks on shutdown")
	flight := fs.Int("flight", 0, "flight recorder size: completed checks kept for /debug/checks (0 = 256, negative disables tracing)")
	slow := fs.Duration("slow", 0, "slow-check threshold: checks at or over it keep their full span tree for /debug/checks/{traceID} (0 = 250ms)")
	logLevel := fs.String("log-level", "off", "per-request logging to stderr: debug, info, warn, error, or off")
	logJSON := fs.Bool("log-json", false, "log requests as JSON lines instead of text")
	version := fs.Bool("version", false, "print build info as JSON and exit")
	kernelFlag := fs.String("kernel", "auto", "decision-procedure kernel: auto, subset, or antichain")
	simCap := fs.Int("sim-cap", kernel.DefaultSimulationCap, "antichain simulation-seeding cap: max simulation-pair space before the preorder is skipped (0 disables seeding)")
	storeDir := fs.String("store", "", "persistent artifact store directory (empty = no persistence); point replicas at one shared volume to share completed work")
	storeMax := fs.Int64("store-max-bytes", 0, "artifact store size bound before LRU eviction (0 = 256 MiB)")
	storeFsync := fs.Bool("store-fsync", false, "fsync every artifact write (crash durability for the newest artifacts)")
	route := fs.String("route", "", "run as a shard router over these comma-separated rlserve backend URLs instead of serving checks")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	kern, err := kernel.Parse(*kernelFlag)
	if err != nil {
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}
	kernel.SetDefault(kern)
	kernel.SetSimulationCap(*simCap)
	if *version {
		out := struct {
			serve.BuildInfo
			Store string `json:"store,omitempty"`
		}{BuildInfo: serve.Build(), Store: *storeDir}
		enc := json.NewEncoder(stdout)
		enc.Encode(out)
		return 0
	}
	logger, err := buildLogger(*logLevel, *logJSON, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}

	if *route != "" {
		return runRouter(*route, *addr, *drainTimeout, logger, stdout, stderr, ready)
	}

	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMax, Fsync: *storeFsync})
		if err != nil {
			fmt.Fprintf(stderr, "rlserve: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "rlserve: store %s (%d artifacts warm)\n", st.Dir(), st.Stats().Artifacts)
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Parallelism:    *par,
		DefaultTimeout: *timeout,
		FlightEntries:  *flight,
		SlowThreshold:  *slow,
		Logger:         logger,
		Store:          st,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "rlserve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "rlserve: %v, draining\n", sig)
	case err := <-errc:
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "rlserve: drain: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "rlserve: shutdown: %v\n", err)
		return 2
	}
	fmt.Fprintln(stderr, "rlserve: drained, exiting")
	return 0
}

// runRouter runs the process as a shard router over the comma-separated
// backend list until SIGINT/SIGTERM.
func runRouter(backendList, addr string, drainTimeout time.Duration, logger *slog.Logger, stdout, stderr io.Writer, ready chan<- string) int {
	var backends []string
	for _, b := range strings.Split(backendList, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	rt, err := serve.NewRouter(serve.RouterConfig{Backends: backends, Logger: logger})
	if err != nil {
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "rlserve: routing %d backends on %s\n", len(backends), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "rlserve: %v, stopping router\n", sig)
	case err := <-errc:
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "rlserve: shutdown: %v\n", err)
		return 2
	}
	fmt.Fprintln(stderr, "rlserve: router stopped")
	return 0
}

// buildLogger constructs the request logger for -log-level/-log-json;
// "off" (the default) disables logging entirely (a nil logger).
func buildLogger(level string, jsonLines bool, w io.Writer) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "off", "":
		return nil, nil
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug, info, warn, error, off)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if jsonLines {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}
