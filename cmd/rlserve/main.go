// Command rlserve runs the checking service: an HTTP/JSON front end
// over the relative-liveness, relative-safety, satisfaction, portfolio,
// and abstraction decision procedures, with per-request cancellation, a
// structural-hash keyed artifact cache, bounded-queue admission
// control, and graceful shutdown.
//
// Usage:
//
//	rlserve -addr :8080
//	rlserve -addr 127.0.0.1:0 -workers 8 -queue 64 -timeout 30s
//
// The bound address is printed to standard output once listening (so
// ":0" can be used in scripts and tests). SIGINT/SIGTERM starts a
// graceful drain: /healthz flips to "draining" (503), new checks are
// rejected, in-flight checks finish, then the process exits. See
// docs/SERVICE.md for the endpoints and wire format.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"relive/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the server and blocks until shutdown. A non-nil ready
// channel receives the bound address once listening (used by tests);
// the same address is always printed to stdout.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("rlserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port, :0 for an ephemeral port)")
	workers := fs.Int("workers", 0, "max concurrent checks (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max queued checks beyond the running ones before shedding with 429 (0 = 64)")
	par := fs.Int("par", 0, "per-check verdict parallelism for CheckAll (0 = serial)")
	timeout := fs.Duration("timeout", 0, "default per-check timeout when the request sets none (0 = 60s)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight checks on shutdown")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Parallelism:    *par,
		DefaultTimeout: *timeout,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "rlserve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "rlserve: %v, draining\n", sig)
	case err := <-errc:
		fmt.Fprintf(stderr, "rlserve: %v\n", err)
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "rlserve: drain: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "rlserve: shutdown: %v\n", err)
		return 2
	}
	fmt.Fprintln(stderr, "rlserve: drained, exiting")
	return 0
}
