package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunServeAndGracefulShutdown boots the real binary path on an
// ephemeral port, drives a check over TCP, and shuts it down with
// SIGTERM — the lifecycle the CI smoke job and production supervisors
// rely on.
func TestRunServeAndGracefulShutdown(t *testing.T) {
	var out, errOut strings.Builder
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-timeout", "5s"}, &out, &errOut, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never became ready (stderr: %s)", errOut.String())
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	body := `{"system":"init idle\nidle request busy\nbusy result idle\n","ltl":"G F result"}`
	resp, err = http.Post("http://"+addr+"/v1/check/all", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		RelativeLiveness bool `json:"relativeLiveness"`
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check = %d: %s", resp.StatusCode, buf.String())
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.RelativeLiveness {
		t.Fatalf("expected relative liveness to hold: %s", buf.String())
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server never exited after SIGTERM (stderr: %s)", errOut.String())
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Fatalf("stdout missing listen line: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "drained, exiting") {
		t.Fatalf("stderr missing drain line: %q", errOut.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut, nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.256.256.256:99999"}, &out, &errOut, nil); code != 2 {
		t.Fatalf("bad addr exit = %d, want 2", code)
	}
}
