package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"relive"
)

// TestStatsPhaseTree is the golden test for -stats: the phase tree on
// the quickstart server system must show the nested spans for the
// paper's decision procedures, tagged with Lemma 4.3 and Lemma 4.4,
// with durations and automaton sizes.
func TestStatsPhaseTree(t *testing.T) {
	path := writeSystem(t)
	var out, errOut strings.Builder
	code := run([]string{"-sys", path, "-ltl", "G F result", "-stats"}, &out, &errOut)
	if code != 1 { // satisfaction fails on the server example
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	tree := errOut.String()
	for _, want := range []string{
		"core.RelativeLiveness",
		"core.RelativeSafety",
		"core.Satisfies",
		"pre(L∩P)",
		"Lemma 4.3: pre(L) = pre(L∩P)",
		"Lemma 4.4: L ∩ lim(pre(L∩P)) ⊆ P",
		"buchi.Intersect",
		"out_states=",
		"└─", // nested tree rendering
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("-stats tree missing %q:\n%s", want, tree)
		}
	}
	// Closed span lines carry a duration suffix (e.g. "28µs").
	if !regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s)`).MatchString(tree) {
		t.Errorf("-stats tree has no durations:\n%s", tree)
	}
	if !strings.Contains(tree, "counters:") {
		t.Errorf("-stats tree missing counters section:\n%s", tree)
	}
	// -stats must not contaminate stdout (verdicts only).
	if strings.Contains(out.String(), "core.RelativeLiveness") {
		t.Errorf("phase tree leaked to stdout:\n%s", out.String())
	}
}

// TestTraceJSONOutput: -trace-json must emit a dump that round-trips
// through the public reader, both to a file and to stdout via "-".
func TestTraceJSONOutput(t *testing.T) {
	path := writeSystem(t)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut strings.Builder
	code := run([]string{"-sys", path, "-ltl", "G F result", "-check", "rl", "-trace-json", tracePath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errOut.String())
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dump, err := relive.ReadTraceJSON(f)
	if err != nil {
		t.Fatalf("trace file is not a valid dump: %v", err)
	}
	if len(dump.Spans) == 0 {
		t.Fatal("trace dump has no spans")
	}
	found := false
	for _, s := range dump.Spans {
		if s.Name == "core.RelativeLiveness" {
			found = true
			if s.DurationNS < 0 {
				t.Error("core.RelativeLiveness span never closed")
			}
		}
	}
	if !found {
		t.Error("dump missing core.RelativeLiveness span")
	}

	// "-" writes the same JSON to stdout, after the verdict lines.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-sys", path, "-ltl", "G F result", "-check", "rl", "-q", "-trace-json", "-"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errOut.String())
	}
	if _, err := relive.ReadTraceJSON(strings.NewReader(out.String())); err != nil {
		t.Fatalf("-trace-json - did not emit a valid dump: %v\n%s", err, out.String())
	}
}

// TestProfileFlags: -cpuprofile/-memprofile must write non-empty pprof
// files and a bad profile path must exit 2.
func TestProfileFlags(t *testing.T) {
	path := writeSystem(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errOut strings.Builder
	code := run([]string{"-sys", path, "-ltl", "G F result", "-check", "rl",
		"-cpuprofile", cpu, "-memprofile", mem}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errOut.String())
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
		} else if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if code := run([]string{"-sys", path, "-ltl", "G F result",
		"-cpuprofile", filepath.Join(dir, "no/such/dir/cpu.pprof")}, &out, &errOut); code != 2 {
		t.Errorf("bad -cpuprofile path: exit = %d, want 2", code)
	}
}

// TestMalformedSystemContent: a file that exists but does not parse
// must exit 2, not crash or report a verdict.
func TestMalformedSystemContent(t *testing.T) {
	for _, text := range []string{
		"this is not a transition system\n",
		"init\n",                // init without a state
		"init s0\ns0 a\n",       // transition missing target
		"s0 a s1\n",             // no init line
		"init s0\ns0 a s1 s2\n", // too many fields
	} {
		path := filepath.Join(t.TempDir(), "bad.ts")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errOut strings.Builder
		if code := run([]string{"-sys", path, "-ltl", "G F a"}, &out, &errOut); code != 2 {
			t.Errorf("malformed input %q: exit = %d, want 2 (stderr: %s)", text, code, errOut.String())
		}
	}
}
