// Command rlcheck decides relative liveness, relative safety and plain
// satisfaction of a PLTL property over a transition system.
//
// Usage:
//
//	rlcheck -sys server.ts -ltl "G F result" [-check rl|rs|sat|all]
//
// The system file uses the line format "init <state>" plus
// "<from> <action> <to>" lines ("-" reads standard input). Exit status:
// 0 when every requested check holds, 1 when one fails, 2 on errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"relive"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rlcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sysPath := fs.String("sys", "", "transition system file (- for stdin)")
	ltlText := fs.String("ltl", "", "PLTL property, e.g. \"G F result\" or \"□◇result\"")
	omegaText := fs.String("omega", "", "ω-regular property \"U ( V ) ^w\" instead of -ltl")
	check := fs.String("check", "all", "which check to run: rl, rs, sat, or all")
	quiet := fs.Bool("q", false, "only set the exit status, print nothing")
	jsonOut := fs.Bool("json", false, "emit all three verdicts as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *sysPath == "" || (*ltlText == "") == (*omegaText == "") {
		fmt.Fprintln(stderr, "rlcheck: -sys and exactly one of -ltl / -omega are required")
		fs.Usage()
		return 2
	}
	sys, err := readSystem(*sysPath)
	if err != nil {
		fmt.Fprintf(stderr, "rlcheck: %v\n", err)
		return 2
	}
	var property relive.Property
	var propName string
	if *ltlText != "" {
		f, err := relive.ParseLTL(*ltlText)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		property = relive.PropertyFromLTL(f, nil)
		propName = f.String()
	} else {
		b, err := relive.ParseOmegaRegex(sys.Alphabet(), *omegaText)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		property = relive.PropertyFromBuchi(b)
		propName = *omegaText
	}
	_ = propName // witnesses already name the actions; the label is for future use
	if *jsonOut {
		report, err := relive.CheckAllProperty(sys, property)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		if report.Satisfied {
			return 0
		}
		return 1
	}

	allHold := true
	report := func(name, verdict string, holds bool, witness string) {
		allHold = allHold && holds
		if *quiet {
			return
		}
		fmt.Fprintf(stdout, "%-18s %s", name, verdict)
		if !holds && witness != "" {
			fmt.Fprintf(stdout, "  (witness: %s)", witness)
		}
		fmt.Fprintln(stdout)
	}
	verdict := func(holds bool) string {
		if holds {
			return "HOLDS"
		}
		return "FAILS"
	}

	runRL := *check == "rl" || *check == "all"
	runRS := *check == "rs" || *check == "all"
	runSat := *check == "sat" || *check == "all"
	if !runRL && !runRS && !runSat {
		fmt.Fprintf(stderr, "rlcheck: unknown -check %q\n", *check)
		return 2
	}
	if runRL {
		res, err := relive.CheckRelativeLivenessProperty(sys, property)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		report("relative liveness", verdict(res.Holds), res.Holds,
			res.BadPrefix.String(sys.Alphabet()))
	}
	if runRS {
		res, err := relive.CheckRelativeSafetyProperty(sys, property)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		witness := ""
		if !res.Holds {
			witness = res.Violation.String(sys.Alphabet())
		}
		report("relative safety", verdict(res.Holds), res.Holds, witness)
	}
	if runSat {
		res, err := relive.CheckSatisfiesProperty(sys, property)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		witness := ""
		if !res.Holds {
			witness = res.Counterexample.String(sys.Alphabet())
		}
		report("satisfaction", verdict(res.Holds), res.Holds, witness)
	}
	if allHold {
		return 0
	}
	return 1
}

func readSystem(path string) (*relive.System, error) {
	if path == "-" {
		return relive.ParseSystem(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relive.ParseSystem(f)
}
