// Command rlcheck decides relative liveness, relative safety and plain
// satisfaction of a PLTL property over a transition system.
//
// Usage:
//
//	rlcheck -sys server.ts -ltl "G F result" [-check rl|rs|sat|all]
//	rlcheck -sys server.ts -ltl "G F result" -stats
//	rlcheck -sys server.ts -ltl "G F result" -trace-json trace.json
//
// The system file uses the line format "init <state>" plus
// "<from> <action> <to>" lines ("-" reads standard input). With -stats
// a nested phase tree (per-phase durations and automaton sizes, tagged
// with the paper's lemmas) is printed to standard error; -trace-json
// writes the same spans and metrics as JSON ("-" for standard output).
// -cpuprofile and -memprofile write pprof profiles. Exit status:
// 0 when every requested check holds, 1 when one fails, 2 on errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"relive"
	"relive/internal/kernel"
	"relive/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("rlcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sysPath := fs.String("sys", "", "transition system file (- for stdin)")
	ltlText := fs.String("ltl", "", "PLTL property, e.g. \"G F result\" or \"□◇result\"")
	omegaText := fs.String("omega", "", "ω-regular property \"U ( V ) ^w\" instead of -ltl")
	check := fs.String("check", "all", "which check to run: rl, rs, sat, or all")
	mode := fs.String("mode", "direct", "direct (Section 4 checks), fair-abstract (all fair runs satisfy -ltl through -hom), or statistical (sampled confidence-interval verdict)")
	homSpec := fs.String("hom", "", "abstracting homomorphism \"a=>x, b=>\" (fair-abstract mode)")
	fairnessFlag := fs.String("fairness", "strong", "fairness notion for fair-abstract mode: strong or weak")
	seed := fs.Int64("seed", 0, "statistical mode: sampling seed (same seed + budget replays byte-identically)")
	samples := fs.Int("samples", 0, "statistical mode: number of random walks (0 = default 400)")
	steps := fs.Int("steps", 0, "statistical mode: steps per walk (0 = default 256)")
	confidence := fs.Float64("confidence", 0, "statistical mode: two-sided CI level (0 = default 0.99)")
	quiet := fs.Bool("q", false, "only set the exit status, print nothing")
	jsonOut := fs.Bool("json", false, "emit all three verdicts as JSON")
	stats := fs.Bool("stats", false, "print the phase tree (durations, automaton sizes) to stderr")
	traceJSON := fs.String("trace-json", "", "write the span/metric trace as JSON to this file (- for stdout)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	kernelFlag := fs.String("kernel", "auto", "decision-procedure kernel: auto, subset, or antichain")
	simCap := fs.Int("sim-cap", kernel.DefaultSimulationCap, "antichain simulation-seeding cap: max simulation-pair space before the preorder is skipped (0 disables seeding)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *sysPath == "" || (*ltlText == "") == (*omegaText == "") {
		fmt.Fprintln(stderr, "rlcheck: -sys and exactly one of -ltl / -omega are required")
		fs.Usage()
		return 2
	}
	kern, err := kernel.Parse(*kernelFlag)
	if err != nil {
		fmt.Fprintf(stderr, "rlcheck: %v\n", err)
		return 2
	}
	kernel.SetDefault(kern)
	kernel.SetSimulationCap(*simCap)
	stopProf, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintf(stderr, "rlcheck: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			code = 2
		}
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			code = 2
		}
	}()

	var trace *relive.Trace
	checker := relive.With()
	if *stats || *traceJSON != "" {
		trace = relive.NewTrace()
		// Stamp a fresh trace ID so the exported dump is self-contained
		// and joinable with rlserve's /debug/checks/{traceID} format.
		trace.SetTraceID(obs.NewTraceID())
		checker = relive.With(relive.WithRecorder(trace))
	}
	defer func() {
		if trace == nil {
			return
		}
		if *stats {
			if err := trace.WriteTree(stderr); err != nil {
				fmt.Fprintf(stderr, "rlcheck: %v\n", err)
				code = 2
			}
		}
		if *traceJSON != "" {
			if err := writeTrace(trace, *traceJSON, stdout); err != nil {
				fmt.Fprintf(stderr, "rlcheck: %v\n", err)
				code = 2
			}
		}
	}()

	sys, err := readSystem(*sysPath)
	if err != nil {
		fmt.Fprintf(stderr, "rlcheck: %v\n", err)
		return 2
	}
	switch *mode {
	case "direct":
	case "fair-abstract":
		if *ltlText == "" || *homSpec == "" {
			fmt.Fprintln(stderr, "rlcheck: -mode fair-abstract requires -ltl and -hom")
			return 2
		}
		return runFairAbstract(checker, sys, *ltlText, *homSpec, *fairnessFlag, *jsonOut, *quiet, stdout, stderr)
	case "statistical":
		sopts := []relive.Option{
			relive.WithSeed(*seed),
			relive.WithSampleBudget(*samples, *steps),
			relive.WithConfidence(*confidence),
		}
		if trace != nil {
			sopts = append(sopts, relive.WithRecorder(trace))
		}
		return runStatistical(relive.With(sopts...), sys, *ltlText, *omegaText, *jsonOut, *quiet, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "rlcheck: unknown -mode %q\n", *mode)
		return 2
	}
	var property relive.Property
	if *ltlText != "" {
		f, err := relive.ParseLTL(*ltlText)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		property = relive.PropertyFromLTL(f, nil)
	} else {
		b, err := relive.ParseOmegaRegex(sys.Alphabet(), *omegaText)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		property = relive.PropertyFromBuchi(b)
	}
	if *jsonOut {
		report, err := checker.CheckAllProperty(sys, property)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		if report.Satisfied {
			return 0
		}
		return 1
	}

	allHold := true
	report := func(name, verdict string, holds bool, witness string) {
		allHold = allHold && holds
		if *quiet {
			return
		}
		fmt.Fprintf(stdout, "%-18s %s", name, verdict)
		if !holds && witness != "" {
			fmt.Fprintf(stdout, "  (witness: %s)", witness)
		}
		fmt.Fprintln(stdout)
	}
	verdict := func(holds bool) string {
		if holds {
			return "HOLDS"
		}
		return "FAILS"
	}

	runRL := *check == "rl" || *check == "all"
	runRS := *check == "rs" || *check == "all"
	runSat := *check == "sat" || *check == "all"
	if !runRL && !runRS && !runSat {
		fmt.Fprintf(stderr, "rlcheck: unknown -check %q\n", *check)
		return 2
	}
	if runRL {
		res, err := checker.CheckRelativeLivenessProperty(sys, property)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		report("relative liveness", verdict(res.Holds), res.Holds,
			res.BadPrefix.String(sys.Alphabet()))
	}
	if runRS {
		res, err := checker.CheckRelativeSafetyProperty(sys, property)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		witness := ""
		if !res.Holds {
			witness = res.Violation.String(sys.Alphabet())
		}
		report("relative safety", verdict(res.Holds), res.Holds, witness)
	}
	if runSat {
		res, err := checker.CheckSatisfiesProperty(sys, property)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		witness := ""
		if !res.Holds {
			witness = res.Counterexample.String(sys.Alphabet())
		}
		report("satisfaction", verdict(res.Holds), res.Holds, witness)
	}
	if allHold {
		return 0
	}
	return 1
}

// runFairAbstract decides "all fair runs satisfy the property through
// the homomorphism" — the fairness-within-abstraction verdict class.
func runFairAbstract(checker *relive.Checker, sys *relive.System, ltlText, homSpec, fairnessName string, jsonOut, quiet bool, stdout, stderr io.Writer) int {
	f, err := relive.ParseLTL(ltlText)
	if err != nil {
		fmt.Fprintf(stderr, "rlcheck: %v\n", err)
		return 2
	}
	h, err := relive.ParseHom(sys.Alphabet(), homSpec)
	if err != nil {
		fmt.Fprintf(stderr, "rlcheck: %v\n", err)
		return 2
	}
	kind, err := relive.ParseFairnessKind(fairnessName)
	if err != nil {
		fmt.Fprintf(stderr, "rlcheck: %v\n", err)
		return 2
	}
	report, err := checker.CheckFairAbstract(sys, h, kind, f)
	if err != nil {
		fmt.Fprintf(stderr, "rlcheck: %v\n", err)
		return 2
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
	} else if !quiet {
		if report.Holds {
			suffix := ""
			if report.Vacuous {
				suffix = "  (vacuous: no infinite behavior)"
			}
			fmt.Fprintf(stdout, "%-18s HOLDS%s\n", "fair-abstract", suffix)
		} else {
			fmt.Fprintf(stdout, "%-18s FAILS  (violating fair run: %s (%s)^w -> abstract %s (%s)^w)\n",
				"fair-abstract",
				joinWords(report.ViolationPrefix), joinWords(report.ViolationLoop),
				joinWords(report.AbstractPrefix), joinWords(report.AbstractLoop))
		}
	}
	if report.Holds {
		return 0
	}
	return 1
}

// runStatistical runs the sampling engine: a confidence-interval
// verdict ("holds" is CI-bounded, never exact; "fails" carries a sound
// sampled counterexample; "inconclusive" means no walk settled within
// the step budget). Exit status: 0 holds, 1 fails or inconclusive.
func runStatistical(checker *relive.Checker, sys *relive.System, ltlText, omegaText string, jsonOut, quiet bool, stdout, stderr io.Writer) int {
	var property relive.Property
	if ltlText != "" {
		f, err := relive.ParseLTL(ltlText)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		property = relive.PropertyFromLTL(f, nil)
	} else {
		b, err := relive.ParseOmegaRegex(sys.Alphabet(), omegaText)
		if err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
		property = relive.PropertyFromBuchi(b)
	}
	report, err := checker.CheckStatisticalProperty(sys, property)
	if err != nil {
		fmt.Fprintf(stderr, "rlcheck: %v\n", err)
		return 2
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "rlcheck: %v\n", err)
			return 2
		}
	} else if !quiet {
		switch report.Verdict {
		case relive.StatVerdictHolds:
			suffix := ""
			if report.Vacuous {
				suffix = "  (vacuous: no infinite behavior)"
			} else {
				suffix = fmt.Sprintf("  (statistical: %d/%d samples, P >= %.4f at %.0f%% confidence)",
					report.Hits, report.Settled, report.CILow, report.Confidence*100)
			}
			fmt.Fprintf(stdout, "%-18s HOLDS%s\n", "statistical", suffix)
		case relive.StatVerdictFails:
			fmt.Fprintf(stdout, "%-18s FAILS  (sampled counterexample: %s (%s)^w; estimate %.4f in [%.4f, %.4f])\n",
				"statistical",
				joinWords(report.Counterexample), joinWords(report.CounterexampleLoop),
				report.Estimate, report.CILow, report.CIHigh)
		default:
			fmt.Fprintf(stdout, "%-18s INCONCLUSIVE  (no walk settled within %d steps; raise -steps)\n",
				"statistical", report.Steps)
		}
	}
	if report.Holds {
		return 0
	}
	return 1
}

func joinWords(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += n
	}
	return out
}

// writeTrace dumps the trace as JSON to path, with "-" meaning the
// command's standard output.
func writeTrace(trace *relive.Trace, path string, stdout io.Writer) error {
	if path == "-" {
		return trace.WriteJSON(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readSystem(path string) (*relive.System, error) {
	if path == "-" {
		return relive.ParseSystem(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relive.ParseSystem(f)
}
