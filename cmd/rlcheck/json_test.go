package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONOutput(t *testing.T) {
	path := writeSystem(t)
	var out, errOut strings.Builder
	code := run([]string{"-sys", path, "-ltl", "G F result", "-json"}, &out, &errOut)
	if code != 1 { // property not satisfied outright
		t.Fatalf("exit = %d, want 1 (stderr %s)", code, errOut.String())
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if decoded["relativeLiveness"] != true {
		t.Errorf("relativeLiveness = %v, want true", decoded["relativeLiveness"])
	}
	if decoded["satisfied"] != false {
		t.Errorf("satisfied = %v, want false", decoded["satisfied"])
	}
	if decoded["relativeSafety"] != false {
		t.Errorf("relativeSafety = %v, want false", decoded["relativeSafety"])
	}
	if _, ok := decoded["counterexample"]; !ok {
		t.Error("counterexample missing from JSON")
	}
	if _, ok := decoded["badPrefix"]; ok {
		t.Error("badPrefix present although relative liveness holds")
	}
}

func TestJSONSatisfiedExitZero(t *testing.T) {
	path := writeSystem(t)
	var out, errOut strings.Builder
	// "F request" holds of every behavior (requests drive the loop).
	code := run([]string{"-sys", path, "-ltl", "F request", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), `"satisfied": true`) {
		t.Errorf("output: %s", out.String())
	}
}
