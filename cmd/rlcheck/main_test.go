package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const serverText = `
init idle
idle request busy
busy result idle
busy reject idle
`

func writeSystem(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sys.ts")
	if err := os.WriteFile(path, []byte(serverText), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAllChecks(t *testing.T) {
	path := writeSystem(t)
	var out, errOut strings.Builder
	code := run([]string{"-sys", path, "-ltl", "G F result"}, &out, &errOut)
	// Satisfaction fails, so overall exit is 1.
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"relative liveness  HOLDS",
		"relative safety    FAILS",
		"satisfaction       FAILS",
		"witness",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSingleCheckExitZero(t *testing.T) {
	path := writeSystem(t)
	var out, errOut strings.Builder
	if code := run([]string{"-sys", path, "-ltl", "G F result", "-check", "rl"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "HOLDS") {
		t.Errorf("output: %s", out.String())
	}
}

func TestQuietMode(t *testing.T) {
	path := writeSystem(t)
	var out, errOut strings.Builder
	if code := run([]string{"-sys", path, "-ltl", "G F result", "-check", "rl", "-q"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if out.String() != "" {
		t.Errorf("quiet mode printed: %q", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	path := writeSystem(t)
	tests := [][]string{
		{},                                    // no flags
		{"-sys", path},                        // missing -ltl
		{"-ltl", "G F a"},                     // missing -sys
		{"-sys", "/nonexistent", "-ltl", "a"}, // bad file
		{"-sys", path, "-ltl", "(("},          // bad formula
		{"-sys", path, "-ltl", "a", "-check", "x"}, // bad mode
	}
	for _, args := range tests {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

func TestStdinInput(t *testing.T) {
	// "-" reads stdin; emulate via a pipe around os.Stdin.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = orig }()
	go func() {
		w.WriteString(serverText)
		w.Close()
	}()
	var out, errOut strings.Builder
	if code := run([]string{"-sys", "-", "-ltl", "G F result", "-check", "rl"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
}

func TestOmegaProperty(t *testing.T) {
	path := writeSystem(t)
	var out, errOut strings.Builder
	// The ω-regular property "(request (result|reject))^ω" holds of all
	// behaviors: satisfaction, RL and RS all succeed.
	code := run([]string{"-sys", path, "-omega", "( request ( result | reject ) ) ^w"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr %s)\n%s", code, errOut.String(), out.String())
	}
	if strings.Count(out.String(), "HOLDS") != 3 {
		t.Errorf("expected three HOLDS:\n%s", out.String())
	}
	// -ltl and -omega are mutually exclusive.
	if code := run([]string{"-sys", path, "-ltl", "a", "-omega", "( a ) ^w"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	// Bad ω-expression.
	if code := run([]string{"-sys", path, "-omega", "definitely not omega"}, &out, &errOut); code != 2 {
		t.Errorf("bad omega exit = %d, want 2", code)
	}
}
