// Command rlbench runs the experiment harness reproducing every figure
// and in-text claim of Nitsche & Wolper (PODC'97) and prints a
// paper-vs-measured report (the generator behind EXPERIMENTS.md).
//
// Usage:
//
//	rlbench            # run all experiments
//	rlbench -run E5    # run one experiment
//	rlbench -md        # emit Markdown instead of plain text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"relive/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rlbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("run", "", "run a single experiment by id (e.g. E5)")
	markdown := fs.Bool("md", false, "emit Markdown tables")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var results []exp.Result
	if *only != "" {
		found := false
		for _, e := range exp.All() {
			if e.ID == *only {
				found = true
				r, err := e.Run()
				if err != nil {
					fmt.Fprintf(stderr, "rlbench: %s: %v\n", e.ID, err)
					return 2
				}
				results = append(results, r)
			}
		}
		if !found {
			fmt.Fprintf(stderr, "rlbench: unknown experiment %q\n", *only)
			return 2
		}
	} else {
		var err error
		results, err = exp.RunAll()
		if err != nil {
			fmt.Fprintf(stderr, "rlbench: %v\n", err)
			return 2
		}
	}

	allPassed := true
	for _, r := range results {
		if *markdown {
			printMarkdown(stdout, r)
		} else {
			fmt.Fprintln(stdout, r)
		}
		allPassed = allPassed && r.Passed()
	}
	if !allPassed {
		fmt.Fprintln(stdout, "RESULT: some observations deviate from the paper")
		return 1
	}
	fmt.Fprintf(stdout, "RESULT: all %d experiments match the paper\n", len(results))
	return 0
}

func printMarkdown(w io.Writer, r exp.Result) {
	fmt.Fprintf(w, "### %s (%s): %s\n\n", r.ID, r.Artifact, r.Title)
	fmt.Fprintln(w, "| Observation | Measured | Paper | Match |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, o := range r.Observations {
		match := ""
		if o.Claim != "" {
			if o.Match {
				match = "✓"
			} else {
				match = "✗"
			}
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
			escapePipes(o.Name), escapePipes(o.Value), escapePipes(o.Claim), match)
	}
	fmt.Fprintln(w)
}

func escapePipes(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
