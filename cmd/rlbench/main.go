// Command rlbench runs the experiment harness reproducing every figure
// and in-text claim of Nitsche & Wolper (PODC'97) and prints a
// paper-vs-measured report (the generator behind EXPERIMENTS.md).
//
// Usage:
//
//	rlbench                          # run all experiments
//	rlbench -run E5                  # run one experiment
//	rlbench -md                      # emit Markdown instead of plain text
//	rlbench -metrics-json BENCH.json # also write per-case metrics JSON
//	rlbench -parallel 4              # run experiments on 4 workers
//
// -parallel runs independent experiments concurrently on a bounded
// worker pool (0 = GOMAXPROCS, 1 = serial); reports are printed in
// registry order either way, and per-experiment durations still measure
// each experiment's own wall clock.
//
// -metrics-json writes one record per experiment with its wall-clock
// duration and every observation (automaton sizes included), so
// BENCH_*.json files can track sizes and timings across PRs. A final
// synthetic PHASES record carries p50/p90/p99/max latency per pipeline
// phase (trim, property→Büchi, pre(L∩P), emptiness) over -phase-trials
// instrumented checks (0 disables it). -cpuprofile/-memprofile write
// pprof profiles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"relive/internal/exp"
	"relive/internal/kernel"
	"relive/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// caseMetrics is one experiment in the -metrics-json output; the schema
// is append-only so BENCH_*.json files stay comparable across PRs
// (scripts/benchcmp reads `go test -bench` text, not this JSON, so new
// fields cannot break it). Phases is only set on the synthetic PHASES
// record carrying per-phase latency quantiles.
type caseMetrics struct {
	ID           string               `json:"id"`
	Artifact     string               `json:"artifact"`
	Title        string               `json:"title"`
	DurationNS   int64                `json:"duration_ns"`
	Passed       bool                 `json:"passed"`
	Observations []observationMetric  `json:"observations"`
	Phases       []exp.PhaseQuantiles `json:"phases,omitempty"`
}

type observationMetric struct {
	Name  string `json:"name"`
	Value string `json:"value"`
	Claim string `json:"claim,omitempty"`
	Match bool   `json:"match"`
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("rlbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("run", "", "run a single experiment by id (e.g. E5)")
	markdown := fs.Bool("md", false, "emit Markdown tables")
	metricsJSON := fs.String("metrics-json", "", "write per-case metrics (durations, sizes) as JSON to this file (- for stdout)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	parallel := fs.Int("parallel", 1, "worker-pool size for running experiments concurrently (0 = GOMAXPROCS)")
	phaseTrials := fs.Int("phase-trials", 25, "instrumented checks behind the PHASES record in -metrics-json (0 disables)")
	kernelFlag := fs.String("kernel", "auto", "decision-procedure kernel: auto, subset, or antichain")
	simCap := fs.Int("sim-cap", kernel.DefaultSimulationCap, "antichain simulation-seeding cap: max simulation-pair space before the preorder is skipped (0 disables seeding)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	kern, err := kernel.Parse(*kernelFlag)
	if err != nil {
		fmt.Fprintf(stderr, "rlbench: %v\n", err)
		return 2
	}
	kernel.SetDefault(kern)
	kernel.SetSimulationCap(*simCap)
	stopProf, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintf(stderr, "rlbench: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "rlbench: %v\n", err)
			code = 2
		}
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintf(stderr, "rlbench: %v\n", err)
			code = 2
		}
	}()

	var selected []exp.Experiment
	for _, e := range exp.All() {
		if *only != "" && e.ID != *only {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		fmt.Fprintf(stderr, "rlbench: unknown experiment %q\n", *only)
		return 2
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	results := make([]exp.Result, len(selected))
	elapsed := make([]time.Duration, len(selected))
	errs := make([]error, len(selected))
	if workers <= 1 {
		for i, e := range selected {
			start := time.Now()
			results[i], errs[i] = e.Run()
			elapsed[i] = time.Since(start)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					start := time.Now()
					results[i], errs[i] = selected[i].Run()
					elapsed[i] = time.Since(start)
				}
			}()
		}
		for i := range selected {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	var metrics []caseMetrics
	for i, e := range selected {
		if errs[i] != nil {
			fmt.Fprintf(stderr, "rlbench: %s: %v\n", e.ID, errs[i])
			return 2
		}
		metrics = append(metrics, toMetrics(results[i], elapsed[i]))
	}
	if *metricsJSON != "" {
		if *phaseTrials > 0 {
			phases, err := phaseMetrics(*phaseTrials)
			if err != nil {
				fmt.Fprintf(stderr, "rlbench: %v\n", err)
				return 2
			}
			metrics = append(metrics, phases)
		}
		if err := writeMetrics(metrics, *metricsJSON, stdout); err != nil {
			fmt.Fprintf(stderr, "rlbench: %v\n", err)
			return 2
		}
	}

	allPassed := true
	for _, r := range results {
		if *markdown {
			printMarkdown(stdout, r)
		} else {
			fmt.Fprintln(stdout, r)
		}
		allPassed = allPassed && r.Passed()
	}
	if !allPassed {
		fmt.Fprintln(stdout, "RESULT: some observations deviate from the paper")
		return 1
	}
	fmt.Fprintf(stdout, "RESULT: all %d experiments match the paper\n", len(results))
	return 0
}

func toMetrics(r exp.Result, elapsed time.Duration) caseMetrics {
	m := caseMetrics{
		ID:         r.ID,
		Artifact:   r.Artifact,
		Title:      r.Title,
		DurationNS: elapsed.Nanoseconds(),
		Passed:     r.Passed(),
	}
	for _, o := range r.Observations {
		m.Observations = append(m.Observations, observationMetric{
			Name: o.Name, Value: o.Value, Claim: o.Claim, Match: o.Match,
		})
	}
	return m
}

// phaseMetrics builds the synthetic PHASES record: per-phase
// p50/p90/p99/max latency over a deterministic instrumented corpus, so
// BENCH_*.json files track where checking time goes, not just totals.
func phaseMetrics(trials int) (caseMetrics, error) {
	start := time.Now()
	phases, err := exp.PhaseDistributions(trials)
	if err != nil {
		return caseMetrics{}, err
	}
	m := caseMetrics{
		ID:         "PHASES",
		Artifact:   "histograms",
		Title:      fmt.Sprintf("per-phase latency quantiles over %d instrumented checks", trials),
		DurationNS: time.Since(start).Nanoseconds(),
		Passed:     true,
		Phases:     phases,
	}
	for _, p := range phases {
		m.Observations = append(m.Observations, observationMetric{
			Name:  p.Phase,
			Value: fmt.Sprintf("n=%d p50=%dns p90=%dns p99=%dns max=%dns", p.Count, p.P50NS, p.P90NS, p.P99NS, p.MaxNS),
			Match: true,
		})
	}
	return m, nil
}

// writeMetrics writes the per-case metrics as indented JSON to path,
// with "-" meaning the command's standard output.
func writeMetrics(metrics []caseMetrics, path string, stdout io.Writer) error {
	w := stdout
	var f *os.File
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(metrics); err != nil {
		if f != nil {
			f.Close()
		}
		return err
	}
	if f != nil {
		return f.Close()
	}
	return nil
}

func printMarkdown(w io.Writer, r exp.Result) {
	fmt.Fprintf(w, "### %s (%s): %s\n\n", r.ID, r.Artifact, r.Title)
	fmt.Fprintln(w, "| Observation | Measured | Paper | Match |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, o := range r.Observations {
		match := ""
		if o.Claim != "" {
			if o.Match {
				match = "✓"
			} else {
				match = "✗"
			}
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
			escapePipes(o.Name), escapePipes(o.Value), escapePipes(o.Claim), match)
	}
	fmt.Fprintln(w)
}

func escapePipes(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
