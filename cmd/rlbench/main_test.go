package main

import (
	"strings"
	"testing"
)

func TestSingleExperimentText(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "E2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"E2", "relative liveness", "[OK]", "all 1 experiments match"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSingleExperimentMarkdown(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "E7", "-md"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"### E7", "| Observation | Measured | Paper | Match |", "✓"} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown output missing %q:\n%s", want, got)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
