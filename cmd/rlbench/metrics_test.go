package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relive/internal/core"
)

// TestMetricsJSONFile: -metrics-json must write one record per
// experiment with a positive duration and the observations mirrored
// (with -phase-trials 0 suppressing the synthetic PHASES record).
func TestMetricsJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut strings.Builder
	if code := run([]string{"-run", "E2", "-metrics-json", path, "-phase-trials", "0"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var metrics []caseMetrics
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if len(metrics) != 1 {
		t.Fatalf("got %d records, want 1", len(metrics))
	}
	m := metrics[0]
	if m.ID != "E2" {
		t.Errorf("ID = %q, want E2", m.ID)
	}
	if m.DurationNS <= 0 {
		t.Errorf("DurationNS = %d, want > 0", m.DurationNS)
	}
	if !m.Passed {
		t.Error("E2 should pass")
	}
	if len(m.Observations) == 0 {
		t.Error("no observations recorded")
	}
	if len(m.Phases) != 0 {
		t.Errorf("experiment record carries phases: %+v", m.Phases)
	}
}

// TestMetricsJSONPhases: by default the metrics file ends with a
// synthetic PHASES record summarizing per-phase latency quantiles over
// the instrumented probe corpus.
func TestMetricsJSONPhases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut strings.Builder
	if code := run([]string{"-run", "E2", "-metrics-json", path, "-phase-trials", "5"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var metrics []caseMetrics
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if len(metrics) != 2 {
		t.Fatalf("got %d records, want 2 (E2 + PHASES)", len(metrics))
	}
	p := metrics[1]
	if p.ID != "PHASES" {
		t.Fatalf("last record ID = %q, want PHASES", p.ID)
	}
	if len(p.Phases) != len(core.Phases) {
		t.Fatalf("got %d phases, want %d", len(p.Phases), len(core.Phases))
	}
	for i, q := range p.Phases {
		if q.Phase != core.Phases[i] {
			t.Errorf("phase[%d] = %q, want %q", i, q.Phase, core.Phases[i])
		}
		// Some corpus systems trim to empty and short-circuit later
		// phases, so counts may fall below the trial count — but every
		// phase must be exercised at least once.
		if q.Count < 1 || q.Count > 5 {
			t.Errorf("%s: count = %d, want 1..5", q.Phase, q.Count)
		}
		if q.MaxNS <= 0 || q.P90NS < q.P50NS || q.P99NS < q.P90NS || q.MaxNS < q.P99NS {
			t.Errorf("%s: quantiles not ordered/positive: %+v", q.Phase, q)
		}
	}
}

// TestMetricsJSONStdout: "-" streams the metrics to standard output
// before the report.
func TestMetricsJSONStdout(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "E2", "-metrics-json", "-"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	got := out.String()
	end := strings.Index(got, "\n]")
	if end < 0 {
		t.Fatalf("no JSON array on stdout:\n%s", got)
	}
	var metrics []caseMetrics
	if err := json.Unmarshal([]byte(got[:end+2]), &metrics); err != nil {
		t.Fatalf("stdout prefix is not valid JSON: %v", err)
	}
	if !strings.Contains(got[end:], "all 1 experiments match") {
		t.Errorf("report missing after JSON:\n%s", got)
	}
}

// TestMetricsJSONBadPath: an unwritable path must exit 2.
func TestMetricsJSONBadPath(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "E2", "-metrics-json", filepath.Join(t.TempDir(), "no/such/dir/bench.json")}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}
