// Command rlsim simulates a transition system under a strongly fair or
// uniformly random scheduler and, optionally, monitors a PLTL property:
// with -ltl it estimates the probability that an execution satisfies
// the property (the Section 9 probability-1 reading of relative
// liveness).
//
// Usage:
//
//	rlsim -sys server.ts -steps 40                 # print a fair trace
//	rlsim -sys server.ts -sched random -seed 7     # a random trace
//	rlsim -sys server.ts -ltl "G F result" -runs 200
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"relive"
	"relive/internal/fairness"
	"relive/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("rlsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sysPath := fs.String("sys", "", "transition system file (- for stdin)")
	sched := fs.String("sched", "fair", "scheduler: fair (strongly fair) or random")
	steps := fs.Int("steps", 40, "steps per execution")
	seed := fs.Int64("seed", 1, "random scheduler seed")
	ltlText := fs.String("ltl", "", "property to estimate P(satisfied) for (implies -sched random)")
	runs := fs.Int("runs", 200, "number of sampled executions with -ltl")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *sysPath == "" {
		fmt.Fprintln(stderr, "rlsim: -sys is required")
		fs.Usage()
		return 2
	}
	stopProf, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintf(stderr, "rlsim: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "rlsim: %v\n", err)
			code = 2
		}
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintf(stderr, "rlsim: %v\n", err)
			code = 2
		}
	}()
	sys, err := readSystem(*sysPath)
	if err != nil {
		fmt.Fprintf(stderr, "rlsim: %v\n", err)
		return 2
	}

	if *ltlText != "" {
		prop, err := relive.ParseLTL(*ltlText)
		if err != nil {
			fmt.Fprintf(stderr, "rlsim: %v\n", err)
			return 2
		}
		lab := relive.CanonicalLabeling(sys.Alphabet())
		freq, err := fairness.SatisfactionFrequency(sys, *seed, *runs, *steps,
			func(l relive.Lasso) (bool, error) {
				return relive.EvalLasso(prop, l, lab)
			})
		if err != nil {
			fmt.Fprintf(stderr, "rlsim: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "P(%s) ≈ %.3f over %d runs × %d steps\n", prop, freq, *runs, *steps)
		return 0
	}

	switch *sched {
	case "fair":
		s, err := relive.NewFairScheduler(sys)
		if err != nil {
			fmt.Fprintf(stderr, "rlsim: %v\n", err)
			return 2
		}
		printTrace(stdout, sys, traceActions(sys, s.Trace(*steps)))
	case "random":
		w, err := relive.NewRandomWalker(sys, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "rlsim: %v\n", err)
			return 2
		}
		names := make([]string, 0, *steps)
		for _, sym := range w.Walk(*steps) {
			names = append(names, sys.Alphabet().Name(sym))
		}
		printTrace(stdout, sys, names)
	default:
		fmt.Fprintf(stderr, "rlsim: unknown scheduler %q\n", *sched)
		return 2
	}
	return 0
}

func traceActions(sys *relive.System, edges []relive.Edge) []string {
	names := make([]string, len(edges))
	for i, e := range edges {
		names[i] = sys.Alphabet().Name(e.Sym)
	}
	return names
}

func printTrace(w io.Writer, sys *relive.System, names []string) {
	fmt.Fprintf(w, "initial: %s\n", sys.StateName(sys.Initial()))
	for i, n := range names {
		fmt.Fprintf(w, "%4d  %s\n", i+1, n)
	}
}

func readSystem(path string) (*relive.System, error) {
	if path == "-" {
		return relive.ParseSystem(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relive.ParseSystem(f)
}
