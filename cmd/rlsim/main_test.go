package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSystem(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sys.ts")
	text := `
init idle
idle request busy
busy result idle
busy reject idle
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFairTrace(t *testing.T) {
	path := writeSystem(t)
	var out, errOut strings.Builder
	if code := run([]string{"-sys", path, "-steps", "10"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "initial: idle") {
		t.Errorf("missing initial state:\n%s", got)
	}
	if !strings.Contains(got, "result") || !strings.Contains(got, "reject") {
		t.Errorf("fair trace should contain both outcomes:\n%s", got)
	}
	if lines := strings.Count(got, "\n"); lines != 11 {
		t.Errorf("trace has %d lines, want 11", lines)
	}
}

func TestRandomTraceDeterministicSeed(t *testing.T) {
	path := writeSystem(t)
	var out1, out2, errOut strings.Builder
	if code := run([]string{"-sys", path, "-sched", "random", "-seed", "5", "-steps", "12"}, &out1, &errOut); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if code := run([]string{"-sys", path, "-sched", "random", "-seed", "5", "-steps", "12"}, &out2, &errOut); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if out1.String() != out2.String() {
		t.Error("same seed produced different random traces")
	}
}

func TestProbabilityEstimate(t *testing.T) {
	path := writeSystem(t)
	var out, errOut strings.Builder
	code := run([]string{"-sys", path, "-ltl", "G F result", "-runs", "50", "-steps", "60"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "≈ 1.000") {
		t.Errorf("expected probability 1.000 for a relative liveness property:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	path := writeSystem(t)
	for _, args := range [][]string{
		{},
		{"-sys", "/nonexistent"},
		{"-sys", path, "-sched", "bogus"},
		{"-sys", path, "-ltl", "(("},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

// TestMalformedSystemContent: a present-but-unparsable file exits 2.
func TestMalformedSystemContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ts")
	if err := os.WriteFile(path, []byte("garbage that is not a system\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-sys", path}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 (stderr %s)", code, errOut.String())
	}
}

// TestProfileFlags: the pprof flags must produce non-empty files.
func TestProfileFlags(t *testing.T) {
	path := writeSystem(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errOut strings.Builder
	code := run([]string{"-sys", path, "-steps", "10", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	for _, p := range []string{cpu, mem} {
		if info, err := os.Stat(p); err != nil {
			t.Errorf("profile not written: %v", err)
		} else if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
