// Command rlviz renders transition systems and the paper's figures as
// Graphviz DOT.
//
// Usage:
//
//	rlviz -sys server.ts            # render a system file
//	rlviz -fig 1                    # the paper's Figure 1 Petri net
//	rlviz -fig 2 | dot -Tpng -o fig2.png
//
// Figures: 1 (Petri net), 2 (server behaviors), 3 (erroneous server),
// 4 (abstract system).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"relive"
	"relive/internal/obs"
	"relive/internal/paper"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("rlviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sysPath := fs.String("sys", "", "transition system file (- for stdin)")
	fig := fs.Int("fig", 0, "render the paper's figure 1-4 instead of a file")
	name := fs.String("name", "system", "graph name")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintf(stderr, "rlviz: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "rlviz: %v\n", err)
			code = 2
		}
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintf(stderr, "rlviz: %v\n", err)
			code = 2
		}
	}()
	switch {
	case *fig != 0 && *sysPath != "":
		fmt.Fprintln(stderr, "rlviz: -sys and -fig are mutually exclusive")
		return 2
	case *fig != 0:
		dot, err := figureDOT(*fig)
		if err != nil {
			fmt.Fprintf(stderr, "rlviz: %v\n", err)
			return 2
		}
		fmt.Fprint(stdout, dot)
		return 0
	case *sysPath != "":
		sys, err := readSystem(*sysPath)
		if err != nil {
			fmt.Fprintf(stderr, "rlviz: %v\n", err)
			return 2
		}
		fmt.Fprint(stdout, sys.DOT(*name))
		return 0
	}
	fmt.Fprintln(stderr, "rlviz: one of -sys or -fig is required")
	fs.Usage()
	return 2
}

func figureDOT(fig int) (string, error) {
	switch fig {
	case 1:
		return paper.Fig1Net().DOT("figure1"), nil
	case 2:
		sys, err := paper.Fig2System()
		if err != nil {
			return "", err
		}
		return sys.DOT("figure2"), nil
	case 3:
		return paper.Fig3System().DOT("figure3"), nil
	case 4:
		sys, err := paper.Fig4System()
		if err != nil {
			return "", err
		}
		return sys.DOT("figure4"), nil
	}
	return "", fmt.Errorf("unknown figure %d (want 1-4)", fig)
}

func readSystem(path string) (*relive.System, error) {
	if path == "-" {
		return relive.ParseSystem(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relive.ParseSystem(f)
}
