package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRenderFigures(t *testing.T) {
	wants := map[int][]string{
		1: {"digraph", "shape=box", "request"},
		2: {"digraph", "grey80", "lock"},
		3: {"digraph", "F.idle"},
		4: {"digraph", "q0", "request"},
	}
	for fig, needles := range wants {
		var out, errOut strings.Builder
		code := run([]string{"-fig", itoa(fig)}, &out, &errOut)
		if code != 0 {
			t.Fatalf("fig %d: exit = %d (stderr %s)", fig, code, errOut.String())
		}
		for _, want := range needles {
			if !strings.Contains(out.String(), want) {
				t.Errorf("fig %d output missing %q", fig, want)
			}
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestRenderFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sys.ts")
	if err := os.WriteFile(path, []byte("init s0\ns0 a s1\ns1 b s0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-sys", path, "-name", "loop"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), `digraph "loop"`) {
		t.Errorf("output: %s", out.String())
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                         // nothing
		{"-fig", "7"},              // unknown figure
		{"-sys", "/nonexistent"},   // bad file
		{"-sys", "x", "-fig", "1"}, // mutually exclusive
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

// TestMalformedSystemContent: a present-but-unparsable file exits 2.
func TestMalformedSystemContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ts")
	if err := os.WriteFile(path, []byte("garbage that is not a system\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-sys", path}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 (stderr %s)", code, errOut.String())
	}
}

// TestProfileFlags: the pprof flags must produce non-empty files.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errOut strings.Builder
	code := run([]string{"-fig", "1", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d (stderr %s)", code, errOut.String())
	}
	for _, p := range []string{cpu, mem} {
		if info, err := os.Stat(p); err != nil {
			t.Errorf("profile not written: %v", err)
		} else if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
