package relive_test

import (
	"strings"
	"testing"

	"relive"
)

const serverText = `
# the paper's abstract server (Figure 4 shape)
init idle
idle request busy
busy result idle
busy reject idle
`

func TestQuickstartFlow(t *testing.T) {
	sys, err := relive.ParseSystemString(serverText)
	if err != nil {
		t.Fatal(err)
	}
	prop := relive.MustParseLTL("G F result")

	sat, err := relive.CheckSatisfies(sys, prop)
	if err != nil {
		t.Fatal(err)
	}
	if sat.Holds {
		t.Error("□◇result satisfied without fairness?")
	}
	rl, err := relive.CheckRelativeLiveness(sys, prop)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Holds {
		t.Error("□◇result not a relative liveness property of the server")
	}
	rs, err := relive.CheckRelativeSafety(sys, prop)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Holds {
		t.Error("□◇result is a relative safety property — then Theorem 4.7 would make it satisfied")
	}
}

func TestParseSystemReader(t *testing.T) {
	sys, err := relive.ParseSystem(strings.NewReader(serverText))
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumStates() != 2 {
		t.Errorf("parsed %d states, want 2", sys.NumStates())
	}
}

func TestAbstractionFlow(t *testing.T) {
	// Concrete server with internal decision actions.
	sys, err := relive.ParseSystemString(`
init idle
idle request deciding
deciding accept granted
deciding deny denied
granted result idle
denied reject idle
`)
	if err != nil {
		t.Fatal(err)
	}
	h, err := relive.ParseHom(sys.Alphabet(), "request=>request, result=>result, reject=>reject, accept=>, deny=>")
	if err != nil {
		t.Fatal(err)
	}
	report, err := relive.VerifyViaAbstraction(sys, h, relive.MustParseLTL("G F result"))
	if err != nil {
		t.Fatal(err)
	}
	if !report.AbstractHolds {
		t.Error("abstract check failed")
	}
	if !report.Simple {
		t.Errorf("hiding the decision actions should be simple here (witness %s)",
			report.SimplicityWitness.String(sys.Alphabet()))
	}
	if report.Conclusion != relive.ConcreteHolds {
		t.Errorf("conclusion %v, want ConcreteHolds", report.Conclusion)
	}
	// Cross-check via the transformed property.
	p, err := relive.ConcreteProperty(h, relive.MustParseLTL("G F result"))
	if err != nil {
		t.Fatal(err)
	}
	rl, err := relive.CheckRelativeLivenessProperty(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Holds {
		t.Error("direct concrete check of R̄(η) failed")
	}
}

func TestObserveActions(t *testing.T) {
	ab := relive.NewAlphabet("a", "b", "tau")
	h := relive.ObserveActions(ab, "a", "b")
	sa, _ := ab.Lookup("tau")
	if h.Image(sa) != relive.Epsilon {
		t.Error("unobserved action not hidden")
	}
}

func TestFairImplementationFlow(t *testing.T) {
	sys, err := relive.ParseSystemString(`
init q
q a q
q b q
`)
	if err != nil {
		t.Fatal(err)
	}
	prop := relive.MustParseLTL("F (a & X a)")
	ok, bad, err := relive.AllStronglyFairRunsSatisfy(sys, prop)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("minimal automaton already enforces the property under fairness")
	}
	if bad == nil {
		t.Fatal("no violating run")
	}
	fi, err := relive.SynthesizeFairImplementation(sys, prop)
	if err != nil {
		t.Fatal(err)
	}
	same, _, err := fi.SameBehaviors(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Error("synthesis changed behaviors")
	}
}

func TestEvalLassoAndScheduler(t *testing.T) {
	sys, err := relive.ParseSystemString(serverText)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := relive.NewFairScheduler(sys)
	if err != nil {
		t.Fatal(err)
	}
	trace := sched.Trace(50)
	if len(trace) != 50 {
		t.Fatalf("trace length %d", len(trace))
	}
	// The fair scheduler alternates result and reject; count results.
	results := 0
	for _, e := range trace {
		if sys.Alphabet().Name(e.Sym) == "result" {
			results++
		}
	}
	if results < 10 {
		t.Errorf("fair scheduler produced only %d results in 50 steps", results)
	}
}

func TestPetriFlow(t *testing.T) {
	net := relive.NewNet()
	net.AddPlace("p", 1)
	net.AddTransition("go", map[string]int{"p": 1}, map[string]int{"p": 1})
	sys, err := net.ReachabilityGraph(10)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := relive.CheckRelativeLiveness(sys, relive.MustParseLTL("G F go"))
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Holds {
		t.Error("G F go should be (relative) liveness on the one-loop net")
	}
}

func TestProductSystem(t *testing.T) {
	a, err := relive.ParseSystemString("init p\np sync p\np x p\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := relive.ParseSystemString("init q\nq sync q\nq y q\n")
	if err != nil {
		t.Fatal(err)
	}
	prod, err := relive.ProductSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.NumStates() != 1 {
		t.Errorf("product states = %d, want 1", prod.NumStates())
	}
	if prod.Alphabet().Size() != 3 {
		t.Errorf("product alphabet = %v, want {sync,x,y}", prod.Alphabet())
	}
}

func TestRbarPublic(t *testing.T) {
	f, err := relive.Rbar(relive.MustParseLTL("G F result"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.String(), "ε") {
		t.Errorf("R̄ should introduce ε: %s", f)
	}
}
