package relive_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
// Moore vs Hopcroft minimization, binary vs generalized intersection,
// rank-based vs deterministic two-copy complementation, and checking
// with vs without simulation reduction.

import (
	"fmt"
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/core"
	"relive/internal/fairness"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/nfa"
	"relive/internal/paper"
	"relive/internal/ts"
	"relive/internal/word"
)

func BenchmarkMinimizeAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(201))
	ab := gen.Letters(2)
	dfas := make([]*nfa.DFA, 8)
	for i := range dfas {
		dfas[i] = gen.NFA(rng, gen.Config{States: 30, Symbols: 2, Density: 0.4, AcceptRatio: 0.3}, ab).Determinize()
	}
	b.Run("moore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dfas[i%len(dfas)].Minimize()
		}
	})
	b.Run("hopcroft", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dfas[i%len(dfas)].MinimizeHopcroft()
		}
	})
}

func BenchmarkIntersectionAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(202))
	ab := gen.Letters(2)
	autos := make([]*buchi.Buchi, 4)
	for i := range autos {
		autos[i] = randomBenchBuchi(rng, ab, 4)
	}
	b.Run("binary-chain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc := autos[0]
			for _, a := range autos[1:] {
				acc = buchi.Intersect(acc, a)
			}
			_ = acc
		}
	})
	b.Run("generalized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := buchi.IntersectAll(autos...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkComplementAblation(b *testing.B) {
	ab := gen.Letters(2)
	// A deterministic automaton (closure of GFa) that both routes accept.
	p := core.FromFormula(ltl.MustParse("G F a"), nil)
	closure, err := core.Closure(p, ab)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rank-based", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := closure.Complement(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("two-copy-deterministic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := closure.ComplementDeterministic(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSimulationReductionAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(203))
	ab := gen.Letters(2)
	autos := make([]*buchi.Buchi, 6)
	for i := range autos {
		autos[i] = randomBenchBuchi(rng, ab, 10)
	}
	b.Run("raw-emptiness", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := autos[i%len(autos)]
			buchi.Intersect(a, a).IsEmpty()
		}
	})
	b.Run("quotient-then-emptiness", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := autos[i%len(autos)].QuotientBySimulation()
			buchi.Intersect(a, a).IsEmpty()
		}
	})
}

func BenchmarkBisimulationQuotient(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("states=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			sys := benchSystem(rng, gen.Letters(2), n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.BisimulationQuotient(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStreettFairEmptiness(b *testing.B) {
	sys, err := benchPaperFig2()
	if err != nil {
		b.Fatal(err)
	}
	prop := ltl.TranslateNegation(ltl.MustParse("G F result"), ltl.Canonical(sys.Alphabet()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := core.AllStronglyFairRunsSatisfy(sys, core.FromFormula(ltl.MustParse("G F result"), nil))
		if err != nil || !ok {
			b.Fatalf("fairness check: %v %v", ok, err)
		}
	}
	_ = prop
}

func BenchmarkMonteCarloEstimate(b *testing.B) {
	sys, err := benchPaperFig2()
	if err != nil {
		b.Fatal(err)
	}
	lab := ltl.Canonical(sys.Alphabet())
	f := ltl.MustParse("G F result")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		freq, err := benchSatisfactionFrequency(sys, f, lab)
		if err != nil || freq != 1.0 {
			b.Fatalf("estimate: %v %v", freq, err)
		}
	}
}

func randomBenchBuchi(rng *rand.Rand, ab *alphabet.Alphabet, n int) *buchi.Buchi {
	b := buchi.New(ab)
	for i := 0; i < n; i++ {
		b.AddState(rng.Float64() < 0.4)
	}
	for i := 0; i < n; i++ {
		for _, sym := range ab.Symbols() {
			for k := 0; k < 2; k++ {
				if rng.Float64() < 0.5 {
					b.AddTransition(buchi.State(i), sym, buchi.State(rng.Intn(n)))
				}
			}
		}
	}
	b.SetInitial(0)
	return b
}

func benchPaperFig2() (*ts.System, error) { return paper.Fig2System() }

func benchSatisfactionFrequency(sys *ts.System, f *ltl.Formula, lab *ltl.Labeling) (float64, error) {
	return fairness.SatisfactionFrequency(sys, 99, 40, 120, func(l word.Lasso) (bool, error) {
		return ltl.EvalLasso(f, l, lab)
	})
}
