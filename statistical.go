package relive

import (
	"context"
	"errors"
	"time"

	"relive/internal/core"
)

// Statistical checking — the paper's Section 9 outlook ("relative
// liveness properties informally say: almost all computations satisfy
// the property") as a first-class engine. CheckStatistical samples
// uniform random walks of the system, detects the bottom SCC each walk
// settles into, evaluates the property on the resulting behavior, and
// reports a confidence-interval verdict. A "holds" verdict is
// statistical — the report says so explicitly ("statistical": true)
// and carries the interval — while a "fails" verdict is sound: the
// sampled counterexample is a genuine behavior of the system violating
// the property. The exact counterpart of the sampled verdict is
// AllFairRunsSatisfy under strong fairness (a uniform random run is
// almost surely strongly fair), which the differential battery in
// internal/oracle pins the engine against.

// StatisticalReport is the sampling engine's verdict: counts, the
// Clopper–Pearson interval, and the sampled counterexample on "fails".
// Deterministic in (system, property, seed, samples, steps,
// confidence); replays byte-identically for any parallelism.
type StatisticalReport = core.StatisticalReport

// Statistical verdict labels carried in StatisticalReport.Verdict.
const (
	StatVerdictHolds        = core.StatVerdictHolds
	StatVerdictFails        = core.StatVerdictFails
	StatVerdictInconclusive = core.StatVerdictInconclusive
)

// WithSeed fixes the sampling engine's random seed (default 0). Two
// checks with the same seed, budget, and confidence produce
// byte-identical reports.
func WithSeed(seed int64) Option {
	return func(c *Checker) { c.statSeed = seed }
}

// WithSampleBudget sets the sampling budget: samples independent
// random walks of steps steps each. Non-positive values keep the
// defaults (400 walks of 256 steps). More samples tighten the
// confidence interval; more steps let walks settle into bottom SCCs of
// deeper graphs.
func WithSampleBudget(samples, steps int) Option {
	return func(c *Checker) {
		c.statSamples = samples
		c.statSteps = steps
	}
}

// WithConfidence sets the two-sided confidence level of the reported
// interval (default 0.99). Values outside (0, 1) keep the default.
func WithConfidence(level float64) Option {
	return func(c *Checker) { c.statConf = level }
}

// WithStatisticalFallback makes the Checker's CheckAllCtx fall back to
// the statistical engine instead of failing or stalling on systems too
// big to check exactly: systems with more than maxStates states are
// sampled directly, and when maxExact > 0 the exact check runs under
// that time budget and a deadline overrun (with the caller's context
// still alive) reruns statistically. A fallback report carries the
// sampled fair verdict in all three verdict fields and marks itself
// with a non-nil Statistical field — it is a confidence-interval
// answer, never an exact one. maxStates <= 0 disables the state gate.
func WithStatisticalFallback(maxStates int, maxExact time.Duration) Option {
	return func(c *Checker) {
		c.fbStates = maxStates
		c.fbTimeout = maxExact
		c.fbSet = true
	}
}

// statOptions collects the Checker's sampling options.
func (c *Checker) statOptions() core.StatOptions {
	return core.StatOptions{
		Seed:       c.statSeed,
		Samples:    c.statSamples,
		Steps:      c.statSteps,
		Confidence: c.statConf,
		Workers:    c.par,
	}
}

// CheckStatistical is the package-level statistical check with the
// default budget (400 walks of 256 steps, confidence 0.99, seed 0).
func CheckStatistical(sys *System, f *Formula) (*StatisticalReport, error) {
	return With().CheckStatistical(sys, f)
}

// CheckStatistical runs the statistical engine with the Checker's
// options (WithSeed, WithSampleBudget, WithConfidence; WithParallelism
// bounds the sampling workers without changing the report).
func (c *Checker) CheckStatistical(sys *System, f *Formula) (*StatisticalReport, error) {
	return c.CheckStatisticalProperty(sys, core.FromFormula(f, nil))
}

// CheckStatisticalProperty is CheckStatistical for a Property.
func (c *Checker) CheckStatisticalProperty(sys *System, p Property) (*StatisticalReport, error) {
	if c.kernSet || c.simCapSet {
		return core.CheckStatisticalCtx(c.kernelCtx(nil), c.rec, sys, p, c.statOptions())
	}
	return core.CheckStatisticalRec(c.rec, sys, p, c.statOptions())
}

// CheckStatisticalCtx is CheckStatistical with cooperative
// cancellation.
func (c *Checker) CheckStatisticalCtx(ctx context.Context, sys *System, f *Formula) (*StatisticalReport, error) {
	return c.CheckStatisticalPropertyCtx(ctx, sys, core.FromFormula(f, nil))
}

// CheckStatisticalPropertyCtx is CheckStatisticalCtx for a Property.
func (c *Checker) CheckStatisticalPropertyCtx(ctx context.Context, sys *System, p Property) (*StatisticalReport, error) {
	return core.CheckStatisticalCtx(c.kernelCtx(ctx), c.rec, sys, p, c.statOptions())
}

// checkAllWithFallback is CheckAllPropertyCtx under
// WithStatisticalFallback: exact when affordable, sampled otherwise.
func (c *Checker) checkAllWithFallback(ctx context.Context, sys *System, p Property) (*Report, error) {
	if c.fbStates > 0 && sys.NumStates() > c.fbStates {
		return c.statFallbackReport(ctx, sys, p)
	}
	exactCtx := c.kernelCtx(ctx)
	var cancel context.CancelFunc
	if c.fbTimeout > 0 {
		if exactCtx == nil {
			exactCtx = context.Background()
		}
		exactCtx, cancel = context.WithTimeout(exactCtx, c.fbTimeout)
		defer cancel()
	}
	rep, err := core.CheckAllCtx(exactCtx, c.rec, sys, p, c.par)
	if err == nil {
		return rep, nil
	}
	// Only our own exact-time budget triggers the fallback; a caller
	// cancellation or deadline propagates as usual.
	if c.fbTimeout > 0 && errors.Is(err, context.DeadlineExceeded) &&
		(ctx == nil || ctx.Err() == nil) {
		return c.statFallbackReport(ctx, sys, p)
	}
	return nil, err
}

// statFallbackReport runs the statistical engine and renders its single
// sampled fair verdict as a CheckAll report: all three verdict booleans
// carry the sampled answer and the Statistical field holds the full
// sampled evidence, so the report can never be mistaken for exact.
func (c *Checker) statFallbackReport(ctx context.Context, sys *System, p Property) (*Report, error) {
	sr, err := core.CheckStatisticalCtx(c.kernelCtx(ctx), c.rec, sys, p, c.statOptions())
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Property:         sr.Property,
		States:           sr.States,
		Satisfied:        sr.Holds,
		RelativeLiveness: sr.Holds,
		RelativeSafety:   sr.Holds,
		Statistical:      sr,
	}
	if sr.Verdict == StatVerdictFails {
		rep.Counterexample = sr.Counterexample
		rep.CounterexampleLp = sr.CounterexampleLoop
		rep.Violation = sr.Counterexample
		rep.ViolationLoop = sr.CounterexampleLoop
	}
	return rep, nil
}
