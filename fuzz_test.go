package relive_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relive"
	"relive/internal/alphabet"
	"relive/internal/core"
	"relive/internal/genbase"
	"relive/internal/kernel"
	"relive/internal/ltl"
	"relive/internal/nfa"
	"relive/internal/oracle"
	"relive/internal/serve"
	"relive/internal/word"
)

// Native fuzz targets for every user-facing parser and for the decision
// pipeline. The parser targets assert the round-trip law — whatever
// parses must print back to a form that reparses to the same printed
// form — and, for formulas, that normalization preserves PNF and lasso
// semantics. The pipeline targets assert the paper's theorem laws on
// arbitrary fuzzer-built inputs: Theorem 4.7 consistency plus oracle
// witness confirmation for CheckAll, and the word-level Lemma 7.5 for
// R̄. Seed corpora live under testdata/fuzz/<FuzzName>/.
//
// Run one target with e.g.:
//
//	go test -run '^$' -fuzz FuzzParseLTL -fuzztime 10s .

// countIffExpansions bounds the only normalizer clause that duplicates
// both operands: nested ⇔ expands exponentially, so adversarial inputs
// are skipped before Normalize can blow up.
func countIffExpansions(text string) int {
	return strings.Count(text, "<->") + strings.Count(text, "<=>") + strings.Count(text, "⇔")
}

func FuzzParseLTL(f *testing.F) {
	f.Add("G F result")
	f.Add("((a U b) R <>c) => []a")
	f.Add("!a & b | c <-> X (a W b)")
	f.Add("true U eps")
	f.Add("□◇result ∧ ¬(a B b)")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 2048 || countIffExpansions(text) > 6 {
			return
		}
		f1, err := relive.ParseLTL(text)
		if err != nil {
			return
		}
		printed := f1.String()
		f2, err := relive.ParseLTL(printed)
		if err != nil {
			t.Fatalf("printed form %q of %q does not reparse: %v", printed, text, err)
		}
		if got := f2.String(); got != printed {
			t.Fatalf("print/parse not idempotent: %q -> %q -> %q", text, printed, got)
		}
		if f1.Size() > 64 {
			return
		}
		n := f1.Normalize()
		if !n.IsPositiveNormalForm() {
			t.Fatalf("Normalize(%q) = %q is not in positive normal form", text, n)
		}
		// Normalization must preserve semantics on a fixed short lasso.
		ab := relive.NewAlphabet("a", "b")
		lab := relive.CanonicalLabeling(ab)
		l := relive.Lasso{
			Prefix: relive.Word{ab.Symbol("a")},
			Loop:   relive.Word{ab.Symbol("a"), ab.Symbol("b")},
		}
		v1, err1 := relive.EvalLasso(f1, l, lab)
		v2, err2 := relive.EvalLasso(n, l, lab)
		if err1 != nil || err2 != nil {
			t.Fatalf("EvalLasso errored on %q: %v / %v", text, err1, err2)
		}
		if v1 != v2 {
			t.Fatalf("Normalize changed semantics of %q on a(ab)^ω: %v vs %v (normalized %q)",
				text, v1, v2, n)
		}
	})
}

func FuzzParseSystem(f *testing.F) {
	f.Add("init idle\nidle lock locked\nlocked unlock idle\n")
	f.Add("# comment\ninit s0\ns0 a s0\ns0 b s1\n")
	f.Add("s0 a s1\ninit s0\n")
	f.Add("init lonely\n")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 8192 {
			return
		}
		sys, err := relive.ParseSystemString(text)
		if err != nil {
			return
		}
		out := sys.FormatString()
		sys2, err := relive.ParseSystemString(out)
		if err != nil {
			t.Fatalf("formatted system does not reparse: %v\ninput: %q\nformatted:\n%s", err, text, out)
		}
		if got := sys2.FormatString(); got != out {
			t.Fatalf("format/parse not idempotent on %q:\nfirst:\n%s\nsecond:\n%s", text, out, got)
		}
		if sys2.NumStates() != sys.NumStates() {
			t.Fatalf("state count changed on reparse: %d vs %d", sys.NumStates(), sys2.NumStates())
		}
	})
}

func FuzzParseHom(f *testing.F) {
	f.Add("a=>x, b=>x, c=>")
	f.Add("a=>,b=>,c=>c")
	f.Add("a => ε , b => y")
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 1024 {
			return
		}
		src := relive.NewAlphabet("a", "b", "c")
		h, err := relive.ParseHom(src, spec)
		if err != nil {
			return
		}
		out := h.String()
		h2, err := relive.ParseHom(src, out)
		if err != nil {
			t.Fatalf("printed hom %q (from %q) does not reparse: %v", out, spec, err)
		}
		if got := h2.String(); got != out {
			t.Fatalf("print/parse not idempotent: %q -> %q -> %q", spec, out, got)
		}
		// The two parses must agree letter by letter on Σ. Symbols are
		// alphabet-relative (the two destination alphabets intern
		// independently), so compare by name.
		for _, s := range src.Symbols() {
			n1 := h.Dest().Name(h.Image(s))
			n2 := h2.Dest().Name(h2.Image(s))
			if n1 != n2 {
				t.Fatalf("images differ on %s: %q vs %q (spec %q)",
					src.Name(s), n1, n2, spec)
			}
		}
	})
}

// FuzzCheckAll drives the full decision pipeline on fuzzer-built
// (system, formula) pairs: Theorem 4.7 must hold between the three
// verdicts, the serial and parallel routes must agree, and every
// witness must be confirmed exactly by the naive oracle. On alphabets
// of at most three letters the oracle additionally does its bounded
// exhaustive search against positive verdicts.
func FuzzCheckAll(f *testing.F) {
	f.Add("init s0\ns0 a s0\ns0 b s1\ns1 a s0\n", "G F a")
	f.Add("init s0\ns0 a s1\ns1 b s1\n", "a U b")
	f.Add("init p\np lock q\nq request p\n", "[] <> request")
	f.Fuzz(func(t *testing.T, sysText, fText string) {
		if len(sysText) > 2048 || len(fText) > 256 || countIffExpansions(fText) > 4 {
			return
		}
		sys, err := relive.ParseSystemString(sysText)
		if err != nil || sys.NumStates() > 10 {
			return
		}
		fml, err := relive.ParseLTL(fText)
		if err != nil || fml.Size() > 16 {
			return
		}
		rep, err := relive.CheckAll(sys, fml)
		if err != nil {
			return // systems without behaviors etc. may legitimately error
		}
		if rep.Satisfied != (rep.RelativeLiveness && rep.RelativeSafety) {
			t.Fatalf("Theorem 4.7 violated: sat=%v rl=%v rs=%v\nsystem:\n%s\nformula: %s",
				rep.Satisfied, rep.RelativeLiveness, rep.RelativeSafety, sys.FormatString(), fml)
		}
		p := core.FromFormula(fml, nil)
		repPar, err := core.CheckAllPar(sys, p, 4)
		if err != nil {
			t.Fatalf("parallel route errored where serial succeeded: %v", err)
		}
		if rep.Satisfied != repPar.Satisfied ||
			rep.RelativeLiveness != repPar.RelativeLiveness ||
			rep.RelativeSafety != repPar.RelativeSafety {
			t.Fatalf("serial/parallel mismatch: (%v %v %v) vs (%v %v %v)",
				rep.Satisfied, rep.RelativeLiveness, rep.RelativeSafety,
				repPar.Satisfied, repPar.RelativeLiveness, repPar.RelativeSafety)
		}

		ab := sys.Alphabet()
		op := oracle.FromFormula(fml, nil)
		sat, err := core.Satisfies(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := core.RelativeLiveness(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := core.RelativeSafety(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if !sat.Holds {
			if ok, err := oracle.ConfirmCounterexample(sys, op, sat.Counterexample); err != nil || !ok {
				t.Fatalf("counterexample %s not confirmed (err %v)\nsystem:\n%s\nformula: %s",
					sat.Counterexample.String(ab), err, sys.FormatString(), fml)
			}
		}
		if !rl.Holds {
			if ok, err := oracle.ConfirmBadPrefix(sys, op, rl.BadPrefix); err != nil || !ok {
				t.Fatalf("bad prefix %s not confirmed (err %v)\nsystem:\n%s\nformula: %s",
					rl.BadPrefix.String(ab), err, sys.FormatString(), fml)
			}
		}
		if !rs.Holds {
			if ok, err := oracle.ConfirmSafetyViolation(sys, op, rs.Violation); err != nil || !ok {
				t.Fatalf("violation %s not confirmed (err %v)\nsystem:\n%s\nformula: %s",
					rs.Violation.String(ab), err, sys.FormatString(), fml)
			}
		}
		// Bounded exhaustive search against positive verdicts, only on
		// alphabets small enough to enumerate.
		if len(ab.Symbols()) > 3 {
			return
		}
		words := genbase.Words(ab, 4)
		lassos := genbase.Lassos(ab, 2, 2)
		if rl.Holds {
			if holds, w, err := oracle.RelativeLiveness(sys, op, words); err != nil || !holds {
				t.Fatalf("oracle refutes relative liveness with %s (err %v)\nsystem:\n%s\nformula: %s",
					w.String(ab), err, sys.FormatString(), fml)
			}
		}
		if sat.Holds {
			if holds, cex, err := oracle.Satisfaction(sys, op, lassos); err != nil || !holds {
				t.Fatalf("oracle refutes satisfaction with %s (err %v)\nsystem:\n%s\nformula: %s",
					cex.String(ab), err, sys.FormatString(), fml)
			}
		}
	})
}

// FuzzCheckFairAbstract drives the fairness-within-abstraction decision
// on fuzzer-built (system, homomorphism, fairness notion, property)
// quadruples: the verdict must be bit-identical across the three
// kernels, every violation witness must be confirmed exactly by the
// paper-literal oracle (a genuine fair run whose abstract image
// violates η), and the verdict must be monotone under fairness
// strengthening (Holds under weak fairness implies Holds under strong,
// since strongly fair runs are a subset of weakly fair ones).
func FuzzCheckFairAbstract(f *testing.F) {
	f.Add("init s0\ns0 a s0\ns0 b s1\ns1 a s0\n", "a=>x, b=>", byte(0), "G F x")
	f.Add("init s0\ns0 a s1\ns1 a s1\ns0 b s0\n", "a=>x, b=>y", byte(1), "F x")
	f.Add("init idle\nidle request busy\nbusy result idle\nbusy reject idle\n",
		"request=>req, result=>ok, reject=>", byte(0), "G F ok")
	f.Fuzz(func(t *testing.T, sysText, homSpec string, fairByte byte, etaText string) {
		if len(sysText) > 2048 || len(homSpec) > 256 || len(etaText) > 256 ||
			countIffExpansions(etaText) > 4 {
			return
		}
		sys, err := relive.ParseSystemString(sysText)
		if err != nil || sys.NumStates() > 8 {
			return
		}
		h, err := relive.ParseHom(sys.Alphabet(), homSpec)
		if err != nil {
			return
		}
		eta, err := relive.ParseLTL(etaText)
		if err != nil || eta.Size() > 12 {
			return
		}
		kind := relive.FairnessStrong
		if fairByte%2 == 1 {
			kind = relive.FairnessWeak
		}
		rep, err := relive.CheckFairAbstract(sys, h, kind, eta)
		if err != nil {
			return // η not in Σ'-normal form etc.
		}

		// Kernel bit-identity: the dispatched kernels may differ in work,
		// never in the report.
		p := core.FromFormula(eta, ltl.Canonical(h.Dest()))
		want, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []kernel.Kind{kernel.Subset, kernel.Antichain} {
			krep, kerr := core.CheckFairAbstractCtx(kernel.NewContext(nil, k), nil, sys, h, kind, p)
			if kerr != nil {
				t.Fatalf("kernel %v errored where auto succeeded: %v", k, kerr)
			}
			got, merr := json.Marshal(krep)
			if merr != nil {
				t.Fatal(merr)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("kernel %v report differs:\nauto: %s\n%v:  %s\nsystem:\n%s\nhom: %s\nη: %s",
					k, want, k, got, sys.FormatString(), h, eta)
			}
		}

		// Witness confirmation by the paper-literal oracle.
		okind := oracle.StronglyFair
		if kind == relive.FairnessWeak {
			okind = oracle.WeaklyFair
		}
		op := oracle.FromFormula(eta, ltl.Canonical(h.Dest()))
		if !rep.Holds {
			run := rep.Witness()
			if run == nil {
				t.Fatalf("violation without a witness run\nsystem:\n%s\nhom: %s\nη: %s",
					sys.FormatString(), h, eta)
			}
			el := oracle.EdgeLasso{Prefix: run.Prefix, Loop: run.Loop}
			ok, cerr := oracle.ConfirmFairAbstractViolation(sys, h, okind, op, el)
			if cerr != nil || !ok {
				t.Fatalf("witness not confirmed (err %v)\nsystem:\n%s\nhom: %s\nη: %s\nwitness: %v",
					cerr, sys.FormatString(), h, eta, el)
			}
		}

		// Monotonicity under fairness strengthening.
		weakRep, err := relive.CheckFairAbstract(sys, h, relive.FairnessWeak, eta)
		if err != nil {
			return
		}
		if weakRep.Holds {
			strongRep, err := relive.CheckFairAbstract(sys, h, relive.FairnessStrong, eta)
			if err != nil {
				t.Fatalf("strong check errored where weak succeeded: %v", err)
			}
			if !strongRep.Holds {
				t.Fatalf("monotonicity violated: holds weakly but not strongly\nsystem:\n%s\nhom: %s\nη: %s",
					sys.FormatString(), h, eta)
			}
		}
	})
}

// FuzzRbarPreservation fuzzes the word-level Lemma 7.5: for η in
// Σ'-normal form and every concrete lasso x with h(x) defined,
// x ⊨_{λhΣΣ'} R̄(η) ⟺ h(x) ⊨_{λΣ'} η.
func FuzzRbarPreservation(f *testing.F) {
	f.Add("G F x", "a=>x, b=>x, c=>", "a", "ab")
	f.Add("x U y", "a=>x, b=>y, c=>", "c", "cab")
	f.Add("X x", "a=>x, b=>, c=>", "b", "ba")
	f.Fuzz(func(t *testing.T, etaText, homSpec, prefixS, loopS string) {
		if len(etaText) > 256 || len(homSpec) > 256 || countIffExpansions(etaText) > 4 {
			return
		}
		if len(prefixS) > 16 || len(loopS) == 0 || len(loopS) > 16 {
			return
		}
		src := relive.NewAlphabet("a", "b", "c")
		h, err := relive.ParseHom(src, homSpec)
		if err != nil {
			return
		}
		eta, err := relive.ParseLTL(etaText)
		if err != nil || eta.Size() > 16 {
			return
		}
		letters := map[string]bool{}
		for _, n := range h.Dest().Names() {
			letters[n] = true
		}
		if !eta.Normalize().IsSigmaNormalForm(letters) {
			return // Lemma 7.5 assumes η in Σ'-normal form
		}
		rbar, err := relive.Rbar(eta)
		if err != nil {
			return
		}
		toWord := func(s string) (relive.Word, bool) {
			var w relive.Word
			for _, r := range s {
				if r != 'a' && r != 'b' && r != 'c' {
					return nil, false
				}
				w = append(w, src.Symbol(string(r)))
			}
			return w, true
		}
		prefix, ok := toWord(prefixS)
		if !ok {
			return
		}
		loop, ok := toWord(loopS)
		if !ok {
			return
		}
		x := word.MustLasso(prefix, loop)
		hx, ok := h.ApplyLasso(x)
		if !ok {
			return // h(x) undefined: the lemma does not apply
		}
		left, err := relive.EvalLasso(rbar, x, h.Labeling())
		if err != nil {
			t.Fatalf("EvalLasso(R̄(η)): %v", err)
		}
		right, err := relive.EvalLasso(eta, hx, relive.CanonicalLabeling(h.Dest()))
		if err != nil {
			t.Fatalf("EvalLasso(η): %v", err)
		}
		if left != right {
			t.Fatalf("R̄ preservation violated: x=%s h(x)=%s R̄(η)=%v η=%v\nη = %s\nh = %s",
				x.String(src), hx.String(h.Dest()), left, right, eta, h)
		}
	})
}

// FuzzCheckStatistical drives the statistical relative-liveness engine
// on fuzzer-built (system, formula, seed, budget) quadruples from the
// parsers down to the verdict: the check must never panic, the report
// must be well-formed (verdict label, interval, counts), a "fails"
// verdict must carry a witness that is a genuine behavior of the system
// (oracle.IsBehavior) violating the formula under the direct
// ltl.EvalLasso semantics, and a replay with the same seed must marshal
// byte-identically.
func FuzzCheckStatistical(f *testing.F) {
	f.Add("init idle\nidle request busy\nbusy result idle\nbusy reject idle\n", "G F result", int64(0), byte(60))
	f.Add("init broken\nbroken request busy\nbusy result broken\nbusy reject stuck\nstuck no stuck\n", "G F result", int64(7), byte(80))
	f.Add("init a\na step b\n", "F step", int64(1), byte(16))
	f.Fuzz(func(t *testing.T, sysText, ltlText string, seed int64, budget byte) {
		if len(sysText) > 2048 || len(ltlText) > 256 || countIffExpansions(ltlText) > 4 {
			return
		}
		sys, err := relive.ParseSystemString(sysText)
		if err != nil || sys.NumStates() > 8 {
			return
		}
		phi, err := relive.ParseLTL(ltlText)
		if err != nil || phi.Size() > 12 {
			return
		}
		samples := 20 + int(budget)%60
		checker := relive.With(relive.WithSeed(seed), relive.WithSampleBudget(samples, 48))
		rep, err := checker.CheckStatistical(sys, phi)
		if err != nil {
			t.Fatalf("CheckStatistical: %v", err)
		}
		switch rep.Verdict {
		case relive.StatVerdictHolds, relive.StatVerdictFails, relive.StatVerdictInconclusive:
		default:
			t.Fatalf("unknown verdict %q", rep.Verdict)
		}
		if !rep.Statistical {
			t.Fatalf("report not marked statistical: %+v", rep)
		}
		if rep.CILow < 0 || rep.CIHigh > 1 || rep.CILow > rep.CIHigh {
			t.Fatalf("malformed interval [%v, %v]", rep.CILow, rep.CIHigh)
		}
		if rep.Hits > rep.Settled || rep.Settled > rep.Samples {
			t.Fatalf("malformed counts %d hits / %d settled / %d samples", rep.Hits, rep.Settled, rep.Samples)
		}
		if rep.Holds != (rep.Verdict == relive.StatVerdictHolds) {
			t.Fatalf("Holds=%v but verdict %q", rep.Holds, rep.Verdict)
		}
		if rep.Vacuous && (rep.Samples != 0 || !rep.Holds) {
			t.Fatalf("malformed vacuous report %+v", rep)
		}
		if rep.Verdict == relive.StatVerdictFails {
			l, ok := rep.Witness()
			if !ok || !l.Valid() {
				t.Fatalf("fails verdict without witness")
			}
			if !oracle.IsBehavior(sys, l) {
				t.Fatalf("witness %s is not a behavior of\n%s", l.String(sys.Alphabet()), sys.FormatString())
			}
			sat, err := ltl.EvalLasso(phi, l, ltl.Canonical(sys.Alphabet()))
			if err != nil {
				t.Fatalf("EvalLasso: %v", err)
			}
			if sat {
				t.Fatalf("witness %s satisfies %s", l.String(sys.Alphabet()), phi)
			}
		}
		// Seed-determinism: an identical replay marshals byte-identically.
		want, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		rep2, err := checker.CheckStatistical(sys, phi)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		got, err := json.Marshal(rep2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("replay diverged:\n%s\nvs\n%s", want, got)
		}
	})
}

// FuzzServeRequest fuzzes the checking service's wire layer: arbitrary
// bytes go through the strict decoders, and everything that decodes is
// (a) checked against the decoder's own validation contract, (b)
// re-marshaled and re-decoded (wire round-trip), and (c) for small
// systems, served end to end through the in-process handler, which must
// answer with a well-formed JSON response and never panic or hang.
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(`{"system":"init idle\nidle request busy\nbusy result idle\n","ltl":"G F result"}`))
	f.Add([]byte(`{"system":"init s0\ns0 a s0\n","omega":"( a ) ^w"}`))
	f.Add([]byte(`{"system":"init s0\ns0 a s0\n","ltls":["G F a","F a"],"no_cache":true}`))
	f.Add([]byte(`{"system":"init s0\ns0 a s0\ns0 b s1\ns1 a s0\n","hom":"a=>x, b=>","eta":"G F x"}`))
	f.Add([]byte(`{"system":"init s0\ns0 a s0\ns0 b s1\ns1 a s0\n","hom":"a=>x, b=>","fairness":"strong","eta":"G F x"}`))
	f.Add([]byte(`{"system":"init s0\ns0 a s0\n","hom":"a=>x","fairness":"weak","eta":"F x","no_cache":true}`))
	f.Add([]byte(`{"system":"init s0\ns0 a s0\n","ltl":"G a","timeout_ms":100}`))
	f.Add([]byte(`{"system":"","ltl":""}`))
	f.Add([]byte(`not json at all`))

	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 8, DefaultTimeout: 2 * time.Second})
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			return
		}
		if req, err := serve.DecodeCheckRequest(data); err == nil {
			if req.System == "" {
				t.Fatalf("decoder accepted empty system: %q", data)
			}
			if (req.LTL == "") == (req.Omega == "") {
				t.Fatalf("decoder accepted bad ltl/omega combination: %q", data)
			}
			if req.TimeoutMS < 0 {
				t.Fatalf("decoder accepted negative timeout: %q", data)
			}
			redecodeServe(t, req, func(b []byte) error { _, err := serve.DecodeCheckRequest(b); return err })
			if len(req.System) <= 512 && len(req.LTL)+len(req.Omega) <= 128 {
				req.TimeoutMS = 1000
				serveOnce(t, handler, "/v1/check/all", req)
			}
		}
		if req, err := serve.DecodePortfolioRequest(data); err == nil {
			if req.System == "" || len(req.LTLs)+len(req.Omegas) == 0 {
				t.Fatalf("portfolio decoder accepted invalid request: %q", data)
			}
			redecodeServe(t, req, func(b []byte) error { _, err := serve.DecodePortfolioRequest(b); return err })
		}
		if req, err := serve.DecodeAbstractionRequest(data); err == nil {
			if req.System == "" || req.Hom == "" || req.Eta == "" {
				t.Fatalf("abstraction decoder accepted invalid request: %q", data)
			}
			redecodeServe(t, req, func(b []byte) error { _, err := serve.DecodeAbstractionRequest(b); return err })
		}
		if req, err := serve.DecodeFairAbstractRequest(data); err == nil {
			if req.System == "" || req.Hom == "" || req.Eta == "" {
				t.Fatalf("fair-abstract decoder accepted invalid request: %q", data)
			}
			if req.Fairness != "strong" && req.Fairness != "weak" {
				t.Fatalf("fair-abstract decoder accepted fairness %q: %q", req.Fairness, data)
			}
			redecodeServe(t, req, func(b []byte) error { _, err := serve.DecodeFairAbstractRequest(b); return err })
			if len(req.System) <= 512 && len(req.Hom)+len(req.Eta) <= 128 {
				req.TimeoutMS = 1000
				serveOnce(t, handler, "/v1/check/fair-abstract", req)
			}
		}
		if req, err := serve.DecodeStatisticalRequest(data); err == nil {
			if req.System == "" {
				t.Fatalf("statistical decoder accepted empty system: %q", data)
			}
			if (req.LTL == "") == (req.Omega == "") {
				t.Fatalf("statistical decoder accepted bad ltl/omega combination: %q", data)
			}
			// The decoder normalizes unset budget fields to the engine
			// defaults before the request is keyed.
			if req.Samples <= 0 || req.Steps <= 0 || req.Confidence <= 0 || req.Confidence >= 1 {
				t.Fatalf("statistical decoder left budget un-normalized: %+v", req)
			}
			redecodeServe(t, req, func(b []byte) error { _, err := serve.DecodeStatisticalRequest(b); return err })
			if len(req.System) <= 512 && len(req.LTL)+len(req.Omega) <= 128 {
				req.TimeoutMS = 1000
				req.Samples, req.Steps = 40, 48
				serveOnce(t, handler, "/v1/check/statistical", req)
			}
		}
	})
}

// redecodeServe asserts the wire round-trip law: a decoded request
// re-marshals to bytes its own decoder accepts.
func redecodeServe(t *testing.T, req any, decode func([]byte) error) {
	t.Helper()
	out, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if err := decode(out); err != nil {
		t.Fatalf("re-marshaled request %s rejected by its own decoder: %v", out, err)
	}
}

// serveOnce pushes a decoded request through the in-process handler and
// requires a known status plus a JSON body.
func serveOnce(t *testing.T, handler http.Handler, path string, req any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)))
	switch rec.Code {
	case http.StatusOK, http.StatusBadRequest, http.StatusTooManyRequests,
		http.StatusInternalServerError, http.StatusGatewayTimeout:
	default:
		t.Fatalf("unexpected status %d for %s: %s", rec.Code, body, rec.Body.String())
	}
	var v any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("status %d body is not JSON: %q", rec.Code, rec.Body.String())
	}
}

// fuzzNFA decodes an NFA over ab from fuzzer bytes: the first byte
// picks the state count, one byte the accepting mask, and each
// remaining byte one transition (from, symbol, to), with symbol 0 as ε.
// The decoding is total, so every input exercises the kernels.
func fuzzNFA(ab *relive.Alphabet, data []byte) *nfa.NFA {
	a := nfa.New(ab)
	if len(data) == 0 {
		return a
	}
	n := 1 + int(data[0])%8
	a.AddStates(n)
	if len(data) > 1 {
		for i := 0; i < n; i++ {
			if data[1]&(1<<(i%8)) != 0 {
				a.SetAccepting(nfa.State(i), true)
			}
		}
	}
	numSyms := ab.Size()
	if len(data) < 3 {
		a.SetInitial(0)
		return a
	}
	for _, b := range data[2:] {
		from := nfa.State(int(b>>5) % n)
		to := nfa.State(int(b>>2&7) % n)
		sym := alphabet.Symbol(int(b) % (numSyms + 1)) // 0 = ε
		a.AddTransition(from, sym, to)
	}
	a.SetInitial(0)
	return a
}

// FuzzAntichainInclusion differ-checks the antichain inclusion and
// universality kernels against the subset-construction references on
// fuzzer-built NFA pairs: verdicts must match, counterexamples must
// have the subset route's (minimal) length and be genuine members of
// L(a) \ L(b).
func FuzzAntichainInclusion(f *testing.F) {
	f.Add([]byte{2, 1, 0x4a, 0x91}, []byte{3, 5, 0x22, 0x7f, 0x08})
	f.Add([]byte{1, 1, 0x05}, []byte{1, 0})
	f.Add([]byte{7, 0xaa, 1, 2, 3, 4, 5, 6, 7, 8}, []byte{7, 0x55, 9, 10, 11, 12, 13})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		if len(da) > 64 || len(db) > 64 {
			return // keep the subset reference cheap
		}
		ab := relive.NewAlphabet("a", "b")
		na := fuzzNFA(ab, da)
		nb := fuzzNFA(ab, db)
		okS, wS, err := nfa.IncludedCtx(nil, na, nb)
		if err != nil {
			t.Fatalf("subset inclusion: %v", err)
		}
		okA, wA, err := nfa.IncludedAntichainCtx(nil, na, nb)
		if err != nil {
			t.Fatalf("antichain inclusion: %v", err)
		}
		if okS != okA {
			t.Fatalf("inclusion divergence: subset=%v antichain=%v\na=%v\nb=%v", okS, okA, na, nb)
		}
		if !okA {
			if len(wA) != len(wS) {
				t.Fatalf("counterexample length divergence: subset %d, antichain %d\na=%v\nb=%v",
					len(wS), len(wA), na, nb)
			}
			if !na.Accepts(wA) || nb.Accepts(wA) {
				t.Fatalf("antichain counterexample not in L(a)\\L(b): %v\na=%v\nb=%v", wA, na, nb)
			}
		}
		uniS, _, err := nfa.UniversalSubsetCtx(nil, nb)
		if err != nil {
			t.Fatalf("subset universality: %v", err)
		}
		uniA, uw, err := nfa.UniversalAntichainCtx(nil, nb)
		if err != nil {
			t.Fatalf("antichain universality: %v", err)
		}
		if uniS != uniA {
			t.Fatalf("universality divergence: subset=%v antichain=%v\nb=%v", uniS, uniA, nb)
		}
		if !uniA && nb.Accepts(uw) {
			t.Fatalf("universality counterexample accepted: %v\nb=%v", uw, nb)
		}
	})
}
