// Package petri implements place/transition Petri nets and the
// construction of their reachability graphs as transition systems. The
// paper's introductory example (Figure 1) is a Petri net whose
// reachability graph (Figure 2) is the finite-state system the
// relative-liveness machinery is then applied to.
package petri

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"relive/internal/alphabet"
	"relive/internal/ts"
)

// PlaceID identifies a place.
type PlaceID int

// Marking assigns a token count to every place.
type Marking []int

// Clone returns a copy of the marking.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

func (m Marking) key() string {
	parts := make([]string, len(m))
	for i, v := range m {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// Transition is a net transition with multiset pre- and postconditions.
type Transition struct {
	Name string
	Pre  map[PlaceID]int
	Post map[PlaceID]int
}

// Net is a place/transition Petri net with an initial marking.
type Net struct {
	ab      *alphabet.Alphabet
	places  []string
	index   map[string]PlaceID
	trans   []Transition
	initial Marking
}

// New returns an empty net. Transition names become action symbols of
// the reachability graph.
func New() *Net {
	return &Net{ab: alphabet.New(), index: map[string]PlaceID{}}
}

// AddPlace adds a place with the given initial token count and returns
// its id. Adding an existing name returns the existing place and leaves
// its marking unchanged.
func (n *Net) AddPlace(name string, tokens int) PlaceID {
	if p, ok := n.index[name]; ok {
		return p
	}
	p := PlaceID(len(n.places))
	n.places = append(n.places, name)
	n.index[name] = p
	n.initial = append(n.initial, tokens)
	return p
}

// PlaceName returns the name of p.
func (n *Net) PlaceName(p PlaceID) string { return n.places[p] }

// NumPlaces returns the number of places.
func (n *Net) NumPlaces() int { return len(n.places) }

// AddTransition adds a transition consuming pre and producing post
// tokens. Place names are interned (new places start with zero tokens).
func (n *Net) AddTransition(name string, pre, post map[string]int) {
	t := Transition{Name: name, Pre: map[PlaceID]int{}, Post: map[PlaceID]int{}}
	for pn, k := range pre {
		t.Pre[n.AddPlace(pn, 0)] = k
	}
	for pn, k := range post {
		t.Post[n.AddPlace(pn, 0)] = k
	}
	n.ab.Symbol(name)
	n.trans = append(n.trans, t)
}

// InitialMarking returns a copy of the initial marking.
func (n *Net) InitialMarking() Marking { return n.initial.Clone() }

// Enabled reports whether t is enabled at m.
func (n *Net) Enabled(t Transition, m Marking) bool {
	for p, k := range t.Pre {
		if m[p] < k {
			return false
		}
	}
	return true
}

// Fire returns the marking after firing t at m; t must be enabled.
func (n *Net) Fire(t Transition, m Marking) Marking {
	out := m.Clone()
	for p, k := range t.Pre {
		out[p] -= k
	}
	for p, k := range t.Post {
		out[p] += k
	}
	return out
}

// MarkingName renders a marking as the sorted set of marked places, with
// multiplicities for counts above one, e.g. "{free,waiting}" or
// "{buf×2,idle}". The empty marking renders as "{}".
func (n *Net) MarkingName(m Marking) string {
	var parts []string
	for p, v := range m {
		switch {
		case v == 1:
			parts = append(parts, n.places[p])
		case v > 1:
			parts = append(parts, fmt.Sprintf("%s×%d", n.places[p], v))
		}
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// ReachabilityGraph explores the markings reachable from the initial
// marking and returns them as a transition system whose actions are the
// transition names. Exploration stops with an error after maxStates
// markings, which guards against unbounded nets.
func (n *Net) ReachabilityGraph(maxStates int) (*ts.System, error) {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	sys := ts.New(n.ab.Clone())
	seen := map[string]ts.State{}
	var queue []Marking
	intern := func(m Marking) (ts.State, bool) {
		k := m.key()
		if st, ok := seen[k]; ok {
			return st, false
		}
		st := sys.AddState(n.MarkingName(m))
		seen[k] = st
		queue = append(queue, m)
		return st, true
	}
	init, _ := intern(n.InitialMarking())
	sys.SetInitial(init)
	for qi := 0; qi < len(queue); qi++ {
		if len(seen) > maxStates {
			return nil, fmt.Errorf("petri: reachability graph exceeds %d markings", maxStates)
		}
		m := queue[qi]
		from := seen[m.key()]
		for _, t := range n.trans {
			if !n.Enabled(t, m) {
				continue
			}
			next := n.Fire(t, m)
			to, _ := intern(next)
			sym, _ := sys.Alphabet().Lookup(t.Name)
			sys.AddTransition(from, sym, to)
		}
	}
	return sys, nil
}

// DOT renders the net as a Graphviz digraph with circle places (marked
// places show their token count) and box transitions.
func (n *Net) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for p, pn := range n.places {
		label := pn
		if n.initial[p] > 0 {
			label = fmt.Sprintf("%s (%d)", pn, n.initial[p])
		}
		fmt.Fprintf(&b, "  %q [shape=circle label=%q];\n", "p_"+pn, label)
	}
	sortedPlaces := func(m map[PlaceID]int) []PlaceID {
		out := make([]PlaceID, 0, len(m))
		for p := range m {
			out = append(out, p)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for ti, t := range n.trans {
		id := fmt.Sprintf("t_%d_%s", ti, t.Name)
		fmt.Fprintf(&b, "  %q [shape=box label=%q];\n", id, t.Name)
		for _, p := range sortedPlaces(t.Pre) {
			attr := ""
			if k := t.Pre[p]; k > 1 {
				attr = fmt.Sprintf(" [label=\"%d\"]", k)
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", "p_"+n.places[p], id, attr)
		}
		for _, p := range sortedPlaces(t.Post) {
			attr := ""
			if k := t.Post[p]; k > 1 {
				attr = fmt.Sprintf(" [label=\"%d\"]", k)
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", id, "p_"+n.places[p], attr)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
