package petri

import (
	"fmt"
	"math/big"
	"strings"
)

// PlaceInvariant is a vector y of rational weights with yᵀ·C = 0 for
// the net's incidence matrix C: the weighted token sum Σ y(p)·M(p) is
// constant across all reachable markings. Invariants with nonnegative
// weights covering every place prove boundedness; the Figure 1 server
// net, for instance, has the invariants idle+waiting+granted+denied = 1
// and free+locked = 1.
type PlaceInvariant struct {
	Weights []*big.Rat // one weight per place
}

// String renders the invariant as a weighted sum over marked places.
func (inv PlaceInvariant) String(n *Net) string {
	var parts []string
	for p, w := range inv.Weights {
		if w.Sign() == 0 {
			continue
		}
		if w.Cmp(big.NewRat(1, 1)) == 0 {
			parts = append(parts, n.PlaceName(PlaceID(p)))
		} else {
			parts = append(parts, fmt.Sprintf("%s·%s", w.RatString(), n.PlaceName(PlaceID(p))))
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}

// Value returns the invariant's weighted token sum at a marking.
func (inv PlaceInvariant) Value(m Marking) *big.Rat {
	sum := new(big.Rat)
	for p, w := range inv.Weights {
		if p < len(m) && m[p] != 0 {
			term := new(big.Rat).Mul(w, big.NewRat(int64(m[p]), 1))
			sum.Add(sum, term)
		}
	}
	return sum
}

// IncidenceMatrix returns C with C[p][t] = Post(t,p) − Pre(t,p).
func (n *Net) IncidenceMatrix() [][]int {
	c := make([][]int, n.NumPlaces())
	for p := range c {
		c[p] = make([]int, len(n.trans))
	}
	for ti, t := range n.trans {
		for p, k := range t.Pre {
			c[p][ti] -= k
		}
		for p, k := range t.Post {
			c[p][ti] += k
		}
	}
	return c
}

// PlaceInvariants returns a basis of the left null space of the
// incidence matrix — all place invariants, up to linear combination —
// computed by Gaussian elimination over the rationals (exact, no
// floating point).
func (n *Net) PlaceInvariants() []PlaceInvariant {
	numP := n.NumPlaces()
	numT := len(n.trans)
	// Solve yᵀ·C = 0, i.e. Cᵀ·y = 0: build Cᵀ (numT × numP) and find
	// the null space basis.
	m := make([][]*big.Rat, numT)
	c := n.IncidenceMatrix()
	for t := 0; t < numT; t++ {
		m[t] = make([]*big.Rat, numP)
		for p := 0; p < numP; p++ {
			m[t][p] = big.NewRat(int64(c[p][t]), 1)
		}
	}
	// Gaussian elimination to reduced row echelon form.
	pivotCol := make([]int, 0, numT)
	row := 0
	for col := 0; col < numP && row < numT; col++ {
		sel := -1
		for r := row; r < numT; r++ {
			if m[r][col].Sign() != 0 {
				sel = r
				break
			}
		}
		if sel < 0 {
			continue
		}
		m[row], m[sel] = m[sel], m[row]
		inv := new(big.Rat).Inv(m[row][col])
		for j := col; j < numP; j++ {
			m[row][j] = new(big.Rat).Mul(m[row][j], inv)
		}
		for r := 0; r < numT; r++ {
			if r == row || m[r][col].Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Set(m[r][col])
			for j := col; j < numP; j++ {
				term := new(big.Rat).Mul(factor, m[row][j])
				m[r][j] = new(big.Rat).Sub(m[r][j], term)
			}
		}
		pivotCol = append(pivotCol, col)
		row++
	}
	isPivot := make([]bool, numP)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	// One basis vector per free column.
	var basis []PlaceInvariant
	for free := 0; free < numP; free++ {
		if isPivot[free] {
			continue
		}
		y := make([]*big.Rat, numP)
		for p := range y {
			y[p] = new(big.Rat)
		}
		y[free].SetInt64(1)
		for r, pc := range pivotCol {
			// y[pc] = -m[r][free] (row r is 1 at pc).
			y[pc] = new(big.Rat).Neg(m[r][free])
		}
		basis = append(basis, PlaceInvariant{Weights: y})
	}
	return basis
}

// CheckInvariant verifies yᵀ·C = 0 directly against every transition.
func (n *Net) CheckInvariant(inv PlaceInvariant) bool {
	c := n.IncidenceMatrix()
	for t := range n.trans {
		sum := new(big.Rat)
		for p := 0; p < n.NumPlaces(); p++ {
			if c[p][t] == 0 {
				continue
			}
			term := new(big.Rat).Mul(inv.Weights[p], big.NewRat(int64(c[p][t]), 1))
			sum.Add(sum, term)
		}
		if sum.Sign() != 0 {
			return false
		}
	}
	return true
}

// IsCoveredByPositiveInvariant reports whether some nonnegative linear
// combination of the invariant basis assigns positive weight to every
// place, which proves the net bounded. The implementation uses the
// simple sufficient check of summing the basis vectors that are
// themselves nonnegative.
func (n *Net) IsCoveredByPositiveInvariant() bool {
	basis := n.PlaceInvariants()
	covered := make([]bool, n.NumPlaces())
	for _, inv := range basis {
		nonneg := true
		for _, w := range inv.Weights {
			if w.Sign() < 0 {
				nonneg = false
				break
			}
		}
		if !nonneg {
			continue
		}
		for p, w := range inv.Weights {
			if w.Sign() > 0 {
				covered[p] = true
			}
		}
	}
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	return len(covered) > 0
}
