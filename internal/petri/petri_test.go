package petri

import (
	"strings"
	"testing"

	"relive/internal/word"
)

// producerConsumer returns a small bounded net: produce moves a token
// from slots to items, consume moves it back. capacity = tokens in slots.
func producerConsumer(capacity int) *Net {
	n := New()
	n.AddPlace("slots", capacity)
	n.AddPlace("items", 0)
	n.AddTransition("produce", map[string]int{"slots": 1}, map[string]int{"items": 1})
	n.AddTransition("consume", map[string]int{"items": 1}, map[string]int{"slots": 1})
	return n
}

func TestFiring(t *testing.T) {
	n := producerConsumer(2)
	m := n.InitialMarking()
	prod := n.trans[0]
	cons := n.trans[1]
	if !n.Enabled(prod, m) {
		t.Fatal("produce not enabled initially")
	}
	if n.Enabled(cons, m) {
		t.Fatal("consume enabled with no items")
	}
	m1 := n.Fire(prod, m)
	if m1[0] != 1 || m1[1] != 1 {
		t.Errorf("marking after produce = %v", m1)
	}
	if m[0] != 2 {
		t.Error("Fire mutated its input marking")
	}
	m2 := n.Fire(prod, m1)
	if n.Enabled(prod, m2) {
		t.Error("produce enabled beyond capacity")
	}
}

func TestReachabilityGraph(t *testing.T) {
	n := producerConsumer(2)
	sys, err := n.ReachabilityGraph(100)
	if err != nil {
		t.Fatal(err)
	}
	// Markings: (2,0), (1,1), (0,2).
	if sys.NumStates() != 3 {
		t.Fatalf("reachability graph has %d states, want 3", sys.NumStates())
	}
	ab := sys.Alphabet()
	if !sys.AcceptsWord(word.FromNames(ab, "produce", "produce", "consume", "consume")) {
		t.Error("legal firing sequence rejected")
	}
	if sys.AcceptsWord(word.FromNames(ab, "consume")) {
		t.Error("illegal firing sequence accepted")
	}
	if sys.AcceptsWord(word.FromNames(ab, "produce", "produce", "produce")) {
		t.Error("over-capacity firing sequence accepted")
	}
}

func TestReachabilityGraphLimit(t *testing.T) {
	// Unbounded net: t produces tokens forever.
	n := New()
	n.AddPlace("p", 1)
	n.AddTransition("t", map[string]int{"p": 1}, map[string]int{"p": 2})
	if _, err := n.ReachabilityGraph(50); err == nil {
		t.Error("unbounded net did not hit the state limit")
	}
}

func TestMarkingName(t *testing.T) {
	n := producerConsumer(2)
	if got := n.MarkingName(Marking{2, 0}); got != "{slots×2}" {
		t.Errorf("MarkingName = %q", got)
	}
	if got := n.MarkingName(Marking{1, 1}); got != "{items,slots}" {
		t.Errorf("MarkingName = %q", got)
	}
	if got := n.MarkingName(Marking{0, 0}); got != "{}" {
		t.Errorf("MarkingName = %q", got)
	}
}

func TestAddPlaceIdempotent(t *testing.T) {
	n := New()
	p1 := n.AddPlace("p", 3)
	p2 := n.AddPlace("p", 99)
	if p1 != p2 {
		t.Error("AddPlace created duplicate place")
	}
	if n.InitialMarking()[p1] != 3 {
		t.Error("re-adding place changed its marking")
	}
	if n.PlaceName(p1) != "p" || n.NumPlaces() != 1 {
		t.Error("place bookkeeping wrong")
	}
}

func TestDOT(t *testing.T) {
	n := producerConsumer(1)
	dot := n.DOT("pc")
	for _, want := range []string{"digraph", "shape=circle", "shape=box", "produce", "slots (1)"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
