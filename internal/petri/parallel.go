package petri

import (
	"fmt"
	"runtime"

	"relive/internal/alphabet"
	"relive/internal/graph"
	"relive/internal/ts"
)

// ReachabilityGraphParallel is ReachabilityGraph with frontier-parallel
// exploration: each BFS level's markings are expanded (enabledness
// checks, firings, key rendering — the dominant cost) concurrently by
// the given number of workers into per-worker successor buffers, while
// state numbering and transition insertion happen in a serial merge
// that visits successors in exactly the serial BFS discovery order. The
// resulting system is bit-identical to ReachabilityGraph's — same state
// numbering, names, and transitions — for any worker count; equality is
// pinned by the test suite. The sharded visited set is read lock-free
// by the expansion workers (the merge only writes between levels) and
// lets them pre-resolve already-known successors.
//
// workers == 1 delegates to the serial construction; workers <= 0
// means runtime.GOMAXPROCS(0).
func (n *Net) ReachabilityGraphParallel(maxStates, workers int) (*ts.System, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return n.ReachabilityGraph(maxStates)
	}
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	sys := ts.New(n.ab.Clone())
	// Resolve transition symbols before the fan-out so workers never
	// touch the (mutable, interning) alphabet.
	syms := make([]alphabet.Symbol, len(n.trans))
	for i, t := range n.trans {
		syms[i], _ = sys.Alphabet().Lookup(t.Name)
	}

	type item struct {
		m  Marking
		st ts.State
	}
	// succ is one fired transition: the transition index, the successor
	// marking with its key, and the state number when the expansion
	// worker already found it in the visited set (st < 0: unknown at
	// expansion time — new this level, or discovered by an earlier item
	// of the same level).
	type succ struct {
		t   int
		m   Marking
		key string
		st  int32
	}

	seen := graph.NewVisitedShards(graph.FNV1a)
	init := sys.AddState(n.MarkingName(n.InitialMarking()))
	sys.SetInitial(init)
	seen.Put(n.InitialMarking().key(), int32(init))
	visited := 1

	expand := func(it item, buf []succ) []succ {
		for ti, t := range n.trans {
			if !n.Enabled(t, it.m) {
				continue
			}
			next := n.Fire(t, it.m)
			s := succ{t: ti, m: next, key: next.key(), st: -1}
			if st, ok := seen.Get(s.key); ok {
				s.st = st
			}
			buf = append(buf, s)
		}
		return buf
	}
	absorb := func(it item, succs []succ, push func(item)) error {
		if visited > maxStates {
			return fmt.Errorf("petri: reachability graph exceeds %d markings", maxStates)
		}
		for _, s := range succs {
			to := ts.State(s.st)
			if s.st < 0 {
				// Not visited as of the previous level; it may still have
				// been interned by an earlier item of this level.
				if st, ok := seen.Get(s.key); ok {
					to = ts.State(st)
				} else {
					to = sys.AddState(n.MarkingName(s.m))
					seen.Put(s.key, int32(to))
					visited++
					push(item{m: s.m, st: to})
				}
			}
			sys.AddTransition(it.st, syms[s.t], to)
		}
		return nil
	}
	roots := []item{{m: n.InitialMarking(), st: init}}
	if err := graph.ParallelFrontier(roots, workers, expand, absorb); err != nil {
		return nil, err
	}
	return sys, nil
}
