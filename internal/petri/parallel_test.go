package petri

import (
	"reflect"
	"testing"

	"relive/internal/ts"
)

// tokenRing is a bounded net whose reachability graph is the set of
// distributions of `tokens` tokens over four places — wide enough that
// every BFS level holds several markings.
func tokenRing(tokens int) *Net {
	n := New()
	n.AddPlace("p0", tokens)
	n.AddPlace("p1", 0)
	n.AddPlace("p2", 0)
	n.AddPlace("p3", 0)
	move := func(name, from, to string) {
		n.AddTransition(name, map[string]int{from: 1}, map[string]int{to: 1})
	}
	move("t01", "p0", "p1")
	move("t12", "p1", "p2")
	move("t23", "p2", "p3")
	move("t30", "p3", "p0")
	move("t02", "p0", "p2")
	move("t13", "p1", "p3")
	return n
}

// pipelineNet is a two-process net with a synchronizing buffer place
// between a producer loop and a consumer loop.
func pipelineNet() *Net {
	n := New()
	n.AddPlace("ready", 1)
	n.AddPlace("produced", 0)
	n.AddPlace("buffer", 0)
	n.AddPlace("waiting", 1)
	n.AddPlace("consumed", 0)
	n.AddPlace("space", 2)
	n.AddTransition("produce", map[string]int{"ready": 1}, map[string]int{"produced": 1})
	n.AddTransition("send", map[string]int{"produced": 1, "space": 1}, map[string]int{"ready": 1, "buffer": 1})
	n.AddTransition("receive", map[string]int{"waiting": 1, "buffer": 1}, map[string]int{"consumed": 1, "space": 1})
	n.AddTransition("consume", map[string]int{"consumed": 1}, map[string]int{"waiting": 1})
	return n
}

// sameSystem asserts the two systems are bit-identical: same state
// numbering, names, initial state, and transition multiset.
func sameSystem(t *testing.T, want, got *ts.System, label string) {
	t.Helper()
	if want.NumStates() != got.NumStates() {
		t.Fatalf("%s: %d states, serial has %d", label, got.NumStates(), want.NumStates())
	}
	for st := 0; st < want.NumStates(); st++ {
		if want.StateName(ts.State(st)) != got.StateName(ts.State(st)) {
			t.Fatalf("%s: state %d named %q, serial names it %q",
				label, st, got.StateName(ts.State(st)), want.StateName(ts.State(st)))
		}
	}
	if want.Initial() != got.Initial() {
		t.Fatalf("%s: initial %d, serial has %d", label, got.Initial(), want.Initial())
	}
	if !reflect.DeepEqual(want.Edges(), got.Edges()) {
		t.Fatalf("%s: edge set differs from serial", label)
	}
}

func TestReachabilityGraphParallelBitIdentical(t *testing.T) {
	nets := []struct {
		name string
		net  *Net
	}{
		{"pipeline", pipelineNet()},
		{"ring3", tokenRing(3)},
		{"ring6", tokenRing(6)},
	}
	for _, tc := range nets {
		serial, err := tc.net.ReachabilityGraph(0)
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := tc.net.ReachabilityGraphParallel(0, workers)
			if err != nil {
				t.Fatalf("%s parallel(%d): %v", tc.name, workers, err)
			}
			sameSystem(t, serial, par, tc.name)
		}
	}
}

func TestReachabilityGraphParallelMaxStates(t *testing.T) {
	// An unbounded net: the parallel construction must report the same
	// explosion error as the serial one instead of diverging.
	n := New()
	n.AddPlace("p", 1)
	n.AddTransition("grow", map[string]int{"p": 1}, map[string]int{"p": 2})
	_, serr := n.ReachabilityGraph(50)
	_, perr := n.ReachabilityGraphParallel(50, 4)
	if serr == nil || perr == nil {
		t.Fatalf("expected explosion errors, got serial=%v parallel=%v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("error text differs: serial %q, parallel %q", serr, perr)
	}
}

func TestReachabilityGraphParallelWorkerDefaults(t *testing.T) {
	n := tokenRing(2)
	serial, err := n.ReachabilityGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1} { // GOMAXPROCS and serial delegation
		par, err := n.ReachabilityGraphParallel(0, workers)
		if err != nil {
			t.Fatal(err)
		}
		sameSystem(t, serial, par, "defaults")
	}
}
