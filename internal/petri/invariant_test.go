package petri

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestIncidenceMatrix(t *testing.T) {
	n := producerConsumer(2)
	c := n.IncidenceMatrix()
	// produce: slots -1, items +1; consume: slots +1, items -1.
	if c[0][0] != -1 || c[1][0] != 1 || c[0][1] != 1 || c[1][1] != -1 {
		t.Errorf("incidence matrix = %v", c)
	}
}

func TestPlaceInvariantsProducerConsumer(t *testing.T) {
	n := producerConsumer(3)
	basis := n.PlaceInvariants()
	if len(basis) != 1 {
		t.Fatalf("basis size = %d, want 1", len(basis))
	}
	inv := basis[0]
	if !n.CheckInvariant(inv) {
		t.Fatal("basis vector is not an invariant")
	}
	// slots + items is constant = 3.
	if got := inv.Value(n.InitialMarking()); got.Cmp(inv.Value(Marking{1, 2})) != 0 {
		t.Errorf("invariant value changed: %v vs %v", got, inv.Value(Marking{1, 2}))
	}
	if !n.IsCoveredByPositiveInvariant() {
		t.Error("producer/consumer net should be covered (bounded)")
	}
}

func TestInvariantValuePreservedAlongFirings(t *testing.T) {
	n := producerConsumer(2)
	basis := n.PlaceInvariants()
	rng := rand.New(rand.NewSource(7))
	m := n.InitialMarking()
	initVals := make([]*big.Rat, len(basis))
	for i, inv := range basis {
		initVals[i] = inv.Value(m)
	}
	for step := 0; step < 50; step++ {
		var enabled []Transition
		for _, tr := range n.trans {
			if n.Enabled(tr, m) {
				enabled = append(enabled, tr)
			}
		}
		if len(enabled) == 0 {
			break
		}
		m = n.Fire(enabled[rng.Intn(len(enabled))], m)
		for i, inv := range basis {
			if inv.Value(m).Cmp(initVals[i]) != 0 {
				t.Fatalf("invariant %d violated at step %d: %v != %v",
					i, step, inv.Value(m), initVals[i])
			}
		}
	}
}

func TestFig1StyleInvariants(t *testing.T) {
	// Rebuild the paper's server net shape locally (petri cannot import
	// the paper package, which imports petri).
	n := New()
	n.AddPlace("idle", 1)
	n.AddPlace("free", 1)
	n.AddTransition("request", map[string]int{"idle": 1}, map[string]int{"waiting": 1})
	n.AddTransition("yes", map[string]int{"waiting": 1, "free": 1}, map[string]int{"granted": 1, "free": 1})
	n.AddTransition("no", map[string]int{"waiting": 1, "locked": 1}, map[string]int{"denied": 1, "locked": 1})
	n.AddTransition("result", map[string]int{"granted": 1}, map[string]int{"idle": 1})
	n.AddTransition("reject", map[string]int{"denied": 1}, map[string]int{"idle": 1})
	n.AddTransition("lock", map[string]int{"free": 1}, map[string]int{"locked": 1})
	n.AddTransition("free", map[string]int{"locked": 1}, map[string]int{"free": 1})

	basis := n.PlaceInvariants()
	// Client cycle (4 places) and resource cycle (2 places): 2 invariants.
	if len(basis) != 2 {
		t.Fatalf("basis size = %d, want 2 (client and resource cycles)", len(basis))
	}
	for i, inv := range basis {
		if !n.CheckInvariant(inv) {
			t.Errorf("basis vector %d not an invariant: %s", i, inv.String(n))
		}
	}
	if !n.IsCoveredByPositiveInvariant() {
		t.Error("server net should be covered by positive invariants (it is 1-bounded)")
	}
}

func TestUnboundedNetNotCovered(t *testing.T) {
	n := New()
	n.AddPlace("p", 1)
	n.AddTransition("t", map[string]int{"p": 1}, map[string]int{"p": 2})
	// Incidence is the 1×1 matrix [1]: the only invariant is y = 0, so
	// no positive invariant covers p.
	if len(n.PlaceInvariants()) != 0 {
		t.Errorf("unbounded net has nonzero invariant basis")
	}
	if n.IsCoveredByPositiveInvariant() {
		t.Error("unbounded net reported covered")
	}
}

func TestInvariantString(t *testing.T) {
	n := producerConsumer(1)
	basis := n.PlaceInvariants()
	if len(basis) != 1 {
		t.Fatal("unexpected basis")
	}
	s := basis[0].String(n)
	if s == "0" || s == "" {
		t.Errorf("String = %q", s)
	}
	zero := PlaceInvariant{Weights: []*big.Rat{new(big.Rat), new(big.Rat)}}
	if zero.String(n) != "0" {
		t.Errorf("zero invariant String = %q", zero.String(n))
	}
}
