// Package exp is the experiment harness reproducing every figure and
// in-text claim of Nitsche & Wolper (PODC'97), plus the scaling studies
// that stand in for the paper's PSPACE-completeness result (the paper
// is an extended abstract with no empirical evaluation; its figures and
// worked examples are the artifacts to reproduce — see DESIGN.md §3).
//
// Each experiment returns a Result with named observations and the
// paper's corresponding claim, so cmd/rlbench can print a
// paper-vs-measured table and the test suite can assert every row.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Observation is a single measured fact.
type Observation struct {
	Name  string
	Value string
	// Claim is what the paper states, when it states anything; empty for
	// purely informational rows.
	Claim string
	// Match reports whether Value is consistent with Claim; true for
	// informational rows.
	Match bool
}

// Result is the outcome of one experiment.
type Result struct {
	ID           string // e.g. "E2"
	Artifact     string // e.g. "Figure 2"
	Title        string
	Observations []Observation
}

// Passed reports whether every observation matched its claim.
func (r Result) Passed() bool {
	for _, o := range r.Observations {
		if !o.Match {
			return false
		}
	}
	return true
}

// String renders the result as an aligned table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): %s\n", r.ID, r.Artifact, r.Title)
	nameW, valueW := 0, 0
	for _, o := range r.Observations {
		if len(o.Name) > nameW {
			nameW = len(o.Name)
		}
		if len(o.Value) > valueW {
			valueW = len(o.Value)
		}
	}
	for _, o := range r.Observations {
		status := "  "
		if o.Claim != "" {
			if o.Match {
				status = "OK"
			} else {
				status = "!!"
			}
		}
		fmt.Fprintf(&b, "  [%s] %-*s  %-*s", status, nameW, o.Name, valueW, o.Value)
		if o.Claim != "" {
			fmt.Fprintf(&b, "  (paper: %s)", o.Claim)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// info records an informational observation.
func info(name, value string) Observation {
	return Observation{Name: name, Value: value, Match: true}
}

// claim records an observation checked against a paper claim.
func claim(name, value, paperClaim string, match bool) Observation {
	return Observation{Name: name, Value: value, Claim: paperClaim, Match: match}
}

// claimBool is claim for boolean observations with an expected value.
func claimBool(name string, got, want bool, paperClaim string) Observation {
	return claim(name, fmt.Sprintf("%v", got), paperClaim, got == want)
}

// Runner executes an experiment.
type Runner func() (Result, error)

// Experiment is one registry entry: an id and its runner. Experiments
// are self-contained (each builds its own nets, systems, and alphabets)
// and safe to run concurrently (rlbench -parallel).
type Experiment struct {
	ID  string
	Run Runner
}

// All returns the registry of experiments in order.
func All() []Experiment {
	reg := []Experiment{
		{"E1", E1Fig1Reachability},
		{"E2", E2Fig2RelativeLiveness},
		{"E3", E3Fig3NotRelativeLiveness},
		{"E4", E4Fig4Abstraction},
		{"E5", E5Simplicity},
		{"E6", E6RbarTransform},
		{"E7", E7FairImplementation},
		{"E8", func() (Result, error) { return E8Scaling(DefaultScalingSizes()) }},
		{"E9", func() (Result, error) { return E9ConjunctionTheorem(200) }},
		{"E10", func() (Result, error) { return E10MachineClosure(200) }},
		{"E11", func() (Result, error) { return E11Compositional(5) }},
		{"E12", E12FeatureInteraction},
		{"E13", E13MonteCarlo},
	}
	return reg
}

// RunAll executes every experiment in order, returning results sorted
// by ID.
func RunAll() ([]Result, error) {
	var out []Result
	for _, e := range All() {
		r, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out, nil
}

func lessID(a, b string) bool {
	var ai, bi int
	fmt.Sscanf(a, "E%d", &ai)
	fmt.Sscanf(b, "E%d", &bi)
	return ai < bi
}
