package exp

import (
	"math/rand"

	"relive/internal/core"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/obs"
)

// PhaseQuantiles summarizes the per-run latency distribution of one
// decision-pipeline phase (core.Phases) across the probe corpus.
// Quantiles are bucket upper bounds from obs.Histogram, so they carry
// its ≤ 25% relative error — fine for tracking phase-cost shifts
// across PRs, which is what the BENCH_*.json records are for.
type PhaseQuantiles struct {
	Phase string `json:"phase"`
	Count uint64 `json:"count"`
	P50NS int64  `json:"p50_ns"`
	P90NS int64  `json:"p90_ns"`
	P99NS int64  `json:"p99_ns"`
	MaxNS int64  `json:"max_ns"`
}

// PhaseDistributions runs trials instrumented CheckAll decisions over
// seeded random systems and alternating properties, aggregates every
// span's duration by pipeline phase (trim, property→Büchi, product
// pre-computation, emptiness, sampling — each trial also runs one
// small statistical sweep so the sampled path is probed), and returns
// per-phase p50/p90/p99/max. The corpus is deterministic, so two
// BENCH_*.json files compare the same workload; only the timings vary.
func PhaseDistributions(trials int) ([]PhaseQuantiles, error) {
	rng := rand.New(rand.NewSource(9901))
	ab := gen.Letters(2)
	props := []core.Property{
		core.FromFormula(ltl.MustParse("G F a"), nil),
		core.FromFormula(ltl.MustParse("G (a -> F b)"), nil),
		core.FromFormula(ltl.MustParse("F G b"), nil),
	}
	hists := make(map[string]*obs.Histogram, len(core.Phases))
	for _, ph := range core.Phases {
		hists[ph] = &obs.Histogram{}
	}
	for t := 0; t < trials; t++ {
		sys := randomSystem(rng, ab, 4+rng.Intn(29))
		tr := obs.NewTrace()
		if _, err := core.CheckAllRec(tr, sys, props[t%len(props)]); err != nil {
			return nil, err
		}
		if _, err := core.CheckStatisticalRec(tr, sys, props[t%len(props)],
			core.StatOptions{Seed: int64(t), Samples: 40, Steps: 64, Workers: 1}); err != nil {
			return nil, err
		}
		// Sum each phase's span durations within the run, then observe the
		// per-run total — the same aggregation the serving layer uses for
		// its flight records, so the numbers are directly comparable.
		perPhase := make(map[string]int64, len(core.Phases))
		for _, s := range tr.Spans() {
			if ph := core.PhaseOf(s.Name); ph != "" && s.DurationNS >= 0 {
				perPhase[ph] += s.DurationNS
			}
		}
		for ph, d := range perPhase {
			hists[ph].Observe(d)
		}
	}
	out := make([]PhaseQuantiles, 0, len(core.Phases))
	for _, ph := range core.Phases {
		s := hists[ph].Snapshot()
		out = append(out, PhaseQuantiles{
			Phase: ph,
			Count: s.Count,
			P50NS: s.Quantile(0.50),
			P90NS: s.Quantile(0.90),
			P99NS: s.Quantile(0.99),
			MaxNS: s.Max(),
		})
	}
	return out, nil
}
