package exp

import (
	"fmt"

	"relive/internal/fairness"
	"relive/internal/ltl"
	"relive/internal/paper"
	"relive/internal/ts"
	"relive/internal/word"
)

// E13MonteCarlo explores the paper's concluding remark (Section 9):
// relative liveness properties informally say "almost all computations
// satisfy the property", connecting them to probabilistic verification
// [26, 27]. Under the uniform random scheduler a finite-state system
// almost surely settles into a bottom SCC and sweeps it fairly, so a
// relative liveness property holds with probability 1 — and a property
// that is not relative liveness (Figure 3) fails almost surely once the
// unrecoverable region absorbs the run. The experiment estimates both
// probabilities by Monte Carlo sampling.
func E13MonteCarlo() (Result, error) {
	const (
		runs  = 200
		steps = 160
		seed  = 1337
	)
	evalOn := func(sys *ts.System, f *ltl.Formula) func(word.Lasso) (bool, error) {
		lab := ltl.Canonical(sys.Alphabet())
		return func(l word.Lasso) (bool, error) { return ltl.EvalLasso(f, l, lab) }
	}

	fig2, err := paper.Fig2System()
	if err != nil {
		return Result{}, err
	}
	freq2, err := fairness.SatisfactionFrequency(fig2, seed, runs, steps,
		evalOn(fig2, paper.PropertyInfResults()))
	if err != nil {
		return Result{}, err
	}

	fig3 := paper.Fig3System()
	freq3, err := fairness.SatisfactionFrequency(fig3, seed, runs, steps,
		evalOn(fig3, paper.PropertyInfResults()))
	if err != nil {
		return Result{}, err
	}

	sec5 := paper.Section5System()
	freq5, err := fairness.SatisfactionFrequency(sec5, seed, runs, steps,
		evalOn(sec5, paper.Section5Property()))
	if err != nil {
		return Result{}, err
	}

	return Result{
		ID: "E13", Artifact: "§9 outlook", Title: "relative liveness ≈ probability-1 satisfaction (Monte Carlo)",
		Observations: []Observation{
			claim("P(□◇result) on Figure 2", fmt.Sprintf("%.3f", freq2),
				"relative liveness ⇒ almost all computations satisfy it", freq2 == 1.0),
			claim("P(□◇result) on Figure 3", fmt.Sprintf("%.3f", freq3),
				"not relative liveness ⇒ fails almost surely", freq3 == 0.0),
			claim("P(◇(a ∧ ○a)) on {a,b}^ω", fmt.Sprintf("%.3f", freq5),
				"relative liveness ⇒ probability ≈ 1", freq5 >= 0.95),
			info("samples", fmt.Sprintf("%d runs × %d steps", runs, steps)),
		},
	}, nil
}
