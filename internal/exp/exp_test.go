package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs the whole harness and asserts every
// observation matches the paper's claim. This is the executable
// EXPERIMENTS.md.
func TestAllExperimentsPass(t *testing.T) {
	results, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 13 {
		t.Fatalf("got %d experiments, want 13", len(results))
	}
	for _, r := range results {
		if !r.Passed() {
			t.Errorf("%s failed:\n%s", r.ID, r)
		}
	}
}

func TestResultRendering(t *testing.T) {
	r := Result{
		ID: "E0", Artifact: "test", Title: "rendering",
		Observations: []Observation{
			info("k", "v"),
			claim("c", "x", "y", false),
		},
	}
	s := r.String()
	for _, want := range []string{"E0", "[  ] k", "[!!] c", "(paper: y)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	if r.Passed() {
		t.Error("failing result reported as passed")
	}
}

func TestWorkerFarmGrowth(t *testing.T) {
	for n, want := range map[int]int{1: 3, 2: 9, 3: 27} {
		sys, err := WorkerFarm(n)
		if err != nil {
			t.Fatal(err)
		}
		if sys.NumStates() != want {
			t.Errorf("farm(%d) has %d states, want %d", n, sys.NumStates(), want)
		}
	}
}
