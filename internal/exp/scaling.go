package exp

import (
	"fmt"
	"math/rand"
	"time"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/core"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/nfa"
)

// ScalingSizes configures the E8 sweep.
type ScalingSizes struct {
	SystemStates []int // sweep of random-system sizes, fixed property
	FormulaDepth []int // sweep of nested-Until depth, fixed system size
	Trials       int   // systems averaged per point
}

// DefaultScalingSizes returns the sweep reported by cmd/rlbench.
func DefaultScalingSizes() ScalingSizes {
	return ScalingSizes{
		SystemStates: []int{4, 8, 16, 32, 64},
		FormulaDepth: []int{1, 2, 3, 4},
		Trials:       5,
	}
}

// ScalingPoint is one measured point of the E8 sweep.
type ScalingPoint struct {
	Label    string
	Elapsed  time.Duration
	Decided  int // checks performed
	MaxProd  int // largest Büchi product built
	Verdicts int // how many were "holds"
}

// E8Scaling stands in for Theorem 4.5 (PSPACE-completeness): absolute
// complexity cannot be measured, but the decision procedure's cost
// growing with system size and property size — driven by the product
// and subset constructions — is its observable face.
func E8Scaling(sizes ScalingSizes) (Result, error) {
	rng := rand.New(rand.NewSource(4501))
	ab := gen.Letters(2)
	obs := []Observation{}
	prop := core.FromFormula(ltl.MustParse("G F a"), nil)

	var prev time.Duration
	monotoneish := true
	for _, n := range sizes.SystemStates {
		pt, err := scalePoint(rng, ab, n, prop, sizes.Trials)
		if err != nil {
			return Result{}, err
		}
		obs = append(obs, info(
			fmt.Sprintf("states=%d (G F a)", n),
			fmt.Sprintf("%v per check, max product %d states", pt.Elapsed, pt.MaxProd)))
		if pt.Elapsed < prev/4 {
			monotoneish = false
		}
		prev = pt.Elapsed
	}
	for _, d := range sizes.FormulaDepth {
		f := nestedUntil(d)
		p := core.FromFormula(f, nil)
		pt, err := scalePoint(rng, ab, 8, p, sizes.Trials)
		if err != nil {
			return Result{}, err
		}
		pa, err := p.Automaton(ab)
		if err != nil {
			return Result{}, err
		}
		obs = append(obs, info(
			fmt.Sprintf("formula depth=%d (states=8)", d),
			fmt.Sprintf("%v per check, property automaton %d states", pt.Elapsed, pa.NumStates())))
	}
	obs = append(obs, claimBool("cost grows with instance size", monotoneish, true,
		"deciding relative liveness is PSPACE-complete (Theorem 4.5)"))

	// The exponential face of the hardness: the language Σ*·a·Σ^(n−1)
	// ("the n-th letter from the end is a") has an (n+1)-state NFA whose
	// minimal DFA needs 2^n states; the subset construction inside the
	// relative-liveness checker pays exactly this price.
	blowupOK := true
	for _, n := range []int{2, 4, 6, 8} {
		states := determinizedSize(nthFromEnd(n))
		obs = append(obs, info(
			fmt.Sprintf("determinization of Σ*·a·Σ^%d", n-1),
			fmt.Sprintf("NFA %d states → DFA %d states", n+1, states)))
		if states != 1<<n {
			blowupOK = false
		}
	}
	obs = append(obs, claimBool("subset-construction blow-up is 2^n", blowupOK, true,
		"hardness via reduction from regular-language inclusion"))
	return Result{
		ID: "E8", Artifact: "Theorem 4.5", Title: "decision-procedure scaling (system and property sweeps)",
		Observations: obs,
	}, nil
}

// nthFromEnd returns the (n+1)-state NFA for "the n-th letter from the
// end is a" over {a,b}.
func nthFromEnd(n int) *nfa.NFA {
	ab := gen.Letters(2)
	a := nfa.New(ab)
	sa, _ := ab.Lookup("a")
	sb, _ := ab.Lookup("b")
	q0 := a.AddState(false)
	a.AddTransition(q0, sa, q0)
	a.AddTransition(q0, sb, q0)
	prev := q0
	for i := 0; i < n; i++ {
		next := a.AddState(i == n-1)
		if i == 0 {
			a.AddTransition(prev, sa, next)
		} else {
			a.AddTransition(prev, sa, next)
			a.AddTransition(prev, sb, next)
		}
		prev = next
	}
	a.SetInitial(q0)
	return a
}

func determinizedSize(a *nfa.NFA) int {
	return a.Determinize().Minimize().NumStates()
}

// scalePoint averages the relative-liveness decision over trials random
// systems of n states and records the largest intermediate product.
func scalePoint(rng *rand.Rand, ab *alphabet.Alphabet, n int, p core.Property, trials int) (ScalingPoint, error) {
	var total time.Duration
	pt := ScalingPoint{Decided: trials}
	for t := 0; t < trials; t++ {
		sys := randomSystem(rng, ab, n)
		start := time.Now()
		res, err := core.RelativeLiveness(sys, p)
		if err != nil {
			return ScalingPoint{}, err
		}
		total += time.Since(start)
		if res.Holds {
			pt.Verdicts++
		}
		trimmed, err := sys.Trim()
		if err != nil {
			continue
		}
		beh, err := trimmed.Behaviors()
		if err != nil {
			return ScalingPoint{}, err
		}
		pa, err := p.Automaton(ab)
		if err != nil {
			return ScalingPoint{}, err
		}
		if prod := buchi.Intersect(beh, pa); prod.NumStates() > pt.MaxProd {
			pt.MaxProd = prod.NumStates()
		}
	}
	pt.Elapsed = total / time.Duration(trials)
	return pt, nil
}

// nestedUntil builds ((a U b) U a ...) of the given depth.
func nestedUntil(depth int) *ltl.Formula {
	f := ltl.Atom("a")
	for i := 0; i < depth; i++ {
		atom := "b"
		if i%2 == 1 {
			atom = "a"
		}
		f = ltl.Until(f, ltl.Eventually(ltl.Atom(atom)))
	}
	return ltl.Globally(f)
}
