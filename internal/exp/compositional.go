package exp

import (
	"fmt"
	"time"

	"relive/internal/core"
	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/nfa"
	"relive/internal/telecom"
	"relive/internal/ts"
)

// workerComponent builds one independent worker: idle -req_i-> busy
// -work_i-> done -res_i-> idle, over its private alphabet.
func workerComponent(i int) *ts.System {
	suffix := fmt.Sprintf("%d", i)
	s, err := ts.ParseString(fmt.Sprintf(`
init idle%[1]s
idle%[1]s req%[1]s busy%[1]s
busy%[1]s work%[1]s done%[1]s
done%[1]s res%[1]s idle%[1]s
`, suffix))
	if err != nil {
		panic(err) // static template: cannot fail
	}
	return s
}

// WorkerFarm composes n independent workers by interleaving.
func WorkerFarm(n int) (*ts.System, error) {
	sys := workerComponent(0)
	for i := 1; i < n; i++ {
		var err error
		sys, err = ts.Product(sys, workerComponent(i))
		if err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// E11Compositional demonstrates the Section 9 motivation: computing the
// abstract behavior compositionally — abstract each component, then
// compose — gives the same abstraction as abstracting the full product,
// at a fraction of the state space, and relative liveness of the
// observable property can be checked on it.
func E11Compositional(n int) (Result, error) {
	concrete, err := WorkerFarm(n)
	if err != nil {
		return Result{}, err
	}
	// Observe only worker 0's request and result.
	h := hom.Identity(concrete.Alphabet(), "req0", "res0")
	concNFA, err := concrete.NFA()
	if err != nil {
		return Result{}, err
	}
	startMono := time.Now()
	monolithic := h.ImageNFA(concNFA).Determinize().Minimize()
	monoTime := time.Since(startMono)

	// Compositional route: abstract worker 0 alone (the other components
	// are fully hidden and independent, so their image is {ε}).
	startComp := time.Now()
	comp0 := workerComponent(0)
	hComp := hom.Identity(comp0.Alphabet(), "req0", "res0")
	comp0NFA, err := comp0.NFA()
	if err != nil {
		return Result{}, err
	}
	compositional := hComp.ImageNFA(comp0NFA).Determinize().Minimize()
	compTime := time.Since(startComp)

	sameLang := nfa.EquivalentDFA(monolithic, renameDFA(compositional, monolithic))

	// Verify the observable property on the abstraction and conclude for
	// the concrete product via simplicity.
	eta := ltl.MustParse("G (req0 -> F res0)")
	report, err := core.VerifyViaAbstraction(concrete, h, eta)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID: "E11", Artifact: "§9 / [22]", Title: "compositional abstraction of an interleaved worker farm",
		Observations: []Observation{
			info("components", fmt.Sprintf("%d", n)),
			info("concrete product states", fmt.Sprintf("%d", concrete.NumStates())),
			info("abstract states", fmt.Sprintf("%d", monolithic.NumStates())),
			claimBool("compositional == monolithic abstraction", sameLang, true,
				"abstract behavior computable by partial exploration"),
			info("monolithic abstraction time", monoTime.String()),
			info("compositional abstraction time", compTime.String()),
			claimBool("h simple on the farm", report.Simple, true, "simple homomorphisms license the conclusion"),
			claimBool("abstract G(req0 → ◇res0) relative liveness", report.AbstractHolds, true, ""),
			claim("conclusion", report.Conclusion.String(), "Theorem 8.2",
				report.Conclusion == core.ConcreteHolds),
		},
	}, nil
}

// E12FeatureInteraction runs the [6]-style case study: the
// well-integrated switch passes the abstraction pipeline; the
// misintegrated one is refuted at the concrete level and its
// abstraction is untrustworthy (non-simple), mirroring Figures 2/3.
func E12FeatureInteraction() (Result, error) {
	good := telecom.WellIntegrated()
	bad := telecom.Misintegrated()
	eta := telecom.HandledProperty()

	goodReport, err := core.VerifyViaAbstraction(good, telecom.Abstraction(good), eta)
	if err != nil {
		return Result{}, err
	}
	badConcrete, err := core.ConcreteProperty(telecom.Abstraction(bad), eta)
	if err != nil {
		return Result{}, err
	}
	badDirect, err := core.RelativeLiveness(bad, badConcrete)
	if err != nil {
		return Result{}, err
	}
	badNFA, err := bad.NFA()
	if err != nil {
		return Result{}, err
	}
	badSimple, err := telecom.Abstraction(bad).IsSimple(badNFA)
	if err != nil {
		return Result{}, err
	}
	goodSat, err := core.Satisfies(good, core.FromFormula(ltl.MustParse(
		"G (call -> F (answer | fwdanswer | record))"), nil))
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID: "E12", Artifact: "[6] case study", Title: "feature interaction: call forwarding vs voice mail",
		Observations: []Observation{
			claimBool("well-integrated satisfied outright", goodSat.Holds, false,
				"bouncing makes it fail without fairness"),
			claimBool("well-integrated: h simple", goodReport.Simple, true, ""),
			claimBool("well-integrated: abstract RL", goodReport.AbstractHolds, true, ""),
			claim("well-integrated conclusion", goodReport.Conclusion.String(),
				"Theorem 8.2", goodReport.Conclusion == core.ConcreteHolds),
			claimBool("misintegrated: concrete RL of R̄(η)", badDirect.Holds, false,
				"the interaction bug starves the call"),
			claimBool("misintegrated: h simple", badSimple.Simple, false,
				"abstraction alone would hide the bug"),
		},
	}, nil
}
