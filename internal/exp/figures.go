package exp

import (
	"fmt"

	"relive/internal/core"
	"relive/internal/ltl"
	"relive/internal/nfa"
	"relive/internal/paper"
	"relive/internal/word"
)

// E1Fig1Reachability reproduces the Figure 1 → Figure 2 step: the
// reachability graph of the server Petri net.
func E1Fig1Reachability() (Result, error) {
	net := paper.Fig1Net()
	sys, err := net.ReachabilityGraph(64)
	if err != nil {
		return Result{}, err
	}
	trimmed, err := sys.Trim()
	if err != nil {
		return Result{}, err
	}
	ab := trimmed.Alphabet()
	counterexamplePath := trimmed.AcceptsWord(word.FromNames(ab,
		paper.ActLock, paper.ActRequest, paper.ActNo, paper.ActReject))
	return Result{
		ID: "E1", Artifact: "Figure 1→2", Title: "reachability graph of the server net",
		Observations: []Observation{
			info("places", fmt.Sprintf("%d", net.NumPlaces())),
			info("reachable markings", fmt.Sprintf("%d", sys.NumStates())),
			claim("states after trim", fmt.Sprintf("%d", trimmed.NumStates()),
				"finite-state behavior diagram", trimmed.NumStates() == 8),
			claimBool("path lock·request·no·reject exists", counterexamplePath, true,
				"lock·(request·no·reject)^ω is a computation"),
		},
	}, nil
}

// E2Fig2RelativeLiveness reproduces Section 2's claims about Figure 2:
// □◇result is not satisfied but is a relative liveness property.
func E2Fig2RelativeLiveness() (Result, error) {
	sys, err := paper.Fig2System()
	if err != nil {
		return Result{}, err
	}
	p := core.FromFormula(paper.PropertyInfResults(), nil)
	sat, err := core.Satisfies(sys, p)
	if err != nil {
		return Result{}, err
	}
	rl, err := core.RelativeLiveness(sys, p)
	if err != nil {
		return Result{}, err
	}
	rs, err := core.RelativeSafety(sys, p)
	if err != nil {
		return Result{}, err
	}
	obs := []Observation{
		claimBool("□◇result satisfied", sat.Holds, false, "not satisfied"),
		claimBool("□◇result relative liveness", rl.Holds, true, "is a relative liveness property"),
		// Theorem 4.7: unsatisfied + RL ⇒ not relative safety.
		claimBool("□◇result relative safety", rs.Holds, false, "excluded by Theorem 4.7"),
	}
	if !sat.Holds {
		obs = append(obs, info("counterexample", sat.Counterexample.String(sys.Alphabet())))
	}
	return Result{
		ID: "E2", Artifact: "Figure 2", Title: "relative liveness of □◇result on the server",
		Observations: obs,
	}, nil
}

// E3Fig3NotRelativeLiveness reproduces the erroneous-system claim: no
// fairness notion can make □◇result true of Figure 3.
func E3Fig3NotRelativeLiveness() (Result, error) {
	sys := paper.Fig3System()
	p := core.FromFormula(paper.PropertyInfResults(), nil)
	rl, err := core.RelativeLiveness(sys, p)
	if err != nil {
		return Result{}, err
	}
	obs := []Observation{
		claimBool("□◇result relative liveness", rl.Holds, false,
			"no notion of fairness can make it true"),
	}
	if !rl.Holds {
		obs = append(obs, info("unrecoverable prefix", rl.BadPrefix.String(sys.Alphabet())))
	}
	// Cross-check with the fairness machinery: even all strongly fair
	// runs violate it... more precisely, some strongly fair run violates
	// it on every implementation candidate; here, on the system itself.
	fairOK, _, err := core.AllStronglyFairRunsSatisfy(sys, p)
	if err != nil {
		return Result{}, err
	}
	obs = append(obs, claimBool("strong fairness suffices on Figure 3", fairOK, false,
		"fairness cannot help"))
	return Result{
		ID: "E3", Artifact: "Figure 3", Title: "the erroneous server is beyond fairness",
		Observations: obs,
	}, nil
}

// E4Fig4Abstraction reproduces the abstraction step: both Figure 2 and
// Figure 3 abstract to the two-state Figure 4, on which □◇result is a
// relative liveness property.
func E4Fig4Abstraction() (Result, error) {
	fig2, err := paper.Fig2System()
	if err != nil {
		return Result{}, err
	}
	fig3 := paper.Fig3System()
	fig4, err := paper.Fig4System()
	if err != nil {
		return Result{}, err
	}
	a2, err := fig2.NFA()
	if err != nil {
		return Result{}, err
	}
	a3, err := fig3.NFA()
	if err != nil {
		return Result{}, err
	}
	img2 := paper.AbstractionHom(fig2).ImageNFA(a2).Determinize().Minimize()
	img3 := paper.AbstractionHom(fig3).ImageNFA(a3).Determinize().Minimize()
	sameLang := img2.NumStates() == img3.NumStates() && nfa.EquivalentDFA(img2, renameDFA(img3, img2)) // see renameDFA

	rl, err := core.RelativeLiveness(fig4, core.FromFormula(paper.PropertyInfResults(), nil))
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID: "E4", Artifact: "Figure 4", Title: "abstract version of the small system",
		Observations: []Observation{
			claim("abstract states", fmt.Sprintf("%d", fig4.NumStates()), "two-state diagram",
				fig4.NumStates() == 2),
			claimBool("Fig2 and Fig3 abstract identically", sameLang, true,
				"Figure 4 is also obtained by abstracting Figure 3"),
			claimBool("□◇result relative liveness on abstract", rl.Holds, true,
				"is a relative liveness property of Figure 4"),
		},
	}, nil
}

// renameDFA rebuilds b over a's alphabet by letter names so the two
// image DFAs (built over separately interned alphabets) are comparable.
func renameDFA(b, a *nfa.DFA) *nfa.DFA {
	out := nfa.NewDFA(a.Alphabet())
	for i := 0; i < b.NumStates(); i++ {
		out.AddState(b.Accepting(nfa.State(i)))
	}
	for i := 0; i < b.NumStates(); i++ {
		for _, sym := range b.Alphabet().Symbols() {
			if t, ok := b.Delta(nfa.State(i), sym); ok {
				out.SetTransition(nfa.State(i), a.Alphabet().Symbol(b.Alphabet().Name(sym)), t)
			}
		}
	}
	out.SetInitial(b.Initial())
	return out
}

// E5Simplicity reproduces the Section 2 / Section 8 distinction: the
// hiding homomorphism is simple on Figure 2's language but not on
// Figure 3's, which is exactly what licenses (resp. forbids) concluding
// from Figure 4 back to the concrete system.
func E5Simplicity() (Result, error) {
	fig2, err := paper.Fig2System()
	if err != nil {
		return Result{}, err
	}
	fig3 := paper.Fig3System()

	a2, err := fig2.NFA()
	if err != nil {
		return Result{}, err
	}
	a3, err := fig3.NFA()
	if err != nil {
		return Result{}, err
	}
	s2, err := paper.AbstractionHom(fig2).IsSimple(a2)
	if err != nil {
		return Result{}, err
	}
	s3, err := paper.AbstractionHom(fig3).IsSimple(a3)
	if err != nil {
		return Result{}, err
	}
	obs := []Observation{
		claimBool("h simple on Figure 2", s2.Simple, true,
			"the homomorphism preserves relative liveness properties"),
		claimBool("h simple on Figure 3", s3.Simple, false,
			"it does not do so in the case of Figure 3"),
	}
	if !s3.Simple {
		obs = append(obs, info("non-simplicity witness", s3.Witness.String(fig3.Alphabet())))
	}
	// Corollary 8.4 in action.
	rep2, err := core.VerifyViaAbstraction(fig2, paper.AbstractionHom(fig2), paper.PropertyInfResults())
	if err != nil {
		return Result{}, err
	}
	rep3, err := core.VerifyViaAbstraction(fig3, paper.AbstractionHom(fig3), paper.PropertyInfResults())
	if err != nil {
		return Result{}, err
	}
	obs = append(obs,
		claim("conclusion for Figure 2", rep2.Conclusion.String(), "Theorem 8.2 applies",
			rep2.Conclusion == core.ConcreteHolds),
		claim("conclusion for Figure 3", rep3.Conclusion.String(), "not without caution (Section 2)",
			rep3.Conclusion == core.Inconclusive),
	)
	return Result{
		ID: "E5", Artifact: "§2/§8", Title: "simplicity separates the two abstractions",
		Observations: obs,
	}, nil
}

// E6RbarTransform reproduces Definition 7.4 / Figure 5: the R̄
// transformation and the Lemma 7.5 equivalence, validated on sampled
// words.
func E6RbarTransform() (Result, error) {
	eta := paper.PropertyInfResults()
	rbar, err := ltl.Rbar(eta)
	if err != nil {
		return Result{}, err
	}
	agree, total, err := lemma75Sample()
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID: "E6", Artifact: "Figure 5", Title: "the T/R̄ property transformation",
		Observations: []Observation{
			info("η", eta.String()),
			info("R̄(η)", rbar.String()),
			claim("Lemma 7.5 word-level agreement",
				fmt.Sprintf("%d/%d", agree, total), "equivalence", agree == total),
		},
	}, nil
}

// E7FairImplementation reproduces the Section 5 example and
// Theorem 5.1.
func E7FairImplementation() (Result, error) {
	sys := paper.Section5System()
	p := core.FromFormula(paper.Section5Property(), nil)
	rl, err := core.RelativeLiveness(sys, p)
	if err != nil {
		return Result{}, err
	}
	minimalOK, _, err := core.AllStronglyFairRunsSatisfy(sys, p)
	if err != nil {
		return Result{}, err
	}
	fi, err := core.SynthesizeFairImplementation(sys, p)
	if err != nil {
		return Result{}, err
	}
	same, _, err := fi.SameBehaviors(sys)
	if err != nil {
		return Result{}, err
	}
	implOK, _, err := fi.AllStronglyFairRunsSatisfy(p)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID: "E7", Artifact: "§5", Title: "fair implementation of ◇(a ∧ ○a) over {a,b}^ω",
		Observations: []Observation{
			claimBool("◇(a ∧ ○a) relative liveness of {a,b}^ω", rl.Holds, true,
				"it is a relative liveness property"),
			claimBool("strong fairness suffices on minimal automaton", minimalOK, false,
				"it is not sufficient to impose strong fairness"),
			claimBool("implementation accepts exactly L_ω", same, true, "accepts L_ω"),
			claimBool("all strongly fair runs satisfy P", implOK, true,
				"all strongly fair computations satisfy P"),
			info("implementation states", fmt.Sprintf("%d (minimal system: %d)",
				fi.System.NumStates(), sys.NumStates())),
		},
	}, nil
}
