package exp

import (
	"fmt"
	"math/rand"

	"relive/internal/alphabet"
	"relive/internal/core"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/ts"
	"relive/internal/word"
)

// lemma75Sample checks the word-level Lemma 7.5 equivalence on a fixed
// random corpus of formulas and ultimately periodic words, returning
// (agreements, total).
func lemma75Sample() (int, int, error) {
	rng := rand.New(rand.NewSource(7551))
	src := alphabet.FromNames("a", "b", "c")
	dst := alphabet.FromNames("x", "y")
	image := func(s alphabet.Symbol) alphabet.Symbol {
		switch src.Name(s) {
		case "a":
			x, _ := dst.Lookup("x")
			return x
		case "b":
			y, _ := dst.Lookup("y")
			return y
		default:
			return alphabet.Epsilon
		}
	}
	hLab := ltl.CanonicalImage(src, dst, image)
	dstLab := ltl.Canonical(dst)
	apply := func(w word.Word) word.Word {
		var out word.Word
		for _, s := range w {
			if d := image(s); d != alphabet.Epsilon {
				out = append(out, d)
			}
		}
		return out
	}
	agree, total := 0, 0
	for trial := 0; trial < 100; trial++ {
		eta := randomFormula(rng, []string{"x", "y"}, 3)
		rbar, err := ltl.Rbar(eta)
		if err != nil {
			return 0, 0, err
		}
		for i := 0; i < 10; i++ {
			x := gen.Lasso(rng, src, 3, 3)
			loopImg := apply(x.Loop)
			if len(loopImg) == 0 {
				continue // h(x) undefined
			}
			hx := word.MustLasso(apply(x.Prefix), loopImg)
			concrete, err := ltl.EvalLasso(rbar, x, hLab)
			if err != nil {
				return 0, 0, err
			}
			abstract, err := ltl.EvalLasso(eta, hx, dstLab)
			if err != nil {
				return 0, 0, err
			}
			total++
			if concrete == abstract {
				agree++
			}
		}
	}
	return agree, total, nil
}

// randomFormula builds a random PLTL formula over the given atoms.
func randomFormula(rng *rand.Rand, atoms []string, depth int) *ltl.Formula {
	if depth <= 0 || rng.Float64() < 0.3 {
		return ltl.Atom(atoms[rng.Intn(len(atoms))])
	}
	switch rng.Intn(7) {
	case 0:
		return ltl.Not(ltl.Atom(atoms[rng.Intn(len(atoms))]))
	case 1:
		return ltl.And(randomFormula(rng, atoms, depth-1), randomFormula(rng, atoms, depth-1))
	case 2:
		return ltl.Or(randomFormula(rng, atoms, depth-1), randomFormula(rng, atoms, depth-1))
	case 3:
		return ltl.Next(randomFormula(rng, atoms, depth-1))
	case 4:
		return ltl.Until(randomFormula(rng, atoms, depth-1), randomFormula(rng, atoms, depth-1))
	case 5:
		return ltl.Eventually(randomFormula(rng, atoms, depth-1))
	default:
		return ltl.Globally(randomFormula(rng, atoms, depth-1))
	}
}

// randomGeneralFormula additionally produces negations of compound
// formulas, exercising normalization.
func randomGeneralFormula(rng *rand.Rand, atoms []string, depth int) *ltl.Formula {
	f := randomFormula(rng, atoms, depth)
	if rng.Float64() < 0.3 {
		return ltl.Not(f)
	}
	return f
}

// randomSystem builds a random transition system.
func randomSystem(rng *rand.Rand, ab *alphabet.Alphabet, n int) *ts.System {
	s := ts.New(ab)
	for i := 0; i < n; i++ {
		s.AddState(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < n; i++ {
		for _, sym := range ab.Symbols() {
			for k := 0; k < 2; k++ {
				if rng.Float64() < 0.45 {
					from, _ := s.LookupState(fmt.Sprintf("s%d", i))
					to, _ := s.LookupState(fmt.Sprintf("s%d", rng.Intn(n)))
					s.AddTransition(from, sym, to)
				}
			}
		}
	}
	init, _ := s.LookupState("s0")
	s.SetInitial(init)
	return s
}

// E9ConjunctionTheorem samples Theorem 4.7 (satisfaction ⟺ relative
// liveness ∧ relative safety) over random systems and formulas.
func E9ConjunctionTheorem(samples int) (Result, error) {
	rng := rand.New(rand.NewSource(4701))
	ab := gen.Letters(2)
	atoms := ab.Names()
	agree := 0
	for i := 0; i < samples; i++ {
		sys := randomSystem(rng, ab, 1+rng.Intn(4))
		p := core.FromFormula(randomGeneralFormula(rng, atoms, 3), nil)
		direct, err := core.Satisfies(sys, p)
		if err != nil {
			return Result{}, err
		}
		conj, err := core.SatisfiesViaConjunction(sys, p)
		if err != nil {
			return Result{}, err
		}
		if direct.Holds == conj {
			agree++
		}
	}
	return Result{
		ID: "E9", Artifact: "Theorem 4.7", Title: "satisfaction ⟺ relative liveness ∧ relative safety",
		Observations: []Observation{
			claim("agreement", fmt.Sprintf("%d/%d", agree, samples), "equivalence",
				agree == samples),
		},
	}, nil
}

// E10MachineClosure samples the machine-closure connection stated after
// Theorem 4.5: P relative liveness of L_ω ⟺ (L_ω, P ∩ L_ω) machine
// closed, comparing three decision routes.
func E10MachineClosure(samples int) (Result, error) {
	rng := rand.New(rand.NewSource(4601))
	ab := gen.Letters(2)
	atoms := ab.Names()
	agreeMC, agreeDirect, agreeTopo := 0, 0, 0
	agreeRSDirect, agreeRSTopo := 0, 0
	for i := 0; i < samples; i++ {
		sys := randomSystem(rng, ab, 1+rng.Intn(4))
		p := core.FromFormula(randomGeneralFormula(rng, atoms, 3), nil)
		rl, err := core.RelativeLiveness(sys, p)
		if err != nil {
			return Result{}, err
		}
		mc, err := core.RelativeLivenessViaMachineClosure(sys, p)
		if err != nil {
			return Result{}, err
		}
		dir, err := core.RelativeLivenessDirect(sys, p)
		if err != nil {
			return Result{}, err
		}
		topo, err := core.RelativeLivenessTopological(sys, p)
		if err != nil {
			return Result{}, err
		}
		if rl.Holds == mc.Holds {
			agreeMC++
		}
		if rl.Holds == dir.Holds {
			agreeDirect++
		}
		if rl.Holds == topo.Holds {
			agreeTopo++
		}
		rs, err := core.RelativeSafety(sys, p)
		if err != nil {
			return Result{}, err
		}
		rsDir, err := core.RelativeSafetyDirect(sys, p)
		if err != nil {
			return Result{}, err
		}
		rsTopo, err := core.RelativeSafetyTopological(sys, p)
		if err != nil {
			return Result{}, err
		}
		if rs.Holds == rsDir.Holds {
			agreeRSDirect++
		}
		if rs.Holds == rsTopo.Holds {
			agreeRSTopo++
		}
	}
	return Result{
		ID: "E10", Artifact: "Definition 4.6", Title: "agreement of all independent decision routes",
		Observations: []Observation{
			claim("RL: machine-closure route", fmt.Sprintf("%d/%d", agreeMC, samples),
				"equivalence (after Thm 4.5)", agreeMC == samples),
			claim("RL: Definition 4.1 route", fmt.Sprintf("%d/%d", agreeDirect, samples),
				"equivalence (Lemma 4.3)", agreeDirect == samples),
			claim("RL: Cantor-density route", fmt.Sprintf("%d/%d", agreeTopo, samples),
				"equivalence (Lemma 4.9)", agreeTopo == samples),
			claim("RS: Definition 4.2 route", fmt.Sprintf("%d/%d", agreeRSDirect, samples),
				"equivalence (Lemma 4.4)", agreeRSDirect == samples),
			claim("RS: Cantor-closedness route", fmt.Sprintf("%d/%d", agreeRSTopo, samples),
				"equivalence (Lemma 4.10)", agreeRSTopo == samples),
		},
	}, nil
}
