// Package paper reconstructs the concrete artifacts of Nitsche & Wolper
// (PODC'97): the Petri net of Figure 1, the behavior systems of
// Figures 2 and 3, the abstraction homomorphism leading to Figure 4, and
// the Section 5 example. The figures are images in the source; these
// models are rebuilt from the paper's prose, which pins down all the
// facts the experiments check:
//
//   - the system is a server that, after a request, answers result or
//     rejection depending on whether its resource is free or locked;
//   - Figure 2 is the reachability graph of Figure 1 and has the
//     computation lock·(request·no·reject)^ω, so the decision between
//     result and rejection is taken by internal actions yes/no and
//     the resource toggles via lock/free;
//   - □◇result is not satisfied but is a relative liveness property of
//     Figure 2;
//   - Figure 3 drops the possibility of freeing a locked resource and
//     additionally allows rejections while the resource is free; no
//     fairness makes □◇result true there, and it is not a relative
//     liveness property;
//   - hiding everything but request/result/reject abstracts both
//     Figures 2 and 3 to the same two-state system (Figure 4), and the
//     homomorphism is simple on Figure 2's language but not on
//     Figure 3's.
package paper

import (
	"relive/internal/alphabet"
	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/petri"
	"relive/internal/ts"
)

// Action names of the server model.
const (
	ActRequest = "request"
	ActResult  = "result"
	ActReject  = "reject"
	ActYes     = "yes"
	ActNo      = "no"
	ActLock    = "lock"
	ActFree    = "free"
)

// Fig1Net returns the Petri net of Figure 1: a server with places for
// the client conversation (idle/waiting/granted/denied) and the resource
// state (free/locked).
func Fig1Net() *petri.Net {
	n := petri.New()
	n.AddPlace("idle", 1)
	n.AddPlace("free", 1)
	n.AddTransition(ActRequest,
		map[string]int{"idle": 1},
		map[string]int{"waiting": 1})
	n.AddTransition(ActYes,
		map[string]int{"waiting": 1, "free": 1},
		map[string]int{"granted": 1, "free": 1})
	n.AddTransition(ActNo,
		map[string]int{"waiting": 1, "locked": 1},
		map[string]int{"denied": 1, "locked": 1})
	n.AddTransition(ActResult,
		map[string]int{"granted": 1},
		map[string]int{"idle": 1})
	n.AddTransition(ActReject,
		map[string]int{"denied": 1},
		map[string]int{"idle": 1})
	n.AddTransition(ActLock,
		map[string]int{"free": 1},
		map[string]int{"locked": 1})
	n.AddTransition(ActFree,
		map[string]int{"locked": 1},
		map[string]int{"free": 1})
	return n
}

// Fig2System returns the behaviors of the small system (Figure 2): the
// reachability graph of the Figure 1 net. It has 8 states (4 client
// phases × 2 resource states).
func Fig2System() (*ts.System, error) {
	sys, err := Fig1Net().ReachabilityGraph(64)
	if err != nil {
		return nil, err
	}
	return sys.Trim()
}

// Fig3System returns the behaviors of the erroneous system (Figure 3):
// a locked resource can never be freed again, and a request can be
// rejected even while the resource is available.
func Fig3System() *ts.System {
	ab := alphabet.FromNames(ActRequest, ActResult, ActReject, ActYes, ActNo, ActLock)
	s := ts.New(ab)
	// Free half.
	s.AddEdge("F.idle", ActRequest, "F.waiting")
	s.AddEdge("F.waiting", ActYes, "F.granted")
	s.AddEdge("F.waiting", ActNo, "F.denied") // the extra rejection branch
	s.AddEdge("F.granted", ActResult, "F.idle")
	s.AddEdge("F.denied", ActReject, "F.idle")
	// Locking (possible at any phase), irrevocably.
	s.AddEdge("F.idle", ActLock, "L.idle")
	s.AddEdge("F.waiting", ActLock, "L.waiting")
	s.AddEdge("F.granted", ActLock, "L.granted")
	s.AddEdge("F.denied", ActLock, "L.denied")
	// Locked half: no yes, no way back.
	s.AddEdge("L.idle", ActRequest, "L.waiting")
	s.AddEdge("L.waiting", ActNo, "L.denied")
	s.AddEdge("L.granted", ActResult, "L.idle")
	s.AddEdge("L.denied", ActReject, "L.idle")
	init, _ := s.LookupState("F.idle")
	s.SetInitial(init)
	return s
}

// ObservableActions are the actions kept by the Section 2 abstraction.
var ObservableActions = []string{ActRequest, ActResult, ActReject}

// AbstractionHom returns the abstracting homomorphism of Section 2 for
// the given system: request, result and reject are observed, every other
// action is hidden (mapped to ε).
func AbstractionHom(s *ts.System) *hom.Hom {
	return hom.Identity(s.Alphabet(), ObservableActions...)
}

// Fig4System returns the abstract version of the small system
// (Figure 4): the image of Figure 2 (equally: of Figure 3) under the
// Section 2 homomorphism, reduced to its minimal deterministic form.
func Fig4System() (*ts.System, error) {
	sys, err := Fig2System()
	if err != nil {
		return nil, err
	}
	return AbstractionHom(sys).ImageSystem(sys)
}

// PropertyInfResults returns □◇result, the property discussed throughout
// Sections 2 and 8.
func PropertyInfResults() *ltl.Formula {
	return ltl.Globally(ltl.Eventually(ltl.Atom(ActResult)))
}

// Section5System returns the one-state system with behaviors {a,b}^ω
// from Section 5.
func Section5System() *ts.System {
	ab := alphabet.FromNames("a", "b")
	s := ts.New(ab)
	s.AddEdge("q", "a", "q")
	s.AddEdge("q", "b", "q")
	init, _ := s.LookupState("q")
	s.SetInitial(init)
	return s
}

// Section5Property returns ◇(a ∧ ○a): a relative liveness property of
// {a,b}^ω that strong fairness on the minimal automaton does not
// enforce, motivating the added state information of Theorem 5.1.
func Section5Property() *ltl.Formula {
	return ltl.Eventually(ltl.And(ltl.Atom("a"), ltl.Next(ltl.Atom("a"))))
}
