package paper

import (
	"testing"

	"relive/internal/word"
)

func TestFig1ReachabilityIsFig2(t *testing.T) {
	sys, err := Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	// 4 client phases × 2 resource states.
	if sys.NumStates() != 8 {
		t.Errorf("Figure 2 has %d states, want 8", sys.NumStates())
	}
	ab := sys.Alphabet()
	// The paper's counterexample path exists.
	if !sys.AcceptsWord(word.FromNames(ab, ActLock, ActRequest, ActNo, ActReject, ActRequest)) {
		t.Error("lock·request·no·reject·request not a path of Figure 2")
	}
	// A granted request yields a result.
	if !sys.AcceptsWord(word.FromNames(ab, ActRequest, ActYes, ActResult)) {
		t.Error("request·yes·result not a path of Figure 2")
	}
	// yes requires a free resource.
	if sys.AcceptsWord(word.FromNames(ab, ActLock, ActRequest, ActYes)) {
		t.Error("yes fired while the resource was locked")
	}
	// no requires a locked resource in the correct system.
	if sys.AcceptsWord(word.FromNames(ab, ActRequest, ActNo)) {
		t.Error("no fired while the resource was free (Figure 2 has no such branch)")
	}
	// The resource can be freed again.
	if !sys.AcceptsWord(word.FromNames(ab, ActLock, ActFree, ActRequest, ActYes, ActResult)) {
		t.Error("lock·free·request·yes·result not a path of Figure 2")
	}
}

func TestFig3Shape(t *testing.T) {
	sys := Fig3System()
	ab := sys.Alphabet()
	if _, ok := ab.Lookup(ActFree); ok {
		t.Error("Figure 3 must not have a free action")
	}
	// The erroneous extra branch: rejection while free.
	if !sys.AcceptsWord(word.FromNames(ab, ActRequest, ActNo, ActReject)) {
		t.Error("request·no·reject (while free) not a path of Figure 3")
	}
	// Locking is irrevocable: after lock, yes never fires.
	if sys.AcceptsWord(word.FromNames(ab, ActLock, ActRequest, ActYes)) {
		t.Error("yes fired after lock in Figure 3")
	}
	// Behaviors still infinite everywhere (trim keeps all states).
	trimmed, err := sys.Trim()
	if err != nil {
		t.Fatal(err)
	}
	if trimmed.NumStates() != sys.NumStates() {
		t.Errorf("Figure 3 has dead states: %d -> %d", sys.NumStates(), trimmed.NumStates())
	}
}

func TestFig4Shape(t *testing.T) {
	sys, err := Fig4System()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumStates() != 2 {
		t.Fatalf("Figure 4 has %d states, want 2", sys.NumStates())
	}
	ab := sys.Alphabet()
	if !sys.AcceptsWord(word.FromNames(ab, ActRequest, ActResult, ActRequest, ActReject)) {
		t.Error("request·result·request·reject not a path of Figure 4")
	}
	if sys.AcceptsWord(word.FromNames(ab, ActResult)) {
		t.Error("result without request accepted by Figure 4")
	}
	if sys.AcceptsWord(word.FromNames(ab, ActRequest, ActRequest)) {
		t.Error("two requests in a row accepted by Figure 4")
	}
}

func TestSection5Artifacts(t *testing.T) {
	sys := Section5System()
	if sys.NumStates() != 1 {
		t.Errorf("Section 5 system has %d states, want 1", sys.NumStates())
	}
	if got := Section5Property().String(); got != "◇(a ∧ ○a)" {
		t.Errorf("Section 5 property = %q", got)
	}
	if got := PropertyInfResults().String(); got != "□◇result" {
		t.Errorf("□◇result renders as %q", got)
	}
}

func TestFig1NetStructure(t *testing.T) {
	n := Fig1Net()
	if n.NumPlaces() != 6 {
		t.Errorf("Figure 1 net has %d places, want 6", n.NumPlaces())
	}
	m := n.InitialMarking()
	total := 0
	for _, v := range m {
		total += v
	}
	if total != 2 {
		t.Errorf("initial marking has %d tokens, want 2 (idle + free)", total)
	}
}
