package alphabet

import "testing"

func TestInterning(t *testing.T) {
	a := New()
	x := a.Symbol("x")
	y := a.Symbol("y")
	if x == y {
		t.Fatalf("distinct names interned to same symbol %d", x)
	}
	if got := a.Symbol("x"); got != x {
		t.Errorf("re-interning x: got %d, want %d", got, x)
	}
	if a.Size() != 2 {
		t.Errorf("Size() = %d, want 2", a.Size())
	}
}

func TestEpsilonReserved(t *testing.T) {
	a := New()
	if got := a.Symbol(EpsilonName); got != Epsilon {
		t.Errorf("Symbol(ε) = %d, want %d", got, Epsilon)
	}
	if !Epsilon.IsEpsilon() {
		t.Error("Epsilon.IsEpsilon() = false")
	}
	if a.Symbol("a").IsEpsilon() {
		t.Error("proper letter reported as ε")
	}
	if a.Contains(Epsilon) {
		t.Error("Contains(Epsilon) = true; ε is not a proper letter")
	}
}

func TestLookup(t *testing.T) {
	a := FromNames("req", "res")
	if s, ok := a.Lookup("req"); !ok || a.Name(s) != "req" {
		t.Errorf("Lookup(req) = (%v, %v)", s, ok)
	}
	if _, ok := a.Lookup("missing"); ok {
		t.Error("Lookup(missing) succeeded")
	}
	if got := a.Name(Symbol(99)); got != "?99" {
		t.Errorf("Name(99) = %q", got)
	}
}

func TestSymbolsAndNames(t *testing.T) {
	a := FromNames("c", "a", "b")
	syms := a.Symbols()
	if len(syms) != 3 {
		t.Fatalf("Symbols() returned %d symbols, want 3", len(syms))
	}
	names := a.Names()
	want := []string{"c", "a", "b"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
	if got := a.String(); got != "{a, b, c}" {
		t.Errorf("String() = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromNames("a")
	c := a.Clone()
	c.Symbol("b")
	if a.Size() != 1 {
		t.Errorf("mutating clone changed original: size %d", a.Size())
	}
	if c.Size() != 2 {
		t.Errorf("clone size = %d, want 2", c.Size())
	}
	if s, _ := c.Lookup("a"); c.Name(s) != "a" {
		t.Error("clone lost symbol a")
	}
}

func TestExtend(t *testing.T) {
	a := FromNames("a", "b")
	b := FromNames("b", "c")
	m := a.Extend(b)
	if m[Epsilon] != Epsilon {
		t.Error("Extend must map ε to ε")
	}
	bs, _ := b.Lookup("b")
	cs, _ := b.Lookup("c")
	if a.Name(m[bs]) != "b" {
		t.Errorf("b mapped to %q", a.Name(m[bs]))
	}
	if a.Name(m[cs]) != "c" {
		t.Errorf("c mapped to %q", a.Name(m[cs]))
	}
	if a.Size() != 3 {
		t.Errorf("extended alphabet size = %d, want 3", a.Size())
	}
}
