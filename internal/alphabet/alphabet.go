// Package alphabet provides interned action symbols and finite alphabets.
//
// Systems, automata, temporal-logic formulas and homomorphisms in this
// module all speak about actions drawn from a finite alphabet Σ. Symbols
// are interned to small integers so that the hot automata loops never
// touch strings. Symbol 0 is reserved for the empty word ε, which appears
// as the image of hidden actions under abstracting homomorphisms
// (Definition 6.1 of Nitsche & Wolper, PODC'97) and as the ε atomic
// proposition of Definition 7.3.
package alphabet

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol identifies a letter of an alphabet. The zero value is Epsilon,
// the empty word; real letters are numbered from 1.
type Symbol int

// Epsilon is the reserved symbol for the empty word ε.
const Epsilon Symbol = 0

// EpsilonName is the printable name of the Epsilon symbol.
const EpsilonName = "ε"

// IsEpsilon reports whether s is the reserved empty-word symbol.
func (s Symbol) IsEpsilon() bool { return s == Epsilon }

// Alphabet is a finite set of named symbols. The zero value is not usable;
// construct alphabets with New.
type Alphabet struct {
	names []string
	index map[string]Symbol
}

// New returns an empty alphabet containing only the reserved ε symbol.
func New() *Alphabet {
	return &Alphabet{
		names: []string{EpsilonName},
		index: map[string]Symbol{EpsilonName: Epsilon},
	}
}

// FromNames returns an alphabet containing the given symbols in order.
// Duplicate names are interned once.
func FromNames(names ...string) *Alphabet {
	a := New()
	for _, n := range names {
		a.Symbol(n)
	}
	return a
}

// Symbol interns name and returns its symbol, allocating a fresh symbol
// for names not seen before. The name "ε" maps to Epsilon.
func (a *Alphabet) Symbol(name string) Symbol {
	if s, ok := a.index[name]; ok {
		return s
	}
	s := Symbol(len(a.names))
	a.names = append(a.names, name)
	a.index[name] = s
	return s
}

// Lookup returns the symbol for name without interning it.
func (a *Alphabet) Lookup(name string) (Symbol, bool) {
	s, ok := a.index[name]
	return s, ok
}

// Name returns the printable name of s. Unknown symbols render as "?<n>".
func (a *Alphabet) Name(s Symbol) string {
	if s >= 0 && int(s) < len(a.names) {
		return a.names[s]
	}
	return fmt.Sprintf("?%d", int(s))
}

// Size returns the number of proper letters, excluding ε.
func (a *Alphabet) Size() int { return len(a.names) - 1 }

// Symbols returns all proper letters (excluding ε) in interning order.
func (a *Alphabet) Symbols() []Symbol {
	out := make([]Symbol, 0, a.Size())
	for i := 1; i < len(a.names); i++ {
		out = append(out, Symbol(i))
	}
	return out
}

// Names returns the names of all proper letters in interning order.
func (a *Alphabet) Names() []string {
	out := make([]string, 0, a.Size())
	out = append(out, a.names[1:]...)
	return out
}

// Contains reports whether s is a proper letter of the alphabet.
func (a *Alphabet) Contains(s Symbol) bool {
	return s > 0 && int(s) < len(a.names)
}

// Clone returns a deep copy of the alphabet. Symbols keep their values,
// so words remain valid across the copy.
func (a *Alphabet) Clone() *Alphabet {
	c := &Alphabet{
		names: make([]string, len(a.names)),
		index: make(map[string]Symbol, len(a.index)),
	}
	copy(c.names, a.names)
	for k, v := range a.index {
		c.index[k] = v
	}
	return c
}

// Extend interns every name from other into a, returning a mapping from
// other's symbols to a's symbols. ε maps to ε.
func (a *Alphabet) Extend(other *Alphabet) map[Symbol]Symbol {
	m := make(map[Symbol]Symbol, len(other.names))
	m[Epsilon] = Epsilon
	for i := 1; i < len(other.names); i++ {
		m[Symbol(i)] = a.Symbol(other.names[i])
	}
	return m
}

// String renders the alphabet as a sorted set of letter names.
func (a *Alphabet) String() string {
	names := a.Names()
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}
