package fairness

import (
	"context"
	"errors"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/ltl"
	"relive/internal/ts"
)

// TestExistsFairRunTrimsBeforeFairness pins the trim-before-fairness
// semantics: transitions into dead-end states and transitions of
// unreachable states impose no fairness obligations. Without the trim,
// the s0→dead edge forms an unsatisfiable Streett pair (it can never be
// taken by an infinite run) and the checker would wrongly report that
// no strongly fair run exists at all.
func TestExistsFairRunTrimsBeforeFairness(t *testing.T) {
	ab := alphabet.FromNames("a", "c")
	sys := ts.New(ab)
	sys.AddEdge("s0", "a", "s0")
	sys.AddEdge("s0", "c", "dead") // dead end: never takeable by an infinite run
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)

	prop := buchi.UniversalAutomaton(ab)
	for _, kind := range []Kind{Strong, Weak} {
		run, ok, err := ExistsFairRun(sys, prop, kind)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("kind %d: no fair run found although a^ω is fair after trimming", kind)
		}
		if err := run.Validate(sys); err != nil {
			t.Fatalf("kind %d: witness invalid on the original system: %v", kind, err)
		}
		if kind == Strong && !run.IsStronglyFair(sys) {
			t.Fatal("witness not strongly fair under the trimmed-obligation predicate")
		}
		if kind == Weak && !run.IsWeaklyFair(sys) {
			t.Fatal("witness not weakly fair under the trimmed-obligation predicate")
		}
	}
}

// TestExistsFairRunIgnoresUnreachableStates: an unreachable strongly
// connected component (with its own fair runs) must influence neither
// the verdict nor the witness.
func TestExistsFairRunIgnoresUnreachableStates(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	sys := ts.New(ab)
	sys.AddEdge("s0", "a", "s0")
	sys.AddEdge("u0", "b", "u0") // unreachable from s0
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)

	lab := ltl.Canonical(ab)
	gfb := ltl.TranslateBuchi(ltl.MustParse("G F b"), lab)
	for _, kind := range []Kind{Strong, Weak} {
		if _, ok, err := ExistsFairRun(sys, gfb, kind); err != nil {
			t.Fatal(err)
		} else if ok {
			t.Fatalf("kind %d: found a GFb run although b only occurs in an unreachable component", kind)
		}
	}
	gfa := ltl.TranslateBuchi(ltl.MustParse("G F a"), lab)
	run, ok, err := ExistsFairRun(sys, gfa, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a^ω lost to the unreachable component")
	}
	if err := run.Validate(sys); err != nil {
		t.Fatalf("witness invalid: %v", err)
	}
	for _, e := range append(append([]ts.Edge{}, run.Prefix...), run.Loop...) {
		if sys.StateName(e.From) == "u0" || sys.StateName(e.To) == "u0" {
			t.Fatalf("witness visits the unreachable state: %+v", e)
		}
	}
}

// TestExistsFairRunCtxCancelled: a pre-cancelled context aborts the
// search with a context error, never a verdict.
func TestExistsFairRunCtxCancelled(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	sys := ts.New(ab)
	sys.AddEdge("q", "a", "q")
	sys.AddEdge("q", "b", "q")
	init, _ := sys.LookupState("q")
	sys.SetInitial(init)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, ok, err := ExistsFairRunCtx(ctx, sys, buchi.UniversalAutomaton(ab), Strong)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got ok=%v err=%v", ok, err)
	}
}
