// Package fairness implements fairness notions for finite-state
// transition systems: strong and weak transition fairness of ultimately
// periodic runs, a Streett-style checker for the existence of strongly
// fair runs satisfying an ω-regular property (the machinery behind
// Theorem 5.1's claim that all strongly fair computations of the
// synthesized implementation satisfy the relative liveness property),
// and a deterministic fair scheduler for simulation.
package fairness

import (
	"fmt"

	"relive/internal/ts"
	"relive/internal/word"
)

// Run is an ultimately periodic run of a transition system: a finite
// prefix of edges followed by an infinitely repeated nonempty loop of
// edges.
type Run struct {
	Prefix []ts.Edge
	Loop   []ts.Edge
}

// Validate checks that the run is a connected path of sys starting at
// the initial state and that the loop closes.
func (r Run) Validate(sys *ts.System) error {
	if len(r.Loop) == 0 {
		return fmt.Errorf("fairness: run has an empty loop")
	}
	cur := sys.Initial()
	if cur < 0 {
		return fmt.Errorf("fairness: system has no initial state")
	}
	check := func(e ts.Edge) error {
		if e.From != cur {
			return fmt.Errorf("fairness: edge %v does not start at current state %v", e, cur)
		}
		found := false
		for _, t := range sys.Succ(e.From, e.Sym) {
			if t == e.To {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("fairness: edge %v is not a transition of the system", e)
		}
		cur = e.To
		return nil
	}
	for _, e := range r.Prefix {
		if err := check(e); err != nil {
			return err
		}
	}
	loopStart := cur
	for _, e := range r.Loop {
		if err := check(e); err != nil {
			return err
		}
	}
	if cur != loopStart {
		return fmt.Errorf("fairness: loop does not return to its entry state")
	}
	return nil
}

// Word returns the ω-word of actions along the run.
func (r Run) Word() word.Lasso {
	prefix := make(word.Word, len(r.Prefix))
	for i, e := range r.Prefix {
		prefix[i] = e.Sym
	}
	loop := make(word.Word, len(r.Loop))
	for i, e := range r.Loop {
		loop[i] = e.Sym
	}
	return word.MustLasso(prefix, loop)
}

// IsStronglyFair reports whether the run is strongly transition-fair: a
// transition enabled infinitely often (its source state is visited by
// the loop) must be taken infinitely often (it occurs in the loop).
// Obligations come from the trimmed system: a transition into a
// dead-end state can never be taken by an infinite run and so imposes
// none — fairness is evaluated after trimming, matching ExistsFairRun.
func (r Run) IsStronglyFair(sys *ts.System) bool {
	loopStates := map[ts.State]bool{}
	for _, e := range r.Loop {
		loopStates[e.From] = true
	}
	taken := map[ts.Edge]bool{}
	for _, e := range r.Loop {
		taken[e] = true
	}
	alive := aliveStates(sys)
	for _, e := range sys.Edges() {
		if !alive[e.From] || !alive[e.To] {
			continue // trimmed away: no obligation
		}
		if loopStates[e.From] && !taken[e] {
			return false
		}
	}
	return true
}

// IsWeaklyFair reports whether the run is weakly transition-fair: a
// transition continuously enabled from some point on (which, with
// state-based enabledness, requires the loop to sit at its source state
// only) must be taken infinitely often. As with IsStronglyFair,
// obligations are restricted to transitions surviving the trim.
func (r Run) IsWeaklyFair(sys *ts.System) bool {
	loopStates := map[ts.State]bool{}
	for _, e := range r.Loop {
		loopStates[e.From] = true
	}
	if len(loopStates) > 1 {
		return true // no transition is continuously enabled
	}
	var only ts.State
	for s := range loopStates {
		only = s
	}
	taken := map[ts.Edge]bool{}
	for _, e := range r.Loop {
		taken[e] = true
	}
	alive := aliveStates(sys)
	for _, e := range sys.Edges() {
		if !alive[e.From] || !alive[e.To] {
			continue // trimmed away: no obligation
		}
		if e.From == only && !taken[e] {
			return false
		}
	}
	return true
}

// aliveStates computes, as a greatest fixpoint by repeated deletion,
// the states with at least one infinite continuation — the states that
// survive trimming (reachability aside, which is irrelevant for the
// obligations of a run: it only visits reachable states).
func aliveStates(sys *ts.System) []bool {
	n := sys.NumStates()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	edges := sys.Edges()
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			has := false
			for _, e := range edges {
				if int(e.From) == v && alive[e.To] {
					has = true
					break
				}
			}
			if !has {
				alive[v] = false
				changed = true
			}
		}
	}
	return alive
}
