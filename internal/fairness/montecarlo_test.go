package fairness

import (
	"testing"

	"relive/internal/alphabet"
	"relive/internal/ltl"
	"relive/internal/ts"
	"relive/internal/word"
)

func TestRandomWalkerBasics(t *testing.T) {
	sys := abLoop()
	w, err := NewRandomWalker(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	trace := w.Walk(100)
	if len(trace) != 100 {
		t.Fatalf("walk length %d", len(trace))
	}
	counts := map[string]int{}
	for _, sym := range trace {
		counts[sys.Alphabet().Name(sym)]++
	}
	// Uniform over {a,b}: both should appear plenty.
	if counts["a"] < 20 || counts["b"] < 20 {
		t.Errorf("walk badly skewed: %v", counts)
	}
	if _, err := NewRandomWalker(ts.New(alphabet.FromNames("a")), 1); err == nil {
		t.Error("walker accepted a system without initial state")
	}
}

func TestRandomWalkerDeadEnd(t *testing.T) {
	ab := alphabet.FromNames("a")
	sys := ts.New(ab)
	sys.AddEdge("x", "a", "dead")
	init, _ := sys.LookupState("x")
	sys.SetInitial(init)
	w, err := NewRandomWalker(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Walk(10)); got != 1 {
		t.Errorf("walk into dead end has length %d, want 1", got)
	}
	if _, ok := w.EstimateEventualLasso(10); ok {
		t.Error("lasso estimated despite dead end")
	}
}

func TestEstimateEventualLassoIsABehavior(t *testing.T) {
	sys := abLoop()
	beh, err := sys.Behaviors()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		w, err := NewRandomWalker(sys, seed)
		if err != nil {
			t.Fatal(err)
		}
		l, ok := w.EstimateEventualLasso(60)
		if !ok {
			t.Fatalf("seed %d: no lasso", seed)
		}
		if !beh.AcceptsLasso(l) {
			t.Fatalf("seed %d: estimated lasso %s is not a behavior", seed, l.String(sys.Alphabet()))
		}
		// The covering cycle must be fair: both a and b occur in the loop.
		seen := map[alphabet.Symbol]bool{}
		for _, sym := range l.Loop {
			seen[sym] = true
		}
		if len(seen) != 2 {
			t.Fatalf("seed %d: loop %s does not cover both actions", seed, l.Loop.String(sys.Alphabet()))
		}
	}
}

func TestEstimateDiscardsUnsettledWalks(t *testing.T) {
	// One-way chain into a terminal loop: with a long enough walk the
	// second half lies in the terminal loop; with a 2-step walk the
	// second half still touches the transient chain, which is not
	// closed, so the sample is discarded.
	ab := alphabet.FromNames("go", "spin")
	sys := ts.New(ab)
	sys.AddEdge("s0", "go", "s1")
	sys.AddEdge("s1", "go", "s2")
	sys.AddEdge("s2", "spin", "s2")
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)

	w, err := NewRandomWalker(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.EstimateEventualLasso(2); ok {
		t.Error("unsettled walk produced a lasso")
	}
	w2, err := NewRandomWalker(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := w2.EstimateEventualLasso(30)
	if !ok {
		t.Fatal("settled walk produced no lasso")
	}
	want := word.MustLasso(
		word.FromNames(ab, "go", "go", "spin", "spin", "spin", "spin", "spin",
			"spin", "spin", "spin", "spin", "spin", "spin", "spin", "spin"),
		word.FromNames(ab, "spin"),
	)
	if !l.Normalize().Equal(want.Normalize()) {
		t.Errorf("lasso %s, want eventually spin^ω", l.String(ab))
	}
}

func TestSatisfactionFrequencyBounds(t *testing.T) {
	sys := abLoop()
	lab := ltl.Canonical(sys.Alphabet())
	gfa := ltl.MustParse("G F a")
	freq, err := SatisfactionFrequency(sys, 7, 50, 60, func(l word.Lasso) (bool, error) {
		return ltl.EvalLasso(gfa, l, lab)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The fair covering cycle always contains a: probability 1.
	if freq != 1.0 {
		t.Errorf("P(GFa) on {a,b}^ω = %v, want 1.0", freq)
	}
	fga := ltl.MustParse("F G a")
	freq, err = SatisfactionFrequency(sys, 7, 50, 60, func(l word.Lasso) (bool, error) {
		return ltl.EvalLasso(fga, l, lab)
	})
	if err != nil {
		t.Fatal(err)
	}
	if freq != 0.0 {
		t.Errorf("P(FGa) on {a,b}^ω = %v, want 0.0", freq)
	}
	if _, err := SatisfactionFrequency(sys, 7, 0, 60, nil); err == nil {
		t.Error("zero runs accepted")
	}
}
