package fairness

import (
	"fmt"
	"math/rand"

	"relive/internal/ts"
	"relive/internal/word"
)

// This file implements the probabilistic reading of relative liveness
// sketched in the paper's conclusion (Section 9): relative liveness
// properties "informally say: almost all computations satisfy the
// property", connecting them to probabilistic verification [26, 27].
// For a finite-state system under the uniform random scheduler (each
// enabled transition equally likely), a run almost surely enters a
// bottom SCC and visits all of its states and transitions infinitely
// often — it is almost surely strongly fair. Consequently an ω-regular
// property holds with probability 1 iff it holds on all strongly fair
// runs, which relative liveness properties do on the Theorem 5.1
// implementation. RandomWalk samples this: it produces runs of the
// uniform scheduler, and the experiment harness measures the frequency
// with which a property's finite indicator (e.g. "result occurred in
// the last window") stays true.

// RandomWalker produces uniformly random executions of a system.
type RandomWalker struct {
	sys     *ts.System
	rng     *rand.Rand
	edges   []ts.Edge
	byState map[ts.State][]int
	current ts.State
}

// NewRandomWalker returns a walker at the initial state using the given
// seed (deterministic for reproducible experiments).
func NewRandomWalker(sys *ts.System, seed int64) (*RandomWalker, error) {
	if sys.Initial() < 0 {
		return nil, fmt.Errorf("fairness: system has no initial state")
	}
	w := &RandomWalker{
		sys:     sys,
		rng:     rand.New(rand.NewSource(seed)),
		edges:   sys.Edges(),
		byState: map[ts.State][]int{},
		current: sys.Initial(),
	}
	for ei, e := range w.edges {
		w.byState[e.From] = append(w.byState[e.From], ei)
	}
	return w, nil
}

// Current returns the walker's current state.
func (w *RandomWalker) Current() ts.State { return w.current }

// Step takes a uniformly random enabled transition; ok is false at a
// dead end.
func (w *RandomWalker) Step() (ts.Edge, bool) {
	candidates := w.byState[w.current]
	if len(candidates) == 0 {
		return ts.Edge{}, false
	}
	e := w.edges[candidates[w.rng.Intn(len(candidates))]]
	w.current = e.To
	return e, true
}

// Walk returns the action word of an n-step random execution (shorter
// at a dead end).
func (w *RandomWalker) Walk(n int) word.Word {
	out := make(word.Word, 0, n)
	for i := 0; i < n; i++ {
		e, ok := w.Step()
		if !ok {
			break
		}
		out = append(out, e.Sym)
	}
	return out
}

// EstimateEventualLasso samples the almost-sure shape of an infinite
// uniform random run: walk a finite number of steps, check that the
// states visited in the second half form a closed strongly connected
// set — a bottom SCC, where an infinite random run ends up almost
// surely and then, almost surely, takes every transition infinitely
// often — and return the word "sampled prefix · fair covering cycle^ω".
// The sample is discarded (ok=false) when the walk has not yet settled
// or hits a dead end; longer walks settle with probability approaching
// one.
func (w *RandomWalker) EstimateEventualLasso(steps int) (word.Lasso, bool) {
	trace := make([]ts.Edge, 0, steps)
	for i := 0; i < steps; i++ {
		e, ok := w.Step()
		if !ok {
			return word.Lasso{}, false
		}
		trace = append(trace, e)
	}
	half := len(trace) / 2
	if half == 0 {
		return word.Lasso{}, false
	}
	inSet := map[ts.State]bool{}
	for _, e := range trace[half:] {
		inSet[e.From] = true
		inSet[e.To] = true
	}
	// The set must be closed under all enabled transitions (then, being
	// the visited tail of a single walk, it is strongly connected and so
	// a bottom SCC).
	for _, e := range w.edges {
		if inSet[e.From] && !inSet[e.To] {
			return word.Lasso{}, false
		}
	}
	prefix := make(word.Word, 0, half)
	for _, e := range trace[:half] {
		prefix = append(prefix, e.Sym)
	}
	loop, ok := w.coveringCycle(trace[half].From, inSet)
	if !ok {
		return word.Lasso{}, false
	}
	return word.MustLasso(prefix, loop), true
}

// coveringCycle returns the action word of a cycle from start through
// every edge inside the closed set — the canonical fair sweep a random
// run performs infinitely often almost surely.
func (w *RandomWalker) coveringCycle(start ts.State, inSet map[ts.State]bool) (word.Word, bool) {
	var pending []int
	for ei, e := range w.edges {
		if inSet[e.From] {
			pending = append(pending, ei)
		}
	}
	if len(pending) == 0 {
		return nil, false
	}
	remaining := map[int]bool{}
	for _, ei := range pending {
		remaining[ei] = true
	}
	var out word.Word
	cur := start
	for len(remaining) > 0 {
		// Take the shortest path (by BFS over edges within the set) to
		// any remaining edge, then traverse it.
		path, ok := w.pathToEdge(cur, inSet, remaining)
		if !ok {
			return nil, false // cannot happen in a closed SC set
		}
		for _, ei := range path {
			out = append(out, w.edges[ei].Sym)
			delete(remaining, ei)
			cur = w.edges[ei].To
		}
	}
	back, ok := w.pathToState(cur, inSet, start)
	if !ok {
		return nil, false
	}
	for _, ei := range back {
		out = append(out, w.edges[ei].Sym)
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// pathToEdge returns edge indices of a shortest walk from cur that ends
// by traversing some edge in want, staying inside the set.
func (w *RandomWalker) pathToEdge(cur ts.State, inSet map[ts.State]bool, want map[int]bool) ([]int, bool) {
	type entry struct {
		state  ts.State
		parent int
		edge   int
	}
	queue := []entry{{state: cur, parent: -1, edge: -1}}
	seen := map[ts.State]bool{cur: true}
	for i := 0; i < len(queue); i++ {
		st := queue[i].state
		for _, ei := range w.byState[st] {
			e := w.edges[ei]
			if !inSet[e.To] {
				continue
			}
			if want[ei] {
				var path []int
				path = append(path, ei)
				for j := i; queue[j].parent != -1; j = queue[j].parent {
					path = append(path, queue[j].edge)
				}
				for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
					path[l], path[r] = path[r], path[l]
				}
				return path, true
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, entry{state: e.To, parent: i, edge: ei})
			}
		}
	}
	return nil, false
}

// pathToState returns edge indices of a shortest walk from cur to goal
// inside the set (empty when cur == goal).
func (w *RandomWalker) pathToState(cur ts.State, inSet map[ts.State]bool, goal ts.State) ([]int, bool) {
	if cur == goal {
		return nil, true
	}
	type entry struct {
		state  ts.State
		parent int
		edge   int
	}
	queue := []entry{{state: cur, parent: -1, edge: -1}}
	seen := map[ts.State]bool{cur: true}
	for i := 0; i < len(queue); i++ {
		st := queue[i].state
		for _, ei := range w.byState[st] {
			e := w.edges[ei]
			if !inSet[e.To] || seen[e.To] {
				continue
			}
			if e.To == goal {
				var path []int
				path = append(path, ei)
				for j := i; queue[j].parent != -1; j = queue[j].parent {
					path = append(path, queue[j].edge)
				}
				for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
					path[l], path[r] = path[r], path[l]
				}
				return path, true
			}
			seen[e.To] = true
			queue = append(queue, entry{state: e.To, parent: i, edge: ei})
		}
	}
	return nil, false
}

// SatisfactionFrequency estimates, over runs sampled walks of length
// steps each, the fraction whose induced lasso satisfies the given
// predicate. It is the Monte Carlo estimator behind the E13 experiment:
// for relative liveness properties of systems whose uniform random walk
// is almost surely fair, the frequency tends to 1.
func SatisfactionFrequency(
	sys *ts.System,
	seed int64,
	runs, steps int,
	satisfies func(word.Lasso) (bool, error),
) (float64, error) {
	if runs <= 0 {
		return 0, fmt.Errorf("fairness: runs must be positive")
	}
	hits := 0
	counted := 0
	for r := 0; r < runs; r++ {
		w, err := NewRandomWalker(sys, seed+int64(r))
		if err != nil {
			return 0, err
		}
		l, ok := w.EstimateEventualLasso(steps)
		if !ok {
			continue // dead end or no recurrence within budget
		}
		counted++
		sat, err := satisfies(l)
		if err != nil {
			return 0, err
		}
		if sat {
			hits++
		}
	}
	if counted == 0 {
		return 0, fmt.Errorf("fairness: no run closed a lasso within %d steps", steps)
	}
	return float64(hits) / float64(counted), nil
}
