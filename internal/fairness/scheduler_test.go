package fairness

import (
	"testing"

	"relive/internal/alphabet"
	"relive/internal/ts"
)

func TestSchedulerVisitsAllEnabledEdges(t *testing.T) {
	sys := abLoop()
	s, err := NewScheduler(sys)
	if err != nil {
		t.Fatal(err)
	}
	trace := s.Trace(100)
	if len(trace) != 100 {
		t.Fatalf("trace length %d", len(trace))
	}
	// Longest-waiting-first on a single state strictly alternates, so
	// both edges appear equally often.
	counts := map[alphabet.Symbol]int{}
	for _, e := range trace {
		counts[e.Sym]++
	}
	for sym, c := range counts {
		if c != 50 {
			t.Errorf("edge %s taken %d times, want 50", sys.Alphabet().Name(sym), c)
		}
	}
}

func TestSchedulerFairnessWindow(t *testing.T) {
	// Star system: center chooses among three loops; each loop passes
	// through a private state. Every edge enabled infinitely often must
	// recur within a bounded window under the longest-waiting policy.
	ab := alphabet.FromNames("x", "y", "z", "back")
	sys := ts.New(ab)
	sys.AddEdge("c", "x", "px")
	sys.AddEdge("c", "y", "py")
	sys.AddEdge("c", "z", "pz")
	sys.AddEdge("px", "back", "c")
	sys.AddEdge("py", "back", "c")
	sys.AddEdge("pz", "back", "c")
	init, _ := sys.LookupState("c")
	sys.SetInitial(init)

	s, err := NewScheduler(sys)
	if err != nil {
		t.Fatal(err)
	}
	lastSeen := map[alphabet.Symbol]int{}
	trace := s.Trace(120)
	for i, e := range trace {
		if prev, ok := lastSeen[e.Sym]; ok && e.Sym != ab.Symbols()[3] {
			if i-prev > 8 {
				t.Fatalf("edge %s starved for %d steps", sys.Alphabet().Name(e.Sym), i-prev)
			}
		}
		lastSeen[e.Sym] = i
	}
	for _, name := range []string{"x", "y", "z"} {
		sym, _ := ab.Lookup(name)
		if _, ok := lastSeen[sym]; !ok {
			t.Errorf("edge %s never taken", name)
		}
	}
}

func TestSchedulerDeadEnd(t *testing.T) {
	ab := alphabet.FromNames("a")
	sys := ts.New(ab)
	sys.AddEdge("x", "a", "dead")
	init, _ := sys.LookupState("x")
	sys.SetInitial(init)
	s, err := NewScheduler(sys)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Trace(10)); got != 1 {
		t.Errorf("trace into dead end has %d steps, want 1", got)
	}
	if _, ok := s.Step(); ok {
		t.Error("Step succeeded at a dead end")
	}
	if s.Current() == init {
		t.Error("scheduler did not move")
	}
	if _, err := NewScheduler(ts.New(ab)); err == nil {
		t.Error("scheduler accepted a system without initial state")
	}
}
