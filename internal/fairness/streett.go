package fairness

import (
	"context"
	"errors"
	"fmt"

	"relive/internal/buchi"
	"relive/internal/graph"
	"relive/internal/interrupt"
	"relive/internal/ts"
)

// Kind selects a fairness notion.
type Kind int

// Fairness notions for ExistsFairRun.
const (
	Strong Kind = iota + 1
	Weak
)

// ExistsFairRun reports whether the system has a fair (per kind) run
// whose action word is accepted by prop. It returns a witness run when
// one exists.
//
// Fairness is evaluated on the trimmed system: the system is trimmed
// before the search, so transitions into dead-end states (which no
// infinite run can take) and transitions of unreachable states impose
// no fairness obligations. Run.IsStronglyFair and Run.IsWeaklyFair use
// the same convention, so witnesses always validate against it.
//
// The search works on the product of the trimmed system's edge graph
// with prop: a vertex means "the system just took edge e and prop is in
// state b". Strong transition fairness is a Streett condition — one
// pair per system edge t, with E_t = vertices at t's source state and
// F_t = vertices that just took t — plus the Büchi pair (all vertices,
// prop accepting). Emptiness uses the classic SCC-restriction
// algorithm: an SCC violating a pair is shrunk by removing that pair's
// E-vertices and re-decomposed. A fair lasso is then stitched through
// one witness SCC and mapped back to the original system's states.
func ExistsFairRun(sys *ts.System, prop *buchi.Buchi, kind Kind) (Run, bool, error) {
	return ExistsFairRunCtx(nil, sys, prop, kind)
}

// ExistsFairRunCtx is ExistsFairRun with cooperative cancellation
// checkpoints in the trim and the product exploration. A nil ctx never
// cancels; a context error is returned as-is (wrapped), never conflated
// with the "no fair run" verdict.
func ExistsFairRunCtx(ctx context.Context, sys *ts.System, prop *buchi.Buchi, kind Kind) (Run, bool, error) {
	if sys.Initial() < 0 {
		return Run{}, false, fmt.Errorf("fairness: system has no initial state")
	}
	if kind != Strong && kind != Weak {
		return Run{}, false, fmt.Errorf("fairness: unknown fairness kind %d", int(kind))
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Run{}, false, fmt.Errorf("fairness: %w", err)
		}
	}
	// Trim first: fairness obligations come from the trimmed system only.
	trimmed, err := sys.TrimCtx(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return Run{}, false, fmt.Errorf("fairness: %w", err)
		}
		return Run{}, false, nil // no infinite behavior: no infinite run at all
	}
	g, err := buildProduct(ctx, trimmed, prop)
	if err != nil || len(g.verts) == 0 {
		return Run{}, false, err
	}
	n := len(g.verts)
	reach := graph.Reachable(n, g.initVerts, g.succ)
	comp, ok := findFairSCCWithin(n, g.succ, reach, func(comp []int) (bool, []int) {
		return g.analyzeSCC(comp, kind)
	})
	if !ok {
		return Run{}, false, nil
	}
	return mapRunByName(g.stitchRun(comp), trimmed, sys), true, nil
}

// mapRunByName rewrites a run over the trimmed system into the original
// system's state identifiers. Trimming preserves state names, so the
// lookup is total on witness runs.
func mapRunByName(r Run, trimmed, orig *ts.System) Run {
	conv := func(es []ts.Edge) []ts.Edge {
		if es == nil {
			return nil
		}
		out := make([]ts.Edge, len(es))
		for i, e := range es {
			from, _ := orig.LookupState(trimmed.StateName(e.From))
			to, _ := orig.LookupState(trimmed.StateName(e.To))
			out[i] = ts.Edge{From: from, Sym: e.Sym, To: to}
		}
		return out
	}
	return Run{Prefix: conv(r.Prefix), Loop: conv(r.Loop)}
}

// product is the exploration graph of (system edge, property state)
// vertices.
type product struct {
	sys       *ts.System
	prop      *buchi.Buchi
	edges     []ts.Edge
	verts     []prodVertex
	adj       [][]int
	initVerts []int
}

type prodVertex struct {
	e int // index into edges: the system edge just taken
	b buchi.State
}

func buildProduct(ctx context.Context, sys *ts.System, prop *buchi.Buchi) (*product, error) {
	g := &product{sys: sys, prop: prop, edges: sys.Edges()}
	if len(g.edges) == 0 {
		return g, nil
	}
	var tick interrupt.Tick
	index := map[prodVertex]int{}
	intern := func(k prodVertex) int {
		if i, ok := index[k]; ok {
			return i
		}
		i := len(g.verts)
		g.verts = append(g.verts, k)
		g.adj = append(g.adj, nil)
		index[k] = i
		return i
	}
	succsByState := map[ts.State][]int{}
	for ei, e := range g.edges {
		succsByState[e.From] = append(succsByState[e.From], ei)
	}
	var queue []int
	seen := map[prodVertex]bool{}
	push := func(k prodVertex) int {
		i := intern(k)
		if !seen[k] {
			seen[k] = true
			queue = append(queue, i)
		}
		return i
	}
	for _, ei := range succsByState[sys.Initial()] {
		for _, b0 := range prop.Initial() {
			for _, b1 := range prop.Succ(b0, g.edges[ei].Sym) {
				g.initVerts = append(g.initVerts, push(prodVertex{ei, b1}))
			}
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		if err := tick.Poll(ctx); err != nil {
			return nil, fmt.Errorf("fairness: %w", err)
		}
		vi := queue[qi]
		k := g.verts[vi]
		for _, ei := range succsByState[g.edges[k.e].To] {
			for _, b1 := range prop.Succ(k.b, g.edges[ei].Sym) {
				g.adj[vi] = append(g.adj[vi], push(prodVertex{ei, b1}))
			}
		}
	}
	return g, nil
}

func (g *product) succ(v int) []int { return g.adj[v] }

// analyzeSCC decides whether the component supports a fair accepted
// run. For a repairable strong-fairness violation it returns the
// E-vertices to remove before re-decomposing; otherwise nil.
func (g *product) analyzeSCC(comp []int, kind Kind) (bool, []int) {
	hasAccepting := false
	statesVisited := map[ts.State]bool{}
	edgesTaken := map[int]bool{}
	for _, v := range comp {
		k := g.verts[v]
		if g.prop.Accepting(k.b) {
			hasAccepting = true
		}
		statesVisited[g.edges[k.e].To] = true
		edgesTaken[k.e] = true
	}
	if !hasAccepting {
		return false, nil // removing vertices cannot create acceptance
	}
	switch kind {
	case Strong:
		var removeE []int
		for ti, t := range g.edges {
			if statesVisited[t.From] && !edgesTaken[ti] {
				// Streett pair for t violated: E_t ∩ C ≠ ∅, F_t ∩ C = ∅.
				for _, v := range comp {
					if g.edges[g.verts[v].e].To == t.From {
						removeE = append(removeE, v)
					}
				}
			}
		}
		if len(removeE) == 0 {
			return true, nil
		}
		return false, removeE
	case Weak:
		if len(statesVisited) > 1 {
			return true, nil // nothing is continuously enabled
		}
		var only ts.State
		for s := range statesVisited {
			only = s
		}
		for ti, t := range g.edges {
			if t.From == only && !edgesTaken[ti] {
				return false, nil // continuously enabled yet never taken
			}
		}
		return true, nil
	}
	return false, nil
}

// findFairSCCWithin searches the subgraph induced by within for an SCC
// accepted by analyze, recursing on shrunken components as directed.
func findFairSCCWithin(n int, succ graph.Succ, within []bool, analyze func([]int) (bool, []int)) ([]int, bool) {
	restricted := func(v int) []int {
		if !within[v] {
			return nil
		}
		var out []int
		for _, w := range succ(v) {
			if within[w] {
				out = append(out, w)
			}
		}
		return out
	}
	comps := graph.SCCs(n, restricted)
	for _, comp := range comps {
		if !within[comp[0]] {
			continue
		}
		if graph.IsTrivialSCC(comp, restricted) {
			continue
		}
		ok, removeE := analyze(comp)
		if ok {
			return comp, true
		}
		if len(removeE) == 0 {
			continue
		}
		sub := make([]bool, n)
		for _, v := range comp {
			sub[v] = true
		}
		for _, v := range removeE {
			sub[v] = false
		}
		if res, found := findFairSCCWithin(n, succ, sub, analyze); found {
			return res, true
		}
	}
	return nil, false
}

// stitchRun builds a fair lasso: a prefix from an initial vertex to the
// component, then a loop visiting every component vertex (covering all
// edge obligations and an accepting vertex) and closing.
func (g *product) stitchRun(comp []int) Run {
	inComp := map[int]bool{}
	for _, v := range comp {
		inComp[v] = true
	}
	n := len(g.verts)
	succC := func(v int) []int {
		var out []int
		for _, w := range g.adj[v] {
			if inComp[w] {
				out = append(out, w)
			}
		}
		return out
	}
	entry := comp[0]
	prefixPath := graph.ShortestPath(n, g.initVerts, g.succ, func(v int) bool { return v == entry })
	var loop []int
	cur := entry
	remaining := map[int]bool{}
	for _, v := range comp {
		if v != entry {
			remaining[v] = true
		}
	}
	for len(remaining) > 0 {
		p := graph.ShortestPath(n, []int{cur}, succC, func(v int) bool { return remaining[v] })
		if len(p) < 2 {
			break // unreachable inside an SCC: cannot happen
		}
		for _, v := range p[1:] {
			loop = append(loop, v)
			delete(remaining, v)
		}
		cur = p[len(p)-1]
	}
	back := graph.ShortestPath(n, []int{cur}, succC, func(v int) bool { return v == entry })
	if len(back) > 1 {
		loop = append(loop, back[1:]...)
	} else if len(loop) == 0 {
		loop = append(loop, entry) // single vertex with a self-loop
	}
	toEdges := func(vs []int) []ts.Edge {
		out := make([]ts.Edge, len(vs))
		for i, v := range vs {
			out[i] = g.edges[g.verts[v].e]
		}
		return out
	}
	return Run{Prefix: toEdges(prefixPath), Loop: toEdges(loop)}
}
