package fairness

import (
	"testing"

	"relive/internal/alphabet"
	"relive/internal/ts"
)

// TestSchedulerFairChoiceEntersDeadEnd pins the scheduler's documented
// dead-end behavior: the longest-waiting rule does not avoid dead ends.
// At a state with a live self-loop and an edge into a dead end, the
// dead edge has waited longest by step two, the scheduler takes it, and
// the trace truncates there — callers who need infinite executions must
// trim first (exactly the trim-before-fairness contract the decision
// procedures follow).
func TestSchedulerFairChoiceEntersDeadEnd(t *testing.T) {
	ab := alphabet.FromNames("stay", "leave")
	sys := ts.New(ab)
	sys.AddEdge("s0", "stay", "s0")
	sys.AddEdge("s0", "leave", "dead")
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)

	s, err := NewScheduler(sys)
	if err != nil {
		t.Fatal(err)
	}
	trace := s.Trace(100)
	if len(trace) >= 100 {
		t.Fatalf("trace of length %d never entered the dead end", len(trace))
	}
	last := trace[len(trace)-1]
	if ab.Name(last.Sym) != "leave" {
		t.Fatalf("trace ended on %s, want the leave edge", ab.Name(last.Sym))
	}
	// Both edges were exercised before the dead end: the untaken leave
	// edge waits at -1, so it is chosen no later than the second step.
	if len(trace) > 2 {
		t.Fatalf("leave edge starved for %d steps under the longest-waiting rule", len(trace))
	}
	if _, ok := s.Step(); ok {
		t.Fatal("Step succeeded at the dead end")
	}
	if dead, _ := sys.LookupState("dead"); s.Current() != dead {
		t.Fatalf("scheduler parked at %v, want the dead state", s.Current())
	}

	// On the trimmed system the dead end is gone and the same scheduler
	// strategy runs forever.
	trimmed, err := sys.Trim()
	if err != nil {
		t.Fatal(err)
	}
	ts2, err := NewScheduler(trimmed)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ts2.Trace(100)); got != 100 {
		t.Fatalf("trimmed system's trace stopped after %d steps", got)
	}
}

// TestSchedulerZeroAndNegativeTrace: Trace with a non-positive budget
// is empty and does not advance the scheduler.
func TestSchedulerZeroAndNegativeTrace(t *testing.T) {
	ab := alphabet.FromNames("a")
	sys := ts.New(ab)
	sys.AddEdge("s0", "a", "s0")
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)
	s, err := NewScheduler(sys)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Trace(0); len(got) != 0 {
		t.Fatalf("Trace(0) returned %d edges", len(got))
	}
	if got := s.Trace(-3); len(got) != 0 {
		t.Fatalf("Trace(-3) returned %d edges", len(got))
	}
	if s.Current() != init {
		t.Fatal("empty trace moved the scheduler")
	}
}
