package fairness

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/ltl"
	"relive/internal/ts"
	"relive/internal/word"
)

// abLoop returns the one-state system with behaviors {a,b}^ω.
func abLoop() *ts.System {
	ab := alphabet.FromNames("a", "b")
	s := ts.New(ab)
	s.AddEdge("q", "a", "q")
	s.AddEdge("q", "b", "q")
	init, _ := s.LookupState("q")
	s.SetInitial(init)
	return s
}

// edgeOf returns the unique edge of sys labeled with the action name.
func edgeOf(t *testing.T, sys *ts.System, action string) ts.Edge {
	t.Helper()
	sym, ok := sys.Alphabet().Lookup(action)
	if !ok {
		t.Fatalf("no action %q", action)
	}
	for _, e := range sys.Edges() {
		if e.Sym == sym {
			return e
		}
	}
	t.Fatalf("no edge labeled %q", action)
	return ts.Edge{}
}

func TestRunValidate(t *testing.T) {
	sys := abLoop()
	ea := edgeOf(t, sys, "a")
	eb := edgeOf(t, sys, "b")
	good := Run{Prefix: []ts.Edge{ea}, Loop: []ts.Edge{ea, eb}}
	if err := good.Validate(sys); err != nil {
		t.Errorf("valid run rejected: %v", err)
	}
	if err := (Run{}).Validate(sys); err == nil {
		t.Error("empty loop accepted")
	}
	bad := Run{Loop: []ts.Edge{{From: 5, Sym: ea.Sym, To: 5}}}
	if err := bad.Validate(sys); err == nil {
		t.Error("disconnected run accepted")
	}
}

func TestRunWord(t *testing.T) {
	sys := abLoop()
	ea := edgeOf(t, sys, "a")
	eb := edgeOf(t, sys, "b")
	r := Run{Prefix: []ts.Edge{ea}, Loop: []ts.Edge{eb, ea}}
	got := r.Word()
	want := word.MustLasso(
		word.FromNames(sys.Alphabet(), "a"),
		word.FromNames(sys.Alphabet(), "b", "a"),
	)
	if !got.Equal(want) {
		t.Errorf("Word = %s, want %s", got.String(sys.Alphabet()), want.String(sys.Alphabet()))
	}
}

func TestStrongFairness(t *testing.T) {
	sys := abLoop()
	ea := edgeOf(t, sys, "a")
	eb := edgeOf(t, sys, "b")
	both := Run{Loop: []ts.Edge{ea, eb}}
	if !both.IsStronglyFair(sys) {
		t.Error("loop taking both edges is not strongly fair?")
	}
	onlyA := Run{Loop: []ts.Edge{ea}}
	if onlyA.IsStronglyFair(sys) {
		t.Error("a^ω is strongly fair although b is always enabled")
	}
	if !onlyA.IsWeaklyFair(sys) == false {
		// b is continuously enabled (single-state loop) and never taken.
		t.Error("a^ω should not be weakly fair here")
	}
}

func TestWeakFairnessMultiState(t *testing.T) {
	// s0 -a-> s1 -b-> s0 with an extra edge s0 -c-> s0. The run
	// (a b)^ω never takes c, but c is not continuously enabled (the run
	// keeps leaving s0), so it is weakly fair yet not strongly fair.
	ab := alphabet.FromNames("a", "b", "c")
	sys := ts.New(ab)
	sys.AddEdge("s0", "a", "s1")
	sys.AddEdge("s1", "b", "s0")
	sys.AddEdge("s0", "c", "s0")
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)

	ea := edgeOf(t, sys, "a")
	eb := edgeOf(t, sys, "b")
	r := Run{Loop: []ts.Edge{ea, eb}}
	if !r.IsWeaklyFair(sys) {
		t.Error("(ab)^ω not weakly fair")
	}
	if r.IsStronglyFair(sys) {
		t.Error("(ab)^ω strongly fair although c is enabled infinitely often and never taken")
	}
}

func TestExistsFairRunBasic(t *testing.T) {
	sys := abLoop()
	lab := ltl.Canonical(sys.Alphabet())
	// Property "infinitely many a": satisfiable by a fair run.
	prop := ltl.TranslateBuchi(ltl.MustParse("G F a"), lab)
	run, ok, err := ExistsFairRun(sys, prop, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no strongly fair run satisfying GFa in {a,b}^ω")
	}
	if err := run.Validate(sys); err != nil {
		t.Fatalf("witness run invalid: %v", err)
	}
	if !run.IsStronglyFair(sys) {
		t.Error("witness run is not strongly fair")
	}
	if !prop.AcceptsLasso(run.Word()) {
		t.Error("witness run word not accepted by the property")
	}

	// "Eventually only a": no strongly fair run can avoid b forever.
	prop2 := ltl.TranslateBuchi(ltl.MustParse("F G a"), lab)
	_, ok, err = ExistsFairRun(sys, prop2, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("strongly fair run satisfying FGa found in {a,b}^ω")
	}
	// But a weakly fair one cannot exist either: the loop would sit at
	// the single state with b enabled continuously.
	_, ok, err = ExistsFairRun(sys, prop2, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("weakly fair run satisfying FGa found in {a,b}^ω")
	}
}

func TestExistsFairRunWeakVsStrong(t *testing.T) {
	// Two states: s0 -a-> s1, s1 -b-> s0, s0 -c-> s0. A run looping
	// (a b)^ω is weakly fair but not strongly fair (c starved). So
	// "G !c" admits a weakly fair run but no strongly fair one.
	ab := alphabet.FromNames("a", "b", "c")
	sys := ts.New(ab)
	sys.AddEdge("s0", "a", "s1")
	sys.AddEdge("s1", "b", "s0")
	sys.AddEdge("s0", "c", "s0")
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)
	lab := ltl.Canonical(ab)
	noC := ltl.TranslateBuchi(ltl.MustParse("G !c"), lab)

	run, ok, err := ExistsFairRun(sys, noC, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no weakly fair run avoiding c")
	}
	if err := run.Validate(sys); err != nil {
		t.Fatalf("weak witness invalid: %v", err)
	}
	if !run.IsWeaklyFair(sys) {
		t.Error("weak witness is not weakly fair")
	}

	_, ok, err = ExistsFairRun(sys, noC, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("strongly fair run avoiding c found; c should be taken infinitely often")
	}
}

func TestExistsFairRunNoRuns(t *testing.T) {
	ab := alphabet.FromNames("a")
	sys := ts.New(ab)
	sys.AddState("dead")
	st, _ := sys.LookupState("dead")
	sys.SetInitial(st)
	prop := buchi.UniversalAutomaton(ab)
	_, ok, err := ExistsFairRun(sys, prop, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("fair run found in a system without transitions")
	}
	if _, _, err := ExistsFairRun(ts.New(ab), prop, Strong); err == nil {
		t.Error("system without initial state accepted")
	}
	if _, _, err := ExistsFairRun(sys, prop, Kind(99)); err == nil {
		t.Error("unknown fairness kind accepted")
	}
}

// TestQuickFairWitnessesAreFair: on random systems and random properties,
// every witness returned is a valid, fair, property-satisfying run.
func TestQuickFairWitnessesAreFair(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	names := []string{"a", "b", "c"}
	for trial := 0; trial < 60; trial++ {
		ab := alphabet.FromNames(names...)
		sys := ts.New(ab)
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			sys.AddState(string(rune('A' + i)))
		}
		for i := 0; i < n; i++ {
			for _, a := range names {
				if rng.Float64() < 0.5 {
					from, _ := sys.LookupState(string(rune('A' + i)))
					to, _ := sys.LookupState(string(rune('A' + rng.Intn(n))))
					sym, _ := ab.Lookup(a)
					sys.AddTransition(from, sym, to)
				}
			}
		}
		init, _ := sys.LookupState("A")
		sys.SetInitial(init)

		f := ltl.MustParse([]string{"G F a", "F G b", "G (a -> F c)", "F b"}[rng.Intn(4)])
		prop := ltl.TranslateBuchi(f, ltl.Canonical(ab))
		for _, kind := range []Kind{Strong, Weak} {
			run, ok, err := ExistsFairRun(sys, prop, kind)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			if err := run.Validate(sys); err != nil {
				t.Fatalf("trial %d: invalid witness: %v\n%s", trial, err, sys.FormatString())
			}
			if kind == Strong && !run.IsStronglyFair(sys) {
				t.Fatalf("trial %d: witness not strongly fair\n%s", trial, sys.FormatString())
			}
			if kind == Weak && !run.IsWeaklyFair(sys) {
				t.Fatalf("trial %d: witness not weakly fair\n%s", trial, sys.FormatString())
			}
			if !prop.AcceptsLasso(run.Word()) {
				t.Fatalf("trial %d: witness word does not satisfy %s", trial, f)
			}
		}
	}
}

// TestQuickStrongFairCompleteness: if a strongly fair accepted lasso is
// found by brute-force enumeration of short lassos, the checker must
// also report one.
func TestQuickStrongFairCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	names := []string{"a", "b"}
	for trial := 0; trial < 40; trial++ {
		ab := alphabet.FromNames(names...)
		sys := ts.New(ab)
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			sys.AddState(string(rune('A' + i)))
		}
		for i := 0; i < n; i++ {
			for _, a := range names {
				if rng.Float64() < 0.6 {
					from, _ := sys.LookupState(string(rune('A' + i)))
					to, _ := sys.LookupState(string(rune('A' + rng.Intn(n))))
					sym, _ := ab.Lookup(a)
					sys.AddTransition(from, sym, to)
				}
			}
		}
		init, _ := sys.LookupState("A")
		sys.SetInitial(init)
		f := ltl.MustParse([]string{"G F a", "F G b", "G F b"}[rng.Intn(3)])
		prop := ltl.TranslateBuchi(f, ltl.Canonical(ab))

		_, found, err := ExistsFairRun(sys, prop, Strong)
		if err != nil {
			t.Fatal(err)
		}
		brute := bruteForceFairRun(sys, prop, 4)
		if brute && !found {
			t.Fatalf("trial %d: brute force found a fair accepted run, checker did not\n%s",
				trial, sys.FormatString())
		}
		if found && !brute {
			// The checker may legitimately find longer runs than the
			// brute-force bound; re-verify the witness instead of failing.
			run, _, _ := ExistsFairRun(sys, prop, Strong)
			if err := run.Validate(sys); err != nil || !run.IsStronglyFair(sys) || !prop.AcceptsLasso(run.Word()) {
				t.Fatalf("trial %d: checker-only witness bogus", trial)
			}
		}
	}
}

// bruteForceFairRun enumerates runs with prefix and loop up to the given
// length and reports whether any is strongly fair with accepted word.
func bruteForceFairRun(sys *ts.System, prop *buchi.Buchi, maxLen int) bool {
	edges := sys.Edges()
	var walk func(cur ts.State, path []ts.Edge) bool
	check := func(path []ts.Edge) bool {
		// Try every split into prefix + loop.
		for split := 0; split < len(path); split++ {
			loop := path[split:]
			if loop[len(loop)-1].To != loop[0].From {
				continue
			}
			r := Run{Prefix: path[:split], Loop: loop}
			if r.Validate(sys) != nil {
				continue
			}
			if r.IsStronglyFair(sys) && prop.AcceptsLasso(r.Word()) {
				return true
			}
		}
		return false
	}
	walk = func(cur ts.State, path []ts.Edge) bool {
		if len(path) > 0 && check(path) {
			return true
		}
		if len(path) == 2*maxLen {
			return false
		}
		for _, e := range edges {
			if e.From != cur {
				continue
			}
			if walk(e.To, append(path, e)) {
				return true
			}
		}
		return false
	}
	return walk(sys.Initial(), nil)
}
