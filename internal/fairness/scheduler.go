package fairness

import (
	"fmt"

	"relive/internal/ts"
)

// Scheduler produces concrete executions of a transition system under a
// simple strongly fair strategy: among the transitions enabled at the
// current state, it always takes the one that has waited longest since
// it was last taken (breaking ties deterministically by edge order).
// Every transition enabled infinitely often is then taken infinitely
// often, so infinite executions are strongly transition-fair.
type Scheduler struct {
	sys       *ts.System
	edges     []ts.Edge
	byState   map[ts.State][]int
	lastTaken []int // step at which each edge was last taken, -1 never
	step      int
	current   ts.State
}

// NewScheduler returns a scheduler positioned at the system's initial
// state.
func NewScheduler(sys *ts.System) (*Scheduler, error) {
	if sys.Initial() < 0 {
		return nil, fmt.Errorf("fairness: system has no initial state")
	}
	s := &Scheduler{
		sys:     sys,
		edges:   sys.Edges(),
		byState: map[ts.State][]int{},
		current: sys.Initial(),
	}
	for ei, e := range s.edges {
		s.byState[e.From] = append(s.byState[e.From], ei)
	}
	s.lastTaken = make([]int, len(s.edges))
	for i := range s.lastTaken {
		s.lastTaken[i] = -1
	}
	return s, nil
}

// Current returns the current state.
func (s *Scheduler) Current() ts.State { return s.current }

// Step takes the longest-waiting enabled transition and returns it;
// ok is false when the current state has no outgoing transition.
func (s *Scheduler) Step() (ts.Edge, bool) {
	candidates := s.byState[s.current]
	if len(candidates) == 0 {
		return ts.Edge{}, false
	}
	best := candidates[0]
	for _, ei := range candidates[1:] {
		if s.lastTaken[ei] < s.lastTaken[best] {
			best = ei
		}
	}
	s.lastTaken[best] = s.step
	s.step++
	s.current = s.edges[best].To
	return s.edges[best], true
}

// Trace runs the scheduler for n steps and returns the edges taken; the
// trace is shorter when a dead end is reached. A non-positive budget
// yields an empty trace.
func (s *Scheduler) Trace(n int) []ts.Edge {
	if n <= 0 {
		return nil
	}
	out := make([]ts.Edge, 0, n)
	for i := 0; i < n; i++ {
		e, ok := s.Step()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}
