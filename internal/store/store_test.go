package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, opt Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{})
	payload := []byte(`{"satisfied":true}` + "\n")
	if err := s.Put("report", "abcd1234", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("report", "abcd1234")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := s.Get("report", "ffff0000"); ok {
		t.Fatal("Get of absent key hit")
	}
	if _, ok := s.Get("system", "abcd1234"); ok {
		t.Fatal("Get of same key under different kind hit")
	}
	st := s.Stats()
	if st.Artifacts != 1 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Empty payloads are legal artifacts, distinct from misses.
	if err := s.Put("report", "empty0", nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("report", "empty0"); !ok || len(got) != 0 {
		t.Fatalf("empty artifact = %q, %v; want \"\", true", got, ok)
	}
}

// TestCorruptArtifactsReadAsMisses: every way an artifact can rot on
// disk — truncation (including mid-header), flipped payload bytes, a
// wrong magic, pure garbage, an empty file — reads as a clean miss,
// never an error, and the corrupt file is removed so the next Put heals
// the entry.
func TestCorruptArtifactsReadAsMisses(t *testing.T) {
	payload := []byte("a perfectly fine artifact payload")
	corruptions := []struct {
		name    string
		mutate  func([]byte) []byte
	}{
		{"empty file", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:headerSize-3] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }},
		{"flipped payload byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[headerSize+2] ^= 0xff
			return c
		}},
		{"flipped length", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(magic)+4] ^= 0x01
			return c
		}},
		{"wrong magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "NOTANART")
			return c
		}},
		{"pure garbage", func(b []byte) []byte { return []byte("%PDF-1.4 definitely not an artifact") }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t, Options{})
			if err := s.Put("report", "deadbeef", payload); err != nil {
				t.Fatal(err)
			}
			path := s.path("report", "deadbeef")
			img, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(img), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("report", "deadbeef"); ok {
				t.Fatalf("corrupt artifact served as a hit: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt artifact not removed (stat err %v)", err)
			}
			if s.Stats().Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1", s.Stats().Corrupt)
			}
			// The entry heals on the next Put.
			if err := s.Put("report", "deadbeef", payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("report", "deadbeef"); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("healed artifact = %q, %v", got, ok)
			}
		})
	}
}

// TestConcurrentWritersConverge: many goroutines writing the same key
// (with different payloads, harsher than the serving layer's identical
// ones) leave exactly one complete, valid artifact, and every
// concurrent read sees either a miss or one of the written payloads in
// full — never an interleaving.
func TestConcurrentWritersConverge(t *testing.T) {
	s := mustOpen(t, Options{})
	const writers = 16
	payloads := make([][]byte, writers)
	valid := make(map[string]bool, writers)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 4096+i)
		valid[string(payloads[i])] = true
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := s.Put("report", "cafe00", payloads[i]); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got, ok := s.Get("report", "cafe00"); ok && !valid[string(got)] {
					t.Errorf("read a payload no writer wrote (%d bytes)", len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	got, ok := s.Get("report", "cafe00")
	if !ok || !valid[string(got)] {
		t.Fatalf("final artifact invalid (ok=%v, %d bytes)", ok, len(got))
	}
	// Exactly one artifact file and no leaked temp files.
	dir := filepath.Dir(s.path("report", "cafe00"))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cafe00.art" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want exactly [cafe00.art]", names)
	}
}

// TestGCBoundsSizeAndNeverBreaksReads: a store over its bound evicts
// down to ~80%, and readers hammering the store during eviction only
// ever see full valid payloads or clean misses.
func TestGCBoundsSizeAndNeverBreaksReads(t *testing.T) {
	// 64 KiB bound, 1 KiB artifacts: eviction triggers repeatedly.
	s := mustOpen(t, Options{MaxBytes: 64 << 10})
	payload := bytes.Repeat([]byte("x"), 1024)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if got, ok := s.Get("report", fmt.Sprintf("%08x", i%256)); ok && !bytes.Equal(got, payload) {
					t.Errorf("reader %d: partial or corrupt payload (%d bytes)", r, len(got))
					return
				}
			}
		}(r)
	}
	for i := 0; i < 256; i++ {
		if err := s.Put("report", fmt.Sprintf("%08x", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()

	st := s.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("store holds %d bytes over the %d bound after GC", st.Bytes, st.MaxBytes)
	}
	if st.Evicted == 0 {
		t.Fatal("256 KiB written into a 64 KiB store evicted nothing")
	}
	// Recent artifacts survive; something must still be resident.
	if st.Artifacts == 0 {
		t.Fatal("GC evicted everything")
	}
}

// TestReopenWarm: a second Open over the same directory serves the
// first process's artifacts — the warm-restart path — and the scan
// reinitializes occupancy.
func TestReopenWarm(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives restarts")
	for i := 0; i < 5; i++ {
		if err := s1.Put("report", fmt.Sprintf("%04x", i), payload); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Artifacts != 5 {
		t.Fatalf("reopened store sees %d artifacts, want 5", st.Artifacts)
	}
	for i := 0; i < 5; i++ {
		if got, ok := s2.Get("report", fmt.Sprintf("%04x", i)); !ok || !bytes.Equal(got, payload) {
			t.Fatalf("artifact %d after reopen = %q, %v", i, got, ok)
		}
	}
}

// TestFsyncPut: the fsync path round-trips (durability itself cannot be
// asserted in a test, but the code path must work).
func TestFsyncPut(t *testing.T) {
	s := mustOpen(t, Options{Fsync: true})
	if err := s.Put("report", "0123", []byte("synced")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("report", "0123"); !ok || string(got) != "synced" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

// TestShortKeyFanout: keys shorter than the fan-out width still store
// and read.
func TestShortKeyFanout(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.Put("report", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("report", "k"); !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}
