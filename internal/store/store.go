// Package store is the persistent, content-addressed artifact store
// behind the checking service: a directory of immutable artifacts keyed
// by the structural hashes internal/serve already computes (marshaled
// reports, canonical system texts, compiled-pipeline metadata), shared
// by replicas over a common volume so completed work survives restarts
// and crosses processes.
//
// The design holds three properties the serving layer depends on:
//
//   - Writes are atomic. An artifact is written to a temp file in its
//     final directory and renamed into place, so a reader never sees a
//     half-written artifact under the final name; fsync is optional
//     (off by default — losing the newest artifacts to a power cut only
//     costs recomputation).
//   - Reads are corruption-tolerant. Every artifact carries a magic,
//     the payload length, and a CRC; a short, truncated, or garbage
//     file reads as a miss (and is removed best-effort), never as an
//     error the service would surface as a 500.
//   - GC never breaks a read. Eviction is plain unlink; a concurrent
//     reader that already opened the file keeps its data (POSIX), and
//     one that loses the race gets a clean miss.
//
// Recency for GC is a logical atime: Get bumps the artifact's mtime
// (filesystem atime is unreliable under noatime/relatime mounts), and
// GC evicts oldest-mtime artifacts first once the store exceeds its
// size bound.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Artifact file format: 8-byte magic, 4-byte IEEE CRC of the payload,
// 8-byte little-endian payload length, payload. Anything that fails any
// of those checks — wrong magic, short header, length mismatch, CRC
// mismatch — is treated as a miss.
const (
	magic      = "RLART1\x00\x00"
	headerSize = len(magic) + 4 + 8
)

// Options tunes a Store.
type Options struct {
	// MaxBytes bounds the total payload+header bytes on disk; past it a
	// Put triggers GC down to ~80% of the bound, evicting least recently
	// used artifacts. <= 0 means 256 MiB.
	MaxBytes int64
	// Fsync makes every Put fsync the artifact and its directory before
	// rename, trading write latency for crash durability of the newest
	// artifacts. Off by default: a lost artifact is only lost work.
	Fsync bool
}

// Stats is a point-in-time snapshot of a store's state and
// effectiveness.
type Stats struct {
	Path      string `json:"path"`
	Artifacts int64  `json:"artifacts"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Corrupt   int64  `json:"corrupt"`
	Puts      int64  `json:"puts"`
	Evicted   int64  `json:"evicted"`
}

// Store is a content-addressed artifact store rooted at one directory.
// Safe for concurrent use by any number of goroutines and (for Get/Put)
// by any number of processes sharing the directory.
type Store struct {
	dir string
	opt Options

	count atomic.Int64 // artifacts on disk (tracked approximately)
	bytes atomic.Int64 // bytes on disk (tracked approximately)

	hits, misses, corrupt, puts, evicted atomic.Int64

	gcMu sync.Mutex // one GC sweep at a time
}

// Open opens (creating if needed) the store rooted at dir and scans it
// once to initialize the occupancy counters. Artifacts already present
// — a warm volume — are served immediately.
func Open(dir string, opt Options) (*Store, error) {
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opt: opt}
	var count, bytes int64
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".art") {
			return nil
		}
		if info, ierr := d.Info(); ierr == nil {
			count++
			bytes += info.Size()
		}
		return nil
	})
	s.count.Store(count)
	s.bytes.Store(bytes)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps (kind, key) to the artifact path, fanning out on the first
// two key characters so one directory never holds every artifact. Keys
// are the serving layer's fixed-width hex hashes; anything shorter is
// grouped under a single fan-out bucket.
func (s *Store) path(kind, key string) string {
	fan := "xx"
	if len(key) >= 2 {
		fan = key[:2]
	}
	return filepath.Join(s.dir, kind, fan, key+".art")
}

// Get returns the payload stored under (kind, key). Any missing, short,
// truncated, or corrupt artifact is a miss: the store never surfaces an
// error for a bad artifact, it deletes it (best-effort) and reports
// false, so a serving layer can always fall back to recomputation.
func (s *Store) Get(kind, key string) ([]byte, bool) {
	path := s.path(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, ok := decode(data)
	if !ok {
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.removeArtifact(path)
		return nil, false
	}
	s.hits.Add(1)
	// Logical atime for the GC's LRU ordering; failure is harmless (the
	// artifact just ages faster).
	now := time.Now()
	os.Chtimes(path, now, now)
	return payload, true
}

// decode validates an artifact image and returns its payload.
func decode(data []byte) ([]byte, bool) {
	if len(data) < headerSize || string(data[:len(magic)]) != magic {
		return nil, false
	}
	crc := binary.LittleEndian.Uint32(data[len(magic):])
	n := binary.LittleEndian.Uint64(data[len(magic)+4:])
	payload := data[headerSize:]
	if uint64(len(payload)) != n || crc32.ChecksumIEEE(payload) != crc {
		return nil, false
	}
	return payload, true
}

// Put stores payload under (kind, key) atomically: temp file in the
// final directory, optional fsync, rename. Concurrent writers of the
// same key are safe — each writes its own temp file and the renames
// serialize, so readers always see one complete artifact. Errors are
// returned for the caller to count; the store stays consistent either
// way.
func (s *Store) Put(kind, key string, payload []byte) error {
	path := s.path(kind, key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(hdr[len(magic)+4:], uint64(len(payload)))
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(payload)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if s.opt.Fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	size := int64(headerSize + len(payload))
	fresh := true
	if info, serr := os.Stat(path); serr == nil {
		// Overwrite: the net growth is the size delta.
		fresh = false
		s.bytes.Add(size - info.Size())
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.opt.Fsync {
		if d, derr := os.Open(dir); derr == nil {
			d.Sync()
			d.Close()
		}
	}
	if fresh {
		s.count.Add(1)
		s.bytes.Add(size)
	}
	s.puts.Add(1)
	if s.bytes.Load() > s.opt.MaxBytes {
		s.gc()
	}
	return nil
}

// removeArtifact unlinks an artifact and adjusts the occupancy
// counters; used for corrupt artifacts and by GC.
func (s *Store) removeArtifact(path string) {
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	if os.Remove(path) == nil {
		s.count.Add(-1)
		s.bytes.Add(-info.Size())
	}
}

// gc evicts least-recently-used artifacts (by the logical atime Get
// maintains) until the store is under ~80% of its bound. Eviction is
// unlink-only: a reader that already opened a victim keeps its bytes,
// one that races the unlink gets a clean miss.
func (s *Store) gc() {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	target := s.opt.MaxBytes * 8 / 10
	if s.bytes.Load() <= target {
		return // a concurrent Put already paid for this sweep
	}
	type victim struct {
		path  string
		size  int64
		atime time.Time
	}
	var all []victim
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".art") {
			return nil
		}
		if info, ierr := d.Info(); ierr == nil {
			all = append(all, victim{path: path, size: info.Size(), atime: info.ModTime()})
		}
		return nil
	})
	sort.Slice(all, func(i, j int) bool { return all[i].atime.Before(all[j].atime) })
	// Resync the tracked occupancy with the scan (other replicas may
	// share the volume), then evict oldest-first down to the target.
	var total int64
	for _, v := range all {
		total += v.size
	}
	s.bytes.Store(total)
	s.count.Store(int64(len(all)))
	for _, v := range all {
		if s.bytes.Load() <= target {
			break
		}
		if os.Remove(v.path) == nil {
			s.count.Add(-1)
			s.bytes.Add(-v.size)
			s.evicted.Add(1)
		}
	}
}

// Stats returns a snapshot of the store's occupancy and counters.
func (s *Store) Stats() Stats {
	return Stats{
		Path:      s.dir,
		Artifacts: s.count.Load(),
		Bytes:     s.bytes.Load(),
		MaxBytes:  s.opt.MaxBytes,
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Puts:      s.puts.Load(),
		Evicted:   s.evicted.Load(),
	}
}
