package ltl

import (
	"relive/internal/alphabet"
	"relive/internal/buchi"
)

// TranslateBuchi translates a PLTL formula into a Büchi automaton over
// the letters of the labeling's alphabet: the automaton accepts exactly
// the ω-words x with x, λ ⊨ f. The construction is the classic
// Gerth–Peled–Vardi–Wolper tableau to a generalized Büchi automaton,
// followed by counter-based degeneralization. A letter a matches a
// tableau node when λ(a) contains all positive literals of the node and
// none of the negated ones.
func TranslateBuchi(f *Formula, lab *Labeling) *buchi.Buchi {
	nf := f.Normalize()
	g := buildTableau(nf)
	return g.toBuchi(lab, untilSubformulas(nf))
}

// TranslateNegation translates ¬f, the standard route to checking
// L ⊆ L(f) without Büchi complementation.
func TranslateNegation(f *Formula, lab *Labeling) *buchi.Buchi {
	return TranslateBuchi(Not(f), lab)
}

// untilSubformulas returns the Until subformulas of a normalized formula,
// one acceptance set each.
func untilSubformulas(f *Formula) []*Formula {
	seen := map[string]bool{}
	var out []*Formula
	var walk func(g *Formula)
	walk = func(g *Formula) {
		if g == nil || seen[g.Key()] {
			return
		}
		seen[g.Key()] = true
		if g.Op == OpUntil {
			out = append(out, g)
		}
		walk(g.Left)
		walk(g.Right)
	}
	walk(f)
	return out
}

// formulaSet is a set of formulas keyed canonically.
type formulaSet map[string]*Formula

func (s formulaSet) add(f *Formula)      { s[f.Key()] = f }
func (s formulaSet) has(f *Formula) bool { _, ok := s[f.Key()]; return ok }
func (s formulaSet) clone() formulaSet {
	c := make(formulaSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}
func (s formulaSet) key() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := ""
	for _, k := range keys {
		out += k + ";"
	}
	return out
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// tableauNode is a node of the GPVW construction.
type tableauNode struct {
	id       int
	incoming map[int]bool // predecessor node ids; -1 denotes "init"
	new      formulaSet
	old      formulaSet
	next     formulaSet
}

type tableau struct {
	nodes  []*tableauNode // closed nodes, in creation order
	byKey  map[string]*tableauNode
	nextID int
}

const initID = -1

// buildTableau runs the GPVW node expansion for a normalized formula.
func buildTableau(f *Formula) *tableau {
	t := &tableau{byKey: map[string]*tableauNode{}}
	start := &tableauNode{
		id:       t.freshID(),
		incoming: map[int]bool{initID: true},
		new:      formulaSet{},
		old:      formulaSet{},
		next:     formulaSet{},
	}
	start.new.add(f)
	t.expand(start)
	return t
}

func (t *tableau) freshID() int {
	id := t.nextID
	t.nextID++
	return id
}

func (t *tableau) expand(q *tableauNode) {
	if len(q.new) == 0 {
		k := q.old.key() + "|" + q.next.key()
		if r, ok := t.byKey[k]; ok {
			for in := range q.incoming {
				r.incoming[in] = true
			}
			return
		}
		t.nodes = append(t.nodes, q)
		t.byKey[k] = q
		succ := &tableauNode{
			id:       t.freshID(),
			incoming: map[int]bool{q.id: true},
			new:      q.next.clone(),
			old:      formulaSet{},
			next:     formulaSet{},
		}
		t.expand(succ)
		return
	}
	// Pick any formula from New.
	var f *Formula
	for _, v := range q.new {
		f = v
		break
	}
	delete(q.new, f.Key())

	switch f.Op {
	case OpFalse:
		return // contradiction: discard node
	case OpTrue:
		t.expand(q)
	case OpAtom, OpNot:
		// Literal (normalized formulas only negate atoms).
		if q.old.has(negLiteral(f)) {
			return // contradiction: discard node
		}
		q.old.add(f)
		t.expand(q)
	case OpAnd:
		if !q.old.has(f.Left) {
			q.new.add(f.Left)
		}
		if !q.old.has(f.Right) {
			q.new.add(f.Right)
		}
		q.old.add(f)
		t.expand(q)
	case OpOr:
		q1 := splitNode(t, q)
		q2 := splitNode(t, q)
		q1.old.add(f)
		q2.old.add(f)
		if !q1.old.has(f.Left) {
			q1.new.add(f.Left)
		}
		if !q2.old.has(f.Right) {
			q2.new.add(f.Right)
		}
		t.expand(q1)
		t.expand(q2)
	case OpNext:
		q.old.add(f)
		q.next.add(f.Left)
		t.expand(q)
	case OpUntil:
		// ξ U ζ ≡ ζ ∨ (ξ ∧ X(ξ U ζ))
		q1 := splitNode(t, q)
		q2 := splitNode(t, q)
		q1.old.add(f)
		q2.old.add(f)
		if !q1.old.has(f.Right) {
			q1.new.add(f.Right)
		}
		if !q2.old.has(f.Left) {
			q2.new.add(f.Left)
		}
		q2.next.add(f)
		t.expand(q1)
		t.expand(q2)
	case OpRelease:
		// ξ R ζ ≡ (ζ ∧ ξ) ∨ (ζ ∧ X(ξ R ζ))
		q1 := splitNode(t, q)
		q2 := splitNode(t, q)
		q1.old.add(f)
		q2.old.add(f)
		if !q1.old.has(f.Left) {
			q1.new.add(f.Left)
		}
		if !q1.old.has(f.Right) {
			q1.new.add(f.Right)
		}
		if !q2.old.has(f.Right) {
			q2.new.add(f.Right)
		}
		q2.next.add(f)
		t.expand(q1)
		t.expand(q2)
	default:
		panic("ltl: non-normalized formula reached the tableau")
	}
}

// splitNode deep-copies q with a fresh id.
func splitNode(t *tableau, q *tableauNode) *tableauNode {
	in := make(map[int]bool, len(q.incoming))
	for k, v := range q.incoming {
		in[k] = v
	}
	return &tableauNode{
		id:       t.freshID(),
		incoming: in,
		new:      q.new.clone(),
		old:      q.old.clone(),
		next:     q.next.clone(),
	}
}

// negLiteral returns the complementary literal of a literal.
func negLiteral(f *Formula) *Formula {
	if f.Op == OpNot {
		return f.Left
	}
	return Not(f)
}

// matches reports whether letter a satisfies the literal constraints in
// old under the labeling.
func matches(old formulaSet, a alphabet.Symbol, lab *Labeling) bool {
	for _, f := range old {
		switch f.Op {
		case OpAtom:
			if !lab.Has(a, f.Name) {
				return false
			}
		case OpNot:
			if lab.Has(a, f.Left.Name) {
				return false
			}
		}
	}
	return true
}

// toBuchi builds the degeneralized Büchi automaton from the tableau.
func (t *tableau) toBuchi(lab *Labeling, untils []*Formula) *buchi.Buchi {
	ab := lab.Alphabet()
	k := len(untils)

	// Acceptance sets: node ∈ F_u iff ζ ∈ old or u ∉ old.
	inF := make([][]bool, len(t.nodes))
	for ni, nd := range t.nodes {
		inF[ni] = make([]bool, k)
		for ui, u := range untils {
			// A node fulfills u = ξ U ζ when ζ ∈ Old or when u is not
			// promised at all. The constant true is never stored in Old
			// (it imposes no constraint), so ζ = true counts as present.
			inF[ni][ui] = nd.old.has(u.Right) || !nd.old.has(u) || u.Right.Op == OpTrue
		}
	}
	nodeIdx := map[int]int{} // node id -> index in t.nodes
	for ni, nd := range t.nodes {
		nodeIdx[nd.id] = ni
	}
	// Precompute letter matches per node.
	syms := ab.Symbols()
	letterOK := make([][]bool, len(t.nodes))
	for ni, nd := range t.nodes {
		letterOK[ni] = make([]bool, len(syms))
		for si, a := range syms {
			letterOK[ni][si] = matches(nd.old, a, lab)
		}
	}
	// Edges of the GBA: q -> r when q ∈ incoming(r); init -> r when
	// initID ∈ incoming(r).
	succs := make([][]int, len(t.nodes))
	var initSuccs []int
	for ri, r := range t.nodes {
		for in := range r.incoming {
			if in == initID {
				initSuccs = append(initSuccs, ri)
				continue
			}
			if qi, ok := nodeIdx[in]; ok {
				succs[qi] = append(succs[qi], ri)
			}
		}
	}

	b := buchi.New(ab)
	if k == 0 {
		// No Until subformulas: every infinite run is accepting.
		states := make([]buchi.State, len(t.nodes))
		for ni := range t.nodes {
			states[ni] = b.AddState(true)
		}
		init := b.AddState(false)
		b.SetInitial(init)
		addEdges := func(from buchi.State, targets []int) {
			for _, ri := range targets {
				for si, ok := range letterOK[ri] {
					if ok {
						b.AddTransition(from, syms[si], states[ri])
					}
				}
			}
		}
		addEdges(init, initSuccs)
		for qi := range t.nodes {
			addEdges(states[qi], succs[qi])
		}
		return b
	}

	// Degeneralization: states (node, counter) with counter ∈ [0, k];
	// counter k is the "just wrapped" flag (semantically counter 0) and
	// is the Büchi acceptance. bump advances the counter when the target
	// node is in the currently awaited acceptance set.
	bump := func(counter int, target int) int {
		v := counter
		if v == k {
			v = 0
		}
		if inF[target][v] {
			v++
		}
		return v
	}
	type cfg struct{ node, counter int }
	index := map[cfg]buchi.State{}
	var queue []cfg
	intern := func(c cfg) buchi.State {
		if s, ok := index[c]; ok {
			return s
		}
		s := b.AddState(c.counter == k)
		index[c] = s
		queue = append(queue, c)
		return s
	}
	init := b.AddState(false)
	b.SetInitial(init)
	for _, ri := range initSuccs {
		c := cfg{node: ri, counter: bump(0, ri)}
		s := intern(c)
		for si, ok := range letterOK[ri] {
			if ok {
				b.AddTransition(init, syms[si], s)
			}
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		c := queue[qi]
		from := index[c]
		for _, ri := range succs[c.node] {
			nc := cfg{node: ri, counter: bump(c.counter, ri)}
			to := intern(nc)
			for si, ok := range letterOK[ri] {
				if ok {
					b.AddTransition(from, syms[si], to)
				}
			}
		}
	}
	return b
}
