package ltl

import (
	"sort"

	"relive/internal/alphabet"
)

// Labeling is a function λ : Σ → 2^AP giving, for every letter of an
// alphabet, the set of atomic propositions that hold at positions
// carrying that letter (Section 3 of the paper).
type Labeling struct {
	ab     *alphabet.Alphabet
	labels map[alphabet.Symbol]map[string]bool
}

// NewLabeling returns an empty labeling over ab: every letter satisfies
// no propositions until SetLabel is called.
func NewLabeling(ab *alphabet.Alphabet) *Labeling {
	return &Labeling{ab: ab, labels: make(map[alphabet.Symbol]map[string]bool)}
}

// Alphabet returns the labeled alphabet.
func (l *Labeling) Alphabet() *alphabet.Alphabet { return l.ab }

// SetLabel sets λ(sym) to exactly the given propositions.
func (l *Labeling) SetLabel(sym alphabet.Symbol, props ...string) {
	m := make(map[string]bool, len(props))
	for _, p := range props {
		m[p] = true
	}
	l.labels[sym] = m
}

// Has reports whether prop ∈ λ(sym).
func (l *Labeling) Has(sym alphabet.Symbol, prop string) bool {
	return l.labels[sym][prop]
}

// Props returns λ(sym) as a sorted slice.
func (l *Labeling) Props(sym alphabet.Symbol) []string {
	out := make([]string, 0, len(l.labels[sym]))
	for p := range l.labels[sym] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Canonical returns the canonical Σ-labeling function λ_Σ of
// Definition 7.2: λ_Σ(a) = {a} for every letter a.
func Canonical(ab *alphabet.Alphabet) *Labeling {
	l := NewLabeling(ab)
	for _, sym := range ab.Symbols() {
		l.SetLabel(sym, ab.Name(sym))
	}
	return l
}

// CanonicalImage returns the canonical h-labeling function λ_{hΣΣ'} of
// Definition 7.3 for an abstracting homomorphism given by image:
// λ(a) = {h(a)} where the name of ε is "ε". Letters erased by the
// homomorphism therefore satisfy exactly the ε proposition.
func CanonicalImage(src, dst *alphabet.Alphabet, image func(alphabet.Symbol) alphabet.Symbol) *Labeling {
	l := NewLabeling(src)
	for _, sym := range src.Symbols() {
		img := image(sym)
		if img == alphabet.Epsilon {
			l.SetLabel(sym, alphabet.EpsilonName)
		} else {
			l.SetLabel(sym, dst.Name(img))
		}
	}
	return l
}
