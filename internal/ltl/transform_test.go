package ltl

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/word"
)

// testImage builds the abstraction used by the transform tests:
// a→x, b→y, c→ε over Σ={a,b,c}, Σ'={x,y}.
func testImage() (src, dst *alphabet.Alphabet, image func(alphabet.Symbol) alphabet.Symbol) {
	src = alphabet.FromNames("a", "b", "c")
	dst = alphabet.FromNames("x", "y")
	sa, _ := src.Lookup("a")
	sb, _ := src.Lookup("b")
	sx, _ := dst.Lookup("x")
	sy, _ := dst.Lookup("y")
	image = func(s alphabet.Symbol) alphabet.Symbol {
		switch s {
		case sa:
			return sx
		case sb:
			return sy
		default:
			return alphabet.Epsilon
		}
	}
	return src, dst, image
}

// applyImage erases hidden letters; ok is false when the loop image is
// empty (h(x) undefined per Definition 6.1).
func applyImage(image func(alphabet.Symbol) alphabet.Symbol, l word.Lasso) (word.Lasso, bool) {
	apply := func(w word.Word) word.Word {
		var out word.Word
		for _, s := range w {
			if d := image(s); d != alphabet.Epsilon {
				out = append(out, d)
			}
		}
		return out
	}
	loop := apply(l.Loop)
	if len(loop) == 0 {
		return word.Lasso{}, false
	}
	return word.MustLasso(apply(l.Prefix), loop), true
}

func TestRbarRejectsEpsilonAtom(t *testing.T) {
	if _, err := Rbar(Atom(alphabet.EpsilonName)); err == nil {
		t.Error("Rbar accepted a formula mentioning ε")
	}
	if _, err := TransformT(Until(EpsilonAtom(), Atom("x"))); err == nil {
		t.Error("TransformT accepted a formula mentioning ε")
	}
}

func TestRbarShape(t *testing.T) {
	// R̄(p) = ε U p for a positive atom, matching the paper exactly.
	got := MustRbar(Atom("x"))
	want := Until(EpsilonAtom(), Atom("x"))
	if !got.Equal(want) {
		t.Errorf("R̄(x) = %s, want %s", got, want)
	}
	// Homomorphic through U.
	got = MustRbar(Until(Atom("x"), Atom("y")))
	want = Until(Until(EpsilonAtom(), Atom("x")), Until(EpsilonAtom(), Atom("y")))
	if !got.Equal(want) {
		t.Errorf("R̄(x U y) = %s, want %s", got, want)
	}
}

// randomSigmaFormula builds a random positive-normal-form candidate over
// the abstract atoms (negations allowed anywhere; Rbar normalizes).
func randomSigmaFormula(rng *rand.Rand, atoms []string, depth int) *Formula {
	if depth <= 0 || rng.Float64() < 0.3 {
		if rng.Intn(8) == 0 {
			return True()
		}
		return Atom(atoms[rng.Intn(len(atoms))])
	}
	switch rng.Intn(8) {
	case 0:
		return Not(randomSigmaFormula(rng, atoms, depth-1))
	case 1:
		return And(randomSigmaFormula(rng, atoms, depth-1), randomSigmaFormula(rng, atoms, depth-1))
	case 2:
		return Or(randomSigmaFormula(rng, atoms, depth-1), randomSigmaFormula(rng, atoms, depth-1))
	case 3:
		return Next(randomSigmaFormula(rng, atoms, depth-1))
	case 4:
		return Until(randomSigmaFormula(rng, atoms, depth-1), randomSigmaFormula(rng, atoms, depth-1))
	case 5:
		return Release(randomSigmaFormula(rng, atoms, depth-1), randomSigmaFormula(rng, atoms, depth-1))
	case 6:
		return Eventually(randomSigmaFormula(rng, atoms, depth-1))
	default:
		return Globally(randomSigmaFormula(rng, atoms, depth-1))
	}
}

// TestQuickLemma75WordLevel is the word-level form of Lemma 7.5 that the
// R̄ reconstruction satisfies: for every x with h(x) defined,
// x, λ_{hΣΣ'} ⊨ R̄(η) iff h(x), λ_{Σ'} ⊨ η.
func TestQuickLemma75WordLevel(t *testing.T) {
	src, dst, image := testImage()
	hLab := CanonicalImage(src, dst, image)
	dstLab := Canonical(dst)
	rng := rand.New(rand.NewSource(61))
	srcSyms := src.Symbols()
	for trial := 0; trial < 120; trial++ {
		eta := randomSigmaFormula(rng, []string{"x", "y"}, 3)
		rbar := MustRbar(eta)
		for i := 0; i < 12; i++ {
			prefix := make(word.Word, rng.Intn(4))
			for j := range prefix {
				prefix[j] = srcSyms[rng.Intn(len(srcSyms))]
			}
			loop := make(word.Word, 1+rng.Intn(4))
			for j := range loop {
				loop[j] = srcSyms[rng.Intn(len(srcSyms))]
			}
			x := word.MustLasso(prefix, loop)
			hx, defined := applyImage(image, x)
			if !defined {
				continue
			}
			concrete, err := EvalLasso(rbar, x, hLab)
			if err != nil {
				t.Fatal(err)
			}
			abstract, err := EvalLasso(eta, hx, dstLab)
			if err != nil {
				t.Fatal(err)
			}
			if concrete != abstract {
				t.Fatalf("trial %d: η=%s: x=%s ⊨ R̄(η) is %v but h(x)=%s ⊨ η is %v\nR̄(η)=%s",
					trial, eta, x.String(src), concrete, hx.String(dst), abstract, rbar)
			}
		}
	}
}

// TestTransformTVsRbar documents the difference: T alone does not anchor
// Boolean subformulas, so on a word starting with erased letters a
// negated atom can evaluate "too early".
func TestTransformTVsRbar(t *testing.T) {
	src, dst, image := testImage()
	hLab := CanonicalImage(src, dst, image)
	dstLab := Canonical(dst)

	eta := Not(Atom("x")) // ¬x in Σ'-normal form
	tOnly, err := TransformT(eta)
	if err != nil {
		t.Fatal(err)
	}
	rbar := MustRbar(eta)

	// x = c·(a)^ω: h(x) = x^ω starts with x, so η is false of h(x).
	sc, _ := src.Lookup("c")
	sa, _ := src.Lookup("a")
	xWord := word.MustLasso(word.Word{sc}, word.Word{sa})
	hx, ok := applyImage(image, xWord)
	if !ok {
		t.Fatal("image undefined")
	}
	abstract, err := EvalLasso(eta, hx, dstLab)
	if err != nil {
		t.Fatal(err)
	}
	if abstract {
		t.Fatal("¬x should be false of x^ω")
	}
	// R̄ agrees with the abstract truth.
	viaRbar, err := EvalLasso(rbar, xWord, hLab)
	if err != nil {
		t.Fatal(err)
	}
	if viaRbar != abstract {
		t.Errorf("R̄ disagrees with abstract evaluation: %v vs %v", viaRbar, abstract)
	}
	// T alone evaluates ¬x at the erased first position and is satisfied
	// there — the behavior R̄'s anchoring exists to prevent.
	viaT, err := EvalLasso(tOnly, xWord, hLab)
	if err != nil {
		t.Fatal(err)
	}
	if !viaT {
		t.Errorf("expected bare T to accept at the erased position (got %v); the documented T/R̄ difference vanished", viaT)
	}
}
