package ltl

import (
	"relive/internal/buchi"
)

// Simplify returns an equivalent, usually smaller formula in negation
// normal form. It normalizes first and then applies standard rewrite
// rules bottom-up: Boolean constant folding and idempotence, temporal
// constant propagation (○true = true, ξ U true = true, ξ R false =
// false, ...), idempotence of U/R, and the ◇□◇/□◇□ absorption laws.
// The test suite checks semantic equivalence on sampled words and by
// automata-based equivalence.
func Simplify(f *Formula) *Formula {
	return simplify(f.Normalize())
}

func simplify(f *Formula) *Formula {
	switch f.Op {
	case OpTrue, OpFalse, OpAtom, OpNot:
		return f
	case OpAnd:
		l, r := simplify(f.Left), simplify(f.Right)
		switch {
		case l.Op == OpFalse || r.Op == OpFalse:
			return False()
		case l.Op == OpTrue:
			return r
		case r.Op == OpTrue:
			return l
		case l.Equal(r):
			return l
		case complementary(l, r):
			return False()
		}
		return And(l, r)
	case OpOr:
		l, r := simplify(f.Left), simplify(f.Right)
		switch {
		case l.Op == OpTrue || r.Op == OpTrue:
			return True()
		case l.Op == OpFalse:
			return r
		case r.Op == OpFalse:
			return l
		case l.Equal(r):
			return l
		case complementary(l, r):
			return True()
		}
		return Or(l, r)
	case OpNext:
		sub := simplify(f.Left)
		if sub.Op == OpTrue || sub.Op == OpFalse {
			return sub
		}
		return Next(sub)
	case OpUntil:
		l, r := simplify(f.Left), simplify(f.Right)
		switch {
		case r.Op == OpTrue:
			return True()
		case r.Op == OpFalse:
			return False()
		case l.Op == OpFalse:
			return r
		case l.Equal(r):
			return l
		}
		// ◇◇ξ = ◇ξ: true U (true U ξ) → true U ξ.
		if l.Op == OpTrue && isEventually(r) {
			return r
		}
		// ◇□◇ξ = □◇ξ: true U (false R (true U ξ)).
		if l.Op == OpTrue && isGlobally(r) && isEventually(r.Right) {
			return r
		}
		return Until(l, r)
	case OpRelease:
		l, r := simplify(f.Left), simplify(f.Right)
		switch {
		case r.Op == OpTrue:
			return True()
		case r.Op == OpFalse:
			return False()
		case l.Op == OpTrue:
			return r
		case l.Equal(r):
			return l
		}
		// □□ξ = □ξ: false R (false R ξ).
		if l.Op == OpFalse && isGlobally(r) {
			return r
		}
		// □◇□ξ = ◇□ξ: false R (true U (false R ξ)).
		if l.Op == OpFalse && isEventually(r) && isGlobally(r.Right) {
			return r
		}
		return Release(l, r)
	}
	// Normalize removed everything else.
	panic("ltl: non-normalized formula in simplify")
}

func isEventually(f *Formula) bool { return f.Op == OpUntil && f.Left.Op == OpTrue }
func isGlobally(f *Formula) bool   { return f.Op == OpRelease && f.Left.Op == OpFalse }

// complementary reports whether two formulas are literal complements
// (p vs ¬p).
func complementary(l, r *Formula) bool {
	if l.Op == OpNot && l.Left.Op == OpAtom && r.Op == OpAtom {
		return l.Left.Name == r.Name
	}
	if r.Op == OpNot && r.Left.Op == OpAtom && l.Op == OpAtom {
		return r.Left.Name == l.Name
	}
	return false
}

// Satisfiable reports whether some ω-word over the labeling's alphabet
// satisfies f, with a witness lasso.
func Satisfiable(f *Formula, lab *Labeling) (bool, *buchi.Buchi) {
	b := TranslateBuchi(f, lab)
	if b.IsEmpty() {
		return false, b
	}
	return true, b
}

// Equivalent reports whether f and g agree on every ω-word over the
// labeling's alphabet, by emptiness of L(f ∧ ¬g) and L(¬f ∧ g).
func Equivalent(f, g *Formula, lab *Labeling) bool {
	if !TranslateBuchi(And(f, Not(g)), lab).IsEmpty() {
		return false
	}
	return TranslateBuchi(And(Not(f), g), lab).IsEmpty()
}

// Implies reports whether f entails g over the labeling's alphabet:
// L(f ∧ ¬g) is empty.
func ImpliesSemantically(f, g *Formula, lab *Labeling) bool {
	return TranslateBuchi(And(f, Not(g)), lab).IsEmpty()
}
