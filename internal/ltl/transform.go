package ltl

import (
	"fmt"

	"relive/internal/alphabet"
)

// This file implements the property transformation of Definition 7.4.
//
// The paper defines a mapping T on Σ'-normal-form formulas (Figure 5)
// that adapts a property of the abstract system — over the abstract
// alphabet Σ' — so that it can be interpreted on the concrete system
// under the canonical h-labeling λ_{hΣΣ'} (Definition 7.3), where
// concrete letters erased by the homomorphism satisfy exactly the ε
// proposition. T leaves pure Boolean structure untouched; the extension
// R̄ then replaces every maximal pure Boolean subformula ξ_b by
// (ε) U (ξ_b), making the evaluation "skip" erased letters.
//
// Figure 5 is an image in the source and its exact clauses are not
// recoverable from the text, so the temporal clauses are reconstructed
// here from the stated requirements (Lemma 7.5 and the proofs of
// Theorems 8.2/8.3). The reconstruction satisfies the strong, word-level
// form of Lemma 7.5:
//
//	for every x ∈ Σ^ω with h(x) defined:
//	    x, λ_{hΣΣ'} ⊨ R̄(η)   ⟺   h(x), λ_{Σ'} ⊨ η
//
// which implies the language-level statement of Lemma 7.5 for every
// L'_ω ⊆ h(Σ^ω), covering all uses in the paper (where L'_ω is always
// lim(h(L)) ⊆ h(lim(L)) by Lemma 8.1). To obtain the word-level
// equivalence, Boolean subformulas are anchored at the first non-erased
// position: the wrapper is (ε) U ((¬ε) ∧ ξ_b), distributed over the
// Boolean connectives (which is equivalent, because the first non-ε
// position of a word is unique):
//
//	R̄(p)      = (ε) U (p)                      for an atom p ∈ Σ'
//	R̄(¬p)     = (ε) U ((¬ε) ∧ ¬p)
//	R̄(true)   = true,  R̄(false) = false
//	R̄(ξ ∧ ζ)  = R̄(ξ) ∧ R̄(ζ)
//	R̄(ξ ∨ ζ)  = R̄(ξ) ∨ R̄(ζ)
//	R̄(○ξ)     = (ε) U ((¬ε) ∧ ○R̄(ξ))
//	R̄(ξ U ζ)  = R̄(ξ) U R̄(ζ)
//	R̄(ξ R ζ)  = R̄(ξ) R R̄(ζ)
//
// (For a positive atom the ¬ε conjunct is redundant — p can only hold at
// a non-erased position — so R̄(p) matches the paper's (ε) U (ξ_b)
// exactly.) Derived operators are expanded by Normalize first, so
// ◇ and □ are handled through their U/R definitions.

// EpsilonAtom returns the ε atomic proposition of Definition 7.3.
func EpsilonAtom() *Formula { return Atom(alphabet.EpsilonName) }

// Rbar transforms a Σ'-normal-form property η of an abstract system into
// the formula R̄(η) to be interpreted on the concrete system under the
// canonical h-labeling (Definition 7.4). The input is normalized first;
// it must not mention the ε proposition itself.
func Rbar(f *Formula) (*Formula, error) {
	nf := f.Normalize()
	for _, a := range nf.Atoms() {
		if a == alphabet.EpsilonName {
			return nil, fmt.Errorf("ltl: R̄ input already mentions the ε proposition")
		}
	}
	return rbar(nf), nil
}

// MustRbar is Rbar for statically known-good formulas (tests, examples).
func MustRbar(f *Formula) *Formula {
	g, err := Rbar(f)
	if err != nil {
		panic(err)
	}
	return g
}

func rbar(f *Formula) *Formula {
	eps := EpsilonAtom()
	switch f.Op {
	case OpTrue, OpFalse:
		return f
	case OpAtom:
		return Until(eps, f)
	case OpNot: // literal ¬p in normalized input
		return Until(eps, And(Not(eps), f))
	case OpAnd:
		return And(rbar(f.Left), rbar(f.Right))
	case OpOr:
		return Or(rbar(f.Left), rbar(f.Right))
	case OpNext:
		return Until(eps, And(Not(eps), Next(rbar(f.Left))))
	case OpUntil:
		return Until(rbar(f.Left), rbar(f.Right))
	case OpRelease:
		return Release(rbar(f.Left), rbar(f.Right))
	}
	panic(fmt.Sprintf("ltl: non-normalized formula in R̄: %s", f))
}

// TransformT is the paper's T mapping alone: the temporal clauses of R̄
// without the wrapping of maximal pure Boolean subformulas. It is
// exposed for completeness and for the unit tests that exercise the
// difference between T and R̄; verification always uses Rbar.
func TransformT(f *Formula) (*Formula, error) {
	nf := f.Normalize()
	for _, a := range nf.Atoms() {
		if a == alphabet.EpsilonName {
			return nil, fmt.Errorf("ltl: T input already mentions the ε proposition")
		}
	}
	return transformT(nf), nil
}

func transformT(f *Formula) *Formula {
	eps := EpsilonAtom()
	switch f.Op {
	case OpTrue, OpFalse, OpAtom, OpNot:
		return f
	case OpAnd:
		return And(transformT(f.Left), transformT(f.Right))
	case OpOr:
		return Or(transformT(f.Left), transformT(f.Right))
	case OpNext:
		return Until(eps, And(Not(eps), Next(transformT(f.Left))))
	case OpUntil:
		return Until(transformT(f.Left), transformT(f.Right))
	case OpRelease:
		return Release(transformT(f.Left), transformT(f.Right))
	}
	panic(fmt.Sprintf("ltl: non-normalized formula in T: %s", f))
}
