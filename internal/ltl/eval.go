package ltl

import (
	"fmt"

	"relive/internal/word"
)

// EvalLasso evaluates the formula on the ultimately periodic ω-word l
// under the labeling λ, implementing the PLTL semantics of Section 3
// directly. It serves as the semantic oracle that the automata-theoretic
// translation is tested against.
//
// The algorithm assigns a truth value to every subformula at every
// position of the lasso (prefix positions plus one copy of the loop,
// whose last position wraps to the loop start). Until is a least and
// Release a greatest fixpoint over the wrapped positions.
func EvalLasso(f *Formula, l word.Lasso, lab *Labeling) (bool, error) {
	if !l.Valid() {
		return false, fmt.Errorf("ltl: invalid lasso (empty loop)")
	}
	n := len(l.Prefix) + len(l.Loop)
	next := func(i int) int {
		if i+1 < n {
			return i + 1
		}
		return len(l.Prefix)
	}

	vals := map[string][]bool{}
	var eval func(g *Formula) []bool
	eval = func(g *Formula) []bool {
		if v, ok := vals[g.Key()]; ok {
			return v
		}
		v := make([]bool, n)
		switch g.Op {
		case OpTrue:
			for i := range v {
				v[i] = true
			}
		case OpFalse:
			// all false
		case OpAtom:
			for i := 0; i < n; i++ {
				v[i] = lab.Has(l.At(i), g.Name)
			}
		case OpNot:
			sub := eval(g.Left)
			for i := range v {
				v[i] = !sub[i]
			}
		case OpAnd:
			a, b := eval(g.Left), eval(g.Right)
			for i := range v {
				v[i] = a[i] && b[i]
			}
		case OpOr:
			a, b := eval(g.Left), eval(g.Right)
			for i := range v {
				v[i] = a[i] || b[i]
			}
		case OpImplies:
			a, b := eval(g.Left), eval(g.Right)
			for i := range v {
				v[i] = !a[i] || b[i]
			}
		case OpIff:
			a, b := eval(g.Left), eval(g.Right)
			for i := range v {
				v[i] = a[i] == b[i]
			}
		case OpNext:
			sub := eval(g.Left)
			for i := range v {
				v[i] = sub[next(i)]
			}
		case OpUntil:
			a, b := eval(g.Left), eval(g.Right)
			// Least fixpoint: start false, iterate to convergence.
			for changed := true; changed; {
				changed = false
				for i := n - 1; i >= 0; i-- {
					nv := b[i] || (a[i] && v[next(i)])
					if nv != v[i] {
						v[i] = nv
						changed = true
					}
				}
			}
		case OpRelease:
			a, b := eval(g.Left), eval(g.Right)
			// Greatest fixpoint: start true, iterate to convergence.
			for i := range v {
				v[i] = true
			}
			for changed := true; changed; {
				changed = false
				for i := n - 1; i >= 0; i-- {
					nv := b[i] && (a[i] || v[next(i)])
					if nv != v[i] {
						v[i] = nv
						changed = true
					}
				}
			}
		case OpEventually:
			return eval(Until(True(), g.Left))
		case OpGlobally:
			return eval(Release(False(), g.Left))
		case OpBefore:
			return eval(Not(Until(Not(g.Left), g.Right)))
		case OpWeakUntil:
			return eval(Or(Until(g.Left, g.Right), Globally(g.Left)))
		default:
			panic(fmt.Sprintf("ltl: unknown operator %d", int(g.Op)))
		}
		vals[g.Key()] = v
		return v
	}
	return eval(f)[0], nil
}
