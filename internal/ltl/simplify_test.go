package ltl

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
)

func TestSimplifyRules(t *testing.T) {
	tests := []struct {
		in   string
		want string // rendered simplified form
	}{
		{"F F a", "true U a"},
		{"G G a", "false R a"},
		{"F G F a", "false R (true U a)"},
		{"G F G a", "true U (false R a)"},
		{"a & a", "a"},
		{"a | a", "a"},
		{"a & !a", "false"},
		{"a | !a", "true"},
		{"a & true", "a"},
		{"a | false", "a"},
		{"a & false", "false"},
		{"a U true", "true"},
		{"a U false", "false"},
		{"false U a", "a"},
		{"a U a", "a"},
		{"a R true", "true"},
		{"a R false", "false"},
		{"true R a", "a"},
		{"a R a", "a"},
		{"X true", "true"},
		{"X false", "false"},
	}
	for _, tc := range tests {
		got := Simplify(MustParse(tc.in)).String()
		if got != tc.want {
			t.Errorf("Simplify(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestQuickSimplifyPreservesSemantics checks equivalence on sampled
// lassos and by automata-based language equivalence.
func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	ab := alphabet.FromNames("a", "b")
	lab := Canonical(ab)
	atoms := ab.Names()
	for trial := 0; trial < 100; trial++ {
		f := randomFormula(rng, atoms, 3)
		s := Simplify(f)
		if s.Size() > f.Normalize().Size() {
			t.Errorf("Simplify grew %s (%d) to %s (%d)", f, f.Normalize().Size(), s, s.Size())
		}
		for i := 0; i < 10; i++ {
			l := randomLasso(rng, ab, 3, 3)
			v1, err := EvalLasso(f, l, lab)
			if err != nil {
				t.Fatal(err)
			}
			v2, err := EvalLasso(s, l, lab)
			if err != nil {
				t.Fatal(err)
			}
			if v1 != v2 {
				t.Fatalf("trial %d: Simplify changed semantics of %s → %s on %s",
					trial, f, s, l.String(ab))
			}
		}
		if trial < 25 && !Equivalent(f, s, lab) {
			t.Fatalf("trial %d: %s not language-equivalent to its simplification %s", trial, f, s)
		}
	}
}

func TestSatisfiable(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	lab := Canonical(ab)
	if ok, _ := Satisfiable(MustParse("G F a"), lab); !ok {
		t.Error("GFa unsatisfiable")
	}
	// With singleton labels, a ∧ b is unsatisfiable.
	if ok, _ := Satisfiable(MustParse("a & b"), lab); ok {
		t.Error("a∧b satisfiable under singleton labels")
	}
	if ok, _ := Satisfiable(MustParse("false"), lab); ok {
		t.Error("false satisfiable")
	}
}

func TestEquivalentAndImplies(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	lab := Canonical(ab)
	pairs := []struct {
		f, g string
		want bool
	}{
		{"G F a", "! F G ! a", true},
		{"a U b", "b | (a & X (a U b))", true},
		{"a W b", "(a U b) | G a", true},
		{"a W b", "b R (a | b)", true},
		{"F a", "G a", false},
		{"a B b", "!(!a U b)", true},
	}
	for _, tc := range pairs {
		got := Equivalent(MustParse(tc.f), MustParse(tc.g), lab)
		if got != tc.want {
			t.Errorf("Equivalent(%q, %q) = %v, want %v", tc.f, tc.g, got, tc.want)
		}
	}
	if !ImpliesSemantically(MustParse("G a"), MustParse("F a"), lab) {
		t.Error("□a should entail ◇a")
	}
	if ImpliesSemantically(MustParse("F a"), MustParse("G a"), lab) {
		t.Error("◇a should not entail □a")
	}
}

func TestWeakUntilSemantics(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	lab := Canonical(ab)
	rng := rand.New(rand.NewSource(132))
	w := MustParse("a W b")
	expanded := MustParse("(a U b) | G a")
	for i := 0; i < 60; i++ {
		l := randomLasso(rng, ab, 3, 3)
		v1, err := EvalLasso(w, l, lab)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := EvalLasso(expanded, l, lab)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Fatalf("a W b disagrees with its expansion on %s", l.String(ab))
		}
		// The automaton route agrees too.
		if got := TranslateBuchi(w, lab).AcceptsLasso(l); got != v1 {
			t.Fatalf("automaton for a W b disagrees on %s", l.String(ab))
		}
	}
	if !MustParse("a W b").Normalize().IsPositiveNormalForm() {
		t.Error("normalized W not in PNF")
	}
}
