package ltl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse parses a PLTL formula. Accepted syntax (ASCII and the paper's
// Unicode forms):
//
//	atoms:        identifiers (letters, digits, _, -), plus "ε"/"eps"
//	constants:    true, false
//	negation:     ! ~ ¬
//	conjunction:  & && ∧ /\
//	disjunction:  | || ∨ \/
//	implication:  -> => ⇒
//	equivalence:  <-> <=> ⇔
//	next:         X or O prefix, ○
//	eventually:   F <> ◇
//	globally:     G [] □
//	until:        U
//	weak until:   W
//	release:      R V
//	before:       B
//
// Precedence, loosest to tightest: ⇔, ⇒ (right assoc), ∨, ∧,
// U/R/B (right assoc), unary. "X", "O", "F", "G", "U", "R", "V", "B"
// are reserved operator names and cannot be atoms; use longer names.
func Parse(input string) (*Formula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseIff()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("ltl: unexpected %q at end of formula", p.toks[p.pos].text)
	}
	return f, nil
}

// MustParse is Parse for statically known-good formulas; it panics on a
// parse error. Intended for tests and examples.
func MustParse(input string) *Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tokAtom tokKind = iota + 1
	tokTrue
	tokFalse
	tokNot
	tokAnd
	tokOr
	tokImplies
	tokIff
	tokNext
	tokEventually
	tokGlobally
	tokUntil
	tokRelease
	tokBefore
	tokWeakUntil
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
}

func lex(input string) ([]token, error) {
	var toks []token
	s := input
	emit := func(k tokKind, text string) { toks = append(toks, token{kind: k, text: text}) }
	for len(s) > 0 {
		r, size := utf8.DecodeRuneInString(s)
		switch {
		case unicode.IsSpace(r):
			s = s[size:]
		case strings.HasPrefix(s, "<->") || strings.HasPrefix(s, "<=>"):
			emit(tokIff, s[:3])
			s = s[3:]
		case strings.HasPrefix(s, "->") || strings.HasPrefix(s, "=>"):
			emit(tokImplies, s[:2])
			s = s[2:]
		case strings.HasPrefix(s, "⇒"):
			emit(tokImplies, "⇒")
			s = s[len("⇒"):]
		case strings.HasPrefix(s, "⇔"):
			emit(tokIff, "⇔")
			s = s[len("⇔"):]
		case strings.HasPrefix(s, "<>"):
			emit(tokEventually, "<>")
			s = s[2:]
		case strings.HasPrefix(s, "[]"):
			emit(tokGlobally, "[]")
			s = s[2:]
		case strings.HasPrefix(s, "&&"):
			emit(tokAnd, "&&")
			s = s[2:]
		case strings.HasPrefix(s, "||"):
			emit(tokOr, "||")
			s = s[2:]
		case strings.HasPrefix(s, "/\\"):
			emit(tokAnd, "/\\")
			s = s[2:]
		case strings.HasPrefix(s, "\\/"):
			emit(tokOr, "\\/")
			s = s[2:]
		case r == '&' || r == '∧':
			emit(tokAnd, string(r))
			s = s[size:]
		case r == '|' || r == '∨':
			emit(tokOr, string(r))
			s = s[size:]
		case r == '!' || r == '~' || r == '¬':
			emit(tokNot, string(r))
			s = s[size:]
		case r == '○':
			emit(tokNext, string(r))
			s = s[size:]
		case r == '◇':
			emit(tokEventually, string(r))
			s = s[size:]
		case r == '□':
			emit(tokGlobally, string(r))
			s = s[size:]
		case r == '(':
			emit(tokLParen, "(")
			s = s[size:]
		case r == ')':
			emit(tokRParen, ")")
			s = s[size:]
		case isIdentRune(r):
			j := 0
			for j < len(s) {
				r2, sz := utf8.DecodeRuneInString(s[j:])
				if !isIdentRune(r2) {
					break
				}
				j += sz
			}
			id := s[:j]
			s = s[j:]
			switch id {
			case "true":
				emit(tokTrue, id)
			case "false":
				emit(tokFalse, id)
			case "X", "O":
				emit(tokNext, id)
			case "F":
				emit(tokEventually, id)
			case "G":
				emit(tokGlobally, id)
			case "U":
				emit(tokUntil, id)
			case "R", "V":
				emit(tokRelease, id)
			case "B":
				emit(tokBefore, id)
			case "W":
				emit(tokWeakUntil, id)
			case "eps":
				emit(tokAtom, "ε")
			default:
				emit(tokAtom, id)
			}
		default:
			return nil, fmt.Errorf("ltl: unexpected character %q", r)
		}
	}
	return toks, nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == 'ε'
}

type parser struct {
	toks  []token
	pos   int
	depth int
}

// maxParseDepth bounds operator nesting so adversarial inputs (kilobytes
// of "!", "(" or "a->a->...") fail with an error instead of unbounded
// recursion. Every recursive production calls enter/leave, so the guard
// also covers the right-associative binary operators.
const maxParseDepth = 2048

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return fmt.Errorf("ltl: formula nests deeper than %d", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) accept(k tokKind) bool {
	if t, ok := p.peek(); ok && t.kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseIff() (*Formula, error) {
	l, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIff) {
		r, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		l = Iff(l, r)
	}
	return l, nil
}

func (p *parser) parseImplies() (*Formula, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokImplies) {
		r, err := p.parseImplies() // right-associative
		if err != nil {
			return nil, err
		}
		return Implies(l, r), nil
	}
	return l, nil
}

func (p *parser) parseOr() (*Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOr) {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (*Formula, error) {
	l, err := p.parseBinaryTemporal()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAnd) {
		r, err := p.parseBinaryTemporal()
		if err != nil {
			return nil, err
		}
		l = And(l, r)
	}
	return l, nil
}

func (p *parser) parseBinaryTemporal() (*Formula, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if t, ok := p.peek(); ok {
		switch t.kind {
		case tokUntil:
			p.pos++
			r, err := p.parseBinaryTemporal() // right-associative
			if err != nil {
				return nil, err
			}
			return Until(l, r), nil
		case tokRelease:
			p.pos++
			r, err := p.parseBinaryTemporal()
			if err != nil {
				return nil, err
			}
			return Release(l, r), nil
		case tokBefore:
			p.pos++
			r, err := p.parseBinaryTemporal()
			if err != nil {
				return nil, err
			}
			return Before(l, r), nil
		case tokWeakUntil:
			p.pos++
			r, err := p.parseBinaryTemporal()
			if err != nil {
				return nil, err
			}
			return WeakUntil(l, r), nil
		}
	}
	return l, nil
}

func (p *parser) parseUnary() (*Formula, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("ltl: unexpected end of formula")
	}
	switch t.kind {
	case tokNot:
		p.pos++
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case tokNext:
		p.pos++
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Next(f), nil
	case tokEventually:
		p.pos++
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Eventually(f), nil
	case tokGlobally:
		p.pos++
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Globally(f), nil
	case tokLParen:
		p.pos++
		f, err := p.parseIff()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokRParen) {
			return nil, fmt.Errorf("ltl: missing closing parenthesis")
		}
		return f, nil
	case tokTrue:
		p.pos++
		return True(), nil
	case tokFalse:
		p.pos++
		return False(), nil
	case tokAtom:
		p.pos++
		return Atom(t.text), nil
	}
	return nil, fmt.Errorf("ltl: unexpected token %q", t.text)
}
