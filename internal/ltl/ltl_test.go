package ltl

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/word"
)

// randomLasso mirrors gen.Lasso; package gen now imports ltl (for the
// formula generator), so these in-package tests keep a local copy to
// avoid the test import cycle.
func randomLasso(rng *rand.Rand, ab *alphabet.Alphabet, maxPrefix, maxLoop int) word.Lasso {
	randomWord := func(n int) word.Word {
		syms := ab.Symbols()
		w := make(word.Word, n)
		for i := range w {
			w[i] = syms[rng.Intn(len(syms))]
		}
		return w
	}
	p := randomWord(rng.Intn(maxPrefix + 1))
	l := randomWord(1 + rng.Intn(maxLoop))
	return word.MustLasso(p, l)
}

func lasso(ab *alphabet.Alphabet, prefix, loop string) word.Lasso {
	toWord := func(s string) word.Word {
		var w word.Word
		for _, r := range s {
			w = append(w, ab.Symbol(string(r)))
		}
		return w
	}
	return word.MustLasso(toWord(prefix), toWord(loop))
}

func TestParseRoundTrip(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"G F result", "□◇result"},
		{"[]<>result", "□◇result"},
		{"□◇result", "□◇result"},
		{"a U b", "a U b"},
		{"a U b U c", "a U (b U c)"},
		{"!a & b | c", "(¬a ∧ b) ∨ c"},
		{"a -> b -> c", "a ⇒ (b ⇒ c)"},
		{"a <-> b", "a ⇔ b"},
		{"X (a R b)", "○(a R b)"},
		{"○(a ∧ ○a)", "○(a ∧ ○a)"},
		{"<>(a && X a)", "◇(a ∧ ○a)"},
		{"a B b", "a B b"},
		{"true U eps", "true U ε"},
		{"false", "false"},
	}
	for _, tc := range tests {
		f, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := f.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "(a", "a U", "a b", "&", "a #", ")a("} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestNormalizePNF(t *testing.T) {
	tests := []string{
		"!(a U b)",
		"!(G F a)",
		"!(a -> b)",
		"!(a <-> X b)",
		"a B b",
		"!!a",
		"!true",
		"!(a | !(b & X c))",
	}
	for _, in := range tests {
		f := MustParse(in)
		n := f.Normalize()
		if !n.IsPositiveNormalForm() {
			t.Errorf("Normalize(%q) = %q not in PNF", in, n)
		}
	}
}

func TestIsSigmaNormalForm(t *testing.T) {
	letters := map[string]bool{"a": true, "b": true}
	if !MustParse("a U !b").Normalize().IsSigmaNormalForm(letters) {
		t.Error("a U ¬b (normalized) should be Σ-normal form")
	}
	if MustParse("a U c").Normalize().IsSigmaNormalForm(letters) {
		t.Error("formula with foreign atom passed Σ-normal form check")
	}
	if MustParse("!(a U b)").IsSigmaNormalForm(letters) {
		t.Error("non-PNF formula passed Σ-normal form check")
	}
}

func TestEvalLassoBasics(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	lab := Canonical(ab)
	tests := []struct {
		formula      string
		prefix, loop string
		want         bool
	}{
		{"G F a", "", "ab", true},
		{"G F a", "aaa", "b", false},
		{"F G b", "aaa", "b", true},
		{"F G b", "", "ab", false},
		{"a U b", "ab", "a", true},
		{"a U b", "", "a", false},
		{"X a", "ba", "b", true},
		{"X X b", "aa", "b", true},
		{"a", "ab", "b", true},
		{"b", "ab", "b", false},
		{"a R b", "", "b", true},
		// With singleton labels no letter satisfies a ∧ b, so the release
		// point of "a R b" is unreachable: it holds only on b^ω.
		{"a R b", "b", "ab", false},
		{"a R b", "bbb", "b", true},
		{"a R b", "", "ab", false},
		// "(a ∨ b) R b" releases at any b, so it holds iff the word
		// starts with b.
		{"(a | b) R b", "", "b", true},
		{"(a | b) R b", "b", "ab", true},
		{"(a | b) R b", "a", "b", false},
		{"b R b", "", "b", true},
		{"<>(a && X a)", "b", "ab", false},
		{"<>(a && X a)", "baa", "b", true},
		{"a B b", "", "a", true},    // never b
		{"a B b", "ab", "a", true},  // a strictly before first b
		{"a B b", "ba", "a", false}, // b first
		{"true", "", "a", true},
		{"false", "", "a", false},
	}
	for _, tc := range tests {
		l := lasso(ab, tc.prefix, tc.loop)
		got, err := EvalLasso(MustParse(tc.formula), l, lab)
		if err != nil {
			t.Fatalf("EvalLasso(%q, %s): %v", tc.formula, l.String(ab), err)
		}
		if got != tc.want {
			t.Errorf("EvalLasso(%q, %s) = %v, want %v", tc.formula, l.String(ab), got, tc.want)
		}
	}
}

func TestEvalLassoInvalid(t *testing.T) {
	ab := alphabet.FromNames("a")
	if _, err := EvalLasso(MustParse("a"), word.Lasso{}, Canonical(ab)); err == nil {
		t.Error("EvalLasso accepted an invalid lasso")
	}
}

func TestTranslateBuchiBasics(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	lab := Canonical(ab)
	tests := []struct {
		formula      string
		prefix, loop string
		want         bool
	}{
		{"G F a", "", "ab", true},
		{"G F a", "aaa", "b", false},
		{"F G b", "aaa", "b", true},
		{"a U b", "ab", "a", true},
		{"a U b", "", "a", false},
		{"X X b", "aa", "b", true},
		{"a R b", "", "b", true},
		{"<>(a && X a)", "baa", "b", true},
		{"<>(a && X a)", "b", "ab", false},
	}
	for _, tc := range tests {
		b := TranslateBuchi(MustParse(tc.formula), lab)
		l := lasso(ab, tc.prefix, tc.loop)
		if got := b.AcceptsLasso(l); got != tc.want {
			t.Errorf("automaton for %q accepts %s = %v, want %v",
				tc.formula, l.String(ab), got, tc.want)
		}
	}
}

// randomFormula generates a random formula over the given atom names.
func randomFormula(rng *rand.Rand, atoms []string, depth int) *Formula {
	if depth <= 0 || rng.Float64() < 0.25 {
		switch rng.Intn(6) {
		case 0:
			return True()
		case 1:
			return False()
		default:
			return Atom(atoms[rng.Intn(len(atoms))])
		}
	}
	switch rng.Intn(9) {
	case 0:
		return Not(randomFormula(rng, atoms, depth-1))
	case 1:
		return And(randomFormula(rng, atoms, depth-1), randomFormula(rng, atoms, depth-1))
	case 2:
		return Or(randomFormula(rng, atoms, depth-1), randomFormula(rng, atoms, depth-1))
	case 3:
		return Next(randomFormula(rng, atoms, depth-1))
	case 4:
		return Until(randomFormula(rng, atoms, depth-1), randomFormula(rng, atoms, depth-1))
	case 5:
		return Release(randomFormula(rng, atoms, depth-1), randomFormula(rng, atoms, depth-1))
	case 6:
		return Eventually(randomFormula(rng, atoms, depth-1))
	case 7:
		return Globally(randomFormula(rng, atoms, depth-1))
	default:
		return Implies(randomFormula(rng, atoms, depth-1), randomFormula(rng, atoms, depth-1))
	}
}

// TestQuickNormalizePreservesSemantics: Normalize must not change lasso
// evaluation.
func TestQuickNormalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ab := alphabet.FromNames("a", "b")
	lab := Canonical(ab)
	atoms := ab.Names()
	for trial := 0; trial < 150; trial++ {
		f := randomFormula(rng, atoms, 3)
		n := f.Normalize()
		for i := 0; i < 8; i++ {
			l := randomLasso(rng, ab, 3, 3)
			got1, err1 := EvalLasso(f, l, lab)
			got2, err2 := EvalLasso(n, l, lab)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval error: %v %v", err1, err2)
			}
			if got1 != got2 {
				t.Fatalf("Normalize changed semantics of %s on %s: %v vs %v (normalized %s)",
					f, l.String(ab), got1, got2, n)
			}
		}
	}
}

// TestQuickTranslationAgreesWithEval is the central soundness check: the
// GPVW translation agrees with direct lasso evaluation on random
// formulas and random ultimately periodic words.
func TestQuickTranslationAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ab := alphabet.FromNames("a", "b")
	lab := Canonical(ab)
	atoms := ab.Names()
	for trial := 0; trial < 80; trial++ {
		f := randomFormula(rng, atoms, 3)
		b := TranslateBuchi(f, lab)
		for i := 0; i < 10; i++ {
			l := randomLasso(rng, ab, 3, 3)
			want, err := EvalLasso(f, l, lab)
			if err != nil {
				t.Fatal(err)
			}
			if got := b.AcceptsLasso(l); got != want {
				t.Fatalf("trial %d: automaton for %s accepts %s = %v, eval says %v",
					trial, f, l.String(ab), got, want)
			}
		}
	}
}

// TestQuickTranslationNegation: L(¬f) is the complement of L(f) on
// sampled lassos.
func TestQuickTranslationNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ab := alphabet.FromNames("a", "b")
	lab := Canonical(ab)
	atoms := ab.Names()
	for trial := 0; trial < 40; trial++ {
		f := randomFormula(rng, atoms, 3)
		pos := TranslateBuchi(f, lab)
		neg := TranslateNegation(f, lab)
		for i := 0; i < 8; i++ {
			l := randomLasso(rng, ab, 3, 3)
			if pos.AcceptsLasso(l) == neg.AcceptsLasso(l) {
				t.Fatalf("trial %d: %s and its negation agree on %s", trial, f, l.String(ab))
			}
		}
	}
}

func TestAtomsAndSize(t *testing.T) {
	f := MustParse("a U (b & X a)")
	atoms := f.Atoms()
	if len(atoms) != 2 || atoms[0] != "a" || atoms[1] != "b" {
		t.Errorf("Atoms = %v", atoms)
	}
	if f.Size() != 6 {
		t.Errorf("Size = %d, want 6", f.Size())
	}
}

func TestFormulaKeyEqual(t *testing.T) {
	f1 := MustParse("a U (b & c)")
	f2 := MustParse("a U (b & c)")
	f3 := MustParse("a U (c & b)")
	if !f1.Equal(f2) {
		t.Error("identical formulas not Equal")
	}
	if f1.Equal(f3) {
		t.Error("b&c equals c&b structurally?")
	}
}

func TestLabelings(t *testing.T) {
	src := alphabet.FromNames("request", "result", "tau")
	dst := alphabet.FromNames("request", "result")
	canon := Canonical(src)
	req, _ := src.Lookup("request")
	if !canon.Has(req, "request") || canon.Has(req, "result") {
		t.Error("canonical labeling wrong")
	}
	img := func(s alphabet.Symbol) alphabet.Symbol {
		name := src.Name(s)
		if name == "tau" {
			return alphabet.Epsilon
		}
		d, _ := dst.Lookup(name)
		return d
	}
	hlab := CanonicalImage(src, dst, img)
	tau, _ := src.Lookup("tau")
	if !hlab.Has(tau, alphabet.EpsilonName) {
		t.Error("erased letter must satisfy ε")
	}
	if !hlab.Has(req, "request") || hlab.Has(req, alphabet.EpsilonName) {
		t.Error("kept letter labeled wrongly")
	}
	if props := hlab.Props(tau); len(props) != 1 || props[0] != alphabet.EpsilonName {
		t.Errorf("Props(tau) = %v", props)
	}
}
