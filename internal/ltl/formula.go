// Package ltl implements propositional linear temporal logic (PLTL) as
// used in Nitsche & Wolper (PODC'97): the syntax of Section 3, positive
// and Σ-normal forms (Definitions 7.1, 7.2), the property transformation
// T / R̄ of Definition 7.4 (Figure 5), direct evaluation over ultimately
// periodic words, and a GPVW-style translation from formulas to Büchi
// automata over action alphabets via labeling functions λ : Σ → 2^AP.
package ltl

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates formula constructors.
type Op int

// Formula constructors. OpTrue..OpRelease form the negation-normal-form
// core; the remaining operators are definable abbreviations (Section 3)
// that Normalize desugars.
const (
	OpTrue Op = iota + 1
	OpFalse
	OpAtom
	OpNot
	OpAnd
	OpOr
	OpNext    // O(ξ) in the paper, often written X
	OpUntil   // (ξ) U (ζ)
	OpRelease // dual of Until; needed for positive normal form
	OpImplies
	OpIff
	OpEventually // ◇(ξ) = true U ξ
	OpGlobally   // □(ξ) = ¬◇¬ξ
	OpBefore     // (ξ) B (ζ) = ¬((¬ξ) U (ζ))
	OpWeakUntil  // (ξ) W (ζ) = (ξ U ζ) ∨ □ξ
)

// Formula is an immutable PLTL formula. Share subformulas freely; never
// mutate a formula after construction.
type Formula struct {
	Op          Op
	Name        string // atom name, only for OpAtom
	Left, Right *Formula

	key string // memoized canonical form
}

// Constructors. Unary operators use Left.

// True returns the constant true.
func True() *Formula { return &Formula{Op: OpTrue} }

// False returns the constant false.
func False() *Formula { return &Formula{Op: OpFalse} }

// Atom returns the atomic proposition named name.
func Atom(name string) *Formula { return &Formula{Op: OpAtom, Name: name} }

// Not returns ¬ξ.
func Not(f *Formula) *Formula { return &Formula{Op: OpNot, Left: f} }

// And returns ξ ∧ ζ.
func And(l, r *Formula) *Formula { return &Formula{Op: OpAnd, Left: l, Right: r} }

// Or returns ξ ∨ ζ.
func Or(l, r *Formula) *Formula { return &Formula{Op: OpOr, Left: l, Right: r} }

// Implies returns ξ ⇒ ζ.
func Implies(l, r *Formula) *Formula { return &Formula{Op: OpImplies, Left: l, Right: r} }

// Iff returns ξ ⇔ ζ.
func Iff(l, r *Formula) *Formula { return &Formula{Op: OpIff, Left: l, Right: r} }

// Next returns O(ξ).
func Next(f *Formula) *Formula { return &Formula{Op: OpNext, Left: f} }

// Until returns ξ U ζ.
func Until(l, r *Formula) *Formula { return &Formula{Op: OpUntil, Left: l, Right: r} }

// Release returns ξ R ζ.
func Release(l, r *Formula) *Formula { return &Formula{Op: OpRelease, Left: l, Right: r} }

// Eventually returns ◇ξ.
func Eventually(f *Formula) *Formula { return &Formula{Op: OpEventually, Left: f} }

// Globally returns □ξ.
func Globally(f *Formula) *Formula { return &Formula{Op: OpGlobally, Left: f} }

// Before returns ξ B ζ = ¬((¬ξ) U (ζ)).
func Before(l, r *Formula) *Formula { return &Formula{Op: OpBefore, Left: l, Right: r} }

// WeakUntil returns ξ W ζ = (ξ U ζ) ∨ □ξ, the until without the
// obligation that ζ ever happens.
func WeakUntil(l, r *Formula) *Formula { return &Formula{Op: OpWeakUntil, Left: l, Right: r} }

// AndAll folds a conjunction over fs; the empty conjunction is true.
func AndAll(fs ...*Formula) *Formula {
	if len(fs) == 0 {
		return True()
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = And(out, f)
	}
	return out
}

// Key returns a canonical string form usable as a map key; structurally
// equal formulas share the key.
func (f *Formula) Key() string {
	if f.key != "" {
		return f.key
	}
	var b strings.Builder
	f.writeKey(&b)
	f.key = b.String()
	return f.key
}

func (f *Formula) writeKey(b *strings.Builder) {
	switch f.Op {
	case OpTrue:
		b.WriteString("t")
	case OpFalse:
		b.WriteString("f")
	case OpAtom:
		fmt.Fprintf(b, "a%d:%s", len(f.Name), f.Name)
	default:
		fmt.Fprintf(b, "%d(", int(f.Op))
		if f.Left != nil {
			b.WriteString(f.Left.Key())
		}
		if f.Right != nil {
			b.WriteString(",")
			b.WriteString(f.Right.Key())
		}
		b.WriteString(")")
	}
}

// Equal reports structural equality.
func (f *Formula) Equal(g *Formula) bool { return f.Key() == g.Key() }

// String renders the formula with the paper's Unicode operators.
func (f *Formula) String() string {
	switch f.Op {
	case OpTrue:
		return "true"
	case OpFalse:
		return "false"
	case OpAtom:
		return f.Name
	case OpNot:
		return "¬" + f.Left.parenString()
	case OpNext:
		return "○" + f.Left.parenString()
	case OpEventually:
		return "◇" + f.Left.parenString()
	case OpGlobally:
		return "□" + f.Left.parenString()
	case OpAnd:
		return f.Left.parenString() + " ∧ " + f.Right.parenString()
	case OpOr:
		return f.Left.parenString() + " ∨ " + f.Right.parenString()
	case OpImplies:
		return f.Left.parenString() + " ⇒ " + f.Right.parenString()
	case OpIff:
		return f.Left.parenString() + " ⇔ " + f.Right.parenString()
	case OpUntil:
		return f.Left.parenString() + " U " + f.Right.parenString()
	case OpRelease:
		return f.Left.parenString() + " R " + f.Right.parenString()
	case OpBefore:
		return f.Left.parenString() + " B " + f.Right.parenString()
	case OpWeakUntil:
		return f.Left.parenString() + " W " + f.Right.parenString()
	}
	return "?"
}

func (f *Formula) parenString() string {
	switch f.Op {
	case OpTrue, OpFalse, OpAtom, OpNot, OpNext, OpEventually, OpGlobally:
		return f.String()
	}
	return "(" + f.String() + ")"
}

// Atoms returns the sorted set of atomic proposition names in f.
func (f *Formula) Atoms() []string {
	set := map[string]bool{}
	f.collectAtoms(set)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (f *Formula) collectAtoms(set map[string]bool) {
	if f == nil {
		return
	}
	if f.Op == OpAtom {
		set[f.Name] = true
		return
	}
	f.Left.collectAtoms(set)
	f.Right.collectAtoms(set)
}

// Size returns the number of nodes in the formula tree.
func (f *Formula) Size() int {
	if f == nil {
		return 0
	}
	return 1 + f.Left.Size() + f.Right.Size()
}

// Normalize returns an equivalent formula in negation normal form over
// the core operators {true, false, atoms, ¬atom, ∧, ∨, O, U, R}:
// abbreviations are expanded and negations pushed to the atoms. The
// result is in positive normal form in the sense of Definition 7.1.
func (f *Formula) Normalize() *Formula {
	return normalize(f, false)
}

func normalize(f *Formula, negated bool) *Formula {
	switch f.Op {
	case OpTrue:
		if negated {
			return False()
		}
		return True()
	case OpFalse:
		if negated {
			return True()
		}
		return False()
	case OpAtom:
		if negated {
			return Not(&Formula{Op: OpAtom, Name: f.Name})
		}
		return &Formula{Op: OpAtom, Name: f.Name}
	case OpNot:
		return normalize(f.Left, !negated)
	case OpAnd:
		if negated {
			return Or(normalize(f.Left, true), normalize(f.Right, true))
		}
		return And(normalize(f.Left, false), normalize(f.Right, false))
	case OpOr:
		if negated {
			return And(normalize(f.Left, true), normalize(f.Right, true))
		}
		return Or(normalize(f.Left, false), normalize(f.Right, false))
	case OpImplies:
		return normalize(Or(Not(f.Left), f.Right), negated)
	case OpIff:
		return normalize(And(Implies(f.Left, f.Right), Implies(f.Right, f.Left)), negated)
	case OpNext:
		return Next(normalize(f.Left, negated))
	case OpUntil:
		if negated {
			return Release(normalize(f.Left, true), normalize(f.Right, true))
		}
		return Until(normalize(f.Left, false), normalize(f.Right, false))
	case OpRelease:
		if negated {
			return Until(normalize(f.Left, true), normalize(f.Right, true))
		}
		return Release(normalize(f.Left, false), normalize(f.Right, false))
	case OpEventually:
		return normalize(Until(True(), f.Left), negated)
	case OpGlobally:
		return normalize(Not(Eventually(Not(f.Left))), negated)
	case OpBefore:
		return normalize(Not(Until(Not(f.Left), f.Right)), negated)
	case OpWeakUntil:
		// ξ W ζ ≡ ζ R (ξ ∨ ζ).
		return normalize(Release(f.Right, Or(f.Left, f.Right)), negated)
	}
	panic(fmt.Sprintf("ltl: unknown operator %d", int(f.Op)))
}

// IsPositiveNormalForm reports whether every negation in f applies to a
// single atomic proposition (Definition 7.1). Abbreviation operators are
// allowed; only the placement of ¬ matters.
func (f *Formula) IsPositiveNormalForm() bool {
	if f == nil {
		return true
	}
	if f.Op == OpNot {
		return f.Left.Op == OpAtom
	}
	if f.Op == OpBefore {
		// B hides a negated Until; it is not positive as written.
		return false
	}
	return f.Left.IsPositiveNormalForm() && f.Right.IsPositiveNormalForm()
}

// IsSigmaNormalForm reports whether f is in Σ-normal form for the given
// set of letter names (Definition 7.2): positive normal form with all
// atoms drawn from the alphabet.
func (f *Formula) IsSigmaNormalForm(letters map[string]bool) bool {
	if !f.IsPositiveNormalForm() {
		return false
	}
	for _, a := range f.Atoms() {
		if !letters[a] {
			return false
		}
	}
	return true
}
