package telecom

import (
	"testing"

	"relive/internal/core"
	"relive/internal/word"
)

func TestWellIntegratedPipeline(t *testing.T) {
	sys := WellIntegrated()
	eta := HandledProperty()

	// Not satisfied outright: the bounce loop starves a call.
	p, err := core.ConcreteProperty(Abstraction(sys), eta)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := core.Satisfies(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if sat.Holds {
		t.Error("service guarantee satisfied without fairness despite the bounce loop")
	}
	// But it is a relative liveness property.
	rl, err := core.RelativeLiveness(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Holds {
		t.Errorf("service guarantee not relative liveness on the well-integrated switch (prefix %s)",
			rl.BadPrefix.String(sys.Alphabet()))
	}
	// And the full abstraction pipeline concludes it.
	report, err := core.VerifyViaAbstraction(sys, Abstraction(sys), eta)
	if err != nil {
		t.Fatal(err)
	}
	if report.Conclusion != core.ConcreteHolds {
		t.Errorf("conclusion %v, want ConcreteHolds (simple=%v abstractHolds=%v)",
			report.Conclusion, report.Simple, report.AbstractHolds)
	}
}

func TestMisintegratedBugDetected(t *testing.T) {
	sys := Misintegrated()
	eta := HandledProperty()
	p, err := core.ConcreteProperty(Abstraction(sys), eta)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := core.RelativeLiveness(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Holds {
		t.Fatal("interaction bug not detected: guarantee still relative liveness")
	}
	// The bug is behind the first bounce.
	ab := sys.Alphabet()
	if !sys.AcceptsWord(rl.BadPrefix) {
		t.Errorf("bad prefix %s not a system word", rl.BadPrefix.String(ab))
	}
	// The bouncing path exists.
	if !sys.AcceptsWord(word.FromNames(ab, ActCall, ActBusy, ActForward, ActBounce, ActForward, ActBounce)) {
		t.Error("the forwarding livelock path is missing from the model")
	}
	// And the abstraction is rightly untrusted.
	nfaL, err := sys.NFA()
	if err != nil {
		t.Fatal(err)
	}
	simple, err := Abstraction(sys).IsSimple(nfaL)
	if err != nil {
		t.Fatal(err)
	}
	if simple.Simple {
		t.Error("hiding homomorphism simple on the buggy switch; abstraction would mask the bug")
	}
}

func TestModelsDiffer(t *testing.T) {
	good := WellIntegrated()
	bad := Misintegrated()
	ab := good.Alphabet()
	// Recovery after bounce exists only in the good model.
	recover := word.FromNames(ab, ActCall, ActBusy, ActForward, ActBounce, ActVoicemail, ActRecord)
	if !good.AcceptsWord(recover) {
		t.Error("well-integrated switch cannot recover via voicemail after a bounce")
	}
	badWord := word.FromNames(bad.Alphabet(), ActCall, ActBusy, ActForward, ActBounce, ActVoicemail)
	if bad.AcceptsWord(badWord) {
		t.Error("misintegrated switch still offers voicemail after a bounce")
	}
}
