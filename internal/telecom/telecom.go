// Package telecom models a small intelligent-network feature-interaction
// scenario, standing in for the proprietary case study of reference [6]
// of Nitsche & Wolper (PODC'97) ("Verification by behavior abstraction:
// a case study of service interaction detection in intelligent telephone
// networks"). Two features — call forwarding on busy and voice mail on
// busy — compete for the same trigger. The models exercise exactly the
// pipeline the paper advocates: compose, abstract away internal
// signalling, check a relative liveness property on the abstraction, and
// trust the verdict because the hiding homomorphism is simple.
package telecom

import (
	"relive/internal/alphabet"
	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/ts"
)

// Action names of the telephone model. Observable actions are the
// subscriber-visible ones; the rest is internal signalling.
const (
	ActCall      = "call"      // B dials A
	ActAnswer    = "answer"    // A answers
	ActHangup    = "hangup"    // call ends
	ActBusy      = "busy"      // A is busy: features trigger
	ActForward   = "forward"   // CF: divert to C
	ActFwdAnswer = "fwdanswer" // C answers the diverted call
	ActBounce    = "bounce"    // C is busy too: diverted call bounces back
	ActVoicemail = "voicemail" // VM: divert to the mailbox
	ActRecord    = "record"    // caller leaves a message
)

// ObservableActions are what the subscriber sees; everything else is
// hidden by the Abstraction homomorphism.
var ObservableActions = []string{ActCall, ActAnswer, ActFwdAnswer, ActRecord}

// HandledProperty is the service guarantee: every call is eventually
// handled — answered, answered after forwarding, or recorded.
// In Σ'-normal form over the observable alphabet.
func HandledProperty() *ltl.Formula {
	handled := ltl.Or(ltl.Atom(ActAnswer), ltl.Or(ltl.Atom(ActFwdAnswer), ltl.Atom(ActRecord)))
	return ltl.Globally(ltl.Implies(ltl.Atom(ActCall), ltl.Eventually(handled)))
}

// WellIntegrated returns the switch with both features installed and a
// sane arbitration: when a diverted call bounces (C busy as well), the
// voice-mail feature remains available, so under fairness every call is
// eventually handled. The bouncing loop makes the property fail without
// fairness — it is a relative liveness property, not a satisfied one.
func WellIntegrated() *ts.System {
	ab := alphabet.FromNames(ActCall, ActAnswer, ActHangup, ActBusy,
		ActForward, ActFwdAnswer, ActBounce, ActVoicemail, ActRecord)
	s := ts.New(ab)
	s.AddEdge("idle", ActCall, "ringing")
	s.AddEdge("ringing", ActAnswer, "talking")
	s.AddEdge("talking", ActHangup, "idle")
	s.AddEdge("ringing", ActBusy, "contended")
	// Both features compete for the busy trigger.
	s.AddEdge("contended", ActForward, "diverted")
	s.AddEdge("contended", ActVoicemail, "recording")
	s.AddEdge("diverted", ActFwdAnswer, "talking")
	s.AddEdge("diverted", ActBounce, "contended") // C busy: try again
	s.AddEdge("recording", ActRecord, "idle")
	init, _ := s.LookupState("idle")
	s.SetInitial(init)
	return s
}

// Misintegrated returns the broken arbitration: once the call has been
// diverted and bounced, the voice-mail option is lost (the feature
// state machine believes forwarding owns the call), so the diverted
// call can bounce forever with no handler left. No fairness helps; the
// service guarantee is not even a relative liveness property.
func Misintegrated() *ts.System {
	ab := alphabet.FromNames(ActCall, ActAnswer, ActHangup, ActBusy,
		ActForward, ActFwdAnswer, ActBounce, ActVoicemail, ActRecord)
	s := ts.New(ab)
	s.AddEdge("idle", ActCall, "ringing")
	s.AddEdge("ringing", ActAnswer, "talking")
	s.AddEdge("talking", ActHangup, "idle")
	s.AddEdge("ringing", ActBusy, "contended")
	s.AddEdge("contended", ActForward, "diverted")
	s.AddEdge("contended", ActVoicemail, "recording")
	s.AddEdge("diverted", ActFwdAnswer, "talking")
	// The interaction bug: after a bounce the voice-mail feature is gone
	// (forwarding believes it owns the call), and the two busy parties
	// forward to each other forever with no handler reachable again.
	s.AddEdge("diverted", ActBounce, "fwdonly")
	s.AddEdge("fwdonly", ActForward, "fwdloop")
	s.AddEdge("fwdloop", ActBounce, "fwdonly")
	s.AddEdge("recording", ActRecord, "idle")
	init, _ := s.LookupState("idle")
	s.SetInitial(init)
	return s
}

// Abstraction hides the internal signalling, keeping only the
// subscriber-visible actions.
func Abstraction(s *ts.System) *hom.Hom {
	return hom.Identity(s.Alphabet(), ObservableActions...)
}
