package obs

import (
	"sync"
	"testing"
)

// TestTeeMetricsRouting: spans land only in the request trace; counters
// and gauges land in both the request trace and the metrics trace.
func TestTeeMetricsRouting(t *testing.T) {
	req, metrics := NewTrace(), NewTrace()
	rec := TeeMetrics(req, metrics)

	sp := StartSpan(rec, "serve.all").Tag("outcome", "ok").Int("n", 3)
	sp.Count("serve.completed", 1)
	Gauge(rec, "serve.inflight", 2)
	sp.End()

	if got := len(req.Spans()); got != 1 {
		t.Fatalf("request trace has %d spans, want 1", got)
	}
	if got := len(metrics.Spans()); got != 0 {
		t.Fatalf("metrics trace has %d spans, want 0 (spans must not accumulate process-wide)", got)
	}
	s := req.Spans()[0]
	if s.Tags["outcome"] != "ok" || s.Ints["n"] != 3 || s.DurationNS < 0 {
		t.Errorf("span attributes lost through the tee: %+v", s)
	}
	for _, tr := range []*Trace{req, metrics} {
		if tr.Counters()["serve.completed"] != 1 {
			t.Errorf("counter missing from one side of the tee")
		}
		if tr.Gauges()["serve.inflight"] != 2 {
			t.Errorf("gauge missing from one side of the tee")
		}
	}
}

func TestTeeMetricsNilSides(t *testing.T) {
	tr := NewTrace()
	if got := TeeMetrics(nil, tr); got != Recorder(tr) {
		t.Error("TeeMetrics(nil, tr) should degrade to tr")
	}
	if got := TeeMetrics(tr, nil); got != Recorder(tr) {
		t.Error("TeeMetrics(tr, nil) should degrade to tr")
	}
	if got := TeeMetrics(nil, nil); got != nil {
		t.Error("TeeMetrics(nil, nil) should stay nil (allocation-free off path)")
	}
}

// TestTeeMetricsParentedForkWorker: ForkWorker over a tee must keep
// explicit parenting on the spans side.
func TestTeeMetricsParentedForkWorker(t *testing.T) {
	req, metrics := NewTrace(), NewTrace()
	rec := TeeMetrics(req, metrics)
	root := StartSpan(rec, "serve.all")
	w := ForkWorker(rec, "rel-liveness", root.ID())
	top := w.SpanStart("core.RelativeLiveness")
	w.SpanEnd(top)
	root.End()

	s := spanByName(t, req.Spans(), "core.RelativeLiveness")
	if s.Parent != root.ID() {
		t.Errorf("worker span parented under %d, want the request root %d", s.Parent, root.ID())
	}
	if s.Tags["worker"] != "rel-liveness" {
		t.Errorf("worker tag lost through tee: %+v", s.Tags)
	}
}

// TestNestedForkWorkerAttribution is the span-drift regression test:
// a worker forked from another worker's recorder (a portfolio pool
// inside a parallel check) must parent its spans under the parent span
// it was given — never under whatever a sibling worker has open on its
// local bracketing stack, and never under another request's subtree
// after its own parent span has ended.
func TestNestedForkWorkerAttribution(t *testing.T) {
	tr := NewTrace()
	reqA := tr.SpanStart("request-A")
	outer := ForkWorker(tr, "outer", reqA)
	anchor := outer.SpanStart("core.CheckPortfolio")

	// The outer worker opens (and leaves open) an unrelated span — the
	// sibling state that used to capture nested workers' spans.
	sibling := outer.SpanStart("sibling-open")

	inner := ForkWorker(outer, "worker-0", anchor)
	got := inner.SpanStart("core.CheckAll")
	inner.SpanEnd(got)

	outer.SpanEnd(sibling)
	outer.SpanEnd(anchor)
	tr.SpanEnd(reqA)

	// A second request starts after the first finished; the late inner
	// worker span from request A must not attach to it.
	reqB := tr.SpanStart("request-B")
	late := ForkWorker(outer, "worker-1", anchor)
	lateSpan := late.SpanStart("core.CheckAll.late")
	late.SpanEnd(lateSpan)
	tr.SpanEnd(reqB)

	spans := tr.Spans()
	if s := spanByName(t, spans, "core.CheckAll"); s.Parent != spanByName(t, spans, "core.CheckPortfolio").ID {
		t.Errorf("nested worker span parented under %d (%q), want its anchor",
			s.Parent, nameOf(spans, s.Parent))
	}
	if s := spanByName(t, spans, "core.CheckAll.late"); s.Parent != spanByName(t, spans, "core.CheckPortfolio").ID {
		t.Errorf("late worker span drifted to %d (%q), want its request's anchor",
			s.Parent, nameOf(spans, s.Parent))
	}
}

func nameOf(spans []SpanRecord, id SpanID) string {
	for _, s := range spans {
		if s.ID == id {
			return s.Name
		}
	}
	return "<none>"
}

// TestNestedForkWorkerConcurrent drives nested forks from many
// goroutines under -race; every leaf must stay inside its own request's
// subtree.
func TestNestedForkWorkerConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	const requests = 4
	roots := make([]SpanID, requests)
	for r := 0; r < requests; r++ {
		roots[r] = tr.SpanStartAt("request", 0)
	}
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outer := ForkWorker(tr, "outer", roots[r])
			anchor := outer.SpanStart("anchor")
			var iwg sync.WaitGroup
			for k := 0; k < 4; k++ {
				iwg.Add(1)
				go func() {
					defer iwg.Done()
					inner := ForkWorker(outer, "inner", anchor)
					for i := 0; i < 20; i++ {
						sp := inner.SpanStart("leaf")
						inner.SpanEnd(sp)
					}
				}()
			}
			iwg.Wait()
			outer.SpanEnd(anchor)
			tr.SpanEnd(roots[r])
		}(r)
	}
	wg.Wait()

	spans := tr.Spans()
	parentOf := map[SpanID]SpanRecord{}
	for _, s := range spans {
		parentOf[s.ID] = s
	}
	rootOf := func(s SpanRecord) SpanID {
		for s.Parent != 0 {
			s = parentOf[s.Parent]
		}
		return s.ID
	}
	anchors := map[SpanID]SpanID{} // anchor id -> its request root
	for _, s := range spans {
		if s.Name == "anchor" {
			anchors[s.ID] = rootOf(s)
		}
	}
	for _, s := range spans {
		if s.Name != "leaf" {
			continue
		}
		if _, ok := anchors[s.Parent]; !ok {
			t.Fatalf("leaf parented under %q, want an anchor", parentOf[s.Parent].Name)
		}
	}
}
