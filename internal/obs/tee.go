package obs

// TeeMetrics splits one instrumentation stream two ways: spans (with
// their tags and attributes) go to the spans recorder, while counters
// and gauges go to both. This is how the serving layer gives every
// request its own bounded span tree — exported as a self-contained
// JSON trace keyed by trace ID — while the process-wide metrics
// recorder behind /metrics keeps accumulating counters across requests.
// Sending spans to the shared recorder too would both grow it without
// bound under production traffic and require translating span IDs
// between recorders; the per-request trace is the single source of
// truth for spans.
//
// Either argument may be nil: a nil spans recorder degrades to the
// metrics recorder alone (spans included, the pre-tracing behavior),
// and a nil metrics recorder leaves just the request-scoped trace.
func TeeMetrics(spans, metrics Recorder) Recorder {
	if spans == nil {
		return metrics
	}
	if metrics == nil {
		return spans
	}
	return &teeRecorder{spans: spans, metrics: metrics}
}

// teeRecorder implements ParentedRecorder so that ForkWorker over a tee
// keeps explicit parent attribution (the spans side decides parenting).
type teeRecorder struct {
	spans   Recorder
	metrics Recorder
}

func (t *teeRecorder) SpanStart(name string) SpanID { return t.spans.SpanStart(name) }

func (t *teeRecorder) SpanStartAt(name string, parent SpanID) SpanID {
	if pr, ok := t.spans.(ParentedRecorder); ok {
		return pr.SpanStartAt(name, parent)
	}
	return t.spans.SpanStart(name)
}

func (t *teeRecorder) SpanEnd(id SpanID)                  { t.spans.SpanEnd(id) }
func (t *teeRecorder) SpanTag(id SpanID, k, v string)     { t.spans.SpanTag(id, k, v) }
func (t *teeRecorder) SpanInt(id SpanID, k string, v int64) { t.spans.SpanInt(id, k, v) }

func (t *teeRecorder) Count(name string, delta int64) {
	t.spans.Count(name, delta)
	t.metrics.Count(name, delta)
}

func (t *teeRecorder) Gauge(name string, value int64) {
	t.spans.Gauge(name, value)
	t.metrics.Gauge(name, value)
}
