package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// Trace identifiers. Every rlserve request (and every CLI trace export)
// is stamped with a W3C-trace-context-style ID: 16 random bytes as 32
// lowercase hex digits. The serving layer accepts and emits
// `traceparent` headers so the ID survives the hop through a future
// shard router, and the same ID keys the flight recorder and the
// exported JSON trace.

// NewTraceID returns a fresh random 32-hex-digit trace ID. It never
// returns the all-zero ID (invalid per the W3C spec).
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed
		// fallback keeps tracing best-effort rather than panicking.
		copy(b[:], "relive-fallback!")
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		b[15] = 1
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is a well-formed, non-zero 32-hex-digit
// trace ID.
func ValidTraceID(s string) bool {
	if len(s) != 32 {
		return false
	}
	nonZero := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			nonZero = true
		}
	}
	return nonZero
}

// ParseTraceparent extracts the trace ID from a traceparent header
// ("00-<32 hex>-<16 hex>-<2 hex>"). It returns ok=false for malformed
// headers, unknown versions, or the all-zero trace ID, in which case the
// caller should mint a fresh ID.
func ParseTraceparent(header string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) != 4 {
		return "", false
	}
	if len(parts[0]) != 2 || parts[0] == "ff" || !isHex(parts[0]) {
		return "", false
	}
	if !ValidTraceID(parts[1]) {
		return "", false
	}
	if len(parts[2]) != 16 || !isHex(parts[2]) || parts[2] == "0000000000000000" {
		return "", false
	}
	if len(parts[3]) != 2 || !isHex(parts[3]) {
		return "", false
	}
	return parts[1], true
}

// Traceparent renders a traceparent header carrying traceID with a
// fresh span ID and the sampled flag set.
func Traceparent(traceID string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		copy(b[:], "reliveid")
	}
	spanID := hex.EncodeToString(b[:])
	if spanID == "0000000000000000" {
		spanID = "0000000000000001"
	}
	return "00-" + traceID + "-" + spanID + "-01"
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// traceIDKey carries the request's trace ID through context.Context so
// any layer below the HTTP handler (portfolio workers, future shard
// clients) can stamp artifacts with the originating request.
type traceIDKey struct{}

// ContextWithTraceID returns ctx carrying the trace ID.
func ContextWithTraceID(ctx context.Context, traceID string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, traceID)
}

// TraceIDFromContext returns the trace ID carried by ctx, or "".
func TraceIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}
