// Package obs is the zero-dependency observability layer of the
// library: nested phase spans (timers), monotonic counters, and
// last-value gauges behind a Recorder interface. The decision
// procedures are PSPACE-complete (Theorem 4.5 of Nitsche & Wolper,
// PODC'97), so in practice their cost is dominated by automaton blowup
// in intersection, complementation, and limit closure; this package is
// how that blowup becomes visible.
//
// Design rules:
//
//   - A nil Recorder means "off". Every helper takes the nil fast path
//     with a single comparison, records nothing, and allocates nothing
//     (asserted by testing.AllocsPerRun in the test suite).
//   - Span is a value type so that starting and ending a span on the
//     nil path moves only two words on the stack.
//   - Recorder implementations must be safe for concurrent use; the
//     Trace implementation in this package guards all state with a
//     mutex and is exercised under the race detector.
//   - Span names follow the convention documented in
//     docs/OBSERVABILITY.md: "<package>.<Operation>" for code phases
//     and the paper's own notation (e.g. "pre(L) ⊆ pre(L∩P)") for
//     lemma/theorem steps, with the citation attached as a "paper" tag.
package obs

// SpanID identifies a span within a Recorder. The zero value means
// "no span" and is what the nil fast path carries.
type SpanID int64

// Recorder receives spans, counters, and gauges from instrumented code.
// Implementations must be safe for concurrent use. Counters accumulate;
// gauges keep the last recorded value.
type Recorder interface {
	// SpanStart opens a span. The recorder decides the parent (the
	// Trace implementation nests under the innermost open span).
	SpanStart(name string) SpanID
	// SpanEnd closes the span, fixing its duration.
	SpanEnd(id SpanID)
	// SpanTag attaches a string attribute (e.g. the paper reference).
	SpanTag(id SpanID, key, value string)
	// SpanInt attaches an integer attribute (e.g. a state count).
	SpanInt(id SpanID, key string, value int64)
	// Count adds delta to the named counter.
	Count(name string, delta int64)
	// Gauge records the most recent value of the named gauge.
	Gauge(name string, value int64)
}

// Span is a lightweight handle to an open span. The zero value is the
// disabled span: every method is a nil check and nothing more.
type Span struct {
	rec Recorder
	id  SpanID
}

// StartSpan opens a span on rec, or returns the disabled span when rec
// is nil.
func StartSpan(rec Recorder, name string) Span {
	if rec == nil {
		return Span{}
	}
	return Span{rec: rec, id: rec.SpanStart(name)}
}

// ID returns the span's identifier on its recorder, or 0 for the
// disabled span. Callers use it to fork per-goroutine recorders that
// parent their spans under this span (see ForkWorker).
func (s Span) ID() SpanID { return s.id }

// End closes the span.
func (s Span) End() {
	if s.rec != nil {
		s.rec.SpanEnd(s.id)
	}
}

// Tag attaches a string attribute and returns the span for chaining.
func (s Span) Tag(key, value string) Span {
	if s.rec != nil {
		s.rec.SpanTag(s.id, key, value)
	}
	return s
}

// Int attaches an integer attribute and returns the span for chaining.
func (s Span) Int(key string, value int64) Span {
	if s.rec != nil {
		s.rec.SpanInt(s.id, key, value)
	}
	return s
}

// Count adds delta to a counter on the span's recorder.
func (s Span) Count(name string, delta int64) {
	if s.rec != nil {
		s.rec.Count(name, delta)
	}
}

// Count adds delta to a counter on rec; no-op when rec is nil.
func Count(rec Recorder, name string, delta int64) {
	if rec != nil {
		rec.Count(name, delta)
	}
}

// Gauge records a gauge value on rec; no-op when rec is nil.
func Gauge(rec Recorder, name string, value int64) {
	if rec != nil {
		rec.Gauge(name, value)
	}
}

// Nop is an explicit do-nothing Recorder for callers that want a
// non-nil recorder value (a nil Recorder is equivalent and cheaper).
type Nop struct{}

// SpanStart implements Recorder.
func (Nop) SpanStart(string) SpanID { return 0 }

// SpanEnd implements Recorder.
func (Nop) SpanEnd(SpanID) {}

// SpanTag implements Recorder.
func (Nop) SpanTag(SpanID, string, string) {}

// SpanInt implements Recorder.
func (Nop) SpanInt(SpanID, string, int64) {}

// Count implements Recorder.
func (Nop) Count(string, int64) {}

// Gauge implements Recorder.
func (Nop) Gauge(string, int64) {}
