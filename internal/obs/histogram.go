package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free latency histogram over non-negative int64
// values (conventionally nanoseconds) with fixed log-scale buckets:
// values 0–3 get exact buckets, everything above lands in one of four
// sub-buckets per power of two (≤ 25% relative error), which is plenty
// for latency percentiles while keeping Observe three atomic adds and
// zero allocations. The PSPACE-hard checks this service runs have
// latency distributions spanning six orders of magnitude — a mean is
// meaningless there; the log-scale buckets keep resolution proportional
// everywhere on that range.
//
// The zero value is ready to use. A nil *Histogram is the disabled
// histogram: Observe is a nil check and nothing more (asserted by
// AllocsPerRun in the test suite, like the rest of this package).
// Snapshots are mergeable, so per-worker histograms can be combined
// into service-wide ones.
type Histogram struct {
	counts [numHistBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

// numHistBuckets covers the full int64 range: buckets 0..3 are exact,
// then 4 sub-buckets per power of two up to 2^63.
const numHistBuckets = 4*(63-2) + 4

// histBucketOf maps a value to its bucket index. Negative values clamp
// to bucket 0 (durations are never negative; clamping beats panicking
// on a clock anomaly).
func histBucketOf(v int64) int {
	if v < 4 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	u := uint64(v)
	e := bits.Len64(u) // ≥ 3
	sub := (u >> (e - 3)) & 3
	return 4*(e-2) + int(sub)
}

// HistBucketUpper returns the inclusive upper bound of bucket i, the
// value reported when a quantile falls inside it.
func HistBucketUpper(i int) int64 {
	if i < 4 {
		return int64(i)
	}
	e := i/4 + 2
	sub := i % 4
	return int64((uint64(4+sub+1))<<(e-3) - 1)
}

// Observe records one value. Safe for concurrent use; allocation-free;
// no-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[histBucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram, safe to
// read, merge, and summarize without touching the live counters.
type HistogramSnapshot struct {
	Count  uint64
	Sum    int64
	Counts [numHistBuckets]uint64
}

// Snapshot copies the current counts. Concurrent Observes may land
// between the bucket reads — each bucket is individually exact and the
// snapshot is at worst a few observations behind, which is the usual
// contract for scrape-style metrics. A nil histogram snapshots empty.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Merge adds other's counts into s, for combining per-worker or
// per-shard histograms.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Quantile returns an upper estimate of the q-quantile (0 ≤ q ≤ 1): the
// upper bound of the bucket holding the rank-⌈q·count⌉ observation.
// Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			return HistBucketUpper(i)
		}
	}
	return HistBucketUpper(numHistBuckets - 1)
}

// Max returns the upper bound of the highest non-empty bucket, 0 when
// empty.
func (s HistogramSnapshot) Max() int64 {
	for i := numHistBuckets - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			return HistBucketUpper(i)
		}
	}
	return 0
}

// CumulativeLE returns how many observations are ≤ bound, for rendering
// Prometheus-style cumulative buckets at arbitrary boundaries.
func (s HistogramSnapshot) CumulativeLE(bound int64) uint64 {
	var n uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if HistBucketUpper(i) <= bound {
			n += c
		}
	}
	return n
}
