package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteTree renders the trace as a human-readable phase tree: one line
// per span with its duration, integer attributes (automaton sizes), and
// paper tags, followed by the counters and gauges. This is what the
// CLIs print under -stats.
func (t *Trace) WriteTree(w io.Writer) error {
	return t.Dump().WriteTree(w)
}

// WriteTree renders the dump as a phase tree; see (*Trace).WriteTree.
func (d Dump) WriteTree(w io.Writer) error {
	children := map[SpanID][]SpanID{}
	byID := map[SpanID]SpanRecord{}
	for _, s := range d.Spans {
		byID[s.ID] = s
		children[s.Parent] = append(children[s.Parent], s.ID)
	}
	var render func(id SpanID, prefix, childPrefix string) error
	render = func(id SpanID, prefix, childPrefix string) error {
		if _, err := fmt.Fprintf(w, "%s%s\n", prefix, spanLine(byID[id])); err != nil {
			return err
		}
		kids := children[id]
		for i, kid := range kids {
			connector, extend := "├─ ", "│  "
			if i == len(kids)-1 {
				connector, extend = "└─ ", "   "
			}
			if err := render(kid, childPrefix+connector, childPrefix+extend); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range children[0] {
		if err := render(root, "", ""); err != nil {
			return err
		}
	}
	if len(d.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, k := range sortedKeys(d.Counters) {
			fmt.Fprintf(w, "  %-40s %d\n", k, d.Counters[k])
		}
	}
	if len(d.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, k := range sortedKeys(d.Gauges) {
			fmt.Fprintf(w, "  %-40s %d\n", k, d.Gauges[k])
		}
	}
	return nil
}

// spanLine formats one span: name, duration, sorted int attributes,
// then tags in brackets.
func spanLine(s SpanRecord) string {
	var b strings.Builder
	b.WriteString(s.Name)
	if s.DurationNS >= 0 {
		fmt.Fprintf(&b, "  %s", formatDuration(time.Duration(s.DurationNS)))
	} else {
		b.WriteString("  (open)")
	}
	for _, k := range sortedKeys(s.Ints) {
		fmt.Fprintf(&b, " %s=%d", k, s.Ints[k])
	}
	for _, k := range sortedKeys(s.Tags) {
		fmt.Fprintf(&b, " [%s: %s]", k, s.Tags[k])
	}
	return b.String()
}

// formatDuration rounds to a readable precision: sub-millisecond spans
// keep microseconds, longer ones keep three significant sub-units.
func formatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
