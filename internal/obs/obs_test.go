package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace()
	root := StartSpan(tr, "root")
	a := StartSpan(tr, "a")
	aa := StartSpan(tr, "a.a")
	aa.End()
	a.End()
	b := StartSpan(tr, "b").Tag("paper", "Lemma 4.3").Int("states", 7)
	b.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	parentOf := map[string]SpanID{}
	idOf := map[string]SpanID{}
	for _, s := range spans {
		parentOf[s.Name] = s.Parent
		idOf[s.Name] = s.ID
		if s.DurationNS < 0 {
			t.Errorf("span %s still open", s.Name)
		}
	}
	if parentOf["root"] != 0 {
		t.Errorf("root has parent %d, want 0", parentOf["root"])
	}
	if parentOf["a"] != idOf["root"] || parentOf["b"] != idOf["root"] {
		t.Errorf("a/b parents = %d/%d, want %d", parentOf["a"], parentOf["b"], idOf["root"])
	}
	if parentOf["a.a"] != idOf["a"] {
		t.Errorf("a.a parent = %d, want %d", parentOf["a.a"], idOf["a"])
	}
	sb, ok := tr.Find("b")
	if !ok || sb.Tags["paper"] != "Lemma 4.3" || sb.Ints["states"] != 7 {
		t.Errorf("span b attributes not recorded: %+v", sb)
	}
}

func TestUnbalancedEndClosesDescendants(t *testing.T) {
	tr := NewTrace()
	root := StartSpan(tr, "root")
	StartSpan(tr, "leaked") // never ended by its owner
	root.End()
	next := StartSpan(tr, "next")
	next.End()
	for _, s := range tr.Spans() {
		if s.Name == "next" && s.Parent != 0 {
			t.Errorf("next nested under %d; leaked span corrupted the stack", s.Parent)
		}
	}
}

// TestNilRecorderAllocationFree is the ISSUE acceptance check: with no
// recorder attached the entire span/counter/gauge surface must cost a
// nil check and zero allocations.
func TestNilRecorderAllocationFree(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(nil, "buchi.Intersect")
		sp = sp.Tag("paper", "Lemma 4.3").Int("states", 42)
		sp.Count("calls", 1)
		Count(nil, "calls", 1)
		Gauge(nil, "peak", 9)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder path allocates %v per op, want 0", allocs)
	}
}

func TestCountersAndGauges(t *testing.T) {
	tr := NewTrace()
	Count(tr, "c", 2)
	Count(tr, "c", 3)
	Gauge(tr, "g", 10)
	Gauge(tr, "g", 4)
	if got := tr.Counters()["c"]; got != 5 {
		t.Errorf("counter c = %d, want 5", got)
	}
	if got := tr.Gauges()["g"]; got != 4 {
		t.Errorf("gauge g = %d, want 4 (last value)", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := NewTrace()
	root := StartSpan(tr, "core.RelativeLiveness").Tag("paper", "Lemma 4.3: pre(L) = pre(L∩P)")
	child := StartSpan(tr, "buchi.Intersect").Int("out_states", 12)
	child.End()
	root.End()
	Count(tr, "buchi.intersect.calls", 1)
	Gauge(tr, "peak_states", 12)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip: %v\nJSON:\n%s", err, buf.String())
	}
	want := tr.Dump()
	if len(d.Spans) != len(want.Spans) {
		t.Fatalf("round-trip spans = %d, want %d", len(d.Spans), len(want.Spans))
	}
	for i := range d.Spans {
		g, w := d.Spans[i], want.Spans[i]
		if g.Name != w.Name || g.Parent != w.Parent || g.DurationNS != w.DurationNS {
			t.Errorf("span %d differs after round-trip: got %+v want %+v", i, g, w)
		}
		if g.Tags["paper"] != w.Tags["paper"] {
			t.Errorf("span %d tag lost: got %v want %v", i, g.Tags, w.Tags)
		}
	}
	if d.Counters["buchi.intersect.calls"] != 1 || d.Gauges["peak_states"] != 12 {
		t.Errorf("metrics lost in round-trip: %+v %+v", d.Counters, d.Gauges)
	}
}

func TestReadJSONRejectsCorruptDumps(t *testing.T) {
	for _, bad := range []string{
		`{`,
		`{"spans":[{"id":2,"name":"x","start_ns":0,"duration_ns":1}]}`,
		`{"spans":[{"id":1,"parent":5,"name":"x","start_ns":0,"duration_ns":1}]}`,
	} {
		if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadJSON accepted corrupt dump %q", bad)
		}
	}
}

func TestWriteTree(t *testing.T) {
	tr := NewTrace()
	root := StartSpan(tr, "core.RelativeLiveness").Tag("paper", "Lemma 4.3")
	child := StartSpan(tr, "buchi.Intersect").Int("out_states", 12)
	child.End()
	sib := StartSpan(tr, "pre(L) ⊆ pre(L∩P)")
	sib.End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"core.RelativeLiveness",
		"[paper: Lemma 4.3]",
		"├─ buchi.Intersect",
		"out_states=12",
		"└─ pre(L) ⊆ pre(L∩P)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentUse exercises the Trace under parallel recording; run
// with -race (the Makefile test target does) to verify the mutex
// discipline.
func TestConcurrentUse(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := StartSpan(tr, "op").Int("i", int64(i)).Tag("k", "v")
				Count(tr, "ops", 1)
				Gauge(tr, "last", int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != workers*perWorker {
		t.Errorf("recorded %d spans, want %d", got, workers*perWorker)
	}
	if got := tr.Counters()["ops"]; got != workers*perWorker {
		t.Errorf("counter ops = %d, want %d", got, workers*perWorker)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(&buf); err != nil {
		t.Errorf("concurrent trace does not round-trip: %v", err)
	}
}

func TestReset(t *testing.T) {
	tr := NewTrace()
	StartSpan(tr, "x").End()
	Count(tr, "c", 1)
	tr.Reset()
	if len(tr.Spans()) != 0 || len(tr.Counters()) != 0 {
		t.Error("Reset did not clear the trace")
	}
	StartSpan(tr, "y").End()
	if got := len(tr.Spans()); got != 1 {
		t.Errorf("trace unusable after Reset: %d spans", got)
	}
}

func TestNopRecorder(t *testing.T) {
	var rec Recorder = Nop{}
	sp := StartSpan(rec, "x").Tag("a", "b").Int("n", 1)
	sp.Count("c", 1)
	sp.End()
	Count(rec, "c", 1)
	Gauge(rec, "g", 1)
}
