package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketMapping(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 100, 1000, 1 << 20, 1<<62 + 12345} {
		i := histBucketOf(v)
		upper := HistBucketUpper(i)
		if v > upper {
			t.Errorf("value %d above its bucket %d upper bound %d", v, i, upper)
		}
		if i > 0 {
			lower := HistBucketUpper(i-1) + 1
			if v < lower {
				t.Errorf("value %d below its bucket %d lower bound %d", v, i, lower)
			}
		}
	}
	if got := histBucketOf(-5); got != 0 {
		t.Errorf("negative value bucket = %d, want 0 (clamped)", got)
	}
	// Buckets must be monotone: upper bounds strictly increase.
	for i := 1; i < numHistBuckets; i++ {
		if HistBucketUpper(i) <= HistBucketUpper(i-1) {
			t.Fatalf("bucket bounds not monotone at %d: %d <= %d",
				i, HistBucketUpper(i), HistBucketUpper(i-1))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// Uniform 1..1000: p50 ≈ 500, p99 ≈ 990, within the ≤25% relative
	// error of the quarter-octave buckets.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum = %d, want %d", s.Sum, 1000*1001/2)
	}
	check := func(q float64, want int64) {
		got := s.Quantile(q)
		if got < want || float64(got) > 1.30*float64(want) {
			t.Errorf("q%.2f = %d, want within [%d, 1.3*%d]", q, got, want, want)
		}
	}
	check(0.50, 500)
	check(0.90, 900)
	check(0.99, 990)
	if max := s.Max(); max < 1000 || max > 1280 {
		t.Errorf("max = %d, want ≥1000 within bucket error", max)
	}
	if s.Quantile(1.0) < s.Quantile(0.5) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramMergeAndCumulative(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10)
		b.Observe(100000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 200 {
		t.Fatalf("merged count = %d, want 200", s.Count)
	}
	if got := s.CumulativeLE(1000); got != 100 {
		t.Errorf("cumulative ≤1000 = %d, want 100 (only the fast half)", got)
	}
	if got := s.CumulativeLE(1 << 40); got != 200 {
		t.Errorf("cumulative ≤2^40 = %d, want 200", got)
	}
	if got := s.Quantile(0.25); got > 1000 {
		t.Errorf("merged p25 = %d, want in the fast mode", got)
	}
	if got := s.Quantile(0.75); got < 100000 {
		t.Errorf("merged p75 = %d, want in the slow mode", got)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var h *Histogram
	h.Observe(42) // must not panic
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Max() != 0 {
		t.Errorf("nil histogram snapshot not empty: %+v", s)
	}
	var empty Histogram
	if got := empty.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

// TestHistogramObserveAllocationFree is the AllocsPerRun lock-in the
// ISSUE asks for: both the live and the nil (recorder-off) Observe
// paths must allocate nothing — histograms sit on the per-request hot
// path of the serving layer.
func TestHistogramObserveAllocationFree(t *testing.T) {
	var h Histogram
	var off *Histogram
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
		off.Observe(12345)
	}); allocs != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", allocs)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race via make test. Counts must be exact (atomics, not
// racy read-modify-write).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(rng.Int63n(int64(time.Second)))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}
