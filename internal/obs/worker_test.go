package obs

import (
	"sync"
	"testing"
)

func spanByName(t *testing.T, spans []SpanRecord, name string) SpanRecord {
	t.Helper()
	for _, s := range spans {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no span named %q in %v", name, spans)
	return SpanRecord{}
}

func TestForkWorkerParentingAndTags(t *testing.T) {
	tr := NewTrace()
	root := tr.SpanStart("root")
	w := ForkWorker(tr, "w1", root)

	outer := w.SpanStart("outer")
	inner := w.SpanStart("inner")
	w.SpanEnd(inner)
	w.SpanEnd(outer)
	second := w.SpanStart("second")
	w.SpanEnd(second)
	tr.SpanEnd(root)

	spans := tr.Spans()
	o := spanByName(t, spans, "outer")
	if o.Parent != root {
		t.Errorf("outer parented under %d, want root %d", o.Parent, root)
	}
	if o.Tags["worker"] != "w1" {
		t.Errorf("outer worker tag = %q, want w1", o.Tags["worker"])
	}
	i := spanByName(t, spans, "inner")
	if i.Parent != o.ID {
		t.Errorf("inner parented under %d, want outer %d", i.Parent, o.ID)
	}
	if i.Tags["worker"] != "" {
		t.Errorf("nested span carries worker tag %q, want none", i.Tags["worker"])
	}
	s := spanByName(t, spans, "second")
	if s.Parent != root {
		t.Errorf("second parented under %d, want root %d after stack drained", s.Parent, root)
	}
	for _, name := range []string{"outer", "inner", "second"} {
		if sp := spanByName(t, spans, name); sp.DurationNS < 0 {
			t.Errorf("span %q left open (duration %d)", name, sp.DurationNS)
		}
	}
}

// TestForkWorkerConcurrentIsolation is the failure mode ForkWorker
// exists to prevent: with plain SpanStart, concurrent goroutines would
// nest under each other's open spans via the global bracketing stack.
func TestForkWorkerConcurrentIsolation(t *testing.T) {
	tr := NewTrace()
	root := tr.SpanStart("root")
	names := []string{"wa", "wb", "wc"}
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			w := ForkWorker(tr, name, root)
			for i := 0; i < 50; i++ {
				top := w.SpanStart("task")
				sub := w.SpanStart("subtask")
				w.SpanEnd(sub)
				w.SpanEnd(top)
			}
		}(name)
	}
	wg.Wait()
	tr.SpanEnd(root)

	byID := map[SpanID]SpanRecord{}
	for _, s := range tr.Spans() {
		byID[s.ID] = s
	}
	for _, s := range tr.Spans() {
		switch s.Name {
		case "task":
			if s.Parent != root {
				t.Fatalf("task span parented under %d (%s), want root", s.Parent, byID[s.Parent].Name)
			}
			if s.Tags["worker"] == "" {
				t.Fatal("task span lost its worker tag")
			}
		case "subtask":
			p := byID[s.Parent]
			if p.Name != "task" {
				t.Fatalf("subtask parented under %q, want its worker's task", p.Name)
			}
			if p.Tags["worker"] == "" {
				t.Fatal("subtask's parent has no worker tag")
			}
		}
	}
}

func TestForkWorkerNil(t *testing.T) {
	if w := ForkWorker(nil, "w", 0); w != nil {
		t.Fatalf("ForkWorker(nil) = %v, want nil", w)
	}
}

func TestSpanStartAtDoesNotJoinGlobalStack(t *testing.T) {
	tr := NewTrace()
	root := tr.SpanStart("root")
	side := tr.SpanStartAt("side", root)
	// A span opened by bracketing after SpanStartAt must still parent
	// under root, not under side.
	child := tr.SpanStart("child")
	tr.SpanEnd(child)
	tr.SpanEnd(side)
	tr.SpanEnd(root)

	spans := tr.Spans()
	if c := spanByName(t, spans, "child"); c.Parent != root {
		t.Errorf("child parented under %d, want root %d", c.Parent, root)
	}
	if s := spanByName(t, spans, "side"); s.Parent != root {
		t.Errorf("side parented under %d, want root %d", s.Parent, root)
	}
	if s := spanByName(t, spans, "side"); s.DurationNS < 0 {
		t.Errorf("SpanEnd failed to close a SpanStartAt span (duration %d)", s.DurationNS)
	}
}
