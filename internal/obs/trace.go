package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanRecord is one completed (or still open) span as stored by Trace
// and serialized by the JSON dump.
type SpanRecord struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartNS is the span's start offset from the trace origin in
	// nanoseconds; DurationNS is -1 while the span is open.
	StartNS    int64             `json:"start_ns"`
	DurationNS int64             `json:"duration_ns"`
	Tags       map[string]string `json:"tags,omitempty"`
	Ints       map[string]int64  `json:"ints,omitempty"`
}

// Trace is the in-memory Recorder: it stores every span with its
// nesting, plus counters and gauges. All methods are safe for
// concurrent use. Nesting is derived from start/end bracketing — a span
// started while another is open becomes its child — which matches the
// sequential structure of the decision procedures; under concurrent use
// spans are still recorded and timed correctly, but the parent edges
// follow global bracketing order.
type Trace struct {
	mu       sync.Mutex
	origin   time.Time
	traceID  string
	spans    []SpanRecord
	open     []SpanID
	counters map[string]int64
	gauges   map[string]int64
}

// NewTrace returns an empty Trace whose time origin is now.
func NewTrace() *Trace {
	return &Trace{
		origin:   time.Now(),
		counters: map[string]int64{},
		gauges:   map[string]int64{},
	}
}

// SetTraceID stamps the trace with a request/trace identifier (see
// NewTraceID); it is carried in the JSON dump so an exported trace is
// self-contained and joinable with service logs and the flight
// recorder.
func (t *Trace) SetTraceID(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traceID = id
}

// TraceID returns the identifier set by SetTraceID, or "".
func (t *Trace) TraceID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// Origin returns the trace's wall-clock time origin; every span's
// StartNS is an offset from it.
func (t *Trace) Origin() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.origin
}

// SpanStart implements Recorder.
func (t *Trace) SpanStart(name string) SpanID {
	now := time.Since(t.origin)
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	var parent SpanID
	if len(t.open) > 0 {
		parent = t.open[len(t.open)-1]
	}
	t.spans = append(t.spans, SpanRecord{
		ID:         id,
		Parent:     parent,
		Name:       name,
		StartNS:    now.Nanoseconds(),
		DurationNS: -1,
	})
	t.open = append(t.open, id)
	return id
}

// SpanStartAt implements ParentedRecorder: it opens a span under an
// explicit parent instead of the innermost open span. The span is not
// pushed on the bracketing stack — explicitly parented spans belong to
// a concurrent goroutine's subtree (see ForkWorker) and must not
// become implicit parents of unrelated spans started on other
// goroutines.
func (t *Trace) SpanStartAt(name string, parent SpanID) SpanID {
	now := time.Since(t.origin)
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, SpanRecord{
		ID:         id,
		Parent:     parent,
		Name:       name,
		StartNS:    now.Nanoseconds(),
		DurationNS: -1,
	})
	return id
}

// SpanEnd implements Recorder. Ending a span also closes out-of-order
// descendants still marked open, so a forgotten End deeper in the call
// chain cannot corrupt the nesting of later spans.
func (t *Trace) SpanEnd(id SpanID) {
	now := time.Since(t.origin)
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.record(id)
	if r == nil || r.DurationNS >= 0 {
		return
	}
	r.DurationNS = now.Nanoseconds() - r.StartNS
	for i := len(t.open) - 1; i >= 0; i-- {
		if t.open[i] != id {
			continue
		}
		// Everything above id on the stack is a descendant whose owner
		// never called End; close it at the same instant.
		for _, desc := range t.open[i+1:] {
			if dr := t.record(desc); dr != nil && dr.DurationNS < 0 {
				dr.DurationNS = now.Nanoseconds() - dr.StartNS
			}
		}
		t.open = t.open[:i]
		break
	}
}

// SpanTag implements Recorder.
func (t *Trace) SpanTag(id SpanID, key, value string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.record(id); r != nil {
		if r.Tags == nil {
			r.Tags = map[string]string{}
		}
		r.Tags[key] = value
	}
}

// SpanInt implements Recorder.
func (t *Trace) SpanInt(id SpanID, key string, value int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.record(id); r != nil {
		if r.Ints == nil {
			r.Ints = map[string]int64{}
		}
		r.Ints[key] = value
	}
}

// Count implements Recorder.
func (t *Trace) Count(name string, delta int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counters[name] += delta
}

// Gauge implements Recorder.
func (t *Trace) Gauge(name string, value int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gauges[name] = value
}

// record returns the span with the given id, or nil.
func (t *Trace) record(id SpanID) *SpanRecord {
	if id < 1 || int(id) > len(t.spans) {
		return nil
	}
	return &t.spans[id-1]
}

// Spans returns a copy of the recorded spans in start order.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		out[i].Tags = copyMap(t.spans[i].Tags)
		out[i].Ints = copyMap(t.spans[i].Ints)
	}
	return out
}

// Counters returns a copy of the counters.
func (t *Trace) Counters() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyMap(t.counters)
}

// Gauges returns a copy of the gauges.
func (t *Trace) Gauges() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyMap(t.gauges)
}

// Find returns the first recorded span with the given name, for tests
// and report generators.
func (t *Trace) Find(name string) (SpanRecord, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.spans {
		if r.Name == name {
			out := r
			out.Tags = copyMap(r.Tags)
			out.Ints = copyMap(r.Ints)
			return out, true
		}
	}
	return SpanRecord{}, false
}

// Reset discards all recorded data and restarts the time origin, so one
// Trace can be reused across benchmark cases.
func (t *Trace) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.origin = time.Now()
	t.traceID = ""
	t.spans = nil
	t.open = nil
	t.counters = map[string]int64{}
	t.gauges = map[string]int64{}
}

func copyMap[K comparable, V any](m map[K]V) map[K]V {
	if m == nil {
		return nil
	}
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sortedKeys returns the keys of m sorted lexicographically.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
