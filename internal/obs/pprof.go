package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile starts a CPU profile written to path and returns a
// stop function. An empty path is a no-op (the returned stop still must
// be called; it does nothing). This is the shared implementation behind
// every command's -cpuprofile flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after forcing a GC so
// the profile reflects live objects. An empty path is a no-op. This is
// the shared implementation behind every command's -memprofile flag.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
