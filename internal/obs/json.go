package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Dump is the machine-readable form of a Trace: every span plus the
// final counter and gauge values. It is what -trace-json emits, what
// the service's /debug/checks/{traceID} endpoint replays, and what
// ReadJSON parses back. TraceID and OriginUnixNS make a dump
// self-contained: span StartNS offsets anchor to the wall-clock origin,
// and the trace ID joins the dump with request logs and the flight
// recorder.
type Dump struct {
	TraceID      string           `json:"trace_id,omitempty"`
	OriginUnixNS int64            `json:"origin_unix_ns,omitempty"`
	Spans        []SpanRecord     `json:"spans"`
	Counters     map[string]int64 `json:"counters,omitempty"`
	Gauges       map[string]int64 `json:"gauges,omitempty"`
}

// Dump snapshots the trace.
func (t *Trace) Dump() Dump {
	return Dump{
		TraceID:      t.TraceID(),
		OriginUnixNS: t.Origin().UnixNano(),
		Spans:        t.Spans(),
		Counters:     t.Counters(),
		Gauges:       t.Gauges(),
	}
}

// WriteJSON writes the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Dump())
}

// ReadJSON parses a dump previously written by WriteJSON and validates
// its span graph: ids must be dense starting at 1 and parents must
// reference earlier spans.
func ReadJSON(r io.Reader) (Dump, error) {
	var d Dump
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return Dump{}, fmt.Errorf("obs: parsing trace JSON: %w", err)
	}
	for i, s := range d.Spans {
		if s.ID != SpanID(i+1) {
			return Dump{}, fmt.Errorf("obs: span %d has id %d, want %d", i, s.ID, i+1)
		}
		if s.Parent < 0 || s.Parent >= s.ID {
			return Dump{}, fmt.Errorf("obs: span %d has invalid parent %d", s.ID, s.Parent)
		}
	}
	return d, nil
}
