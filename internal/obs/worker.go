package obs

// ParentedRecorder is the optional capability a Recorder can implement
// to support correct span nesting under concurrency: opening a span
// under an explicit parent instead of the recorder's implicit
// innermost-open-span rule. Trace implements it.
type ParentedRecorder interface {
	Recorder
	// SpanStartAt opens a span as a child of parent (0 = root).
	SpanStartAt(name string, parent SpanID) SpanID
}

// ForkWorker returns a Recorder view of under for one worker goroutine.
// The returned recorder keeps its own open-span stack, so spans started
// by this goroutine nest under each other (not under whatever another
// goroutine happens to have open), and its top-level spans are parented
// under parent and tagged "worker" = worker. Counters and gauges pass
// through unchanged.
//
// When under does not implement ParentedRecorder, top-level parenting
// falls back to under's own rule; nesting within the worker is still
// tracked locally so tags land on the right spans.
//
// The returned Recorder must be used by a single goroutine (the local
// stack is unsynchronized); under carries its own synchronization.
// ForkWorker of a nil recorder is nil, preserving the allocation-free
// off path.
func ForkWorker(under Recorder, worker string, parent SpanID) Recorder {
	if under == nil {
		return nil
	}
	return &workerRecorder{under: under, worker: worker, parent: parent}
}

type workerRecorder struct {
	under  Recorder
	worker string
	parent SpanID
	open   []SpanID
}

func (w *workerRecorder) SpanStart(name string) SpanID {
	parent := w.parent
	top := len(w.open) == 0
	if !top {
		parent = w.open[len(w.open)-1]
	}
	var id SpanID
	if pr, ok := w.under.(ParentedRecorder); ok {
		id = pr.SpanStartAt(name, parent)
	} else {
		id = w.under.SpanStart(name)
	}
	if top && w.worker != "" {
		w.under.SpanTag(id, "worker", w.worker)
	}
	w.open = append(w.open, id)
	return id
}

func (w *workerRecorder) SpanEnd(id SpanID) {
	for i := len(w.open) - 1; i >= 0; i-- {
		if w.open[i] == id {
			w.open = w.open[:i]
			break
		}
	}
	w.under.SpanEnd(id)
}

// SpanStartAt makes workerRecorder a ParentedRecorder itself, so a
// nested ForkWorker (a portfolio pool inside a parallel CheckAll, or a
// request worker forking sub-workers) keeps **explicit** parenting all
// the way down to the underlying trace. Before this, a nested fork saw
// a plain Recorder and fell back to w.under.SpanStart — which parents
// under the outer worker's local bracketing stack, i.e. under whatever
// span a *sibling* worker happened to have open, and, once the parent
// span had ended, could drift onto another request's subtree entirely.
// Explicitly parented spans bypass the local stack by design.
func (w *workerRecorder) SpanStartAt(name string, parent SpanID) SpanID {
	if pr, ok := w.under.(ParentedRecorder); ok {
		return pr.SpanStartAt(name, parent)
	}
	return w.under.SpanStart(name)
}

func (w *workerRecorder) SpanTag(id SpanID, key, value string) { w.under.SpanTag(id, key, value) }
func (w *workerRecorder) SpanInt(id SpanID, key string, value int64) {
	w.under.SpanInt(id, key, value)
}
func (w *workerRecorder) Count(name string, delta int64) { w.under.Count(name, delta) }
func (w *workerRecorder) Gauge(name string, value int64) { w.under.Gauge(name, value) }
