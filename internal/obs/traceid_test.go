package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("NewTraceID produced invalid id %q", id)
		}
		if seen[id] {
			t.Fatalf("NewTraceID repeated %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	valid := "4bf92f3577b34da6a3ce929d0e0e4736"
	for _, tc := range []struct {
		id string
		ok bool
	}{
		{valid, true},
		{strings.ToUpper(valid), false},              // w3c mandates lowercase
		{strings.Repeat("0", 32), false},             // all-zero is invalid
		{valid[:31], false},                          // wrong length
		{valid[:31] + "g", false},                    // non-hex
		{"", false},
	} {
		if got := ValidTraceID(tc.id); got != tc.ok {
			t.Errorf("ValidTraceID(%q) = %v, want %v", tc.id, got, tc.ok)
		}
	}
}

func TestParseTraceparent(t *testing.T) {
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	for _, tc := range []struct {
		header string
		want   string
	}{
		{"00-" + tid + "-00f067aa0ba902b7-01", tid},
		{"00-" + tid + "-00f067aa0ba902b7-00", tid}, // unsampled still accepted
		{"cc-" + tid + "-00f067aa0ba902b7-01", tid}, // future version
		{"ff-" + tid + "-00f067aa0ba902b7-01", ""},  // version ff forbidden
		{"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01", ""},
		{"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", ""}, // zero span id
		{"00-" + tid + "-00f067aa0ba902b7", ""},                   // missing flags
		{"not a traceparent", ""},
		{"", ""},
	} {
		got, ok := ParseTraceparent(tc.header)
		if tc.want == "" {
			if ok {
				t.Errorf("ParseTraceparent(%q) accepted, want reject", tc.header)
			}
			continue
		}
		if !ok || got != tc.want {
			t.Errorf("ParseTraceparent(%q) = %q, %v; want %q, true", tc.header, got, ok, tc.want)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	header := Traceparent(id)
	got, ok := ParseTraceparent(header)
	if !ok || got != id {
		t.Fatalf("round trip failed: Traceparent(%q) = %q, parsed back to %q, %v", id, header, got, ok)
	}
	parts := strings.Split(header, "-")
	if len(parts) != 4 || parts[0] != "00" || parts[3] != "01" {
		t.Errorf("Traceparent(%q) = %q, want version 00 and sampled flag 01", id, header)
	}
}

func TestTraceIDContext(t *testing.T) {
	ctx := context.Background()
	if got := TraceIDFromContext(ctx); got != "" {
		t.Fatalf("empty context carries trace id %q", got)
	}
	id := NewTraceID()
	ctx = ContextWithTraceID(ctx, id)
	if got := TraceIDFromContext(ctx); got != id {
		t.Fatalf("trace id through context = %q, want %q", got, id)
	}
}

func TestDumpCarriesTraceID(t *testing.T) {
	tr := NewTrace()
	id := NewTraceID()
	tr.SetTraceID(id)
	sp := tr.SpanStart("serve.all")
	tr.SpanEnd(sp)
	d := tr.Dump()
	if d.TraceID != id {
		t.Errorf("dump trace id = %q, want %q", d.TraceID, id)
	}
	if d.OriginUnixNS == 0 {
		t.Error("dump origin is zero, want wall-clock anchor")
	}
	tr.Reset()
	if got := tr.TraceID(); got != "" {
		t.Errorf("Reset kept trace id %q", got)
	}
}
