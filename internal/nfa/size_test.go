package nfa

import (
	"testing"

	"relive/internal/alphabet"
)

func TestNumTransitionsAndAccepting(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	a := New(ab)
	s0 := a.AddState(true)
	s1 := a.AddState(false)
	if a.NumTransitions() != 0 {
		t.Errorf("fresh NFA has %d transitions, want 0", a.NumTransitions())
	}
	sa, _ := ab.Lookup("a")
	sb, _ := ab.Lookup("b")
	a.AddTransition(s0, sa, s1)
	a.AddTransition(s1, sb, s0)
	a.AddTransition(s0, alphabet.Epsilon, s1) // ε counts too
	if got := a.NumTransitions(); got != 3 {
		t.Errorf("NumTransitions = %d, want 3", got)
	}
	a.AddTransition(s0, sa, s1) // duplicate is ignored
	if got := a.NumTransitions(); got != 3 {
		t.Errorf("NumTransitions after duplicate = %d, want 3", got)
	}
	if got := a.NumAccepting(); got != 1 {
		t.Errorf("NumAccepting = %d, want 1", got)
	}
	a.SetAccepting(s1, true)
	if got := a.NumAccepting(); got != 2 {
		t.Errorf("NumAccepting after SetAccepting = %d, want 2", got)
	}
}
