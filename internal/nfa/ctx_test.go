package nfa

import (
	"context"
	"errors"
	"testing"

	"relive/internal/alphabet"
)

// ctxCycleNFA accepts a* prefixes landing on state 0 of an n-cycle; the
// inclusion check against the universal automaton walks all n
// (state, subset) pairs — past the 1<<10-iteration context poll.
func ctxCycleNFA(ab *alphabet.Alphabet, n int) *NFA {
	a := New(ab)
	for i := 0; i < n; i++ {
		a.AddState(i == 0)
	}
	sym := ab.Symbol("a")
	for i := 0; i < n; i++ {
		a.AddTransition(State(i), sym, State((i+1)%n))
	}
	a.SetInitial(0)
	return a
}

func universalNFA(ab *alphabet.Alphabet) *NFA {
	u := New(ab)
	s := u.AddState(true)
	for _, sym := range ab.Symbols() {
		u.AddTransition(s, sym, s)
	}
	u.SetInitial(s)
	return u
}

func TestIncludedCtxCancelled(t *testing.T) {
	ab := alphabet.FromNames("a")
	a, b := ctxCycleNFA(ab, 3000), universalNFA(ab)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := IncludedCtx(ctx, a, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestIncludedCtxNilAndLiveMatchIncluded(t *testing.T) {
	ab := alphabet.FromNames("a")
	a, b := ctxCycleNFA(ab, 3000), universalNFA(ab)
	for _, ctx := range []context.Context{nil, context.Background()} {
		ok, w, err := IncludedCtx(ctx, a, b)
		if err != nil {
			t.Fatalf("ctx=%v: %v", ctx, err)
		}
		if !ok || w != nil {
			t.Fatalf("ctx=%v: inclusion in Σ* = (%v, %v), want (true, nil)", ctx, ok, w)
		}
	}
	// The reverse direction is a genuine verdict, not a context error:
	// Σ* ⊄ (a^3000-cycle prefixes), witnessed by a concrete word.
	ok, w, err := IncludedCtx(context.Background(), b, a)
	if err != nil {
		t.Fatal(err)
	}
	if ok || !b.Accepts(w) || a.Accepts(w) {
		t.Fatalf("counterexample word %v does not separate the languages (ok=%v)", w, ok)
	}
}
