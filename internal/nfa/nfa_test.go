package nfa

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/word"
)

// evenAs returns an NFA over {a,b} accepting words with an even number
// of a's (actually a DFA in NFA clothing).
func evenAs(ab *alphabet.Alphabet) *NFA {
	a := New(ab)
	even := a.AddState(true)
	odd := a.AddState(false)
	sa, sb := ab.Symbol("a"), ab.Symbol("b")
	a.AddTransition(even, sa, odd)
	a.AddTransition(odd, sa, even)
	a.AddTransition(even, sb, even)
	a.AddTransition(odd, sb, odd)
	a.SetInitial(even)
	return a
}

// endsWithAB returns an NFA accepting words ending in "ab".
func endsWithAB(ab *alphabet.Alphabet) *NFA {
	a := New(ab)
	q0 := a.AddState(false)
	q1 := a.AddState(false)
	q2 := a.AddState(true)
	sa, sb := ab.Symbol("a"), ab.Symbol("b")
	a.AddTransition(q0, sa, q0)
	a.AddTransition(q0, sb, q0)
	a.AddTransition(q0, sa, q1)
	a.AddTransition(q1, sb, q2)
	a.SetInitial(q0)
	return a
}

func enumerate(ab *alphabet.Alphabet, maxLen int) []word.Word {
	syms := ab.Symbols()
	out := []word.Word{{}}
	frontier := []word.Word{{}}
	for l := 1; l <= maxLen; l++ {
		var next []word.Word
		for _, w := range frontier {
			for _, sym := range syms {
				nw := append(w.Clone(), sym)
				next = append(next, nw)
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func TestAcceptsEvenAs(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	a := evenAs(ab)
	for _, w := range enumerate(ab, 6) {
		count := 0
		for _, s := range w {
			if ab.Name(s) == "a" {
				count++
			}
		}
		if got, want := a.Accepts(w), count%2 == 0; got != want {
			t.Errorf("Accepts(%s) = %v, want %v", w.String(ab), got, want)
		}
	}
}

func TestEpsilonClosureAndRemoval(t *testing.T) {
	ab := alphabet.FromNames("a")
	a := New(ab)
	q0 := a.AddState(false)
	q1 := a.AddState(false)
	q2 := a.AddState(true)
	sa := ab.Symbol("a")
	a.AddTransition(q0, alphabet.Epsilon, q1)
	a.AddTransition(q1, sa, q2)
	a.AddTransition(q2, alphabet.Epsilon, q0)
	a.SetInitial(q0)

	if !a.HasEpsilon() {
		t.Fatal("HasEpsilon = false")
	}
	cl := a.EpsilonClosure([]State{q0})
	if len(cl) != 2 {
		t.Errorf("closure of q0 = %v, want {q0,q1}", cl)
	}
	// Language: a (a)* i.e. a+
	e := a.RemoveEpsilon()
	if e.HasEpsilon() {
		t.Error("RemoveEpsilon left ε-transitions")
	}
	for _, w := range enumerate(ab, 5) {
		want := len(w) >= 1
		if got := e.Accepts(w); got != want {
			t.Errorf("ε-free Accepts(%s) = %v, want %v", w.String(ab), got, want)
		}
		if got := a.Accepts(w); got != want {
			t.Errorf("original Accepts(%s) = %v, want %v", w.String(ab), got, want)
		}
	}
}

func TestDeterminizeAgrees(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	a := endsWithAB(ab)
	d := a.Determinize()
	for _, w := range enumerate(ab, 7) {
		if a.Accepts(w) != d.Accepts(w) {
			t.Errorf("NFA and DFA disagree on %s", w.String(ab))
		}
	}
}

func TestMinimizeEndsWithAB(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	m := endsWithAB(ab).Determinize().Minimize()
	if m.NumStates() != 3 {
		t.Errorf("minimal DFA for Σ*ab has %d states, want 3", m.NumStates())
	}
	for _, w := range enumerate(ab, 7) {
		want := endsWithAB(ab).Accepts(w)
		if got := m.Accepts(w); got != want {
			t.Errorf("minimized Accepts(%s) = %v, want %v", w.String(ab), got, want)
		}
	}
}

func TestComplement(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	a := evenAs(ab)
	c := a.Determinize().Complement()
	for _, w := range enumerate(ab, 6) {
		if a.Accepts(w) == c.Accepts(w) {
			t.Errorf("complement agrees with original on %s", w.String(ab))
		}
	}
}

func TestTrimAndIsEmpty(t *testing.T) {
	ab := alphabet.FromNames("a")
	a := New(ab)
	q0 := a.AddState(false)
	q1 := a.AddState(false) // dead: accepting unreachable from here
	q2 := a.AddState(true)  // unreachable
	_ = q2
	sa := ab.Symbol("a")
	a.AddTransition(q0, sa, q1)
	a.SetInitial(q0)
	if !a.IsEmpty() {
		t.Error("IsEmpty = false for automaton with unreachable accepting state")
	}
	trimmed := a.Trim()
	if trimmed.NumStates() != 0 {
		t.Errorf("Trim left %d states, want 0", trimmed.NumStates())
	}
	if _, ok := a.ShortestAccepted(); ok {
		t.Error("ShortestAccepted on empty language succeeded")
	}
}

func TestShortestAccepted(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	a := endsWithAB(ab)
	w, ok := a.ShortestAccepted()
	if !ok || w.String(ab) != "a·b" {
		t.Errorf("ShortestAccepted = %v, %v; want a·b", w.String(ab), ok)
	}
}

func TestResidual(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	a := endsWithAB(ab)
	// cont(a, L) should contain "b" and "ab".
	r := a.Residual(word.FromNames(ab, "a"))
	if !r.Accepts(word.FromNames(ab, "b")) {
		t.Error("cont(a, Σ*ab) should contain b")
	}
	if !r.Accepts(word.FromNames(ab, "a", "b")) {
		t.Error("cont(a, Σ*ab) should contain ab")
	}
	if r.Accepts(word.FromNames(ab, "a")) {
		t.Error("cont(a, Σ*ab) should not contain a")
	}
}

func TestPrefixLanguage(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	// L = {ab}: pre(L) = {ε, a, ab}.
	a := New(ab)
	q0 := a.AddState(false)
	q1 := a.AddState(false)
	q2 := a.AddState(true)
	a.AddTransition(q0, ab.Symbol("a"), q1)
	a.AddTransition(q1, ab.Symbol("b"), q2)
	a.SetInitial(q0)
	p := a.PrefixLanguage()
	wants := map[string]bool{"": true, "a": true, "ab": true, "b": false, "aa": false, "abb": false}
	for s, want := range wants {
		w := word.Word{}
		for _, r := range s {
			w = append(w, ab.Symbol(string(r)))
		}
		if got := p.Accepts(w); got != want {
			t.Errorf("pre(L) accepts %q = %v, want %v", s, got, want)
		}
	}
	if ok, _ := p.IsPrefixClosed(); !ok {
		t.Error("pre(L) not prefix-closed")
	}
	if ok, _ := a.IsPrefixClosed(); ok {
		t.Error("{ab} reported prefix-closed")
	}
}

func TestIntersectUnion(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	a := evenAs(ab)
	b := endsWithAB(ab)
	inter := Intersect(a, b)
	uni := Union(a, b)
	for _, w := range enumerate(ab, 7) {
		wa, wb := a.Accepts(w), b.Accepts(w)
		if got := inter.Accepts(w); got != (wa && wb) {
			t.Errorf("Intersect on %s = %v, want %v", w.String(ab), got, wa && wb)
		}
		if got := uni.Accepts(w); got != (wa || wb) {
			t.Errorf("Union on %s = %v, want %v", w.String(ab), got, wa || wb)
		}
	}
}

func TestIncludedWitness(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	a := evenAs(ab)
	b := endsWithAB(ab)
	ok, w := Included(a, b)
	if ok {
		t.Fatal("evenAs ⊆ endsWithAB reported true")
	}
	if !a.Accepts(w) || b.Accepts(w) {
		t.Errorf("witness %s not in L(a)\\L(b)", w.String(ab))
	}
	// Inclusion that holds: L ⊆ pre(L)∪L trivially, use L ⊆ L.
	if ok, _ := Included(a, a); !ok {
		t.Error("L ⊆ L failed")
	}
	// {ab} ⊆ Σ*ab
	sing := New(ab)
	q0 := sing.AddState(false)
	q1 := sing.AddState(false)
	q2 := sing.AddState(true)
	sing.AddTransition(q0, ab.Symbol("a"), q1)
	sing.AddTransition(q1, ab.Symbol("b"), q2)
	sing.SetInitial(q0)
	if ok, w := Included(sing, b); !ok {
		t.Errorf("{ab} ⊆ Σ*ab failed with witness %v", w.String(ab))
	}
}

func TestLanguageEqual(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	a := endsWithAB(ab)
	d := a.Determinize().Minimize().ToNFA()
	if ok, w := LanguageEqual(a, d); !ok {
		t.Errorf("language changed by determinize+minimize, witness %s", w.String(ab))
	}
	if ok, _ := LanguageEqual(a, evenAs(ab)); ok {
		t.Error("distinct languages reported equal")
	}
}

func TestEquivalentDFA(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	d1 := endsWithAB(ab).Determinize()
	d2 := d1.Minimize()
	if !EquivalentDFA(d1, d2) {
		t.Error("DFA not equivalent to its minimization")
	}
	d3 := evenAs(ab).Determinize()
	if EquivalentDFA(d1, d3) {
		t.Error("distinct DFAs reported equivalent")
	}
}

func TestHasMaximalWords(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	// {ab} has maximal word ab.
	sing := New(ab)
	q0 := sing.AddState(false)
	q1 := sing.AddState(false)
	q2 := sing.AddState(true)
	sing.AddTransition(q0, ab.Symbol("a"), q1)
	sing.AddTransition(q1, ab.Symbol("b"), q2)
	sing.SetInitial(q0)
	has, w := sing.HasMaximalWords()
	if !has || w.String(ab) != "a·b" {
		t.Errorf("HasMaximalWords({ab}) = %v, %v", has, w.String(ab))
	}
	// Σ* has no maximal words.
	if has, _ := evenAs(ab).MarkAllAccepting().HasMaximalWords(); has {
		t.Error("even-a language with all states accepting has maximal words?")
	}
}

// TestQuickDeterminizeMinimize cross-checks the whole DFA pipeline against
// the NFA on random automata and sampled words.
func TestQuickDeterminizeMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ab := alphabet.FromNames("a", "b")
	syms := ab.Symbols()
	for trial := 0; trial < 60; trial++ {
		a := New(ab)
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			a.AddState(rng.Float64() < 0.4)
		}
		for i := 0; i < n; i++ {
			for _, sym := range syms {
				for k := 0; k < 2; k++ {
					if rng.Float64() < 0.5 {
						a.AddTransition(State(i), sym, State(rng.Intn(n)))
					}
				}
			}
			if rng.Float64() < 0.2 {
				a.AddTransition(State(i), alphabet.Epsilon, State(rng.Intn(n)))
			}
		}
		a.SetInitial(0)

		d := a.Determinize()
		m := d.Minimize()
		for k := 0; k < 50; k++ {
			w := make(word.Word, rng.Intn(8))
			for j := range w {
				w[j] = syms[rng.Intn(len(syms))]
			}
			ra := a.Accepts(w)
			if d.Accepts(w) != ra {
				t.Fatalf("trial %d: determinize disagrees on %s", trial, w.String(ab))
			}
			if m.Accepts(w) != ra {
				t.Fatalf("trial %d: minimize disagrees on %s", trial, w.String(ab))
			}
		}
		if !EquivalentDFA(d, m) {
			t.Fatalf("trial %d: EquivalentDFA(d, minimize(d)) = false", trial)
		}
	}
}

// TestQuickComplementPartition checks L and its complement partition Σ*.
func TestQuickComplementPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ab := alphabet.FromNames("a", "b", "c")
	syms := ab.Symbols()
	for trial := 0; trial < 40; trial++ {
		a := New(ab)
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			a.AddState(rng.Float64() < 0.5)
		}
		for i := 0; i < n; i++ {
			for _, sym := range syms {
				if rng.Float64() < 0.6 {
					a.AddTransition(State(i), sym, State(rng.Intn(n)))
				}
			}
		}
		a.SetInitial(0)
		c := a.Determinize().Complement()
		for k := 0; k < 40; k++ {
			w := make(word.Word, rng.Intn(7))
			for j := range w {
				w[j] = syms[rng.Intn(len(syms))]
			}
			if a.Accepts(w) == c.Accepts(w) {
				t.Fatalf("trial %d: complement not disjoint/covering on %s", trial, w.String(ab))
			}
		}
	}
}
