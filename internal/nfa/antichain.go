package nfa

import (
	"context"

	"relive/internal/alphabet"
	"relive/internal/interrupt"
	"relive/internal/kernel"
	"relive/internal/word"
)

// This file implements the antichain inclusion and universality kernels
// (De Wulf–Doyen–Henzinger–Raskin style). Like IncludedCtx they run the
// subset construction of the right-hand side on the fly, but the
// frontier keeps only an antichain of ⊆-minimal b-sets per a-state: a
// candidate pair (x, T) is skipped when some kept pair (x, S) has
// S ⊆ cl(T), because then L_b(S) ⊆ L_b(T) and every counterexample
// through T is also one through S — which was discovered no later, so
// shortest counterexamples are preserved exactly. cl is the upward
// closure under the direct simulation preorder of simulation.go (the
// identity when the preorder is skipped for size), which widens plain
// ⊆-subsumption; the preorder additionally prunes any pair whose
// a-state is simulated by a member of its b-set outright, since such a
// pair can never witness a failure. Verdicts and counterexample lengths
// are bit-compatible with the subset route.

// autoAntichainMin is the right-hand-side state count from which
// kernel.Auto picks the antichain route for inclusion/universality.
// Below it, the antichain bookkeeping cannot win anything and Auto
// keeps the classic subset kernel (and its exact exploration order).
const autoAntichainMin = 16

// ResolveKernel resolves an Auto kernel choice for an inclusion or
// universality check against right-hand side b: antichain from
// autoAntichainMin states, subset below. Explicit choices pass through.
func ResolveKernel(k kernel.Kind, b *NFA) kernel.Kind {
	switch k {
	case kernel.Subset, kernel.Antichain:
		return k
	}
	// RemoveEpsilon preserves the state count, so the pre-ε-removal
	// count is the post-removal one.
	if b.NumStates() >= autoAntichainMin {
		return kernel.Antichain
	}
	return kernel.Subset
}

// IncludedKernelCtx is IncludedCtx dispatched over the kernel choice:
// the antichain kernel when k resolves to it, the classic subset
// construction otherwise.
func IncludedKernelCtx(ctx context.Context, k kernel.Kind, a, b *NFA) (bool, word.Word, error) {
	if ResolveKernel(k, b) == kernel.Antichain {
		return IncludedAntichainCtx(ctx, a, b)
	}
	return IncludedCtx(ctx, a, b)
}

// IncludedAntichain is IncludedAntichainCtx without cancellation.
func IncludedAntichain(a, b *NFA) (bool, word.Word) {
	ok, w, _ := IncludedAntichainCtx(nil, a, b)
	return ok, w
}

// IncludedAntichainCtx reports whether L(a) ⊆ L(b) using the antichain
// kernel, returning a shortest word in L(a) \ L(b) when the inclusion
// fails. See the file comment for the algorithm; agreement with
// IncludedCtx (same verdict, same counterexample length) is pinned by
// the differential tests and the fuzz target.
func IncludedAntichainCtx(ctx context.Context, a, b *NFA) (bool, word.Word, error) {
	ae := a.epsFree()
	be := b.epsFree()
	nb := be.NumStates()
	if nb == 0 {
		// L(b) is empty; inclusion holds iff L(a) is too.
		if w, ok := ae.ShortestAccepted(); ok {
			return false, w, nil
		}
		return true, nil, nil
	}
	ca, cb := ae.Compiled(), be.Compiled()
	na := ae.NumStates()
	syms := ae.ab.Symbols()
	numSyms := len(syms)

	accB := newStateBits(nb)
	for i, acc := range be.accepting {
		if acc {
			accB.set(int32(i))
		}
	}

	simBelow, cross := inclusionPreorder(ae, be, kernel.SimulationCapFromContext(ctx))

	in := newSetInterner(nb)
	scratch := newStateBits(nb)
	var setAcc []bool        // per interned set: does it contain an accepting b-state?
	var closures []stateBits // per interned set T: its upward closure cl(T)
	var delta []int32        // memoized subset moves, delta[set*numSyms+sym-1]; -1 = not yet computed
	addSet := func(set stateBits) int32 {
		id, fresh := in.intern(set)
		if fresh {
			setAcc = append(setAcc, set.intersects(accB))
			cl := newStateBits(nb)
			if simBelow == nil {
				copy(cl, set)
			} else {
				set.forEach(func(q int32) { cl.or(simBelow[q]) })
			}
			closures = append(closures, cl)
			for i := 0; i < numSyms; i++ {
				delta = append(delta, -1)
			}
		}
		return id
	}
	stepSet := func(set int32, sym alphabet.Symbol) int32 {
		k := int(set)*numSyms + int(sym) - 1
		if delta[k] >= 0 {
			return delta[k]
		}
		scratch.clear()
		cb.step(in.at(set), scratch, sym)
		id := addSet(scratch)
		delta[k] = id
		return id
	}

	type entry struct {
		x      State
		set    int32
		parent int32
		sym    alphabet.Symbol
	}
	var queue []entry
	// kept[x] is the antichain of interned b-set ids paired with x.
	// Entries are retired when a later set dominates them (lossless for
	// future subsumption checks, by transitivity of the preorder), but
	// their queued pairs still expand: dominating sets are discovered no
	// earlier than what they retire, so cutting the retiree's subtree
	// could lengthen the counterexample.
	kept := make([][]int32, na)
	// push admits the pair (x, set) unless pruned, and reports the queue
	// index of a bad pair (a-accepting, no accepting b-state) or -1.
	// Detection happens here at push time rather than at pop: a pruned
	// bad pair would imply an earlier kept pair that was already bad at
	// its own push, so pruned pairs need no check.
	push := func(x State, set int32, parent int32, sym alphabet.Symbol) int32 {
		if cross != nil && cross[x].intersects(in.at(set)) {
			return -1
		}
		clT := closures[set]
		ks := kept[x]
		for _, sid := range ks {
			if in.at(sid).subsetOf(clT) {
				return -1
			}
		}
		// Retire kept sets the new pair dominates.
		w := 0
		t := in.at(set)
		for _, sid := range ks {
			if !t.subsetOf(closures[sid]) {
				ks[w] = sid
				w++
			}
		}
		kept[x] = append(ks[:w], set)
		queue = append(queue, entry{x: x, set: set, parent: parent, sym: sym})
		if ae.accepting[x] && !setAcc[set] {
			return int32(len(queue) - 1)
		}
		return -1
	}

	start := newStateBits(nb)
	for _, s := range be.initial {
		start.set(int32(s))
	}
	startID := addSet(start)

	bad := int32(-1)
	for _, x := range ae.initial {
		if bad = push(x, startID, -1, alphabet.Epsilon); bad >= 0 {
			break
		}
	}
	var tick interrupt.Tick
	for i := 0; bad < 0 && i < len(queue); i++ {
		if err := tick.Poll(ctx); err != nil {
			return false, nil, err
		}
		cur := queue[i]
		for _, sym := range syms {
			xs := ca.Row(cur.x, sym)
			if len(xs) == 0 {
				continue
			}
			set := stepSet(cur.set, sym)
			for _, x := range xs {
				if bad = push(State(x), set, int32(i), sym); bad >= 0 {
					break
				}
			}
			if bad >= 0 {
				break
			}
		}
	}
	if bad < 0 {
		return true, nil, nil
	}
	var w word.Word
	for j := bad; queue[j].parent != -1; j = queue[j].parent {
		w = append(w, queue[j].sym)
	}
	for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
		w[l], w[r] = w[r], w[l]
	}
	return false, w, nil
}

// Universal reports whether L(a) = Σ*, with a shortest rejected word as
// counterexample, dispatching over the process-default kernel choice.
func Universal(a *NFA) (bool, word.Word) {
	ok, w, _ := UniversalKernelCtx(nil, kernel.Default(), a)
	return ok, w
}

// UniversalKernelCtx is universality dispatched over the kernel choice,
// like IncludedKernelCtx.
func UniversalKernelCtx(ctx context.Context, k kernel.Kind, a *NFA) (bool, word.Word, error) {
	if ResolveKernel(k, a) == kernel.Antichain {
		return UniversalAntichainCtx(ctx, a)
	}
	return UniversalSubsetCtx(ctx, a)
}

// UniversalSubsetCtx reports whether L(a) = Σ* by the plain on-the-fly
// subset construction: BFS over interned reachable subsets, failing at
// the first subset without an accepting state (the empty subset — the
// determinization's rejecting sink — included). The path to it is a
// shortest rejected word. This is exactly Included(Σ*, a) with the
// trivial left component elided.
func UniversalSubsetCtx(ctx context.Context, a *NFA) (bool, word.Word, error) {
	ae := a.epsFree()
	nb := ae.NumStates()
	if nb == 0 {
		return false, nil, nil // ε is rejected: not universal
	}
	cb := ae.Compiled()
	syms := ae.ab.Symbols()

	accB := newStateBits(nb)
	for i, acc := range ae.accepting {
		if acc {
			accB.set(int32(i))
		}
	}

	in := newSetInterner(nb)
	scratch := newStateBits(nb)
	var setAcc []bool
	addSet := func(set stateBits) int32 {
		id, fresh := in.intern(set)
		if fresh {
			setAcc = append(setAcc, set.intersects(accB))
		}
		return id
	}

	type entry struct {
		set    int32
		parent int32
		sym    alphabet.Symbol
	}
	var queue []entry
	seen := map[int32]bool{}
	push := func(set int32, parent int32, sym alphabet.Symbol) {
		if !seen[set] {
			seen[set] = true
			queue = append(queue, entry{set: set, parent: parent, sym: sym})
		}
	}

	start := newStateBits(nb)
	for _, s := range ae.initial {
		start.set(int32(s))
	}
	push(addSet(start), -1, alphabet.Epsilon)

	var tick interrupt.Tick
	for i := 0; i < len(queue); i++ {
		if err := tick.Poll(ctx); err != nil {
			return false, nil, err
		}
		cur := queue[i]
		if !setAcc[cur.set] {
			var w word.Word
			for j := int32(i); queue[j].parent != -1; j = queue[j].parent {
				w = append(w, queue[j].sym)
			}
			for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
				w[l], w[r] = w[r], w[l]
			}
			return false, w, nil
		}
		for _, sym := range syms {
			scratch.clear()
			cb.step(in.at(cur.set), scratch, sym)
			push(addSet(scratch), int32(i), sym)
		}
	}
	return true, nil, nil
}

// UniversalAntichainCtx is UniversalSubsetCtx with the frontier pruned
// to an antichain of ⊆-minimal subsets under the simulation closure, as
// in IncludedAntichainCtx with the trivial Σ* left component elided.
// Verdicts and counterexample lengths match the subset route.
func UniversalAntichainCtx(ctx context.Context, a *NFA) (bool, word.Word, error) {
	ae := a.epsFree()
	nb := ae.NumStates()
	if nb == 0 {
		return false, nil, nil // ε is rejected: not universal
	}
	cb := ae.Compiled()
	syms := ae.ab.Symbols()

	accB := newStateBits(nb)
	for i, acc := range ae.accepting {
		if acc {
			accB.set(int32(i))
		}
	}

	simBelow := simBelowOf(ae, kernel.SimulationCapFromContext(ctx))

	in := newSetInterner(nb)
	scratch := newStateBits(nb)
	var setAcc []bool
	var closures []stateBits
	addSet := func(set stateBits) int32 {
		id, fresh := in.intern(set)
		if fresh {
			setAcc = append(setAcc, set.intersects(accB))
			cl := newStateBits(nb)
			if simBelow == nil {
				copy(cl, set)
			} else {
				set.forEach(func(q int32) { cl.or(simBelow[q]) })
			}
			closures = append(closures, cl)
		}
		return id
	}

	type entry struct {
		set    int32
		parent int32
		sym    alphabet.Symbol
	}
	var queue []entry
	var kept []int32
	push := func(set int32, parent int32, sym alphabet.Symbol) int32 {
		clT := closures[set]
		for _, sid := range kept {
			if in.at(sid).subsetOf(clT) {
				return -1
			}
		}
		w := 0
		t := in.at(set)
		for _, sid := range kept {
			if !t.subsetOf(closures[sid]) {
				kept[w] = sid
				w++
			}
		}
		kept = append(kept[:w], set)
		queue = append(queue, entry{set: set, parent: parent, sym: sym})
		if !setAcc[set] {
			return int32(len(queue) - 1)
		}
		return -1
	}

	start := newStateBits(nb)
	for _, s := range ae.initial {
		start.set(int32(s))
	}
	bad := push(addSet(start), -1, alphabet.Epsilon)

	var tick interrupt.Tick
	for i := 0; bad < 0 && i < len(queue); i++ {
		if err := tick.Poll(ctx); err != nil {
			return false, nil, err
		}
		cur := queue[i]
		for _, sym := range syms {
			scratch.clear()
			cb.step(in.at(cur.set), scratch, sym)
			if bad = push(addSet(scratch), int32(i), sym); bad >= 0 {
				break
			}
		}
	}
	if bad < 0 {
		return true, nil, nil
	}
	var w word.Word
	for j := bad; queue[j].parent != -1; j = queue[j].parent {
		w = append(w, queue[j].sym)
	}
	for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
		w[l], w[r] = w[r], w[l]
	}
	return false, w, nil
}
