package nfa

import (
	"relive/internal/alphabet"
	"relive/internal/graph"
)

// Compiled is the CSR (compressed sparse row) form of an NFA: one flat
// successor array indexed by (state, symbol), produced once per
// automaton and shared by every algorithm that walks transitions in an
// inner loop (determinization, inclusion, trimming, the Büchi limit
// constructions). Row 0 of each state holds the ε-successors, so the
// layout covers automata with ε-transitions too.
//
// The compiled form is a read-only snapshot: the NFA caches it and
// drops the cache whenever a state or transition is added, so callers
// just ask for it and never reason about staleness.
type Compiled struct {
	n    int // states
	syms int // rows per state: ε plus the proper letters
	off  []int32
	dst  []int32
	// stateOff[v] = off[v*syms]: the rows of one state are contiguous,
	// so the symbol-blind adjacency needed by the graph algorithms is a
	// free reslice.
	stateOff []int32
}

// compileTransitions builds a CSR from map-based transition tables. It
// is shared with package-internal callers that hold the raw maps.
func compileTransitions(n, properSyms int, trans []map[alphabet.Symbol][]State) *Compiled {
	syms := properSyms + 1 // row 0 is ε
	c := &Compiled{n: n, syms: syms}
	c.off = make([]int32, n*syms+1)
	total := 0
	for s, m := range trans {
		for sym, ts := range m {
			c.off[s*syms+int(sym)+1] = int32(len(ts))
			total += len(ts)
		}
	}
	for i := 1; i < len(c.off); i++ {
		c.off[i] += c.off[i-1]
	}
	c.dst = make([]int32, total)
	for s, m := range trans {
		for sym, ts := range m {
			base := c.off[s*syms+int(sym)]
			for i, t := range ts {
				c.dst[base+int32(i)] = int32(t)
			}
		}
	}
	c.stateOff = make([]int32, n+1)
	for v := 0; v <= n; v++ {
		c.stateOff[v] = c.off[v*syms]
	}
	return c
}

// Compiled returns the CSR form of the automaton, building and caching
// it on first use. The returned value is shared and read-only. The
// shape checks guard against a stale cache: shared alphabets may grow
// after the automaton was compiled. The load/compile/store sequence is
// safe under concurrent readers: compilation only reads the automaton,
// racing compiles produce identical values, and the atomic store
// publishes a fully built form.
func (a *NFA) Compiled() *Compiled {
	if c := a.csr.Load(); c != nil && c.n == a.NumStates() && c.syms == a.ab.Size()+1 {
		return c
	}
	c := compileTransitions(a.NumStates(), a.ab.Size(), a.trans)
	a.csr.Store(c)
	return c
}

// NumStates returns the number of states of the compiled automaton.
func (c *Compiled) NumStates() int { return c.n }

// Row returns the successors of s under sym as a shared slice of state
// numbers. sym may be alphabet.Epsilon.
func (c *Compiled) Row(s State, sym alphabet.Symbol) []int32 {
	r := int(s)*c.syms + int(sym)
	return c.dst[c.off[r]:c.off[r+1]]
}

// Graph returns the symbol-blind adjacency (ε-edges included) for the
// graph algorithms. It shares the compiled arrays; no copying happens.
func (c *Compiled) Graph() graph.CSR {
	return graph.CSR{Off: c.stateOff, Dst: c.dst}
}

// step ORs, into dst, the successors under sym of every member of src.
// It is the inner move of the bitset subset constructions. src and dst
// must not alias; dst is not cleared first.
func (c *Compiled) step(src, dst stateBits, sym alphabet.Symbol) {
	src.forEach(func(q int32) {
		for _, t := range c.Row(State(q), sym) {
			dst.set(t)
		}
	})
}
