package nfa

import (
	"math/rand"
	"sort"
	"testing"

	"relive/internal/alphabet"
)

// Tests for the bitset substrate of the subset constructions: interner
// semantics, the no-allocation guarantee of the hit path, and
// equivalence of the bitset Determinize with a straightforward
// map-keyed reference implementation.

func TestStateBitsBasics(t *testing.T) {
	b := newStateBits(130)
	for _, i := range []int32{0, 63, 64, 129} {
		b.set(i)
	}
	if !b.has(0) || !b.has(63) || !b.has(64) || !b.has(129) || b.has(1) || b.has(128) {
		t.Fatalf("membership wrong: %v", b)
	}
	var got []int32
	b.forEach(func(i int32) { got = append(got, i) })
	want := []int32{0, 63, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("forEach yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forEach yielded %v, want %v", got, want)
		}
	}
	o := newStateBits(130)
	o.set(64)
	if !b.intersects(o) {
		t.Error("intersects missed shared member 64")
	}
	o.clear()
	o.set(1)
	if b.intersects(o) {
		t.Error("intersects reported disjoint sets as overlapping")
	}
	b.clear()
	if !b.empty() {
		t.Error("clear did not empty the set")
	}
}

func TestSetInternerIdentity(t *testing.T) {
	in := newSetInterner(100)
	a := newStateBits(100)
	a.set(5)
	a.set(70)
	id1, fresh1 := in.intern(a)
	if !fresh1 {
		t.Fatal("first intern not fresh")
	}
	// Same content through a different slice must hit the same id.
	b := newStateBits(100)
	b.set(70)
	b.set(5)
	id2, fresh2 := in.intern(b)
	if fresh2 || id2 != id1 {
		t.Fatalf("re-intern of equal content: id %d fresh %v, want id %d fresh false", id2, fresh2, id1)
	}
	if in.lookup(b) != id1 {
		t.Fatalf("lookup = %d, want %d", in.lookup(b), id1)
	}
	// A distinct set gets a distinct id, and at() round-trips contents
	// even after the backing array grew.
	c := newStateBits(100)
	c.set(99)
	id3, fresh3 := in.intern(c)
	if !fresh3 || id3 == id1 {
		t.Fatalf("distinct set interned as id %d fresh %v", id3, fresh3)
	}
	if !in.at(id1).equal(a) || !in.at(id3).equal(c) {
		t.Error("at() does not round-trip interned contents")
	}
	// The empty set is an ordinary interned value (the subset
	// construction's sink).
	e := newStateBits(100)
	idE, freshE := in.intern(e)
	if !freshE || idE == id1 || idE == id3 {
		t.Fatalf("empty set interned as id %d fresh %v", idE, freshE)
	}
	if in.lookup(e) != idE {
		t.Error("empty set lookup failed")
	}
}

// TestInternerHitPathNoAllocs pins the performance contract of the
// subset-construction inner loop: once a set has been interned, both
// lookup and re-intern of the same content allocate nothing.
func TestInternerHitPathNoAllocs(t *testing.T) {
	in := newSetInterner(256)
	s := newStateBits(256)
	s.set(3)
	s.set(77)
	s.set(200)
	in.intern(s)

	if allocs := testing.AllocsPerRun(200, func() {
		if in.lookup(s) < 0 {
			t.Error("interned set not found")
		}
	}); allocs != 0 {
		t.Errorf("lookup hit path allocates %.1f per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, fresh := in.intern(s); fresh {
			t.Error("re-intern reported fresh")
		}
	}); allocs != 0 {
		t.Errorf("intern hit path allocates %.1f per run, want 0", allocs)
	}
}

// referenceDeterminize is the map-keyed subset construction the bitset
// version replaced, kept here as an oracle.
func referenceDeterminize(a *NFA) *DFA {
	d := NewDFA(a.ab)
	e := a
	if a.HasEpsilon() {
		e = a.RemoveEpsilon()
	}
	if len(e.initial) == 0 {
		return d
	}
	keyOf := func(set []State) string {
		b := make([]byte, 0, len(set)*2)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8))
		}
		return string(b)
	}
	norm := func(set map[State]bool) []State {
		out := make([]State, 0, len(set))
		for s := range set {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	anyAccepting := func(set []State) bool {
		for _, s := range set {
			if e.accepting[s] {
				return true
			}
		}
		return false
	}
	index := map[string]State{}
	var sets [][]State
	intern := func(set []State) (State, bool) {
		k := keyOf(set)
		if s, ok := index[k]; ok {
			return s, false
		}
		s := d.AddState(anyAccepting(set))
		index[k] = s
		sets = append(sets, set)
		return s, true
	}
	init := map[State]bool{}
	for _, s := range e.initial {
		init[s] = true
	}
	s0, _ := intern(norm(init))
	d.SetInitial(s0)
	for qi := 0; qi < len(sets); qi++ {
		cur := sets[qi]
		for _, sym := range e.ab.Symbols() {
			next := map[State]bool{}
			for _, s := range cur {
				for _, t := range e.Succ(s, sym) {
					next[t] = true
				}
			}
			if len(next) == 0 {
				continue
			}
			to, _ := intern(norm(next))
			d.SetTransition(State(qi), sym, to)
		}
	}
	return d
}

// TestDeterminizeMatchesReference: the bitset subset construction and
// the map-keyed reference accept the same language on random NFAs.
func TestDeterminizeMatchesReference(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	for seed := int64(0); seed < 80; seed++ {
		a := buildFromSeed(seed, ab)
		got := a.Determinize()
		want := referenceDeterminize(a)
		if !EquivalentDFA(got, want) {
			t.Fatalf("seed %d: bitset Determinize differs from reference\nNFA: %v", seed, a)
		}
	}
}

// TestIncludedMatchesComplementRoute: the on-the-fly inclusion check
// agrees with the classical determinize-complement-intersect route, and
// returned counterexamples are genuine members of L(a) \ L(b).
func TestIncludedMatchesComplementRoute(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 80; i++ {
		a := buildFromSeed(rng.Int63(), ab)
		b := buildFromSeed(rng.Int63(), ab)
		ok, w := Included(a, b)
		diff := Intersect(a, b.Determinize().Complement().ToNFA())
		want := diff.IsEmpty()
		if ok != want {
			t.Fatalf("iteration %d: Included = %v, complement route = %v", i, ok, want)
		}
		if !ok {
			if !a.Accepts(w) || b.Accepts(w) {
				t.Fatalf("iteration %d: counterexample %v not in L(a)\\L(b)", i, w)
			}
		}
	}
}
