package nfa

import "math/bits"

// This file holds the bitset substrate of the subset constructions:
// state sets as []uint64 words, interned by content under a 64-bit hash
// so the PSPACE-shaped loops (Determinize, Included, LanguageEqual)
// never build varint-string keys or per-set symbol maps. The hit path —
// looking up a set that has been seen before — performs no allocation;
// the allocation regression tests in alloc_test.go pin that down.

// stateBits is a fixed-width bitset over automaton states.
type stateBits []uint64

func newStateBits(numStates int) stateBits {
	words := (numStates + 63) / 64
	if words == 0 {
		// Keep one word even for a state-free automaton so set widths
		// always match setInterner's (which pads the same way) and the
		// degenerate L = ∅ case runs the ordinary code path.
		words = 1
	}
	return make(stateBits, words)
}

func (b stateBits) set(i int32)      { b[i>>6] |= 1 << (uint32(i) & 63) }
func (b stateBits) has(i int32) bool { return b[i>>6]&(1<<(uint32(i)&63)) != 0 }

func (b stateBits) clear() {
	for i := range b {
		b[i] = 0
	}
}

func (b stateBits) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// intersects reports whether b and o share a member.
func (b stateBits) intersects(o stateBits) bool {
	for i, w := range b {
		if w&o[i] != 0 {
			return true
		}
	}
	return false
}

// or adds every member of o to b. Both must have the same width.
func (b stateBits) or(o stateBits) {
	for i, w := range o {
		b[i] |= w
	}
}

// subsetOf reports whether every member of b is in o.
func (b stateBits) subsetOf(o stateBits) bool {
	for i, w := range b {
		if w&^o[i] != 0 {
			return false
		}
	}
	return true
}

func (b stateBits) equal(o stateBits) bool {
	for i, w := range b {
		if w != o[i] {
			return false
		}
	}
	return true
}

// hash is FNV-1a over the words; good enough to keep the interner's
// collision buckets at length one in practice.
func (b stateBits) hash() uint64 {
	h := uint64(14695981039346656037)
	for _, w := range b {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// forEach calls f with every member in ascending order.
func (b stateBits) forEach(f func(i int32)) {
	for wi, w := range b {
		base := int32(wi) << 6
		for w != 0 {
			f(base + int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// setInterner interns state bitsets by content. All interned sets live
// in one contiguous backing array (no per-set allocation), and lookups
// go through a word hash with an explicit collision bucket.
type setInterner struct {
	words   int
	byHash  map[uint64][]int32
	backing []uint64
	count   int32
}

func newSetInterner(numStates int) *setInterner {
	words := (numStates + 63) / 64
	if words == 0 {
		words = 1
	}
	return &setInterner{words: words, byHash: make(map[uint64][]int32)}
}

// at returns the stored bitset of an interned id. The slice aliases the
// backing array and is invalidated by the next intern call.
func (in *setInterner) at(id int32) stateBits {
	return stateBits(in.backing[int(id)*in.words : (int(id)+1)*in.words])
}

// lookup returns the id of set, or -1 when it has not been interned.
// It never allocates.
func (in *setInterner) lookup(set stateBits) int32 {
	for _, id := range in.byHash[set.hash()] {
		if in.at(id).equal(set) {
			return id
		}
	}
	return -1
}

// intern returns the id of set, copying it into the backing store when
// it is fresh.
func (in *setInterner) intern(set stateBits) (id int32, fresh bool) {
	h := set.hash()
	for _, id := range in.byHash[h] {
		if in.at(id).equal(set) {
			return id, false
		}
	}
	id = in.count
	in.count++
	in.backing = append(in.backing, set...)
	in.byHash[h] = append(in.byHash[h], id)
	return id, true
}
