package nfa

import (
	"relive/internal/alphabet"
	"relive/internal/graph"
	"relive/internal/word"
)

// DFA is a deterministic finite automaton. DFAs are partial: a missing
// transition rejects the rest of the input. The initial state of a DFA
// with at least one state is state 0 by construction of Determinize; use
// Initial for the general case.
type DFA struct {
	ab        *alphabet.Alphabet
	initial   State // -1 when the language is empty and the DFA has no states
	accepting []bool
	trans     []map[alphabet.Symbol]State
}

// NewDFA returns an empty DFA (empty language) over ab.
func NewDFA(ab *alphabet.Alphabet) *DFA {
	return &DFA{ab: ab, initial: -1}
}

// Alphabet returns the automaton's alphabet.
func (d *DFA) Alphabet() *alphabet.Alphabet { return d.ab }

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.accepting) }

// Initial returns the initial state, or -1 when the DFA is empty.
func (d *DFA) Initial() State { return d.initial }

// SetInitial sets the initial state.
func (d *DFA) SetInitial(s State) { d.initial = s }

// AddState adds a fresh state and returns it.
func (d *DFA) AddState(accepting bool) State {
	s := State(len(d.accepting))
	d.accepting = append(d.accepting, accepting)
	d.trans = append(d.trans, nil)
	return s
}

// Accepting reports whether s is accepting.
func (d *DFA) Accepting(s State) bool { return d.accepting[s] }

// SetAccepting sets the acceptance status of s.
func (d *DFA) SetAccepting(s State, accepting bool) { d.accepting[s] = accepting }

// SetTransition sets δ(from, sym) = to, overwriting any previous target.
func (d *DFA) SetTransition(from State, sym alphabet.Symbol, to State) {
	m := d.trans[from]
	if m == nil {
		m = make(map[alphabet.Symbol]State)
		d.trans[from] = m
	}
	m[sym] = to
}

// Delta returns δ(s, sym) and whether the transition is defined.
func (d *DFA) Delta(s State, sym alphabet.Symbol) (State, bool) {
	t, ok := d.trans[s][sym]
	return t, ok
}

// Accepts reports whether the DFA accepts w.
func (d *DFA) Accepts(w word.Word) bool {
	if d.initial < 0 {
		return false
	}
	s := d.initial
	for _, sym := range w {
		t, ok := d.Delta(s, sym)
		if !ok {
			return false
		}
		s = t
	}
	return d.accepting[s]
}

// StateAfter returns the state reached on w from s, or ok=false when the
// run leaves the automaton.
func (d *DFA) StateAfter(s State, w word.Word) (State, bool) {
	for _, sym := range w {
		t, ok := d.Delta(s, sym)
		if !ok {
			return -1, false
		}
		s = t
	}
	return s, true
}

// Clone returns a deep copy sharing the alphabet.
func (d *DFA) Clone() *DFA {
	c := &DFA{
		ab:        d.ab,
		initial:   d.initial,
		accepting: append([]bool(nil), d.accepting...),
		trans:     make([]map[alphabet.Symbol]State, len(d.trans)),
	}
	for i, m := range d.trans {
		if m == nil {
			continue
		}
		cm := make(map[alphabet.Symbol]State, len(m))
		for sym, t := range m {
			cm[sym] = t
		}
		c.trans[i] = cm
	}
	return c
}

// ToNFA converts the DFA to an equivalent NFA.
func (d *DFA) ToNFA() *NFA {
	a := New(d.ab)
	for i := 0; i < d.NumStates(); i++ {
		a.AddState(d.accepting[i])
	}
	for i, m := range d.trans {
		for sym, t := range m {
			a.AddTransition(State(i), sym, t)
		}
	}
	if d.initial >= 0 {
		a.SetInitial(d.initial)
	}
	return a
}

// Determinize builds a DFA for L(a) by the bitset subset construction:
// ε-transitions are removed first, state sets are []uint64 bitsets
// interned by content hash, and successor sets are computed by OR-ing
// CSR rows. Only reachable subsets are materialized; the worklist is an
// index cursor, not a slice-retaining pop.
func (a *NFA) Determinize() *DFA {
	d := NewDFA(a.ab)
	e := a
	if a.HasEpsilon() {
		e = a.RemoveEpsilon()
	}
	if len(e.initial) == 0 {
		return d
	}
	c := e.Compiled()
	n := e.NumStates()
	syms := e.ab.Symbols()

	accepting := newStateBits(n)
	for i, acc := range e.accepting {
		if acc {
			accepting.set(int32(i))
		}
	}

	in := newSetInterner(n)
	cur := newStateBits(n)  // scratch: the set being expanded
	next := newStateBits(n) // scratch: its successor under one symbol
	for _, s := range e.initial {
		cur.set(int32(s))
	}
	in.intern(cur)
	d.SetInitial(d.AddState(cur.intersects(accepting)))

	for qi := int32(0); qi < in.count; qi++ {
		copy(cur, in.at(qi)) // in.at aliases the backing store; intern below may grow it
		for _, sym := range syms {
			next.clear()
			c.step(cur, next, sym)
			if next.empty() {
				continue
			}
			t, fresh := in.intern(next)
			if fresh {
				d.AddState(next.intersects(accepting))
			}
			d.SetTransition(State(qi), sym, State(t))
		}
	}
	return d
}

// Complete returns an equivalent complete DFA: every state has a
// transition on every alphabet letter, adding a rejecting sink when
// needed. An empty DFA becomes a single rejecting sink.
func (d *DFA) Complete() *DFA {
	c := d.Clone()
	if c.initial < 0 {
		c.initial = c.AddState(false)
	}
	syms := c.ab.Symbols()
	sink := State(-1)
	ensureSink := func() State {
		if sink < 0 {
			sink = c.AddState(false)
			for _, sym := range syms {
				c.SetTransition(sink, sym, sink)
			}
		}
		return sink
	}
	n := c.NumStates() // before any sink
	for i := 0; i < n; i++ {
		for _, sym := range syms {
			if _, ok := c.Delta(State(i), sym); !ok {
				c.SetTransition(State(i), sym, ensureSink())
			}
		}
	}
	return c
}

// Complement returns a DFA for the complement language Σ* \ L(d).
func (d *DFA) Complement() *DFA {
	c := d.Complete()
	for i := range c.accepting {
		c.accepting[i] = !c.accepting[i]
	}
	return c
}

// Trim removes unreachable and non-coaccessible states of the DFA.
func (d *DFA) Trim() *DFA {
	return d.ToNFA().Trim().Determinize()
}

// StateEquivalence computes Moore partition refinement on a complete DFA
// and returns, for each state, its equivalence class id. Two states get
// the same id iff their residual languages are equal. The DFA must be
// complete.
func (d *DFA) StateEquivalence() []int {
	n := d.NumStates()
	class := make([]int, n)
	for i := 0; i < n; i++ {
		if d.accepting[i] {
			class[i] = 1
		}
	}
	numClasses := countClasses(class)
	syms := d.ab.Symbols()
	for {
		// Signature of each state: own class + classes of successors.
		next := make(map[string]int)
		newClass := make([]int, n)
		for i := 0; i < n; i++ {
			b := make([]byte, 0, (len(syms)+1)*4)
			b = appendInt(b, class[i])
			for _, sym := range syms {
				t, ok := d.Delta(State(i), sym)
				if !ok {
					b = appendInt(b, -1)
				} else {
					b = appendInt(b, class[t])
				}
			}
			sig := string(b)
			id, ok := next[sig]
			if !ok {
				id = len(next)
				next[sig] = id
			}
			newClass[i] = id
		}
		// Moore refinement only ever splits classes; a fixpoint is reached
		// exactly when the class count stops growing.
		if len(next) == numClasses {
			return newClass
		}
		class = newClass
		numClasses = len(next)
	}
}

func countClasses(class []int) int {
	seen := map[int]bool{}
	for _, c := range class {
		seen[c] = true
	}
	return len(seen)
}

func appendInt(b []byte, v int) []byte {
	u := uint(v+2)<<1 | 1 // shift so that -1 encodes cleanly
	for u >= 0x80 {
		b = append(b, byte(u)|0x80)
		u >>= 7
	}
	return append(b, byte(u))
}

// Minimize returns the minimal DFA for L(d): trim, complete, merge
// equivalent states, and drop the dead sink class again. The result is
// partial and trim.
func (d *DFA) Minimize() *DFA {
	t := d.ToNFA().Trim().Determinize()
	if t.initial < 0 {
		return t
	}
	c := t.Complete()
	class := c.StateEquivalence()
	numClasses := countClasses(class)
	out := NewDFA(d.ab)
	rep := make([]State, numClasses)
	for i := range rep {
		rep[i] = -1
	}
	for i := 0; i < c.NumStates(); i++ {
		if rep[class[i]] < 0 {
			rep[class[i]] = out.AddState(c.accepting[i])
		}
	}
	for i := 0; i < c.NumStates(); i++ {
		for sym, to := range c.trans[i] {
			out.SetTransition(rep[class[i]], sym, rep[class[to]])
		}
	}
	out.SetInitial(rep[class[c.initial]])
	// Completion may have introduced a dead class; trim it away.
	return out.ToNFA().Trim().Determinize()
}

// IsEmpty reports whether L(d) is empty.
func (d *DFA) IsEmpty() bool {
	if d.initial < 0 {
		return true
	}
	n := d.NumStates()
	succ := func(v int) []int {
		var out []int
		for _, t := range d.trans[v] {
			out = append(out, int(t))
		}
		return out
	}
	reach := graph.Reachable(n, []int{int(d.initial)}, succ)
	for i := 0; i < n; i++ {
		if reach[i] && d.accepting[i] {
			return false
		}
	}
	return true
}
