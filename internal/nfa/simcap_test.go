// Differential test for the simulation-seeding cap: at cap 0 the
// antichain kernels run with identity subsumption only, and their
// verdicts and counterexample lengths must match both the fully-seeded
// antichain route and the classic subset route on every input. The
// seeding is a pure pruning aid; this pins that turning it off is
// always safe (the -sim-cap escape hatch).
package nfa_test

import (
	"math/rand"
	"testing"

	"relive/internal/genbase"
	"relive/internal/kernel"
	"relive/internal/nfa"
)

func TestSimulationCapZeroKeepsVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	unseeded := kernel.WithSimulationCap(nil, 0)
	seeded := kernel.WithSimulationCap(nil, 1<<20)
	shapes := []genbase.Config{
		{States: 6, Symbols: 2, Density: 0.5, AcceptRatio: 0.4},
		{States: 12, Symbols: 3, Density: 0.4, AcceptRatio: 0.3},
		{States: 20, Symbols: 2, Density: 0.3, AcceptRatio: 0.2},
	}
	for trial := 0; trial < 150; trial++ {
		cfg := shapes[trial%len(shapes)]
		ab := genbase.Letters(cfg.Symbols)
		a := genbase.NFA(rng, cfg, ab)
		b := genbase.NFA(rng, cfg, ab)

		okRef, wRef := nfa.Included(a, b)
		ok0, w0, err := nfa.IncludedAntichainCtx(unseeded, a, b)
		if err != nil {
			t.Fatal(err)
		}
		okS, wS, err := nfa.IncludedAntichainCtx(seeded, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if ok0 != okRef || okS != okRef {
			t.Fatalf("trial %d: inclusion verdicts diverge: subset=%v cap0=%v seeded=%v", trial, okRef, ok0, okS)
		}
		if !okRef {
			if len(w0) != len(wRef) || len(wS) != len(wRef) {
				t.Fatalf("trial %d: counterexample lengths diverge: subset=%d cap0=%d seeded=%d", trial, len(wRef), len(w0), len(wS))
			}
			if !a.Accepts(w0) || b.Accepts(w0) {
				t.Fatalf("trial %d: cap-0 counterexample is not genuine", trial)
			}
		}

		uRef, uwRef, err := nfa.UniversalSubsetCtx(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		u0, uw0, err := nfa.UniversalAntichainCtx(unseeded, a)
		if err != nil {
			t.Fatal(err)
		}
		if u0 != uRef {
			t.Fatalf("trial %d: universality verdicts diverge: subset=%v cap0=%v", trial, uRef, u0)
		}
		if !uRef && len(uw0) != len(uwRef) {
			t.Fatalf("trial %d: universality counterexample lengths diverge: subset=%d cap0=%d", trial, len(uwRef), len(uw0))
		}
	}
}
