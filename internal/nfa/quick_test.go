package nfa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relive/internal/alphabet"
	"relive/internal/word"
)

// buildFromSeed deterministically derives a small NFA from a seed, so
// testing/quick can explore automata through plain integers.
func buildFromSeed(seed int64, ab *alphabet.Alphabet) *NFA {
	rng := rand.New(rand.NewSource(seed))
	a := New(ab)
	n := 1 + rng.Intn(5)
	for i := 0; i < n; i++ {
		a.AddState(rng.Float64() < 0.4)
	}
	for i := 0; i < n; i++ {
		for _, sym := range ab.Symbols() {
			for k := 0; k < 2; k++ {
				if rng.Float64() < 0.5 {
					a.AddTransition(State(i), sym, State(rng.Intn(n)))
				}
			}
		}
	}
	a.SetInitial(0)
	return a
}

func wordFromBits(ab *alphabet.Alphabet, bits []bool) word.Word {
	syms := ab.Symbols()
	w := make(word.Word, len(bits))
	for i, b := range bits {
		if b {
			w[i] = syms[0]
		} else {
			w[i] = syms[1]
		}
	}
	return w
}

// TestQuickDeMorgan: complement(L1 ∩ L2) = complement(L1) ∪
// complement(L2) pointwise on sampled words.
func TestQuickDeMorgan(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	f := func(s1, s2 int64, bits []bool) bool {
		if len(bits) > 7 {
			bits = bits[:7]
		}
		a1 := buildFromSeed(s1, ab)
		a2 := buildFromSeed(s2, ab)
		w := wordFromBits(ab, bits)
		left := !Intersect(a1, a2).Accepts(w)
		right := a1.Determinize().Complement().Accepts(w) ||
			a2.Determinize().Complement().Accepts(w)
		return left == right
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDoubleComplement: complementing twice restores the language.
func TestQuickDoubleComplement(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	f := func(seed int64, bits []bool) bool {
		if len(bits) > 7 {
			bits = bits[:7]
		}
		a := buildFromSeed(seed, ab)
		w := wordFromBits(ab, bits)
		return a.Accepts(w) == a.Determinize().Complement().Complement().Accepts(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionMonotone: L1 ⊆ L1 ∪ L2 and L2 ⊆ L1 ∪ L2.
func TestQuickUnionMonotone(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	f := func(s1, s2 int64) bool {
		a1 := buildFromSeed(s1, ab)
		a2 := buildFromSeed(s2, ab)
		u := Union(a1, a2)
		if ok, _ := Included(a1, u); !ok {
			return false
		}
		ok, _ := Included(a2, u)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickPrefixLanguageIdempotent: pre(pre(L)) = pre(L).
func TestQuickPrefixLanguageIdempotent(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	f := func(seed int64) bool {
		a := buildFromSeed(seed, ab)
		p := a.PrefixLanguage()
		pp := p.PrefixLanguage()
		eq, _ := LanguageEqual(p, pp)
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickResidualCorrectness: v ∈ cont(w, L) ⟺ wv ∈ L.
func TestQuickResidualCorrectness(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	f := func(seed int64, wBits, vBits []bool) bool {
		if len(wBits) > 4 {
			wBits = wBits[:4]
		}
		if len(vBits) > 4 {
			vBits = vBits[:4]
		}
		a := buildFromSeed(seed, ab)
		w := wordFromBits(ab, wBits)
		v := wordFromBits(ab, vBits)
		return a.Residual(w).Accepts(v) == a.Accepts(w.Concat(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickStarAbsorbsConcat: L* · L* = L*.
func TestQuickStarAbsorbsConcat(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	f := func(seed int64) bool {
		a := buildFromSeed(seed, ab)
		star := Star(a)
		both := Concat(star, star)
		eq, _ := LanguageEqual(star, both)
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
