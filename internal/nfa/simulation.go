package nfa

import "relive/internal/alphabet"

// This file computes direct (strong) simulation preorders on NFAs — the
// finite-word analogue of internal/buchi/simulation.go — used to seed
// the antichain inclusion/universality kernels: q simulating p implies
// L(p) ⊆ L(q), which widens the antichain subsumption test from plain
// set inclusion to inclusion up to simulation and lets the search drop
// pairs whose left state is simulated by a right state outright.

// The pair space of the simulation fixpoints seeding the antichain
// kernels is bounded by a cap (kernel.DefaultSimulationCap by default,
// configurable via kernel.SetSimulationCap / kernel.WithSimulationCap
// and the CLIs' -sim-cap flag). Larger inputs skip the preorder and
// fall back to the identity (plain ⊆ subsumption), which keeps the
// seeding cost negligible next to the search it accelerates. The
// default is deliberately small: the fixpoint costs pairs × edges ×
// rounds, and on mid-size non-adversarial operands (where the subset
// search is already cheap) a preorder over ~10⁴ pairs costs more than
// the whole search it would prune — the antichain's ⊆-minimality
// carries the asymptotic win on its own. A cap of 0 disables seeding
// entirely; verdicts and counterexample lengths are identical either
// way (the preorder only widens subsumption, it never changes what the
// search can find).

// DirectSimulation computes the direct simulation preorder on the
// automaton's states as a greatest fixpoint: sim[p][q] means q
// direct-simulates p, i.e. q is accepting whenever p is, and every
// a-successor of p is direct-simulated by some a-successor of q. Direct
// simulation implies language inclusion L(p) ⊆ L(q). ε-transitions are
// eliminated first; the state numbering is unchanged by that step.
func (a *NFA) DirectSimulation() [][]bool {
	e := a.epsFree()
	n := e.NumStates()
	sim := make([][]bool, n)
	for p := 0; p < n; p++ {
		sim[p] = make([]bool, n)
		for q := 0; q < n; q++ {
			// Initial over-approximation: acceptance condition only.
			sim[p][q] = !e.accepting[p] || e.accepting[q]
		}
	}
	syms := e.ab.Symbols()
	for changed := true; changed; {
		changed = false
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if !sim[p][q] {
					continue
				}
				if !simStep(sim, e, e, p, q, syms) {
					sim[p][q] = false
					changed = true
				}
			}
		}
	}
	return sim
}

// crossSimulation computes direct simulation of ae's states by be's
// states: sim[x][q] means q ∈ be direct-simulates x ∈ ae, hence
// L_ae(x) ⊆ L_be(q). Both automata must be ε-free and share an
// alphabet.
func crossSimulation(ae, be *NFA) [][]bool {
	na, nb := ae.NumStates(), be.NumStates()
	sim := make([][]bool, na)
	for x := 0; x < na; x++ {
		sim[x] = make([]bool, nb)
		for q := 0; q < nb; q++ {
			sim[x][q] = !ae.accepting[x] || be.accepting[q]
		}
	}
	syms := ae.ab.Symbols()
	for changed := true; changed; {
		changed = false
		for x := 0; x < na; x++ {
			for q := 0; q < nb; q++ {
				if !sim[x][q] {
					continue
				}
				if !simStep(sim, ae, be, x, q, syms) {
					sim[x][q] = false
					changed = true
				}
			}
		}
	}
	return sim
}

// simStep checks the one-step simulation condition for the pair (p, q)
// under the current relation: every successor of p (in left) is related
// to some same-symbol successor of q (in right).
func simStep(sim [][]bool, left, right *NFA, p, q int, syms []alphabet.Symbol) bool {
	for _, a := range syms {
		for _, ps := range left.trans[p][a] {
			matched := false
			for _, qs := range right.trans[q][a] {
				if sim[ps][qs] {
					matched = true
					break
				}
			}
			if !matched {
				return false
			}
		}
	}
	return true
}

// inclusionPreorder computes the simulation data the antichain
// inclusion check IncludedAntichainCtx uses, over the (ε-free)
// operands:
//
//   - simBelow[q], for q ∈ be: the bitset of be-states p with p ≼ q.
//     The upward closure cl(T) = ∪_{q∈T} simBelow[q] of a b-set T is
//     what antichain subsumption tests against.
//   - cross[x], for x ∈ ae: the bitset of be-states q with x ≼ q.
//     A pair (x, T) with cross[x] ∩ T ≠ ∅ satisfies L(x) ⊆ L_b(T) and
//     can never witness an inclusion failure.
//
// Returns (nil, nil) when the pair space exceeds cap (or cap disables
// seeding); the caller then falls back to the identity preorder.
func inclusionPreorder(ae, be *NFA, cap int) (simBelow, cross []stateBits) {
	na, nb := ae.NumStates(), be.NumStates()
	if cap <= 0 || nb == 0 || nb*nb+na*nb > cap {
		return nil, nil
	}
	simBB := be.DirectSimulation()
	simBelow = make([]stateBits, nb)
	for q := 0; q < nb; q++ {
		simBelow[q] = newStateBits(nb)
		for p := 0; p < nb; p++ {
			if simBB[p][q] {
				simBelow[q].set(int32(p))
			}
		}
	}
	simAB := crossSimulation(ae, be)
	cross = make([]stateBits, na)
	for x := 0; x < na; x++ {
		cross[x] = newStateBits(nb)
		for q := 0; q < nb; q++ {
			if simAB[x][q] {
				cross[x].set(int32(q))
			}
		}
	}
	return simBelow, cross
}

// simBelowOf is the simBelow half of inclusionPreorder for the
// universality check, whose left side is Σ* and needs no cross
// relation. Returns nil above the pair-space cap.
func simBelowOf(be *NFA, cap int) []stateBits {
	nb := be.NumStates()
	if cap <= 0 || nb == 0 || nb*nb > cap {
		return nil
	}
	simBB := be.DirectSimulation()
	simBelow := make([]stateBits, nb)
	for q := 0; q < nb; q++ {
		simBelow[q] = newStateBits(nb)
		for p := 0; p < nb; p++ {
			if simBB[p][q] {
				simBelow[q].set(int32(p))
			}
		}
	}
	return simBelow
}
