package nfa

import (
	"relive/internal/alphabet"
	"relive/internal/word"
)

// Intersect returns an NFA for L(a) ∩ L(b) via the product construction.
// Both automata must be over the same alphabet; ε-transitions are removed
// first.
func Intersect(a, b *NFA) *NFA {
	ae := a.RemoveEpsilon()
	be := b.RemoveEpsilon()
	out := New(a.ab)
	type pair struct{ x, y State }
	index := map[pair]State{}
	var queue []pair
	intern := func(p pair) State {
		if s, ok := index[p]; ok {
			return s
		}
		s := out.AddState(ae.accepting[p.x] && be.accepting[p.y])
		index[p] = s
		queue = append(queue, p)
		return s
	}
	for _, x := range ae.initial {
		for _, y := range be.initial {
			out.SetInitial(intern(pair{x, y}))
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		from := index[p]
		for sym, xs := range ae.trans[p.x] {
			ys := be.trans[p.y][sym]
			for _, x := range xs {
				for _, y := range ys {
					out.AddTransition(from, sym, intern(pair{x, y}))
				}
			}
		}
	}
	return out
}

// Union returns an NFA for L(a) ∪ L(b) by disjoint union of states.
func Union(a, b *NFA) *NFA {
	out := a.Clone()
	offset := State(out.NumStates())
	for i := 0; i < b.NumStates(); i++ {
		out.AddState(b.accepting[i])
	}
	for i := range b.trans {
		for sym, ts := range b.trans[i] {
			for _, t := range ts {
				out.AddTransition(State(i)+offset, sym, t+offset)
			}
		}
	}
	for _, s := range b.initial {
		out.SetInitial(s + offset)
	}
	return out
}

// Included reports whether L(a) ⊆ L(b). When the inclusion fails, it
// returns a shortest word in L(a) \ L(b) as a counterexample.
func Included(a, b *NFA) (bool, word.Word) {
	bd := b.Determinize().Complement() // complete DFA for the complement of L(b)
	ae := a.RemoveEpsilon()

	type pair struct {
		x State // NFA state of a
		y State // DFA state of complement(b)
	}
	type entry struct {
		p      pair
		parent int
		sym    alphabet.Symbol
	}
	var queue []entry
	seen := map[pair]bool{}
	push := func(p pair, parent int, sym alphabet.Symbol) {
		if !seen[p] {
			seen[p] = true
			queue = append(queue, entry{p: p, parent: parent, sym: sym})
		}
	}
	for _, x := range ae.initial {
		push(pair{x, bd.Initial()}, -1, alphabet.Epsilon)
	}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if ae.accepting[cur.p.x] && bd.Accepting(cur.p.y) {
			var w word.Word
			for j := i; queue[j].parent != -1; j = queue[j].parent {
				w = append(w, queue[j].sym)
			}
			for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
				w[l], w[r] = w[r], w[l]
			}
			return false, w
		}
		for sym, xs := range ae.trans[cur.p.x] {
			y, ok := bd.Delta(cur.p.y, sym)
			if !ok {
				continue // complement DFA is complete; cannot happen
			}
			for _, x := range xs {
				push(pair{x, y}, i, sym)
			}
		}
	}
	return true, nil
}

// LanguageEqual reports whether L(a) = L(b). On inequality it returns a
// word in the symmetric difference.
func LanguageEqual(a, b *NFA) (bool, word.Word) {
	if ok, w := Included(a, b); !ok {
		return false, w
	}
	if ok, w := Included(b, a); !ok {
		return false, w
	}
	return true, nil
}

// IsPrefixClosed reports whether L(a) is prefix-closed, i.e.
// L = pre(L). On failure it returns a word in pre(L) \ L.
func (a *NFA) IsPrefixClosed() (bool, word.Word) {
	return Included(a.PrefixLanguage(), a)
}

// EquivalentDFA reports whether two DFAs accept the same language, by a
// synchronous product walk over their completions.
func EquivalentDFA(a, b *DFA) bool {
	ac := a.Complete()
	bc := b.Complete()
	type pair struct{ x, y State }
	seen := map[pair]bool{}
	queue := []pair{{ac.Initial(), bc.Initial()}}
	seen[queue[0]] = true
	syms := a.ab.Symbols()
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if ac.Accepting(p.x) != bc.Accepting(p.y) {
			return false
		}
		for _, sym := range syms {
			x, _ := ac.Delta(p.x, sym)
			y, _ := bc.Delta(p.y, sym)
			np := pair{x, y}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return true
}

// HasMaximalWords reports whether L(a) contains a maximal word: a word in
// L that is not a proper prefix of another word in L (the precondition of
// Theorems 8.2/8.3 requires h(L) to have none). On success it returns a
// maximal word as witness.
func (a *NFA) HasMaximalWords() (bool, word.Word) {
	// w ∈ L is maximal iff cont(w, L) ∩ Σ⁺ = ∅, i.e. from the
	// configuration reached by w no further word of L is readable.
	// Work on the trim DFA of L: a word is maximal iff it reaches an
	// accepting state from which no accepting state is reachable by a
	// nonempty path.
	d := a.Determinize().Trim()
	if d.NumStates() == 0 {
		return false, nil
	}
	n := d.NumStates()
	// canExtend[s]: an accepting state is reachable from s via ≥1 step.
	canExtend := make([]bool, n)
	// One backward pass suffices: iterate to fixpoint.
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if canExtend[i] {
				continue
			}
			for _, t := range d.trans[i] {
				if d.accepting[t] || canExtend[t] {
					canExtend[i] = true
					changed = true
					break
				}
			}
		}
	}
	// Find a shortest path to an accepting, non-extendable state.
	nfa := d.ToNFA()
	for i := 0; i < n; i++ {
		nfa.SetAccepting(State(i), d.accepting[i] && !canExtend[i])
	}
	w, ok := nfa.ShortestAccepted()
	if !ok {
		return false, nil
	}
	return true, w
}
