package nfa

import (
	"context"

	"relive/internal/alphabet"
	"relive/internal/interrupt"
	"relive/internal/word"
)

// Intersect returns an NFA for L(a) ∩ L(b) via the product construction.
// Both automata must be over the same alphabet; ε-transitions are removed
// first (already ε-free operands are used as-is, without a copy).
func Intersect(a, b *NFA) *NFA {
	ae := a.epsFree()
	be := b.epsFree()
	out := New(a.ab)
	type pair struct{ x, y State }
	index := map[pair]State{}
	var queue []pair
	intern := func(p pair) State {
		if s, ok := index[p]; ok {
			return s
		}
		s := out.AddState(ae.accepting[p.x] && be.accepting[p.y])
		index[p] = s
		queue = append(queue, p)
		return s
	}
	for _, x := range ae.initial {
		for _, y := range be.initial {
			out.SetInitial(intern(pair{x, y}))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		from := index[p]
		for sym, xs := range ae.trans[p.x] {
			ys := be.trans[p.y][sym]
			for _, x := range xs {
				for _, y := range ys {
					out.AddTransition(from, sym, intern(pair{x, y}))
				}
			}
		}
	}
	return out
}

// Union returns an NFA for L(a) ∪ L(b) by disjoint union of states.
func Union(a, b *NFA) *NFA {
	out := a.Clone()
	offset := State(out.NumStates())
	for i := 0; i < b.NumStates(); i++ {
		out.AddState(b.accepting[i])
	}
	for i := range b.trans {
		for sym, ts := range b.trans[i] {
			for _, t := range ts {
				out.AddTransition(State(i)+offset, sym, t+offset)
			}
		}
	}
	for _, s := range b.initial {
		out.SetInitial(s + offset)
	}
	return out
}

// Included reports whether L(a) ⊆ L(b). When the inclusion fails, it
// returns a shortest word in L(a) \ L(b) as a counterexample.
//
// The check runs the subset construction of b on the fly: the BFS
// explores pairs of an a-state and an interned bitset of b-states,
// determinizing only the part of b that the product actually reaches. A
// pair whose a-state accepts while its b-set contains no accepting
// state witnesses the failure; the empty b-set is an ordinary interned
// set, playing the role of the complete complement DFA's sink.
func Included(a, b *NFA) (bool, word.Word) {
	ok, w, _ := IncludedCtx(nil, a, b)
	return ok, w
}

// IncludedCtx is Included with a cooperative cancellation checkpoint
// inside the on-the-fly subset-construction loop — the loop is worst
// case exponential in b, so a context deadline must be able to stop it.
// A nil ctx never cancels.
func IncludedCtx(ctx context.Context, a, b *NFA) (bool, word.Word, error) {
	ae := a.epsFree()
	be := b.epsFree()
	ca, cb := ae.Compiled(), be.Compiled()
	nb := be.NumStates()
	syms := ae.ab.Symbols()
	numSyms := len(syms)

	accB := newStateBits(nb)
	for i, acc := range be.accepting {
		if acc {
			accB.set(int32(i))
		}
	}

	in := newSetInterner(nb)
	scratch := newStateBits(nb)
	var setAcc []bool // per interned set: does it contain an accepting b-state?
	var delta []int32 // memoized subset moves, delta[set*numSyms+sym-1]; -1 = not yet computed
	addSet := func(set stateBits) int32 {
		id, fresh := in.intern(set)
		if fresh {
			setAcc = append(setAcc, set.intersects(accB))
			for i := 0; i < numSyms; i++ {
				delta = append(delta, -1)
			}
		}
		return id
	}
	stepSet := func(set int32, sym alphabet.Symbol) int32 {
		k := int(set)*numSyms + int(sym) - 1
		if delta[k] >= 0 {
			return delta[k]
		}
		scratch.clear()
		cb.step(in.at(set), scratch, sym)
		id := addSet(scratch)
		delta[k] = id
		return id
	}

	start := newStateBits(nb)
	for _, s := range be.initial {
		start.set(int32(s))
	}
	startID := addSet(start)

	type pair struct {
		x   State
		set int32
	}
	type entry struct {
		p      pair
		parent int
		sym    alphabet.Symbol
	}
	var queue []entry
	seen := map[pair]bool{}
	push := func(p pair, parent int, sym alphabet.Symbol) {
		if !seen[p] {
			seen[p] = true
			queue = append(queue, entry{p: p, parent: parent, sym: sym})
		}
	}
	for _, x := range ae.initial {
		push(pair{x, startID}, -1, alphabet.Epsilon)
	}
	var tick interrupt.Tick
	for i := 0; i < len(queue); i++ {
		if err := tick.Poll(ctx); err != nil {
			return false, nil, err
		}
		cur := queue[i]
		if ae.accepting[cur.p.x] && !setAcc[cur.p.set] {
			var w word.Word
			for j := i; queue[j].parent != -1; j = queue[j].parent {
				w = append(w, queue[j].sym)
			}
			for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
				w[l], w[r] = w[r], w[l]
			}
			return false, w, nil
		}
		for _, sym := range syms {
			xs := ca.Row(cur.p.x, sym)
			if len(xs) == 0 {
				continue
			}
			set := stepSet(cur.p.set, sym)
			for _, x := range xs {
				push(pair{State(x), set}, i, sym)
			}
		}
	}
	return true, nil, nil
}

// LanguageEqual reports whether L(a) = L(b). On inequality it returns a
// word in the symmetric difference.
func LanguageEqual(a, b *NFA) (bool, word.Word) {
	if ok, w := Included(a, b); !ok {
		return false, w
	}
	if ok, w := Included(b, a); !ok {
		return false, w
	}
	return true, nil
}

// IsPrefixClosed reports whether L(a) is prefix-closed, i.e.
// L = pre(L). On failure it returns a word in pre(L) \ L.
func (a *NFA) IsPrefixClosed() (bool, word.Word) {
	return Included(a.PrefixLanguage(), a)
}

// EquivalentDFA reports whether two DFAs accept the same language, by a
// synchronous product walk over their completions.
func EquivalentDFA(a, b *DFA) bool {
	ac := a.Complete()
	bc := b.Complete()
	type pair struct{ x, y State }
	seen := map[pair]bool{}
	queue := []pair{{ac.Initial(), bc.Initial()}}
	seen[queue[0]] = true
	syms := a.ab.Symbols()
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		if ac.Accepting(p.x) != bc.Accepting(p.y) {
			return false
		}
		for _, sym := range syms {
			x, _ := ac.Delta(p.x, sym)
			y, _ := bc.Delta(p.y, sym)
			np := pair{x, y}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return true
}

// HasMaximalWords reports whether L(a) contains a maximal word: a word in
// L that is not a proper prefix of another word in L (the precondition of
// Theorems 8.2/8.3 requires h(L) to have none). On success it returns a
// maximal word as witness.
func (a *NFA) HasMaximalWords() (bool, word.Word) {
	// w ∈ L is maximal iff cont(w, L) ∩ Σ⁺ = ∅, i.e. from the
	// configuration reached by w no further word of L is readable.
	// Work on the trim DFA of L: a word is maximal iff it reaches an
	// accepting state from which no accepting state is reachable by a
	// nonempty path.
	d := a.Determinize().Trim()
	if d.NumStates() == 0 {
		return false, nil
	}
	n := d.NumStates()
	// canExtend[s]: an accepting state is reachable from s via ≥1 step.
	canExtend := make([]bool, n)
	// One backward pass suffices: iterate to fixpoint.
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if canExtend[i] {
				continue
			}
			for _, t := range d.trans[i] {
				if d.accepting[t] || canExtend[t] {
					canExtend[i] = true
					changed = true
					break
				}
			}
		}
	}
	// Find a shortest path to an accepting, non-extendable state.
	nfa := d.ToNFA()
	for i := 0; i < n; i++ {
		nfa.SetAccepting(State(i), d.accepting[i] && !canExtend[i])
	}
	w, ok := nfa.ShortestAccepted()
	if !ok {
		return false, nil
	}
	return true, w
}
