package nfa

import (
	"testing"

	"relive/internal/alphabet"
	"relive/internal/kernel"
)

// chainNFA builds a small deterministic chain over {a} accepting a^n,
// big enough to have a non-trivial simulation preorder.
func chainNFA(n int) *NFA {
	ab := alphabet.New()
	sym := ab.Symbol("a")
	a := New(ab)
	for i := 0; i <= n; i++ {
		a.AddState(i == n)
	}
	for i := 0; i < n; i++ {
		a.AddTransition(State(i), sym, State(i+1))
	}
	a.SetInitial(0)
	return a
}

// TestSimulationCapGatesSeeding pins the cap semantics at the seeding
// boundary: cap 0 disables the preorder outright, a cap below the pair
// space skips it, a cap at or above the pair space computes it.
func TestSimulationCapGatesSeeding(t *testing.T) {
	ae := chainNFA(3).epsFree()
	be := chainNFA(4).epsFree()
	na, nb := ae.NumStates(), be.NumStates()
	pairs := nb*nb + na*nb

	if sb, cr := inclusionPreorder(ae, be, 0); sb != nil || cr != nil {
		t.Fatal("cap 0 still computed the inclusion preorder")
	}
	if sb, cr := inclusionPreorder(ae, be, pairs-1); sb != nil || cr != nil {
		t.Fatalf("cap %d (below the %d-pair space) still computed the preorder", pairs-1, pairs)
	}
	if sb, cr := inclusionPreorder(ae, be, pairs); sb == nil || cr == nil {
		t.Fatalf("cap %d (exactly the pair space) skipped the preorder", pairs)
	}

	upairs := nb * nb
	if sb := simBelowOf(be, 0); sb != nil {
		t.Fatal("cap 0 still computed the universality preorder")
	}
	if sb := simBelowOf(be, upairs-1); sb != nil {
		t.Fatalf("cap %d (below the %d-pair space) still computed the preorder", upairs-1, upairs)
	}
	if sb := simBelowOf(be, upairs); sb == nil {
		t.Fatalf("cap %d (exactly the pair space) skipped the preorder", upairs)
	}
}

// TestSimulationCapResolution pins the process-default / context
// override layering: unset means DefaultSimulationCap, SetSimulationCap
// rebinds the default (including to 0), and WithSimulationCap shadows
// whatever the default is.
func TestSimulationCapResolution(t *testing.T) {
	if got := kernel.SimulationCapFromContext(nil); got != kernel.DefaultSimulationCap {
		t.Fatalf("unset cap = %d, want DefaultSimulationCap %d", got, kernel.DefaultSimulationCap)
	}
	kernel.SetSimulationCap(0)
	defer kernel.SetSimulationCap(kernel.DefaultSimulationCap)
	if got := kernel.SimulationCapFromContext(nil); got != 0 {
		t.Fatalf("cap after SetSimulationCap(0) = %d, want 0", got)
	}
	ctx := kernel.WithSimulationCap(nil, 99)
	if got := kernel.SimulationCapFromContext(ctx); got != 99 {
		t.Fatalf("context cap = %d, want 99", got)
	}
	if got := kernel.SimulationCapFromContext(kernel.WithSimulationCap(ctx, -5)); got != 0 {
		t.Fatalf("negative context cap = %d, want 0", got)
	}
}
