package nfa

import (
	"relive/internal/alphabet"
)

// MinimizeHopcroft returns the minimal DFA for L(d) using Hopcroft's
// O(n·|Σ|·log n) partition-refinement algorithm, as an asymptotically
// faster alternative to the Moore-style Minimize. Both produce the
// minimal automaton; the test suite checks they agree, and the
// benchmark suite compares them.
func (d *DFA) MinimizeHopcroft() *DFA {
	t := d.ToNFA().Trim().Determinize()
	if t.Initial() < 0 {
		return t
	}
	c := t.Complete()
	n := c.NumStates()
	syms := c.ab.Symbols()

	// Reverse transition table: rev[sym][target] = sources.
	rev := make(map[alphabet.Symbol][][]State, len(syms))
	for _, sym := range syms {
		rev[sym] = make([][]State, n)
	}
	for i := 0; i < n; i++ {
		for _, sym := range syms {
			if to, ok := c.Delta(State(i), sym); ok {
				rev[sym][to] = append(rev[sym][to], State(i))
			}
		}
	}

	// Partition as block assignment plus block member lists.
	blockOf := make([]int, n)
	var blocks [][]State
	var accepting, rejecting []State
	for i := 0; i < n; i++ {
		if c.accepting[i] {
			accepting = append(accepting, State(i))
		} else {
			rejecting = append(rejecting, State(i))
		}
	}
	addBlock := func(members []State) int {
		id := len(blocks)
		blocks = append(blocks, members)
		for _, s := range members {
			blockOf[s] = id
		}
		return id
	}
	if len(accepting) > 0 {
		addBlock(accepting)
	}
	if len(rejecting) > 0 {
		addBlock(rejecting)
	}

	// Worklist of (block id, symbol) splitters.
	type splitter struct {
		block int
		sym   alphabet.Symbol
	}
	var work []splitter
	smaller := 0
	if len(blocks) == 2 && len(blocks[1]) < len(blocks[0]) {
		smaller = 1
	}
	for _, sym := range syms {
		work = append(work, splitter{block: smaller, sym: sym})
	}

	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		// X = states with a sym-transition into the splitter block.
		inX := map[State]bool{}
		for _, t := range blocks[sp.block] {
			for _, s := range rev[sp.sym][t] {
				inX[s] = true
			}
		}
		if len(inX) == 0 {
			continue
		}
		// Split every block crossed by X.
		numBlocks := len(blocks)
		for bi := 0; bi < numBlocks; bi++ {
			var in, out []State
			for _, s := range blocks[bi] {
				if inX[s] {
					in = append(in, s)
				} else {
					out = append(out, s)
				}
			}
			if len(in) == 0 || len(out) == 0 {
				continue
			}
			blocks[bi] = in
			newID := addBlock(out)
			// Queue both halves for every symbol. (Hopcroft's "smaller
			// half" refinement requires replacing stale worklist entries
			// when the split block is still pending; queueing both halves
			// is the simple sound variant with the same fixpoint.)
			for _, sym := range syms {
				work = append(work, splitter{block: bi, sym: sym})
				work = append(work, splitter{block: newID, sym: sym})
			}
		}
	}

	// Build the quotient.
	out := NewDFA(d.ab)
	repState := make([]State, len(blocks))
	for bi, members := range blocks {
		repState[bi] = out.AddState(c.accepting[members[0]])
	}
	for bi, members := range blocks {
		src := members[0]
		for _, sym := range syms {
			if to, ok := c.Delta(src, sym); ok {
				out.SetTransition(repState[bi], sym, repState[blockOf[to]])
			}
		}
	}
	out.SetInitial(repState[blockOf[c.Initial()]])
	// Completion may have introduced a dead class; trim it away.
	return out.ToNFA().Trim().Determinize()
}
