// Differential tests for the antichain inclusion/universality kernels:
// on randomized automaton pairs the antichain route must agree with the
// classic subset-construction route bit-for-bit on verdicts, produce
// genuine counterexamples (members of L(a) \ L(b)), and match the
// subset route's counterexample length (both return shortest words).
// Failing pairs are greedily shrunk before reporting.
//
// The package is nfa_test (not nfa) so it can import genbase, which
// itself imports nfa.
package nfa_test

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/genbase"
	"relive/internal/kernel"
	"relive/internal/nfa"
)

// sigmaStar returns a single-state automaton for Σ*.
func sigmaStar(ab *alphabet.Alphabet) *nfa.NFA {
	a := nfa.New(ab)
	s := a.AddState(true)
	a.SetInitial(s)
	for _, sym := range ab.Symbols() {
		a.AddTransition(s, sym, s)
	}
	return a
}

// rebuildNFA copies a keeping only admitted states and transitions.
// Initial markings on dropped states are dropped with them.
func rebuildNFA(a *nfa.NFA, keepState func(nfa.State) bool, keepTrans func(from nfa.State, sym alphabet.Symbol, to nfa.State) bool) *nfa.NFA {
	out := nfa.New(a.Alphabet())
	remap := make([]nfa.State, a.NumStates())
	for i := 0; i < a.NumStates(); i++ {
		s := nfa.State(i)
		if keepState(s) {
			remap[i] = out.AddState(a.Accepting(s))
		} else {
			remap[i] = -1
		}
	}
	syms := append([]alphabet.Symbol{alphabet.Epsilon}, a.Alphabet().Symbols()...)
	for i := 0; i < a.NumStates(); i++ {
		from := nfa.State(i)
		if remap[i] < 0 {
			continue
		}
		for _, sym := range syms {
			for _, to := range a.Succ(from, sym) {
				if remap[to] >= 0 && keepTrans(from, sym, to) {
					out.AddTransition(remap[i], sym, remap[to])
				}
			}
		}
	}
	for _, s := range a.Initial() {
		if remap[s] >= 0 {
			out.SetInitial(remap[s])
		}
	}
	return out
}

// rerooted copies a with the single initial state s.
func rerooted(a *nfa.NFA, s nfa.State) *nfa.NFA {
	out := nfa.New(a.Alphabet())
	for i := 0; i < a.NumStates(); i++ {
		out.AddState(a.Accepting(nfa.State(i)))
	}
	syms := append([]alphabet.Symbol{alphabet.Epsilon}, a.Alphabet().Symbols()...)
	for i := 0; i < a.NumStates(); i++ {
		for _, sym := range syms {
			for _, to := range a.Succ(nfa.State(i), sym) {
				out.AddTransition(nfa.State(i), sym, to)
			}
		}
	}
	out.SetInitial(s)
	return out
}

// shrinkNFA greedily minimizes a while keep(candidate) stays true,
// dropping one transition, then one state, per step to a fixpoint.
func shrinkNFA(a *nfa.NFA, keep func(*nfa.NFA) bool) *nfa.NFA {
	step := func(cur *nfa.NFA) (*nfa.NFA, bool) {
		syms := append([]alphabet.Symbol{alphabet.Epsilon}, cur.Alphabet().Symbols()...)
		edge := 0
		for i := 0; i < cur.NumStates(); i++ {
			for _, sym := range syms {
				for range cur.Succ(nfa.State(i), sym) {
					drop := edge
					edge++
					e := 0
					cand := rebuildNFA(cur,
						func(nfa.State) bool { return true },
						func(nfa.State, alphabet.Symbol, nfa.State) bool {
							keepIt := e != drop
							e++
							return keepIt
						})
					if keep(cand) {
						return cand, true
					}
				}
			}
		}
		for i := 0; i < cur.NumStates(); i++ {
			dead := nfa.State(i)
			cand := rebuildNFA(cur,
				func(s nfa.State) bool { return s != dead },
				func(nfa.State, alphabet.Symbol, nfa.State) bool { return true })
			if keep(cand) {
				return cand, true
			}
		}
		return nil, false
	}
	for {
		next, ok := step(a)
		if !ok {
			return a
		}
		a = next
	}
}

// inclusionAgrees reports whether the antichain and subset routes agree
// on the pair: same verdict, same counterexample length, and a genuine
// counterexample from the antichain route.
func inclusionAgrees(a, b *nfa.NFA) bool {
	okS, wS := nfa.Included(a, b)
	okA, wA := nfa.IncludedAntichain(a, b)
	if okS != okA {
		return false
	}
	if okS {
		return true
	}
	return len(wS) == len(wA) && a.Accepts(wA) && !b.Accepts(wA)
}

func TestIncludedAntichainMatchesSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []genbase.Config{
		{States: 4, Symbols: 2, Density: 0.6, AcceptRatio: 0.4},
		{States: 8, Symbols: 2, Density: 0.5, AcceptRatio: 0.3},
		{States: 12, Symbols: 3, Density: 0.4, AcceptRatio: 0.3},
		{States: 20, Symbols: 2, Density: 0.3, AcceptRatio: 0.2},
	}
	for trial := 0; trial < 400; trial++ {
		cfg := shapes[trial%len(shapes)]
		ab := genbase.Letters(cfg.Symbols)
		a := genbase.NFA(rng, cfg, ab)
		b := genbase.NFA(rng, cfg, ab)
		// Exercise the ε paths too: occasionally splice ε-transitions in.
		if trial%5 == 0 && a.NumStates() > 1 {
			a.AddTransition(0, alphabet.Epsilon, nfa.State(rng.Intn(a.NumStates())))
		}
		if !inclusionAgrees(a, b) {
			a = shrinkNFA(a, func(cand *nfa.NFA) bool { return !inclusionAgrees(cand, b) })
			b = shrinkNFA(b, func(cand *nfa.NFA) bool { return !inclusionAgrees(a, cand) })
			okS, wS := nfa.Included(a, b)
			okA, wA := nfa.IncludedAntichain(a, b)
			t.Fatalf("trial %d: antichain/subset divergence (shrunk)\nsubset: ok=%v w=%v\nantichain: ok=%v w=%v\na=%v\nb=%v",
				trial, okS, wS, okA, wA, a, b)
		}
	}
}

// universalAgrees checks the three universality routes against each
// other: subset, antichain, and the Σ*-inclusion formulation.
func universalAgrees(a *nfa.NFA) bool {
	okS, wS, _ := nfa.UniversalSubsetCtx(nil, a)
	okA, wA, _ := nfa.UniversalAntichainCtx(nil, a)
	okI, wI := nfa.Included(sigmaStar(a.Alphabet()), a)
	if okS != okA || okS != okI {
		return false
	}
	if okS {
		return true
	}
	if len(wS) != len(wA) || len(wS) != len(wI) {
		return false
	}
	return !a.Accepts(wA)
}

func TestUniversalAntichainMatchesSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		cfg := genbase.Config{
			States:      2 + rng.Intn(14),
			Symbols:     1 + rng.Intn(2),
			Density:     0.3 + rng.Float64(),
			AcceptRatio: 0.3 + 0.5*rng.Float64(),
		}
		ab := genbase.Letters(cfg.Symbols)
		a := genbase.NFA(rng, cfg, ab)
		if !universalAgrees(a) {
			a = shrinkNFA(a, func(cand *nfa.NFA) bool { return !universalAgrees(cand) })
			okS, wS, _ := nfa.UniversalSubsetCtx(nil, a)
			okA, wA, _ := nfa.UniversalAntichainCtx(nil, a)
			t.Fatalf("trial %d: universality divergence (shrunk)\nsubset: ok=%v w=%v\nantichain: ok=%v w=%v\na=%v",
				trial, okS, wS, okA, wA, a)
		}
	}
}

func TestDirectSimulationImpliesInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		cfg := genbase.Config{States: 6, Symbols: 2, Density: 0.6, AcceptRatio: 0.4}
		ab := genbase.Letters(cfg.Symbols)
		a := genbase.NFA(rng, cfg, ab)
		sim := a.DirectSimulation()
		for p := 0; p < a.NumStates(); p++ {
			if !sim[p][p] {
				t.Fatalf("trial %d: simulation not reflexive at %d", trial, p)
			}
			for q := 0; q < a.NumStates(); q++ {
				if !sim[p][q] {
					continue
				}
				// L(p) ⊆ L(q): compare the automata re-rooted at p and q.
				if ok, w := nfa.Included(rerooted(a, nfa.State(p)), rerooted(a, nfa.State(q))); !ok {
					t.Fatalf("trial %d: %d ≼ %d but L(%d) ⊄ L(%d), witness %v", trial, p, q, p, q, w)
				}
			}
		}
	}
}

func TestResolveKernelThreshold(t *testing.T) {
	ab := genbase.Letters(2)
	small := nfa.New(ab)
	for i := 0; i < 4; i++ {
		small.AddState(true)
	}
	big := nfa.New(ab)
	for i := 0; i < 64; i++ {
		big.AddState(true)
	}
	if got := nfa.ResolveKernel(kernel.Auto, small); got != kernel.Subset {
		t.Fatalf("Auto on small rhs = %v, want Subset", got)
	}
	if got := nfa.ResolveKernel(kernel.Auto, big); got != kernel.Antichain {
		t.Fatalf("Auto on big rhs = %v, want Antichain", got)
	}
	if got := nfa.ResolveKernel(kernel.Subset, big); got != kernel.Subset {
		t.Fatalf("explicit Subset did not pass through: %v", got)
	}
	if got := nfa.ResolveKernel(kernel.Antichain, small); got != kernel.Antichain {
		t.Fatalf("explicit Antichain did not pass through: %v", got)
	}
}
