package nfa

import (
	"relive/internal/alphabet"
)

// Concat returns an NFA for L(a)·L(b): ε-transitions link a's accepting
// states to b's initial states.
func Concat(a, b *NFA) *NFA {
	out := a.Clone()
	for i := range out.accepting {
		out.accepting[i] = false
	}
	offset := State(out.NumStates())
	for i := 0; i < b.NumStates(); i++ {
		out.AddState(b.accepting[i])
	}
	for i := range b.trans {
		for sym, ts := range b.trans[i] {
			for _, t := range ts {
				out.AddTransition(State(i)+offset, sym, t+offset)
			}
		}
	}
	for i := 0; i < a.NumStates(); i++ {
		if !a.accepting[i] {
			continue
		}
		for _, bi := range b.initial {
			out.AddTransition(State(i), alphabet.Epsilon, bi+offset)
		}
	}
	return out
}

// Star returns an NFA for L(a)*: a fresh accepting initial state loops
// through the automaton.
func Star(a *NFA) *NFA {
	out := a.Clone()
	start := out.AddState(true)
	for _, i := range a.initial {
		out.AddTransition(start, alphabet.Epsilon, i)
	}
	for i := 0; i < a.NumStates(); i++ {
		if a.accepting[i] {
			out.AddTransition(State(i), alphabet.Epsilon, start)
		}
	}
	out.initial = []State{start}
	return out
}

// Reverse returns an NFA for the reversal of L(a): every transition is
// flipped, accepting states become initial and vice versa.
func Reverse(a *NFA) *NFA {
	out := New(a.ab)
	for i := 0; i < a.NumStates(); i++ {
		acc := false
		for _, ini := range a.initial {
			if ini == State(i) {
				acc = true
				break
			}
		}
		out.AddState(acc)
	}
	for i := range a.trans {
		for sym, ts := range a.trans[i] {
			for _, t := range ts {
				out.AddTransition(t, sym, State(i))
			}
		}
	}
	for i, acc := range a.accepting {
		if acc {
			out.SetInitial(State(i))
		}
	}
	return out
}

// Difference returns an NFA for L(a) \ L(b).
func Difference(a, b *NFA) *NFA {
	return Intersect(a, b.Determinize().Complement().ToNFA())
}
