// Package nfa implements nondeterministic and deterministic finite
// automata over interned alphabets, with the language operations the
// relative-liveness theory needs: ε-removal, determinization,
// minimization, products, complement, inclusion and equivalence with
// counterexamples, prefix languages pre(L), left quotients cont(w, L),
// and prefix-closure.
//
// NFAs may contain ε-transitions (recorded under alphabet.Epsilon); every
// operation that requires an ε-free automaton removes them first. DFAs
// are partial by convention: a missing transition rejects.
package nfa

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"relive/internal/alphabet"
	"relive/internal/graph"
	"relive/internal/word"
)

// State identifies an automaton state.
type State int

// NFA is a nondeterministic finite automaton, possibly with
// ε-transitions.
type NFA struct {
	ab        *alphabet.Alphabet
	initial   []State
	accepting []bool
	trans     []map[alphabet.Symbol][]State
	// csr is the lazily built compiled form (see Compiled); it is
	// invalidated whenever a state or transition is added. The atomic
	// pointer makes the lazy build safe under concurrent readers;
	// mutating an automaton concurrently with reads remains unsupported.
	csr atomic.Pointer[Compiled]
}

// New returns an empty NFA over ab with no states.
func New(ab *alphabet.Alphabet) *NFA {
	return &NFA{ab: ab}
}

// Alphabet returns the automaton's alphabet.
func (a *NFA) Alphabet() *alphabet.Alphabet { return a.ab }

// NumStates returns the number of states.
func (a *NFA) NumStates() int { return len(a.accepting) }

// NumTransitions returns the total number of transitions, ε-transitions
// included, so gauges and users need not walk the transition maps by
// hand.
func (a *NFA) NumTransitions() int {
	n := 0
	for _, m := range a.trans {
		for _, ts := range m {
			n += len(ts)
		}
	}
	return n
}

// NumAccepting returns the number of accepting states.
func (a *NFA) NumAccepting() int {
	n := 0
	for _, acc := range a.accepting {
		if acc {
			n++
		}
	}
	return n
}

// AddState adds a fresh state and returns it; accepting sets its
// acceptance status.
func (a *NFA) AddState(accepting bool) State {
	s := State(len(a.accepting))
	a.accepting = append(a.accepting, accepting)
	a.trans = append(a.trans, nil)
	a.csr.Store(nil)
	return s
}

// AddStates adds n fresh non-accepting states.
func (a *NFA) AddStates(n int) {
	for i := 0; i < n; i++ {
		a.AddState(false)
	}
}

// SetInitial marks s as an initial state.
func (a *NFA) SetInitial(s State) { a.initial = append(a.initial, s) }

// Initial returns the initial states.
func (a *NFA) Initial() []State { return a.initial }

// SetAccepting sets the acceptance status of s.
func (a *NFA) SetAccepting(s State, accepting bool) { a.accepting[s] = accepting }

// Accepting reports whether s is accepting.
func (a *NFA) Accepting(s State) bool { return a.accepting[s] }

// AddTransition adds the transition from --sym--> to. Using
// alphabet.Epsilon as sym adds an ε-transition. Duplicate transitions are
// ignored.
func (a *NFA) AddTransition(from State, sym alphabet.Symbol, to State) {
	m := a.trans[from]
	if m == nil {
		m = make(map[alphabet.Symbol][]State)
		a.trans[from] = m
	}
	for _, t := range m[sym] {
		if t == to {
			return
		}
	}
	m[sym] = append(m[sym], to)
	a.csr.Store(nil)
}

// Succ returns the successors of s under sym (no ε-closure applied).
func (a *NFA) Succ(s State, sym alphabet.Symbol) []State {
	return a.trans[s][sym]
}

// HasEpsilon reports whether the automaton has any ε-transition.
func (a *NFA) HasEpsilon() bool {
	for _, m := range a.trans {
		if len(m[alphabet.Epsilon]) > 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy sharing the alphabet (and the immutable
// compiled form, when one has been built).
func (a *NFA) Clone() *NFA {
	c := &NFA{
		ab:        a.ab,
		initial:   append([]State(nil), a.initial...),
		accepting: append([]bool(nil), a.accepting...),
		trans:     make([]map[alphabet.Symbol][]State, len(a.trans)),
	}
	c.csr.Store(a.csr.Load())
	for i, m := range a.trans {
		if m == nil {
			continue
		}
		cm := make(map[alphabet.Symbol][]State, len(m))
		for sym, ts := range m {
			cm[sym] = append([]State(nil), ts...)
		}
		c.trans[i] = cm
	}
	return c
}

// EpsilonClosure returns the ε-closure of the given state set, sorted.
func (a *NFA) EpsilonClosure(set []State) []State {
	seen := make(map[State]bool, len(set))
	stack := append([]State(nil), set...)
	for _, s := range set {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.trans[s][alphabet.Epsilon] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Step returns the ε-closed successor set of the ε-closed set under sym.
func (a *NFA) Step(set []State, sym alphabet.Symbol) []State {
	var next []State
	seen := make(map[State]bool)
	for _, s := range set {
		for _, t := range a.trans[s][sym] {
			if !seen[t] {
				seen[t] = true
				next = append(next, t)
			}
		}
	}
	return a.EpsilonClosure(next)
}

// Accepts reports whether the automaton accepts the finite word w.
func (a *NFA) Accepts(w word.Word) bool {
	set := a.EpsilonClosure(a.initial)
	for _, sym := range w {
		set = a.Step(set, sym)
		if len(set) == 0 {
			return false
		}
	}
	for _, s := range set {
		if a.accepting[s] {
			return true
		}
	}
	return false
}

// ReachedBy returns the ε-closed set of states reached by reading w from
// the initial states. The result is empty when w leaves the automaton.
func (a *NFA) ReachedBy(w word.Word) []State {
	set := a.EpsilonClosure(a.initial)
	for _, sym := range w {
		set = a.Step(set, sym)
		if len(set) == 0 {
			return nil
		}
	}
	return set
}

// Residual returns an NFA for the left quotient cont(w, L(a)) =
// { v | wv ∈ L(a) } (Definition 3.1): the same automaton with initial
// states replaced by the states reached on w.
func (a *NFA) Residual(w word.Word) *NFA {
	c := a.Clone()
	c.initial = a.ReachedBy(w)
	return c
}

// ResidualFrom returns the automaton with the initial states replaced by
// the given set, denoting the residual language of that configuration.
func (a *NFA) ResidualFrom(set []State) *NFA {
	c := a.Clone()
	c.initial = append([]State(nil), set...)
	return c
}

// initialInts converts the initial states to ints for the graph package.
func (a *NFA) initialInts() []int {
	out := make([]int, len(a.initial))
	for i, s := range a.initial {
		out[i] = int(s)
	}
	return out
}

// Trim removes states that are unreachable from the initial states or
// cannot reach an accepting state, renumbering the survivors. The
// language is unchanged. The result may have zero states when the
// language is empty.
func (a *NFA) Trim() *NFA {
	n := a.NumStates()
	g := a.Compiled().Graph()
	reach := graph.ReachableCSR(g, a.initialInts())
	acc := make([]bool, n)
	for i, ok := range a.accepting {
		acc[i] = ok
	}
	coreach := graph.CoReachableCSR(g, acc)
	keep := make([]State, n)
	for i := range keep {
		keep[i] = -1
	}
	out := New(a.ab)
	for i := 0; i < n; i++ {
		if reach[i] && coreach[i] {
			keep[i] = out.AddState(a.accepting[i])
		}
	}
	for i := 0; i < n; i++ {
		if keep[i] < 0 {
			continue
		}
		for sym, ts := range a.trans[i] {
			for _, t := range ts {
				if keep[t] >= 0 {
					out.AddTransition(keep[i], sym, keep[t])
				}
			}
		}
	}
	for _, s := range a.initial {
		if keep[s] >= 0 {
			out.SetInitial(keep[s])
		}
	}
	return out
}

// IsEmpty reports whether the language is empty.
func (a *NFA) IsEmpty() bool {
	n := a.NumStates()
	reach := graph.ReachableCSR(a.Compiled().Graph(), a.initialInts())
	for i := 0; i < n; i++ {
		if reach[i] && a.accepting[i] {
			return false
		}
	}
	return true
}

// ShortestAccepted returns a shortest accepted word, or ok=false when the
// language is empty. ε-transitions contribute no letters.
func (a *NFA) ShortestAccepted() (word.Word, bool) {
	e := a.epsFree()
	n := e.NumStates()
	type entry struct {
		state  State
		parent int
		sym    alphabet.Symbol
	}
	var queue []entry
	seen := make([]bool, n)
	for _, s := range e.initial {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, entry{state: s, parent: -1})
		}
	}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if e.accepting[cur.state] {
			var w word.Word
			for j := i; queue[j].parent != -1; j = queue[j].parent {
				w = append(w, queue[j].sym)
			}
			for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
				w[l], w[r] = w[r], w[l]
			}
			return w, true
		}
		for sym, ts := range e.trans[cur.state] {
			for _, t := range ts {
				if !seen[t] {
					seen[t] = true
					queue = append(queue, entry{state: t, parent: i, sym: sym})
				}
			}
		}
	}
	return nil, false
}

// RemoveEpsilon returns an equivalent automaton without ε-transitions.
func (a *NFA) RemoveEpsilon() *NFA {
	if !a.HasEpsilon() {
		return a.Clone()
	}
	out := New(a.ab)
	n := a.NumStates()
	closures := make([][]State, n)
	for i := 0; i < n; i++ {
		closures[i] = a.EpsilonClosure([]State{State(i)})
		acc := false
		for _, c := range closures[i] {
			if a.accepting[c] {
				acc = true
				break
			}
		}
		out.AddState(acc)
	}
	for i := 0; i < n; i++ {
		for _, c := range closures[i] {
			for sym, ts := range a.trans[c] {
				if sym == alphabet.Epsilon {
					continue
				}
				for _, t := range ts {
					out.AddTransition(State(i), sym, t)
				}
			}
		}
	}
	for _, s := range a.initial {
		out.SetInitial(s)
	}
	return out
}

// epsFree returns the receiver itself when it has no ε-transitions and
// RemoveEpsilon's output otherwise. Unlike RemoveEpsilon, which always
// deep-copies so callers may mutate the result, epsFree is for the
// read-only operation paths (products, inclusion, universality): on
// already ε-free automata they skip the copy entirely, and the CSR
// compile they trigger lands in the original automaton's cache where
// later checks reuse it.
func (a *NFA) epsFree() *NFA {
	if !a.HasEpsilon() {
		return a
	}
	return a.RemoveEpsilon()
}

// MarkAllAccepting returns a copy with every state accepting. Combined
// with Trim this computes pre(L): the language of all prefixes of words
// in L.
func (a *NFA) MarkAllAccepting() *NFA {
	c := a.Clone()
	for i := range c.accepting {
		c.accepting[i] = true
	}
	return c
}

// PrefixLanguage returns an automaton for pre(L(a)), the set of all
// prefixes of accepted words.
func (a *NFA) PrefixLanguage() *NFA {
	// Trim copies, so the ε-free view can be shared with the receiver.
	return a.epsFree().Trim().MarkAllAccepting()
}

// String renders the automaton for debugging.
func (a *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFA(%d states, initial %v)\n", a.NumStates(), a.initial)
	for i := range a.trans {
		mark := " "
		if a.accepting[i] {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s%d:", mark, i)
		syms := make([]alphabet.Symbol, 0, len(a.trans[i]))
		for sym := range a.trans[i] {
			syms = append(syms, sym)
		}
		sort.Slice(syms, func(x, y int) bool { return syms[x] < syms[y] })
		for _, sym := range syms {
			fmt.Fprintf(&b, " %s->%v", a.ab.Name(sym), a.trans[i][sym])
		}
		b.WriteString("\n")
	}
	return b.String()
}
