package nfa

import (
	"math/rand"
	"sync"
	"testing"

	"relive/internal/alphabet"
)

// randomNFA builds a seeded random automaton inline (the gen package
// imports nfa, so the test cannot use it).
func randomNFA(rng *rand.Rand, ab *alphabet.Alphabet, states int) *NFA {
	a := New(ab)
	for i := 0; i < states; i++ {
		a.AddState(rng.Float64() < 0.3)
	}
	for i := 0; i < states; i++ {
		for _, sym := range ab.Symbols() {
			for k := 0; k < 1+rng.Intn(2); k++ {
				a.AddTransition(State(i), sym, State(rng.Intn(states)))
			}
		}
	}
	a.SetInitial(0)
	return a
}

// TestCompiledSharedAcrossGoroutines shares one NFA across many
// goroutines that concurrently force the lazy CSR compilation through
// the exported decision procedures. Before the cache became an atomic
// pointer this was a data race under `go test -race`: the first caller
// published the compiled form while concurrent readers were loading the
// cache field.
func TestCompiledSharedAcrossGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ab := alphabet.New()
	ab.Symbol("a")
	ab.Symbol("b")
	ab.Symbol("c")
	// Kept small: Included runs an on-the-fly subset construction, which
	// is exponential in the worst case, and 16 goroutines run it at once.
	a := randomNFA(rng, ab, 10)
	b := randomNFA(rng, ab, 8)

	const goroutines = 16
	empty := make([]bool, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Every path below reaches Compiled() on the shared automaton.
			empty[g] = a.IsEmpty()
			_ = a.Trim().NumStates()
			if ok, w := Included(a, a); !ok {
				t.Errorf("automaton not included in itself: counterexample %v", w)
			}
			_, _ = Included(a, b)
			if c := a.Compiled(); c.NumStates() != a.NumStates() {
				t.Errorf("compiled form has %d states, automaton has %d", c.NumStates(), a.NumStates())
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if empty[g] != empty[0] {
			t.Fatalf("goroutine %d saw IsEmpty=%v, goroutine 0 saw %v", g, empty[g], empty[0])
		}
	}
}

// TestCompiledInvalidatedAfterMutation pins the staleness check on the
// lazily compiled form: mutating the automaton after a compile must not
// serve the stale CSR.
func TestCompiledInvalidatedAfterMutation(t *testing.T) {
	ab := alphabet.New()
	ab.Symbol("a")
	ab.Symbol("b")
	a := New(ab)
	q0 := a.AddState(false)
	a.SetInitial(q0)
	a.AddTransition(q0, ab.Symbol("a"), q0)
	if !a.IsEmpty() { // compiles: no accepting state yet
		t.Fatal("expected empty before adding an accepting state")
	}
	q1 := a.AddState(true)
	a.AddTransition(q0, ab.Symbol("b"), q1)
	if a.IsEmpty() {
		t.Fatal("stale compiled form served after mutation")
	}
}
