package nfa

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/word"
)

// single returns an NFA accepting exactly the one-letter word.
func single(ab *alphabet.Alphabet, name string) *NFA {
	a := New(ab)
	q0 := a.AddState(false)
	q1 := a.AddState(true)
	a.AddTransition(q0, ab.Symbol(name), q1)
	a.SetInitial(q0)
	return a
}

func TestConcat(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	cat := Concat(single(ab, "a"), single(ab, "b"))
	if !cat.Accepts(word.FromNames(ab, "a", "b")) {
		t.Error("a·b rejected")
	}
	for _, bad := range [][]string{{}, {"a"}, {"b"}, {"b", "a"}, {"a", "b", "a"}} {
		if cat.Accepts(word.FromNames(ab, bad...)) {
			t.Errorf("concat accepts %v", bad)
		}
	}
}

func TestStar(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	star := Star(Concat(single(ab, "a"), single(ab, "b")))
	for _, good := range [][]string{{}, {"a", "b"}, {"a", "b", "a", "b"}} {
		if !star.Accepts(word.FromNames(ab, good...)) {
			t.Errorf("(ab)* rejects %v", good)
		}
	}
	for _, bad := range [][]string{{"a"}, {"b", "a"}, {"a", "b", "a"}} {
		if star.Accepts(word.FromNames(ab, bad...)) {
			t.Errorf("(ab)* accepts %v", bad)
		}
	}
}

func TestReverse(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	rev := Reverse(endsWithAB(ab)) // reversal of Σ*ab is ba·Σ*
	if !rev.Accepts(word.FromNames(ab, "b", "a")) {
		t.Error("reverse rejects ba")
	}
	if !rev.Accepts(word.FromNames(ab, "b", "a", "b", "b")) {
		t.Error("reverse rejects babb")
	}
	if rev.Accepts(word.FromNames(ab, "a", "b")) {
		t.Error("reverse accepts ab")
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	ab := alphabet.FromNames("a", "b")
	syms := ab.Symbols()
	for trial := 0; trial < 40; trial++ {
		a := New(ab)
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			a.AddState(rng.Float64() < 0.5)
		}
		for i := 0; i < n; i++ {
			for _, sym := range syms {
				if rng.Float64() < 0.5 {
					a.AddTransition(State(i), sym, State(rng.Intn(n)))
				}
			}
		}
		a.SetInitial(State(rng.Intn(n)))
		rr := Reverse(Reverse(a))
		for k := 0; k < 30; k++ {
			w := make(word.Word, rng.Intn(6))
			for j := range w {
				w[j] = syms[rng.Intn(len(syms))]
			}
			if a.Accepts(w) != rr.Accepts(w) {
				t.Fatalf("trial %d: reverse∘reverse changed language on %s", trial, w.String(ab))
			}
			// And reversal semantics directly.
			rw := make(word.Word, len(w))
			for j := range w {
				rw[len(w)-1-j] = w[j]
			}
			if a.Accepts(w) != Reverse(a).Accepts(rw) {
				t.Fatalf("trial %d: Reverse wrong on %s", trial, w.String(ab))
			}
		}
	}
}

func TestDifference(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	diff := Difference(evenAs(ab), endsWithAB(ab))
	for _, w := range enumerate(ab, 6) {
		want := evenAs(ab).Accepts(w) && !endsWithAB(ab).Accepts(w)
		if got := diff.Accepts(w); got != want {
			t.Errorf("difference on %s = %v, want %v", w.String(ab), got, want)
		}
	}
}

// TestQuickHopcroftAgreesWithMoore: both minimizers yield the minimal
// automaton; sizes and languages must agree.
func TestQuickHopcroftAgreesWithMoore(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	ab := alphabet.FromNames("a", "b")
	syms := ab.Symbols()
	for trial := 0; trial < 60; trial++ {
		a := New(ab)
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			a.AddState(rng.Float64() < 0.4)
		}
		for i := 0; i < n; i++ {
			for _, sym := range syms {
				for k := 0; k < 2; k++ {
					if rng.Float64() < 0.5 {
						a.AddTransition(State(i), sym, State(rng.Intn(n)))
					}
				}
			}
		}
		a.SetInitial(0)
		d := a.Determinize()
		moore := d.Minimize()
		hopcroft := d.MinimizeHopcroft()
		if moore.NumStates() != hopcroft.NumStates() {
			t.Fatalf("trial %d: Moore %d states, Hopcroft %d states",
				trial, moore.NumStates(), hopcroft.NumStates())
		}
		if !EquivalentDFA(moore, hopcroft) {
			t.Fatalf("trial %d: minimizers disagree on the language", trial)
		}
	}
}

func TestHopcroftEmptyLanguage(t *testing.T) {
	ab := alphabet.FromNames("a")
	d := NewDFA(ab)
	m := d.MinimizeHopcroft()
	if m.NumStates() != 0 {
		t.Errorf("minimal empty DFA has %d states", m.NumStates())
	}
}
