package kernel

import (
	"context"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{Auto, Subset, Antichain} {
		got, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("Parse(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if k, err := Parse(""); err != nil || k != Auto {
		t.Fatalf("Parse(\"\") = %v, %v; want Auto, nil", k, err)
	}
	if _, err := Parse("frobnicate"); err == nil {
		t.Fatal("Parse of unknown kernel did not error")
	}
}

func TestDefaultAndContextOverride(t *testing.T) {
	old := Default()
	defer SetDefault(old)

	SetDefault(Subset)
	if got := FromContext(nil); got != Subset {
		t.Fatalf("FromContext(nil) = %v, want process default Subset", got)
	}
	if got := FromContext(context.Background()); got != Subset {
		t.Fatalf("FromContext(Background) = %v, want Subset", got)
	}
	ctx := NewContext(context.Background(), Antichain)
	if got := FromContext(ctx); got != Antichain {
		t.Fatalf("FromContext(override) = %v, want Antichain", got)
	}
	// NewContext tolerates a nil base, for the no-cancellation paths.
	if got := FromContext(NewContext(nil, Antichain)); got != Antichain {
		t.Fatalf("FromContext(NewContext(nil)) = %v, want Antichain", got)
	}
}
