// Package kernel selects which decision-procedure kernel the inclusion
// and universality checks run on: the classic eagerly-materialized
// routes (on-the-fly subset construction for NFA inclusion, full
// rank-based complementation for Büchi inclusion) or the antichain/lazy
// routes introduced alongside them (simulation-pruned antichain subset
// exploration, lazy rank-based complement search, fused pre(L∩P)
// construction).
//
// The choice is deliberately out-of-band: the decision procedures have
// many entry points and the kernel never changes verdicts, only how
// they are computed. A process-wide default (settable once by a CLI
// flag such as rlcheck/rlbench/rlserve -kernel) is combined with an
// optional per-check override carried on the context, which is how
// relive.WithKernel scopes a choice to one Checker without touching the
// global.
package kernel

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Kind identifies a kernel choice.
type Kind uint8

const (
	// Auto picks per call site: antichain/lazy kernels when the input is
	// large enough for the pruning to pay for its bookkeeping, the
	// classic kernels below that threshold. This is the default.
	Auto Kind = iota
	// Subset forces the classic kernels everywhere: on-the-fly subset
	// construction for NFA inclusion/universality, eager rank-based
	// complementation for Büchi inclusion, and the materialized
	// Intersect→PrefixNFA→Trim chain for pre(L∩P). This is the escape
	// hatch for bisecting a suspected antichain-kernel fault.
	Subset
	// Antichain forces the antichain/lazy kernels everywhere, regardless
	// of input size.
	Antichain
)

// String returns the flag spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Subset:
		return "subset"
	case Antichain:
		return "antichain"
	default:
		return "auto"
	}
}

// Parse reads a -kernel flag value.
func Parse(s string) (Kind, error) {
	switch s {
	case "auto", "":
		return Auto, nil
	case "subset":
		return Subset, nil
	case "antichain":
		return Antichain, nil
	}
	return Auto, fmt.Errorf("kernel: unknown kernel %q (want auto, subset, or antichain)", s)
}

// defaultKind is the process-wide default, read on every check that has
// no context override. Atomic so a server can set it at boot while
// tests exercise checkers concurrently.
var defaultKind atomic.Uint32

// SetDefault sets the process-wide default kernel. Intended for CLI
// flag handling at startup; per-check overrides should use NewContext.
func SetDefault(k Kind) { defaultKind.Store(uint32(k)) }

// Default returns the process-wide default kernel.
func Default() Kind { return Kind(defaultKind.Load()) }

type ctxKey struct{}

// NewContext returns a context carrying k as the kernel override for
// every check run under it. A nil ctx starts from context.Background.
func NewContext(ctx context.Context, k Kind) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, k)
}

// FromContext returns the kernel override carried by ctx, falling back
// to the process-wide default. A nil ctx has no override.
func FromContext(ctx context.Context) Kind {
	if ctx != nil {
		if k, ok := ctx.Value(ctxKey{}).(Kind); ok {
			return k
		}
	}
	return Default()
}

// DefaultSimulationCap is the default bound on the pair space of the
// simulation fixpoints that seed the antichain kernels. Inputs whose
// pair space exceeds the cap skip the preorder and fall back to plain
// ⊆ subsumption; see internal/nfa's simulation seeding for why the
// bound is deliberately small.
const DefaultSimulationCap = 1 << 12

// simCapDefault is the process-wide simulation cap, stored shifted by
// one: 0 means unset (DefaultSimulationCap applies), v > 0 means cap
// v-1 — so a configured cap of 0 (seeding disabled) is distinguishable
// from "never configured". Atomic for the same reason defaultKind is.
var simCapDefault atomic.Int64

// SetSimulationCap sets the process-wide simulation seeding cap: the
// maximum simulation-pair space the antichain kernels may spend on
// preorder seeding. 0 disables seeding entirely (identity subsumption);
// negative values are treated as 0. Intended for CLI flag handling at
// startup; per-check overrides use WithSimulationCap.
func SetSimulationCap(n int) {
	if n < 0 {
		n = 0
	}
	simCapDefault.Store(int64(n) + 1)
}

// SimulationCap returns the process-wide simulation seeding cap.
func SimulationCap() int {
	if v := simCapDefault.Load(); v > 0 {
		return int(v - 1)
	}
	return DefaultSimulationCap
}

type simCapKey struct{}

// WithSimulationCap returns a context carrying n as the simulation
// seeding cap for every check run under it, overriding the process-wide
// value. 0 disables seeding; negative values are treated as 0. A nil
// ctx starts from context.Background.
func WithSimulationCap(ctx context.Context, n int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if n < 0 {
		n = 0
	}
	return context.WithValue(ctx, simCapKey{}, n)
}

// SimulationCapFromContext returns the simulation seeding cap in effect
// under ctx: the context override when present, the process-wide value
// otherwise.
func SimulationCapFromContext(ctx context.Context) int {
	if ctx != nil {
		if n, ok := ctx.Value(simCapKey{}).(int); ok {
			return n
		}
	}
	return SimulationCap()
}
