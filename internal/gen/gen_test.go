package gen

import (
	"math/rand"
	"testing"
)

func TestLetters(t *testing.T) {
	ab := Letters(3)
	if ab.Size() != 3 {
		t.Fatalf("size = %d", ab.Size())
	}
	names := ab.Names()
	want := []string{"a", "b", "c"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	// Names beyond z extend like spreadsheet columns.
	big := Letters(28)
	bigNames := big.Names()
	if bigNames[26] != "aa" || bigNames[27] != "ab" {
		t.Errorf("names[26:28] = %v", bigNames[26:28])
	}
}

func TestNFAShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ab := Letters(2)
	cfg := Config{States: 6, Symbols: 2, Density: 0.8, AcceptRatio: 0.5}
	a := NFA(rng, cfg, ab)
	if a.NumStates() != 6 {
		t.Errorf("states = %d, want 6", a.NumStates())
	}
	if len(a.Initial()) != 1 {
		t.Errorf("initial = %v", a.Initial())
	}
}

func TestDFAShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ab := Letters(2)
	d := DFA(rng, DefaultConfig(), ab)
	if d.NumStates() != DefaultConfig().States {
		t.Errorf("states = %d", d.NumStates())
	}
	if d.Initial() != 0 {
		t.Errorf("initial = %d", d.Initial())
	}
}

func TestWordAndLasso(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ab := Letters(2)
	w := Word(rng, ab, 10)
	if len(w) != 10 {
		t.Errorf("word length %d", len(w))
	}
	for i := 0; i < 50; i++ {
		l := Lasso(rng, ab, 3, 4)
		if !l.Valid() {
			t.Fatal("invalid lasso generated")
		}
		if len(l.Prefix) > 3 || len(l.Loop) > 4 || len(l.Loop) < 1 {
			t.Fatalf("lasso shape out of bounds: %d/%d", len(l.Prefix), len(l.Loop))
		}
	}
}

func TestWordsEnumeration(t *testing.T) {
	ab := Letters(2)
	ws := Words(ab, 3)
	// 1 + 2 + 4 + 8 = 15 words.
	if len(ws) != 15 {
		t.Fatalf("enumerated %d words, want 15", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		k := w.String(ab)
		if seen[k] {
			t.Fatalf("duplicate word %s", k)
		}
		seen[k] = true
	}
}

func TestBuchiShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ab := Letters(2)
	for i := 0; i < 20; i++ {
		b := Buchi(rng, DefaultConfig(), ab)
		if b.NumStates() != DefaultConfig().States {
			t.Fatalf("states = %d", b.NumStates())
		}
		if b.NumAccepting() == 0 {
			t.Fatal("no accepting state forced")
		}
		if len(b.Initial()) != 1 {
			t.Fatalf("initial = %v", b.Initial())
		}
	}
}

func TestSystemShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ab := Letters(3)
	s := System(rng, ab, 7, 0.5)
	if s.NumStates() != 7 {
		t.Fatalf("states = %d", s.NumStates())
	}
	if s.Initial() != 0 {
		t.Fatalf("initial = %d", s.Initial())
	}
}

func TestFormulaDepthAndAtoms(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	atoms := []string{"a", "b"}
	for i := 0; i < 100; i++ {
		f := Formula(rng, atoms, 3)
		if f.Size() > 1<<5 {
			t.Fatalf("formula too large for depth 3: size %d", f.Size())
		}
		for _, a := range f.Atoms() {
			if a != "a" && a != "b" {
				t.Fatalf("unexpected atom %q", a)
			}
		}
		// The full syntax must survive normalization.
		f.Normalize()
	}
}

func TestHomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := Letters(3)
	for i := 0; i < 50; i++ {
		h := Hom(rng, src, 0.5)
		visible := 0
		for _, s := range src.Symbols() {
			if !h.Image(s).IsEpsilon() {
				visible++
			}
		}
		if visible == 0 {
			t.Fatal("Hom hid every letter")
		}
		ih := IdentityHom(rng, src, 0.5)
		for _, s := range src.Symbols() {
			img := ih.Image(s)
			if !img.IsEpsilon() && ih.Dest().Name(img) != src.Name(s) {
				t.Fatalf("IdentityHom renamed %s to %s", src.Name(s), ih.Dest().Name(img))
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	ab := Letters(2)
	a1 := NFA(rand.New(rand.NewSource(7)), DefaultConfig(), ab)
	a2 := NFA(rand.New(rand.NewSource(7)), DefaultConfig(), ab)
	if a1.String() != a2.String() {
		t.Error("same seed produced different automata")
	}
}
