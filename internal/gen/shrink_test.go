package gen

import (
	"math/rand"
	"testing"

	"relive/internal/ltl"
	"relive/internal/ts"
)

func TestShrinkSystemKeepsPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ab := Letters(2)
	sym := ab.Symbols()[0]
	// Predicate: the system still has a self-loop on the initial state
	// under the first letter.
	keep := func(s *ts.System) bool {
		if s.Initial() < 0 {
			return false
		}
		for _, to := range s.Succ(s.Initial(), sym) {
			if to == s.Initial() {
				return true
			}
		}
		return false
	}
	for trial := 0; trial < 10; trial++ {
		sys := System(rng, ab, 6, 0.6)
		sys.AddTransition(sys.Initial(), sym, sys.Initial())
		small := ShrinkSystem(sys, keep)
		if !keep(small) {
			t.Fatal("shrunk system no longer satisfies the predicate")
		}
		// The minimum for this predicate is one state and one edge.
		if small.NumStates() != 1 || len(small.Edges()) != 1 {
			t.Fatalf("trial %d: expected 1 state / 1 edge, got %d states %d edges:\n%s",
				trial, small.NumStates(), len(small.Edges()), small.FormatString())
		}
	}
}

func TestShrinkSystemPanickyPredicate(t *testing.T) {
	ab := Letters(1)
	sys := System(rand.New(rand.NewSource(3)), ab, 4, 0.8)
	calls := 0
	keep := func(s *ts.System) bool {
		calls++
		if s.NumStates() < sys.NumStates() {
			panic("predicate exploded")
		}
		return true
	}
	out := ShrinkSystem(sys, keep)
	if calls == 0 {
		t.Fatal("predicate never called")
	}
	if out.NumStates() != sys.NumStates() {
		t.Fatal("a panicking candidate was accepted")
	}
}

func TestShrinkFormulaFindsCore(t *testing.T) {
	// Predicate: the formula still mentions atom "a" under an Until.
	keep := func(f *ltl.Formula) bool {
		var hasAU func(g *ltl.Formula) bool
		hasAU = func(g *ltl.Formula) bool {
			if g == nil {
				return false
			}
			if g.Op == ltl.OpUntil {
				for _, a := range g.Atoms() {
					if a == "a" {
						return true
					}
				}
			}
			return hasAU(g.Left) || hasAU(g.Right)
		}
		return hasAU(f)
	}
	f := ltl.And(
		ltl.Globally(ltl.Or(ltl.Until(ltl.Atom("b"), ltl.Atom("a")), ltl.Atom("c"))),
		ltl.Eventually(ltl.Atom("d")))
	small := ShrinkFormula(f, keep)
	if !keep(small) {
		t.Fatal("shrunk formula no longer satisfies the predicate")
	}
	// Minimal shape is a bare Until mentioning a: size 3.
	if small.Size() > 3 {
		t.Fatalf("expected minimal Until of size ≤ 3, got %s (size %d)", small, small.Size())
	}
}

func TestShrinkFormulaRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	atoms := []string{"a", "b"}
	for trial := 0; trial < 50; trial++ {
		f := Formula(rng, atoms, 4)
		wantAtom := "a"
		keep := func(g *ltl.Formula) bool {
			for _, a := range g.Atoms() {
				if a == wantAtom {
					return true
				}
			}
			return false
		}
		if !keep(f) {
			continue
		}
		small := ShrinkFormula(f, keep)
		if !keep(small) {
			t.Fatalf("trial %d: predicate lost", trial)
		}
		if small.Size() != 1 {
			t.Fatalf("trial %d: expected the bare atom, got %s", trial, small)
		}
	}
}
