// Package gen provides seeded random generators for automata, transition
// systems, formulas, words and homomorphisms. It backs the property-based
// tests, the differential oracle suite and the scaling benchmarks, so it
// lives outside the _test files.
//
// The word/NFA-level generators live in package genbase and are
// re-exported here; in-package tests of the low-level model packages
// (buchi, hom, ltl) import genbase directly to avoid a test import
// cycle through this package.
package gen

import (
	"fmt"
	"math/rand"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/genbase"
	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/nfa"
	"relive/internal/ts"
	"relive/internal/word"
)

// Config bounds the shape of generated automata.
type Config = genbase.Config

// DefaultConfig is a small, well-connected shape good for property tests.
func DefaultConfig() Config { return genbase.DefaultConfig() }

// Letters returns an alphabet of n letters named a, b, c, ...
func Letters(n int) *alphabet.Alphabet { return genbase.Letters(n) }

// NFA generates a random NFA; see genbase.NFA.
func NFA(rng *rand.Rand, cfg Config, ab *alphabet.Alphabet) *nfa.NFA {
	return genbase.NFA(rng, cfg, ab)
}

// DFA generates a random DFA; see genbase.DFA.
func DFA(rng *rand.Rand, cfg Config, ab *alphabet.Alphabet) *nfa.DFA {
	return genbase.DFA(rng, cfg, ab)
}

// Word generates a random word of the given length.
func Word(rng *rand.Rand, ab *alphabet.Alphabet, length int) word.Word {
	return genbase.Word(rng, ab, length)
}

// Lasso generates a random ultimately periodic ω-word with prefix length
// up to maxPrefix and loop length in [1, maxLoop].
func Lasso(rng *rand.Rand, ab *alphabet.Alphabet, maxPrefix, maxLoop int) word.Lasso {
	return genbase.Lasso(rng, ab, maxPrefix, maxLoop)
}

// Lassos enumerates all ultimately periodic words u·(v)^ω over ab with
// |u| ≤ maxPrefix and 1 ≤ |v| ≤ maxLoop; see genbase.Lassos.
func Lassos(ab *alphabet.Alphabet, maxPrefix, maxLoop int) []word.Lasso {
	return genbase.Lassos(ab, maxPrefix, maxLoop)
}

// Words enumerates all words over ab up to the given length, in
// length-lexicographic order; see genbase.Words.
func Words(ab *alphabet.Alphabet, maxLen int) []word.Word {
	return genbase.Words(ab, maxLen)
}

// Buchi generates a random Büchi automaton. At least one state is
// initial (state 0); states accept with probability AcceptRatio, and at
// least one state is forced accepting so the automaton has a chance of
// a nonempty language.
func Buchi(rng *rand.Rand, cfg Config, ab *alphabet.Alphabet) *buchi.Buchi {
	b := buchi.New(ab)
	for i := 0; i < cfg.States; i++ {
		b.AddState(rng.Float64() < cfg.AcceptRatio)
	}
	b.SetAccepting(buchi.State(rng.Intn(cfg.States)), true)
	syms := ab.Symbols()
	for i := 0; i < cfg.States; i++ {
		for _, sym := range syms {
			for rng.Float64() < cfg.Density {
				b.AddTransition(buchi.State(i), sym, buchi.State(rng.Intn(cfg.States)))
				if rng.Float64() < 0.5 {
					break
				}
			}
		}
	}
	b.SetInitial(0)
	return b
}

// System generates a random transition system with n states over ab.
// State s0 is initial; per (state, symbol) pair up to two transitions
// are added with probability Density each, so most generated systems
// are nondeterministic and some have dead states or no infinite
// behavior at all — both interesting for the decision procedures.
func System(rng *rand.Rand, ab *alphabet.Alphabet, n int, density float64) *ts.System {
	s := ts.New(ab)
	for i := 0; i < n; i++ {
		s.AddState(fmt.Sprintf("s%d", i))
	}
	syms := ab.Symbols()
	for i := 0; i < n; i++ {
		for _, sym := range syms {
			for k := 0; k < 2; k++ {
				if rng.Float64() < density {
					s.AddTransition(ts.State(i), sym, ts.State(rng.Intn(n)))
				}
			}
		}
	}
	s.SetInitial(0)
	return s
}

// Formula generates a random PLTL formula of depth at most depth whose
// atoms are drawn from atoms. All operators of Section 3 are produced,
// including the derived ones (◇, □, B, W), so the normalizer and the
// translation see the full syntax.
func Formula(rng *rand.Rand, atoms []string, depth int) *ltl.Formula {
	if depth <= 0 || rng.Float64() < 0.25 {
		switch rng.Intn(6) {
		case 0:
			return ltl.True()
		case 1:
			return ltl.False()
		default:
			return ltl.Atom(atoms[rng.Intn(len(atoms))])
		}
	}
	l := Formula(rng, atoms, depth-1)
	r := Formula(rng, atoms, depth-1)
	switch rng.Intn(12) {
	case 0:
		return ltl.Not(l)
	case 1:
		return ltl.And(l, r)
	case 2:
		return ltl.Or(l, r)
	case 3:
		return ltl.Implies(l, r)
	case 4:
		return ltl.Iff(l, r)
	case 5:
		return ltl.Next(l)
	case 6:
		return ltl.Until(l, r)
	case 7:
		return ltl.Release(l, r)
	case 8:
		return ltl.Eventually(l)
	case 9:
		return ltl.Globally(l)
	case 10:
		return ltl.Before(l, r)
	default:
		return ltl.WeakUntil(l, r)
	}
}

// Hom generates a random abstracting homomorphism from src onto a fresh
// destination alphabet: every letter is hidden with probability
// hideProb and otherwise mapped to one of up to len(src) abstract
// letters x0, x1, ... (several concrete letters may share an image, the
// interesting case for simplicity of h). At least one letter is kept
// visible so h(x) can be defined on some behavior.
func Hom(rng *rand.Rand, src *alphabet.Alphabet, hideProb float64) *hom.Hom {
	dst := alphabet.New()
	h := hom.New(src, dst)
	syms := src.Symbols()
	visible := false
	for _, s := range syms {
		if rng.Float64() < hideProb {
			h.Set(s, alphabet.Epsilon)
			continue
		}
		visible = true
		h.Set(s, dst.Symbol(fmt.Sprintf("x%d", rng.Intn(len(syms)))))
	}
	if !visible {
		s := syms[rng.Intn(len(syms))]
		h.Set(s, dst.Symbol("x0"))
	}
	return h
}

// IdentityHom generates a random "observe these actions" homomorphism:
// each letter of src is kept under its own name with probability
// 1-hideProb and hidden otherwise. Identity-style homomorphisms are
// more often simple than general random ones, which makes them the
// useful generator for the Theorem 8.2 direction.
func IdentityHom(rng *rand.Rand, src *alphabet.Alphabet, hideProb float64) *hom.Hom {
	var keep []string
	for _, s := range src.Symbols() {
		if rng.Float64() >= hideProb {
			keep = append(keep, src.Name(s))
		}
	}
	if len(keep) == 0 {
		syms := src.Symbols()
		keep = append(keep, src.Name(syms[rng.Intn(len(syms))]))
	}
	return hom.Identity(src, keep...)
}
