package gen

import (
	"relive/internal/ltl"
	"relive/internal/ts"
)

// This file implements the greedy shrinkers the differential harness
// uses to minimize failing (system, property) pairs before reporting
// them. A shrinker takes a predicate that returns true while the
// candidate still exhibits the failure and repeatedly applies the
// smallest-step simplification that keeps the predicate true, until no
// step applies. Predicates must be total: a candidate that makes the
// predicate panic is treated as not reproducing the failure.

// ShrinkSystem greedily minimizes sys while keep(candidate) stays true.
// It tries, in order and to a fixpoint: dropping a single transition,
// then dropping a non-initial state together with all its transitions.
// The returned system still satisfies keep; if no simplification
// applies, the input is returned unchanged.
func ShrinkSystem(sys *ts.System, keep func(*ts.System) bool) *ts.System {
	cur := sys
	for {
		next, ok := shrinkSystemStep(cur, keep)
		if !ok {
			return cur
		}
		cur = next
	}
}

func shrinkSystemStep(sys *ts.System, keep func(*ts.System) bool) (*ts.System, bool) {
	edges := sys.Edges()
	// Drop one transition.
	for drop := range edges {
		cand := rebuildSystem(sys, func(st ts.State) bool { return true },
			func(i int) bool { return i != drop })
		if safeKeep(keep, cand) {
			return cand, true
		}
	}
	// Drop one non-initial state (with every transition touching it).
	for st := 0; st < sys.NumStates(); st++ {
		if ts.State(st) == sys.Initial() {
			continue
		}
		dead := ts.State(st)
		cand := rebuildSystem(sys, func(s ts.State) bool { return s != dead },
			func(i int) bool { return edges[i].From != dead && edges[i].To != dead })
		if safeKeep(keep, cand) {
			return cand, true
		}
	}
	return nil, false
}

// rebuildSystem copies sys keeping only the states and edge indices the
// filters admit. The alphabet is shared; state names are preserved.
func rebuildSystem(sys *ts.System, keepState func(ts.State) bool, keepEdge func(int) bool) *ts.System {
	out := ts.New(sys.Alphabet())
	for i := 0; i < sys.NumStates(); i++ {
		if keepState(ts.State(i)) {
			out.AddState(sys.StateName(ts.State(i)))
		}
	}
	for i, e := range sys.Edges() {
		if !keepEdge(i) || !keepState(e.From) || !keepState(e.To) {
			continue
		}
		from, _ := out.LookupState(sys.StateName(e.From))
		to, _ := out.LookupState(sys.StateName(e.To))
		out.AddTransition(from, e.Sym, to)
	}
	if init, ok := out.LookupState(sys.StateName(sys.Initial())); ok {
		out.SetInitial(init)
	}
	return out
}

func safeKeep(keep func(*ts.System) bool, cand *ts.System) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return keep(cand)
}

// ShrinkFormula greedily minimizes f while keep(candidate) stays true,
// trying constants, then each subformula in place of its parent, then
// recursively shrunk children. The returned formula still satisfies
// keep.
func ShrinkFormula(f *ltl.Formula, keep func(*ltl.Formula) bool) *ltl.Formula {
	cur := f
	for {
		next, ok := shrinkFormulaStep(cur, keep)
		if !ok {
			return cur
		}
		cur = next
	}
}

func shrinkFormulaStep(f *ltl.Formula, keep func(*ltl.Formula) bool) (*ltl.Formula, bool) {
	for _, cand := range formulaShrinks(f) {
		if cand.Size() < f.Size() && safeKeepFormula(keep, cand) {
			return cand, true
		}
	}
	return nil, false
}

// formulaShrinks returns the one-step simplifications of f: the
// constants, each direct subformula, and f with one child replaced by
// one of the child's own one-step simplifications.
func formulaShrinks(f *ltl.Formula) []*ltl.Formula {
	out := []*ltl.Formula{ltl.True(), ltl.False()}
	if f.Left != nil {
		out = append(out, f.Left)
	}
	if f.Right != nil {
		out = append(out, f.Right)
	}
	if f.Left != nil {
		for _, l := range formulaShrinks(f.Left) {
			if l.Size() < f.Left.Size() {
				out = append(out, rebuildFormula(f, l, f.Right))
			}
		}
	}
	if f.Right != nil {
		for _, r := range formulaShrinks(f.Right) {
			if r.Size() < f.Right.Size() {
				out = append(out, rebuildFormula(f, f.Left, r))
			}
		}
	}
	return out
}

func rebuildFormula(f, left, right *ltl.Formula) *ltl.Formula {
	return &ltl.Formula{Op: f.Op, Name: f.Name, Left: left, Right: right}
}

func safeKeepFormula(keep func(*ltl.Formula) bool, cand *ltl.Formula) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return keep(cand)
}
