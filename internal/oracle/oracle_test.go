package oracle_test

import (
	"testing"

	"relive/internal/buchi"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/oracle"
	"relive/internal/paper"
	"relive/internal/ts"
	"relive/internal/word"
)

// Hand-built sanity checks of the oracle itself. The oracle is the
// judge of internal/core, so these pin it against examples small enough
// to verify by eye, plus the paper's own figures.

func twoLetterBuchi() (*buchi.Buchi, *ltl.Labeling) {
	ab := gen.Letters(2) // a, b
	b := buchi.New(ab)
	s0 := b.AddState(false)
	s1 := b.AddState(true)
	a, bb := ab.Symbols()[0], ab.Symbols()[1]
	// Accepts exactly the words with infinitely many b's.
	b.AddTransition(s0, a, s0)
	b.AddTransition(s0, bb, s1)
	b.AddTransition(s1, a, s0)
	b.AddTransition(s1, bb, s1)
	b.SetInitial(s0)
	return b, ltl.Canonical(ab)
}

func TestAcceptsLassoByEye(t *testing.T) {
	b, _ := twoLetterBuchi()
	ab := b.Alphabet()
	a, bb := ab.Symbols()[0], ab.Symbols()[1]
	cases := []struct {
		l    word.Lasso
		want bool
	}{
		{word.MustLasso(nil, word.Word{bb}), true},               // b^ω
		{word.MustLasso(nil, word.Word{a}), false},               // a^ω
		{word.MustLasso(word.Word{a}, word.Word{a, bb}), true},   // a·(ab)^ω
		{word.MustLasso(word.Word{bb, bb}, word.Word{a}), false}, // bb·a^ω
	}
	for _, c := range cases {
		if got := oracle.AcceptsLasso(b, c.l); got != c.want {
			t.Errorf("AcceptsLasso(%s) = %v, want %v", c.l.String(ab), got, c.want)
		}
	}
}

func TestAcceptsLassoAgreesWithBuchiPackage(t *testing.T) {
	// Randomized pin of the naive membership against the product-based
	// one in package buchi (which core uses for witnesses).
	rng := newRng(11)
	ab := gen.Letters(2)
	for trial := 0; trial < 60; trial++ {
		b := gen.Buchi(rng, gen.Config{States: 3, Density: 0.5, AcceptRatio: 0.4}, ab)
		for i := 0; i < 15; i++ {
			l := gen.Lasso(rng, ab, 2, 3)
			naive := oracle.AcceptsLasso(b, l)
			prod := b.AcceptsLasso(l)
			if naive != prod {
				t.Fatalf("trial %d: membership of %s: oracle %v, buchi %v\n%s",
					trial, l.String(ab), naive, prod, b)
			}
		}
	}
}

func TestIsBehaviorByEye(t *testing.T) {
	ab := gen.Letters(2)
	a, bb := ab.Symbols()[0], ab.Symbols()[1]
	sys := ts.New(ab)
	s0 := sys.AddState("s0")
	s1 := sys.AddState("s1")
	sys.AddTransition(s0, a, s0)
	sys.AddTransition(s0, bb, s1) // s1 is a dead end
	sys.SetInitial(s0)

	if !oracle.IsBehavior(sys, word.MustLasso(nil, word.Word{a})) {
		t.Error("a^ω should be a behavior")
	}
	if oracle.IsBehavior(sys, word.MustLasso(nil, word.Word{bb})) {
		t.Error("b^ω should not be a behavior (dead end after one b)")
	}
	if oracle.IsBehavior(sys, word.MustLasso(word.Word{bb}, word.Word{a})) {
		t.Error("b·a^ω should not be a behavior")
	}
	// pre(lim L): "b" leads only to the dead end, so it is a word of L
	// but not a prefix of any behavior.
	if !sys.AcceptsWord(word.Word{bb}) {
		t.Fatal("b should be a word of the system")
	}
	if oracle.PrefixInBehaviors(sys, word.Word{bb}) {
		t.Error("b is not extendable to an infinite behavior")
	}
	if !oracle.PrefixInBehaviors(sys, word.Word{a, a}) {
		t.Error("aa extends to a^ω")
	}
}

func TestOracleOnPaperFig2(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	ab := sys.Alphabet()
	p := oracle.FromFormula(paper.PropertyInfResults(), nil)

	// The paper's counterexample lock·(request·no·reject)^ω ∈ L_ω \ P.
	l := word.MustLasso(
		word.FromNames(ab, paper.ActLock),
		word.FromNames(ab, paper.ActRequest, paper.ActNo, paper.ActReject),
	)
	bad, err := oracle.ConfirmCounterexample(sys, p, l)
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Error("the paper's Figure 2 counterexample is not confirmed by the oracle")
	}

	// □◇result is a relative liveness property of Figure 2: the bounded
	// enumeration must find no bad prefix.
	holds, w, err := oracle.RelativeLiveness(sys, p, gen.Words(ab, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Errorf("oracle found bad prefix %s on Figure 2 — the paper says relative liveness holds",
			w.String(ab))
	}
}

func TestOracleOnPaperFig3(t *testing.T) {
	sys := paper.Fig3System()
	ab := sys.Alphabet()
	p := oracle.FromFormula(paper.PropertyInfResults(), nil)
	// Figure 3 has a state from which result is unreachable, so relative
	// liveness fails with a short bad prefix.
	holds, w, err := oracle.RelativeLiveness(sys, p, gen.Words(ab, 3))
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Fatal("oracle says relative liveness holds on Figure 3 — the paper says it fails")
	}
	ok, err := oracle.ConfirmBadPrefix(sys, p, w)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("oracle's own bad prefix %s does not confirm", w.String(ab))
	}
}

func TestMachineClosedByEye(t *testing.T) {
	ab := gen.Letters(2)
	a, bb := ab.Symbols()[0], ab.Symbols()[1]
	// L_ω = (a+b)^ω.
	lomega := buchi.New(ab)
	l0 := lomega.AddState(true)
	lomega.AddTransition(l0, a, l0)
	lomega.AddTransition(l0, bb, l0)
	lomega.SetInitial(l0)
	// Λ = a^ω.
	lambda := buchi.New(ab)
	m0 := lambda.AddState(true)
	lambda.AddTransition(m0, a, m0)
	lambda.SetInitial(m0)

	holds, w := oracle.MachineClosed(lomega, lambda, gen.Words(ab, 2))
	if holds {
		t.Fatal("(Σ^ω, a^ω) should not be machine closed: prefix b is not in pre(a^ω)")
	}
	if !oracle.ConfirmClosureBadPrefix(lomega, lambda, w) {
		t.Errorf("bad prefix %s does not confirm", w.String(ab))
	}
	// (a^ω, a^ω) is machine closed.
	if holds, w := oracle.MachineClosed(lambda, lambda, gen.Words(ab, 3)); !holds {
		t.Errorf("(a^ω, a^ω) not machine closed, bad prefix %s", w.String(ab))
	}
}
