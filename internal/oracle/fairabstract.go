package oracle

import (
	"relive/internal/alphabet"
	"relive/internal/hom"
	"relive/internal/ts"
	"relive/internal/word"
)

// Fair-abstract reference: "every fair run of sys whose h-image is
// defined satisfies P", written directly from the definitions of the
// successor paper (Ultes-Nitsche & Wolper, "Checking Properties within
// Fairness and Behavior Abstractions"). Fairness of an ultimately
// periodic run is decided by its own predicate over the trimmed
// system's transitions, the h-image is applied letter by letter from
// Definition 6.1, and property membership goes through
// Property.Satisfies (direct PLTL semantics / naive lasso acceptance).
// Nothing here touches internal/fairness's Streett machinery,
// internal/core, or the compiled kernels.

// FairnessKind is the oracle's own copy of the fairness notions, so the
// reference shares not even the enum with the fast path.
type FairnessKind int

const (
	StronglyFair FairnessKind = iota + 1
	WeaklyFair
)

// EdgeLasso is an ultimately periodic run given as edges.
type EdgeLasso struct {
	Prefix []ts.Edge
	Loop   []ts.Edge
}

// Word returns the action word of the run.
func (el EdgeLasso) Word() word.Lasso {
	prefix := make(word.Word, len(el.Prefix))
	for i, e := range el.Prefix {
		prefix[i] = e.Sym
	}
	loop := make(word.Word, len(el.Loop))
	for i, e := range el.Loop {
		loop[i] = e.Sym
	}
	return word.MustLasso(prefix, loop)
}

// trimmedEdges returns the transitions surviving the trim — reachable
// from the initial state with both endpoints alive. Only these carry
// fairness obligations: a transition that no infinite run can ever take
// (or reach) is vacuously ignored by every fairness notion.
func trimmedEdges(sys *ts.System) []ts.Edge {
	if sys.Initial() < 0 {
		return nil
	}
	alive := aliveStates(sys)
	n := sys.NumStates()
	reach := make([]bool, n)
	if alive[sys.Initial()] {
		reach[sys.Initial()] = true
	}
	syms := sys.Alphabet().Symbols()
	queue := []ts.State{sys.Initial()}
	for qi := 0; qi < len(queue); qi++ {
		for _, sym := range syms {
			for _, t := range sys.Succ(queue[qi], sym) {
				if alive[t] && !reach[t] {
					reach[t] = true
					queue = append(queue, t)
				}
			}
		}
	}
	var out []ts.Edge
	for _, e := range sys.Edges() {
		if reach[e.From] && alive[e.From] && alive[e.To] {
			out = append(out, e)
		}
	}
	return out
}

// validRun checks that the edge lasso is a path of sys from the initial
// state with a closing nonempty loop.
func validRun(sys *ts.System, el EdgeLasso) bool {
	if len(el.Loop) == 0 || sys.Initial() < 0 {
		return false
	}
	cur := sys.Initial()
	step := func(e ts.Edge) bool {
		if e.From != cur {
			return false
		}
		found := false
		for _, t := range sys.Succ(e.From, e.Sym) {
			if t == e.To {
				found = true
			}
		}
		cur = e.To
		return found
	}
	for _, e := range el.Prefix {
		if !step(e) {
			return false
		}
	}
	loopStart := cur
	for _, e := range el.Loop {
		if !step(e) {
			return false
		}
	}
	return cur == loopStart
}

// isFair decides fairness of the run directly from the definitions,
// with obligations over the trimmed transitions only. Strong transition
// fairness: every obligated transition whose source state is visited
// infinitely often (it is a loop state) is taken infinitely often (it
// is a loop edge). Weak transition fairness: a transition continuously
// enabled from some point on — which with state-based enabledness means
// the loop sits at its source state only — is taken infinitely often.
func isFair(sys *ts.System, el EdgeLasso, kind FairnessKind) bool {
	obligated := trimmedEdges(sys)
	loopStates := map[ts.State]bool{}
	taken := map[ts.Edge]bool{}
	for _, e := range el.Loop {
		loopStates[e.From] = true
		taken[e] = true
	}
	switch kind {
	case StronglyFair:
		for _, e := range obligated {
			if loopStates[e.From] && !taken[e] {
				return false
			}
		}
		return true
	case WeaklyFair:
		if len(loopStates) > 1 {
			return true
		}
		var only ts.State
		for s := range loopStates {
			only = s
		}
		for _, e := range obligated {
			if e.From == only && !taken[e] {
				return false
			}
		}
		return true
	}
	return false
}

// applyHom computes h(u·v^ω) letter by letter per Definition 6.1,
// dropping hidden letters; ok is false when the image is finite (the
// loop maps to ε), in which case the run has no abstract image and
// cannot witness a violation.
func applyHom(h *hom.Hom, l word.Lasso) (word.Lasso, bool) {
	apply := func(w word.Word) word.Word {
		var out word.Word
		for _, sym := range w {
			if img := h.Image(sym); img != alphabet.Epsilon {
				out = append(out, img)
			}
		}
		return out
	}
	prefix, loop := apply(l.Prefix), apply(l.Loop)
	if len(loop) == 0 {
		return word.Lasso{}, false
	}
	return word.MustLasso(prefix, loop), true
}

// enumerateRunLassos lists every edge lasso of sys with at most maxLen
// edges in total, by DFS over paths from the initial state, closing a
// loop at every revisit of an earlier path state. Paths never leave the
// trimmed edge set — a lasso cannot anyway.
func enumerateRunLassos(sys *ts.System, maxLen int) []EdgeLasso {
	if sys.Initial() < 0 {
		return nil
	}
	byState := map[ts.State][]ts.Edge{}
	for _, e := range trimmedEdges(sys) {
		byState[e.From] = append(byState[e.From], e)
	}
	var out []EdgeLasso
	var path []ts.Edge
	states := []ts.State{sys.Initial()}
	var dfs func()
	dfs = func() {
		cur := states[len(states)-1]
		// Close a loop at every earlier occurrence of cur on the path.
		for j, s := range states[:len(states)-1] {
			if s == cur {
				out = append(out, EdgeLasso{
					Prefix: append([]ts.Edge{}, path[:j]...),
					Loop:   append([]ts.Edge{}, path[j:]...),
				})
			}
		}
		if len(path) == maxLen {
			return
		}
		for _, e := range byState[cur] {
			path = append(path, e)
			states = append(states, e.To)
			dfs()
			path = path[:len(path)-1]
			states = states[:len(states)-1]
		}
	}
	dfs()
	return out
}

// FairAbstractViolation searches, over all run lassos up to the bounds,
// for a fair run of sys whose h-image is defined and violates p. A
// found violation is definitive; an empty answer is exhaustive only up
// to the enumeration bound, so the differential suite treats the two
// directions asymmetrically (see ConfirmFairAbstractViolation).
func FairAbstractViolation(sys *ts.System, h *hom.Hom, kind FairnessKind, p Property, b Bounds) (EdgeLasso, bool, error) {
	for _, el := range enumerateRunLassos(sys, b.LassoPrefix+b.LassoLoop) {
		if !isFair(sys, el, kind) {
			continue
		}
		img, ok := applyHom(h, el.Word())
		if !ok {
			continue // image undefined: not a violation
		}
		sat, err := p.Satisfies(h.Dest(), img)
		if err != nil {
			return EdgeLasso{}, false, err
		}
		if !sat {
			return el, true, nil
		}
	}
	return EdgeLasso{}, false, nil
}

// ConfirmFairAbstractViolation exactly verifies a fair-abstract
// witness: the edge lasso is a run of sys, is kind-fair (with
// obligations over the trimmed transitions), has a defined h-image, and
// that image violates p. Unlike FairAbstractViolation this is a
// complete check for the given run.
func ConfirmFairAbstractViolation(sys *ts.System, h *hom.Hom, kind FairnessKind, p Property, el EdgeLasso) (bool, error) {
	if !validRun(sys, el) {
		return false, nil
	}
	if !isFair(sys, el, kind) {
		return false, nil
	}
	img, ok := applyHom(h, el.Word())
	if !ok {
		return false, nil
	}
	sat, err := p.Satisfies(h.Dest(), img)
	if err != nil {
		return false, err
	}
	return !sat, nil
}
