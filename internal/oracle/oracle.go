// Package oracle provides slow, obviously-correct reference
// implementations of the decision problems of Nitsche & Wolper
// (PODC'97), written directly from the paper's definitions: relative
// liveness by bounded enumeration of pre(L_ω) vs pre(L_ω ∩ P)
// (Definition 4.1 via Lemma 4.3), relative safety by the direct
// Definition 4.2 characterization, machine closure per Definition 4.6,
// and naive lasso-membership checks.
//
// The package deliberately shares no decision code with internal/core:
// it never calls core, never uses the compiled CSR kernels, the
// pipeline cache, buchi emptiness/complementation, or package graph.
// Everything is recomputed from first principles with plain maps and a
// textbook two-pass SCC over the public data-structure accessors
// (ts.System.Succ, buchi.Buchi.Succ), so a bug in the optimized
// pipeline cannot hide in its own oracle.
//
// One dependency is unavoidable: a formula-backed property needs an
// automaton to answer ∃-continuation questions ("is there an infinite
// extension of w satisfying φ?"), and the only translation in the tree
// is ltl.TranslateBuchi — the same one core uses. The oracle therefore
// uses the translation only for those continuation questions, while all
// word-level membership checks go through ltl.EvalLasso (a direct
// implementation of the Section 3 semantics), and the differential
// suite pins the translation itself against EvalLasso with the oracle's
// own naive lasso membership as a dedicated metamorphic law.
package oracle

import (
	"fmt"
	"sort"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/ltl"
	"relive/internal/ts"
	"relive/internal/word"
)

// Property mirrors core.Property without sharing its code: an ω-regular
// property given as a PLTL formula plus labeling, or as a Büchi
// automaton. When both a formula and an automaton are set, membership
// checks use the formula (direct semantics) and continuation questions
// use the automaton — the differential suite uses this to translate
// once per pair instead of once per query.
type Property struct {
	Formula *ltl.Formula
	Lab     *ltl.Labeling // nil means the canonical Σ-labeling
	Auto    *buchi.Buchi
}

// FromFormula returns the property of ω-words satisfying f under lab
// (nil lab = canonical Σ-labeling of the checked system's alphabet).
func FromFormula(f *ltl.Formula, lab *ltl.Labeling) Property {
	return Property{Formula: f, Lab: lab}
}

// FromAutomaton returns the property accepted by b.
func FromAutomaton(b *buchi.Buchi) Property { return Property{Auto: b} }

func (p Property) labelingFor(ab *alphabet.Alphabet) *ltl.Labeling {
	if p.Lab != nil {
		return p.Lab
	}
	return ltl.Canonical(ab)
}

// Satisfies reports whether the ultimately periodic word l is in P,
// by direct semantics: ltl.EvalLasso for formulas (the Section 3
// definition applied position by position), or the naive AcceptsLasso
// below for automata. No emptiness constructions are involved.
func (p Property) Satisfies(ab *alphabet.Alphabet, l word.Lasso) (bool, error) {
	switch {
	case p.Formula != nil:
		return ltl.EvalLasso(p.Formula, l, p.labelingFor(ab))
	case p.Auto != nil:
		return AcceptsLasso(p.Auto, l), nil
	}
	return false, fmt.Errorf("oracle: empty property")
}

// automaton returns a Büchi automaton for P, the one place the oracle
// leans on ltl.TranslateBuchi (see the package comment).
func (p Property) automaton(ab *alphabet.Alphabet) (*buchi.Buchi, error) {
	switch {
	case p.Auto != nil:
		return p.Auto, nil
	case p.Formula != nil:
		return ltl.TranslateBuchi(p.Formula, p.labelingFor(ab)), nil
	}
	return nil, fmt.Errorf("oracle: empty property")
}

// Bounds caps the exhaustive enumerations. The defaults keep a 2-letter
// alphabet suite fast while still exercising every shape the small
// random systems can produce.
type Bounds struct {
	WordLen     int // prefix-enumeration depth for pre(...) comparisons
	LassoPrefix int // max prefix length of enumerated lassos
	LassoLoop   int // max loop length of enumerated lassos
}

// DefaultBounds is the shape used by the differential suite.
func DefaultBounds() Bounds { return Bounds{WordLen: 5, LassoPrefix: 2, LassoLoop: 3} }

// ---------------------------------------------------------------------
// Graph core: the oracle's only algorithmic machinery, a plain
// adjacency-list Kosaraju SCC pass shared by every continuation check.

// reachesAcceptingCycle returns, per node of the adjacency-list graph,
// whether a cycle through an accepting node is reachable from it. An
// accepting run of a Büchi-like structure exists from a node iff this
// holds, because in a finite graph "accepting infinitely often" means
// reaching a cycle that contains an accepting node.
func reachesAcceptingCycle(adj [][]int, accepting []bool) []bool {
	n := len(adj)
	// Kosaraju, pass 1: DFS finish order (iterative).
	order := make([]int, 0, n)
	visited := make([]bool, n)
	type frame struct{ v, i int }
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		stack := []frame{{s, 0}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(adj[f.v]) {
				w := adj[f.v][f.i]
				f.i++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, frame{w, 0})
				}
			} else {
				order = append(order, f.v)
				stack = stack[:len(stack)-1]
			}
		}
	}
	rev := make([][]int, n)
	for v, ws := range adj {
		for _, w := range ws {
			rev[w] = append(rev[w], v)
		}
	}
	// Pass 2: components in reverse finish order over the reverse graph.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	ncomp := 0
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		if comp[v] >= 0 {
			continue
		}
		comp[v] = ncomp
		queue := []int{v}
		for qi := 0; qi < len(queue); qi++ {
			for _, w := range rev[queue[qi]] {
				if comp[w] < 0 {
					comp[w] = ncomp
					queue = append(queue, w)
				}
			}
		}
		ncomp++
	}
	// A component carries an accepting cycle iff it is nontrivial (or
	// has a self-loop) and contains an accepting node: inside an SCC
	// every node, in particular the accepting one, lies on a cycle.
	size := make([]int, ncomp)
	hasAcc := make([]bool, ncomp)
	hasLoop := make([]bool, ncomp)
	for v := 0; v < n; v++ {
		size[comp[v]]++
		if accepting[v] {
			hasAcc[comp[v]] = true
		}
		for _, w := range adj[v] {
			if w == v {
				hasLoop[comp[v]] = true
			}
		}
	}
	good := make([]bool, n)
	var seeds []int
	for v := 0; v < n; v++ {
		c := comp[v]
		if hasAcc[c] && (size[c] > 1 || hasLoop[c]) {
			good[v] = true
			seeds = append(seeds, v)
		}
	}
	// Backward closure: everything that can reach a seed.
	for qi := 0; qi < len(seeds); qi++ {
		for _, w := range rev[seeds[qi]] {
			if !good[w] {
				good[w] = true
				seeds = append(seeds, w)
			}
		}
	}
	return good
}

// ---------------------------------------------------------------------
// Naive Büchi primitives.

// stepBuchi advances a Büchi state set by one letter.
func stepBuchi(b *buchi.Buchi, cur map[buchi.State]bool, sym alphabet.Symbol) map[buchi.State]bool {
	next := map[buchi.State]bool{}
	for s := range cur {
		for _, t := range b.Succ(s, sym) {
			next[t] = true
		}
	}
	return next
}

// runBuchi reads w from the initial states.
func runBuchi(b *buchi.Buchi, w word.Word) map[buchi.State]bool {
	cur := map[buchi.State]bool{}
	for _, s := range b.Initial() {
		cur[s] = true
	}
	for _, sym := range w {
		cur = stepBuchi(b, cur, sym)
	}
	return cur
}

// liveBuchiStates returns the states from which an accepting cycle is
// reachable, i.e. the states with an accepting ω-continuation.
func liveBuchiStates(b *buchi.Buchi) []bool {
	n := b.NumStates()
	syms := b.Alphabet().Symbols()
	adj := make([][]int, n)
	acc := make([]bool, n)
	for v := 0; v < n; v++ {
		acc[v] = b.Accepting(buchi.State(v))
		for _, sym := range syms {
			for _, t := range b.Succ(buchi.State(v), sym) {
				adj[v] = append(adj[v], int(t))
			}
		}
	}
	return reachesAcceptingCycle(adj, acc)
}

// AcceptsLasso reports whether b accepts u·v^ω, naively: unroll the
// loop into positions and look, among the (state, loop position) pairs
// reachable after the prefix, for an accepting pair on a cycle. It
// shares nothing with buchi's product-based AcceptsLasso.
func AcceptsLasso(b *buchi.Buchi, l word.Lasso) bool {
	if !l.Valid() {
		return false
	}
	after := runBuchi(b, l.Prefix)
	if len(after) == 0 {
		return false
	}
	L := len(l.Loop)
	n := b.NumStates() * L
	id := func(s buchi.State, pos int) int { return int(s)*L + pos }
	adj := make([][]int, n)
	acc := make([]bool, n)
	for s := 0; s < b.NumStates(); s++ {
		for pos := 0; pos < L; pos++ {
			v := id(buchi.State(s), pos)
			acc[v] = b.Accepting(buchi.State(s))
			for _, t := range b.Succ(buchi.State(s), l.Loop[pos]) {
				adj[v] = append(adj[v], id(t, (pos+1)%L))
			}
		}
	}
	good := reachesAcceptingCycle(adj, acc)
	for s := range after {
		if good[id(s, 0)] {
			return true
		}
	}
	return false
}

// PrefixInOmega reports whether w ∈ pre(L_ω(b)): some run over w ends
// in a state with an accepting ω-continuation.
func PrefixInOmega(b *buchi.Buchi, w word.Word) bool {
	live := liveBuchiStates(b)
	for s := range runBuchi(b, w) {
		if live[s] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Naive system primitives.

// aliveStates computes, as a greatest fixpoint by repeated deletion,
// the states with at least one infinite continuation.
func aliveStates(sys *ts.System) []bool {
	n := sys.NumStates()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	syms := sys.Alphabet().Symbols()
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			has := false
			for _, sym := range syms {
				for _, t := range sys.Succ(ts.State(i), sym) {
					if alive[t] {
						has = true
					}
				}
			}
			if !has {
				alive[i] = false
				changed = true
			}
		}
	}
	return alive
}

// stepSystem advances a system state set by one letter, keeping only
// states the filter admits (nil filter keeps everything).
func stepSystem(sys *ts.System, cur map[ts.State]bool, sym alphabet.Symbol, keep []bool) map[ts.State]bool {
	next := map[ts.State]bool{}
	for s := range cur {
		for _, t := range sys.Succ(s, sym) {
			if keep == nil || keep[t] {
				next[t] = true
			}
		}
	}
	return next
}

func initialSet(sys *ts.System, keep []bool) map[ts.State]bool {
	cur := map[ts.State]bool{}
	if init := sys.Initial(); init >= 0 && (keep == nil || keep[init]) {
		cur[init] = true
	}
	return cur
}

// IsBehavior reports whether u·v^ω ∈ lim(L(sys)) (Definition 6.2), by
// the limit definition itself: every finite prefix must be an action
// sequence of the system (by König's lemma an infinite run then
// exists). The subset simulation over the loop is eventually periodic,
// so the check terminates at the first repeated (loop position, state
// set) signature.
func IsBehavior(sys *ts.System, l word.Lasso) bool {
	if !l.Valid() || sys.Initial() < 0 {
		return false
	}
	cur := initialSet(sys, nil)
	for _, sym := range l.Prefix {
		cur = stepSystem(sys, cur, sym, nil)
		if len(cur) == 0 {
			return false
		}
	}
	seen := map[string]bool{}
	pos := 0
	for {
		sig := fmt.Sprintf("%d|%s", pos, setSig(cur))
		if seen[sig] {
			return true
		}
		seen[sig] = true
		cur = stepSystem(sys, cur, l.Loop[pos], nil)
		if len(cur) == 0 {
			return false
		}
		pos = (pos + 1) % len(l.Loop)
	}
}

// PrefixInBehaviors reports whether w ∈ pre(lim L(sys)): the word is an
// action sequence ending in a state with an infinite continuation.
func PrefixInBehaviors(sys *ts.System, w word.Word) bool {
	if sys.Initial() < 0 {
		return false
	}
	alive := aliveStates(sys)
	cur := initialSet(sys, alive)
	for _, sym := range w {
		cur = stepSystem(sys, cur, sym, alive)
	}
	return len(cur) > 0
}

// ---------------------------------------------------------------------
// Product continuation questions: w ∈ pre(L_ω ∩ P).

// product answers "does some continuation keep us inside L_ω ∩ P?" for
// configurations of the alive system × property automaton cross
// product. The good set is precomputed once: a pair (s, q) is good iff
// from it the product has an infinite path visiting a pa-accepting pair
// infinitely often. Since every alive system state "accepts", the
// system side imposes no extra acceptance. System run and property run
// over a common word are chosen independently, which is why a
// configuration factors into a system set and a property set.
type product struct {
	sys   *ts.System
	alive []bool
	pa    *buchi.Buchi
	good  []bool // indexed s*|Q| + q
}

func newProduct(sys *ts.System, alive []bool, pa *buchi.Buchi) *product {
	ns, nq := sys.NumStates(), pa.NumStates()
	syms := sys.Alphabet().Symbols()
	n := ns * nq
	adj := make([][]int, n)
	acc := make([]bool, n)
	for s := 0; s < ns; s++ {
		if !alive[s] {
			continue
		}
		for q := 0; q < nq; q++ {
			v := s*nq + q
			acc[v] = pa.Accepting(buchi.State(q))
			for _, sym := range syms {
				ss := sys.Succ(ts.State(s), sym)
				if len(ss) == 0 {
					continue
				}
				qs := pa.Succ(buchi.State(q), sym)
				for _, s2 := range ss {
					if !alive[s2] {
						continue
					}
					for _, q2 := range qs {
						adj[v] = append(adj[v], int(s2)*nq+int(q2))
					}
				}
			}
		}
	}
	return &product{sys: sys, alive: alive, pa: pa, good: reachesAcceptingCycle(adj, acc)}
}

// pairConfig is the subset configuration after reading a prefix.
type pairConfig struct {
	sys  map[ts.State]bool
	prop map[buchi.State]bool
}

func (pr *product) initial() pairConfig {
	cfg := pairConfig{sys: initialSet(pr.sys, pr.alive), prop: map[buchi.State]bool{}}
	for _, q := range pr.pa.Initial() {
		cfg.prop[q] = true
	}
	return cfg
}

func (pr *product) step(cfg pairConfig, sym alphabet.Symbol) pairConfig {
	return pairConfig{
		sys:  stepSystem(pr.sys, cfg.sys, sym, pr.alive),
		prop: stepBuchi(pr.pa, cfg.prop, sym),
	}
}

// extendable reports whether some pair of the configuration is good.
func (pr *product) extendable(cfg pairConfig) bool {
	nq := pr.pa.NumStates()
	for s := range cfg.sys {
		for q := range cfg.prop {
			if pr.good[int(s)*nq+int(q)] {
				return true
			}
		}
	}
	return false
}

func (pr *product) after(w word.Word) pairConfig {
	cfg := pr.initial()
	for _, sym := range w {
		cfg = pr.step(cfg, sym)
	}
	return cfg
}

func (p Property) product(sys *ts.System) (*product, error) {
	pa, err := p.automaton(sys.Alphabet())
	if err != nil {
		return nil, err
	}
	return newProduct(sys, aliveStates(sys), pa), nil
}

// PrefixInIntersection reports whether w ∈ pre(L_ω ∩ P): some
// continuation x makes w·x a behavior of sys satisfying P.
func PrefixInIntersection(sys *ts.System, p Property, w word.Word) (bool, error) {
	if sys.Initial() < 0 {
		return false, nil
	}
	pr, err := p.product(sys)
	if err != nil {
		return false, err
	}
	return pr.extendable(pr.after(w)), nil
}

// ---------------------------------------------------------------------
// Bounded verdicts.

// RelativeLiveness decides, over the given word enumeration, whether P
// is live relative to sys: Definition 4.1 via the Lemma 4.3
// characterization pre(L_ω) = pre(L_ω ∩ P). Every listed word is
// tested; the first w ∈ pre(L_ω) \ pre(L_ω ∩ P) is returned as the bad
// prefix. A "holds" answer is exhaustive only up to the enumeration
// bound — the differential suite therefore treats it asymmetrically
// (see ConfirmBadPrefix).
func RelativeLiveness(sys *ts.System, p Property, words []word.Word) (bool, word.Word, error) {
	if sys.Initial() < 0 {
		return true, nil, nil
	}
	pr, err := p.product(sys)
	if err != nil {
		return false, nil, err
	}
	for _, w := range words {
		if !PrefixInBehaviors(sys, w) {
			continue
		}
		if !pr.extendable(pr.after(w)) {
			return false, w, nil
		}
	}
	return true, nil, nil
}

// ConfirmBadPrefix exactly verifies a relative-liveness witness:
// w ∈ pre(L_ω) and w ∉ pre(L_ω ∩ P). Unlike the bounded verdicts this
// is a complete check for the given word.
func ConfirmBadPrefix(sys *ts.System, p Property, w word.Word) (bool, error) {
	if !PrefixInBehaviors(sys, w) {
		return false, nil
	}
	in, err := PrefixInIntersection(sys, p, w)
	if err != nil {
		return false, err
	}
	return !in, nil
}

// everyPrefixExtendable reports whether every finite prefix of u·v^ω is
// in pre(L_ω ∩ P). The prefixes induce finitely many (loop position,
// configuration) signatures, so the scan stops at the first repeat.
func everyPrefixExtendable(pr *product, l word.Lasso) bool {
	cfg := pr.initial()
	if !pr.extendable(cfg) {
		return false
	}
	for _, sym := range l.Prefix {
		cfg = pr.step(cfg, sym)
		if !pr.extendable(cfg) {
			return false
		}
	}
	seen := map[string]bool{}
	pos := 0
	for {
		sig := fmt.Sprintf("%d|%s|%s", pos, setSig(cfg.sys), setSig(cfg.prop))
		if seen[sig] {
			return true
		}
		seen[sig] = true
		cfg = pr.step(cfg, l.Loop[pos])
		if !pr.extendable(cfg) {
			return false
		}
		pos = (pos + 1) % len(l.Loop)
	}
}

// ConfirmSafetyViolation exactly verifies a relative-safety witness per
// Definition 4.2: x is a behavior, x ∉ P, and every finite prefix of x
// can be extended to a behavior satisfying P (x is in the closure of
// L_ω ∩ P relative to L_ω).
func ConfirmSafetyViolation(sys *ts.System, p Property, l word.Lasso) (bool, error) {
	if !IsBehavior(sys, l) {
		return false, nil
	}
	sat, err := p.Satisfies(sys.Alphabet(), l)
	if err != nil {
		return false, err
	}
	if sat {
		return false, nil
	}
	pr, err := p.product(sys)
	if err != nil {
		return false, err
	}
	return everyPrefixExtendable(pr, l), nil
}

// RelativeSafety decides, over the given lasso enumeration, whether P
// is safe relative to sys (Definition 4.2): no behavior outside P has
// all its prefixes extendable inside L_ω ∩ P. Only ultimately periodic
// candidates are enumerated, which suffices for ω-regular data but
// makes a "holds" answer bounded, like RelativeLiveness.
func RelativeSafety(sys *ts.System, p Property, lassos []word.Lasso) (bool, word.Lasso, error) {
	if sys.Initial() < 0 {
		return true, word.Lasso{}, nil
	}
	pr, err := p.product(sys)
	if err != nil {
		return false, word.Lasso{}, err
	}
	for _, l := range lassos {
		if !IsBehavior(sys, l) {
			continue
		}
		sat, err := p.Satisfies(sys.Alphabet(), l)
		if err != nil {
			return false, word.Lasso{}, err
		}
		if sat {
			continue
		}
		if everyPrefixExtendable(pr, l) {
			return false, l, nil
		}
	}
	return true, word.Lasso{}, nil
}

// ConfirmCounterexample exactly verifies a satisfaction witness: l is a
// behavior of sys not in P.
func ConfirmCounterexample(sys *ts.System, p Property, l word.Lasso) (bool, error) {
	if !IsBehavior(sys, l) {
		return false, nil
	}
	sat, err := p.Satisfies(sys.Alphabet(), l)
	if err != nil {
		return false, err
	}
	return !sat, nil
}

// Satisfaction decides, over the given lasso enumeration, whether every
// behavior of sys is in P (L_ω ⊆ P, the property of Theorem 4.7).
func Satisfaction(sys *ts.System, p Property, lassos []word.Lasso) (bool, word.Lasso, error) {
	for _, l := range lassos {
		bad, err := ConfirmCounterexample(sys, p, l)
		if err != nil {
			return false, word.Lasso{}, err
		}
		if bad {
			return false, l, nil
		}
	}
	return true, word.Lasso{}, nil
}

// MachineClosed decides, over the given word enumeration, whether
// (L_ω, Λ) is machine closed per Definition 4.6: pre(L_ω) ⊆ pre(Λ).
// The first word in pre(L_ω) \ pre(Λ) is returned as the bad prefix.
func MachineClosed(lomega, lambda *buchi.Buchi, words []word.Word) (bool, word.Word) {
	liveL := liveBuchiStates(lomega)
	liveLam := liveBuchiStates(lambda)
	inPre := func(b *buchi.Buchi, live []bool, w word.Word) bool {
		for s := range runBuchi(b, w) {
			if live[s] {
				return true
			}
		}
		return false
	}
	for _, w := range words {
		if inPre(lomega, liveL, w) && !inPre(lambda, liveLam, w) {
			return false, w
		}
	}
	return true, nil
}

// ConfirmClosureBadPrefix exactly verifies a machine-closure witness:
// w ∈ pre(L_ω) and w ∉ pre(Λ).
func ConfirmClosureBadPrefix(lomega, lambda *buchi.Buchi, w word.Word) bool {
	return PrefixInOmega(lomega, w) && !PrefixInOmega(lambda, w)
}

// ---------------------------------------------------------------------

// setSig renders a state set as a sorted signature for periodicity
// detection; S is ts.State or buchi.State.
func setSig[S ~int](set map[S]bool) string {
	xs := make([]int, 0, len(set))
	for s := range set {
		xs = append(xs, int(s))
	}
	sort.Ints(xs)
	return fmt.Sprint(xs)
}
