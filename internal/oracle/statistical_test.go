package oracle_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"relive/internal/core"
	"relive/internal/fairness"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/oracle"
	"relive/internal/ts"
)

// Differential and metamorphic battery for the statistical engine:
// core.CheckStatistical (uniform random-walk sampling with bottom-SCC
// lasso detection) against the exact fair-satisfaction check
// core.AllFairRunsSatisfy(·, ·, fairness.Strong) — the paper's Section 9
// correspondence: under the uniform scheduler a run almost surely
// settles into a bottom SCC and sweeps it strongly fairly, so "holds
// with probability 1" coincides with "all strongly fair runs satisfy P".
//
// The comparison is asymmetric, and — unlike the confidence interval —
// both directions are exact:
//
//   - exact says Holds → every settled sample's lasso is a strongly
//     fair run (bottom-SCC sweep), so every settled sample must hit and
//     the sampled verdict can never be "fails";
//   - sampled says Fails → the witness must be a genuine behavior of
//     the system violating the property (confirmed independently via
//     oracle.IsBehavior and the direct ltl.EvalLasso semantics), which
//     exactly refutes the exact verdict.
//
// Shares the -seed/-pairs/-quickchecks flags with the main suite.

// statBudget is the per-trial sampling budget: small systems settle
// within a few dozen steps, and 120 walks decide every bottom SCC of a
// ≤7-state graph with overwhelming probability.
var statBudget = core.StatOptions{Samples: 120, Steps: 96, Confidence: 0.99}

// statCase is one generated statistical differential input. The seed is
// drawn once per case so the shrinking predicate replays the identical
// sampling run on every candidate system.
type statCase struct {
	sys  *ts.System
	f    *ltl.Formula
	p    core.Property
	seed int64
	desc string
}

func genStatCase(rng *rand.Rand, shape diffShape) statCase {
	ab := gen.Letters(3)
	n := 3 + rng.Intn(shape.maxStates-2)
	sys := gen.System(rng, ab, n, 0.25+0.35*rng.Float64())
	f := gen.Formula(rng, []string{"a", "b"}, 1+rng.Intn(shape.maxDepth))
	seed := rng.Int63()
	return statCase{
		sys:  sys,
		f:    f,
		p:    core.FromFormula(f, nil),
		seed: seed,
		desc: fmt.Sprintf("formula %s seed %d", f, seed),
	}
}

// diffStatFailure runs the exact-vs-sampled comparison on a candidate
// system and reports the first disagreement, or "". It is both the test
// body and the shrinking predicate (deterministic: the case seed fixes
// the sampling run).
func diffStatFailure(sys *ts.System, c statCase) string {
	exact, _, err := core.AllFairRunsSatisfy(sys, c.p, fairness.Strong)
	if err != nil {
		return fmt.Sprintf("AllFairRunsSatisfy: %v", err)
	}
	o := statBudget
	o.Seed = c.seed
	rep, err := core.CheckStatistical(sys, c.p, o)
	if err != nil {
		return fmt.Sprintf("CheckStatistical: %v", err)
	}

	// Interval sanity on every report.
	if rep.CILow < 0 || rep.CIHigh > 1 || rep.CILow > rep.CIHigh {
		return fmt.Sprintf("malformed interval [%v, %v]", rep.CILow, rep.CIHigh)
	}
	if rep.Settled > 0 && (rep.Estimate < rep.CILow-1e-9 || rep.Estimate > rep.CIHigh+1e-9) {
		return fmt.Sprintf("estimate %v outside [%v, %v]", rep.Estimate, rep.CILow, rep.CIHigh)
	}

	if exact {
		// Every settled sample is a strongly fair run; exact Holds means
		// each of them satisfies the property. The sampled interval must
		// bracket the true probability 1.
		if rep.Verdict == core.StatVerdictFails {
			return fmt.Sprintf("exact says all strongly fair runs satisfy %s, sampler found counterexample %v (%v)^ω",
				c.f, rep.Counterexample, rep.CounterexampleLoop)
		}
		if rep.Hits != rep.Settled {
			return fmt.Sprintf("exact Holds but only %d/%d settled samples hit", rep.Hits, rep.Settled)
		}
		if rep.Settled > 0 && rep.CIHigh != 1 {
			return fmt.Sprintf("all %d settled samples hit but CIHigh = %v", rep.Settled, rep.CIHigh)
		}
	}
	if rep.Verdict == core.StatVerdictFails {
		l, ok := rep.Witness()
		if !ok || !l.Valid() {
			return "fails verdict without a witness lasso"
		}
		if !oracle.IsBehavior(sys, l) {
			return fmt.Sprintf("sampled counterexample %s is not a behavior of the system",
				l.String(sys.Alphabet()))
		}
		sat, err := ltl.EvalLasso(c.f, l, ltl.Canonical(sys.Alphabet()))
		if err != nil {
			return fmt.Sprintf("EvalLasso: %v", err)
		}
		if sat {
			return fmt.Sprintf("sampled counterexample %s satisfies %s", l.String(sys.Alphabet()), c.f)
		}
		if exact {
			return "sampled Fails against exact Holds (confirmed witness — exact check is wrong?)"
		}
	}
	return ""
}

func TestDifferentialStatistical(t *testing.T) {
	shape := defaultShape()
	pairs := *pairsFlag / 2
	if pairs < 200 {
		pairs = 200
	}
	if *quickFlag {
		shape = quickShape()
		pairs *= 4
	}
	rng := newRng(*seedFlag + 14)

	start := time.Now()
	stats := map[string]int{}
	for trial := 0; trial < pairs; trial++ {
		c := genStatCase(rng, shape)
		if msg := diffStatFailure(c.sys, c); msg != "" {
			small := gen.ShrinkSystem(c.sys, func(s *ts.System) bool {
				return diffStatFailure(s, c) != ""
			})
			t.Fatalf("trial %d (seed %d) disagrees: %s\ncase: %s\nshrunk system:\n%s",
				trial, *seedFlag, diffStatFailure(small, c), c.desc, small.FormatString())
		}
		o := statBudget
		o.Seed = c.seed
		rep, _ := core.CheckStatistical(c.sys, c.p, o)
		switch {
		case rep.Vacuous:
			stats["vacuous"]++
		default:
			stats[rep.Verdict]++
		}
	}
	t.Logf("statistical differential: %d trials in %v; verdicts: %v",
		pairs, time.Since(start).Round(time.Millisecond), stats)
	if stats[core.StatVerdictHolds] == 0 || stats[core.StatVerdictFails] == 0 {
		t.Errorf("degenerate verdict mix %v; both holds and fails should be exercised", stats)
	}
}

// TestLawStatisticalSeedDeterminism: the report is a byte-identical
// function of (system, property, seed, samples, steps, confidence) —
// replayed runs and different worker counts marshal to the same JSON.
// This is the contract the serving layer's cache/store/router replay
// rests on.
func TestLawStatisticalSeedDeterminism(t *testing.T) {
	rng := newRng(*seedFlag + 15)
	ab := gen.Letters(3)
	for trial := 0; trial < 40; trial++ {
		sys := gen.System(rng, ab, 3+rng.Intn(4), 0.25+0.35*rng.Float64())
		f := gen.Formula(rng, []string{"a", "b"}, 1+rng.Intn(2))
		o := statBudget
		o.Seed = rng.Int63()
		var base []byte
		for _, workers := range []int{1, 3, 8} {
			o.Workers = workers
			rep, err := core.CheckStatistical(sys, core.FromFormula(f, nil), o)
			if err != nil {
				t.Fatalf("trial %d: CheckStatistical: %v", trial, err)
			}
			got, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = got
			} else if string(got) != string(base) {
				t.Fatalf("trial %d: workers=%d diverged:\n got %s\nwant %s", trial, workers, got, base)
			}
		}
	}
}

// TestLawStatisticalBudgetMonotonicity: the honest form of "more
// samples ⇒ tighter interval". Because sample i's walk depends only on
// (seed, i), a larger budget replays the smaller budget's walks as a
// prefix, so the settled count is non-decreasing in the budget; and on
// exact-Holds systems every settled sample hits, where the
// Clopper–Pearson lower bound (α/2)^(1/settled) is strictly increasing
// in the settled count.
func TestLawStatisticalBudgetMonotonicity(t *testing.T) {
	rng := newRng(*seedFlag + 16)
	ab := gen.Letters(3)
	conclusive := 0
	for trial := 0; trial < 400 && conclusive < 60; trial++ {
		sys := gen.System(rng, ab, 3+rng.Intn(4), 0.25+0.35*rng.Float64())
		f := gen.Formula(rng, []string{"a", "b"}, 1+rng.Intn(2))
		p := core.FromFormula(f, nil)
		exact, _, err := core.AllFairRunsSatisfy(sys, p, fairness.Strong)
		if err != nil || !exact {
			continue
		}
		seed := rng.Int63()
		prevSettled, prevLow := -1, -1.0
		for _, samples := range []int{40, 120, 360} {
			rep, err := core.CheckStatistical(sys, p,
				core.StatOptions{Seed: seed, Samples: samples, Steps: 96, Confidence: 0.99})
			if err != nil {
				t.Fatalf("trial %d: CheckStatistical(%d): %v", trial, samples, err)
			}
			if rep.Vacuous {
				break
			}
			if rep.Hits != rep.Settled {
				t.Fatalf("trial %d: exact Holds but %d/%d hits\n%s", trial, rep.Hits, rep.Settled, sys.FormatString())
			}
			if rep.Settled < prevSettled {
				t.Fatalf("trial %d: settled count shrank %d → %d at budget %d",
					trial, prevSettled, rep.Settled, samples)
			}
			if prevLow >= 0 {
				if rep.CILow < prevLow {
					t.Fatalf("trial %d: all-hits lower bound shrank %v → %v at budget %d",
						trial, prevLow, rep.CILow, samples)
				}
				if rep.Settled > prevSettled && prevSettled > 0 && rep.CILow <= prevLow {
					t.Fatalf("trial %d: settled grew %d → %d but lower bound did not: %v → %v",
						trial, prevSettled, rep.Settled, prevLow, rep.CILow)
				}
			}
			prevSettled, prevLow = rep.Settled, rep.CILow
		}
		if prevSettled > 0 {
			conclusive++
		}
	}
	if conclusive < 60 {
		t.Fatalf("only %d conclusive trials", conclusive)
	}
}

// TestLawStatisticalFunctional: on a functional system (exactly one
// outgoing transition per state) there is exactly one run, it is
// trivially fair, and sampling is exhaustive — the statistical verdict
// must equal the exact fair-satisfaction verdict outright, with a
// degenerate interval on the hit side.
func TestLawStatisticalFunctional(t *testing.T) {
	rng := newRng(*seedFlag + 17)
	ab := gen.Letters(3)
	holds, fails := 0, 0
	for trial := 0; trial < 200; trial++ {
		sys := functionalSystem(rng, ab, 2+rng.Intn(5))
		f := gen.Formula(rng, []string{"a", "b"}, 1+rng.Intn(2))
		p := core.FromFormula(f, nil)
		exact, _, err := core.AllFairRunsSatisfy(sys, p, fairness.Strong)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.CheckStatistical(sys, p,
			core.StatOptions{Seed: int64(trial), Samples: 50, Steps: 64})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Vacuous {
			if !exact {
				t.Fatalf("trial %d: vacuous sampled report but exact says violated\n%s", trial, sys.FormatString())
			}
			continue
		}
		if rep.Settled != rep.Samples {
			t.Fatalf("trial %d: single-run system settled %d/%d samples\n%s",
				trial, rep.Settled, rep.Samples, sys.FormatString())
		}
		want := core.StatVerdictFails
		if exact {
			want = core.StatVerdictHolds
		}
		if rep.Verdict != want {
			t.Fatalf("trial %d: functional law violated: exact=%v sampled=%s\nφ=%s\n%s",
				trial, exact, rep.Verdict, f, sys.FormatString())
		}
		if exact {
			holds++
			if rep.Estimate != 1 || rep.CIHigh != 1 {
				t.Fatalf("trial %d: exhaustive hit run with estimate %v, CIHigh %v", trial, rep.Estimate, rep.CIHigh)
			}
		} else {
			fails++
			if rep.Estimate != 0 || rep.CILow != 0 {
				t.Fatalf("trial %d: exhaustive miss run with estimate %v, CILow %v", trial, rep.Estimate, rep.CILow)
			}
		}
	}
	if holds == 0 || fails == 0 {
		t.Errorf("degenerate mix (holds=%d fails=%d); both sides should be exercised", holds, fails)
	}
}

// TestLawStatisticalVacuous: the sampled check agrees with trimming on
// vacuity — a system without infinite behavior yields a vacuous Holds,
// and a vacuous report never carries samples.
func TestLawStatisticalVacuous(t *testing.T) {
	rng := newRng(*seedFlag + 18)
	ab := gen.Letters(3)
	vacuous := 0
	for trial := 0; trial < 200 && vacuous < 30; trial++ {
		sys := gen.System(rng, ab, 2+rng.Intn(3), 0.15+0.2*rng.Float64())
		f := gen.Formula(rng, []string{"a", "b"}, 1)
		rep, err := core.CheckStatistical(sys, core.FromFormula(f, nil),
			core.StatOptions{Seed: int64(trial), Samples: 20, Steps: 32})
		if err != nil {
			t.Fatal(err)
		}
		_, trimErr := sys.Trim()
		if rep.Vacuous != (trimErr != nil) {
			t.Fatalf("trial %d: vacuous=%v but Trim err=%v\n%s", trial, rep.Vacuous, trimErr, sys.FormatString())
		}
		if rep.Vacuous {
			vacuous++
			if !rep.Holds || rep.Samples != 0 || rep.Verdict != core.StatVerdictHolds {
				t.Fatalf("trial %d: malformed vacuous report %+v", trial, rep)
			}
		}
	}
	if vacuous < 30 {
		t.Fatalf("only %d vacuous systems sampled", vacuous)
	}
}
