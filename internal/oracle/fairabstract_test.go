package oracle_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/core"
	"relive/internal/fairness"
	"relive/internal/gen"
	"relive/internal/hom"
	"relive/internal/kernel"
	"relive/internal/ltl"
	"relive/internal/oracle"
	"relive/internal/ts"
)

// Differential and metamorphic battery for the fair-abstract check:
// core.CheckFairAbstract (trim → h⁻¹(¬P) → kernel pre-filter → Streett
// fair emptiness) against the oracle's bounded enumeration of fair
// lassos, asymmetrically like the main suite — a core Fails is exactly
// confirmed, a core Holds must survive the oracle's exhaustive bounded
// search — plus the named laws relating the new verdict class to the
// existing checks. Shares the -seed/-pairs/-quickchecks flags with
// TestDifferentialCoreVsOracle.

// fairCase is one generated fair-abstract differential input.
type fairCase struct {
	sys     *ts.System
	h       *hom.Hom
	kind    fairness.Kind
	okind   oracle.FairnessKind
	eta     *ltl.Formula
	coreP   core.Property
	oracleP oracle.Property
	desc    string
}

func genFairCase(rng *rand.Rand, src *alphabet.Alphabet) (fairCase, bool) {
	sys := gen.System(rng, src, 2+rng.Intn(4), 0.25+0.4*rng.Float64())
	var h *hom.Hom
	if rng.Intn(2) == 0 {
		h = gen.IdentityHom(rng, src, 0.4)
	} else {
		h = gen.Hom(rng, src, 0.4)
	}
	eta := gen.Formula(rng, h.Dest().Names(), 1+rng.Intn(2))
	pa := ltl.TranslateBuchi(eta, ltl.Canonical(h.Dest()))
	if pa.NumStates() > translationCap {
		return fairCase{}, false
	}
	kind, okind := fairness.Strong, oracle.StronglyFair
	if rng.Intn(2) == 0 {
		kind, okind = fairness.Weak, oracle.WeaklyFair
	}
	return fairCase{
		sys:     sys,
		h:       h,
		kind:    kind,
		okind:   okind,
		eta:     eta,
		coreP:   core.FromFormula(eta, nil),
		oracleP: oracle.Property{Formula: eta, Lab: ltl.Canonical(h.Dest()), Auto: pa},
		desc:    fmt.Sprintf("η=%s h=%s fairness=%s", eta, h, core.FairnessKindName(kind)),
	}, true
}

// diffFairFailure runs the fair-abstract comparison on a candidate
// system and reports the first disagreement, or "". It is both the test
// body and the shrinking predicate.
func diffFairFailure(sys *ts.System, c fairCase, bounds oracle.Bounds) string {
	rep, err := core.CheckFairAbstract(sys, c.h, c.kind, c.coreP)
	if err != nil {
		return fmt.Sprintf("CheckFairAbstract: %v", err)
	}

	// Kernel bit-identity: all three kernels must produce byte-identical
	// reports.
	base, err := json.Marshal(rep)
	if err != nil {
		return fmt.Sprintf("marshal: %v", err)
	}
	for _, k := range []kernel.Kind{kernel.Auto, kernel.Subset, kernel.Antichain} {
		kr, err := core.CheckFairAbstractCtx(kernel.NewContext(nil, k), nil, sys, c.h, c.kind, c.coreP)
		if err != nil {
			return fmt.Sprintf("CheckFairAbstractCtx(%s): %v", k, err)
		}
		kb, err := json.Marshal(kr)
		if err != nil {
			return fmt.Sprintf("marshal(%s): %v", k, err)
		}
		if string(kb) != string(base) {
			return fmt.Sprintf("kernel %s report differs:\n%s\nvs\n%s", k, kb, base)
		}
	}

	if rep.Holds {
		el, found, err := oracle.FairAbstractViolation(sys, c.h, c.okind, c.oracleP, bounds)
		if err != nil {
			return fmt.Sprintf("oracle.FairAbstractViolation: %v", err)
		}
		if found {
			return fmt.Sprintf("core says all fair runs satisfy η through h, oracle found fair violating run %s (%s)^ω",
				wordOf(sys, el.Prefix), wordOf(sys, el.Loop))
		}
		return ""
	}
	run := rep.Witness()
	if run == nil {
		return "core Fails without a witness run"
	}
	el := oracle.EdgeLasso{Prefix: run.Prefix, Loop: run.Loop}
	ok, err := oracle.ConfirmFairAbstractViolation(sys, c.h, c.okind, c.oracleP, el)
	if err != nil {
		return fmt.Sprintf("ConfirmFairAbstractViolation: %v", err)
	}
	if !ok {
		return fmt.Sprintf("core witness %s (%s)^ω not confirmed: not a fair run with a defined h-image violating η",
			wordOf(sys, el.Prefix), wordOf(sys, el.Loop))
	}
	if len(rep.AbstractLoop) == 0 {
		return "failing report without an abstract image"
	}
	return ""
}

func wordOf(sys *ts.System, es []ts.Edge) string {
	out := ""
	for i, e := range es {
		if i > 0 {
			out += " "
		}
		out += sys.Alphabet().Name(e.Sym)
	}
	return out
}

func TestDifferentialFairAbstract(t *testing.T) {
	bounds := oracle.Bounds{WordLen: 5, LassoPrefix: 2, LassoLoop: 4}
	pairs := *pairsFlag
	if *quickFlag {
		pairs *= 4
		bounds.LassoLoop = 5
	}
	rng := newRng(*seedFlag + 9)
	src := gen.Letters(3)

	start := time.Now()
	checked, skipped := 0, 0
	stats := map[string]int{}
	for checked < pairs {
		if skipped > 4*pairs {
			t.Fatalf("too many skipped pairs (%d) — translation cap too tight", skipped)
		}
		c, ok := genFairCase(rng, src)
		if !ok {
			skipped++
			continue
		}
		// Σ'-normal-form rejections depend only on the formula: skip them
		// up front so the shrinker never sees an erroring case.
		if _, err := core.CheckFairAbstract(c.sys, c.h, c.kind, c.coreP); err != nil {
			skipped++
			continue
		}
		if msg := diffFairFailure(c.sys, c, bounds); msg != "" {
			small := gen.ShrinkSystem(c.sys, func(s *ts.System) bool {
				return diffFairFailure(s, c, bounds) != ""
			})
			t.Fatalf("pair %d (seed %d) disagrees: %s\ncase: %s\nshrunk system:\n%s",
				checked, *seedFlag, diffFairFailure(small, c, bounds), c.desc, small.FormatString())
		}
		checked++
		rep, _ := core.CheckFairAbstract(c.sys, c.h, c.kind, c.coreP)
		switch {
		case rep.Vacuous:
			stats["vacuous"]++
		case rep.Holds:
			stats["holds"]++
		default:
			stats["fails"]++
		}
	}
	t.Logf("fair-abstract differential: %d pairs in %v (skipped %d); verdicts: %v",
		checked, time.Since(start).Round(time.Millisecond), skipped, stats)
}

// TestLawFairAbstractIdentityHom: under the identity homomorphism
// (nothing hidden, nothing renamed) the fair-abstract check is exactly
// the plain "all fair runs satisfy P" check.
func TestLawFairAbstractIdentityHom(t *testing.T) {
	rng := newRng(*seedFlag + 10)
	src := gen.Letters(3)
	conclusive := 0
	for trial := 0; trial < 400 && conclusive < 80; trial++ {
		sys := gen.System(rng, src, 2+rng.Intn(4), 0.25+0.4*rng.Float64())
		h := hom.Identity(src, src.Names()...)
		eta := gen.Formula(rng, src.Names(), 1+rng.Intn(2))
		kind := fairness.Strong
		if rng.Intn(2) == 0 {
			kind = fairness.Weak
		}
		rep, err := core.CheckFairAbstract(sys, h, kind, core.FromFormula(eta, nil))
		if err != nil {
			continue
		}
		direct, _, err := core.AllFairRunsSatisfy(sys, core.FromFormula(eta, nil), kind)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Holds != direct {
			t.Fatalf("trial %d: identity-hom law violated: fair-abstract=%v direct=%v\nη=%s %s\n%s",
				trial, rep.Holds, direct, eta, core.FairnessKindName(kind), sys.FormatString())
		}
		conclusive++
	}
	if conclusive < 80 {
		t.Fatalf("only %d conclusive trials", conclusive)
	}
}

// TestLawFairAbstractHideNothing: a homomorphism hiding no letter (but
// possibly renaming and merging) keeps every run's image defined, so
// the fair-abstract verdict equals the plain fair check of η read back
// on the concrete alphabet through the h-labeling λ_{hΣΣ'}.
func TestLawFairAbstractHideNothing(t *testing.T) {
	rng := newRng(*seedFlag + 11)
	src := gen.Letters(3)
	conclusive := 0
	for trial := 0; trial < 400 && conclusive < 80; trial++ {
		sys := gen.System(rng, src, 2+rng.Intn(4), 0.25+0.4*rng.Float64())
		h := gen.Hom(rng, src, 0) // hideProb 0: nothing hidden
		eta := gen.Formula(rng, h.Dest().Names(), 1+rng.Intn(2))
		kind := fairness.Strong
		if rng.Intn(2) == 0 {
			kind = fairness.Weak
		}
		rep, err := core.CheckFairAbstract(sys, h, kind, core.FromFormula(eta, nil))
		if err != nil {
			continue
		}
		direct, _, err := core.AllFairRunsSatisfy(sys, core.FromFormula(eta, h.Labeling()), kind)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Holds != direct {
			t.Fatalf("trial %d: hide-nothing law violated: fair-abstract=%v direct=%v\nη=%s h=%s %s\n%s",
				trial, rep.Holds, direct, eta, h, core.FairnessKindName(kind), sys.FormatString())
		}
		conclusive++
	}
	if conclusive < 80 {
		t.Fatalf("only %d conclusive trials", conclusive)
	}
}

// TestLawFairAbstractTrivialFairness: on a deterministic functional
// system (exactly one outgoing transition per state) every infinite run
// is trivially fair under both notions, so the fair-abstract verdict
// collapses to plain satisfaction through h: lim(L) ∩ h⁻¹(¬η) = ∅.
func TestLawFairAbstractTrivialFairness(t *testing.T) {
	rng := newRng(*seedFlag + 12)
	src := gen.Letters(3)
	conclusive := 0
	for trial := 0; trial < 400 && conclusive < 80; trial++ {
		sys := functionalSystem(rng, src, 2+rng.Intn(5))
		h := gen.Hom(rng, src, 0.4)
		eta := gen.Formula(rng, h.Dest().Names(), 1+rng.Intn(2))
		for _, kind := range []fairness.Kind{fairness.Strong, fairness.Weak} {
			rep, err := core.CheckFairAbstract(sys, h, kind, core.FromFormula(eta, nil))
			if err != nil {
				continue
			}
			trimmed, err := sys.Trim()
			if err != nil {
				if !rep.Holds || !rep.Vacuous {
					t.Fatalf("trial %d: no infinite behavior but report %+v", trial, rep)
				}
				conclusive++
				continue
			}
			behaviors, err := trimmed.Behaviors()
			if err != nil {
				t.Fatal(err)
			}
			notEta := ltl.TranslateNegation(eta, ltl.Canonical(h.Dest()))
			plain := buchi.IntersectEmpty(behaviors, h.InverseImageBuchi(notEta))
			if rep.Holds != plain {
				t.Fatalf("trial %d: trivial-fairness law violated: fair-abstract=%v plain=%v\nη=%s h=%s %s\n%s",
					trial, rep.Holds, plain, eta, h, core.FairnessKindName(kind), sys.FormatString())
			}
			conclusive++
		}
	}
	if conclusive < 80 {
		t.Fatalf("only %d conclusive trials", conclusive)
	}
}

// TestLawFairAbstractMonotoneFairness: strongly fair runs are a subset
// of weakly fair runs, so a verdict that holds under weak fairness must
// hold under strong fairness.
func TestLawFairAbstractMonotoneFairness(t *testing.T) {
	rng := newRng(*seedFlag + 13)
	src := gen.Letters(3)
	conclusive, weakHolds := 0, 0
	for trial := 0; trial < 400 && conclusive < 80; trial++ {
		sys := gen.System(rng, src, 2+rng.Intn(4), 0.25+0.4*rng.Float64())
		var h *hom.Hom
		if rng.Intn(2) == 0 {
			h = gen.IdentityHom(rng, src, 0.4)
		} else {
			h = gen.Hom(rng, src, 0.4)
		}
		eta := gen.Formula(rng, h.Dest().Names(), 1+rng.Intn(2))
		weak, err := core.CheckFairAbstract(sys, h, fairness.Weak, core.FromFormula(eta, nil))
		if err != nil {
			continue
		}
		strong, err := core.CheckFairAbstract(sys, h, fairness.Strong, core.FromFormula(eta, nil))
		if err != nil {
			t.Fatal(err)
		}
		if weak.Holds && !strong.Holds {
			t.Fatalf("trial %d: monotonicity violated: holds under weak but not strong fairness\nη=%s h=%s\n%s",
				trial, eta, h, sys.FormatString())
		}
		conclusive++
		if weak.Holds {
			weakHolds++
		}
	}
	if conclusive < 80 {
		t.Fatalf("only %d conclusive trials", conclusive)
	}
	if weakHolds == 0 {
		t.Error("no weak-Holds cases sampled; the law was tested vacuously")
	}
}

// functionalSystem generates a system with exactly one outgoing
// transition per state — every infinite run is fair under both notions.
func functionalSystem(rng *rand.Rand, ab *alphabet.Alphabet, n int) *ts.System {
	sys := ts.New(ab)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	syms := ab.Names()
	for i := range names {
		sys.AddEdge(names[i], syms[rng.Intn(len(syms))], names[rng.Intn(n)])
	}
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)
	return sys
}
