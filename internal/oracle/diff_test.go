package oracle_test

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"relive/internal/alphabet"
	"relive/internal/core"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/oracle"
	"relive/internal/ts"
	"relive/internal/word"
)

// The differential suite: randomized (system, property) pairs on which
// internal/core's optimized pipeline and internal/oracle's naive
// reference must agree on all three verdicts of the paper —
// satisfaction (L_ω ⊆ P), relative liveness (Def 4.1) and relative
// safety (Def 4.2) — with the serial and the parallel core routes both
// exercised.
//
// The oracle's bounded verdicts are compared asymmetrically:
//
//   - core says Holds  → the oracle's exhaustive bounded search must
//     find no counterexample (any find would be exact, hence a real
//     disagreement);
//   - core says ¬Holds → the oracle must exactly confirm core's typed
//     witness, a complete check for that word/lasso.
//
// Run with a different seed or a longer sweep via:
//
//	go test ./internal/oracle -run Differential -args -seed 7 -pairs 1000
//	go test ./internal/oracle -args -quickchecks
var (
	seedFlag  = flag.Int64("seed", 1, "root seed of the randomized differential suite")
	pairsFlag = flag.Int("pairs", 520, "number of (system, property) pairs per run")
	quickFlag = flag.Bool("quickchecks", false, "longer randomized sweep: 4x pairs and larger shapes")
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// diffShape bounds the generated pairs.
type diffShape struct {
	maxStates    int
	maxDepth     int
	maxAutoState int
	bounds       oracle.Bounds
}

func defaultShape() diffShape {
	return diffShape{maxStates: 6, maxDepth: 3, maxAutoState: 3, bounds: oracle.DefaultBounds()}
}

func quickShape() diffShape {
	return diffShape{maxStates: 7, maxDepth: 3, maxAutoState: 4,
		bounds: oracle.Bounds{WordLen: 6, LassoPrefix: 3, LassoLoop: 3}}
}

// pairCase is one generated differential input. The oracle property
// carries the pre-translated automaton so each pair translates once,
// and, for formula properties, keeps the formula for direct-semantics
// membership checks.
type pairCase struct {
	sys     *ts.System
	coreP   core.Property
	oracleP oracle.Property
	desc    string
}

// translationCap skips pathological tableau blowups: the oracle's
// product is quadratic in the automaton size, and a rare 100+-state
// translation of a depth-3 formula would dominate the suite's runtime
// without adding coverage. Skips are counted and logged.
const translationCap = 64

func genPairCase(rng *rand.Rand, ab *alphabet.Alphabet, shape diffShape) (pairCase, bool) {
	n := 3 + rng.Intn(shape.maxStates-2)
	sys := gen.System(rng, ab, n, 0.25+0.35*rng.Float64())
	if rng.Float64() < 0.7 {
		f := gen.Formula(rng, []string{"a", "b"}, 1+rng.Intn(shape.maxDepth))
		pa := ltl.TranslateBuchi(f, ltl.Canonical(ab))
		if pa.NumStates() > translationCap {
			return pairCase{}, false
		}
		return pairCase{
			sys:     sys,
			coreP:   core.FromFormula(f, nil),
			oracleP: oracle.Property{Formula: f, Auto: pa},
			desc:    fmt.Sprintf("formula %s", f),
		}, true
	}
	cfg := gen.Config{States: 2 + rng.Intn(shape.maxAutoState-1), Density: 0.5, AcceptRatio: 0.5}
	b := gen.Buchi(rng, cfg, ab)
	return pairCase{
		sys:     sys,
		coreP:   core.FromAutomaton(b),
		oracleP: oracle.FromAutomaton(b),
		desc:    fmt.Sprintf("Büchi automaton\n%s", b),
	}, true
}

// diffFailure re-runs every differential comparison on a candidate
// system and reports the first disagreement, or "" when core and oracle
// agree. It is both the test body and the shrinking predicate.
func diffFailure(sys *ts.System, c pairCase, words []word.Word, lassos []word.Lasso) string {
	ab := sys.Alphabet()
	rep, err := core.CheckAll(sys, c.coreP)
	if err != nil {
		return fmt.Sprintf("CheckAll: %v", err)
	}
	repPar, err := core.CheckAllPar(sys, c.coreP, 4)
	if err != nil {
		return fmt.Sprintf("CheckAllPar: %v", err)
	}
	if rep.Satisfied != repPar.Satisfied ||
		rep.RelativeLiveness != repPar.RelativeLiveness ||
		rep.RelativeSafety != repPar.RelativeSafety {
		return fmt.Sprintf("serial/parallel mismatch: serial (sat=%v rl=%v rs=%v) parallel (sat=%v rl=%v rs=%v)",
			rep.Satisfied, rep.RelativeLiveness, rep.RelativeSafety,
			repPar.Satisfied, repPar.RelativeLiveness, repPar.RelativeSafety)
	}

	// Typed witnesses for the oracle's exact confirmations.
	sat, err := core.Satisfies(sys, c.coreP)
	if err != nil {
		return fmt.Sprintf("Satisfies: %v", err)
	}
	rl, err := core.RelativeLiveness(sys, c.coreP)
	if err != nil {
		return fmt.Sprintf("RelativeLiveness: %v", err)
	}
	rs, err := core.RelativeSafety(sys, c.coreP)
	if err != nil {
		return fmt.Sprintf("RelativeSafety: %v", err)
	}
	if sat.Holds != rep.Satisfied || rl.Holds != rep.RelativeLiveness || rs.Holds != rep.RelativeSafety {
		return fmt.Sprintf("CheckAll report disagrees with typed calls: report (sat=%v rl=%v rs=%v) typed (sat=%v rl=%v rs=%v)",
			rep.Satisfied, rep.RelativeLiveness, rep.RelativeSafety, sat.Holds, rl.Holds, rs.Holds)
	}

	// Satisfaction.
	if sat.Holds {
		holds, cex, err := oracle.Satisfaction(sys, c.oracleP, lassos)
		if err != nil {
			return fmt.Sprintf("oracle.Satisfaction: %v", err)
		}
		if !holds {
			return fmt.Sprintf("core says L_ω ⊆ P but oracle found behavior %s ∉ P", cex.String(ab))
		}
	} else {
		ok, err := oracle.ConfirmCounterexample(sys, c.oracleP, sat.Counterexample)
		if err != nil {
			return fmt.Sprintf("ConfirmCounterexample: %v", err)
		}
		if !ok {
			return fmt.Sprintf("core counterexample %s not confirmed: not a behavior outside P",
				sat.Counterexample.String(ab))
		}
	}

	// Relative liveness.
	if rl.Holds {
		holds, w, err := oracle.RelativeLiveness(sys, c.oracleP, words)
		if err != nil {
			return fmt.Sprintf("oracle.RelativeLiveness: %v", err)
		}
		if !holds {
			return fmt.Sprintf("core says relative liveness holds but oracle found bad prefix %s", w.String(ab))
		}
	} else {
		ok, err := oracle.ConfirmBadPrefix(sys, c.oracleP, rl.BadPrefix)
		if err != nil {
			return fmt.Sprintf("ConfirmBadPrefix: %v", err)
		}
		if !ok {
			return fmt.Sprintf("core bad prefix %s not confirmed: not in pre(L_ω) \\ pre(L_ω ∩ P)",
				rl.BadPrefix.String(ab))
		}
	}

	// Relative safety.
	if rs.Holds {
		holds, v, err := oracle.RelativeSafety(sys, c.oracleP, lassos)
		if err != nil {
			return fmt.Sprintf("oracle.RelativeSafety: %v", err)
		}
		if !holds {
			return fmt.Sprintf("core says relative safety holds but oracle found violation %s", v.String(ab))
		}
	} else {
		ok, err := oracle.ConfirmSafetyViolation(sys, c.oracleP, rs.Violation)
		if err != nil {
			return fmt.Sprintf("ConfirmSafetyViolation: %v", err)
		}
		if !ok {
			return fmt.Sprintf("core violation %s not confirmed per Definition 4.2", rs.Violation.String(ab))
		}
	}
	return ""
}

func TestDifferentialCoreVsOracle(t *testing.T) {
	shape := defaultShape()
	pairs := *pairsFlag
	if *quickFlag {
		shape = quickShape()
		pairs *= 4
	}
	rng := newRng(*seedFlag)
	ab := gen.Letters(2)
	words := gen.Words(ab, shape.bounds.WordLen)
	lassos := gen.Lassos(ab, shape.bounds.LassoPrefix, shape.bounds.LassoLoop)

	start := time.Now()
	checked, skipped := 0, 0
	stats := map[string]int{}
	for checked < pairs {
		if skipped > 4*pairs {
			t.Fatalf("too many skipped pairs (%d) — translation cap too tight", skipped)
		}
		c, ok := genPairCase(rng, ab, shape)
		if !ok {
			skipped++
			continue
		}
		if msg := diffFailure(c.sys, c, words, lassos); msg != "" {
			// Minimize before reporting: keep shrinking while the same
			// comparison still disagrees.
			small := gen.ShrinkSystem(c.sys, func(s *ts.System) bool {
				return diffFailure(s, c, words, lassos) != ""
			})
			t.Fatalf("pair %d (seed %d) disagrees: %s\nproperty: %s\nshrunk system:\n%s",
				checked, *seedFlag, diffFailure(small, c, words, lassos), c.desc, small.FormatString())
		}
		checked++
		rep, _ := core.CheckAll(c.sys, c.coreP)
		if rep != nil {
			if rep.Satisfied {
				stats["satisfied"]++
			}
			if rep.RelativeLiveness {
				stats["relative-liveness"]++
			}
			if rep.RelativeSafety {
				stats["relative-safety"]++
			}
		}
	}
	t.Logf("differential suite: %d pairs in %v (skipped %d oversized translations); verdict rates: %v",
		checked, time.Since(start).Round(time.Millisecond), skipped, stats)
}
