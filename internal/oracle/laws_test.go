package oracle_test

import (
	"fmt"
	"math/rand"
	"testing"

	"relive/internal/buchi"
	"relive/internal/core"
	"relive/internal/gen"
	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/oracle"
	"relive/internal/ts"
	"relive/internal/word"
)

// The metamorphic-law table: each theorem of the paper that relates two
// independently computable quantities becomes an executable cross-check
// over randomized inputs. Every law has its own named test so a failure
// points at the broken theorem, not just "the suite".

// lawPair draws a (system, property) pair shaped like the differential
// suite's.
func lawPair(rng *rand.Rand) (*ts.System, core.Property, oracle.Property, string) {
	ab := gen.Letters(2)
	sys := gen.System(rng, ab, 3+rng.Intn(4), 0.25+0.35*rng.Float64())
	if rng.Float64() < 0.7 {
		f := gen.Formula(rng, []string{"a", "b"}, 1+rng.Intn(3))
		return sys, core.FromFormula(f, nil), oracle.FromFormula(f, nil), f.String()
	}
	b := gen.Buchi(rng, gen.Config{States: 2 + rng.Intn(2), Density: 0.5, AcceptRatio: 0.5}, ab)
	return sys, core.FromAutomaton(b), oracle.FromAutomaton(b), fmt.Sprintf("Büchi\n%s", b)
}

// TestLawTheorem47: L_ω ⊆ P ⟺ (P relative liveness ∧ P relative
// safety). The three verdicts are computed by three separate pipelines,
// so the equivalence is a real cross-check, not a tautology.
func TestLawTheorem47(t *testing.T) {
	rng := newRng(101)
	for trial := 0; trial < 200; trial++ {
		sys, p, _, desc := lawPair(rng)
		sat, err := core.Satisfies(sys, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rl, err := core.RelativeLiveness(sys, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rs, err := core.RelativeSafety(sys, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sat.Holds != (rl.Holds && rs.Holds) {
			t.Fatalf("trial %d: Theorem 4.7 violated: sat=%v rl=%v rs=%v\nproperty: %s\nsystem:\n%s",
				trial, sat.Holds, rl.Holds, rs.Holds, desc, sys.FormatString())
		}
		// The conjunction route must agree with the direct check.
		conj, err := core.SatisfiesViaConjunction(sys, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if conj != sat.Holds {
			t.Fatalf("trial %d: SatisfiesViaConjunction=%v, Satisfies=%v\nproperty: %s\nsystem:\n%s",
				trial, conj, sat.Holds, desc, sys.FormatString())
		}
	}
}

// TestLawLemma43Direct: the Lemma 4.3 prefix-language route of
// core.RelativeLiveness agrees with the Definition 4.1 closure route of
// core.RelativeLivenessDirect, and failing verdicts carry witnesses the
// oracle confirms exactly.
func TestLawLemma43Direct(t *testing.T) {
	rng := newRng(102)
	for trial := 0; trial < 150; trial++ {
		sys, p, op, desc := lawPair(rng)
		lemma, err := core.RelativeLiveness(sys, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		direct, err := core.RelativeLivenessDirect(sys, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if lemma.Holds != direct.Holds {
			t.Fatalf("trial %d: Lemma 4.3 route %v vs Definition 4.1 route %v\nproperty: %s\nsystem:\n%s",
				trial, lemma.Holds, direct.Holds, desc, sys.FormatString())
		}
		for _, w := range [][]word.Word{{lemma.BadPrefix}, {direct.BadPrefix}} {
			if lemma.Holds || len(w[0]) == 0 {
				continue
			}
			ok, err := oracle.ConfirmBadPrefix(sys, op, w[0])
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !ok {
				t.Fatalf("trial %d: bad prefix %s not confirmed by the oracle\nproperty: %s\nsystem:\n%s",
					trial, w[0].String(sys.Alphabet()), desc, sys.FormatString())
			}
		}
	}
}

// TestLawLemma44Direct: the Lemma 4.4 route of core.RelativeSafety
// agrees with the Definition 4.2 route of core.RelativeSafetyDirect,
// and violations confirm against the oracle's direct Definition 4.2
// check.
func TestLawLemma44Direct(t *testing.T) {
	rng := newRng(103)
	for trial := 0; trial < 150; trial++ {
		sys, p, op, desc := lawPair(rng)
		lemma, err := core.RelativeSafety(sys, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		direct, err := core.RelativeSafetyDirect(sys, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if lemma.Holds != direct.Holds {
			t.Fatalf("trial %d: Lemma 4.4 route %v vs Definition 4.2 route %v\nproperty: %s\nsystem:\n%s",
				trial, lemma.Holds, direct.Holds, desc, sys.FormatString())
		}
		for _, v := range []word.Lasso{lemma.Violation, direct.Violation} {
			if lemma.Holds || !v.Valid() {
				continue
			}
			ok, err := oracle.ConfirmSafetyViolation(sys, op, v)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !ok {
				t.Fatalf("trial %d: violation %s not confirmed by the oracle's Definition 4.2 check\nproperty: %s\nsystem:\n%s",
					trial, v.String(sys.Alphabet()), desc, sys.FormatString())
			}
		}
	}
}

// TestLawDef46MachineClosure: relative liveness of P on sys is
// equivalent to machine closure of (L_ω, L_ω ∩ P) per Definition 4.6,
// via core.RelativeLivenessViaMachineClosure; and on random Büchi pairs
// (L_ω, Λ ⊆ L_ω) the oracle's bounded pre(L_ω) ⊆ pre(Λ) enumeration
// agrees with core.MachineClosed asymmetrically.
func TestLawDef46MachineClosure(t *testing.T) {
	rng := newRng(104)
	for trial := 0; trial < 120; trial++ {
		sys, p, op, desc := lawPair(rng)
		rl, err := core.RelativeLiveness(sys, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mc, err := core.RelativeLivenessViaMachineClosure(sys, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rl.Holds != mc.Holds {
			t.Fatalf("trial %d: RelativeLiveness=%v but machine-closure route=%v\nproperty: %s\nsystem:\n%s",
				trial, rl.Holds, mc.Holds, desc, sys.FormatString())
		}
		if !mc.Holds {
			ok, err := oracle.ConfirmBadPrefix(sys, op, mc.BadPrefix)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !ok {
				t.Fatalf("trial %d: machine-closure bad prefix %s not confirmed\nproperty: %s\nsystem:\n%s",
					trial, mc.BadPrefix.String(sys.Alphabet()), desc, sys.FormatString())
			}
		}
	}

	// Büchi-level: Λ = L_ω ∩ B for random B guarantees Λ ⊆ L_ω.
	ab := gen.Letters(2)
	words := gen.Words(ab, 5)
	for trial := 0; trial < 120; trial++ {
		lomega := gen.Buchi(rng, gen.Config{States: 3, Density: 0.5, AcceptRatio: 0.5}, ab)
		other := gen.Buchi(rng, gen.Config{States: 2, Density: 0.5, AcceptRatio: 0.5}, ab)
		lambda := buchi.Intersect(lomega, other)
		got, err := core.MachineClosed(lomega, lambda)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Holds {
			holds, w := oracle.MachineClosed(lomega, lambda, words)
			if !holds {
				t.Fatalf("trial %d: core says machine closed, oracle found bad prefix %s\nL_ω:\n%s\nΛ = L_ω ∩:\n%s",
					trial, w.String(ab), lomega, other)
			}
		} else if !oracle.ConfirmClosureBadPrefix(lomega, lambda, got.BadPrefix) {
			t.Fatalf("trial %d: core bad prefix %s not in pre(L_ω) \\ pre(Λ)\nL_ω:\n%s\nΛ = L_ω ∩:\n%s",
				trial, got.BadPrefix.String(ab), lomega, other)
		}
	}
}

// TestLawTranslationAgreesWithEval pins ltl.TranslateBuchi — the one
// construction the oracle shares with core — against the direct
// EvalLasso semantics, judged by the oracle's own naive lasso
// membership rather than buchi's emptiness machinery.
func TestLawTranslationAgreesWithEval(t *testing.T) {
	rng := newRng(105)
	ab := gen.Letters(2)
	lab := ltl.Canonical(ab)
	for trial := 0; trial < 150; trial++ {
		f := gen.Formula(rng, []string{"a", "b"}, 1+rng.Intn(3))
		b := ltl.TranslateBuchi(f, lab)
		for i := 0; i < 12; i++ {
			l := gen.Lasso(rng, ab, 2, 3)
			want, err := ltl.EvalLasso(f, l, lab)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if got := oracle.AcceptsLasso(b, l); got != want {
				small := gen.ShrinkFormula(f, func(g *ltl.Formula) bool {
					w, err := ltl.EvalLasso(g, l, lab)
					return err == nil && oracle.AcceptsLasso(ltl.TranslateBuchi(g, lab), l) != w
				})
				t.Fatalf("trial %d: translation of %s disagrees with EvalLasso on %s (Büchi %v, eval %v)\nshrunk formula: %s",
					trial, f, l.String(ab), got, want, small)
			}
		}
	}
}

// TestLawRbarPreservation: the word-level form of Lemma 7.5 behind
// Theorems 8.2/8.3 — for every concrete x with h(x) defined,
// x ⊨_{λhΣΣ'} R̄(η) ⟺ h(x) ⊨_{λΣ'} η.
func TestLawRbarPreservation(t *testing.T) {
	rng := newRng(106)
	src := gen.Letters(3)
	for trial := 0; trial < 150; trial++ {
		h := gen.Hom(rng, src, 0.4)
		atoms := h.Dest().Names()
		eta := gen.Formula(rng, atoms, 1+rng.Intn(3))
		rbar, err := ltl.Rbar(eta)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 10; i++ {
			x := gen.Lasso(rng, src, 2, 3)
			hx, ok := h.ApplyLasso(x)
			if !ok {
				continue // h(x) finite: the law does not apply
			}
			left, err := ltl.EvalLasso(rbar, x, h.Labeling())
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			right, err := ltl.EvalLasso(eta, hx, ltl.Canonical(h.Dest()))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if left != right {
				t.Fatalf("trial %d: R̄ preservation violated on x=%s (h(x)=%s): R̄(η) %v, η %v\nη = %s\nh = %s",
					trial, x.String(src), hx.String(h.Dest()), left, right, eta, h)
			}
		}
	}
}

// TestLawTheorem82_83Abstraction: the abstract relative-liveness
// verdict under a simple homomorphism must match the direct concrete
// check of R̄(η) (Theorem 8.2: abstract holds ∧ simple ⇒ concrete
// holds; Theorem 8.3: abstract fails ⇒ concrete fails). Cases where
// the {#}*-extension fires are skipped: the theorems as stated assume
// h(L) has no maximal words.
func TestLawTheorem82_83Abstraction(t *testing.T) {
	rng := newRng(107)
	src := gen.Letters(3)
	conclusive := 0
	for trial := 0; trial < 400 && conclusive < 60; trial++ {
		sys := gen.System(rng, src, 3+rng.Intn(3), 0.3+0.3*rng.Float64())
		var h *hom.Hom
		if rng.Float64() < 0.5 {
			h = gen.IdentityHom(rng, src, 0.4)
		} else {
			h = gen.Hom(rng, src, 0.4)
		}
		eta := gen.Formula(rng, h.Dest().Names(), 1+rng.Intn(2))
		report, err := core.VerifyViaAbstraction(sys, h, eta)
		if err != nil {
			continue // empty behaviors or non-Σ'-normal input: law not applicable
		}
		if report.ExtendedMaximal {
			continue
		}
		concrete, err := core.ConcreteProperty(h, eta)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rl, err := core.RelativeLiveness(sys, concrete)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		switch report.Conclusion {
		case core.ConcreteHolds:
			conclusive++
			if !rl.Holds {
				t.Fatalf("trial %d: Theorem 8.2 violated: abstract holds under simple h but concrete R̄(η) fails (bad prefix %s)\nη = %s\nh = %s\nsystem:\n%s",
					trial, rl.BadPrefix.String(src), eta, h, sys.FormatString())
			}
		case core.ConcreteFails:
			conclusive++
			if rl.Holds {
				t.Fatalf("trial %d: Theorem 8.3 violated: abstract fails but concrete R̄(η) holds\nη = %s\nh = %s\nsystem:\n%s",
					trial, eta, h, sys.FormatString())
			}
		}
	}
	if conclusive < 60 {
		t.Fatalf("only %d conclusive abstraction cases in 400 trials — generator shape too restrictive", conclusive)
	}
}
