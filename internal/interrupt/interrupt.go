// Package interrupt provides amortized cooperative-cancellation
// checkpoints for the long-running automaton loops. The decision
// procedures are PSPACE-complete, so any single reachability, product,
// or emptiness loop can run for an unbounded number of iterations; a
// checkpoint inside the loop is the only way a context deadline or a
// disconnected client can actually stop the work. Polling a context on
// every iteration would put a mutex acquisition on the hottest paths,
// so Tick only consults the context once every pollInterval iterations.
package interrupt

import "context"

// pollInterval is the number of Poll calls between real context checks.
// At typical loop costs of tens of nanoseconds per iteration this keeps
// cancellation latency well under a millisecond while making the poll
// overhead unmeasurable.
const pollInterval = 1 << 10

// Tick is a per-loop checkpoint counter. The zero value is ready to
// use; a Tick must not be shared between goroutines.
type Tick struct{ n uint32 }

// Poll reports the context's error once the context is done, checking
// it for real only every pollInterval calls. A nil context never
// reports an error, so loops can thread a Tick unconditionally.
func (t *Tick) Poll(ctx context.Context) error {
	t.n++
	if t.n&(pollInterval-1) != 0 || ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Done reports the context's error immediately (no amortization), for
// checkpoints between phases rather than inside hot loops. A nil
// context never reports an error.
func Done(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
