package core

import (
	"context"
	"fmt"

	"relive/internal/ltl"
	"relive/internal/mc"
	"relive/internal/obs"
	"relive/internal/ts"
	"relive/internal/word"
)

// This file is the Section 9 outlook made executable: a statistical
// relative-liveness check. Under the uniform random scheduler a run of
// a finite-state system almost surely settles into a bottom SCC and
// sweeps it strongly fairly, so "P holds with probability 1" coincides
// with "all strongly fair runs satisfy P" — the fair reading that
// relative liveness properties enjoy on the Theorem 5.1
// implementation (AllFairRunsSatisfy is the exact counterpart the
// differential battery pins this engine against). The engine samples
// that distribution via internal/mc and reports a confidence-interval
// verdict that is never claimed exact; only a sampled counterexample —
// a genuine behavior of the system violating P — is a sound,
// non-statistical "fails".

// StatOptions parameterizes a statistical check. Zero fields take
// defaults (mc.DefaultSamples walks of mc.DefaultSteps steps at
// mc.DefaultConfidence); Seed is used as given, and Workers only
// changes the wall clock, never the report.
type StatOptions struct {
	Seed       int64
	Samples    int
	Steps      int
	Confidence float64
	Workers    int
}

func (o StatOptions) config() mc.Config {
	return mc.Config{
		Seed:       o.Seed,
		Samples:    o.Samples,
		Steps:      o.Steps,
		Confidence: o.Confidence,
		Workers:    o.Workers,
	}.Defaulted()
}

// Statistical verdict labels.
const (
	StatVerdictHolds        = "holds"
	StatVerdictFails        = "fails"
	StatVerdictInconclusive = "inconclusive"
)

// StatisticalReport is the outcome of a statistical check. Statistical
// is always true: a "holds" verdict means every settled sample
// satisfied P and the interval [CILow, CIHigh] bounds the satisfaction
// probability at the configured confidence — it is never an exact
// verdict. A "fails" verdict, by contrast, is sound: the reported
// counterexample is a behavior of the system violating P.
// "inconclusive" means no walk settled into a bottom SCC within the
// step budget (raise Steps). The report is a deterministic function of
// (system, property, seed, samples, steps, confidence) and marshals to
// byte-identical JSON on every replay.
type StatisticalReport struct {
	Property    string `json:"property"`
	States      int    `json:"states"`
	Statistical bool   `json:"statistical"` // always true

	Verdict string `json:"verdict"` // "holds", "fails", or "inconclusive"
	Holds   bool   `json:"holds"`
	Vacuous bool   `json:"vacuous,omitempty"`

	Seed       int64   `json:"seed"`
	Samples    int     `json:"samples"`
	Settled    int     `json:"settled"`
	Hits       int     `json:"hits"`
	Steps      int     `json:"steps"`
	Confidence float64 `json:"confidence"`
	Estimate   float64 `json:"estimate"`
	CILow      float64 `json:"ciLow"`
	CIHigh     float64 `json:"ciHigh"`
	Method     string  `json:"method"` // "clopper-pearson"

	// On a "fails" verdict, the violating sampled behavior (action
	// names) and the sample index that produced it.
	Counterexample     []string `json:"counterexample,omitempty"`
	CounterexampleLoop []string `json:"counterexampleLoop,omitempty"`
	SampleIndex        int      `json:"sampleIndex,omitempty"`

	lasso word.Lasso
}

// Witness returns the violating sampled lasso (symbols over the
// system's alphabet) when the verdict is "fails".
func (r *StatisticalReport) Witness() (word.Lasso, bool) {
	return r.lasso, r.Verdict == StatVerdictFails
}

// CheckStatistical estimates whether almost all runs of sys satisfy p
// by uniform random-walk sampling; see StatisticalReport for the
// verdict semantics.
func CheckStatistical(sys *ts.System, p Property, o StatOptions) (*StatisticalReport, error) {
	return CheckStatisticalRec(nil, sys, p, o)
}

// CheckStatisticalRec is CheckStatistical with the trim phase and the
// sampling sweep reported to rec ("lim(L)" and "mc.sample" spans,
// mc.samples/mc.settled/mc.hits counters).
func CheckStatisticalRec(rec obs.Recorder, sys *ts.System, p Property, o StatOptions) (*StatisticalReport, error) {
	return CheckStatisticalCells(nil, rec, NewSystemCells(sys), p, o)
}

// CheckStatisticalCtx is CheckStatistical with cooperative
// cancellation; the returned error wraps ctx.Err() when cancelled.
func CheckStatisticalCtx(ctx context.Context, rec obs.Recorder, sys *ts.System, p Property, o StatOptions) (*StatisticalReport, error) {
	return CheckStatisticalCells(ctx, rec, NewSystemCells(sys), p, o)
}

// CheckStatisticalCells is CheckStatisticalCtx over a pre-existing
// (possibly cached) system artifact set, so a serving layer shares the
// trimmed system with the other endpoints' checks. Sampling walks the
// *trimmed* system: dead ends are impossible there, and trimming
// preserves behaviors, so sampled counterexamples are behaviors of the
// original system.
func CheckStatisticalCells(ctx context.Context, rec obs.Recorder, sc *SystemCells, p Property, o StatOptions) (*StatisticalReport, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("statistical: %w", err)
	}
	cfg := o.config()
	sys := sc.System()
	eval, err := statEval(sys, p)
	if err != nil {
		return nil, fmt.Errorf("statistical: %w", err)
	}

	sp := obs.StartSpan(rec, "core.CheckStatistical").
		Tag("paper", "Section 9 outlook: almost all computations satisfy the property").
		Int("samples", int64(cfg.Samples)).
		Int("steps", int64(cfg.Steps))
	defer sp.End()

	report := &StatisticalReport{
		Property:    p.String(),
		States:      sys.NumStates(),
		Statistical: true,
		Seed:        cfg.Seed,
		Samples:     cfg.Samples,
		Steps:       cfg.Steps,
		Confidence:  cfg.Confidence,
		Method:      "clopper-pearson",
	}

	trimmed, _, err := sc.lim.get(ctx, rec)
	if err != nil {
		return nil, fmt.Errorf("statistical: %w", err)
	}
	if trimmed == nil {
		// No infinite behavior: every run satisfies P vacuously, and
		// there is nothing to sample.
		report.Verdict = StatVerdictHolds
		report.Holds = true
		report.Vacuous = true
		report.Samples = 0
		report.CIHigh = 1
		sp.Tag("verdict", report.Verdict)
		return report, nil
	}

	target, err := mc.NewSystemTarget(trimmed)
	if err != nil {
		return nil, fmt.Errorf("statistical: %w", err)
	}
	msp := obs.StartSpan(rec, "mc.sample").
		Tag("paper", "Section 9 outlook: uniform-scheduler sampling").
		Int("samples", int64(cfg.Samples)).
		Int("steps", int64(cfg.Steps))
	res, err := mc.Run(ctx, target, cfg, eval)
	if err != nil {
		msp.Tag("aborted", "context")
		msp.End()
		return nil, fmt.Errorf("statistical: %w", err)
	}
	msp.Int("settled", int64(res.Settled))
	msp.Int("hits", int64(res.Hits))
	msp.End()
	obs.Count(rec, "mc.samples", int64(res.Samples))
	obs.Count(rec, "mc.settled", int64(res.Settled))
	obs.Count(rec, "mc.hits", int64(res.Hits))

	report.Settled = res.Settled
	report.Hits = res.Hits
	report.Estimate = res.Estimate
	report.CILow = res.Low
	report.CIHigh = res.High
	switch {
	case res.Counterexample != nil:
		report.Verdict = StatVerdictFails
		report.SampleIndex = res.Counterexample.Index
		report.lasso = res.Counterexample.Lasso.Normalize()
		ab := sys.Alphabet()
		for _, s := range report.lasso.Prefix {
			report.Counterexample = append(report.Counterexample, ab.Name(s))
		}
		for _, s := range report.lasso.Loop {
			report.CounterexampleLoop = append(report.CounterexampleLoop, ab.Name(s))
		}
	case res.Settled == 0:
		report.Verdict = StatVerdictInconclusive
	default:
		report.Verdict = StatVerdictHolds
		report.Holds = true
	}
	sp.Tag("verdict", report.Verdict)
	return report, nil
}

// statEval compiles p into the per-lasso evaluator the sampler calls:
// formula-backed properties evaluate directly (ltl.EvalLasso),
// automaton-backed ones via lasso membership in the automaton. Both
// are pure and safe for concurrent use.
func statEval(sys *ts.System, p Property) (func(word.Lasso) (bool, error), error) {
	if f := p.Formula(); f != nil {
		lab := p.labelingFor(sys.Alphabet())
		return func(l word.Lasso) (bool, error) {
			return ltl.EvalLasso(f, l, lab)
		}, nil
	}
	aut, err := p.Automaton(sys.Alphabet())
	if err != nil {
		return nil, err
	}
	return func(l word.Lasso) (bool, error) {
		return aut.AcceptsLasso(l), nil
	}, nil
}
