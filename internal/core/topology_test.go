package core

import (
	"math/rand"
	"testing"

	"relive/internal/gen"
	"relive/internal/paper"
	"relive/internal/word"
)

// TestQuickTopologicalRoutesAgree cross-validates the Lemma 4.9/4.10
// topological checkers against the Lemma 4.3/4.4 characterizations on
// random systems and properties.
func TestQuickTopologicalRoutesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ab := gen.Letters(2)
	atoms := ab.Names()
	for trial := 0; trial < 40; trial++ {
		sys := randomSystem(rng, ab, 1+rng.Intn(4))
		p := FromFormula(randomPropertyFormula(rng, atoms), nil)

		rl, err := RelativeLiveness(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		rlTop, err := RelativeLivenessTopological(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if rl.Holds != rlTop.Holds {
			t.Fatalf("trial %d: Lemma 4.9 route disagrees: %v vs %v (property %s)\n%s",
				trial, rl.Holds, rlTop.Holds, p, sys.FormatString())
		}

		rs, err := RelativeSafety(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		rsTop, err := RelativeSafetyTopological(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Holds != rsTop.Holds {
			t.Fatalf("trial %d: Lemma 4.10 route disagrees: %v vs %v (property %s)\n%s",
				trial, rs.Holds, rsTop.Holds, p, sys.FormatString())
		}
	}
}

// TestApproachingSequence materializes density on the Figure 2 example:
// the paper's counterexample computation lock·(request·no·reject)^ω is
// approached arbitrarily closely by behaviors satisfying □◇result.
func TestApproachingSequence(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	ab := sys.Alphabet()
	x := word.MustLasso(
		word.FromNames(ab, paper.ActLock),
		word.FromNames(ab, paper.ActRequest, paper.ActNo, paper.ActReject),
	)
	p := FromFormula(paper.PropertyInfResults(), nil)
	const depth = 8
	ys, err := ApproachingSequence(sys, p, x, depth)
	if err != nil {
		t.Fatal(err)
	}
	if len(ys) != depth+1 {
		t.Fatalf("got %d approximants, want %d", len(ys), depth+1)
	}
	beh, err := sys.Behaviors()
	if err != nil {
		t.Fatal(err)
	}
	pa, err := p.Automaton(ab)
	if err != nil {
		t.Fatal(err)
	}
	for k, y := range ys {
		if d := x.CantorDistance(y); d > 1.0/float64(k+1)+1e-12 {
			t.Errorf("approximant %d too far: d = %v > 1/%d", k, d, k+1)
		}
		if !beh.AcceptsLasso(y) {
			t.Errorf("approximant %d is not a behavior", k)
		}
		if !pa.AcceptsLasso(y) {
			t.Errorf("approximant %d does not satisfy □◇result", k)
		}
	}
}

// TestApproachingSequenceFailsWhenNotRL: on Figure 3 the sequence must
// break off at the prefix that kills the property.
func TestApproachingSequenceFailsWhenNotRL(t *testing.T) {
	sys := paper.Fig3System()
	ab := sys.Alphabet()
	x := word.MustLasso(
		word.FromNames(ab, paper.ActLock),
		word.FromNames(ab, paper.ActRequest, paper.ActNo, paper.ActReject),
	)
	p := FromFormula(paper.PropertyInfResults(), nil)
	if _, err := ApproachingSequence(sys, p, x, 8); err == nil {
		t.Error("ApproachingSequence succeeded on a non-relative-liveness property")
	}
}

// TestApproachingSequenceRejectsNonBehavior: x must be a behavior.
func TestApproachingSequenceRejectsNonBehavior(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	ab := sys.Alphabet()
	x := word.MustLasso(nil, word.FromNames(ab, paper.ActResult))
	if _, err := ApproachingSequence(sys, FromFormula(paper.PropertyInfResults(), nil), x, 3); err == nil {
		t.Error("non-behavior accepted")
	}
}
