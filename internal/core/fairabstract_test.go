package core

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/fairness"
	"relive/internal/gen"
	"relive/internal/hom"
	"relive/internal/kernel"
	"relive/internal/ltl"
	"relive/internal/ts"
)

// fairAbstractFixture: s0 cycles a/b; a is kept (as x), b is hidden.
// Every fair run takes both a and b infinitely often, so □◇x holds
// through h for both fairness notions; an unfair run (b^ω) has an
// empty h-image and is excluded anyway.
func fairAbstractFixture(t *testing.T) (*ts.System, *hom.Hom) {
	t.Helper()
	ab := alphabet.FromNames("a", "b")
	sys := ts.New(ab)
	sys.AddEdge("s0", "a", "s0")
	sys.AddEdge("s0", "b", "s0")
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)
	h, err := hom.Parse(ab, "a=>x, b=>")
	if err != nil {
		t.Fatal(err)
	}
	return sys, h
}

func TestCheckFairAbstractHolds(t *testing.T) {
	sys, h := fairAbstractFixture(t)
	for _, kind := range []fairness.Kind{fairness.Strong, fairness.Weak} {
		report, err := CheckFairAbstract(sys, h, kind, FromFormula(ltl.MustParse("G F x"), nil))
		if err != nil {
			t.Fatal(err)
		}
		if !report.Holds || report.Vacuous {
			t.Fatalf("%s: want Holds (non-vacuous), got %+v", FairnessKindName(kind), report)
		}
	}
}

func TestCheckFairAbstractFails(t *testing.T) {
	// Two separate self-loops from the initial state: s0 -a-> p -a-> p
	// and s0 -b-> q -b-> q. The b-branch is a fair run (p's edges are
	// never enabled there) whose image y^ω violates □◇x.
	ab := alphabet.FromNames("a", "b")
	sys := ts.New(ab)
	sys.AddEdge("s0", "a", "p")
	sys.AddEdge("p", "a", "p")
	sys.AddEdge("s0", "b", "q")
	sys.AddEdge("q", "b", "q")
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)
	h, err := hom.Parse(ab, "a=>x, b=>y")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []fairness.Kind{fairness.Strong, fairness.Weak} {
		report, err := CheckFairAbstract(sys, h, kind, FromFormula(ltl.MustParse("G F x"), nil))
		if err != nil {
			t.Fatal(err)
		}
		if report.Holds {
			t.Fatalf("%s: want Fails (the b-branch is fair and maps to y^ω)", FairnessKindName(kind))
		}
		run := report.Witness()
		if run == nil {
			t.Fatal("failing report without witness")
		}
		if err := run.Validate(sys); err != nil {
			t.Fatalf("witness invalid on the original system: %v", err)
		}
		if kind == fairness.Strong && !run.IsStronglyFair(sys) {
			t.Fatal("witness not strongly fair")
		}
		if kind == fairness.Weak && !run.IsWeaklyFair(sys) {
			t.Fatal("witness not weakly fair")
		}
		if len(report.AbstractLoop) == 0 {
			t.Fatal("failing report without abstract image")
		}
	}
}

// TestCheckFairAbstractVacuous: no infinite behavior at all.
func TestCheckFairAbstractVacuous(t *testing.T) {
	ab := alphabet.FromNames("a")
	sys := ts.New(ab)
	sys.AddEdge("s0", "a", "s1") // s1 is a dead end
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)
	h, err := hom.Parse(ab, "a=>x")
	if err != nil {
		t.Fatal(err)
	}
	report, err := CheckFairAbstract(sys, h, fairness.Strong, FromFormula(ltl.MustParse("G F x"), nil))
	if err != nil {
		t.Fatal(err)
	}
	if !report.Holds || !report.Vacuous {
		t.Fatalf("want vacuous Holds, got %+v", report)
	}
}

// TestCheckFairAbstractValidation: bad kind, foreign hom, non-Σ'-normal
// property are rejected.
func TestCheckFairAbstractValidation(t *testing.T) {
	sys, h := fairAbstractFixture(t)
	eta := FromFormula(ltl.MustParse("G F x"), nil)
	if _, err := CheckFairAbstract(sys, h, fairness.Kind(99), eta); err == nil {
		t.Error("unknown fairness kind accepted")
	}
	other := hom.Identity(alphabet.FromNames("a", "b"), "a", "b")
	if _, err := CheckFairAbstract(sys, other, fairness.Strong, eta); err == nil {
		t.Error("hom over a foreign alphabet instance accepted")
	}
	// "a" is a concrete letter, not an abstract one.
	if _, err := CheckFairAbstract(sys, h, fairness.Strong, FromFormula(ltl.MustParse("G F a"), nil)); err == nil {
		t.Error("property over concrete letters accepted")
	}
}

// TestCheckFairAbstractTrimAgreement is the regression for trimming
// happening before fairness evaluation in both paths: on a system with
// a dead-end branch and an unreachable fair component, the fair-abstract
// check under the identity homomorphism must agree with the direct
// fairness.ExistsFairRun answer (satellite: unreachable fair states).
func TestCheckFairAbstractTrimAgreement(t *testing.T) {
	ab := alphabet.FromNames("a", "b", "c")
	sys := ts.New(ab)
	sys.AddEdge("s0", "a", "s0")
	sys.AddEdge("s0", "c", "dead") // trimmed: no obligation
	sys.AddEdge("u0", "b", "u0")   // unreachable fair b-cycle
	init, _ := sys.LookupState("s0")
	sys.SetInitial(init)
	h := hom.Identity(ab, "a", "b", "c")

	for _, tc := range []struct {
		eta  string
		want bool // expected Holds
	}{
		{"G F a", true},  // a^ω is the only fair run
		{"G F b", false}, // …and it violates GFb (u0's cycle must not save it)
		{"F c", false},   // c never occurs on an infinite run
	} {
		for _, kind := range []fairness.Kind{fairness.Strong, fairness.Weak} {
			eta := FromFormula(ltl.MustParse(tc.eta), ltl.Canonical(h.Dest()))
			report, err := CheckFairAbstract(sys, h, kind, eta)
			if err != nil {
				t.Fatal(err)
			}
			if report.Holds != tc.want {
				t.Errorf("%s %s: Holds=%v, want %v", tc.eta, FairnessKindName(kind), report.Holds, tc.want)
			}
			// Direct path must agree: both trim before evaluating fairness.
			direct, run, err := AllFairRunsSatisfy(sys, eta, kind)
			if err != nil {
				t.Fatal(err)
			}
			if direct != report.Holds {
				t.Errorf("%s %s: AllFairRunsSatisfy=%v disagrees with CheckFairAbstract=%v",
					tc.eta, FairnessKindName(kind), direct, report.Holds)
			}
			if run != nil {
				if err := run.Validate(sys); err != nil {
					t.Errorf("%s %s: direct witness invalid: %v", tc.eta, FairnessKindName(kind), err)
				}
			}
		}
	}
}

// TestCheckFairAbstractKernelBitIdentical pins that the three kernels
// produce byte-identical reports on randomized inputs — the pre-filter
// is the only kernel-dispatched stage and only its emptiness feeds the
// verdict.
func TestCheckFairAbstractKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	src := gen.Letters(3)
	kinds := []kernel.Kind{kernel.Auto, kernel.Subset, kernel.Antichain}
	checked := 0
	for trial := 0; trial < 60; trial++ {
		sys := gen.System(rng, src, 2+rng.Intn(4), 0.3+0.4*rng.Float64())
		h := gen.Hom(rng, src, 0.4)
		eta := FromFormula(gen.Formula(rng, h.Dest().Names(), 1+rng.Intn(2)), ltl.Canonical(h.Dest()))
		fkind := fairness.Strong
		if rng.Intn(2) == 0 {
			fkind = fairness.Weak
		}
		var blobs [][]byte
		for _, k := range kinds {
			ctx := kernel.NewContext(context.Background(), k)
			report, err := CheckFairAbstractCtx(ctx, nil, sys, h, fkind, eta)
			if err != nil {
				blobs = append(blobs, []byte("err:"+err.Error()))
				continue
			}
			b, err := json.Marshal(report)
			if err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, b)
		}
		for i := 1; i < len(blobs); i++ {
			if string(blobs[i]) != string(blobs[0]) {
				t.Fatalf("trial %d: kernel %s report differs from %s:\n%s\nvs\n%s\n%s",
					trial, kinds[i], kinds[0], blobs[i], blobs[0], sys.FormatString())
			}
		}
		checked++
	}
	if checked < 40 {
		t.Fatalf("only %d conclusive trials", checked)
	}
}

// TestCheckFairAbstractCancellation: a pre-cancelled context aborts
// with a context error, never a verdict.
func TestCheckFairAbstractCancellation(t *testing.T) {
	sys, h := fairAbstractFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CheckFairAbstractCtx(ctx, nil, sys, h, fairness.Strong,
		FromFormula(ltl.MustParse("G F x"), nil))
	if err == nil {
		t.Fatal("cancelled context produced a verdict")
	}
}
