package core

import (
	"fmt"

	"relive/internal/buchi"
	"relive/internal/ts"
	"relive/internal/word"
)

// SafetyResult is the outcome of a relative-safety check. When the
// property is not a relative safety property, Violation is an ultimately
// periodic behavior that does not satisfy the property although every
// one of its prefixes can be extended to a behavior that does (it lies
// in the limit of pre(L_ω ∩ P)).
type SafetyResult struct {
	Holds     bool
	Violation word.Lasso
}

// RelativeSafety decides whether p is a relative safety property of the
// system's behaviors (Definition 4.2), via the characterization of
// Lemma 4.4:
//
//	L_ω ∩ lim(pre(L_ω ∩ P)) ⊆ P.
//
// The left-hand side is the Büchi product of the behaviors with the
// limit of the prefix language of L_ω ∩ P; inclusion in P is checked by
// intersecting with ¬P (for formulas, the translated negation; for
// automata, the rank-based complement).
func RelativeSafety(sys *ts.System, p Property) (SafetyResult, error) {
	trimmed, err := sys.Trim()
	if err != nil {
		// No infinite behavior: every x ∈ L_ω = ∅ vacuously satisfies
		// Definition 4.2.
		return SafetyResult{Holds: true}, nil
	}
	behaviors, err := trimmed.Behaviors()
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	pa, err := p.Automaton(sys.Alphabet())
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	preLP := buchi.Intersect(behaviors, pa).PrefixNFA().Trim()
	if preLP.NumStates() == 0 {
		// L_ω ∩ P = ∅: its prefix limit is empty and inclusion is trivial.
		return SafetyResult{Holds: true}, nil
	}
	limPre, err := buchi.LimitOfAllAccepting(preLP)
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	lhs := buchi.Intersect(behaviors, limPre)
	notP, err := p.NegationAutomaton(sys.Alphabet())
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	l, found := buchi.Intersect(lhs, notP).AcceptingLasso()
	if found {
		return SafetyResult{Holds: false, Violation: l}, nil
	}
	return SafetyResult{Holds: true}, nil
}

// SatisfactionResult is the outcome of a plain satisfaction check
// L_ω ⊆ P; Counterexample is a behavior outside P when it fails.
type SatisfactionResult struct {
	Holds          bool
	Counterexample word.Lasso
}

// Satisfies decides L_ω ⊆ P (Definition 3.2) directly, by emptiness of
// behaviors ∩ ¬P. Theorem 4.7 states this is equivalent to p being both
// a relative liveness and a relative safety property; the equivalence is
// exercised by the test suite.
func Satisfies(sys *ts.System, p Property) (SatisfactionResult, error) {
	trimmed, err := sys.Trim()
	if err != nil {
		return SatisfactionResult{Holds: true}, nil
	}
	behaviors, err := trimmed.Behaviors()
	if err != nil {
		return SatisfactionResult{}, fmt.Errorf("satisfaction: %w", err)
	}
	notP, err := p.NegationAutomaton(sys.Alphabet())
	if err != nil {
		return SatisfactionResult{}, fmt.Errorf("satisfaction: %w", err)
	}
	l, found := buchi.Intersect(behaviors, notP).AcceptingLasso()
	if found {
		return SatisfactionResult{Holds: false, Counterexample: l}, nil
	}
	return SatisfactionResult{Holds: true}, nil
}

// SatisfiesViaConjunction decides satisfaction through Theorem 4.7: the
// property holds iff it is both a relative liveness and a relative
// safety property. Exposed as an alternative algorithm for
// cross-validation and ablation benchmarks.
func SatisfiesViaConjunction(sys *ts.System, p Property) (bool, error) {
	rl, err := RelativeLiveness(sys, p)
	if err != nil {
		return false, err
	}
	if !rl.Holds {
		return false, nil
	}
	rs, err := RelativeSafety(sys, p)
	if err != nil {
		return false, err
	}
	return rs.Holds, nil
}
