package core

import (
	"fmt"

	"relive/internal/buchi"
	"relive/internal/obs"
	"relive/internal/ts"
	"relive/internal/word"
)

// SafetyResult is the outcome of a relative-safety check. When the
// property is not a relative safety property, Violation is an ultimately
// periodic behavior that does not satisfy the property although every
// one of its prefixes can be extended to a behavior that does (it lies
// in the limit of pre(L_ω ∩ P)).
type SafetyResult struct {
	Holds     bool
	Violation word.Lasso
}

// RelativeSafety decides whether p is a relative safety property of the
// system's behaviors (Definition 4.2), via the characterization of
// Lemma 4.4:
//
//	L_ω ∩ lim(pre(L_ω ∩ P)) ⊆ P.
//
// The left-hand side is the Büchi product of the behaviors with the
// limit of the prefix language of L_ω ∩ P; inclusion in P is checked by
// intersecting with ¬P (for formulas, the translated negation; for
// automata, the rank-based complement).
func RelativeSafety(sys *ts.System, p Property) (SafetyResult, error) {
	return RelativeSafetyRec(nil, sys, p)
}

// RelativeSafetyRec is RelativeSafety with every phase reported to rec:
// the pre(L∩P) product, its limit closure, the negation automaton, and
// the final emptiness check of Lemma 4.4. A nil rec is the
// uninstrumented path.
func RelativeSafetyRec(rec obs.Recorder, sys *ts.System, p Property) (SafetyResult, error) {
	sp := obs.StartSpan(rec, "core.RelativeSafety").
		Tag("paper", "Definition 4.2 via Lemma 4.4")
	defer sp.End()
	trimmed, behaviors, err := trimmedBehaviors(rec, sys)
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	if trimmed == nil {
		// No infinite behavior: every x ∈ L_ω = ∅ vacuously satisfies
		// Definition 4.2.
		return SafetyResult{Holds: true}, nil
	}
	pa, err := p.AutomatonRec(rec, sys.Alphabet())
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	ops := buchi.Ops{Rec: rec}
	psp := obs.StartSpan(rec, "pre(L∩P)").
		Int("behavior_states", int64(behaviors.NumStates())).
		Int("property_states", int64(pa.NumStates()))
	preLP := ops.PrefixNFA(ops.Intersect(behaviors, pa)).Trim()
	psp.Int("out_states", int64(preLP.NumStates()))
	psp.End()
	if preLP.NumStates() == 0 {
		// L_ω ∩ P = ∅: its prefix limit is empty and inclusion is trivial.
		return SafetyResult{Holds: true}, nil
	}
	limPre, err := ops.LimitOfAllAccepting(preLP)
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	lhs := ops.Intersect(behaviors, limPre)
	notP, err := p.NegationAutomatonRec(rec, sys.Alphabet())
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	isp := obs.StartSpan(rec, "L ∩ lim(pre(L∩P)) ⊆ P").
		Tag("paper", "Lemma 4.4: L ∩ lim(pre(L∩P)) ⊆ P").
		Int("lhs_states", int64(lhs.NumStates())).
		Int("negation_states", int64(notP.NumStates()))
	l, found := ops.AcceptingLasso(ops.Intersect(lhs, notP))
	isp.End()
	if found {
		return SafetyResult{Holds: false, Violation: l}, nil
	}
	return SafetyResult{Holds: true}, nil
}

// SatisfactionResult is the outcome of a plain satisfaction check
// L_ω ⊆ P; Counterexample is a behavior outside P when it fails.
type SatisfactionResult struct {
	Holds          bool
	Counterexample word.Lasso
}

// Satisfies decides L_ω ⊆ P (Definition 3.2) directly, by emptiness of
// behaviors ∩ ¬P. Theorem 4.7 states this is equivalent to p being both
// a relative liveness and a relative safety property; the equivalence is
// exercised by the test suite.
func Satisfies(sys *ts.System, p Property) (SatisfactionResult, error) {
	return SatisfiesRec(nil, sys, p)
}

// SatisfiesRec is Satisfies with the negation construction and the
// emptiness check of L ∩ ¬P reported to rec.
func SatisfiesRec(rec obs.Recorder, sys *ts.System, p Property) (SatisfactionResult, error) {
	sp := obs.StartSpan(rec, "core.Satisfies").
		Tag("paper", "Definition 3.2: L ⊆ P")
	defer sp.End()
	trimmed, behaviors, err := trimmedBehaviors(rec, sys)
	if err != nil {
		return SatisfactionResult{}, fmt.Errorf("satisfaction: %w", err)
	}
	if trimmed == nil {
		return SatisfactionResult{Holds: true}, nil
	}
	notP, err := p.NegationAutomatonRec(rec, sys.Alphabet())
	if err != nil {
		return SatisfactionResult{}, fmt.Errorf("satisfaction: %w", err)
	}
	ops := buchi.Ops{Rec: rec}
	isp := obs.StartSpan(rec, "L ∩ ¬P = ∅").
		Int("behavior_states", int64(behaviors.NumStates())).
		Int("negation_states", int64(notP.NumStates()))
	l, found := ops.AcceptingLasso(ops.Intersect(behaviors, notP))
	isp.End()
	if found {
		return SatisfactionResult{Holds: false, Counterexample: l}, nil
	}
	return SatisfactionResult{Holds: true}, nil
}

// SatisfiesViaConjunction decides satisfaction through Theorem 4.7: the
// property holds iff it is both a relative liveness and a relative
// safety property. Exposed as an alternative algorithm for
// cross-validation and ablation benchmarks.
func SatisfiesViaConjunction(sys *ts.System, p Property) (bool, error) {
	rl, err := RelativeLiveness(sys, p)
	if err != nil {
		return false, err
	}
	if !rl.Holds {
		return false, nil
	}
	rs, err := RelativeSafety(sys, p)
	if err != nil {
		return false, err
	}
	return rs.Holds, nil
}
