package core

import (
	"fmt"

	"relive/internal/obs"
	"relive/internal/ts"
	"relive/internal/word"
)

// SafetyResult is the outcome of a relative-safety check. When the
// property is not a relative safety property, Violation is an ultimately
// periodic behavior that does not satisfy the property although every
// one of its prefixes can be extended to a behavior that does (it lies
// in the limit of pre(L_ω ∩ P)).
type SafetyResult struct {
	Holds     bool
	Violation word.Lasso
}

// RelativeSafety decides whether p is a relative safety property of the
// system's behaviors (Definition 4.2), via the characterization of
// Lemma 4.4:
//
//	L_ω ∩ lim(pre(L_ω ∩ P)) ⊆ P.
//
// The left-hand side is the Büchi product of the behaviors with the
// limit of the prefix language of L_ω ∩ P; inclusion in P is checked by
// intersecting with ¬P (for formulas, the translated negation; for
// automata, the rank-based complement).
func RelativeSafety(sys *ts.System, p Property) (SafetyResult, error) {
	return RelativeSafetyRec(nil, sys, p)
}

// RelativeSafetyRec is RelativeSafety with every phase reported to rec:
// the pre(L∩P) product, its limit closure, the negation automaton, and
// the final emptiness check of Lemma 4.4. A nil rec is the
// uninstrumented path.
func RelativeSafetyRec(rec obs.Recorder, sys *ts.System, p Property) (SafetyResult, error) {
	return relativeSafetyPipe(newPipeline(rec, sys, p))
}

// relativeSafetyPipe is the Lemma 4.4 check over a (possibly shared)
// pipeline. The final inclusion is decided by on-the-fly emptiness of
// (L ∩ lim(pre(L∩P))) ∩ ¬P instead of materializing that product.
func relativeSafetyPipe(pl *pipeline) (SafetyResult, error) {
	sp := obs.StartSpan(pl.rec, "core.RelativeSafety").
		Tag("paper", "Definition 4.2 via Lemma 4.4")
	defer sp.End()
	trimmed, behaviors, err := pl.limits()
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	if trimmed == nil {
		// No infinite behavior: every x ∈ L_ω = ∅ vacuously satisfies
		// Definition 4.2.
		return SafetyResult{Holds: true}, nil
	}
	preLP, err := pl.preProduct()
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	if preLP.NumStates() == 0 {
		// L_ω ∩ P = ∅: its prefix limit is empty and inclusion is trivial.
		return SafetyResult{Holds: true}, nil
	}
	ops := pl.ops
	limPre, err := ops.LimitOfAllAccepting(preLP)
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	lhs, err := ops.IntersectCtx(behaviors, limPre)
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	notP, err := pl.negation()
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	isp := obs.StartSpan(pl.rec, "L ∩ lim(pre(L∩P)) ⊆ P").
		Tag("paper", "Lemma 4.4: L ∩ lim(pre(L∩P)) ⊆ P").
		Int("lhs_states", int64(lhs.NumStates())).
		Int("negation_states", int64(notP.NumStates()))
	l, found, err := ops.IntersectLassoCtx(lhs, notP)
	if err != nil {
		isp.Tag("aborted", "context")
		isp.End()
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	isp.End()
	if found {
		return SafetyResult{Holds: false, Violation: l}, nil
	}
	return SafetyResult{Holds: true}, nil
}

// SatisfactionResult is the outcome of a plain satisfaction check
// L_ω ⊆ P; Counterexample is a behavior outside P when it fails.
type SatisfactionResult struct {
	Holds          bool
	Counterexample word.Lasso
}

// Satisfies decides L_ω ⊆ P (Definition 3.2) directly, by emptiness of
// behaviors ∩ ¬P. Theorem 4.7 states this is equivalent to p being both
// a relative liveness and a relative safety property; the equivalence is
// exercised by the test suite.
func Satisfies(sys *ts.System, p Property) (SatisfactionResult, error) {
	return SatisfiesRec(nil, sys, p)
}

// SatisfiesRec is Satisfies with the negation construction and the
// emptiness check of L ∩ ¬P reported to rec.
func SatisfiesRec(rec obs.Recorder, sys *ts.System, p Property) (SatisfactionResult, error) {
	return satisfiesPipe(newPipeline(rec, sys, p))
}

// satisfiesPipe is the Definition 3.2 check over a (possibly shared)
// pipeline, deciding emptiness of L ∩ ¬P on the fly.
func satisfiesPipe(pl *pipeline) (SatisfactionResult, error) {
	sp := obs.StartSpan(pl.rec, "core.Satisfies").
		Tag("paper", "Definition 3.2: L ⊆ P")
	defer sp.End()
	trimmed, behaviors, err := pl.limits()
	if err != nil {
		return SatisfactionResult{}, fmt.Errorf("satisfaction: %w", err)
	}
	if trimmed == nil {
		return SatisfactionResult{Holds: true}, nil
	}
	notP, err := pl.negation()
	if err != nil {
		return SatisfactionResult{}, fmt.Errorf("satisfaction: %w", err)
	}
	isp := obs.StartSpan(pl.rec, "L ∩ ¬P = ∅").
		Int("behavior_states", int64(behaviors.NumStates())).
		Int("negation_states", int64(notP.NumStates()))
	l, found, err := pl.ops.IntersectLassoCtx(behaviors, notP)
	if err != nil {
		isp.Tag("aborted", "context")
		isp.End()
		return SatisfactionResult{}, fmt.Errorf("satisfaction: %w", err)
	}
	isp.End()
	if found {
		return SatisfactionResult{Holds: false, Counterexample: l}, nil
	}
	return SatisfactionResult{Holds: true}, nil
}

// SatisfiesViaConjunction decides satisfaction through Theorem 4.7: the
// property holds iff it is both a relative liveness and a relative
// safety property. Exposed as an alternative algorithm for
// cross-validation and ablation benchmarks.
func SatisfiesViaConjunction(sys *ts.System, p Property) (bool, error) {
	rl, err := RelativeLiveness(sys, p)
	if err != nil {
		return false, err
	}
	if !rl.Holds {
		return false, nil
	}
	rs, err := RelativeSafety(sys, p)
	if err != nil {
		return false, err
	}
	return rs.Holds, nil
}
