package core_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"relive/internal/alphabet"
	"relive/internal/core"
	"relive/internal/ltl"
	"relive/internal/ts"
)

// The cancellation suite for the ...Ctx decision-procedure entry
// points. Contract under test, from every entry point:
//
//   - a live context behaves exactly like the plain API (same verdicts);
//   - an expired deadline or cancellation makes the check return
//     promptly with an error wrapping context.DeadlineExceeded /
//     context.Canceled (errors.Is holds);
//   - context errors are never conflated with verdict errors, and a
//     cancelled run never poisons shared artifact cells for later runs.

// hugeSystem builds a strongly connected n-state system with three
// actions whose trim keeps every state, so the behavior automaton, the
// pre(L∩P) product, and the inclusion subset construction are all
// proportional to n — big enough that a short deadline expires mid-loop
// rather than before or after the work.
func hugeSystem(tb testing.TB, n int) *ts.System {
	tb.Helper()
	sys := ts.New(alphabet.FromNames("a", "b", "c"))
	for i := 0; i < n; i++ {
		sys.AddState(fmt.Sprintf("s%d", i))
	}
	ab := sys.Alphabet()
	a, b, c := ab.Symbol("a"), ab.Symbol("b"), ab.Symbol("c")
	for i := 0; i < n; i++ {
		sys.AddTransition(ts.State(i), a, ts.State((i+1)%n))
		sys.AddTransition(ts.State(i), b, ts.State((2*i+1)%n))
		sys.AddTransition(ts.State(i), c, 0)
	}
	sys.SetInitial(0)
	return sys
}

func hugeProperty(tb testing.TB) core.Property {
	tb.Helper()
	f, err := ltl.Parse("G (a -> F (b U c))")
	if err != nil {
		tb.Fatal(err)
	}
	return core.FromFormula(f, nil)
}

const hugeStates = 60_000

// promptly asserts err wraps the wanted context sentinel and the check
// returned well before it could have finished the full construction.
func promptly(t *testing.T, name string, start time.Time, err error, want error) {
	t.Helper()
	if !errors.Is(err, want) {
		t.Fatalf("%s: err = %v, want errors.Is(err, %v)", name, err, want)
	}
	if errors.Is(err, context.Canceled) && errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("%s: err %v matches both context sentinels", name, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("%s: returned after %v, not a prompt cancellation", name, elapsed)
	}
}

// TestCtxEntryPointsDeadline drives every ...Ctx entry point against a
// huge check with a deadline far shorter than the work and requires a
// prompt DeadlineExceeded.
func TestCtxEntryPointsDeadline(t *testing.T) {
	sys := hugeSystem(t, hugeStates)
	p := hugeProperty(t)
	entries := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"CheckAllCtx", func(ctx context.Context) error {
			_, err := core.CheckAllCtx(ctx, nil, sys, p, 1)
			return err
		}},
		{"CheckAllCtx/parallel", func(ctx context.Context) error {
			_, err := core.CheckAllCtx(ctx, nil, sys, p, 3)
			return err
		}},
		{"RelativeLivenessCtx", func(ctx context.Context) error {
			_, err := core.RelativeLivenessCtx(ctx, nil, sys, p)
			return err
		}},
		{"RelativeSafetyCtx", func(ctx context.Context) error {
			_, err := core.RelativeSafetyCtx(ctx, nil, sys, p)
			return err
		}},
		{"SatisfiesCtx", func(ctx context.Context) error {
			_, err := core.SatisfiesCtx(ctx, nil, sys, p)
			return err
		}},
		{"CheckPortfolioCtx", func(ctx context.Context) error {
			_, err := core.CheckPortfolioCtx(ctx, nil, sys, []core.Property{p, p}, 2)
			return err
		}},
		{"CheckSystemsPortfolioCtx", func(ctx context.Context) error {
			_, err := core.CheckSystemsPortfolioCtx(ctx, nil, []*ts.System{sys, sys}, p, 2)
			return err
		}},
	}
	for _, e := range entries {
		t.Run(e.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
			defer cancel()
			start := time.Now()
			err := e.run(ctx)
			promptly(t, e.name, start, err, context.DeadlineExceeded)
		})
	}
}

// TestCtxEntryPointsPreCancelled: an already-cancelled context returns
// context.Canceled without starting the work.
func TestCtxEntryPointsPreCancelled(t *testing.T) {
	sys := hugeSystem(t, hugeStates)
	p := hugeProperty(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := core.CheckAllCtx(ctx, nil, sys, p, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("CheckAllCtx err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-cancelled check ran for %v", elapsed)
	}
}

// TestCtxNilAndBackgroundMatchPlain: a nil-deadline context changes
// nothing — verdicts and witnesses equal the plain API on a nontrivial
// system.
func TestCtxNilAndBackgroundMatchPlain(t *testing.T) {
	sys := hugeSystem(t, 40)
	p := hugeProperty(t)
	want, err := core.CheckAll(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := core.CheckAllCtx(context.Background(), nil, sys, p, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Satisfied != want.Satisfied || got.RelativeLiveness != want.RelativeLiveness ||
			got.RelativeSafety != want.RelativeSafety {
			t.Fatalf("CheckAllCtx(workers=%d) verdicts = %+v, want %+v", workers, got, want)
		}
	}
}

// TestCtxCancelledRunDoesNotPoisonCells: a deadline-aborted run over
// shared cells must leave them rebuildable — the follow-up uncancelled
// run on the SAME cells must complete with correct verdicts. This is
// the regression test for the sync.Once → cell change: a memoized
// context error would fail the second run too.
func TestCtxCancelledRunDoesNotPoisonCells(t *testing.T) {
	sys := hugeSystem(t, 600)
	p := hugeProperty(t)
	pc := core.NewPipelineCells(sys, p)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.CheckAllCellsCtx(ctx, nil, pc, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run err = %v, want context.Canceled", err)
	}
	// Also abort one mid-flight (deadline) to exercise builder abort.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer dcancel()
	_, _ = core.CheckAllCellsCtx(dctx, nil, pc, 1)

	got, err := core.CheckAllCellsCtx(context.Background(), nil, pc, 1)
	if err != nil {
		t.Fatalf("follow-up run on shared cells: %v", err)
	}
	want, err := core.CheckAll(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Satisfied != want.Satisfied || got.RelativeLiveness != want.RelativeLiveness ||
		got.RelativeSafety != want.RelativeSafety {
		t.Fatalf("verdicts after cancelled runs = %+v, want %+v", got, want)
	}
}

// TestCtxErrorNotConflatedWithVerdict: a failing verdict is not a
// context error — the check completes with (result{Holds: false}, nil)
// — and a context error carries no verdict.
func TestCtxErrorNotConflatedWithVerdict(t *testing.T) {
	// Simple system violating G F c: self-loop on a only.
	sys := ts.New(alphabet.FromNames("a", "c"))
	s0 := sys.AddState("s0")
	sys.AddTransition(s0, sys.Alphabet().Symbol("a"), s0)
	sys.SetInitial(s0)
	f, err := ltl.Parse("G F c")
	if err != nil {
		t.Fatal(err)
	}
	p := core.FromFormula(f, nil)

	res, err := core.SatisfiesCtx(context.Background(), nil, sys, p)
	if err != nil {
		t.Fatalf("negative verdict returned error: %v", err)
	}
	if res.Holds {
		t.Fatal("satisfaction should fail on a^ω vs G F c")
	}
	if isCtx := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded); isCtx {
		t.Fatal("nil error matches context sentinels")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = core.SatisfiesCtx(ctx, nil, sys, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled err = %v, want context.Canceled", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("Canceled error also matches DeadlineExceeded")
	}
}

// TestCtxSharedCellsCoalesce: two concurrent CheckAll runs over one
// PipelineCells value must both succeed and agree — the single-flight
// cells make the artifact builds coalesce rather than race.
func TestCtxSharedCellsCoalesce(t *testing.T) {
	sys := hugeSystem(t, 300)
	p := hugeProperty(t)
	pc := core.NewPipelineCells(sys, p)
	type out struct {
		rep *core.Report
		err error
	}
	ch := make(chan out, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rep, err := core.CheckAllCellsCtx(context.Background(), nil, pc, 1)
			ch <- out{rep, err}
		}()
	}
	a, b := <-ch, <-ch
	if a.err != nil || b.err != nil {
		t.Fatalf("concurrent runs: %v, %v", a.err, b.err)
	}
	if a.rep.Satisfied != b.rep.Satisfied || a.rep.RelativeLiveness != b.rep.RelativeLiveness ||
		a.rep.RelativeSafety != b.rep.RelativeSafety {
		t.Fatalf("concurrent runs disagree: %+v vs %+v", a.rep, b.rep)
	}
}
