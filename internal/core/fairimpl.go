package core

import (
	"fmt"

	"relive/internal/buchi"
	"relive/internal/fairness"
	"relive/internal/graph"
	"relive/internal/nfa"
	"relive/internal/obs"
	"relive/internal/ts"
	"relive/internal/word"
)

// FairImplementation is the output of the Theorem 5.1 synthesis: a
// finite-state system (without acceptance) that accepts exactly the
// behaviors L_ω of the input system, and on which every strongly fair
// run satisfies the relative liveness property the synthesis started
// from. Marked records which synthesized states were accepting in the
// reduced Büchi automaton for L_ω ∩ P — the "added state information"
// the theorem speaks of.
type FairImplementation struct {
	System *ts.System
	Marked map[ts.State]bool
}

// SynthesizeFairImplementation implements the construction in the proof
// of Theorem 5.1: take a reduced Büchi automaton A for L_ω ∩ P and drop
// its acceptance condition. Because P is a relative liveness property,
// pre(L_ω ∩ P) = pre(L_ω) (Lemma 4.3) and L_ω is limit closed, so the
// acceptance-free automaton accepts exactly L_ω; and every strongly
// fair run passes through A's accepting states infinitely often, hence
// satisfies P.
//
// The function verifies the relative-liveness precondition and fails if
// it does not hold (Theorem 5.1 gives no guarantee then).
func SynthesizeFairImplementation(sys *ts.System, p Property) (*FairImplementation, error) {
	return SynthesizeFairImplementationRec(nil, sys, p)
}

// SynthesizeFairImplementationRec is SynthesizeFairImplementation with
// the precondition check, the reduced-product construction, and the
// implementation build reported to rec.
func SynthesizeFairImplementationRec(rec obs.Recorder, sys *ts.System, p Property) (*FairImplementation, error) {
	sp := obs.StartSpan(rec, "core.SynthesizeFairImplementation").
		Tag("paper", "Theorem 5.1")
	defer sp.End()
	rl, err := RelativeLivenessRec(rec, sys, p)
	if err != nil {
		return nil, fmt.Errorf("fair implementation: %w", err)
	}
	if !rl.Holds {
		return nil, fmt.Errorf(
			"fair implementation: %s is not a relative liveness property (bad prefix %s)",
			p, rl.BadPrefix.String(sys.Alphabet()))
	}
	trimmed, behaviors, err := trimmedBehaviors(nil, rec, sys)
	if err != nil {
		return nil, fmt.Errorf("fair implementation: %w", err)
	}
	if trimmed == nil {
		return nil, fmt.Errorf("fair implementation: system has no infinite behavior")
	}
	pa, err := p.AutomatonRec(rec, sys.Alphabet())
	if err != nil {
		return nil, fmt.Errorf("fair implementation: %w", err)
	}
	ops := buchi.Ops{Rec: rec}
	rsp := obs.StartSpan(rec, "reduce(L∩P)").
		Tag("paper", "Theorem 5.1: reduced Büchi automaton for L∩P")
	reduced := ops.Reduce(ops.Intersect(behaviors, pa))
	rsp.Int("out_states", int64(reduced.NumStates()))
	rsp.End()
	if len(reduced.Initial()) == 0 {
		return nil, fmt.Errorf("fair implementation: reduced product is empty")
	}
	// Theorem 5.1 needs a single finite-state system; determinizing the
	// underlying transition structure would not preserve the accepting
	// marks, so the (possibly nondeterministic) reduced automaton itself
	// becomes the implementation. Multiple initial states are folded by
	// an auxiliary initial state when needed.
	impl := ts.New(sys.Alphabet())
	marked := map[ts.State]bool{}
	name := func(i buchi.State) string { return fmt.Sprintf("m%d", i) }
	for i := 0; i < reduced.NumStates(); i++ {
		st := impl.AddState(name(buchi.State(i)))
		if reduced.Accepting(buchi.State(i)) {
			marked[st] = true
		}
	}
	for i := 0; i < reduced.NumStates(); i++ {
		from, _ := impl.LookupState(name(buchi.State(i)))
		for _, sym := range sys.Alphabet().Symbols() {
			for _, t := range reduced.Succ(buchi.State(i), sym) {
				to, _ := impl.LookupState(name(t))
				impl.AddTransition(from, sym, to)
			}
		}
	}
	inits := reduced.Initial()
	if len(inits) == 1 {
		st, _ := impl.LookupState(name(inits[0]))
		impl.SetInitial(st)
	} else {
		init := impl.AddState("m_init")
		acc := false
		for _, i0 := range inits {
			if reduced.Accepting(i0) {
				acc = true
			}
			for _, sym := range sys.Alphabet().Symbols() {
				for _, t := range reduced.Succ(i0, sym) {
					to, _ := impl.LookupState(name(t))
					impl.AddTransition(init, sym, to)
				}
			}
		}
		marked[init] = acc
		impl.SetInitial(init)
	}
	return &FairImplementation{System: impl, Marked: marked}, nil
}

// SameBehaviors checks that the implementation accepts exactly the
// behaviors of the original system, the first guarantee of Theorem 5.1.
// On failure it returns a finite word in the symmetric difference of the
// prefix languages (equality of limit-closed behavior sets reduces to
// equality of their prefix languages).
func (fi *FairImplementation) SameBehaviors(sys *ts.System) (bool, word.Word, error) {
	origTrim, err := sys.Trim()
	if err != nil {
		return false, nil, fmt.Errorf("fair implementation check: %w", err)
	}
	implTrim, err := fi.System.Trim()
	if err != nil {
		return false, nil, fmt.Errorf("fair implementation check: %w", err)
	}
	a1, err := origTrim.NFA()
	if err != nil {
		return false, nil, err
	}
	a2, err := implTrim.NFA()
	if err != nil {
		return false, nil, err
	}
	eq, w := nfa.LanguageEqual(a1, a2)
	return eq, w, nil
}

// AllStronglyFairRunsSatisfy checks the second guarantee of Theorem 5.1
// on the synthesized implementation: no strongly fair run violates the
// property. It returns the violating fair run if one exists.
func (fi *FairImplementation) AllStronglyFairRunsSatisfy(p Property) (bool, *fairness.Run, error) {
	notP, err := p.NegationAutomaton(fi.System.Alphabet())
	if err != nil {
		return false, nil, fmt.Errorf("fair implementation check: %w", err)
	}
	run, found, err := fairness.ExistsFairRun(fi.System, notP, fairness.Strong)
	if err != nil {
		return false, nil, fmt.Errorf("fair implementation check: %w", err)
	}
	if found {
		return false, &run, nil
	}
	return true, nil, nil
}

// AllStronglyFairRunsSatisfy checks directly on a plain system whether
// every strongly fair run satisfies p, returning a violating fair run
// otherwise. This is the check that fails for the minimal automaton of
// the Section 5 example and succeeds for the Theorem 5.1 synthesis.
func AllStronglyFairRunsSatisfy(sys *ts.System, p Property) (bool, *fairness.Run, error) {
	notP, err := p.NegationAutomaton(sys.Alphabet())
	if err != nil {
		return false, nil, fmt.Errorf("fair runs check: %w", err)
	}
	run, found, err := fairness.ExistsFairRun(sys, notP, fairness.Strong)
	if err != nil {
		return false, nil, fmt.Errorf("fair runs check: %w", err)
	}
	if found {
		return false, &run, nil
	}
	return true, nil, nil
}

// BottomSCCsContainMarks is the structural argument from the proof of
// Theorem 5.1, checkable in linear time: in the reduced product, every
// reachable bottom SCC of the implementation contains a marked
// (originally accepting) state, so any run that is eventually confined
// to — and fairly exhausts — a bottom SCC hits marks infinitely often.
func (fi *FairImplementation) BottomSCCsContainMarks() bool {
	sys := fi.System
	n := sys.NumStates()
	adj := make([][]int, n)
	for _, e := range sys.Edges() {
		adj[e.From] = append(adj[e.From], int(e.To))
	}
	succ := func(v int) []int { return adj[v] }
	for _, comp := range graph.BottomSCCs(n, []int{int(sys.Initial())}, succ) {
		hasMark := false
		for _, v := range comp {
			if fi.Marked[ts.State(v)] {
				hasMark = true
				break
			}
		}
		if !hasMark {
			return false
		}
	}
	return true
}
