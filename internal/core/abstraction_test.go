package core

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/gen"
	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/nfa"
	"relive/internal/paper"
	"relive/internal/ts"
)

// TestSection2AbstractionFig2 is the paper's positive case: the
// homomorphism hiding yes/no/lock/free is simple on Figure 2's language,
// □◇result is a relative liveness property of the abstract system, and
// Theorem 8.2 concludes it for the concrete system — which a direct
// check confirms.
func TestSection2AbstractionFig2(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	h := paper.AbstractionHom(sys)
	eta := paper.PropertyInfResults()

	report, err := VerifyViaAbstraction(sys, h, eta)
	if err != nil {
		t.Fatal(err)
	}
	if report.ExtendedMaximal {
		t.Errorf("h(L) of Figure 2 has maximal words (witness %s)?",
			report.MaximalWitness.String(h.Dest()))
	}
	if !report.Simple {
		t.Errorf("h is not simple on Figure 2 (witness %s) — the paper says it is",
			report.SimplicityWitness.String(sys.Alphabet()))
	}
	if !report.AbstractHolds {
		t.Errorf("□◇result not relative liveness on the abstract system (bad prefix %s)",
			report.AbstractBadPrefix.String(h.Dest()))
	}
	if report.Conclusion != ConcreteHolds {
		t.Fatalf("conclusion = %v, want ConcreteHolds", report.Conclusion)
	}
	// Figure 4 shape: two states.
	if report.Abstract.NumStates() != 2 {
		t.Errorf("abstract system has %d states, want 2 (Figure 4)", report.Abstract.NumStates())
	}
	// Cross-validate Theorem 8.2 by checking R̄(η) directly on Figure 2.
	concrete, err := ConcreteProperty(h, eta)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := RelativeLiveness(sys, concrete)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Holds {
		t.Errorf("direct concrete check contradicts Theorem 8.2 (bad prefix %s)",
			rl.BadPrefix.String(sys.Alphabet()))
	}
}

// TestSection2AbstractionFig3 is the paper's cautionary case: Figure 3
// abstracts to the same Figure 4 system, the abstract check succeeds,
// but h is not simple — so the method answers "inconclusive", and
// rightly so, because the concrete check fails.
func TestSection2AbstractionFig3(t *testing.T) {
	sys := paper.Fig3System()
	h := paper.AbstractionHom(sys)
	eta := paper.PropertyInfResults()

	report, err := VerifyViaAbstraction(sys, h, eta)
	if err != nil {
		t.Fatal(err)
	}
	if !report.AbstractHolds {
		t.Error("the abstract system of Figure 3 should satisfy the relative liveness check (it equals Figure 4)")
	}
	if report.Simple {
		t.Error("h simple on Figure 3 — the paper says it is not")
	}
	if report.Conclusion != Inconclusive {
		t.Fatalf("conclusion = %v, want Inconclusive", report.Conclusion)
	}
	// The concrete property indeed fails: abstraction would have lied.
	concrete, err := ConcreteProperty(h, eta)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := RelativeLiveness(sys, concrete)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Holds {
		t.Error("R̄(□◇result) is a relative liveness property of Figure 3 — then simplicity would not matter here")
	}
}

// TestFig2AndFig3SameAbstraction: both systems abstract to the same
// behavior (Figure 4), which is what makes the simplicity condition
// essential.
func TestFig2AndFig3SameAbstraction(t *testing.T) {
	fig2, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	fig3 := paper.Fig3System()

	a2, err := fig2.NFA()
	if err != nil {
		t.Fatal(err)
	}
	a3, err := fig3.NFA()
	if err != nil {
		t.Fatal(err)
	}
	img2 := paper.AbstractionHom(fig2).ImageNFA(a2)
	img3 := paper.AbstractionHom(fig3).ImageNFA(a3)
	// The two image automata live over separately interned alphabets;
	// compare over a merged alphabet by re-labeling through names.
	eq, w := nfa.LanguageEqual(relabel(t, img2), relabel(t, img3))
	if !eq {
		t.Errorf("abstract languages differ, witness %v", w)
	}

	fig4, err := paper.Fig4System()
	if err != nil {
		t.Fatal(err)
	}
	if fig4.NumStates() != 2 {
		t.Errorf("Figure 4 has %d states, want 2", fig4.NumStates())
	}
}

// relabel rebuilds an NFA over a canonical alphabet with the same letter
// names, so automata from different Alphabet instances can be compared.
func relabel(t *testing.T, a *nfa.NFA) *nfa.NFA {
	t.Helper()
	canon := alphabet.FromNames(paper.ObservableActions...)
	out := nfa.New(canon)
	for i := 0; i < a.NumStates(); i++ {
		out.AddState(a.Accepting(nfa.State(i)))
	}
	for i := 0; i < a.NumStates(); i++ {
		for _, sym := range a.Alphabet().Symbols() {
			for _, to := range a.Succ(nfa.State(i), sym) {
				out.AddTransition(nfa.State(i), canon.Symbol(a.Alphabet().Name(sym)), to)
			}
		}
	}
	for _, s := range a.Initial() {
		out.SetInitial(s)
	}
	return out
}

// TestVerifyViaAbstractionValidation: η must be in Σ'-normal form.
func TestVerifyViaAbstractionValidation(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	h := paper.AbstractionHom(sys)
	// "lock" is not an abstract letter.
	if _, err := VerifyViaAbstraction(sys, h, ltl.MustParse("G F lock")); err == nil {
		t.Error("formula over hidden letters accepted")
	}
}

// TestQuickTheorems82And83 cross-validates the preservation theorems on
// random systems, homomorphisms and properties:
//
//	Thm 8.3 (no simplicity needed): concrete RL(R̄η) ⇒ abstract RL(η);
//	Thm 8.2 (simple h):             abstract RL(η) ⇒ concrete RL(R̄η).
//
// Samples whose image language has maximal words are skipped, matching
// the theorems' precondition.
func TestQuickTheorems82And83(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	src := gen.Letters(3) // a, b, c
	var simpleSeen, nonSimpleSeen int
	for trial := 0; trial < 120; trial++ {
		sys := randomSystem(rng, src, 1+rng.Intn(4))
		trimmed, err := sys.Trim()
		if err != nil {
			continue
		}
		// Random homomorphism: each letter kept (possibly renamed into
		// {x,y}) or hidden; at least one letter kept.
		h := hom.New(src, alphabet.FromNames("x", "y"))
		kept := false
		for _, name := range src.Names() {
			switch rng.Intn(3) {
			case 0:
				h.SetByName(name, "x")
				kept = true
			case 1:
				h.SetByName(name, "y")
				kept = true
			default:
				h.SetByName(name, "")
			}
		}
		if !kept {
			continue
		}
		concNFA, err := trimmed.NFA()
		if err != nil {
			t.Fatal(err)
		}
		if hasMax, _ := h.HasMaximalWords(concNFA); hasMax {
			continue
		}
		eta := randomSigmaFormulaOver(rng, []string{"x", "y"})

		// Abstract verdict.
		abstractSys, err := abstractSystem(h, concNFA)
		if err != nil {
			continue // empty abstraction
		}
		abs, err := RelativeLiveness(abstractSys, FromFormula(eta, ltl.Canonical(abstractSys.Alphabet())))
		if err != nil {
			t.Fatal(err)
		}
		// Concrete verdict on R̄(η).
		concProp, err := ConcreteProperty(h, eta)
		if err != nil {
			t.Fatal(err)
		}
		conc, err := RelativeLiveness(sys, concProp)
		if err != nil {
			t.Fatal(err)
		}
		// Theorem 8.3.
		if conc.Holds && !abs.Holds {
			t.Fatalf("trial %d: Theorem 8.3 violated: concrete holds, abstract fails\nη=%s h=%s\n%s",
				trial, eta, h, sys.FormatString())
		}
		// Theorem 8.2 (needs simplicity).
		res, err := h.IsSimple(concNFA)
		if err != nil {
			t.Fatal(err)
		}
		if res.Simple {
			simpleSeen++
			if abs.Holds && !conc.Holds {
				t.Fatalf("trial %d: Theorem 8.2 violated: h simple, abstract holds, concrete fails\nη=%s h=%s\n%s",
					trial, eta, h, sys.FormatString())
			}
		} else {
			nonSimpleSeen++
		}
	}
	if simpleSeen == 0 {
		t.Error("no simple homomorphisms sampled; test is vacuous")
	}
	if nonSimpleSeen == 0 {
		t.Log("note: no non-simple homomorphisms sampled")
	}
}

func randomSigmaFormulaOver(rng *rand.Rand, atoms []string) *ltl.Formula {
	var build func(depth int) *ltl.Formula
	build = func(depth int) *ltl.Formula {
		if depth <= 0 || rng.Float64() < 0.3 {
			return ltl.Atom(atoms[rng.Intn(len(atoms))])
		}
		switch rng.Intn(7) {
		case 0:
			return ltl.Not(ltl.Atom(atoms[rng.Intn(len(atoms))]))
		case 1:
			return ltl.And(build(depth-1), build(depth-1))
		case 2:
			return ltl.Or(build(depth-1), build(depth-1))
		case 3:
			return ltl.Next(build(depth - 1))
		case 4:
			return ltl.Until(build(depth-1), build(depth-1))
		case 5:
			return ltl.Eventually(build(depth - 1))
		default:
			return ltl.Globally(build(depth - 1))
		}
	}
	return build(2)
}

// abstractSystem builds the abstract transition system for h(L).
func abstractSystem(h *hom.Hom, concNFA *nfa.NFA) (*ts.System, error) {
	return systemFromPrefixClosed(h.ImageNFA(concNFA))
}
