package core

import (
	"fmt"
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/paper"
	"relive/internal/ts"
)

func TestAGEFOnPaperFigures(t *testing.T) {
	fig2, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ForAllGloballyExistsEventually(fig2, paper.ActResult)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("AG EF result fails on Figure 2 at %s", res.BadState)
	}
	res, err = ForAllGloballyExistsEventually(paper.Fig3System(), paper.ActResult)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("AG EF result holds on Figure 3")
	}
	if res.BadState == "" {
		t.Error("missing bad state witness")
	}
}

func TestAGEFValidation(t *testing.T) {
	fig2, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForAllGloballyExistsEventually(fig2); err == nil {
		t.Error("no target actions accepted")
	}
	// Unknown action: not reachable anywhere.
	res, err := ForAllGloballyExistsEventually(fig2, "no-such-action")
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("AG EF of an impossible action holds")
	}
}

// TestQuickAGEFMatchesRLOnDeterministic: on deterministic systems,
// AG EF ⟨a⟩ coincides with □◇a being a relative liveness property.
func TestQuickAGEFMatchesRLOnDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	ab := gen.Letters(2)
	for trial := 0; trial < 60; trial++ {
		sys := randomDeterministicSystem(rng, ab, 1+rng.Intn(5))
		if _, err := sys.Trim(); err != nil {
			continue
		}
		agef, err := ForAllGloballyExistsEventually(sys, "a")
		if err != nil {
			t.Fatal(err)
		}
		rl, err := RelativeLiveness(sys, FromFormula(ltl.MustParse("G F a"), nil))
		if err != nil {
			t.Fatal(err)
		}
		if agef.Holds != rl.Holds {
			t.Fatalf("trial %d: AGEF=%v but RL(□◇a)=%v on deterministic system\n%s",
				trial, agef.Holds, rl.Holds, sys.FormatString())
		}
	}
}

func randomDeterministicSystem(rng *rand.Rand, ab *alphabet.Alphabet, n int) *ts.System {
	s := ts.New(ab)
	for i := 0; i < n; i++ {
		s.AddState(fmt.Sprintf("d%d", i))
	}
	for i := 0; i < n; i++ {
		for _, sym := range ab.Symbols() {
			if rng.Float64() < 0.6 {
				from, _ := s.LookupState(fmt.Sprintf("d%d", i))
				to, _ := s.LookupState(fmt.Sprintf("d%d", rng.Intn(n)))
				s.AddTransition(from, sym, to) // one target per (state, symbol)
			}
		}
	}
	init, _ := s.LookupState("d0")
	s.SetInitial(init)
	return s
}
