package core

import (
	"testing"

	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/obs"
	"relive/internal/ts"
)

// mustIdentityHom observes every action of sys (the identity
// abstraction, which is always simple).
func mustIdentityHom(t *testing.T, sys *ts.System) *hom.Hom {
	t.Helper()
	return hom.Identity(sys.Alphabet(), sys.Alphabet().Names()...)
}

// serverSystem is the paper's running example: a server answering each
// request with a result or a rejection.
func serverSystem(t *testing.T) *ts.System {
	t.Helper()
	sys, err := ts.ParseString(`
init idle
idle request busy
busy result idle
busy reject idle
`)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRecordedChecksMatchPlain: attaching a recorder must not change
// any verdict.
func TestRecordedChecksMatchPlain(t *testing.T) {
	sys := serverSystem(t)
	p := FromFormula(ltl.MustParse("G F result"), nil)
	tr := obs.NewTrace()

	rl, err := RelativeLivenessRec(tr, sys, p)
	rlPlain, err2 := RelativeLiveness(sys, p)
	if err != nil || err2 != nil || rl.Holds != rlPlain.Holds {
		t.Errorf("RelativeLiveness diverges under recorder: %v/%v, %v/%v", rl, err, rlPlain, err2)
	}
	rs, err := RelativeSafetyRec(tr, sys, p)
	rsPlain, err2 := RelativeSafety(sys, p)
	if err != nil || err2 != nil || rs.Holds != rsPlain.Holds {
		t.Errorf("RelativeSafety diverges under recorder: %v/%v, %v/%v", rs, err, rsPlain, err2)
	}
	sat, err := SatisfiesRec(tr, sys, p)
	satPlain, err2 := Satisfies(sys, p)
	if err != nil || err2 != nil || sat.Holds != satPlain.Holds {
		t.Errorf("Satisfies diverges under recorder: %v/%v, %v/%v", sat, err, satPlain, err2)
	}
}

// TestLemmaSpansRecorded: the decision procedures must emit the
// paper-tagged spans the -stats tree is built from.
func TestLemmaSpansRecorded(t *testing.T) {
	sys := serverSystem(t)
	p := FromFormula(ltl.MustParse("G F result"), nil)
	tr := obs.NewTrace()
	if _, err := CheckAllRec(tr, sys, p); err != nil {
		t.Fatal(err)
	}

	for span, wantTag := range map[string]string{
		"core.CheckAll":         "Section 4 (cross-checked via Theorem 4.7)",
		"core.RelativeLiveness": "Definition 4.1 via Lemma 4.3",
		"core.RelativeSafety":   "Definition 4.2 via Lemma 4.4",
		"core.Satisfies":        "Definition 3.2: L ⊆ P",
		"pre(L) ⊆ pre(L∩P)":     "Lemma 4.3: pre(L) = pre(L∩P)",
		"L ∩ lim(pre(L∩P)) ⊆ P": "Lemma 4.4: L ∩ lim(pre(L∩P)) ⊆ P",
	} {
		s, ok := tr.Find(span)
		if !ok {
			t.Errorf("span %q not recorded", span)
			continue
		}
		if s.Tags["paper"] != wantTag {
			t.Errorf("span %q paper tag = %q, want %q", span, s.Tags["paper"], wantTag)
		}
		if s.DurationNS < 0 {
			t.Errorf("span %q left open", span)
		}
	}
	// The buchi layer must have contributed operation spans with sizes.
	s, ok := tr.Find("buchi.Intersect")
	if !ok {
		t.Fatal("no buchi.Intersect span under CheckAll")
	}
	if s.Ints["out_states"] <= 0 {
		t.Errorf("buchi.Intersect out_states = %d, want > 0", s.Ints["out_states"])
	}
	if tr.Counters()["buchi.states_built"] <= 0 {
		t.Error("buchi.states_built counter not accumulated")
	}
	// Spans must nest under the CheckAll root.
	root, _ := tr.Find("core.CheckAll")
	childless := true
	for _, rec := range tr.Spans() {
		if rec.Parent == root.ID {
			childless = false
			break
		}
	}
	if childless {
		t.Error("no spans nested under core.CheckAll")
	}
}

// TestAbstractionSpans: the Sections 6–8 pipeline emits its
// paper-tagged phases.
func TestAbstractionSpans(t *testing.T) {
	sys := serverSystem(t)
	h := mustIdentityHom(t, sys)
	tr := obs.NewTrace()
	rep, err := VerifyViaAbstractionRec(tr, sys, h, ltl.MustParse("G F result"))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := VerifyViaAbstraction(sys, h, ltl.MustParse("G F result"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conclusion != plain.Conclusion {
		t.Errorf("conclusion diverges under recorder: %v vs %v", rep.Conclusion, plain.Conclusion)
	}
	for _, span := range []string{
		"core.VerifyViaAbstraction", "h(L)", "abstract system lim(h(L))",
		"simplicity of h", "R̄(η)", "core.RelativeLiveness",
	} {
		if _, ok := tr.Find(span); !ok {
			t.Errorf("abstraction span %q not recorded", span)
		}
	}
}

// TestSynthesisSpans: Theorem 5.1 synthesis emits its phases and the
// same implementation as the plain path.
func TestSynthesisSpans(t *testing.T) {
	sys := serverSystem(t)
	p := FromFormula(ltl.MustParse("G F result"), nil)
	tr := obs.NewTrace()
	fi, err := SynthesizeFairImplementationRec(tr, sys, p)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SynthesizeFairImplementation(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if fi.System.NumStates() != plain.System.NumStates() {
		t.Errorf("synthesis diverges under recorder: %d vs %d states",
			fi.System.NumStates(), plain.System.NumStates())
	}
	for _, span := range []string{"core.SynthesizeFairImplementation", "reduce(L∩P)"} {
		if _, ok := tr.Find(span); !ok {
			t.Errorf("synthesis span %q not recorded", span)
		}
	}
}
