package core

import (
	"context"
	"errors"
	"sync"
)

// cell is a retryable single-flight memo: the building block of the
// pipeline's shared-artifact cells now that checks are cancellable.
//
// sync.Once (the PR 3 mechanism) is wrong under cancellation in two
// ways: a builder whose own context expires would memoize its context
// error forever, poisoning the cell for every later request, and a
// waiter whose context expires could not abandon the wait. cell fixes
// both: the first caller becomes the builder and runs build under its
// own context; a successful (or deterministically failed) result is
// memoized; a context-cancelled build is NOT memoized — the in-flight
// marker is cleared and the next caller rebuilds. Waiters block on the
// in-flight channel or their own context, whichever ends first.
//
// With a nil (or background) context every caller behaves exactly like
// sync.Once: one build, everyone shares the result.
type cell[T any] struct {
	mu       sync.Mutex
	done     bool
	val      T
	err      error
	inflight chan struct{} // non-nil while a builder runs
}

// isContextError reports whether err is (or wraps) a context
// cancellation or deadline error. The decision procedures use it to
// keep context errors strictly separate from verdict errors: only the
// latter are memoized by cells or turned into check failures.
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ctxErr returns ctx.Err() even for a nil context (nil error).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// get returns the memoized value, building it with build if necessary.
// build runs under the calling goroutine's ctx; concurrent callers
// coalesce onto one build. A context error — either the caller's own or
// the builder's — is returned unmemoized.
func (c *cell[T]) get(ctx context.Context, build func() (T, error)) (T, error) {
	for {
		c.mu.Lock()
		if c.done {
			v, err := c.val, c.err
			c.mu.Unlock()
			return v, err
		}
		if c.inflight == nil {
			ch := make(chan struct{})
			c.inflight = ch
			c.mu.Unlock()

			v, err := build()

			c.mu.Lock()
			c.inflight = nil
			if err == nil || !isContextError(err) {
				c.done, c.val, c.err = true, v, err
			}
			c.mu.Unlock()
			close(ch)
			return v, err
		}
		ch := c.inflight
		c.mu.Unlock()
		if ctx == nil {
			<-ch
			continue
		}
		select {
		case <-ch:
			// Either the builder memoized a result (next iteration
			// returns it) or it was cancelled (next iteration rebuilds
			// under our context).
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}
