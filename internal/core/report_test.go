package core

import (
	"encoding/json"
	"strings"
	"testing"

	"relive/internal/buchi"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/paper"
)

func TestCheckAllOnFig2(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	r, err := CheckAll(sys, FromFormula(paper.PropertyInfResults(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if r.Satisfied || !r.RelativeLiveness || r.RelativeSafety {
		t.Errorf("verdicts: %+v", r)
	}
	if r.States != 8 {
		t.Errorf("states = %d, want 8", r.States)
	}
	if len(r.CounterexampleLp) == 0 {
		t.Error("missing counterexample loop")
	}
	if len(r.ViolationLoop) == 0 {
		t.Error("missing relative-safety violation loop")
	}
	if len(r.BadPrefix) != 0 {
		t.Error("bad prefix present although relative liveness holds")
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"relativeLiveness":true`) {
		t.Errorf("JSON: %s", data)
	}
}

func TestCheckAllBadPrefixOnFig3(t *testing.T) {
	r, err := CheckAll(paper.Fig3System(), FromFormula(paper.PropertyInfResults(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if r.RelativeLiveness {
		t.Fatal("RL should fail on Figure 3")
	}
	if len(r.BadPrefix) == 0 {
		t.Error("missing bad prefix")
	}
}

func TestPropertyAccessors(t *testing.T) {
	f := ltl.MustParse("G F a")
	p := FromFormula(f, nil)
	if p.Formula() != f {
		t.Error("Formula accessor lost the formula")
	}
	if p.String() != "□◇result" && !strings.Contains(p.String(), "◇") {
		t.Errorf("String = %q", p.String())
	}
	ab := gen.Letters(1)
	autoP := FromAutomaton(buchi.UniversalAutomaton(ab))
	if !strings.Contains(autoP.String(), "Büchi") {
		t.Errorf("automaton property String = %q", autoP.String())
	}
	if autoP.Formula() != nil {
		t.Error("automaton property reports a formula")
	}
	var empty Property
	if empty.String() != "<empty property>" {
		t.Errorf("empty property String = %q", empty.String())
	}
	if _, err := empty.Automaton(ab); err == nil {
		t.Error("empty property produced an automaton")
	}
	if _, err := empty.NegationAutomaton(ab); err == nil {
		t.Error("empty property produced a negation automaton")
	}
}

func TestConclusionString(t *testing.T) {
	for _, c := range []Conclusion{ConcreteHolds, ConcreteFails, Inconclusive, Conclusion(99)} {
		if c.String() == "" {
			t.Errorf("empty String for %d", int(c))
		}
	}
}
