package core

import (
	"fmt"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/nfa"
	"relive/internal/word"
)

// This file implements the classical Alpern–Schneider decomposition
// ([3] in the paper) that Section 4 relativizes: every property is the
// intersection of a safety and a liveness property. The safety part is
// the topological closure cl(P) = lim(pre(P)); the liveness part is
// P ∪ ¬cl(P). The paper's Theorem 4.7 is the relative version of this
// fact, and Remark 1 recovers the classical notions by taking
// L_ω = Σ^ω — which is exactly how these functions are implemented.

// Decomposition is the Alpern–Schneider split of a property.
type Decomposition struct {
	// Safety is cl(P), the smallest safety property containing P.
	Safety *buchi.Buchi
	// Liveness is P ∪ ¬cl(P), a liveness property.
	Liveness *buchi.Buchi
}

// Closure returns the topological closure cl(P) = lim(pre(P)) of the
// property over ab: the smallest safety property containing it.
func Closure(p Property, ab *alphabet.Alphabet) (*buchi.Buchi, error) {
	pa, err := p.Automaton(ab)
	if err != nil {
		return nil, err
	}
	pre := pa.PrefixNFA()
	return buchi.Limit(pre), nil
}

// Decompose splits p into a safety and a liveness property over ab with
// P = Safety ∩ Liveness. The closure is built with the deterministic
// limit construction, so its complement is cheap (no rank-based
// blow-up).
func Decompose(p Property, ab *alphabet.Alphabet) (*Decomposition, error) {
	pa, err := p.Automaton(ab)
	if err != nil {
		return nil, err
	}
	closure, err := Closure(p, ab)
	if err != nil {
		return nil, err
	}
	notClosure, err := closure.ComplementDeterministic()
	if err != nil {
		return nil, fmt.Errorf("decompose: %w", err)
	}
	return &Decomposition{
		Safety:   closure,
		Liveness: buchi.Union(pa, notClosure),
	}, nil
}

// IsSafetyProperty reports whether p is a (classical) safety property
// over ab: P = cl(P). Since P ⊆ cl(P) always holds, only
// cl(P) ⊆ P is checked, against ¬P. The witness is a word in
// cl(P) \ P when the check fails.
func IsSafetyProperty(p Property, ab *alphabet.Alphabet) (bool, word.Lasso, error) {
	closure, err := Closure(p, ab)
	if err != nil {
		return false, word.Lasso{}, err
	}
	notP, err := p.NegationAutomaton(ab)
	if err != nil {
		return false, word.Lasso{}, err
	}
	l, found := buchi.IntersectLasso(closure, notP)
	if found {
		return false, l, nil
	}
	return true, word.Lasso{}, nil
}

// IsLivenessProperty reports whether p is a (classical) liveness
// property over ab: every finite word extends to a word in P,
// i.e. pre(P) = Σ*, a universality check run on the configured kernel.
// The witness is a finite word with no extension in P when the check
// fails. By Remark 1 this coincides with relative liveness over the
// universal system.
func IsLivenessProperty(p Property, ab *alphabet.Alphabet) (bool, word.Word, error) {
	pa, err := p.Automaton(ab)
	if err != nil {
		return false, nil, err
	}
	ok, w := nfa.Universal(pa.PrefixNFA())
	if !ok {
		return false, w, nil
	}
	return true, nil, nil
}
