package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCellSingleFlight: concurrent getters coalesce onto one build and
// all see the same value.
func TestCellSingleFlight(t *testing.T) {
	var c cell[int]
	var builds atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.get(nil, func() (int, error) {
				builds.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("get = (%d, %v), want (42, nil)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1", n)
	}
}

// TestCellContextErrorNotMemoized: a builder aborted by its own context
// must not poison the cell; the next caller rebuilds and succeeds.
func TestCellContextErrorNotMemoized(t *testing.T) {
	var c cell[int]
	var builds atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.get(ctx, func() (int, error) {
		builds.Add(1)
		return 0, fmt.Errorf("product aborted: %w", ctx.Err())
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first get err = %v, want context.Canceled", err)
	}
	v, err := c.get(nil, func() (int, error) {
		builds.Add(1)
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("second get = (%d, %v), want (7, nil)", v, err)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("builds = %d, want 2 (cancelled build must not be memoized)", n)
	}
}

// TestCellVerdictErrorMemoized: deterministic (non-context) failures ARE
// memoized — retrying a doomed construction would loop forever.
func TestCellVerdictErrorMemoized(t *testing.T) {
	var c cell[int]
	var builds atomic.Int64
	boom := errors.New("translation failed")
	for i := 0; i < 3; i++ {
		_, err := c.get(nil, func() (int, error) {
			builds.Add(1)
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("get err = %v, want %v", err, boom)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1 (verdict errors memoize)", n)
	}
}

// TestCellWaiterAbandonsOnOwnContext: a waiter whose context expires
// while another goroutine builds gets its own context error promptly,
// while the leader's result is still memoized for later callers.
func TestCellWaiterAbandonsOnOwnContext(t *testing.T) {
	var c cell[int]
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.get(nil, func() (int, error) {
			close(leaderStarted)
			<-release
			return 9, nil
		})
	}()
	<-leaderStarted
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.get(ctx, func() (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
	v, err := c.get(nil, func() (int, error) {
		t.Error("rebuild after successful leader")
		return 0, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("get after leader = (%d, %v), want (9, nil)", v, err)
	}
}

// TestCellCancelledLeaderWakesWaiters: when the leader aborts on its
// context, a patient waiter becomes the new leader and succeeds.
func TestCellCancelledLeaderWakesWaiters(t *testing.T) {
	var c cell[int]
	leaderStarted := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	go func() {
		c.get(leaderCtx, func() (int, error) {
			close(leaderStarted)
			<-leaderCtx.Done()
			return 0, leaderCtx.Err()
		})
	}()
	<-leaderStarted
	done := make(chan int)
	go func() {
		v, err := c.get(nil, func() (int, error) { return 11, nil })
		if err != nil {
			t.Errorf("waiter-turned-leader err = %v", err)
		}
		done <- v
	}()
	cancelLeader()
	select {
	case v := <-done:
		if v != 11 {
			t.Fatalf("waiter-turned-leader got %d, want 11", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never took over after leader cancellation")
	}
}

// TestIsContextError pins the service-critical boundary: context
// sentinels (wrapped or not) are context errors, everything else is
// not.
func TestIsContextError(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{context.Canceled, true},
		{context.DeadlineExceeded, true},
		{fmt.Errorf("relative safety: %w", context.Canceled), true},
		{fmt.Errorf("ts: trim: %w", context.DeadlineExceeded), true},
		{errors.New("context canceled"), false}, // textual lookalike, not the sentinel
		{errors.New("translation failed"), false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := isContextError(tc.err); got != tc.want {
			t.Errorf("isContextError(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
