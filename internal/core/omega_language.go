package core

import (
	"fmt"

	"relive/internal/buchi"
	"relive/internal/kernel"
	"relive/internal/nfa"
	"relive/internal/word"
)

// The checks in rliveness.go and rsafety.go take transition systems,
// whose behaviors are limit-closed. Definitions 4.1 and 4.2, however,
// are stated for arbitrary ω-languages, and Lemmas 4.3/4.4 hold in that
// generality; these entry points accept any ω-regular L_ω as a Büchi
// automaton. (Theorem 5.1 is the one result that genuinely needs limit
// closure.)

// RelativeLivenessOmega decides whether P is a relative liveness
// property of the arbitrary ω-regular language L_ω(lomega), via
// Lemma 4.3: pre(L_ω) = pre(L_ω ∩ P).
func RelativeLivenessOmega(lomega *buchi.Buchi, p Property) (LivenessResult, error) {
	ab := lomega.Alphabet()
	pa, err := p.Automaton(ab)
	if err != nil {
		return LivenessResult{}, fmt.Errorf("relative liveness (ω): %w", err)
	}
	kern := kernel.Default()
	preL := lomega.PrefixNFA()
	preLP, _, err := preProductKernel(nil, kern, buchi.Ops{}, lomega, pa)
	if err != nil {
		return LivenessResult{}, fmt.Errorf("relative liveness (ω): %w", err)
	}
	ok, w, err := nfa.IncludedKernelCtx(nil, kern, preL, preLP)
	if err != nil {
		return LivenessResult{}, fmt.Errorf("relative liveness (ω): %w", err)
	}
	if ok {
		return LivenessResult{Holds: true}, nil
	}
	return LivenessResult{Holds: false, BadPrefix: w}, nil
}

// RelativeSafetyOmega decides whether P is a relative safety property
// of the arbitrary ω-regular language L_ω(lomega), via Lemma 4.4:
// L_ω ∩ lim(pre(L_ω ∩ P)) ⊆ P.
func RelativeSafetyOmega(lomega *buchi.Buchi, p Property) (SafetyResult, error) {
	ab := lomega.Alphabet()
	pa, err := p.Automaton(ab)
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety (ω): %w", err)
	}
	preLP, _, err := preProductKernel(nil, kernel.Default(), buchi.Ops{}, lomega, pa)
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety (ω): %w", err)
	}
	if preLP.NumStates() == 0 {
		return SafetyResult{Holds: true}, nil
	}
	limPre, err := buchi.LimitOfAllAccepting(preLP)
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety (ω): %w", err)
	}
	notP, err := p.NegationAutomaton(ab)
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety (ω): %w", err)
	}
	lhs := buchi.Intersect(lomega, limPre)
	l, found := buchi.IntersectLasso(lhs, notP)
	if found {
		return SafetyResult{Holds: false, Violation: l}, nil
	}
	return SafetyResult{Holds: true}, nil
}

// SatisfiesOmega decides L_ω(lomega) ⊆ P.
func SatisfiesOmega(lomega *buchi.Buchi, p Property) (SatisfactionResult, error) {
	notP, err := p.NegationAutomaton(lomega.Alphabet())
	if err != nil {
		return SatisfactionResult{}, fmt.Errorf("satisfaction (ω): %w", err)
	}
	l, found := buchi.IntersectLasso(lomega, notP)
	if found {
		return SatisfactionResult{Holds: false, Counterexample: l}, nil
	}
	return SatisfactionResult{Holds: true}, nil
}

// IsLimitClosed reports whether L_ω(lomega) is limit closed
// (L_ω = lim(pre(L_ω))), the precondition of Theorem 5.1. The witness
// is an ω-word in lim(pre(L_ω)) \ L_ω when the check fails.
func IsLimitClosed(lomega *buchi.Buchi) (bool, word.Lasso, error) {
	pre := lomega.PrefixNFA().Trim()
	if pre.NumStates() == 0 {
		return true, word.Lasso{}, nil // empty language is limit closed
	}
	limPre, err := buchi.LimitOfAllAccepting(pre)
	if err != nil {
		return false, word.Lasso{}, err
	}
	// L_ω ⊆ lim(pre(L_ω)) always; check the converse.
	ok, l, err := buchi.IncludedKernelCtx(nil, kernel.Default(), limPre, lomega)
	if err != nil {
		return false, word.Lasso{}, fmt.Errorf("limit closure: %w", err)
	}
	if !ok {
		return false, l, nil
	}
	return true, word.Lasso{}, nil
}
