package core

import (
	"fmt"

	"relive/internal/buchi"
	"relive/internal/ts"
	"relive/internal/word"
)

// This file implements the topological characterizations of Section 4:
// in the Cantor topology over Σ^ω (Definition 4.8), a property P is a
// relative liveness property of L_ω iff L_ω ∩ P is dense in L_ω
// (Lemma 4.9), and a relative safety property iff L_ω ∩ P is closed in
// L_ω (Lemma 4.10). Density and closedness of ω-regular sets reduce to
// exactly the prefix conditions the main checkers already decide; the
// functions here expose them in topological vocabulary, plus witness
// utilities phrased in terms of the metric.

// DenseIn decides whether L_ω(sub) is dense in L_ω(sup) in the Cantor
// topology: every x ∈ sup is a limit of points of sub, equivalently
// every finite prefix of sup extends to a word of sub. On failure the
// witness is a prefix of sup with no extension in sub.
func DenseIn(sub, sup *buchi.Buchi) (bool, word.Word) {
	// Density ⟺ pre(sup) ⊆ pre(sub).
	res, _ := MachineClosed(sup, sub)
	return res.Holds, res.BadPrefix
}

// ClosedIn decides whether L_ω(sub) is closed in L_ω(sup): every point
// of sup that is a limit of points of sub belongs to sub. The limit
// points of sub are lim(pre(sub)); the check is
// sup ∩ lim(pre(sub)) ⊆ sub. The caller supplies relComplement, an
// automaton with sup ∩ L_ω(relComplement) = sup \ sub — typically much
// smaller than a full Büchi complement of sub (for sub = behaviors ∩ P
// it is just ¬P). The returned lasso witnesses a violating limit point.
func ClosedIn(sub, sup, relComplement *buchi.Buchi) (bool, word.Lasso, error) {
	preSub := sub.PrefixNFA().Trim()
	if preSub.NumStates() == 0 {
		return true, word.Lasso{}, nil // sub empty: trivially closed
	}
	limPre, err := buchi.LimitOfAllAccepting(preSub)
	if err != nil {
		return false, word.Lasso{}, fmt.Errorf("closedness: %w", err)
	}
	limitPoints := buchi.Intersect(sup, limPre)
	l, found := buchi.IntersectLasso(limitPoints, relComplement)
	if found {
		return false, l, nil
	}
	return true, word.Lasso{}, nil
}

// RelativeLivenessTopological decides relative liveness through
// Lemma 4.9: P is a relative liveness property of the behaviors iff
// behaviors ∩ P is dense in the behaviors. A fourth independent route
// to the same verdict.
func RelativeLivenessTopological(sys *ts.System, p Property) (LivenessResult, error) {
	trimmed, err := sys.Trim()
	if err != nil {
		return LivenessResult{Holds: true}, nil
	}
	behaviors, err := trimmed.Behaviors()
	if err != nil {
		return LivenessResult{}, fmt.Errorf("topological liveness: %w", err)
	}
	pa, err := p.Automaton(sys.Alphabet())
	if err != nil {
		return LivenessResult{}, fmt.Errorf("topological liveness: %w", err)
	}
	dense, w := DenseIn(buchi.Intersect(behaviors, pa), behaviors)
	return LivenessResult{Holds: dense, BadPrefix: w}, nil
}

// RelativeSafetyTopological decides relative safety through Lemma 4.10:
// P is a relative safety property of the behaviors iff behaviors ∩ P is
// closed in the behaviors.
func RelativeSafetyTopological(sys *ts.System, p Property) (SafetyResult, error) {
	trimmed, err := sys.Trim()
	if err != nil {
		return SafetyResult{Holds: true}, nil
	}
	behaviors, err := trimmed.Behaviors()
	if err != nil {
		return SafetyResult{}, fmt.Errorf("topological safety: %w", err)
	}
	pa, err := p.Automaton(sys.Alphabet())
	if err != nil {
		return SafetyResult{}, fmt.Errorf("topological safety: %w", err)
	}
	notP, err := p.NegationAutomaton(sys.Alphabet())
	if err != nil {
		return SafetyResult{}, fmt.Errorf("topological safety: %w", err)
	}
	// Within the behaviors, the complement of behaviors ∩ P is ¬P.
	closed, l, err := ClosedIn(buchi.Intersect(behaviors, pa), behaviors, notP)
	if err != nil {
		return SafetyResult{}, err
	}
	return SafetyResult{Holds: closed, Violation: l}, nil
}

// ApproachingSequence materializes the "dense set" reading of
// Lemma 4.9: given a behavior x and a radius sequence 1/(k+1) for
// k = 0..depth, it returns behaviors y_k ∈ L_ω ∩ P with Cantor distance
// d(x, y_k) ≤ 1/(k+1). When P is a relative liveness property this
// succeeds for every behavior x and every depth; the returned slice
// contains the approximating lassos.
func ApproachingSequence(sys *ts.System, p Property, x word.Lasso, depth int) ([]word.Lasso, error) {
	trimmed, err := sys.Trim()
	if err != nil {
		return nil, fmt.Errorf("approaching sequence: %w", err)
	}
	behaviors, err := trimmed.Behaviors()
	if err != nil {
		return nil, fmt.Errorf("approaching sequence: %w", err)
	}
	if !behaviors.AcceptsLasso(x) {
		return nil, fmt.Errorf("approaching sequence: %s is not a behavior", x.String(sys.Alphabet()))
	}
	pa, err := p.Automaton(sys.Alphabet())
	if err != nil {
		return nil, err
	}
	inter := buchi.Intersect(behaviors, pa)
	out := make([]word.Lasso, 0, depth+1)
	for k := 0; k <= depth; k++ {
		w := x.PrefixOfLen(k)
		cont := restartOnWordOrNil(inter, w)
		if cont == nil {
			return nil, fmt.Errorf("approaching sequence: prefix %s has no extension in L∩P (P is not a relative liveness property)",
				w.String(sys.Alphabet()))
		}
		tail, ok := cont.AcceptingLasso()
		if !ok {
			return nil, fmt.Errorf("approaching sequence: prefix %s has no extension in L∩P (P is not a relative liveness property)",
				w.String(sys.Alphabet()))
		}
		y := word.MustLasso(w.Concat(tail.Prefix), tail.Loop)
		out = append(out, y)
	}
	return out, nil
}

// restartOnWordOrNil returns b restarted at the states reached on w, or
// nil when the run dies.
func restartOnWordOrNil(b *buchi.Buchi, w word.Word) *buchi.Buchi {
	cur := map[buchi.State]bool{}
	for _, s := range b.Initial() {
		cur[s] = true
	}
	for _, sym := range w {
		next := map[buchi.State]bool{}
		for s := range cur {
			for _, t := range b.Succ(s, sym) {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return nil
		}
		cur = next
	}
	states := make([]buchi.State, 0, len(cur))
	for s := range cur {
		states = append(states, s)
	}
	return restart(b, states)
}
