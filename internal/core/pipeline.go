package core

import (
	"sync"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/nfa"
	"relive/internal/obs"
	"relive/internal/ts"
)

// limitsCell is the single-flight memo for the trimmed system and its
// behavior automaton lim(L). It is shared by every pipeline checking
// the same system, so a property portfolio trims the system and builds
// lim(L) exactly once regardless of how many workers race into it.
type limitsCell struct {
	sys *ts.System

	once      sync.Once
	trimmed   *ts.System // nil (with nil error): no infinite behavior
	behaviors *buchi.Buchi
	err       error
}

func newLimitsCell(sys *ts.System) *limitsCell {
	return &limitsCell{sys: sys}
}

func (c *limitsCell) get(rec obs.Recorder) (*ts.System, *buchi.Buchi, error) {
	c.once.Do(func() {
		c.trimmed, c.behaviors, c.err = trimmedBehaviors(rec, c.sys)
	})
	return c.trimmed, c.behaviors, c.err
}

// propCell is the single-flight memo for the property automaton P and
// its negation ¬P over one alphabet. A systems-side portfolio checking
// one property against many same-alphabet systems shares a single
// propCell, so the (potentially exponential) translations run once.
type propCell struct {
	p  Property
	ab *alphabet.Alphabet

	paOnce sync.Once
	pa     *buchi.Buchi
	paErr  error

	notPOnce sync.Once
	notP     *buchi.Buchi
	notPErr  error
}

func (c *propCell) automaton(rec obs.Recorder) (*buchi.Buchi, error) {
	c.paOnce.Do(func() {
		c.pa, c.paErr = c.p.AutomatonRec(rec, c.ab)
	})
	return c.pa, c.paErr
}

func (c *propCell) negation(rec obs.Recorder) (*buchi.Buchi, error) {
	c.notPOnce.Do(func() {
		c.notP, c.notPErr = c.p.NegationAutomatonRec(rec, c.ab)
	})
	return c.notP, c.notPErr
}

// shared holds the single-flight artifact cells one (system, property)
// check fans out over: lim(L), P→Büchi, ¬P, and pre(L∩P). Each cell is
// built exactly once no matter which goroutine arrives first; the
// instrumentation span for an artifact is emitted by (and attributed
// to) whichever goroutine wins the race to build it.
type shared struct {
	sys  *ts.System
	lim  *limitsCell
	prop *propCell

	prodOnce sync.Once
	preLP    *nfa.NFA // pre(L∩P): trim(PrefixNFA(behaviors ∩ P))
	prodErr  error
}

// pipeline is one goroutine's view of a shared artifact set: the
// single-flight cells plus the recorder this goroutine's spans go to.
// The Section 4 decision procedures (satisfaction, relative liveness,
// relative safety) each take a pipeline; CheckAll hands all three the
// same shared cells so each artifact — previously rebuilt by every
// procedure — is constructed exactly once per check, even when the
// three verdicts run concurrently.
type pipeline struct {
	rec obs.Recorder
	sys *ts.System
	p   Property
	ops buchi.Ops
	sh  *shared
}

func newPipeline(rec obs.Recorder, sys *ts.System, p Property) *pipeline {
	sh := &shared{
		sys:  sys,
		lim:  newLimitsCell(sys),
		prop: &propCell{p: p, ab: sys.Alphabet()},
	}
	return &pipeline{rec: rec, sys: sys, p: p, ops: buchi.Ops{Rec: rec}, sh: sh}
}

// newPipelineSharing builds a pipeline over pre-existing cells. Portfolio
// checks use it to share lim(L) across properties (lim non-nil) or the
// property automata across systems (prop non-nil); nil cells are created
// fresh.
func newPipelineSharing(rec obs.Recorder, sys *ts.System, p Property, lim *limitsCell, prop *propCell) *pipeline {
	if lim == nil {
		lim = newLimitsCell(sys)
	}
	if prop == nil {
		prop = &propCell{p: p, ab: sys.Alphabet()}
	}
	return &pipeline{rec: rec, sys: sys, p: p, ops: buchi.Ops{Rec: rec}, sh: &shared{sys: sys, lim: lim, prop: prop}}
}

// view returns a pipeline over the same shared cells whose spans are
// reported to rec instead. CheckAll's parallel mode gives each verdict
// goroutine its own per-worker view.
func (pl *pipeline) view(rec obs.Recorder) *pipeline {
	return &pipeline{rec: rec, sys: pl.sys, p: pl.p, ops: buchi.Ops{Rec: rec}, sh: pl.sh}
}

// limits returns the trimmed system and its behavior automaton lim(L).
// A nil trimmed system (with nil error) signals the vacuous case: sys
// has no infinite behavior at all.
func (pl *pipeline) limits() (*ts.System, *buchi.Buchi, error) {
	return pl.sh.lim.get(pl.rec)
}

// property returns the Büchi automaton for P.
func (pl *pipeline) property() (*buchi.Buchi, error) {
	return pl.sh.prop.automaton(pl.rec)
}

// negation returns the Büchi automaton for ¬P.
func (pl *pipeline) negation() (*buchi.Buchi, error) {
	return pl.sh.prop.negation(pl.rec)
}

// preProduct returns pre(L∩P), the prefix language of the reduced
// product of the behaviors with the property automaton, shared by the
// Lemma 4.3 and Lemma 4.4 checks. The result is trim; it has zero
// states exactly when L_ω ∩ P = ∅. Must not be called in the vacuous
// case (nil trimmed system).
func (pl *pipeline) preProduct() (*nfa.NFA, error) {
	pl.sh.prodOnce.Do(func() {
		_, behaviors, err := pl.limits()
		if err != nil {
			pl.sh.prodErr = err
			return
		}
		pa, err := pl.property()
		if err != nil {
			pl.sh.prodErr = err
			return
		}
		psp := obs.StartSpan(pl.rec, "pre(L∩P)").
			Int("behavior_states", int64(behaviors.NumStates())).
			Int("property_states", int64(pa.NumStates()))
		pl.sh.preLP = pl.ops.PrefixNFA(pl.ops.Intersect(behaviors, pa)).Trim()
		psp.Int("out_states", int64(pl.sh.preLP.NumStates()))
		psp.End()
	})
	return pl.sh.preLP, pl.sh.prodErr
}
