package core

import (
	"context"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/kernel"
	"relive/internal/nfa"
	"relive/internal/obs"
	"relive/internal/ts"
)

// limArtifacts is the value of the limits cell: the trimmed system and
// its behavior automaton lim(L). A nil trimmed system (with nil error)
// is the vacuous case — sys has no infinite behavior at all.
type limArtifacts struct {
	trimmed   *ts.System
	behaviors *buchi.Buchi
}

// limitsCell is the single-flight memo for the trimmed system and its
// behavior automaton lim(L). It is shared by every pipeline checking
// the same system, so a property portfolio trims the system and builds
// lim(L) exactly once regardless of how many workers race into it; the
// serving layer additionally keeps these cells in its LRU so the
// artifacts survive across requests.
type limitsCell struct {
	sys *ts.System
	c   cell[limArtifacts]
}

func newLimitsCell(sys *ts.System) *limitsCell {
	return &limitsCell{sys: sys}
}

func (c *limitsCell) get(ctx context.Context, rec obs.Recorder) (*ts.System, *buchi.Buchi, error) {
	v, err := c.c.get(ctx, func() (limArtifacts, error) {
		trimmed, behaviors, err := trimmedBehaviors(ctx, rec, c.sys)
		return limArtifacts{trimmed: trimmed, behaviors: behaviors}, err
	})
	return v.trimmed, v.behaviors, err
}

// propCell is the single-flight memo for the property automaton P and
// its negation ¬P over one alphabet. A systems-side portfolio checking
// one property against many same-alphabet systems shares a single
// propCell, so the (potentially exponential) translations run once.
type propCell struct {
	p  Property
	ab *alphabet.Alphabet

	pa   cell[*buchi.Buchi]
	notP cell[*buchi.Buchi]
}

func (c *propCell) automaton(ctx context.Context, rec obs.Recorder) (*buchi.Buchi, error) {
	return c.pa.get(ctx, func() (*buchi.Buchi, error) {
		return c.p.AutomatonRec(rec, c.ab)
	})
}

func (c *propCell) negation(ctx context.Context, rec obs.Recorder) (*buchi.Buchi, error) {
	return c.notP.get(ctx, func() (*buchi.Buchi, error) {
		return c.p.NegationAutomatonRec(rec, c.ab)
	})
}

// shared holds the single-flight artifact cells one (system, property)
// check fans out over: lim(L), P→Büchi, ¬P, and pre(L∩P). Each cell is
// built exactly once no matter which goroutine arrives first; the
// instrumentation span for an artifact is emitted by (and attributed
// to) whichever goroutine wins the race to build it. A builder whose
// context is cancelled mid-build leaves the cell empty for the next
// request (see cell).
type shared struct {
	sys  *ts.System
	lim  *limitsCell
	prop *propCell

	prod cell[*nfa.NFA] // pre(L∩P): trim(PrefixNFA(behaviors ∩ P))
}

// pipeline is one goroutine's view of a shared artifact set: the
// single-flight cells plus the recorder this goroutine's spans go to
// and the context its loops poll. The Section 4 decision procedures
// (satisfaction, relative liveness, relative safety) each take a
// pipeline; CheckAll hands all three the same shared cells so each
// artifact — previously rebuilt by every procedure — is constructed
// exactly once per check, even when the three verdicts run
// concurrently. A nil ctx never cancels (the plain serial path).
type pipeline struct {
	ctx  context.Context
	rec  obs.Recorder
	sys  *ts.System
	p    Property
	ops  buchi.Ops
	kern kernel.Kind
	sh   *shared
}

func newPipeline(rec obs.Recorder, sys *ts.System, p Property) *pipeline {
	return newPipelineCtx(nil, rec, sys, p)
}

func newPipelineCtx(ctx context.Context, rec obs.Recorder, sys *ts.System, p Property) *pipeline {
	sh := &shared{
		sys:  sys,
		lim:  newLimitsCell(sys),
		prop: &propCell{p: p, ab: sys.Alphabet()},
	}
	return &pipeline{ctx: ctx, rec: rec, sys: sys, p: p, ops: buchi.Ops{Rec: rec, Ctx: ctx},
		kern: kernel.FromContext(ctx), sh: sh}
}

// newPipelineSharing builds a pipeline over pre-existing cells. Portfolio
// checks use it to share lim(L) across properties (lim non-nil) or the
// property automata across systems (prop non-nil); nil cells are created
// fresh.
func newPipelineSharing(ctx context.Context, rec obs.Recorder, sys *ts.System, p Property, lim *limitsCell, prop *propCell) *pipeline {
	if lim == nil {
		lim = newLimitsCell(sys)
	}
	if prop == nil {
		prop = &propCell{p: p, ab: sys.Alphabet()}
	}
	return &pipeline{ctx: ctx, rec: rec, sys: sys, p: p, ops: buchi.Ops{Rec: rec, Ctx: ctx},
		kern: kernel.FromContext(ctx), sh: &shared{sys: sys, lim: lim, prop: prop}}
}

// view returns a pipeline over the same shared cells whose spans are
// reported to rec instead. CheckAll's parallel mode gives each verdict
// goroutine its own per-worker view.
func (pl *pipeline) view(rec obs.Recorder) *pipeline {
	return &pipeline{ctx: pl.ctx, rec: rec, sys: pl.sys, p: pl.p, ops: buchi.Ops{Rec: rec, Ctx: pl.ctx},
		kern: pl.kern, sh: pl.sh}
}

// viewCells returns a pipeline over an externally cached shared-cell
// set (see PipelineCells), attributing spans to rec and polling ctx.
func viewCells(ctx context.Context, rec obs.Recorder, sh *shared, p Property) *pipeline {
	return &pipeline{ctx: ctx, rec: rec, sys: sh.sys, p: p, ops: buchi.Ops{Rec: rec, Ctx: ctx},
		kern: kernel.FromContext(ctx), sh: sh}
}

// limits returns the trimmed system and its behavior automaton lim(L).
// A nil trimmed system (with nil error) signals the vacuous case: sys
// has no infinite behavior at all.
func (pl *pipeline) limits() (*ts.System, *buchi.Buchi, error) {
	return pl.sh.lim.get(pl.ctx, pl.rec)
}

// property returns the Büchi automaton for P.
func (pl *pipeline) property() (*buchi.Buchi, error) {
	return pl.sh.prop.automaton(pl.ctx, pl.rec)
}

// negation returns the Büchi automaton for ¬P.
func (pl *pipeline) negation() (*buchi.Buchi, error) {
	return pl.sh.prop.negation(pl.ctx, pl.rec)
}

// preProduct returns pre(L∩P), the prefix language of the reduced
// product of the behaviors with the property automaton, shared by the
// Lemma 4.3 and Lemma 4.4 checks. The result is trim; it has zero
// states exactly when L_ω ∩ P = ∅. Must not be called in the vacuous
// case (nil trimmed system).
func (pl *pipeline) preProduct() (*nfa.NFA, error) {
	return pl.sh.prod.get(pl.ctx, func() (*nfa.NFA, error) {
		_, behaviors, err := pl.limits()
		if err != nil {
			return nil, err
		}
		pa, err := pl.property()
		if err != nil {
			return nil, err
		}
		psp := obs.StartSpan(pl.rec, "pre(L∩P)").
			Int("behavior_states", int64(behaviors.NumStates())).
			Int("property_states", int64(pa.NumStates())).
			Tag("kernel", preProductKernelName(pl.kern))
		preLP, explored, err := preProductKernel(pl.ctx, pl.kern, pl.ops, behaviors, pa)
		if err != nil {
			psp.Tag("aborted", "context")
			psp.End()
			return nil, err
		}
		psp.Int("product_states", int64(explored))
		psp.Int("out_states", int64(preLP.NumStates()))
		psp.End()
		return preLP, nil
	})
}

// preProductKernel computes pre(L_ω(a) ∩ L_ω(c)) dispatched over the
// kernel choice: the fused single-pass construction
// (buchi.PreProductNFACtx) by default, or the classic materialized
// Intersect → PrefixNFA → Trim chain when k forces the subset kernels.
// The two routes produce bit-identical automata (see
// buchi/preproduct.go); the fused one skips the intermediate Büchi
// automata. The int result is the product state count, for spans.
func preProductKernel(ctx context.Context, k kernel.Kind, ops buchi.Ops, a, c *buchi.Buchi) (*nfa.NFA, int, error) {
	if k == kernel.Subset {
		prod, err := ops.IntersectCtx(a, c)
		if err != nil {
			return nil, 0, err
		}
		return ops.PrefixNFA(prod).Trim(), prod.NumStates(), nil
	}
	return buchi.PreProductNFACtx(ctx, a, c)
}

// preProductKernelName is the span/metrics label for the pre(L∩P)
// route preProductKernel picks for k.
func preProductKernelName(k kernel.Kind) string {
	if k == kernel.Subset {
		return "materialized"
	}
	return "fused"
}
