package core

import (
	"relive/internal/buchi"
	"relive/internal/nfa"
	"relive/internal/obs"
	"relive/internal/ts"
)

// pipeline memoizes the artifacts the Section 4 decision procedures
// share for one (system, property) pair: the trimmed system and its
// behavior automaton lim(L), the property automaton P, its negation ¬P,
// and the reduced product L ∩ P together with its prefix language
// pre(L∩P). CheckAll runs satisfaction, relative liveness and relative
// safety over one pipeline, so each artifact — previously rebuilt by
// every procedure — is constructed exactly once per check. The
// instrumentation spans ("lim(L)", "P→Büchi", "¬P", "pre(L∩P)") are
// emitted by whichever procedure computes the artifact first.
type pipeline struct {
	rec obs.Recorder
	sys *ts.System
	p   Property
	ops buchi.Ops

	trimDone  bool
	trimmed   *ts.System // nil (with nil error): no infinite behavior
	behaviors *buchi.Buchi
	trimErr   error

	paDone bool
	pa     *buchi.Buchi
	paErr  error

	notPDone bool
	notP     *buchi.Buchi
	notPErr  error

	prodDone bool
	preLP    *nfa.NFA // pre(L∩P): trim(PrefixNFA(behaviors ∩ P))
	prodErr  error
}

func newPipeline(rec obs.Recorder, sys *ts.System, p Property) *pipeline {
	return &pipeline{rec: rec, sys: sys, p: p, ops: buchi.Ops{Rec: rec}}
}

// limits returns the trimmed system and its behavior automaton lim(L).
// A nil trimmed system (with nil error) signals the vacuous case: sys
// has no infinite behavior at all.
func (pl *pipeline) limits() (*ts.System, *buchi.Buchi, error) {
	if !pl.trimDone {
		pl.trimDone = true
		pl.trimmed, pl.behaviors, pl.trimErr = trimmedBehaviors(pl.rec, pl.sys)
	}
	return pl.trimmed, pl.behaviors, pl.trimErr
}

// property returns the Büchi automaton for P.
func (pl *pipeline) property() (*buchi.Buchi, error) {
	if !pl.paDone {
		pl.paDone = true
		pl.pa, pl.paErr = pl.p.AutomatonRec(pl.rec, pl.sys.Alphabet())
	}
	return pl.pa, pl.paErr
}

// negation returns the Büchi automaton for ¬P.
func (pl *pipeline) negation() (*buchi.Buchi, error) {
	if !pl.notPDone {
		pl.notPDone = true
		pl.notP, pl.notPErr = pl.p.NegationAutomatonRec(pl.rec, pl.sys.Alphabet())
	}
	return pl.notP, pl.notPErr
}

// preProduct returns pre(L∩P), the prefix language of the reduced
// product of the behaviors with the property automaton, shared by the
// Lemma 4.3 and Lemma 4.4 checks. The result is trim; it has zero
// states exactly when L_ω ∩ P = ∅. Must not be called in the vacuous
// case (nil trimmed system).
func (pl *pipeline) preProduct() (*nfa.NFA, error) {
	if pl.prodDone {
		return pl.preLP, pl.prodErr
	}
	pl.prodDone = true
	_, behaviors, err := pl.limits()
	if err != nil {
		pl.prodErr = err
		return nil, err
	}
	pa, err := pl.property()
	if err != nil {
		pl.prodErr = err
		return nil, err
	}
	psp := obs.StartSpan(pl.rec, "pre(L∩P)").
		Int("behavior_states", int64(behaviors.NumStates())).
		Int("property_states", int64(pa.NumStates()))
	pl.preLP = pl.ops.PrefixNFA(pl.ops.Intersect(behaviors, pa)).Trim()
	psp.Int("out_states", int64(pl.preLP.NumStates()))
	psp.End()
	return pl.preLP, nil
}
