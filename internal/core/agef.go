package core

import (
	"fmt"

	"relive/internal/graph"
	"relive/internal/ts"
)

// This file implements the ∀□∃◇ check of the branching-time result the
// paper relates itself to ([18, 19]: a preservation theorem for the
// ∀□∃◇-fragment of CTL*): AG EF ⟨a⟩ holds when from every reachable
// state of the (trimmed) system some continuation eventually performs
// one of the target actions. On deterministic systems this coincides
// with □◇a being a relative liveness property, a correspondence the
// test suite checks; on nondeterministic systems AG EF is the
// per-state (stronger) variant, while relative liveness quantifies per
// prefix over the best matching run.

// AGEFResult reports a ∀□∃◇ verdict; when it fails, BadState names a
// reachable state from which no target action is reachable.
type AGEFResult struct {
	Holds    bool
	BadState string
}

// ForAllGloballyExistsEventually decides AG EF ⟨one of actions⟩ on the
// trimmed system.
func ForAllGloballyExistsEventually(sys *ts.System, actions ...string) (AGEFResult, error) {
	if len(actions) == 0 {
		return AGEFResult{}, fmt.Errorf("agef: no target actions")
	}
	trimmed, err := sys.Trim()
	if err != nil {
		// No infinite behavior: AG over an empty reachable live part
		// holds vacuously.
		return AGEFResult{Holds: true}, nil
	}
	targets := map[string]bool{}
	for _, a := range actions {
		if _, ok := trimmed.Alphabet().Lookup(a); !ok {
			// The action cannot occur at all; only vacuously reachable if
			// there are no states, which Trim excluded.
			return AGEFResult{Holds: false, BadState: trimmed.StateName(trimmed.Initial())}, nil
		}
		targets[a] = true
	}
	n := trimmed.NumStates()
	adj := make([][]int, n)
	canDo := make([]bool, n) // state has an outgoing target edge
	for _, e := range trimmed.Edges() {
		adj[e.From] = append(adj[e.From], int(e.To))
		if targets[trimmed.Alphabet().Name(e.Sym)] {
			canDo[e.From] = true
		}
	}
	succ := func(v int) []int { return adj[v] }
	reach := graph.Reachable(n, []int{int(trimmed.Initial())}, succ)
	canReach := graph.CoReachable(n, canDo, succ)
	for v := 0; v < n; v++ {
		if reach[v] && !canReach[v] {
			return AGEFResult{Holds: false, BadState: trimmed.StateName(ts.State(v))}, nil
		}
	}
	return AGEFResult{Holds: true}, nil
}
