package core

import (
	"math/rand"
	"testing"

	"relive/internal/buchi"
	"relive/internal/gen"
	"relive/internal/word"
)

// TestQuickBadPrefixIsShortest: the BadPrefix returned by the
// relative-liveness checker is a shortest unrecoverable prefix,
// verified against breadth-first enumeration of all behavior prefixes.
func TestQuickBadPrefixIsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	ab := gen.Letters(2)
	atoms := ab.Names()
	checked := 0
	for trial := 0; trial < 120 && checked < 20; trial++ {
		sys := randomSystem(rng, ab, 1+rng.Intn(4))
		p := FromFormula(randomPropertyFormula(rng, atoms), nil)
		rl, err := RelativeLiveness(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if rl.Holds {
			continue
		}
		checked++
		trimmed, err := sys.Trim()
		if err != nil {
			continue
		}
		behaviors, err := trimmed.Behaviors()
		if err != nil {
			t.Fatal(err)
		}
		pa, err := p.Automaton(ab)
		if err != nil {
			t.Fatal(err)
		}
		recoverable := func(w word.Word) bool {
			contBeh := restartOnWord(behaviors, w)
			contPA := restartOnWord(pa, w)
			if contBeh == nil {
				return true // not a behavior prefix at all: irrelevant
			}
			if contPA == nil {
				return false
			}
			return !buchi.Intersect(contBeh, contPA).IsEmpty()
		}
		// The returned prefix must be unrecoverable...
		if recoverable(rl.BadPrefix) {
			t.Fatalf("trial %d: BadPrefix %s is recoverable", trial, rl.BadPrefix.String(ab))
		}
		// ...and no strictly shorter behavior prefix may be unrecoverable.
		for _, w := range gen.Words(ab, len(rl.BadPrefix)-1) {
			if len(w) >= len(rl.BadPrefix) {
				continue // gen.Words(ab, -1) still yields ε
			}
			if trimmed.AcceptsWord(w) && !recoverable(w) {
				t.Fatalf("trial %d: shorter unrecoverable prefix %s exists (returned %s)",
					trial, w.String(ab), rl.BadPrefix.String(ab))
			}
		}
	}
	if checked == 0 {
		t.Skip("no failing samples")
	}
}
