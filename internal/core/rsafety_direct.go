package core

import (
	"fmt"
	"sort"

	"relive/internal/buchi"
	"relive/internal/ts"
)

// RelativeSafetyDirect decides relative safety straight from
// Definition 4.2, as an independent second algorithm cross-validating
// the Lemma 4.4 route: P fails to be a relative safety property iff
// some behavior x ∉ P has every prefix extendable into L_ω ∩ P.
// Whether a prefix is extendable depends only on its configuration —
// the pair (set of behavior states, set of property states) reached —
// of which there are finitely many. The checker marks each reachable
// configuration "live" when the product restarted there is nonempty,
// and searches for a violating behavior in
// behaviors ∩ ¬P ∩ lim(live-configuration paths).
func RelativeSafetyDirect(sys *ts.System, p Property) (SafetyResult, error) {
	trimmed, err := sys.Trim()
	if err != nil {
		return SafetyResult{Holds: true}, nil
	}
	behaviors, err := trimmed.Behaviors()
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety (direct): %w", err)
	}
	pa, err := p.Automaton(sys.Alphabet())
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety (direct): %w", err)
	}
	notP, err := p.NegationAutomaton(sys.Alphabet())
	if err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety (direct): %w", err)
	}

	// Deterministic configuration automaton.
	type cfgKey struct{ sysSet, propSet string }
	type cfgEntry struct {
		sys  []buchi.State
		prop []buchi.State
	}
	keyOf := func(set []buchi.State) string {
		b := make([]byte, 0, len(set)*2)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8))
		}
		return string(b)
	}
	sortSet := func(set map[buchi.State]bool) []buchi.State {
		out := make([]buchi.State, 0, len(set))
		for s := range set {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	live := buchi.New(sys.Alphabet()) // safety automaton over live configurations
	index := map[cfgKey]buchi.State{}
	var entries []cfgEntry
	var queue []buchi.State
	intern := func(e cfgEntry) (buchi.State, bool) {
		k := cfgKey{keyOf(e.sys), keyOf(e.prop)}
		if s, ok := index[k]; ok {
			return s, false
		}
		s := live.AddState(true)
		index[k] = s
		entries = append(entries, e)
		queue = append(queue, s)
		return s, true
	}

	start := cfgEntry{sys: append([]buchi.State(nil), behaviors.Initial()...),
		prop: append([]buchi.State(nil), pa.Initial()...)}
	sort.Slice(start.sys, func(i, j int) bool { return start.sys[i] < start.sys[j] })
	sort.Slice(start.prop, func(i, j int) bool { return start.prop[i] < start.prop[j] })
	isLive := func(e cfgEntry) bool {
		return !buchi.IntersectEmptyFrom(behaviors, pa, e.sys, e.prop)
	}
	if !isLive(start) {
		// No behavior satisfies P at all: every x ∈ L\P has the empty
		// prefix as its dead point... on the contrary: the empty prefix
		// has no extension in L∩P, so Definition 4.2 holds vacuously.
		return SafetyResult{Holds: true}, nil
	}
	s0, _ := intern(start)
	live.SetInitial(s0)
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		e := entries[cur]
		for _, sym := range sys.Alphabet().Symbols() {
			nextSys := map[buchi.State]bool{}
			for _, s := range e.sys {
				for _, t := range behaviors.Succ(s, sym) {
					nextSys[t] = true
				}
			}
			if len(nextSys) == 0 {
				continue
			}
			nextProp := map[buchi.State]bool{}
			for _, s := range e.prop {
				for _, t := range pa.Succ(s, sym) {
					nextProp[t] = true
				}
			}
			ne := cfgEntry{sys: sortSet(nextSys), prop: sortSet(nextProp)}
			if !isLive(ne) {
				continue // dead configuration: paths through it satisfy 4.2
			}
			to, _ := intern(ne)
			live.AddTransition(cur, sym, to)
		}
	}

	l, found := buchi.IntersectLasso(buchi.Intersect(behaviors, notP), live)
	if found {
		return SafetyResult{Holds: false, Violation: l}, nil
	}
	return SafetyResult{Holds: true}, nil
}
