package core

import (
	"context"
	"fmt"

	"relive/internal/buchi"
	"relive/internal/fairness"
	"relive/internal/hom"
	"relive/internal/kernel"
	"relive/internal/obs"
	"relive/internal/ts"
)

// This file implements the fair-abstract check of the paper's direct
// successor (Ultes-Nitsche & Wolper, "Checking Properties within
// Fairness and Behavior Abstractions"): given a system L, a fairness
// notion F, a simple homomorphism h and a property P over the abstract
// alphabet, decide whether every F-fair run of L satisfies P through h,
// i.e. whether no F-fair run x has h(x) defined with h(x) ∉ P. The
// violating runs are exactly the fair runs of L accepted by h⁻¹(¬P)
// (hom.InverseImageBuchi), so the decision combines the repo's two
// halves: the Sections 6–8 abstraction machinery builds h⁻¹(¬P), and
// the Theorem 5.1 Streett-style fair-emptiness checker decides whether
// a fair accepted run exists. A kernel-dispatched pre(L ∩ h⁻¹(¬P))
// emptiness pre-filter settles the common "no run at all violates"
// case without touching the fairness machinery; the verdict and the
// witness are kernel-independent by construction, so reports are
// bit-identical across Auto/Subset/Antichain.

// FairAbstractReport is the outcome of a fair-abstract check. It
// marshals to JSON for rlcheck -json and the /check/fair-abstract
// endpoint; the witness words use concrete (resp. abstract) action
// names.
type FairAbstractReport struct {
	Property string `json:"property"`
	Hom      string `json:"hom"`
	Fairness string `json:"fairness"` // "strong" or "weak"
	States   int    `json:"states"`

	// Holds: every fair run of the system satisfies the property through
	// h. Vacuous marks the degenerate case of a system without infinite
	// behavior.
	Holds   bool `json:"holds"`
	Vacuous bool `json:"vacuous,omitempty"`

	// On failure, a fair violating run of the concrete system (prefix +
	// loop of action names) and its abstract image under h.
	ViolationPrefix []string `json:"violationPrefix,omitempty"`
	ViolationLoop   []string `json:"violationLoop,omitempty"`
	AbstractPrefix  []string `json:"abstractPrefix,omitempty"`
	AbstractLoop    []string `json:"abstractLoop,omitempty"`

	run *fairness.Run
}

// Witness returns the violating fair run when the check failed, with
// edges over the original (untrimmed) system's states.
func (r *FairAbstractReport) Witness() *fairness.Run { return r.run }

// FairnessKindName renders a fairness.Kind as the wire label used by
// reports, the CLI and the serve endpoint.
func FairnessKindName(kind fairness.Kind) string {
	switch kind {
	case fairness.Strong:
		return "strong"
	case fairness.Weak:
		return "weak"
	}
	return fmt.Sprintf("kind(%d)", int(kind))
}

// ParseFairnessKind parses the wire label back into a fairness.Kind.
func ParseFairnessKind(s string) (fairness.Kind, error) {
	switch s {
	case "strong":
		return fairness.Strong, nil
	case "weak":
		return fairness.Weak, nil
	}
	return 0, fmt.Errorf("core: unknown fairness kind %q (want \"strong\" or \"weak\")", s)
}

// CheckFairAbstract decides whether all kind-fair runs of sys satisfy
// eta through h. eta is a property over h's destination alphabet; when
// formula-backed it must be in Σ'-normal form (atoms are abstract
// action names).
func CheckFairAbstract(sys *ts.System, h *hom.Hom, kind fairness.Kind, eta Property) (*FairAbstractReport, error) {
	return CheckFairAbstractRec(nil, sys, h, kind, eta)
}

// CheckFairAbstractRec is CheckFairAbstract with every pipeline phase
// reported to rec: the trim/behavior construction ("lim(L)"), the
// negation automaton ("¬P"), the inverse image ("h⁻¹(¬P)"), the
// kernel-dispatched pre-filter ("pre(L∩h⁻¹(¬P))"), and the fair
// emptiness search ("fair(L∩h⁻¹(¬P))").
func CheckFairAbstractRec(rec obs.Recorder, sys *ts.System, h *hom.Hom, kind fairness.Kind, eta Property) (*FairAbstractReport, error) {
	return CheckFairAbstractCells(nil, rec, NewSystemCells(sys), h, kind, eta)
}

// CheckFairAbstractCtx is CheckFairAbstract with cooperative
// cancellation; the returned error wraps ctx.Err() when cancelled.
func CheckFairAbstractCtx(ctx context.Context, rec obs.Recorder, sys *ts.System, h *hom.Hom, kind fairness.Kind, eta Property) (*FairAbstractReport, error) {
	return CheckFairAbstractCells(ctx, rec, NewSystemCells(sys), h, kind, eta)
}

// CheckFairAbstractCells is CheckFairAbstractCtx over a pre-existing
// (possibly cached) system artifact set, so a serving layer shares the
// trimmed system and lim(L) with the other endpoints' checks.
func CheckFairAbstractCells(ctx context.Context, rec obs.Recorder, sc *SystemCells, h *hom.Hom, kind fairness.Kind, eta Property) (*FairAbstractReport, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("fair abstract: %w", err)
	}
	if kind != fairness.Strong && kind != fairness.Weak {
		return nil, fmt.Errorf("fair abstract: unknown fairness kind %d", int(kind))
	}
	sys := sc.System()
	if h.Source() != sys.Alphabet() {
		return nil, fmt.Errorf("fair abstract: homomorphism source alphabet is not the system's alphabet")
	}
	if f := eta.Formula(); f != nil {
		letters := map[string]bool{}
		for _, name := range h.Dest().Names() {
			letters[name] = true
		}
		if !f.Normalize().IsSigmaNormalForm(letters) {
			return nil, fmt.Errorf("fair abstract: %s is not in Σ'-normal form for alphabet %s",
				f, h.Dest())
		}
	}

	sp := obs.StartSpan(rec, "core.CheckFairAbstract").
		Tag("paper", "fairness within behavior abstraction (successor to Thm 5.1 + Cor 8.4)").
		Tag("fairness", FairnessKindName(kind))
	defer sp.End()

	report := &FairAbstractReport{
		Property: eta.String(),
		Hom:      h.String(),
		Fairness: FairnessKindName(kind),
		States:   sys.NumStates(),
	}

	trimmed, behaviors, err := sc.lim.get(ctx, rec)
	if err != nil {
		return nil, fmt.Errorf("fair abstract: %w", err)
	}
	if trimmed == nil {
		// No infinite behavior: there are no fair runs at all.
		report.Holds = true
		report.Vacuous = true
		sp.Int("holds", 1)
		return report, nil
	}

	notEta, err := eta.NegationAutomatonRec(rec, h.Dest())
	if err != nil {
		return nil, fmt.Errorf("fair abstract: %w", err)
	}

	isp := obs.StartSpan(rec, "h⁻¹(¬P)").
		Tag("paper", "Definition 6.1: inverse image under h").
		Int("in_states", int64(notEta.NumStates()))
	bad := h.InverseImageBuchi(notEta)
	isp.Int("out_states", int64(bad.NumStates()))
	isp.End()

	// Kernel-dispatched pre-filter: when lim(L) ∩ h⁻¹(¬P) is empty, no
	// run at all — fair or not — violates, and the Streett machinery is
	// skipped. Both kernel routes produce bit-identical automata, and
	// only emptiness of the result feeds the verdict, so the report is
	// kernel-independent.
	kern := kernel.FromContext(ctx)
	psp := obs.StartSpan(rec, "pre(L∩h⁻¹(¬P))").
		Int("behavior_states", int64(behaviors.NumStates())).
		Int("violation_states", int64(bad.NumStates())).
		Tag("kernel", preProductKernelName(kern))
	pre, explored, err := preProductKernel(ctx, kern, buchi.Ops{Rec: rec, Ctx: ctx}, behaviors, bad)
	if err != nil {
		psp.Tag("aborted", "context")
		psp.End()
		return nil, fmt.Errorf("fair abstract: %w", err)
	}
	psp.Int("product_states", int64(explored))
	psp.Int("out_states", int64(pre.NumStates()))
	psp.End()
	if pre.NumStates() == 0 {
		report.Holds = true
		sp.Int("holds", 1)
		return report, nil
	}

	// Some run violates; decide whether a fair one does. The search runs
	// on the already-trimmed system (its own trim pass is then a no-op)
	// and is deterministic and kernel-independent.
	esp := obs.StartSpan(rec, "fair(L∩h⁻¹(¬P))").
		Tag("paper", "Theorem 5.1 machinery: Streett fair emptiness").
		Tag("fairness", FairnessKindName(kind))
	run, found, err := fairness.ExistsFairRunCtx(ctx, trimmed, bad, kind)
	if err != nil {
		esp.Tag("aborted", "context")
		esp.End()
		return nil, fmt.Errorf("fair abstract: %w", err)
	}
	esp.Int("violation_found", boolInt(found))
	esp.End()
	if !found {
		report.Holds = true
		sp.Int("holds", 1)
		return report, nil
	}

	// Witness: map the run (over trimmed states) back to the original
	// system by name, render the concrete words, and apply h for the
	// abstract image. The image is always defined: acceptance of the
	// vis track inside h⁻¹(¬P) forces a visible letter in the loop.
	orig := remapRun(run, trimmed, sys)
	report.run = &orig
	ab := sys.Alphabet()
	for _, e := range orig.Prefix {
		report.ViolationPrefix = append(report.ViolationPrefix, ab.Name(e.Sym))
	}
	for _, e := range orig.Loop {
		report.ViolationLoop = append(report.ViolationLoop, ab.Name(e.Sym))
	}
	if img, ok := h.ApplyLasso(orig.Word()); ok {
		for _, s := range img.Prefix {
			report.AbstractPrefix = append(report.AbstractPrefix, h.Dest().Name(s))
		}
		for _, s := range img.Loop {
			report.AbstractLoop = append(report.AbstractLoop, h.Dest().Name(s))
		}
	}
	sp.Int("holds", 0)
	return report, nil
}

// remapRun rewrites a run over the trimmed system into the original
// system's state identifiers (trimming preserves names).
func remapRun(r fairness.Run, trimmed, orig *ts.System) fairness.Run {
	conv := func(es []ts.Edge) []ts.Edge {
		if es == nil {
			return nil
		}
		out := make([]ts.Edge, len(es))
		for i, e := range es {
			from, _ := orig.LookupState(trimmed.StateName(e.From))
			to, _ := orig.LookupState(trimmed.StateName(e.To))
			out[i] = ts.Edge{From: from, Sym: e.Sym, To: to}
		}
		return out
	}
	return fairness.Run{Prefix: conv(r.Prefix), Loop: conv(r.Loop)}
}

// AllFairRunsSatisfy generalizes AllStronglyFairRunsSatisfy to both
// fairness notions: it checks directly on a plain system whether every
// kind-fair run satisfies p, returning a violating fair run otherwise.
func AllFairRunsSatisfy(sys *ts.System, p Property, kind fairness.Kind) (bool, *fairness.Run, error) {
	notP, err := p.NegationAutomaton(sys.Alphabet())
	if err != nil {
		return false, nil, fmt.Errorf("fair runs check: %w", err)
	}
	run, found, err := fairness.ExistsFairRun(sys, notP, kind)
	if err != nil {
		return false, nil, fmt.Errorf("fair runs check: %w", err)
	}
	if found {
		return false, &run, nil
	}
	return true, nil, nil
}
