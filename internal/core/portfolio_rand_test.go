package core

import (
	"math/rand"
	"reflect"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/gen"
	"relive/internal/ts"
)

// Randomized differential coverage for the portfolio schedulers: on
// arbitrary batches the portfolio verdicts and witnesses must be
// byte-identical to running CheckAll one property (or one system) at a
// time. The shared single-flight cells — one limits cell per portfolio,
// one property cell per alphabet — are exactly where cross-contamination
// between batch entries would hide, so batches deliberately mix
// property kinds, verdict outcomes and worker counts.

// randomBatchProperty draws a property for batch tests: formulas in the
// common case, raw Büchi automata (over the system's own alphabet)
// often enough to exercise the automaton route through the shared
// caches.
func randomBatchProperty(rng *rand.Rand, ab *alphabet.Alphabet) Property {
	if rng.Float64() < 0.3 {
		cfg := gen.Config{States: 2 + rng.Intn(3), Density: 0.5, AcceptRatio: 0.5}
		return FromAutomaton(gen.Buchi(rng, cfg, ab))
	}
	return FromFormula(gen.Formula(rng, ab.Names(), 1+rng.Intn(3)), nil)
}

func TestQuickPortfolioRandomBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ab := gen.Letters(2)
	for trial := 0; trial < 40; trial++ {
		sys := gen.System(rng, ab, 3+rng.Intn(5), 0.25+0.4*rng.Float64())

		// Keep only properties the serial route can decide; the batch
		// must still agree entry by entry.
		var props []Property
		var want []*Report
		for len(props) < 3+rng.Intn(5) {
			p := randomBatchProperty(rng, ab)
			rep, err := CheckAll(sys, p)
			if err != nil {
				continue
			}
			props = append(props, p)
			want = append(want, rep)
		}
		for _, workers := range []int{0, 1, 2, 5} {
			got, err := CheckPortfolio(sys, props, workers)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				for i := range want {
					if !reflect.DeepEqual(want[i], got[i]) {
						t.Fatalf("trial %d workers=%d: report %d differs\nserial:    %+v\nportfolio: %+v\nproperty: %s\nsystem:\n%s",
							trial, workers, i, want[i], got[i], props[i], sys.FormatString())
					}
				}
			}
		}
	}
}

func TestQuickSystemsPortfolioRandomBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	// Two distinct alphabets in one batch: systems sharing an alphabet
	// share one property cell, systems on the other alphabet must get
	// their own — a mixup would translate P over the wrong letters.
	ab1 := gen.Letters(2)
	ab2 := gen.Letters(3)
	for trial := 0; trial < 25; trial++ {
		p := FromFormula(gen.Formula(rng, ab1.Names(), 1+rng.Intn(3)), nil)

		var systems []*ts.System
		var want []*Report
		for len(systems) < 4+rng.Intn(5) {
			ab := ab1
			if rng.Float64() < 0.3 {
				ab = ab2
			}
			sys := gen.System(rng, ab, 3+rng.Intn(5), 0.25+0.4*rng.Float64())
			rep, err := CheckAll(sys, p)
			if err != nil {
				continue
			}
			systems = append(systems, sys)
			want = append(want, rep)
		}
		for _, workers := range []int{0, 1, 3} {
			got, err := CheckSystemsPortfolio(systems, p, workers)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				for i := range want {
					if !reflect.DeepEqual(want[i], got[i]) {
						t.Fatalf("trial %d workers=%d: report %d differs\nserial:    %+v\nportfolio: %+v\nsystem:\n%s",
							trial, workers, i, want[i], got[i], systems[i].FormatString())
					}
				}
			}
		}
	}
}
