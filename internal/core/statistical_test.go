package core

import (
	"context"
	"encoding/json"
	"testing"

	"relive/internal/ltl"
	"relive/internal/ts"
)

const statServerText = `init idle
idle request busy
busy result idle
busy reject idle
`

const statBrokenText = `init broken
broken request busy
busy result broken
busy reject stuck
stuck no stuck
`

func statSys(t *testing.T, text string) *ts.System {
	t.Helper()
	sys, err := ts.ParseString(text)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return sys
}

func TestCheckStatisticalVerdicts(t *testing.T) {
	p := FromFormula(ltl.MustParse("G F result"), nil)

	rep, err := CheckStatistical(statSys(t, statServerText), p, StatOptions{Seed: 5})
	if err != nil {
		t.Fatalf("CheckStatistical(correct): %v", err)
	}
	if rep.Verdict != StatVerdictHolds || !rep.Holds || !rep.Statistical {
		t.Fatalf("correct server: %+v", rep)
	}
	if rep.Hits != rep.Settled || rep.Settled == 0 || rep.CIHigh != 1 || rep.CILow <= 0.9 {
		t.Fatalf("correct server counts implausible: %+v", rep)
	}
	if rep.Method != "clopper-pearson" {
		t.Fatalf("method = %q", rep.Method)
	}

	rep, err = CheckStatistical(statSys(t, statBrokenText), p, StatOptions{Seed: 5})
	if err != nil {
		t.Fatalf("CheckStatistical(broken): %v", err)
	}
	if rep.Verdict != StatVerdictFails || rep.Holds {
		t.Fatalf("broken server: %+v", rep)
	}
	if len(rep.CounterexampleLoop) == 0 {
		t.Fatalf("broken server: no counterexample loop: %+v", rep)
	}
	for _, a := range rep.CounterexampleLoop {
		if a == "result" {
			t.Fatalf("counterexample loop contains result: %v", rep.CounterexampleLoop)
		}
	}
	if l, ok := rep.Witness(); !ok || !l.Valid() {
		t.Fatalf("Witness() = %v, %v on a fails verdict", l, ok)
	}
}

// TestCheckStatisticalVacuous: a system with no infinite behavior holds
// vacuously — there is nothing to sample.
func TestCheckStatisticalVacuous(t *testing.T) {
	sys := statSys(t, "init a\na step b\n")
	rep, err := CheckStatistical(sys, FromFormula(ltl.MustParse("G F step"), nil), StatOptions{})
	if err != nil {
		t.Fatalf("CheckStatistical: %v", err)
	}
	if rep.Verdict != StatVerdictHolds || !rep.Vacuous || !rep.Holds || rep.Samples != 0 {
		t.Fatalf("vacuous report: %+v", rep)
	}
}

// TestCheckStatisticalDeterministicJSON is the replay contract the
// serving layer's caches depend on: the marshaled report is a
// byte-identical function of (system, property, options), for any
// worker count.
func TestCheckStatisticalDeterministicJSON(t *testing.T) {
	p := FromFormula(ltl.MustParse("G F result"), nil)
	for _, text := range []string{statServerText, statBrokenText} {
		var base []byte
		for _, workers := range []int{1, 2, 8} {
			rep, err := CheckStatistical(statSys(t, text), p,
				StatOptions{Seed: 11, Samples: 150, Steps: 96, Workers: workers})
			if err != nil {
				t.Fatalf("CheckStatistical(workers=%d): %v", workers, err)
			}
			got, err := json.Marshal(rep)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			if base == nil {
				base = got
			} else if string(got) != string(base) {
				t.Fatalf("workers=%d: JSON diverged:\n got %s\nwant %s", workers, got, base)
			}
		}
	}
}

func TestCheckStatisticalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CheckStatisticalCtx(ctx, nil, statSys(t, statServerText),
		FromFormula(ltl.MustParse("G F result"), nil), StatOptions{Samples: 50000, Steps: 4096})
	if err == nil {
		t.Fatalf("want error from cancelled context")
	}
}

// TestCheckStatisticalPhase: the sampling span maps to its own pipeline
// phase so serve's per-phase histograms pick it up.
func TestCheckStatisticalPhase(t *testing.T) {
	if got := PhaseOf("mc.sample"); got != PhaseSample {
		t.Fatalf("PhaseOf(mc.sample) = %q", got)
	}
	found := false
	for _, p := range Phases {
		if p == PhaseSample {
			found = true
		}
	}
	if !found {
		t.Fatalf("Phases does not list %q", PhaseSample)
	}
}
