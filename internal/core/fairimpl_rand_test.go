package core

import (
	"math/rand"
	"testing"

	"relive/internal/gen"
)

// TestQuickTheorem51RandomWide re-checks the Theorem 5.1 synthesis on a
// wider randomized family than TestQuickTheorem51Random: three-letter
// alphabets, larger systems, and both formula and Büchi-automaton
// properties. System behaviors lim(L) are limit closed by construction,
// so every generated instance meets the theorem's limit-closure
// hypothesis; the relative-liveness hypothesis is decided by the core
// pipeline and both directions are exercised:
//
//   - when it holds, the synthesized implementation must have the same
//     behaviors, all its strongly fair runs must satisfy P (checked
//     through the package-level AllStronglyFairRunsSatisfy on the
//     implementation system, not just the FairImplementation method),
//     and every bottom SCC must carry a mark;
//   - when it fails, SynthesizeFairImplementation must refuse.
func TestQuickTheorem51RandomWide(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	ab := gen.Letters(3)
	atoms := ab.Names()
	synthesized, refused := 0, 0
	for trial := 0; trial < 300 && synthesized < 30; trial++ {
		sys := gen.System(rng, ab, 2+rng.Intn(5), 0.2+0.4*rng.Float64())
		var p Property
		if rng.Float64() < 0.3 {
			cfg := gen.Config{States: 2 + rng.Intn(3), Density: 0.5, AcceptRatio: 0.5}
			p = FromAutomaton(gen.Buchi(rng, cfg, ab))
		} else {
			p = FromFormula(gen.Formula(rng, atoms, 1+rng.Intn(3)), nil)
		}
		rl, err := RelativeLiveness(sys, p)
		if err != nil {
			continue
		}
		if !rl.Holds {
			if _, err := SynthesizeFairImplementation(sys, p); err == nil {
				t.Fatalf("trial %d: synthesis accepted a non-relative-liveness property %s\nsystem:\n%s",
					trial, p, sys.FormatString())
			}
			refused++
			continue
		}
		if _, err := sys.Trim(); err != nil {
			continue // no behaviors; nothing to synthesize
		}
		fi, err := SynthesizeFairImplementation(sys, p)
		if err != nil {
			t.Fatalf("trial %d: synthesis failed for a relative liveness property: %v\nsystem:\n%s",
				trial, err, sys.FormatString())
		}
		synthesized++

		same, w, err := fi.SameBehaviors(sys)
		if err != nil {
			t.Fatal(err)
		}
		if !same {
			t.Fatalf("trial %d: behaviors differ, witness %s\nsystem:\n%s\nimplementation:\n%s",
				trial, w.String(ab), sys.FormatString(), fi.System.FormatString())
		}
		good, bad, err := AllStronglyFairRunsSatisfy(fi.System, p)
		if err != nil {
			t.Fatal(err)
		}
		if !good {
			t.Fatalf("trial %d: strongly fair run of the implementation violates %s: %v\nsystem:\n%s\nimplementation:\n%s",
				trial, p, bad, sys.FormatString(), fi.System.FormatString())
		}
		if !fi.BottomSCCsContainMarks() {
			t.Fatalf("trial %d: bottom SCC of the implementation without marks\nimplementation:\n%s",
				trial, fi.System.FormatString())
		}
	}
	if synthesized < 30 {
		t.Fatalf("only %d instances synthesized (want 30); generator too weak", synthesized)
	}
	t.Logf("theorem 5.1 wide sweep: %d synthesized, %d correctly refused", synthesized, refused)
}
