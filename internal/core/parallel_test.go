package core

import (
	"math/rand"
	"reflect"
	"testing"

	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/obs"
	"relive/internal/paper"
	"relive/internal/ts"
)

// figureCases returns the paper's Fig 2/3/4 systems with the property
// the paper checks against them.
func figureCases(t *testing.T) []struct {
	name string
	sys  *ts.System
	p    Property
} {
	t.Helper()
	fig2, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	fig4, err := paper.Fig4System()
	if err != nil {
		t.Fatal(err)
	}
	p := FromFormula(paper.PropertyInfResults(), nil)
	return []struct {
		name string
		sys  *ts.System
		p    Property
	}{
		{"fig2", fig2, p},
		{"fig3", paper.Fig3System(), p},
		{"fig4", fig4, p},
	}
}

func TestCheckAllParMatchesSerialOnFigures(t *testing.T) {
	for _, tc := range figureCases(t) {
		serial, err := CheckAll(tc.sys, tc.p)
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := CheckAllPar(tc.sys, tc.p, workers)
			if err != nil {
				t.Fatalf("%s parallel(%d): %v", tc.name, workers, err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("%s parallel(%d) report differs:\nserial:   %+v\nparallel: %+v",
					tc.name, workers, serial, par)
			}
		}
	}
}

func TestCheckAllParMatchesSerialRandomized(t *testing.T) {
	formulas := []*ltl.Formula{
		ltl.MustParse("G F a"),
		ltl.MustParse("F G b"),
		ltl.MustParse("G (a -> F b)"),
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		sys := randomSystem(rng, gen.Letters(2), 4+rng.Intn(10))
		for _, f := range formulas {
			p := FromFormula(f, nil)
			serial, serr := CheckAll(sys, p)
			par, perr := CheckAllPar(sys, p, 4)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("trial %d %s: error mismatch: serial=%v parallel=%v", trial, f, serr, perr)
			}
			if serr != nil {
				continue
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("trial %d %s: reports differ:\nserial:   %+v\nparallel: %+v",
					trial, f, serial, par)
			}
		}
	}
}

func TestCheckPortfolioMatchesSerial(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	props := []Property{
		FromFormula(paper.PropertyInfResults(), nil),
		FromFormula(ltl.MustParse("G F request"), nil),
		FromFormula(ltl.MustParse("G (request -> F (result | reject))"), nil),
		FromFormula(ltl.MustParse("F G reject"), nil),
	}
	want := make([]*Report, len(props))
	for i, p := range props {
		if want[i], err = CheckAll(sys, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{0, 1, 2, 3, 16} {
		got, err := CheckPortfolio(sys, props, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: portfolio reports differ from serial", workers)
		}
	}
}

func TestCheckSystemsPortfolioMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ab := gen.Letters(2)
	var systems []*ts.System
	for i := 0; i < 6; i++ {
		systems = append(systems, randomSystem(rng, ab, 5+rng.Intn(8)))
	}
	p := FromFormula(ltl.MustParse("G F a"), nil)
	want := make([]*Report, len(systems))
	for i, sys := range systems {
		var err error
		if want[i], err = CheckAll(sys, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := CheckSystemsPortfolio(systems, p, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: systems-portfolio reports differ from serial", workers)
		}
	}
}

// TestParallelCheckAllSingleFlight pins the single-flight guarantee:
// with all three verdicts racing, each shared artifact is still built
// exactly once.
func TestParallelCheckAllSingleFlight(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	p := FromFormula(paper.PropertyInfResults(), nil)
	for trial := 0; trial < 10; trial++ {
		tr := obs.NewTrace()
		if _, err := CheckAllParRec(tr, sys, p, 3); err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, s := range tr.Spans() {
			counts[s.Name]++
		}
		for _, name := range []string{"lim(L)", "P→Büchi", "¬P", "pre(L∩P)"} {
			if counts[name] != 1 {
				t.Errorf("trial %d: span %q recorded %d times, want exactly 1", trial, name, counts[name])
			}
		}
		// The three verdict spans must each appear once, under their own
		// worker attribution.
		for _, name := range []string{"core.Satisfies", "core.RelativeLiveness", "core.RelativeSafety"} {
			if counts[name] != 1 {
				t.Errorf("trial %d: span %q recorded %d times, want exactly 1", trial, name, counts[name])
			}
		}
	}
}

// TestParallelSpanAttribution checks that per-goroutine spans parent
// under the CheckAll root and carry worker tags.
func TestParallelSpanAttribution(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	p := FromFormula(paper.PropertyInfResults(), nil)
	tr := obs.NewTrace()
	if _, err := CheckAllParRec(tr, sys, p, 3); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	var root obs.SpanID
	for _, s := range spans {
		if s.Name == "core.CheckAll" {
			root = s.ID
		}
	}
	if root == 0 {
		t.Fatal("no core.CheckAll root span")
	}
	workers := map[string]bool{}
	for _, s := range spans {
		if s.Parent == root && s.Tags["worker"] != "" {
			workers[s.Tags["worker"]] = true
		}
	}
	for _, w := range []string{"satisfies", "rel-liveness", "rel-safety"} {
		if !workers[w] {
			t.Errorf("no top-level span attributed to worker %q (got %v)", w, workers)
		}
	}
}
