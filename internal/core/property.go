// Package core implements the contributions of Nitsche & Wolper
// (PODC'97): deciding relative liveness and relative safety of ω-regular
// properties over finite-state systems (Section 4), machine closure
// (Definition 4.6), the conjunction theorem (Theorem 4.7), synthesis and
// verification of fair implementations (Theorem 5.1), and verification
// via behavior abstraction under simple homomorphisms (Sections 6–8).
package core

import (
	"fmt"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/ltl"
	"relive/internal/obs"
)

// Property is an ω-regular property P ⊆ Σ^ω, given either as a PLTL
// formula with a labeling function or directly as a Büchi automaton.
// Formula-backed properties negate syntactically; automaton-backed ones
// complement with the rank-based construction.
type Property struct {
	formula   *ltl.Formula
	labeling  *ltl.Labeling
	automaton *buchi.Buchi
}

// FromFormula returns the property of all ω-words satisfying f under
// lab. A nil lab defaults to the canonical Σ-labeling of the checked
// system's alphabet (Definition 7.2).
func FromFormula(f *ltl.Formula, lab *ltl.Labeling) Property {
	return Property{formula: f, labeling: lab}
}

// FromAutomaton returns the property accepted by b.
func FromAutomaton(b *buchi.Buchi) Property {
	return Property{automaton: b}
}

// Formula returns the defining formula, if any.
func (p Property) Formula() *ltl.Formula { return p.formula }

// String describes the property.
func (p Property) String() string {
	if p.formula != nil {
		return p.formula.String()
	}
	if p.automaton != nil {
		return fmt.Sprintf("Büchi(%d states)", p.automaton.NumStates())
	}
	return "<empty property>"
}

func (p Property) labelingFor(ab *alphabet.Alphabet) *ltl.Labeling {
	if p.labeling != nil {
		return p.labeling
	}
	return ltl.Canonical(ab)
}

// Automaton returns a Büchi automaton for P over ab.
func (p Property) Automaton(ab *alphabet.Alphabet) (*buchi.Buchi, error) {
	switch {
	case p.automaton != nil:
		return p.automaton, nil
	case p.formula != nil:
		return ltl.TranslateBuchi(p.formula, p.labelingFor(ab)), nil
	}
	return nil, fmt.Errorf("core: empty property")
}

// NegationAutomaton returns a Büchi automaton for Σ^ω \ P over ab.
func (p Property) NegationAutomaton(ab *alphabet.Alphabet) (*buchi.Buchi, error) {
	return p.NegationAutomatonRec(nil, ab)
}

// AutomatonRec is Automaton with the construction reported to rec: one
// span named "P→Büchi" with the output size, tagged with the source
// (formula translation vs. given automaton).
func (p Property) AutomatonRec(rec obs.Recorder, ab *alphabet.Alphabet) (*buchi.Buchi, error) {
	if rec == nil {
		return p.Automaton(ab)
	}
	sp := obs.StartSpan(rec, "P→Büchi")
	defer sp.End()
	if p.formula != nil {
		sp.Tag("source", "ltl.TranslateBuchi")
	} else {
		sp.Tag("source", "automaton")
	}
	out, err := p.Automaton(ab)
	if err != nil {
		return nil, err
	}
	sp.Int("out_states", int64(out.NumStates()))
	sp.Int("out_transitions", int64(out.NumTransitions()))
	return out, nil
}

// NegationAutomatonRec is NegationAutomaton with the construction
// reported to rec: a "¬P" span covering either the syntactic negation
// translation or the rank-based complement (which appears as a child
// span with its own blowup figures).
func (p Property) NegationAutomatonRec(rec obs.Recorder, ab *alphabet.Alphabet) (*buchi.Buchi, error) {
	switch {
	case p.automaton != nil:
		sp := obs.StartSpan(rec, "¬P")
		defer sp.End()
		c, err := buchi.Ops{Rec: rec}.Complement(p.automaton)
		if err != nil {
			return nil, fmt.Errorf("core: complementing property automaton: %w", err)
		}
		sp.Int("out_states", int64(c.NumStates()))
		return c, nil
	case p.formula != nil:
		sp := obs.StartSpan(rec, "¬P").Tag("source", "ltl.TranslateNegation")
		defer sp.End()
		out := ltl.TranslateNegation(p.formula, p.labelingFor(ab))
		sp.Int("out_states", int64(out.NumStates()))
		sp.Int("out_transitions", int64(out.NumTransitions()))
		return out, nil
	}
	return nil, fmt.Errorf("core: empty property")
}
