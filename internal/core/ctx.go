package core

import (
	"context"
	"fmt"
	"sync"

	"relive/internal/obs"
	"relive/internal/ts"
)

// This file is the context-aware surface of the Section 4 decision
// procedures. Every ...Ctx entry point is verdict- and witness-identical
// to its plain counterpart; the context is threaded into the pipeline's
// ops so the reachability, product, subset-construction, and emptiness
// loops poll it cooperatively (see internal/interrupt) and return
// context.Canceled / context.DeadlineExceeded — wrapped, so errors.Is
// applies — instead of running the PSPACE-hard work to completion.
//
// It also exports SystemCells and PipelineCells, opaque handles over the
// single-flight artifact cells, so a serving layer can keep trimmed
// systems, property automata, and pre(L∩P) products alive across
// requests: concurrent identical requests coalesce onto one build, and a
// cache hit skips the build entirely. A request cancelled mid-build
// never poisons a cell — the next request simply rebuilds (see cell).

// SystemCells caches the system-only artifacts of the pipeline: the
// trimmed system and its behavior automaton lim(L). One SystemCells
// value may back many PipelineCells for different properties against
// the same system. Safe for concurrent use.
type SystemCells struct {
	sys *ts.System
	lim *limitsCell
}

// NewSystemCells wraps sys in a reusable single-flight artifact handle.
func NewSystemCells(sys *ts.System) *SystemCells {
	return &SystemCells{sys: sys, lim: newLimitsCell(sys)}
}

// System returns the underlying system. Serving layers that cache
// SystemCells by structural hash parse properties against this system's
// alphabet so all artifacts agree on symbol identity.
func (sc *SystemCells) System() *ts.System { return sc.sys }

// PipelineCells caches the full artifact set for one (system, property)
// pair: lim(L), P→Büchi, ¬P, and pre(L∩P). Safe for concurrent use; any
// number of checks may run over one value, coalescing their builds.
type PipelineCells struct {
	sh *shared
	p  Property
}

// NewPipelineCells builds a fresh artifact set for (sys, p).
func NewPipelineCells(sys *ts.System, p Property) *PipelineCells {
	return &PipelineCells{
		sh: &shared{sys: sys, lim: newLimitsCell(sys), prop: &propCell{p: p, ab: sys.Alphabet()}},
		p:  p,
	}
}

// NewPipelineCellsSharing builds an artifact set for property p that
// shares sc's trimmed system and behavior automaton, so checking many
// properties against one cached system trims it exactly once.
func NewPipelineCellsSharing(sc *SystemCells, p Property) *PipelineCells {
	return &PipelineCells{
		sh: &shared{sys: sc.sys, lim: sc.lim, prop: &propCell{p: p, ab: sc.sys.Alphabet()}},
		p:  p,
	}
}

// CheckAllCtx is CheckAll with cooperative cancellation and optional
// parallelism: workers > 1 runs the three verdicts concurrently (as
// CheckAllParRec), sharing one single-flight artifact set either way.
// On cancellation the returned error wraps ctx.Err().
func CheckAllCtx(ctx context.Context, rec obs.Recorder, sys *ts.System, p Property, workers int) (*Report, error) {
	return CheckAllCellsCtx(ctx, rec, NewPipelineCells(sys, p), workers)
}

// CheckAllCellsCtx is CheckAllCtx over a pre-existing (possibly cached)
// artifact set.
func CheckAllCellsCtx(ctx context.Context, rec obs.Recorder, pc *PipelineCells, workers int) (*Report, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: check all: %w", err)
	}
	sp := obs.StartSpan(rec, "core.CheckAll").
		Tag("paper", "Section 4 (cross-checked via Theorem 4.7)")
	if workers > 1 {
		sp.Tag("mode", "parallel")
	}
	defer sp.End()
	pl := viewCells(ctx, rec, pc.sh, pc.p)
	if workers <= 1 {
		return checkAllPipe(pl)
	}
	return checkAllPar(pl, rec, sp)
}

// checkAllPar fans the three verdicts out onto one goroutine each over
// pl's shared cells, attributing spans per worker. Shared by
// CheckAllParRec (nil ctx) and CheckAllCellsCtx.
func checkAllPar(pl *pipeline, rec obs.Recorder, sp obs.Span) (*Report, error) {
	var (
		wg   sync.WaitGroup
		sat  SatisfactionResult
		rl   LivenessResult
		rs   SafetyResult
		errs [3]error
	)
	wg.Add(3)
	go func() {
		defer wg.Done()
		view := pl.view(obs.ForkWorker(rec, "satisfies", sp.ID()))
		sat, errs[0] = satisfiesPipe(view)
	}()
	go func() {
		defer wg.Done()
		view := pl.view(obs.ForkWorker(rec, "rel-liveness", sp.ID()))
		rl, errs[1] = relativeLivenessPipe(view)
	}()
	go func() {
		defer wg.Done()
		view := pl.view(obs.ForkWorker(rec, "rel-safety", sp.ID()))
		rs, errs[2] = relativeSafetyPipe(view)
	}()
	wg.Wait()
	// A genuine verdict error outranks a cancellation: when one verdict
	// fails deterministically while the cancellation tears the others
	// down, report the deterministic failure.
	for _, err := range errs {
		if err != nil && !isContextError(err) {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return assembleReport(pl.sys, pl.p, sat, rl, rs)
}

// SatisfiesCtx is Satisfies (Definition 3.2) with cooperative
// cancellation; the returned error wraps ctx.Err() when cancelled.
func SatisfiesCtx(ctx context.Context, rec obs.Recorder, sys *ts.System, p Property) (SatisfactionResult, error) {
	return SatisfiesCellsCtx(ctx, rec, NewPipelineCells(sys, p))
}

// SatisfiesCellsCtx is SatisfiesCtx over a pre-existing artifact set.
func SatisfiesCellsCtx(ctx context.Context, rec obs.Recorder, pc *PipelineCells) (SatisfactionResult, error) {
	if err := ctxErr(ctx); err != nil {
		return SatisfactionResult{}, fmt.Errorf("satisfaction: %w", err)
	}
	return satisfiesPipe(viewCells(ctx, rec, pc.sh, pc.p))
}

// RelativeLivenessCtx is RelativeLiveness (Lemma 4.3) with cooperative
// cancellation; the returned error wraps ctx.Err() when cancelled.
func RelativeLivenessCtx(ctx context.Context, rec obs.Recorder, sys *ts.System, p Property) (LivenessResult, error) {
	return RelativeLivenessCellsCtx(ctx, rec, NewPipelineCells(sys, p))
}

// RelativeLivenessCellsCtx is RelativeLivenessCtx over a pre-existing
// artifact set.
func RelativeLivenessCellsCtx(ctx context.Context, rec obs.Recorder, pc *PipelineCells) (LivenessResult, error) {
	if err := ctxErr(ctx); err != nil {
		return LivenessResult{}, fmt.Errorf("relative liveness: %w", err)
	}
	return relativeLivenessPipe(viewCells(ctx, rec, pc.sh, pc.p))
}

// RelativeSafetyCtx is RelativeSafety (Lemma 4.4) with cooperative
// cancellation; the returned error wraps ctx.Err() when cancelled.
func RelativeSafetyCtx(ctx context.Context, rec obs.Recorder, sys *ts.System, p Property) (SafetyResult, error) {
	return RelativeSafetyCellsCtx(ctx, rec, NewPipelineCells(sys, p))
}

// RelativeSafetyCellsCtx is RelativeSafetyCtx over a pre-existing
// artifact set.
func RelativeSafetyCellsCtx(ctx context.Context, rec obs.Recorder, pc *PipelineCells) (SafetyResult, error) {
	if err := ctxErr(ctx); err != nil {
		return SafetyResult{}, fmt.Errorf("relative safety: %w", err)
	}
	return relativeSafetyPipe(viewCells(ctx, rec, pc.sh, pc.p))
}

// CheckPortfolioCtx is CheckPortfolioRec with cooperative cancellation:
// each worker's checks poll ctx, and jobs not yet started when ctx
// expires are abandoned. The first error (preferring a non-context one)
// is returned.
func CheckPortfolioCtx(ctx context.Context, rec obs.Recorder, sys *ts.System, props []Property, workers int) ([]*Report, error) {
	sp := obs.StartSpan(rec, "core.CheckPortfolio").
		Int("properties", int64(len(props)))
	defer sp.End()
	lim := newLimitsCell(sys)
	reports := make([]*Report, len(props))
	errs := make([]error, len(props))
	run := func(rec obs.Recorder, i int) {
		if err := ctxErr(ctx); err != nil {
			errs[i] = err
			return
		}
		pl := newPipelineSharing(ctx, rec, sys, props[i], lim, nil)
		csp := obs.StartSpan(rec, "core.CheckAll").
			Tag("paper", "Section 4 (cross-checked via Theorem 4.7)").
			Tag("property", props[i].String())
		reports[i], errs[i] = checkAllPipe(pl)
		csp.End()
	}
	pool(rec, sp.ID(), len(props), workers, run)
	sp.Int("workers", int64(poolSize(len(props), workers)))
	return reports, portfolioErr(errs, func(i int) string {
		return fmt.Sprintf("portfolio property %d (%s)", i, props[i].String())
	})
}

// CheckSystemsPortfolioCtx is CheckSystemsPortfolioRec with cooperative
// cancellation, sharing property cells per alphabet as the plain
// variant does.
func CheckSystemsPortfolioCtx(ctx context.Context, rec obs.Recorder, systems []*ts.System, p Property, workers int) ([]*Report, error) {
	sp := obs.StartSpan(rec, "core.CheckSystemsPortfolio").
		Int("systems", int64(len(systems)))
	defer sp.End()
	cells := propCellsByAlphabet(systems, p)
	reports := make([]*Report, len(systems))
	errs := make([]error, len(systems))
	run := func(rec obs.Recorder, i int) {
		if err := ctxErr(ctx); err != nil {
			errs[i] = err
			return
		}
		pl := newPipelineSharing(ctx, rec, systems[i], p, nil, cells[systems[i].Alphabet()])
		csp := obs.StartSpan(rec, "core.CheckAll").
			Tag("paper", "Section 4 (cross-checked via Theorem 4.7)").
			Int("system", int64(i))
		reports[i], errs[i] = checkAllPipe(pl)
		csp.End()
	}
	pool(rec, sp.ID(), len(systems), workers, run)
	sp.Int("workers", int64(poolSize(len(systems), workers)))
	return reports, portfolioErr(errs, func(i int) string {
		return fmt.Sprintf("portfolio system %d", i)
	})
}

// portfolioErr reduces per-job errors to one: the first non-context
// error if any (a deterministic failure outranks the cancellation that
// tore the other jobs down), otherwise the first context error. The
// reports slice is discarded by callers on a non-nil return.
func portfolioErr(errs []error, label func(int) string) error {
	for i, err := range errs {
		if err != nil && !isContextError(err) {
			return fmt.Errorf("%s: %w", label(i), err)
		}
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%s: %w", label(i), err)
		}
	}
	return nil
}
