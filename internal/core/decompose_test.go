package core

import (
	"math/rand"
	"testing"

	"relive/internal/buchi"
	"relive/internal/gen"
	"relive/internal/ltl"
)

func TestIsSafetyAndLivenessClassics(t *testing.T) {
	ab := gen.Letters(2)
	tests := []struct {
		formula  string
		safety   bool
		liveness bool
	}{
		{"G a", true, false},
		{"G F a", false, true},
		{"F a", false, true},
		{"a", true, false},
		{"true", true, true},
		// With singleton labels over {a,b}, only a^ω violates a U b, so
		// it is liveness (every prefix extends) but not safety.
		{"a U b", false, true},
		// a W b ≡ true over {a,b}: a^ω satisfies the □a disjunct.
		{"a W b", true, true},
		{"X a", true, false}, // "second letter is a" is safety
		{"F G a", false, true},
		// First letter a AND infinitely many b: genuinely mixed.
		{"a & G F b", false, false},
	}
	for _, tc := range tests {
		p := FromFormula(ltl.MustParse(tc.formula), ltl.Canonical(ab))
		safe, _, err := IsSafetyProperty(p, ab)
		if err != nil {
			t.Fatalf("%q: %v", tc.formula, err)
		}
		if safe != tc.safety {
			t.Errorf("IsSafetyProperty(%q) = %v, want %v", tc.formula, safe, tc.safety)
		}
		live, _, err := IsLivenessProperty(p, ab)
		if err != nil {
			t.Fatalf("%q: %v", tc.formula, err)
		}
		if live != tc.liveness {
			t.Errorf("IsLivenessProperty(%q) = %v, want %v", tc.formula, live, tc.liveness)
		}
	}
}

func TestSafetyWitness(t *testing.T) {
	ab := gen.Letters(2)
	p := FromFormula(ltl.MustParse("G F a"), ltl.Canonical(ab))
	safe, l, err := IsSafetyProperty(p, ab)
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Fatal("GFa reported safety")
	}
	// The witness lies in cl(P) \ P: every prefix extends into P, but
	// the word itself violates it.
	pa, err := p.Automaton(ab)
	if err != nil {
		t.Fatal(err)
	}
	if pa.AcceptsLasso(l) {
		t.Error("safety witness satisfies the property")
	}
}

// TestQuickDecomposition validates P = Safety ∩ Liveness on random
// formulas, both on sampled lassos and by checking the parts really are
// safety/liveness properties.
func TestQuickDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	ab := gen.Letters(2)
	atoms := ab.Names()
	for trial := 0; trial < 30; trial++ {
		f := randomPropertyFormula(rng, atoms)
		p := FromFormula(f, ltl.Canonical(ab))
		dec, err := Decompose(p, ab)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := p.Automaton(ab)
		if err != nil {
			t.Fatal(err)
		}
		inter := buchi.Intersect(dec.Safety, dec.Liveness)
		for i := 0; i < 15; i++ {
			l := gen.Lasso(rng, ab, 3, 3)
			inP := pa.AcceptsLasso(l)
			inSplit := inter.AcceptsLasso(l)
			if inP != inSplit {
				t.Fatalf("trial %d (%s): decomposition disagrees on %s: P=%v split=%v",
					trial, f, l.String(ab), inP, inSplit)
			}
		}
		// The safety part is a safety property...
		safe, w, err := IsSafetyProperty(FromAutomaton(dec.Safety), ab)
		if err != nil {
			t.Fatal(err)
		}
		if !safe {
			t.Fatalf("trial %d (%s): closure not safety, witness %s", trial, f, w.String(ab))
		}
		// ...and the liveness part a liveness property.
		live, bad, err := IsLivenessProperty(FromAutomaton(dec.Liveness), ab)
		if err != nil {
			t.Fatal(err)
		}
		if !live {
			t.Fatalf("trial %d (%s): liveness part not liveness, witness %s",
				trial, f, bad.String(ab))
		}
	}
}

// TestQuickDeterministicComplement checks the two-copy complementation
// against lasso membership on the deterministic closures.
func TestQuickDeterministicComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	ab := gen.Letters(2)
	atoms := ab.Names()
	for trial := 0; trial < 30; trial++ {
		p := FromFormula(randomPropertyFormula(rng, atoms), ltl.Canonical(ab))
		closure, err := Closure(p, ab)
		if err != nil {
			t.Fatal(err)
		}
		if !closure.IsDeterministic() {
			t.Fatal("limit construction produced a nondeterministic automaton")
		}
		comp, err := closure.ComplementDeterministic()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			l := gen.Lasso(rng, ab, 3, 3)
			if closure.AcceptsLasso(l) == comp.AcceptsLasso(l) {
				t.Fatalf("trial %d: deterministic complement wrong on %s", trial, l.String(ab))
			}
		}
	}
	// Nondeterministic input must be rejected.
	nd := buchi.New(ab)
	q := nd.AddState(true)
	sym := ab.Symbols()[0]
	r := nd.AddState(true)
	nd.AddTransition(q, sym, q)
	nd.AddTransition(q, sym, r)
	nd.SetInitial(q)
	if _, err := nd.ComplementDeterministic(); err == nil {
		t.Error("nondeterministic automaton accepted by ComplementDeterministic")
	}
}
