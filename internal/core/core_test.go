package core

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/paper"
	"relive/internal/ts"
	"relive/internal/word"
)

// --- Paper claims: Figures 2 and 3, Section 2 ---

func TestFig2NotSatisfiedButRelativeLiveness(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	p := FromFormula(paper.PropertyInfResults(), nil)

	sat, err := Satisfies(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if sat.Holds {
		t.Error("□◇result satisfied by Figure 2 — the paper says it is not")
	}
	// The paper's counterexample shape: lock·(request·no·reject)^ω. Our
	// checker returns some counterexample; validate it semantically.
	got, err := ltl.EvalLasso(paper.PropertyInfResults(), sat.Counterexample, ltl.Canonical(sys.Alphabet()))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Errorf("counterexample %s satisfies the property", sat.Counterexample.String(sys.Alphabet()))
	}

	rl, err := RelativeLiveness(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Holds {
		t.Errorf("□◇result is not a relative liveness property of Figure 2 (bad prefix %s) — the paper says it is",
			rl.BadPrefix.String(sys.Alphabet()))
	}
}

func TestFig2PaperCounterexampleIsABehavior(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	beh, err := sys.Behaviors()
	if err != nil {
		t.Fatal(err)
	}
	ab := sys.Alphabet()
	l := word.MustLasso(
		word.FromNames(ab, paper.ActLock),
		word.FromNames(ab, paper.ActRequest, paper.ActNo, paper.ActReject),
	)
	if !beh.AcceptsLasso(l) {
		t.Fatal("lock·(request·no·reject)^ω is not a behavior of Figure 2 — model wrong")
	}
	got, err := ltl.EvalLasso(paper.PropertyInfResults(), l, ltl.Canonical(ab))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("the paper's counterexample satisfies □◇result?")
	}
}

func TestFig3NotRelativeLiveness(t *testing.T) {
	sys := paper.Fig3System()
	p := FromFormula(paper.PropertyInfResults(), nil)
	rl, err := RelativeLiveness(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Holds {
		t.Fatal("□◇result is a relative liveness property of Figure 3 — the paper says no fairness can save it")
	}
	// The bad prefix must be a real behavior prefix.
	if !sys.AcceptsWord(rl.BadPrefix) {
		t.Errorf("bad prefix %s is not a word of the system", rl.BadPrefix.String(sys.Alphabet()))
	}
}

// --- Lemma 4.3 route vs Definition 4.1 route vs machine closure ---

func randomSystem(rng *rand.Rand, ab *alphabet.Alphabet, n int) *ts.System {
	s := ts.New(ab)
	for i := 0; i < n; i++ {
		s.AddState(stateName(i))
	}
	syms := ab.Symbols()
	for i := 0; i < n; i++ {
		for _, sym := range syms {
			for k := 0; k < 2; k++ {
				if rng.Float64() < 0.45 {
					from, _ := s.LookupState(stateName(i))
					to, _ := s.LookupState(stateName(rng.Intn(n)))
					s.AddTransition(from, sym, to)
				}
			}
		}
	}
	init, _ := s.LookupState(stateName(0))
	s.SetInitial(init)
	return s
}

func stateName(i int) string { return "s" + string(rune('0'+i%10)) + string(rune('a'+i/10)) }

func randomPropertyFormula(rng *rand.Rand, atoms []string) *ltl.Formula {
	var build func(depth int) *ltl.Formula
	build = func(depth int) *ltl.Formula {
		if depth <= 0 || rng.Float64() < 0.3 {
			return ltl.Atom(atoms[rng.Intn(len(atoms))])
		}
		switch rng.Intn(7) {
		case 0:
			return ltl.Not(build(depth - 1))
		case 1:
			return ltl.And(build(depth-1), build(depth-1))
		case 2:
			return ltl.Or(build(depth-1), build(depth-1))
		case 3:
			return ltl.Next(build(depth - 1))
		case 4:
			return ltl.Until(build(depth-1), build(depth-1))
		case 5:
			return ltl.Eventually(build(depth - 1))
		default:
			return ltl.Globally(build(depth - 1))
		}
	}
	return build(3)
}

// TestQuickRLThreeAlgorithmsAgree cross-validates the three independent
// decision procedures for relative liveness: the Lemma 4.3
// characterization, the direct Definition 4.1 configuration search, and
// the machine-closure route (Definition 4.6).
func TestQuickRLThreeAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ab := gen.Letters(2)
	atoms := ab.Names()
	for trial := 0; trial < 60; trial++ {
		sys := randomSystem(rng, ab, 1+rng.Intn(4))
		p := FromFormula(randomPropertyFormula(rng, atoms), nil)

		r1, err := RelativeLiveness(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RelativeLivenessDirect(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		r3, err := RelativeLivenessViaMachineClosure(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Holds != r2.Holds || r1.Holds != r3.Holds {
			t.Fatalf("trial %d: algorithms disagree: lemma4.3=%v direct=%v machineclosure=%v (property %s)\n%s",
				trial, r1.Holds, r2.Holds, r3.Holds, p, sys.FormatString())
		}
		// Witness validation: the bad prefix must be a behavior prefix
		// with no continuation satisfying the property.
		if !r1.Holds {
			if trimmed, err := sys.Trim(); err == nil {
				if !trimmed.AcceptsWord(r1.BadPrefix) {
					t.Fatalf("trial %d: bad prefix not a behavior prefix", trial)
				}
			}
		}
	}
}

// TestQuickConjunctionTheorem exercises Theorem 4.7: satisfaction iff
// relative liveness and relative safety.
func TestQuickConjunctionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	ab := gen.Letters(2)
	atoms := ab.Names()
	for trial := 0; trial < 60; trial++ {
		sys := randomSystem(rng, ab, 1+rng.Intn(4))
		p := FromFormula(randomPropertyFormula(rng, atoms), nil)

		sat, err := Satisfies(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		viaConj, err := SatisfiesViaConjunction(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if sat.Holds != viaConj {
			rl, _ := RelativeLiveness(sys, p)
			rs, _ := RelativeSafety(sys, p)
			t.Fatalf("trial %d: Theorem 4.7 violated: direct=%v, RL=%v, RS=%v (property %s)\n%s",
				trial, sat.Holds, rl.Holds, rs.Holds, p, sys.FormatString())
		}
	}
}

// TestRelativeSafetyWitness validates the violation lasso returned by a
// failing relative-safety check: it is a behavior, it violates P, and
// each of its prefixes (up to a bound) extends to a behavior in P.
func TestRelativeSafetyWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ab := gen.Letters(2)
	atoms := ab.Names()
	found := 0
	for trial := 0; trial < 120 && found < 10; trial++ {
		sys := randomSystem(rng, ab, 1+rng.Intn(4))
		f := randomPropertyFormula(rng, atoms)
		p := FromFormula(f, nil)
		rs, err := RelativeSafety(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Holds {
			continue
		}
		found++
		beh, err := sys.Behaviors()
		if err != nil {
			t.Fatal(err)
		}
		if !beh.AcceptsLasso(rs.Violation) {
			t.Fatalf("trial %d: violation %s is not a behavior", trial, rs.Violation.String(ab))
		}
		sat, err := ltl.EvalLasso(f, rs.Violation, ltl.Canonical(ab))
		if err != nil {
			t.Fatal(err)
		}
		if sat {
			t.Fatalf("trial %d: violation satisfies the property", trial)
		}
		// Every prefix of the violation extends into L_ω ∩ P: check via
		// the product being nonempty from each prefix configuration.
		pa, err := p.Automaton(ab)
		if err != nil {
			t.Fatal(err)
		}
		bound := len(rs.Violation.Prefix) + 2*len(rs.Violation.Loop) + 2
		for k := 0; k <= bound; k++ {
			w := rs.Violation.PrefixOfLen(k)
			contBeh := restartOnWord(beh, w)
			contPA := restartOnWord(pa, w)
			if contBeh == nil || contPA == nil {
				t.Fatalf("trial %d: prefix %s leaves the product", trial, w.String(ab))
			}
			if buchi.Intersect(contBeh, contPA).IsEmpty() {
				t.Fatalf("trial %d: prefix %s of the violation has no extension in L∩P — not in lim(pre(L∩P))",
					trial, w.String(ab))
			}
		}
	}
	if found == 0 {
		t.Skip("no relative-safety violations sampled")
	}
}

// restartOnWord returns b restarted at the states reached on w, or nil
// when the run dies.
func restartOnWord(b *buchi.Buchi, w word.Word) *buchi.Buchi {
	cur := map[buchi.State]bool{}
	for _, s := range b.Initial() {
		cur[s] = true
	}
	for _, sym := range w {
		next := map[buchi.State]bool{}
		for s := range cur {
			for _, t := range b.Succ(s, sym) {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return nil
		}
		cur = next
	}
	var states []buchi.State
	for s := range cur {
		states = append(states, s)
	}
	return restart(b, states)
}

// --- Remark 1: with L_ω = Σ^ω, relative liveness/safety coincide with
// classic liveness/safety ---

func TestRemark1ClassicalLivenessAndSafety(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	full := ts.New(ab)
	full.AddEdge("q", "a", "q")
	full.AddEdge("q", "b", "q")
	init, _ := full.LookupState("q")
	full.SetInitial(init)

	tests := []struct {
		formula  string
		liveness bool
		safety   bool
	}{
		{"G F a", true, false},       // pure liveness
		{"G a", false, true},         // pure safety
		{"F a", true, false},         // liveness
		{"a", false, true},           // safety (first letter)
		{"G F a & G a", false, true}, // ∧ of safety and liveness... Ga ∧ GFa ≡ Ga: safety
		{"true", true, true},         // both
	}
	for _, tc := range tests {
		p := FromFormula(ltl.MustParse(tc.formula), nil)
		rl, err := RelativeLiveness(full, p)
		if err != nil {
			t.Fatal(err)
		}
		if rl.Holds != tc.liveness {
			t.Errorf("liveness(%q) = %v, want %v", tc.formula, rl.Holds, tc.liveness)
		}
		rs, err := RelativeSafety(full, p)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Holds != tc.safety {
			t.Errorf("safety(%q) = %v, want %v", tc.formula, rs.Holds, tc.safety)
		}
	}
}
