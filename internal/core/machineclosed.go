package core

import (
	"fmt"

	"relive/internal/buchi"
	"relive/internal/kernel"
	"relive/internal/nfa"
	"relive/internal/obs"
	"relive/internal/ts"
	"relive/internal/word"
)

// MachineClosureResult is the outcome of a machine-closure check; when
// the structure is not machine closed, BadPrefix ∈ pre(L_ω) \ pre(Λ).
type MachineClosureResult struct {
	Holds     bool
	BadPrefix word.Word
}

// MachineClosed decides whether (L_ω, Λ) is a machine closed live
// structure (Definition 4.6): pre(L_ω) ⊆ pre(Λ). Both languages are
// given as Büchi automata; Λ ⊆ L_ω is the caller's obligation.
func MachineClosed(lomega, lambda *buchi.Buchi) (MachineClosureResult, error) {
	return MachineClosedRec(nil, lomega, lambda)
}

// MachineClosedRec is MachineClosed with the two prefix constructions
// and the inclusion check reported to rec.
func MachineClosedRec(rec obs.Recorder, lomega, lambda *buchi.Buchi) (MachineClosureResult, error) {
	sp := obs.StartSpan(rec, "core.MachineClosed").
		Tag("paper", "Definition 4.6: pre(L_ω) ⊆ pre(Λ)")
	defer sp.End()
	ops := buchi.Ops{Rec: rec}
	preL := ops.PrefixNFA(lomega)
	preLambda := ops.PrefixNFA(lambda)
	kern := kernel.Default()
	isp := obs.StartSpan(rec, "pre(L_ω) ⊆ pre(Λ)").
		Tag("kernel", nfa.ResolveKernel(kern, preLambda).String()).
		Int("left_states", int64(preL.NumStates())).
		Int("right_states", int64(preLambda.NumStates()))
	ok, w, err := nfa.IncludedKernelCtx(nil, kern, preL, preLambda)
	isp.End()
	if err != nil {
		return MachineClosureResult{}, fmt.Errorf("machine closure: %w", err)
	}
	if ok {
		return MachineClosureResult{Holds: true}, nil
	}
	return MachineClosureResult{Holds: false, BadPrefix: w}, nil
}

// RelativeLivenessViaMachineClosure decides relative liveness through
// the machine-closure connection stated after Theorem 4.5: P is a
// relative liveness property of L_ω iff (L_ω, P ∩ L_ω) is machine
// closed. It is a third, independent route to the same answer, used for
// cross-validation and ablation benchmarks.
func RelativeLivenessViaMachineClosure(sys *ts.System, p Property) (MachineClosureResult, error) {
	pl := newPipeline(nil, sys, p)
	trimmed, behaviors, err := pl.limits()
	if err != nil {
		return MachineClosureResult{}, fmt.Errorf("machine closure: %w", err)
	}
	if trimmed == nil {
		return MachineClosureResult{Holds: true}, nil
	}
	// pre(Λ) for Λ = L_ω ∩ P is exactly the pipeline's pre(L∩P) product.
	preLambda, err := pl.preProduct()
	if err != nil {
		return MachineClosureResult{}, fmt.Errorf("machine closure: %w", err)
	}
	preL := behaviors.PrefixNFA()
	ok, w, err := nfa.IncludedKernelCtx(nil, pl.kern, preL, preLambda)
	if err != nil {
		return MachineClosureResult{}, fmt.Errorf("machine closure: %w", err)
	}
	if ok {
		return MachineClosureResult{Holds: true}, nil
	}
	return MachineClosureResult{Holds: false, BadPrefix: w}, nil
}
