package core

import (
	"fmt"

	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/nfa"
	"relive/internal/obs"
	"relive/internal/ts"
	"relive/internal/word"
)

// Conclusion is what an abstraction-based verification allows one to
// assert about the concrete system.
type Conclusion int

// Possible conclusions of VerifyViaAbstraction.
const (
	// ConcreteHolds: the abstract check succeeded and h is simple, so by
	// Theorem 8.2 the transformed property is a relative liveness
	// property of the concrete system.
	ConcreteHolds Conclusion = iota + 1
	// ConcreteFails: the abstract check failed; by Theorem 8.3 (which
	// needs no simplicity) the transformed property cannot be a relative
	// liveness property of the concrete system.
	ConcreteFails
	// Inconclusive: the abstract check succeeded but h is not simple, so
	// Theorem 8.2 does not apply; Section 2's Figure 3 shows the
	// conclusion would be unsound.
	Inconclusive
)

// String renders the conclusion.
func (c Conclusion) String() string {
	switch c {
	case ConcreteHolds:
		return "concrete system verified (Theorem 8.2)"
	case ConcreteFails:
		return "concrete system refuted (Theorem 8.3)"
	case Inconclusive:
		return "inconclusive: homomorphism not simple"
	}
	return "unknown"
}

// AbstractionReport is the full outcome of an abstraction-based
// relative-liveness verification.
type AbstractionReport struct {
	// Abstract is the abstract system lim(h(L)) the property was checked
	// on (after the #-extension when h(L) had maximal words).
	Abstract *ts.System
	// ExtendedMaximal records whether maximal words were present in h(L)
	// and the {#}*-extension of [20] was applied; MaximalWitness is one
	// maximal word.
	ExtendedMaximal bool
	MaximalWitness  word.Word
	// Simple is the simplicity verdict for h on L (Definition 6.3), with
	// a witness configuration word when it fails.
	Simple            bool
	SimplicityWitness word.Word
	// AbstractHolds is the relative-liveness verdict of η on the
	// abstract system, with a witness prefix when it fails.
	AbstractHolds     bool
	AbstractBadPrefix word.Word
	// Transformed is R̄(η), the property as interpreted on the concrete
	// system under λ_{hΣΣ'} (Definition 7.4).
	Transformed *ltl.Formula
	// Conclusion is what Theorems 8.2/8.3 allow one to assert.
	Conclusion Conclusion
}

// VerifyViaAbstraction runs the paper's verification method end to end:
// build the abstract system lim(h(L)), restore the no-maximal-words
// precondition by the {#}*-extension if needed, decide whether η is a
// relative liveness property of the abstract behaviors, decide whether h
// is simple on L, and combine the answers per Corollary 8.4. η must be
// in Σ'-normal form (atoms are abstract action names).
func VerifyViaAbstraction(sys *ts.System, h *hom.Hom, eta *ltl.Formula) (*AbstractionReport, error) {
	return VerifyViaAbstractionRec(nil, sys, h, eta)
}

// VerifyViaAbstractionRec is VerifyViaAbstraction with every pipeline
// step reported to rec: the h(L) image, the {#}*-extension, the
// abstract-system construction, the abstract relative-liveness check,
// the simplicity decision, and the R̄(η) transformation.
func VerifyViaAbstractionRec(rec obs.Recorder, sys *ts.System, h *hom.Hom, eta *ltl.Formula) (*AbstractionReport, error) {
	sp := obs.StartSpan(rec, "core.VerifyViaAbstraction").
		Tag("paper", "Corollary 8.4")
	defer sp.End()
	letters := map[string]bool{}
	for _, name := range h.Dest().Names() {
		letters[name] = true
	}
	if !eta.Normalize().IsSigmaNormalForm(letters) {
		return nil, fmt.Errorf("abstraction: %s is not in Σ'-normal form for alphabet %s",
			eta, h.Dest())
	}
	trimmed, err := sys.Trim()
	if err != nil {
		return nil, fmt.Errorf("abstraction: %w", err)
	}
	concNFA, err := trimmed.NFA()
	if err != nil {
		return nil, fmt.Errorf("abstraction: %w", err)
	}

	report := &AbstractionReport{}

	// Maximal words in h(L) would make behaviors of the abstract system
	// lose information (a maximal w has no ω-continuation); extend them
	// with {#}* per [20] so they stay visible as w·#^ω.
	asp := obs.StartSpan(rec, "h(L)").
		Tag("paper", "Definition 6.1: abstracting homomorphism").
		Int("concrete_states", int64(concNFA.NumStates()))
	hasMax, maxW := h.HasMaximalWords(concNFA)
	abstractNFA := h.ImageNFA(concNFA)
	if hasMax {
		report.ExtendedMaximal = true
		report.MaximalWitness = maxW
		esp := obs.StartSpan(rec, "{#}*-extension").
			Tag("paper", "[20]: maximal words stay visible as w·#^ω")
		abstractNFA = h.ExtendMaximalWords(concNFA)
		esp.End()
	}
	asp.Int("image_states", int64(abstractNFA.NumStates()))
	asp.End()
	ssp := obs.StartSpan(rec, "abstract system lim(h(L))")
	abstractSys, err := systemFromPrefixClosed(abstractNFA)
	if err != nil {
		ssp.End()
		return nil, fmt.Errorf("abstraction: %w", err)
	}
	ssp.Int("out_states", int64(abstractSys.NumStates()))
	ssp.End()
	report.Abstract = abstractSys

	// Relative liveness of η on the abstract behaviors, under the
	// canonical Σ'-labeling.
	rl, err := RelativeLivenessRec(rec, abstractSys, FromFormula(eta, ltl.Canonical(abstractSys.Alphabet())))
	if err != nil {
		return nil, fmt.Errorf("abstraction: abstract check: %w", err)
	}
	report.AbstractHolds = rl.Holds
	report.AbstractBadPrefix = rl.BadPrefix

	// Simplicity of h on L (Definition 6.3).
	simsp := obs.StartSpan(rec, "simplicity of h").
		Tag("paper", "Definition 6.3")
	simple, err := h.IsSimple(concNFA)
	simsp.Int("simple", boolInt(err == nil && simple.Simple))
	simsp.End()
	if err != nil {
		return nil, fmt.Errorf("abstraction: simplicity: %w", err)
	}
	report.Simple = simple.Simple
	report.SimplicityWitness = simple.Witness

	// R̄(η), interpreted on the concrete system under λ_{hΣΣ'}.
	rsp := obs.StartSpan(rec, "R̄(η)").
		Tag("paper", "Definition 7.4 / Figure 5")
	rbar, err := ltl.Rbar(eta)
	rsp.End()
	if err != nil {
		return nil, fmt.Errorf("abstraction: %w", err)
	}
	report.Transformed = rbar

	switch {
	case !rl.Holds:
		report.Conclusion = ConcreteFails
	case simple.Simple:
		report.Conclusion = ConcreteHolds
	default:
		report.Conclusion = Inconclusive
	}
	return report, nil
}

// ConcreteProperty returns the property R̄(η) under the canonical
// h-labeling, ready for a direct check against the concrete system —
// used to cross-validate Theorems 8.2/8.3.
func ConcreteProperty(h *hom.Hom, eta *ltl.Formula) (Property, error) {
	rbar, err := ltl.Rbar(eta)
	if err != nil {
		return Property{}, err
	}
	return FromFormula(rbar, h.Labeling()), nil
}

// systemFromPrefixClosed converts an automaton with a prefix-closed
// language (every state accepting) into a minimal deterministic
// transition system with generated state names q0, q1, ...
func systemFromPrefixClosed(a *nfa.NFA) (*ts.System, error) {
	d := a.Determinize().Minimize()
	if d.Initial() < 0 {
		return nil, fmt.Errorf("core: abstract language is empty")
	}
	out := ts.New(a.Alphabet())
	name := func(i nfa.State) string { return fmt.Sprintf("q%d", i) }
	for i := 0; i < d.NumStates(); i++ {
		if !d.Accepting(nfa.State(i)) {
			return nil, fmt.Errorf("core: abstract language is not prefix-closed")
		}
		out.AddState(name(nfa.State(i)))
	}
	for i := 0; i < d.NumStates(); i++ {
		for _, sym := range a.Alphabet().Symbols() {
			if t, ok := d.Delta(nfa.State(i), sym); ok {
				from, _ := out.LookupState(name(nfa.State(i)))
				to, _ := out.LookupState(name(t))
				out.AddTransition(from, sym, to)
			}
		}
	}
	init, _ := out.LookupState(name(d.Initial()))
	out.SetInitial(init)
	return out, nil
}
