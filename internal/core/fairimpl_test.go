package core

import (
	"math/rand"
	"testing"

	"relive/internal/gen"
	"relive/internal/paper"
)

// TestSection5Example reproduces the Section 5 discussion end to end:
// ◇(a ∧ ○a) is a relative liveness property of {a,b}^ω; imposing strong
// fairness on the minimal (one-state) automaton does NOT make it hold;
// the Theorem 5.1 synthesis produces a system with the same behaviors on
// which every strongly fair run satisfies it.
func TestSection5Example(t *testing.T) {
	sys := paper.Section5System()
	p := FromFormula(paper.Section5Property(), nil)

	rl, err := RelativeLiveness(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Holds {
		t.Fatal("◇(a ∧ ○a) is not a relative liveness property of {a,b}^ω")
	}

	// Minimal automaton + strong fairness: not sufficient.
	ok, violating, err := AllStronglyFairRunsSatisfy(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("strong fairness on the minimal automaton already enforces ◇(a ∧ ○a); the paper says it does not")
	}
	if violating == nil {
		t.Fatal("no violating fair run returned")
	}
	if err := violating.Validate(sys); err != nil {
		t.Fatalf("violating run invalid: %v", err)
	}
	if !violating.IsStronglyFair(sys) {
		t.Error("violating run not strongly fair")
	}

	// Theorem 5.1 synthesis.
	fi, err := SynthesizeFairImplementation(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	same, w, err := fi.SameBehaviors(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("implementation behaviors differ from {a,b}^ω, witness %s", w.String(sys.Alphabet()))
	}
	good, bad, err := fi.AllStronglyFairRunsSatisfy(p)
	if err != nil {
		t.Fatal(err)
	}
	if !good {
		t.Fatalf("a strongly fair run of the synthesized implementation violates the property: %v", bad)
	}
	if !fi.BottomSCCsContainMarks() {
		t.Error("a reachable bottom SCC of the implementation misses the accepting marks")
	}
	// The synthesis must genuinely add state information here.
	if fi.System.NumStates() <= sys.NumStates() {
		t.Errorf("implementation has %d states, expected more than the %d of the minimal system",
			fi.System.NumStates(), sys.NumStates())
	}
}

// TestTheorem51OnFig2 runs the synthesis for the paper's main example:
// □◇result on the Figure 2 server.
func TestTheorem51OnFig2(t *testing.T) {
	sys, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	p := FromFormula(paper.PropertyInfResults(), nil)
	fi, err := SynthesizeFairImplementation(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	same, w, err := fi.SameBehaviors(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("behaviors changed by synthesis, witness %s", w.String(sys.Alphabet()))
	}
	good, bad, err := fi.AllStronglyFairRunsSatisfy(p)
	if err != nil {
		t.Fatal(err)
	}
	if !good {
		t.Fatalf("fair run of implementation violates □◇result: %v", bad)
	}
	if !fi.BottomSCCsContainMarks() {
		t.Error("bottom SCC without marks in Fig 2 implementation")
	}
}

// TestTheorem51RejectsNonRelativeLiveness: the synthesis must refuse
// properties that are not relative liveness properties.
func TestTheorem51RejectsNonRelativeLiveness(t *testing.T) {
	sys := paper.Fig3System()
	p := FromFormula(paper.PropertyInfResults(), nil)
	if _, err := SynthesizeFairImplementation(sys, p); err == nil {
		t.Error("synthesis accepted a non-relative-liveness property")
	}
}

// TestQuickTheorem51Random: on random systems and random relative
// liveness properties, the synthesized implementation preserves
// behaviors and its strongly fair runs satisfy the property.
func TestQuickTheorem51Random(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	ab := gen.Letters(2)
	atoms := ab.Names()
	synthesized := 0
	for trial := 0; trial < 80 && synthesized < 25; trial++ {
		sys := randomSystem(rng, ab, 1+rng.Intn(4))
		p := FromFormula(randomPropertyFormula(rng, atoms), nil)
		rl, err := RelativeLiveness(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if !rl.Holds {
			continue
		}
		if _, err := sys.Trim(); err != nil {
			continue // no behaviors; nothing to synthesize
		}
		fi, err := SynthesizeFairImplementation(sys, p)
		if err != nil {
			t.Fatalf("trial %d: synthesis failed for a relative liveness property: %v", trial, err)
		}
		synthesized++
		same, w, err := fi.SameBehaviors(sys)
		if err != nil {
			t.Fatal(err)
		}
		if !same {
			t.Fatalf("trial %d: behaviors differ, witness %s\nsystem:\n%s",
				trial, w.String(ab), sys.FormatString())
		}
		good, bad, err := fi.AllStronglyFairRunsSatisfy(p)
		if err != nil {
			t.Fatal(err)
		}
		if !good {
			t.Fatalf("trial %d: fair run violates the property %s: %v\nsystem:\n%s",
				trial, p, bad, sys.FormatString())
		}
		if !fi.BottomSCCsContainMarks() {
			t.Fatalf("trial %d: bottom SCC without marks", trial)
		}
	}
	if synthesized == 0 {
		t.Skip("no synthesizable samples")
	}
}
