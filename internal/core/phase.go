package core

// Phase labels for the decision-procedure pipeline. A full check
// (Section 4) decomposes into four phases: trimming the system and
// building its behavior automaton, translating the property to a Büchi
// automaton (and its negation), constructing the reduced pre(L∩P)
// product, and the emptiness/inclusion checks that produce verdicts.
// The serving layer aggregates span durations by phase into latency
// histograms, and the flight recorder stores per-phase timings with
// each completed check.
const (
	PhaseTrim      = "trim"
	PhaseProperty  = "property_to_buchi"
	PhasePre       = "pre_product"
	PhaseEmptiness = "emptiness"
	PhaseSample    = "sampling"
)

// Phases lists the phase labels in pipeline order. PhaseSample is the
// statistical engine's random-walk sweep, which replaces the
// pre-product and emptiness phases on the sampled path.
var Phases = []string{PhaseTrim, PhaseProperty, PhasePre, PhaseEmptiness, PhaseSample}

// PhaseOf maps an obs span name emitted by the decision procedures to
// its phase label, or "" for spans that are not a pipeline phase
// (wrappers like core.CheckAll, serving-layer spans, worker spans).
// The mapped spans never nest inside one another — each is a
// single-flight cell computation or a leaf check — so summing the
// durations of a trace's mapped spans measures each phase once.
func PhaseOf(spanName string) string {
	switch spanName {
	case "lim(L)":
		return PhaseTrim
	case "P→Büchi", "¬P", "h⁻¹(¬P)":
		return PhaseProperty
	case "pre(L∩P)", "pre(L∩h⁻¹(¬P))":
		return PhasePre
	case "pre(L) ⊆ pre(L∩P)", "L ∩ lim(pre(L∩P)) ⊆ P", "L ∩ ¬P = ∅", "fair(L∩h⁻¹(¬P))":
		return PhaseEmptiness
	case "mc.sample":
		return PhaseSample
	}
	return ""
}
