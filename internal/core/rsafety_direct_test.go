package core

import (
	"math/rand"
	"testing"

	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/paper"
)

// TestQuickRSThreeRoutesAgree cross-validates the three relative-safety
// decision procedures: Lemma 4.4, the direct Definition 4.2
// configuration route, and the Cantor-closedness route (Lemma 4.10).
func TestQuickRSThreeRoutesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	ab := gen.Letters(2)
	atoms := ab.Names()
	disagreements := 0
	for trial := 0; trial < 80; trial++ {
		sys := randomSystem(rng, ab, 1+rng.Intn(4))
		p := FromFormula(randomPropertyFormula(rng, atoms), nil)
		r1, err := RelativeSafety(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RelativeSafetyDirect(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		r3, err := RelativeSafetyTopological(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Holds != r2.Holds || r1.Holds != r3.Holds {
			disagreements++
			t.Errorf("trial %d: RS routes disagree: lemma4.4=%v direct=%v topo=%v (property %s)\n%s",
				trial, r1.Holds, r2.Holds, r3.Holds, p, sys.FormatString())
		}
		// The direct route's violation witness must be validated too.
		if !r2.Holds {
			beh, err := sys.Behaviors()
			if err != nil {
				t.Fatal(err)
			}
			if !beh.AcceptsLasso(r2.Violation) {
				t.Fatalf("trial %d: direct violation not a behavior", trial)
			}
			pa, err := p.Automaton(ab)
			if err != nil {
				t.Fatal(err)
			}
			if pa.AcceptsLasso(r2.Violation) {
				t.Fatalf("trial %d: direct violation satisfies the property", trial)
			}
		}
		if disagreements > 3 {
			t.Fatal("too many disagreements; aborting")
		}
	}
}

func TestRSDirectOnPaperExamples(t *testing.T) {
	fig2, err := paper.Fig2System()
	if err != nil {
		t.Fatal(err)
	}
	p := FromFormula(paper.PropertyInfResults(), nil)
	rs, err := RelativeSafetyDirect(fig2, p)
	if err != nil {
		t.Fatal(err)
	}
	// □◇result is RL but not satisfied on Fig 2, so by Theorem 4.7 it
	// must not be relative safety.
	if rs.Holds {
		t.Error("□◇result relative safety on Figure 2 per the direct route")
	}
	// A plain safety property: □¬yes after lock... use "request before
	// lock" style: the first action is request or lock — trivially holds;
	// pick one that is a relative safety property: □(¬result ∨ ◇true)
	// is trivial; use instead G !result on Fig3-like... simplest: "a
	// property violated immediately when violated": G !free on Fig 2:
	// once free happens it is violated at a finite point, and every
	// violating behavior has a prefix (ending in free) all of whose
	// extensions stay violating... cont(w·free, L)∩P: P = G¬free: the
	// suffix could avoid free forever, but wx already saw free: wz ∉ P
	// for ALL z. So relative safety holds.
	rsSafe, err := RelativeSafetyDirect(fig2, FromFormula(ltl.MustParse("G !free"), nil))
	if err != nil {
		t.Fatal(err)
	}
	if !rsSafe.Holds {
		t.Error("□¬free should be a relative safety property of Figure 2")
	}
}
