package core

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/gen"
	"relive/internal/ltl"
)

// infA returns a Büchi automaton for "infinitely many a" over {a,b} —
// an ω-language that is NOT limit closed (every finite word is a prefix,
// yet b^ω is not in the language).
func infA(ab *alphabet.Alphabet) *buchi.Buchi {
	b := buchi.New(ab)
	q0 := b.AddState(false)
	q1 := b.AddState(true)
	sa, _ := ab.Lookup("a")
	sb, _ := ab.Lookup("b")
	b.AddTransition(q0, sb, q0)
	b.AddTransition(q0, sa, q1)
	b.AddTransition(q1, sa, q1)
	b.AddTransition(q1, sb, q0)
	b.SetInitial(q0)
	return b
}

func TestRelativeLivenessOmegaOnNonLimitClosed(t *testing.T) {
	ab := gen.Letters(2)
	l := infA(ab)
	lab := ltl.Canonical(ab)

	// □◇b relative liveness of "inf many a": every prefix extends to a
	// word with both letters infinitely often.
	rl, err := RelativeLivenessOmega(l, FromFormula(ltl.MustParse("G F b"), lab))
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Holds {
		t.Errorf("□◇b not RL of inf-a (prefix %s)", rl.BadPrefix.String(ab))
	}
	// "first letter is b": prefixes starting with a cannot be repaired.
	rl, err = RelativeLivenessOmega(l, FromFormula(ltl.MustParse("b"), lab))
	if err != nil {
		t.Fatal(err)
	}
	if rl.Holds {
		t.Error("'first letter b' reported RL of inf-a")
	}
	if len(rl.BadPrefix) == 0 {
		t.Error("missing bad prefix")
	}
}

func TestRelativeSafetyOmega(t *testing.T) {
	ab := gen.Letters(2)
	l := infA(ab)
	lab := ltl.Canonical(ab)
	// "first letter is b" IS a relative safety property of inf-a: a
	// violating word has the prefix "a", whose every extension violates.
	rs, err := RelativeSafetyOmega(l, FromFormula(ltl.MustParse("b"), lab))
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Holds {
		t.Errorf("'first letter b' not relative safety of inf-a (violation %s)",
			rs.Violation.String(ab))
	}
	// □◇b is not: violations (like (ab...a b^k a...)→ actually words
	// with finitely many b) are limits of satisfying words.
	rs, err = RelativeSafetyOmega(l, FromFormula(ltl.MustParse("G F b"), lab))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Holds {
		t.Error("□◇b reported relative safety of inf-a")
	}
}

func TestSatisfiesOmegaAndConjunction(t *testing.T) {
	ab := gen.Letters(2)
	l := infA(ab)
	lab := ltl.Canonical(ab)
	// inf-a ⊨ □◇a trivially.
	sat, err := SatisfiesOmega(l, FromFormula(ltl.MustParse("G F a"), lab))
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Holds {
		t.Error("inf-a does not satisfy □◇a?")
	}
	sat, err = SatisfiesOmega(l, FromFormula(ltl.MustParse("G F b"), lab))
	if err != nil {
		t.Fatal(err)
	}
	if sat.Holds {
		t.Error("inf-a satisfies □◇b?")
	}
	if !l.AcceptsLasso(sat.Counterexample) {
		t.Error("counterexample not in the language")
	}
}

// TestQuickTheorem47Omega: the conjunction theorem holds for arbitrary
// ω-regular languages, not just limit-closed ones.
func TestQuickTheorem47Omega(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	ab := gen.Letters(2)
	lab := ltl.Canonical(ab)
	atoms := ab.Names()
	for trial := 0; trial < 40; trial++ {
		l := randomOmega(rng, ab, 1+rng.Intn(4))
		p := FromFormula(randomPropertyFormula(rng, atoms), lab)
		sat, err := SatisfiesOmega(l, p)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := RelativeLivenessOmega(l, p)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := RelativeSafetyOmega(l, p)
		if err != nil {
			t.Fatal(err)
		}
		if sat.Holds != (rl.Holds && rs.Holds) {
			t.Fatalf("trial %d: Theorem 4.7 fails on ω-language: sat=%v rl=%v rs=%v",
				trial, sat.Holds, rl.Holds, rs.Holds)
		}
	}
}

func randomOmega(rng *rand.Rand, ab *alphabet.Alphabet, n int) *buchi.Buchi {
	b := buchi.New(ab)
	for i := 0; i < n; i++ {
		b.AddState(rng.Float64() < 0.4)
	}
	for i := 0; i < n; i++ {
		for _, sym := range ab.Symbols() {
			for k := 0; k < 2; k++ {
				if rng.Float64() < 0.5 {
					b.AddTransition(buchi.State(i), sym, buchi.State(rng.Intn(n)))
				}
			}
		}
	}
	b.SetInitial(0)
	return b
}

func TestIsLimitClosed(t *testing.T) {
	ab := gen.Letters(2)
	if ok, l, err := IsLimitClosed(infA(ab)); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("inf-a reported limit closed")
	} else if !l.Valid() {
		t.Error("missing witness for non-limit-closure")
	}
	// Σ^ω is limit closed.
	if ok, _, err := IsLimitClosed(buchi.UniversalAutomaton(ab)); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Error("Σ^ω reported not limit closed")
	}
	// The empty language is limit closed.
	if ok, _, err := IsLimitClosed(buchi.New(ab)); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Error("∅ reported not limit closed")
	}
}
