package core

import (
	"fmt"

	"relive/internal/obs"
	"relive/internal/ts"
)

// Report bundles the three verdicts of Section 4 for one system and
// property, with witnesses rendered as action names. It marshals to
// JSON for tooling (rlcheck -json).
type Report struct {
	Property string `json:"property"`
	States   int    `json:"states"`

	Satisfied        bool     `json:"satisfied"`
	Counterexample   []string `json:"counterexample,omitempty"`
	CounterexampleLp []string `json:"counterexampleLoop,omitempty"`

	RelativeLiveness bool     `json:"relativeLiveness"`
	BadPrefix        []string `json:"badPrefix,omitempty"`

	RelativeSafety bool     `json:"relativeSafety"`
	Violation      []string `json:"violation,omitempty"`
	ViolationLoop  []string `json:"violationLoop,omitempty"`

	// Statistical is set only when the report came from the sampling
	// engine (the statistical-fallback path): the three verdict booleans
	// then all carry the single sampled fair verdict — a
	// confidence-interval answer, never an exact one — and this field
	// holds the full sampled evidence. See StatisticalReport.
	Statistical *StatisticalReport `json:"statistical,omitempty"`
}

// CheckAll runs satisfaction, relative liveness and relative safety and
// cross-checks Theorem 4.7 (satisfied ⟺ RL ∧ RS) as an internal
// consistency assertion.
func CheckAll(sys *ts.System, p Property) (*Report, error) {
	return CheckAllRec(nil, sys, p)
}

// CheckAllRec is CheckAll with all three decision procedures reported
// to rec under one "core.CheckAll" root span. The three procedures run
// over one shared pipeline, so the behavior automaton, the property
// automaton and its negation, and the pre(L∩P) product are each built
// once instead of once per procedure.
func CheckAllRec(rec obs.Recorder, sys *ts.System, p Property) (*Report, error) {
	sp := obs.StartSpan(rec, "core.CheckAll").
		Tag("paper", "Section 4 (cross-checked via Theorem 4.7)")
	defer sp.End()
	return checkAllPipe(newPipeline(rec, sys, p))
}

// CheckAllPar is CheckAllParRec with recording off.
func CheckAllPar(sys *ts.System, p Property, workers int) (*Report, error) {
	return CheckAllParRec(nil, sys, p, workers)
}

// CheckAllParRec runs the three Section 4 decision procedures
// concurrently, one goroutine per verdict, over one shared
// single-flight pipeline: whichever goroutine needs lim(L), P→Büchi,
// ¬P, or pre(L∩P) first builds it, the others block on the sync.Once
// and reuse it. Verdicts and witnesses are identical to CheckAllRec —
// every artifact and every witness search is deterministic, and
// single-flight construction makes the artifact values independent of
// goroutine arrival order. Spans are attributed per goroutine:
// each verdict runs under a forked per-worker recorder (obs.ForkWorker)
// whose top-level spans carry a "worker" tag and parent under the
// "core.CheckAll" root. workers <= 1 falls back to the serial path.
func CheckAllParRec(rec obs.Recorder, sys *ts.System, p Property, workers int) (*Report, error) {
	if workers <= 1 {
		return CheckAllRec(rec, sys, p)
	}
	sp := obs.StartSpan(rec, "core.CheckAll").
		Tag("paper", "Section 4 (cross-checked via Theorem 4.7)").
		Tag("mode", "parallel")
	defer sp.End()
	return checkAllPar(newPipeline(rec, sys, p), rec, sp)
}

// checkAllPipe runs the three verdicts serially over pl and assembles
// the report. CheckAllRec and the portfolio workers share it.
func checkAllPipe(pl *pipeline) (*Report, error) {
	sat, err := satisfiesPipe(pl)
	if err != nil {
		return nil, err
	}
	rl, err := relativeLivenessPipe(pl)
	if err != nil {
		return nil, err
	}
	rs, err := relativeSafetyPipe(pl)
	if err != nil {
		return nil, err
	}
	return assembleReport(pl.sys, pl.p, sat, rl, rs)
}

// assembleReport cross-checks Theorem 4.7 and renders the three results
// as one Report with action-name witnesses.
func assembleReport(sys *ts.System, p Property, sat SatisfactionResult, rl LivenessResult, rs SafetyResult) (*Report, error) {
	if sat.Holds != (rl.Holds && rs.Holds) {
		return nil, fmt.Errorf(
			"core: internal inconsistency (Theorem 4.7): satisfied=%v, RL=%v, RS=%v",
			sat.Holds, rl.Holds, rs.Holds)
	}
	ab := sys.Alphabet()
	r := &Report{
		Property:         p.String(),
		States:           sys.NumStates(),
		Satisfied:        sat.Holds,
		RelativeLiveness: rl.Holds,
		RelativeSafety:   rs.Holds,
	}
	if !sat.Holds {
		for _, s := range sat.Counterexample.Prefix {
			r.Counterexample = append(r.Counterexample, ab.Name(s))
		}
		for _, s := range sat.Counterexample.Loop {
			r.CounterexampleLp = append(r.CounterexampleLp, ab.Name(s))
		}
	}
	if !rl.Holds {
		for _, s := range rl.BadPrefix {
			r.BadPrefix = append(r.BadPrefix, ab.Name(s))
		}
	}
	if !rs.Holds {
		for _, s := range rs.Violation.Prefix {
			r.Violation = append(r.Violation, ab.Name(s))
		}
		for _, s := range rs.Violation.Loop {
			r.ViolationLoop = append(r.ViolationLoop, ab.Name(s))
		}
	}
	return r, nil
}

// boolInt renders a verdict as a span attribute value.
func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
