package core

import (
	"context"
	"fmt"
	"sort"

	"relive/internal/buchi"
	"relive/internal/nfa"
	"relive/internal/obs"
	"relive/internal/ts"
	"relive/internal/word"
)

// LivenessResult is the outcome of a relative-liveness check. When the
// property is not a relative liveness property, BadPrefix is a shortest
// finite behavior prefix w ∈ pre(L_ω) that no continuation within the
// system can extend to an ω-word satisfying the property.
type LivenessResult struct {
	Holds     bool
	BadPrefix word.Word
}

// RelativeLiveness decides whether p is a relative liveness property of
// the system's behaviors lim(L) (Definition 4.1), via the
// characterization of Lemma 4.3:
//
//	pre(L_ω) = pre(L_ω ∩ P).
//
// pre(L_ω) is the finite-path language of the trimmed system;
// pre(L_ω ∩ P) is the finite-path language of the reduced Büchi product
// of the behaviors with the property automaton. The inclusion
// pre(L_ω ∩ P) ⊆ pre(L_ω) always holds, so only the converse is
// checked, and a failure yields the BadPrefix witness.
func RelativeLiveness(sys *ts.System, p Property) (LivenessResult, error) {
	return RelativeLivenessRec(nil, sys, p)
}

// RelativeLivenessRec is RelativeLiveness with every phase reported to
// rec: the behavior construction, the property translation, the
// pre(L∩P) product, and the Lemma 4.3 inclusion check, each with
// automaton sizes and durations. A nil rec is the uninstrumented path.
func RelativeLivenessRec(rec obs.Recorder, sys *ts.System, p Property) (LivenessResult, error) {
	return relativeLivenessPipe(newPipeline(rec, sys, p))
}

// relativeLivenessPipe is the Lemma 4.3 check over a (possibly shared)
// pipeline, so CheckAll reuses the behaviors, property automaton and
// pre(L∩P) product across procedures.
func relativeLivenessPipe(pl *pipeline) (LivenessResult, error) {
	sp := obs.StartSpan(pl.rec, "core.RelativeLiveness").
		Tag("paper", "Definition 4.1 via Lemma 4.3")
	defer sp.End()
	trimmed, _, err := pl.limits()
	if err != nil {
		return LivenessResult{}, fmt.Errorf("relative liveness: %w", err)
	}
	if trimmed == nil {
		// No infinite behavior at all: pre(L_ω) = ∅ and the condition of
		// Definition 4.1 is vacuously true.
		return LivenessResult{Holds: true}, nil
	}
	preL, err := trimmed.NFA()
	if err != nil {
		return LivenessResult{}, fmt.Errorf("relative liveness: %w", err)
	}
	preLP, err := pl.preProduct()
	if err != nil {
		return LivenessResult{}, fmt.Errorf("relative liveness: %w", err)
	}
	isp := obs.StartSpan(pl.rec, "pre(L) ⊆ pre(L∩P)").
		Tag("paper", "Lemma 4.3: pre(L) = pre(L∩P)").
		Tag("kernel", nfa.ResolveKernel(pl.kern, preLP).String()).
		Int("left_states", int64(preL.NumStates())).
		Int("right_states", int64(preLP.NumStates()))
	ok, w, err := nfa.IncludedKernelCtx(pl.ctx, pl.kern, preL, preLP)
	if err != nil {
		isp.Tag("aborted", "context")
		isp.End()
		return LivenessResult{}, fmt.Errorf("relative liveness: %w", err)
	}
	isp.End()
	if ok {
		return LivenessResult{Holds: true}, nil
	}
	return LivenessResult{Holds: false, BadPrefix: w}, nil
}

// trimmedBehaviors trims sys and builds its behavior automaton lim(L),
// reporting sizes under a "lim(L)" span. A nil trimmed system (with nil
// error) signals that sys has no infinite behavior at all, the vacuous
// case of the Section 4 checks. A context error from the trim fixpoint
// is propagated, never folded into the vacuous case.
func trimmedBehaviors(ctx context.Context, rec obs.Recorder, sys *ts.System) (*ts.System, *buchi.Buchi, error) {
	sp := obs.StartSpan(rec, "lim(L)").
		Tag("paper", "Section 3: system behaviors").
		Int("in_states", int64(sys.NumStates()))
	defer sp.End()
	trimmed, err := sys.TrimCtx(ctx)
	if err != nil {
		if isContextError(err) {
			sp.Tag("aborted", "context")
			return nil, nil, err
		}
		sp.Int("out_states", 0)
		return nil, nil, nil
	}
	behaviors, err := trimmed.Behaviors()
	if err != nil {
		return nil, nil, err
	}
	sp.Int("out_states", int64(behaviors.NumStates()))
	sp.Int("out_transitions", int64(behaviors.NumTransitions()))
	return trimmed, behaviors, nil
}

// RelativeLivenessDirect decides relative liveness straight from
// Definition 4.1, as an independent second algorithm used to
// cross-validate the Lemma 4.3 route: it enumerates the finitely many
// reachable configurations (set of system states, set of property
// states) that a prefix w can induce and checks, for each, that some
// continuation is accepted by both.
func RelativeLivenessDirect(sys *ts.System, p Property) (LivenessResult, error) {
	trimmed, err := sys.Trim()
	if err != nil {
		return LivenessResult{Holds: true}, nil
	}
	behaviors, err := trimmed.Behaviors()
	if err != nil {
		return LivenessResult{}, fmt.Errorf("relative liveness (direct): %w", err)
	}
	pa, err := p.Automaton(sys.Alphabet())
	if err != nil {
		return LivenessResult{}, fmt.Errorf("relative liveness (direct): %w", err)
	}

	type cfg struct {
		sysSet  string // canonical key of the behavior-state set
		propSet string
	}
	type entry struct {
		sys    []buchi.State
		prop   []buchi.State
		parent int
		sym    word.Word // single-letter step (nil for root)
	}
	keyOf := func(set []buchi.State) string {
		b := make([]byte, 0, len(set)*2)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8))
		}
		return string(b)
	}
	sortSet := func(set map[buchi.State]bool) []buchi.State {
		out := make([]buchi.State, 0, len(set))
		for s := range set {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	start := entry{sys: behaviors.Initial(), prop: pa.Initial(), parent: -1}
	sort.Slice(start.sys, func(i, j int) bool { return start.sys[i] < start.sys[j] })
	sort.Slice(start.prop, func(i, j int) bool { return start.prop[i] < start.prop[j] })
	queue := []entry{start}
	seen := map[cfg]bool{{keyOf(start.sys), keyOf(start.prop)}: true}

	wordTo := func(i int) word.Word {
		var w word.Word
		for j := i; queue[j].parent != -1; j = queue[j].parent {
			w = append(w, queue[j].sym...)
		}
		for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
			w[l], w[r] = w[r], w[l]
		}
		return w
	}

	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		// Check Definition 4.1 at this configuration: some continuation x
		// with wx a behavior satisfying P, i.e. the product of the
		// behavior automaton started at cur.sys with the property
		// automaton started at cur.prop is nonempty. The on-the-fly
		// check explores that product directly instead of cloning and
		// re-rooting both automata per configuration.
		if buchi.IntersectEmptyFrom(behaviors, pa, cur.sys, cur.prop) {
			return LivenessResult{Holds: false, BadPrefix: wordTo(i)}, nil
		}
		for _, sym := range sys.Alphabet().Symbols() {
			nextSys := map[buchi.State]bool{}
			for _, s := range cur.sys {
				for _, t := range behaviors.Succ(s, sym) {
					nextSys[t] = true
				}
			}
			if len(nextSys) == 0 {
				continue // w·sym is not a behavior prefix
			}
			nextProp := map[buchi.State]bool{}
			for _, s := range cur.prop {
				for _, t := range pa.Succ(s, sym) {
					nextProp[t] = true
				}
			}
			e := entry{sys: sortSet(nextSys), prop: sortSet(nextProp), parent: i, sym: word.Word{sym}}
			k := cfg{keyOf(e.sys), keyOf(e.prop)}
			if !seen[k] {
				seen[k] = true
				queue = append(queue, e)
			}
		}
	}
	return LivenessResult{Holds: true}, nil
}

// restart clones b with the initial states replaced by the given set.
func restart(b *buchi.Buchi, initial []buchi.State) *buchi.Buchi {
	c := buchi.New(b.Alphabet())
	for i := 0; i < b.NumStates(); i++ {
		c.AddState(b.Accepting(buchi.State(i)))
	}
	for i := 0; i < b.NumStates(); i++ {
		for _, sym := range b.Alphabet().Symbols() {
			for _, t := range b.Succ(buchi.State(i), sym) {
				c.AddTransition(buchi.State(i), sym, t)
			}
		}
	}
	for _, s := range initial {
		c.SetInitial(s)
	}
	return c
}
