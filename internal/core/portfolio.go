package core

import (
	"fmt"
	"sync"

	"relive/internal/alphabet"
	"relive/internal/obs"
	"relive/internal/ts"
)

// CheckPortfolio runs CheckAll for every property against one system on
// a bounded worker pool of the given size. All properties share one
// single-flight limits cell, so the system is trimmed and its behavior
// automaton lim(L) built exactly once, by whichever worker gets there
// first; everything property-specific (P→Büchi, ¬P, pre(L∩P)) is per
// property. Reports come back in the order of props, with verdicts and
// witnesses identical to running CheckAll serially per property.
// workers <= 0 means one worker per property (fully concurrent, bounded
// by GOMAXPROCS scheduling); workers == 1 is the serial path.
func CheckPortfolio(sys *ts.System, props []Property, workers int) ([]*Report, error) {
	return CheckPortfolioRec(nil, sys, props, workers)
}

// CheckPortfolioRec is CheckPortfolio reporting to rec. The pool opens
// one "core.CheckPortfolio" root span; each property check runs under a
// forked per-worker recorder whose top-level spans are tagged with the
// worker name and parented under the root, so concurrent span trees stay
// well-formed (see obs.ForkWorker).
func CheckPortfolioRec(rec obs.Recorder, sys *ts.System, props []Property, workers int) ([]*Report, error) {
	sp := obs.StartSpan(rec, "core.CheckPortfolio").
		Int("properties", int64(len(props)))
	defer sp.End()
	lim := newLimitsCell(sys)
	reports := make([]*Report, len(props))
	errs := make([]error, len(props))
	run := func(rec obs.Recorder, i int) {
		pl := newPipelineSharing(nil, rec, sys, props[i], lim, nil)
		csp := obs.StartSpan(rec, "core.CheckAll").
			Tag("paper", "Section 4 (cross-checked via Theorem 4.7)").
			Tag("property", props[i].String())
		reports[i], errs[i] = checkAllPipe(pl)
		csp.End()
	}
	pool(rec, sp.ID(), len(props), workers, run)
	sp.Int("workers", int64(poolSize(len(props), workers)))
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("portfolio property %d (%s): %w", i, props[i].String(), err)
		}
	}
	return reports, nil
}

// CheckSystemsPortfolio runs CheckAll for one property against every
// system on a bounded worker pool. Systems sharing an alphabet (by
// pointer identity) share one single-flight property cell, so P→Büchi
// and ¬P — for formula properties the potentially exponential LTL
// translations — are built once per distinct alphabet rather than once
// per system. Reports come back in the order of systems, identical to
// the serial per-system results.
func CheckSystemsPortfolio(systems []*ts.System, p Property, workers int) ([]*Report, error) {
	return CheckSystemsPortfolioRec(nil, systems, p, workers)
}

// CheckSystemsPortfolioRec is CheckSystemsPortfolio reporting to rec,
// with the same per-worker span attribution as CheckPortfolioRec.
func CheckSystemsPortfolioRec(rec obs.Recorder, systems []*ts.System, p Property, workers int) ([]*Report, error) {
	sp := obs.StartSpan(rec, "core.CheckSystemsPortfolio").
		Int("systems", int64(len(systems)))
	defer sp.End()
	cells := propCellsByAlphabet(systems, p)
	reports := make([]*Report, len(systems))
	errs := make([]error, len(systems))
	run := func(rec obs.Recorder, i int) {
		pl := newPipelineSharing(nil, rec, systems[i], p, nil, cells[systems[i].Alphabet()])
		csp := obs.StartSpan(rec, "core.CheckAll").
			Tag("paper", "Section 4 (cross-checked via Theorem 4.7)").
			Int("system", int64(i))
		reports[i], errs[i] = checkAllPipe(pl)
		csp.End()
	}
	pool(rec, sp.ID(), len(systems), workers, run)
	sp.Int("workers", int64(poolSize(len(systems), workers)))
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("portfolio system %d: %w", i, err)
		}
	}
	return reports, nil
}

// propCellsByAlphabet allocates one shared property cell per distinct
// alphabet (by pointer identity) across systems.
func propCellsByAlphabet(systems []*ts.System, p Property) map[*alphabet.Alphabet]*propCell {
	cells := map[*alphabet.Alphabet]*propCell{}
	for _, sys := range systems {
		ab := sys.Alphabet()
		if cells[ab] == nil {
			cells[ab] = &propCell{p: p, ab: ab}
		}
	}
	return cells
}

// poolSize resolves the worker count: at most one worker per job,
// at least one; workers <= 0 means one per job.
func poolSize(jobs, workers int) int {
	if workers <= 0 || workers > jobs {
		return jobs
	}
	return workers
}

// pool runs jobs 0..n-1 on a bounded worker pool. Each worker gets its
// own forked recorder ("worker-<k>") parented under parent, and pulls
// job indices from a shared atomic-free channel, so job-to-worker
// assignment is scheduling-dependent but the result slice indexing (and
// thus the output order) is not. workers == 1 degenerates to a plain
// serial loop on the caller's recorder.
func pool(rec obs.Recorder, parent obs.SpanID, n, workers int, run func(obs.Recorder, int)) {
	w := poolSize(n, workers)
	if w <= 1 {
		for i := 0; i < n; i++ {
			run(rec, i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			wrec := obs.ForkWorker(rec, fmt.Sprintf("worker-%d", k), parent)
			for i := range jobs {
				run(wrec, i)
			}
		}(k)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
