package hom

import (
	"testing"

	"relive/internal/alphabet"
	"relive/internal/nfa"
	"relive/internal/word"
)

// Edge cases of the {#}*-extension: the empty language (nothing to
// extend — and nothing to crash on) and an ε-only homomorphic image
// (every letter hidden), where ε itself is the maximal word.

// TestExtendMaximalWordsEmptyLanguage: L = ∅ in both shapes — an
// automaton with no initial state and one whose accepting states are
// unreachable (trim empties it). The extension is the empty language
// again, and HasMaximalWords finds nothing.
func TestExtendMaximalWordsEmptyLanguage(t *testing.T) {
	src := alphabet.FromNames("a", "b")
	h := Identity(src, "a", "b")

	noInit := nfa.New(src)
	noInit.AddState(true)
	if has, w := h.HasMaximalWords(noInit); has {
		t.Fatalf("empty language has maximal word %v", w)
	}
	ext := h.ExtendMaximalWords(noInit)
	if has, w := ext.HasMaximalWords(); has {
		t.Fatalf("extension of empty language has maximal word %v", w)
	}

	unreachable := nfa.New(src)
	q0 := unreachable.AddState(false)
	unreachable.AddState(true) // no transition leads here
	unreachable.SetInitial(q0)
	if has, w := h.HasMaximalWords(unreachable); has {
		t.Fatalf("trim-empty language has maximal word %v", w)
	}
	ext = h.ExtendMaximalWords(unreachable)
	sa, _ := src.Lookup("a")
	if ext.Accepts(word.Word{}) || ext.Accepts(word.Word{sa}) {
		t.Fatal("extension of an empty language accepts a word")
	}
}

// TestExtendMaximalWordsEpsilonOnlyHom: h hides every letter, so
// h(L) = {ε} for any nonempty L. ε is maximal (it is not a proper
// prefix of any other word of h(L)); the extension turns it into #*,
// after which no maximal words remain.
func TestExtendMaximalWordsEpsilonOnlyHom(t *testing.T) {
	src := alphabet.FromNames("a", "b")
	dst := alphabet.FromNames()
	h := New(src, dst)
	h.SetByName("a", "")
	h.SetByName("b", "")

	a := nfa.New(src)
	q0 := a.AddState(true)
	sa, _ := src.Lookup("a")
	sb, _ := src.Lookup("b")
	a.AddTransition(q0, sa, q0)
	a.AddTransition(q0, sb, q0)
	a.SetInitial(q0)

	has, w := h.HasMaximalWords(a)
	if !has {
		t.Fatal("ε-only image has no maximal word; ε itself is maximal")
	}
	if len(w) != 0 {
		t.Fatalf("maximal word of {ε} is %v, want ε", w)
	}

	ext := h.ExtendMaximalWords(a)
	hash, ok := ext.Alphabet().Lookup(HashName)
	if !ok {
		t.Fatal("extension did not intern #")
	}
	for n := 0; n <= 3; n++ {
		w := make(word.Word, n)
		for i := range w {
			w[i] = hash
		}
		if !ext.Accepts(w) {
			t.Fatalf("extension rejects #^%d", n)
		}
	}
	if has, w := ext.HasMaximalWords(); has {
		t.Fatalf("extended ε-only language still has maximal word %v", w)
	}
}
