package hom

import (
	"fmt"

	"relive/internal/alphabet"
	"relive/internal/nfa"
	"relive/internal/word"
)

// SimplicityResult reports the outcome of the simplicity decision
// procedure. When Simple is false, Witness is a word w ∈ L for which
// Definition 6.3 fails: no continuation u of h(w) in h(L) ever makes the
// abstract continuations cont(u, cont(h(w), h(L))) coincide with the
// image continuations cont(u, h(cont(w, L))).
type SimplicityResult struct {
	Simple  bool
	Witness word.Word
}

// IsSimple decides whether h is simple for the regular language L(a)
// (Definition 6.3): for every w ∈ L there must be a continuation
// u ∈ cont(h(w), h(L)) with
//
//	cont(u, cont(h(w), h(L))) = cont(u, h(cont(w, L))).
//
// The procedure exploits regularity: cont(w, L) depends only on the
// state set reached by w in a DFA D for L, and cont(h(w), h(L)) on the
// state reached by h(w) in a DFA D' for h(L). A synchronized
// exploration enumerates the finitely many reachable (state, state)
// pairs; for each pair the existence of a suitable u is a reachability
// question in the product of the two residual DFAs, asking for a pair of
// states with equal residual languages (decided by partition
// refinement on their disjoint union).
func (h *Hom) IsSimple(a *nfa.NFA) (SimplicityResult, error) {
	d := a.Determinize().Trim()
	if d.Initial() < 0 {
		// Empty language: vacuously simple.
		return SimplicityResult{Simple: true}, nil
	}
	img := h.ImageNFA(a)
	dImg := img.Determinize().Trim()
	dImgC := dImg.Complete()
	if dImg.Initial() < 0 {
		return SimplicityResult{}, fmt.Errorf("hom: image language is empty but source is not")
	}

	// Synchronized exploration of (state of w in d, state of h(w) in dImg).
	type pair struct{ q, qi nfa.State }
	type entry struct {
		p      pair
		parent int
		sym    alphabet.Symbol
	}
	var queue []entry
	seen := map[pair]bool{}
	start := pair{d.Initial(), dImg.Initial()}
	seen[start] = true
	queue = append(queue, entry{p: start, parent: -1})

	wordTo := func(i int) word.Word {
		var w word.Word
		for j := i; queue[j].parent != -1; j = queue[j].parent {
			w = append(w, queue[j].sym)
		}
		for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
			w[l], w[r] = w[r], w[l]
		}
		return w
	}

	// Per-q caches of the residual-image analysis.
	cache := map[nfa.State]*qAnalysis{}
	analyze := func(q nfa.State) (*qAnalysis, error) {
		if an, ok := cache[q]; ok {
			return an, nil
		}
		// C_q: DFA for h(cont-of-configuration-q) = h(L(d from q)).
		resid := d.ToNFA().ResidualFrom([]nfa.State{q})
		cq := h.ImageNFA(resid).Determinize().Complete()
		union, offset, err := disjointUnion(dImgC, cq)
		if err != nil {
			return nil, err
		}
		an := &qAnalysis{
			union:   union,
			classes: union.StateEquivalence(),
			offset:  offset,
			cInit:   cq.Initial(),
		}
		cache[q] = an
		return an, nil
	}

	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if d.Accepting(cur.p.q) {
			// w ∈ L: check Definition 6.3 for this configuration.
			ok, err := h.pairIsSimple(dImgC, cur.p.qi, analyze, cur.p.q)
			if err != nil {
				return SimplicityResult{}, err
			}
			if !ok {
				return SimplicityResult{Simple: false, Witness: wordTo(i)}, nil
			}
		}
		for _, sym := range h.src.Symbols() {
			qn, ok := d.Delta(cur.p.q, sym)
			if !ok {
				continue
			}
			qin := cur.p.qi
			if imgSym := h.Image(sym); imgSym != alphabet.Epsilon {
				t, ok := dImg.Delta(cur.p.qi, imgSym)
				if !ok {
					// h(wa) ∈ pre(h(L)) must hold; a missing transition
					// can only mean the trim removed a dead branch, which
					// cannot happen for prefixes of h(L).
					return SimplicityResult{}, fmt.Errorf(
						"hom: internal: image DFA lacks transition for a prefix of h(L)")
				}
				qin = t
			}
			np := pair{qn, qin}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, entry{p: np, parent: i, sym: sym})
			}
		}
	}
	return SimplicityResult{Simple: true}, nil
}

// pairIsSimple decides Definition 6.3 for one reachable configuration:
// q is the D-state of w, qi the D'-state of h(w). It searches the
// product of (dImgC from qi) and (C_q from its initial state) for a
// reachable pair (b, c) with b accepting — so the u read so far lies in
// cont(h(w), h(L)) — and equal residual languages.
func (h *Hom) pairIsSimple(
	dImgC *nfa.DFA,
	qi nfa.State,
	analyze func(nfa.State) (*qAnalysis, error),
	q nfa.State,
) (bool, error) {
	an, err := analyze(q)
	if err != nil {
		return false, err
	}
	type ppair struct{ b, c nfa.State }
	seen := map[ppair]bool{}
	queue := []ppair{{qi, an.cInit}}
	seen[queue[0]] = true
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		if dImgC.Accepting(p.b) &&
			an.classes[int(p.b)] == an.classes[an.offset+int(p.c)] {
			return true, nil
		}
		for _, sym := range h.dst.Symbols() {
			b2, ok1 := dImgC.Delta(p.b, sym)
			c2, ok2 := an.union.Delta(nfa.State(an.offset)+p.c, sym)
			if !ok1 || !ok2 {
				continue // complete DFAs: cannot happen
			}
			np := ppair{b2, c2 - nfa.State(an.offset)}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return false, nil
}

// qAnalysis caches, per configuration q of the concrete DFA, the
// disjoint union of the abstract DFA and C_q = DFA(h(cont(w, L))) for w
// reaching q, completed, with its residual-language equivalence classes.
type qAnalysis struct {
	union   *nfa.DFA // disjoint union of dImgC and C_q, complete
	classes []int    // residual-language equivalence classes of union
	offset  int      // index offset of C_q's states in union
	cInit   nfa.State
}

// disjointUnion combines two complete DFAs over the same alphabet into
// one DFA (initial state taken from the first); the second automaton's
// states are shifted by the returned offset.
func disjointUnion(a, b *nfa.DFA) (*nfa.DFA, int, error) {
	if a.Initial() < 0 || b.Initial() < 0 {
		return nil, 0, fmt.Errorf("hom: disjoint union of empty DFA")
	}
	out := nfa.NewDFA(a.Alphabet())
	for i := 0; i < a.NumStates(); i++ {
		out.AddState(a.Accepting(nfa.State(i)))
	}
	offset := a.NumStates()
	for i := 0; i < b.NumStates(); i++ {
		out.AddState(b.Accepting(nfa.State(i)))
	}
	for i := 0; i < a.NumStates(); i++ {
		for _, sym := range a.Alphabet().Symbols() {
			if t, ok := a.Delta(nfa.State(i), sym); ok {
				out.SetTransition(nfa.State(i), sym, t)
			}
		}
	}
	for i := 0; i < b.NumStates(); i++ {
		for _, sym := range b.Alphabet().Symbols() {
			if t, ok := b.Delta(nfa.State(i), sym); ok {
				out.SetTransition(nfa.State(offset+i), sym, nfa.State(offset)+t)
			}
		}
	}
	out.SetInitial(a.Initial())
	return out, offset, nil
}
