package hom

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/genbase"
	"relive/internal/nfa"
	"relive/internal/word"
)

// testHom returns a homomorphism over {a,b,c} that keeps a (renamed x),
// keeps b (renamed y), and hides c.
func testHom() *Hom {
	src := alphabet.FromNames("a", "b", "c")
	dst := alphabet.FromNames("x", "y")
	h := New(src, dst)
	h.SetByName("a", "x")
	h.SetByName("b", "y")
	h.SetByName("c", "")
	return h
}

func TestApplyWord(t *testing.T) {
	h := testHom()
	src := h.Source()
	w := word.FromNames(src, "a", "c", "b", "c", "c", "a")
	got := h.Apply(w)
	want := word.FromNames(h.Dest(), "x", "y", "x")
	if !got.Equal(want) {
		t.Errorf("Apply = %s, want %s", got.String(h.Dest()), want.String(h.Dest()))
	}
	if len(h.Apply(word.Word{})) != 0 {
		t.Error("Apply(ε) != ε")
	}
}

func TestApplyLasso(t *testing.T) {
	h := testHom()
	src := h.Source()
	l := word.MustLasso(word.FromNames(src, "c", "a"), word.FromNames(src, "b", "c"))
	got, ok := h.ApplyLasso(l)
	if !ok {
		t.Fatal("ApplyLasso undefined on a lasso with visible loop letters")
	}
	want := word.MustLasso(word.FromNames(h.Dest(), "x"), word.FromNames(h.Dest(), "y"))
	if !got.Equal(want) {
		t.Errorf("ApplyLasso = %s, want %s", got.String(h.Dest()), want.String(h.Dest()))
	}
	// Erased loop: h(x) undefined.
	l2 := word.MustLasso(word.FromNames(src, "a"), word.FromNames(src, "c"))
	if _, ok := h.ApplyLasso(l2); ok {
		t.Error("ApplyLasso defined although only finitely many letters survive")
	}
}

func TestParseAndString(t *testing.T) {
	src := alphabet.FromNames("a", "b", "c")
	h, err := Parse(src, "a=>x, b=>, c=>x")
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := src.Lookup("a")
	sb, _ := src.Lookup("b")
	sc, _ := src.Lookup("c")
	if h.Dest().Name(h.Image(sa)) != "x" || h.Image(sb) != alphabet.Epsilon || h.Dest().Name(h.Image(sc)) != "x" {
		t.Errorf("parsed mapping wrong: %s", h)
	}
	if _, err := Parse(src, "zzz=>x"); err == nil {
		t.Error("Parse accepted unknown source letter")
	}
	if _, err := Parse(src, "a-x"); err == nil {
		t.Error("Parse accepted malformed item")
	}
}

func TestImageNFAOnSampledWords(t *testing.T) {
	h := testHom()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		a := genbase.NFA(rng, genbase.Config{States: 5, Symbols: 3, Density: 0.5, AcceptRatio: 0.5}, h.Source())
		img := h.ImageNFA(a)
		for i := 0; i < 30; i++ {
			w := genbase.Word(rng, h.Source(), rng.Intn(7))
			if a.Accepts(w) && !img.Accepts(h.Apply(w)) {
				t.Fatalf("trial %d: h(w) not in image for w=%s", trial, w.String(h.Source()))
			}
		}
	}
}

func TestImageNFAExact(t *testing.T) {
	// L = (acb)* over {a,b,c}; h keeps a→x, b→y, hides c: h(L) = (xy)*.
	h := testHom()
	src := h.Source()
	a := nfa.New(src)
	q0 := a.AddState(true)
	q1 := a.AddState(false)
	q2 := a.AddState(false)
	sa, _ := src.Lookup("a")
	sb, _ := src.Lookup("b")
	sc, _ := src.Lookup("c")
	a.AddTransition(q0, sa, q1)
	a.AddTransition(q1, sc, q2)
	a.AddTransition(q2, sb, q0)
	a.SetInitial(q0)

	want := nfa.New(h.Dest())
	p0 := want.AddState(true)
	p1 := want.AddState(false)
	sx, _ := h.Dest().Lookup("x")
	sy, _ := h.Dest().Lookup("y")
	want.AddTransition(p0, sx, p1)
	want.AddTransition(p1, sy, p0)
	want.SetInitial(p0)

	if ok, w := nfa.LanguageEqual(h.ImageNFA(a), want); !ok {
		t.Errorf("image language differs from (xy)*, witness %s", w.String(h.Dest()))
	}
}

func TestInverseImageBuchi(t *testing.T) {
	h := testHom()
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		b := randomBuchi(rng, h.Dest(), 1+rng.Intn(4))
		inv := h.InverseImageBuchi(b)
		for i := 0; i < 25; i++ {
			l := genbase.Lasso(rng, h.Source(), 3, 3)
			img, defined := h.ApplyLasso(l)
			want := defined && b.AcceptsLasso(img)
			if got := inv.AcceptsLasso(l); got != want {
				t.Fatalf("trial %d: h^{-1} accepts %s = %v, want %v (h(x) defined=%v)",
					trial, l.String(h.Source()), got, want, defined)
			}
		}
	}
}

func randomBuchi(rng *rand.Rand, ab *alphabet.Alphabet, n int) *buchi.Buchi {
	b := buchi.New(ab)
	for i := 0; i < n; i++ {
		b.AddState(rng.Float64() < 0.5)
	}
	for i := 0; i < n; i++ {
		for _, sym := range ab.Symbols() {
			for k := 0; k < 2; k++ {
				if rng.Float64() < 0.6 {
					b.AddTransition(buchi.State(i), sym, buchi.State(rng.Intn(n)))
				}
			}
		}
	}
	b.SetInitial(0)
	return b
}

func TestLabeling(t *testing.T) {
	h := testHom()
	lab := h.Labeling()
	src := h.Source()
	sa, _ := src.Lookup("a")
	sc, _ := src.Lookup("c")
	if !lab.Has(sa, "x") || lab.Has(sa, alphabet.EpsilonName) {
		t.Error("λ(a) should be {x}")
	}
	if !lab.Has(sc, alphabet.EpsilonName) {
		t.Error("λ(c) should be {ε}")
	}
}

func TestIdentityHomIsSimple(t *testing.T) {
	src := alphabet.FromNames("a", "b")
	h := Identity(src, "a", "b")
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 15; trial++ {
		a := genbase.NFA(rng, genbase.Config{States: 4, Symbols: 2, Density: 0.6, AcceptRatio: 0.7}, src)
		a = a.MarkAllAccepting() // prefix-closed system languages
		res, err := h.IsSimple(a)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Simple {
			t.Fatalf("trial %d: identity homomorphism not simple, witness %s",
				trial, res.Witness.String(src))
		}
	}
}

func TestHideAllIsSimple(t *testing.T) {
	src := alphabet.FromNames("a", "b")
	h := Identity(src) // hide everything: h(L) ⊆ {ε}
	a := nfa.New(src)
	q := a.AddState(true)
	sa, _ := src.Lookup("a")
	a.AddTransition(q, sa, q)
	a.SetInitial(q)
	res, err := h.IsSimple(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Simple {
		t.Error("total hiding should be simple (all continuations collapse to {ε})")
	}
}

func TestIsSimpleCounterexample(t *testing.T) {
	// L = pre((a+b)c*): after reading a the hidden c's loop forever, and
	// the abstract continuations still offer nothing; after reading b the
	// same. Make it asymmetric: L = pre(a·d* + b·(d*·a)) with d hidden,
	// h(a)=x, h(b)=y... Use the classic failure shape instead: the
	// abstract language allows x·x, but after the concrete w = a the
	// continuation can never produce another x, while from b it can.
	src := alphabet.FromNames("a", "b", "d")
	h := New(src, alphabet.FromNames("x"))
	h.SetByName("a", "x")
	h.SetByName("b", "x")
	h.SetByName("d", "")
	// Concrete: q0 -a-> dead-loop on d; q0 -b-> q1 -a-> q1 (a forever).
	a := nfa.New(src)
	q0 := a.AddState(true)
	qa := a.AddState(true)
	qb := a.AddState(true)
	sa, _ := src.Lookup("a")
	sb, _ := src.Lookup("b")
	sd, _ := src.Lookup("d")
	a.AddTransition(q0, sa, qa)
	a.AddTransition(qa, sd, qa)
	a.AddTransition(q0, sb, qb)
	a.AddTransition(qb, sa, qb)
	a.SetInitial(q0)
	// h(L) = pre(x·x*) = x*. After w=a (h(w)=x): h(cont(w,L)) = d* image
	// = {ε}, but cont(x, x*) = x*: for every u ∈ x*, cont(u, x*) = x* ≠
	// cont(u, {ε}). Not simple, witnessed by w = a.
	res, err := h.IsSimple(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Simple {
		t.Fatal("expected non-simple homomorphism")
	}
	// The witness must reach the broken configuration: reading it ends in
	// the d-loop state.
	if !a.Accepts(res.Witness) {
		t.Errorf("witness %s not in L", res.Witness.String(src))
	}
}

func TestExtendMaximalWords(t *testing.T) {
	// L = {ab}: h identity on {a,b}. h(L) has maximal word ab; extension
	// adds ab#*.
	src := alphabet.FromNames("a", "b")
	h := Identity(src, "a", "b")
	a := nfa.New(src)
	q0 := a.AddState(false)
	q1 := a.AddState(false)
	q2 := a.AddState(true)
	sa, _ := src.Lookup("a")
	sb, _ := src.Lookup("b")
	a.AddTransition(q0, sa, q1)
	a.AddTransition(q1, sb, q2)
	a.SetInitial(q0)

	if has, w := h.HasMaximalWords(a); !has || w.String(h.Dest()) != "a·b" {
		t.Fatalf("HasMaximalWords = %v, %v", has, w)
	}
	ext := h.ExtendMaximalWords(a)
	dst := ext.Alphabet()
	hash, ok := dst.Lookup(HashName)
	if !ok {
		t.Fatal("extension did not intern #")
	}
	da, _ := dst.Lookup("a")
	db, _ := dst.Lookup("b")
	if !ext.Accepts(word.Word{da, db, hash, hash}) {
		t.Error("extension rejects ab##")
	}
	if ext.Accepts(word.Word{da, hash}) {
		t.Error("extension accepts a# although a is not maximal")
	}
	if has, _ := ext.HasMaximalWords(); has {
		t.Error("extended language still has maximal words")
	}
}
