package hom

import (
	"relive/internal/nfa"
	"relive/internal/word"
)

// HashName is the padding symbol used to keep maximal words "visible" in
// limits, following the {#}*-extension of [20] referenced after
// Corollary 8.4.
const HashName = "#"

// HasMaximalWords reports whether h(L(a)) contains maximal words —
// words that are not proper prefixes of other words in h(L(a)). The
// preservation theorems 8.2/8.3 require that it does not; when it does,
// the witness is one such maximal word and ExtendMaximalWords restores
// the precondition.
func (h *Hom) HasMaximalWords(a *nfa.NFA) (bool, word.Word) {
	return h.ImageNFA(a).HasMaximalWords()
}

// ExtendMaximalWords returns an automaton for h(L(a)) · extension, where
// every maximal word of h(L(a)) may be extended by words from {#}*: a
// fresh # letter self-loops at every configuration from which the word
// read so far is maximal. Non-maximal words are unaffected, so
// lim of the result keeps maximal words visible as w·#^ω.
func (h *Hom) ExtendMaximalWords(a *nfa.NFA) *nfa.NFA {
	d := h.ImageNFA(a).Determinize().Trim()
	out := d.ToNFA()
	if d.Initial() < 0 {
		return out
	}
	n := d.NumStates()
	// canExtend[s]: an accepting state is reachable via ≥1 step.
	canExtend := make([]bool, n)
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if canExtend[i] {
				continue
			}
			for _, sym := range d.Alphabet().Symbols() {
				t, ok := d.Delta(nfa.State(i), sym)
				if !ok {
					continue
				}
				if d.Accepting(t) || canExtend[t] {
					canExtend[i] = true
					changed = true
					break
				}
			}
		}
	}
	hash := d.Alphabet().Symbol(HashName)
	for i := 0; i < n; i++ {
		if d.Accepting(nfa.State(i)) && !canExtend[i] {
			out.AddTransition(nfa.State(i), hash, nfa.State(i))
		}
	}
	return out
}
