// Package hom implements abstracting homomorphisms h : Σ → Σ' ∪ {ε}
// (Definition 6.1 of Nitsche & Wolper, PODC'97) and their action on
// words, ω-words, languages, automata and transition systems, together
// with a decision procedure for Ochsenschläger's simplicity condition
// (Definition 6.3) and the #-extension for maximal words ([20]).
package hom

import (
	"fmt"
	"sort"
	"strings"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/ltl"
	"relive/internal/nfa"
	"relive/internal/ts"
	"relive/internal/word"
)

// Hom is an abstracting homomorphism: a total map from the letters of a
// source alphabet to letters of a destination alphabet or ε.
type Hom struct {
	src, dst *alphabet.Alphabet
	img      map[alphabet.Symbol]alphabet.Symbol
}

// New returns a homomorphism between the given alphabets with no letter
// mappings yet; use Set, or Parse for the textual form. Letters left
// unmapped default to ε (hidden), keeping h total as Definition 6.1
// requires.
func New(src, dst *alphabet.Alphabet) *Hom {
	return &Hom{src: src, dst: dst, img: map[alphabet.Symbol]alphabet.Symbol{}}
}

// Source returns the concrete alphabet Σ.
func (h *Hom) Source() *alphabet.Alphabet { return h.src }

// Dest returns the abstract alphabet Σ'.
func (h *Hom) Dest() *alphabet.Alphabet { return h.dst }

// Set maps the source letter to the destination letter; use
// alphabet.Epsilon to hide the letter.
func (h *Hom) Set(src, dst alphabet.Symbol) { h.img[src] = dst }

// SetByName maps src to dst by name; an empty or "ε" dst hides the
// letter. Unknown names are interned in the respective alphabets.
func (h *Hom) SetByName(src, dst string) {
	s := h.src.Symbol(src)
	if dst == "" || dst == alphabet.EpsilonName {
		h.img[s] = alphabet.Epsilon
		return
	}
	h.img[s] = h.dst.Symbol(dst)
}

// Image returns h(sym); unmapped letters are hidden (ε).
func (h *Hom) Image(sym alphabet.Symbol) alphabet.Symbol {
	if d, ok := h.img[sym]; ok {
		return d
	}
	return alphabet.Epsilon
}

// Identity returns the homomorphism keeping the given letters of src
// (mapped to same-named letters of a fresh alphabet) and hiding all
// others — the common "observe these actions" abstraction from the
// paper's Section 2.
func Identity(src *alphabet.Alphabet, keep ...string) *Hom {
	dst := alphabet.New()
	h := New(src, dst)
	for _, name := range keep {
		h.SetByName(name, name)
	}
	return h
}

// Parse builds a homomorphism over src from a comma-separated list of
// "a=>x" items; "a=>" hides a. Example: "yes=>,no=>,request=>request".
func Parse(src *alphabet.Alphabet, spec string) (*Hom, error) {
	dst := alphabet.New()
	h := New(src, dst)
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.SplitN(item, "=>", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("hom: bad mapping %q, want \"src=>dst\" or \"src=>\"", item)
		}
		from := strings.TrimSpace(parts[0])
		to := strings.TrimSpace(parts[1])
		if from == alphabet.EpsilonName {
			return nil, fmt.Errorf("hom: %s is not a source letter; h maps letters of Σ", alphabet.EpsilonName)
		}
		if _, ok := src.Lookup(from); !ok {
			return nil, fmt.Errorf("hom: unknown source letter %q", from)
		}
		h.SetByName(from, to)
	}
	return h, nil
}

// String renders the homomorphism as a mapping list.
func (h *Hom) String() string {
	var parts []string
	for _, s := range h.src.Symbols() {
		parts = append(parts, fmt.Sprintf("%s=>%s", h.src.Name(s), h.dst.Name(h.Image(s))))
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// Apply maps a finite word; erased letters disappear.
func (h *Hom) Apply(w word.Word) word.Word {
	out := make(word.Word, 0, len(w))
	for _, s := range w {
		if d := h.Image(s); d != alphabet.Epsilon {
			out = append(out, d)
		}
	}
	return out
}

// ApplyLasso maps an ultimately periodic ω-word. Following
// Definition 6.1, h(x) is undefined when lim(h(pre(x))) = ∅, i.e. when
// only finitely many letters of x survive; then ok is false.
func (h *Hom) ApplyLasso(l word.Lasso) (word.Lasso, bool) {
	loop := h.Apply(l.Loop)
	if len(loop) == 0 {
		return word.Lasso{}, false
	}
	return word.MustLasso(h.Apply(l.Prefix), loop), true
}

// ImageNFA returns an automaton for h(L(a)): labels are replaced by
// their images (erased letters become ε-transitions) and ε-transitions
// are then removed. The result is over the destination alphabet.
func (h *Hom) ImageNFA(a *nfa.NFA) *nfa.NFA {
	out := nfa.New(h.dst)
	for i := 0; i < a.NumStates(); i++ {
		out.AddState(a.Accepting(nfa.State(i)))
	}
	for i := 0; i < a.NumStates(); i++ {
		for _, sym := range h.src.Symbols() {
			for _, t := range a.Succ(nfa.State(i), sym) {
				out.AddTransition(nfa.State(i), h.Image(sym), nfa.State(t))
			}
		}
		// Preserve ε-transitions of the input as ε.
		for _, t := range a.Succ(nfa.State(i), alphabet.Epsilon) {
			out.AddTransition(nfa.State(i), alphabet.Epsilon, nfa.State(t))
		}
	}
	for _, s := range a.Initial() {
		out.SetInitial(nfa.State(s))
	}
	return out.RemoveEpsilon()
}

// ImageSystem returns a transition system for the abstract behavior: a
// deterministic minimal system whose language is h(L(s)) (pre-closure is
// preserved because s's language is prefix-closed). State names are
// generated (q0, q1, ...), with q0 initial.
func (h *Hom) ImageSystem(s *ts.System) (*ts.System, error) {
	a, err := s.NFA()
	if err != nil {
		return nil, err
	}
	d := h.ImageNFA(a.Trim()).Determinize().Minimize()
	if d.Initial() < 0 {
		return nil, fmt.Errorf("hom: abstract system is empty")
	}
	out := ts.New(h.dst)
	for i := 0; i < d.NumStates(); i++ {
		out.AddState(fmt.Sprintf("q%d", i))
	}
	for i := 0; i < d.NumStates(); i++ {
		for _, sym := range h.dst.Symbols() {
			if t, ok := d.Delta(nfa.State(i), sym); ok {
				from, _ := out.LookupState(fmt.Sprintf("q%d", i))
				to, _ := out.LookupState(fmt.Sprintf("q%d", t))
				out.AddTransition(from, sym, to)
			}
		}
	}
	init, _ := out.LookupState(fmt.Sprintf("q%d", d.Initial()))
	out.SetInitial(init)
	return out, nil
}

// InverseImageBuchi returns a Büchi automaton over the source alphabet
// for h^{-1}(L_ω(b)) = {x | h(x) defined and h(x) ∈ L_ω(b)}: erased
// letters stutter in b, and an additional Büchi constraint enforces that
// infinitely many letters survive (otherwise h(x) is undefined).
func (h *Hom) InverseImageBuchi(b *buchi.Buchi) *buchi.Buchi {
	// Track 1: b with erased letters stuttering.
	raw := buchi.New(h.src)
	for i := 0; i < b.NumStates(); i++ {
		raw.AddState(b.Accepting(buchi.State(i)))
	}
	for i := 0; i < b.NumStates(); i++ {
		for _, sym := range h.src.Symbols() {
			img := h.Image(sym)
			if img == alphabet.Epsilon {
				raw.AddTransition(buchi.State(i), sym, buchi.State(i))
				continue
			}
			for _, t := range b.Succ(buchi.State(i), img) {
				raw.AddTransition(buchi.State(i), sym, buchi.State(t))
			}
		}
	}
	for _, s := range b.Initial() {
		raw.SetInitial(buchi.State(s))
	}
	// Track 2: infinitely many non-erased letters.
	vis := buchi.New(h.src)
	wait := vis.AddState(false)
	saw := vis.AddState(true)
	for _, sym := range h.src.Symbols() {
		if h.Image(sym) == alphabet.Epsilon {
			vis.AddTransition(wait, sym, wait)
			vis.AddTransition(saw, sym, wait)
		} else {
			vis.AddTransition(wait, sym, saw)
			vis.AddTransition(saw, sym, saw)
		}
	}
	vis.SetInitial(wait)
	return buchi.Intersect(raw, vis)
}

// Labeling returns the canonical h-labeling λ_{hΣΣ'} of Definition 7.3:
// concrete letters satisfy exactly the proposition naming their image,
// with erased letters satisfying the ε proposition.
func (h *Hom) Labeling() *ltl.Labeling {
	return ltl.CanonicalImage(h.src, h.dst, h.Image)
}
