package hom

import (
	"strings"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/nfa"
	"relive/internal/ts"
	"relive/internal/word"
)

func TestSetAndString(t *testing.T) {
	src := alphabet.FromNames("a", "b")
	dst := alphabet.FromNames("x")
	h := New(src, dst)
	sa, _ := src.Lookup("a")
	sx, _ := dst.Lookup("x")
	h.Set(sa, sx)
	if h.Image(sa) != sx {
		t.Error("Set did not stick")
	}
	s := h.String()
	if !strings.Contains(s, "a=>x") || !strings.Contains(s, "b=>ε") {
		t.Errorf("String = %q", s)
	}
	if h.Source() != src || h.Dest() != dst {
		t.Error("accessors wrong")
	}
}

func TestImageSystem(t *testing.T) {
	ab := alphabet.FromNames("request", "work", "result")
	sys := ts.New(ab)
	sys.AddEdge("idle", "request", "busy")
	sys.AddEdge("busy", "work", "done")
	sys.AddEdge("done", "result", "idle")
	init, _ := sys.LookupState("idle")
	sys.SetInitial(init)

	h := Identity(ab, "request", "result")
	img, err := h.ImageSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	if img.NumStates() != 2 {
		t.Errorf("abstract system has %d states, want 2", img.NumStates())
	}
	dst := img.Alphabet()
	if !img.AcceptsWord(word.FromNames(dst, "request", "result", "request")) {
		t.Error("abstract system rejects request·result·request")
	}
	if img.AcceptsWord(word.FromNames(dst, "result")) {
		t.Error("abstract system accepts a bare result")
	}
	// System without initial state errors.
	bad := ts.New(ab)
	bad.AddEdge("x", "request", "x")
	if _, err := h.ImageSystem(bad); err == nil {
		t.Error("ImageSystem accepted a system without initial state")
	}
}

func TestIsSimpleEmptyLanguage(t *testing.T) {
	src := alphabet.FromNames("a")
	h := Identity(src, "a")
	empty := nfa.New(src) // no states: empty language
	res, err := h.IsSimple(empty)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Simple {
		t.Error("empty language should be vacuously simple")
	}
}
