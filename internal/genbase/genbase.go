// Package genbase holds the seeded random generators and exhaustive
// enumerators that depend only on the leaf model packages (alphabet,
// nfa, word). The higher-level generators — random Büchi automata,
// transition systems, formulas, homomorphisms — live in package gen,
// which re-exports everything here. The split keeps genbase importable
// from the in-package tests of buchi, hom and ltl without an import
// cycle through gen.
package genbase

import (
	"math/rand"

	"relive/internal/alphabet"
	"relive/internal/nfa"
	"relive/internal/word"
)

// Config bounds the shape of generated automata.
type Config struct {
	States      int     // number of states, ≥ 1
	Symbols     int     // alphabet size, ≥ 1
	Density     float64 // expected transitions per (state, symbol) pair
	AcceptRatio float64 // probability a state is accepting
}

// DefaultConfig is a small, well-connected shape good for property tests.
func DefaultConfig() Config {
	return Config{States: 5, Symbols: 2, Density: 0.8, AcceptRatio: 0.4}
}

// Letters returns an alphabet of n letters named a, b, c, ...
func Letters(n int) *alphabet.Alphabet {
	ab := alphabet.New()
	for i := 0; i < n; i++ {
		ab.Symbol(LetterName(i))
	}
	return ab
}

// LetterName returns the spreadsheet-style name of letter i:
// a..z, aa, ab, ...
func LetterName(i int) string {
	name := string(rune('a' + i%26))
	for i >= 26 {
		i = i/26 - 1
		name = string(rune('a'+i%26)) + name
	}
	return name
}

// NFA generates a random NFA. At least one state is accepting with
// probability AcceptRatio per state; the initial state is state 0.
func NFA(rng *rand.Rand, cfg Config, ab *alphabet.Alphabet) *nfa.NFA {
	a := nfa.New(ab)
	for i := 0; i < cfg.States; i++ {
		a.AddState(rng.Float64() < cfg.AcceptRatio)
	}
	syms := ab.Symbols()
	for i := 0; i < cfg.States; i++ {
		for _, sym := range syms {
			// Poisson-ish: geometric number of targets.
			for rng.Float64() < cfg.Density {
				a.AddTransition(nfa.State(i), sym, nfa.State(rng.Intn(cfg.States)))
				if rng.Float64() < 0.5 {
					break
				}
			}
		}
	}
	a.SetInitial(0)
	return a
}

// DFA generates a random DFA with transitions present per symbol with
// probability Density.
func DFA(rng *rand.Rand, cfg Config, ab *alphabet.Alphabet) *nfa.DFA {
	d := nfa.NewDFA(ab)
	for i := 0; i < cfg.States; i++ {
		d.AddState(rng.Float64() < cfg.AcceptRatio)
	}
	syms := ab.Symbols()
	for i := 0; i < cfg.States; i++ {
		for _, sym := range syms {
			if rng.Float64() < cfg.Density {
				d.SetTransition(nfa.State(i), sym, nfa.State(rng.Intn(cfg.States)))
			}
		}
	}
	d.SetInitial(0)
	return d
}

// Word generates a random word of the given length.
func Word(rng *rand.Rand, ab *alphabet.Alphabet, length int) word.Word {
	syms := ab.Symbols()
	w := make(word.Word, length)
	for i := range w {
		w[i] = syms[rng.Intn(len(syms))]
	}
	return w
}

// Lasso generates a random ultimately periodic ω-word with prefix length
// up to maxPrefix and loop length in [1, maxLoop].
func Lasso(rng *rand.Rand, ab *alphabet.Alphabet, maxPrefix, maxLoop int) word.Lasso {
	p := Word(rng, ab, rng.Intn(maxPrefix+1))
	l := Word(rng, ab, 1+rng.Intn(maxLoop))
	return word.MustLasso(p, l)
}

// Lassos enumerates all ultimately periodic words u·(v)^ω over ab with
// |u| ≤ maxPrefix and 1 ≤ |v| ≤ maxLoop. Different (u, v) pairs may
// denote the same ω-word; callers that need canonical representatives
// should Normalize. Used by the bounded reference oracles.
func Lassos(ab *alphabet.Alphabet, maxPrefix, maxLoop int) []word.Lasso {
	var out []word.Lasso
	for _, u := range Words(ab, maxPrefix) {
		for _, v := range Words(ab, maxLoop) {
			if len(v) == 0 {
				continue
			}
			out = append(out, word.MustLasso(u, v))
		}
	}
	return out
}

// Words enumerates all words over ab up to the given length, in
// length-lexicographic order. Useful as an exhaustive oracle on tiny
// alphabets.
func Words(ab *alphabet.Alphabet, maxLen int) []word.Word {
	syms := ab.Symbols()
	out := []word.Word{{}}
	frontier := []word.Word{{}}
	for l := 1; l <= maxLen; l++ {
		var next []word.Word
		for _, w := range frontier {
			for _, sym := range syms {
				nw := make(word.Word, len(w)+1)
				copy(nw, w)
				nw[len(w)] = sym
				next = append(next, nw)
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}
