package buchi

import (
	"testing"

	"relive/internal/alphabet"
	"relive/internal/obs"
)

// twoStateLoop builds a two-state automaton accepting (ab)^ω with the
// accepting state on the loop.
func twoStateLoop(t *testing.T) *Buchi {
	t.Helper()
	ab := alphabet.FromNames("a", "b")
	b := New(ab)
	s0 := b.AddState(true)
	s1 := b.AddState(false)
	sa, _ := ab.Lookup("a")
	sb, _ := ab.Lookup("b")
	b.AddTransition(s0, sa, s1)
	b.AddTransition(s1, sb, s0)
	b.SetInitial(s0)
	return b
}

func TestNumTransitions(t *testing.T) {
	b := twoStateLoop(t)
	if got := b.NumTransitions(); got != 2 {
		t.Errorf("NumTransitions = %d, want 2", got)
	}
	if got := b.NumAccepting(); got != 1 {
		t.Errorf("NumAccepting = %d, want 1", got)
	}
	sa, _ := b.Alphabet().Lookup("a")
	b.AddTransition(State(0), sa, State(0))
	if got := b.NumTransitions(); got != 3 {
		t.Errorf("NumTransitions after add = %d, want 3", got)
	}
	// Duplicate insertions must not double-count.
	b.AddTransition(State(0), sa, State(0))
	if got := b.NumTransitions(); got != 3 {
		t.Errorf("NumTransitions after duplicate add = %d, want 3", got)
	}
	if got := New(b.Alphabet()).NumTransitions(); got != 0 {
		t.Errorf("empty automaton NumTransitions = %d, want 0", got)
	}
}

// TestOpsMatchesPlain checks the instrumented operations return the
// same automata/answers as the plain ones, with and without a recorder.
func TestOpsMatchesPlain(t *testing.T) {
	b := twoStateLoop(t)
	c := twoStateLoop(t)
	for _, ops := range []Ops{{}, {Rec: obs.NewTrace()}} {
		name := "nil"
		if ops.Rec != nil {
			name = "trace"
		}
		inter := ops.Intersect(b, c)
		plain := Intersect(b, c)
		if inter.NumStates() != plain.NumStates() || inter.NumTransitions() != plain.NumTransitions() {
			t.Errorf("%s: Ops.Intersect size %d/%d, plain %d/%d", name,
				inter.NumStates(), inter.NumTransitions(), plain.NumStates(), plain.NumTransitions())
		}
		if got, want := ops.Union(b, c).NumStates(), Union(b, c).NumStates(); got != want {
			t.Errorf("%s: Ops.Union states %d, want %d", name, got, want)
		}
		if got, want := ops.Reduce(b).NumStates(), b.Reduce().NumStates(); got != want {
			t.Errorf("%s: Ops.Reduce states %d, want %d", name, got, want)
		}
		if ops.IsEmpty(b) {
			t.Errorf("%s: Ops.IsEmpty true for nonempty language", name)
		}
		l, ok := ops.AcceptingLasso(b)
		if !ok || !b.AcceptsLasso(l) {
			t.Errorf("%s: Ops.AcceptingLasso witness invalid", name)
		}
		comp, err := ops.Complement(b)
		if err != nil {
			t.Fatalf("%s: Ops.Complement: %v", name, err)
		}
		if comp.AcceptsLasso(l) {
			t.Errorf("%s: complement accepts a word of the original", name)
		}
		incl, _, err := ops.Included(b, c)
		if err != nil || !incl {
			t.Errorf("%s: Ops.Included = %v, %v; want true, nil", name, incl, err)
		}
		pre := ops.PrefixNFA(b)
		if got, want := pre.NumStates(), b.PrefixNFA().NumStates(); got != want {
			t.Errorf("%s: Ops.PrefixNFA states %d, want %d", name, got, want)
		}
		lim, err := ops.LimitOfAllAccepting(pre)
		if err != nil {
			t.Fatalf("%s: Ops.LimitOfAllAccepting: %v", name, err)
		}
		if !lim.AcceptsLasso(l) {
			t.Errorf("%s: limit of prefixes lost the original behavior", name)
		}
		if _, err := ops.LimitOfPrefixClosed(pre); err != nil {
			t.Errorf("%s: Ops.LimitOfPrefixClosed: %v", name, err)
		}
	}
}

// TestOpsRecordsSpans checks the recorder actually sees sizes, calls,
// and the cumulative blowup counter.
func TestOpsRecordsSpans(t *testing.T) {
	tr := obs.NewTrace()
	ops := Ops{Rec: tr}
	b := twoStateLoop(t)
	out := ops.Intersect(b, twoStateLoop(t))
	sp, found := tr.Find("buchi.Intersect")
	if !found {
		t.Fatal("no buchi.Intersect span recorded")
	}
	if sp.Ints["left_states"] != 2 || sp.Ints["out_states"] != int64(out.NumStates()) {
		t.Errorf("span sizes wrong: %v", sp.Ints)
	}
	if sp.DurationNS < 0 {
		t.Error("span not ended")
	}
	counters := tr.Counters()
	if counters["buchi.intersect.calls"] != 1 {
		t.Errorf("intersect.calls = %d, want 1", counters["buchi.intersect.calls"])
	}
	if counters["buchi.states_built"] != int64(out.NumStates()) {
		t.Errorf("states_built = %d, want %d", counters["buchi.states_built"], out.NumStates())
	}
}

// TestOpsNilRecorderAllocationFree: the nil-Ops wrappers must not add
// allocations beyond the wrapped operation itself (here AcceptingLasso
// on an empty automaton allocates nothing).
func TestOpsNilRecorderAllocationFree(t *testing.T) {
	ab := alphabet.FromNames("a")
	empty := New(ab)
	ops := Ops{}
	allocs := testing.AllocsPerRun(1000, func() {
		ops.AcceptingLasso(empty)
	})
	base := testing.AllocsPerRun(1000, func() {
		empty.AcceptingLasso()
	})
	if allocs > base {
		t.Errorf("nil-recorder Ops.AcceptingLasso allocates %v, plain %v", allocs, base)
	}
}
