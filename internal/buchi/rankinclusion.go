package buchi

import (
	"context"
	"fmt"

	"relive/internal/alphabet"
	"relive/internal/interrupt"
	"relive/internal/kernel"
	"relive/internal/word"
)

// This file implements the lazy route for Büchi inclusion and
// universality: instead of eagerly materializing the full rank-based
// complement (Complement) and then intersecting, the complement is a
// successor-function view — configurations interned on first visit,
// per-(configuration, symbol) successor lists memoized — and the
// product emptiness search pulls transitions on demand. The search is
// the same lazily-expanded Tarjan with accepting-SCC early exit as
// emptiness.go, so when L_ω(a) ⊈ L_ω(c) the exploration stops at the
// first counterexample cycle having touched only the complement states
// the search actually reached; the eager route pays for the whole
// 2^O(n log n) complement up front either way. Both routes enumerate
// successor rankings through the shared rankSuccessors helper, so the
// explored structure — and the verdicts and witnesses — match.

// rankKey interns a complement configuration (level ranking +
// breakpoint set), byte-per-state as in Complement.
type rankKey struct {
	ranks string // 0xFF for ⊥, otherwise the rank
	oset  string // 1 when in O
}

// rankView is the lazy Kupferman–Vardi complement of a Büchi automaton.
type rankView struct {
	b       *Buchi
	n       int
	numSyms int
	index   map[rankKey]int32
	ranks   [][]int  // decoded level ranking per configuration
	osets   [][]bool // decoded breakpoint set per configuration
	acc     []bool   // configuration accepts iff its O-set is empty
	succs   [][]int32
}

func newRankView(b *Buchi) *rankView {
	return &rankView{
		b:       b,
		n:       b.NumStates(),
		numSyms: b.ab.Size(),
		index:   make(map[rankKey]int32),
	}
}

func (v *rankView) intern(ranks []int, oset []bool) int32 {
	rb := make([]byte, v.n)
	ob := make([]byte, v.n)
	empty := true
	for i := 0; i < v.n; i++ {
		if ranks[i] < 0 {
			rb[i] = 0xFF
		} else {
			rb[i] = byte(ranks[i])
		}
		if oset[i] {
			ob[i] = 1
			empty = false
		}
	}
	k := rankKey{ranks: string(rb), oset: string(ob)}
	if id, ok := v.index[k]; ok {
		return id
	}
	id := int32(len(v.acc))
	v.index[k] = id
	v.ranks = append(v.ranks, append([]int(nil), ranks...))
	v.osets = append(v.osets, append([]bool(nil), oset...))
	v.acc = append(v.acc, empty)
	for i := 0; i < v.numSyms; i++ {
		v.succs = append(v.succs, nil)
	}
	return id
}

// initialCfg interns and returns the complement's initial
// configuration: the source's initial states at the maximal (even)
// rank 2(n−|F|), empty O-set.
func (v *rankView) initialCfg() int32 {
	numAcc := 0
	for _, acc := range v.b.accepting {
		if acc {
			numAcc++
		}
	}
	maxRank := 2 * (v.n - numAcc)
	ranks := make([]int, v.n)
	for i := range ranks {
		ranks[i] = -1
	}
	for _, s := range v.b.initial {
		ranks[s] = maxRank
	}
	return v.intern(ranks, make([]bool, v.n))
}

// successors returns the memoized successor configurations of id on
// sym, in the canonical rankSuccessors order, erroring when the view
// exceeds the same state budget as the eager construction.
func (v *rankView) successors(id int32, sym alphabet.Symbol) ([]int32, error) {
	k := int(id)*v.numSyms + int(sym) - 1
	if v.succs[k] != nil {
		return v.succs[k], nil
	}
	out := make([]int32, 0, 4)
	v.b.rankSuccessors(v.ranks[id], v.osets[id], sym, func(full []int, nextO []bool) {
		out = append(out, v.intern(full, nextO))
	})
	if len(v.acc) > maxComplementStates {
		return nil, fmt.Errorf("buchi: lazy complementation exceeded %d states (source has %d states)",
			maxComplementStates, v.n)
	}
	v.succs[k] = out
	return out, nil
}

// rankExplorer is emptiness.go's explorer with the right-hand operand
// replaced by a rankView: the lazily expanded two-track product of a
// and the lazy complement of c, searched by the same iterative Tarjan.
type rankExplorer struct {
	a     *Buchi
	v     *rankView
	ca    *compiled
	syms  int
	plain bool // a all-accepting: acceptance = both accepting, no track

	index  map[pkey]int32
	states []pkey
	acc    []bool
	edges  [][]pedge
	parent []int32
	psym   []alphabet.Symbol
}

func newRankExplorer(a, c *Buchi) *rankExplorer {
	return &rankExplorer{
		a:     a,
		v:     newRankView(c),
		ca:    a.compiled(),
		syms:  a.ab.Size(),
		plain: a.allAccepting(),
		index: make(map[pkey]int32),
	}
}

func (e *rankExplorer) intern(k pkey) int32 {
	if id, ok := e.index[k]; ok {
		return id
	}
	id := int32(len(e.states))
	e.index[k] = id
	e.states = append(e.states, k)
	if e.plain {
		e.acc = append(e.acc, e.a.accepting[k.x] && e.v.acc[k.y])
	} else {
		e.acc = append(e.acc, k.track == 1 && e.v.acc[k.y])
	}
	e.edges = append(e.edges, nil)
	e.parent = append(e.parent, -1)
	e.psym = append(e.psym, alphabet.Epsilon)
	return id
}

func (e *rankExplorer) expand(id int32) ([]pedge, error) {
	if e.edges[id] != nil {
		return e.edges[id], nil
	}
	k := e.states[id]
	track := k.track
	if !e.plain {
		if track == 0 && e.a.accepting[k.x] {
			track = 1
		} else if track == 1 && e.v.acc[k.y] {
			track = 0
		}
	}
	out := []pedge{}
	for sym := 1; sym <= e.syms; sym++ {
		xs := e.ca.row(State(k.x), alphabet.Symbol(sym))
		if len(xs) == 0 {
			continue
		}
		ys, err := e.v.successors(k.y, alphabet.Symbol(sym))
		if err != nil {
			return nil, err
		}
		for _, x := range xs {
			for _, y := range ys {
				to := e.intern(pkey{x, y, track})
				out = append(out, pedge{to: to, sym: alphabet.Symbol(sym)})
			}
		}
	}
	e.edges[id] = out
	return out, nil
}

// search is explorer.search over the errorable lazy expansion.
func (e *rankExplorer) search(ctx context.Context) ([]int32, error) {
	const unvisited = -1
	var (
		index, low []int32
		onStack    []bool
		stack      []int32
		counter    int32
		tick       interrupt.Tick
	)
	ensure := func(id int32) {
		for int32(len(index)) <= id {
			index = append(index, unvisited)
			low = append(low, 0)
			onStack = append(onStack, false)
		}
	}

	type frame struct {
		v    int32
		next int32
	}
	cinit := e.v.initialCfg()
	var roots []int32
	for _, x := range e.a.initial {
		roots = append(roots, e.intern(pkey{int32(x), cinit, 0}))
	}
	for _, root := range roots {
		ensure(root)
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root, next: -1}}
		for len(callStack) > 0 {
			if err := tick.Poll(ctx); err != nil {
				return nil, err
			}
			f := &callStack[len(callStack)-1]
			if f.next < 0 {
				ensure(f.v)
				index[f.v] = counter
				low[f.v] = counter
				counter++
				stack = append(stack, f.v)
				onStack[f.v] = true
				f.next = 0
			}
			succ, err := e.expand(f.v)
			if err != nil {
				return nil, err
			}
			advanced := false
			for int(f.next) < len(succ) {
				edge := succ[f.next]
				f.next++
				w := edge.to
				ensure(w)
				if index[w] == unvisited {
					e.parent[w] = f.v
					e.psym[w] = edge.sym
					callStack = append(callStack, frame{v: w, next: -1})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[f.v] == index[f.v] {
				var comp []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				if acceptingComponent(e.edges, e.acc, comp) {
					return comp, nil
				}
			}
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	return nil, nil
}

// IncludedRankCtx reports whether L_ω(a) ⊆ L_ω(c) by searching the
// product of a with the lazy rank-based complement of c, returning a
// counterexample lasso in L_ω(a) \ L_ω(c) when the inclusion fails. It
// is the lazy route behind IncludedKernelCtx; Included is the eager
// reference it is differ-checked against.
func IncludedRankCtx(ctx context.Context, a, c *Buchi) (bool, word.Lasso, error) {
	if a.NumStates() == 0 || len(a.initial) == 0 {
		return true, word.Lasso{}, nil // L_ω(a) = ∅
	}
	e := newRankExplorer(a, c)
	comp, err := e.search(ctx)
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return false, word.Lasso{}, err
		}
		return false, word.Lasso{}, fmt.Errorf("inclusion check: %w", err)
	}
	if comp == nil {
		return true, word.Lasso{}, nil
	}
	return false, lassoWitness(e.edges, e.acc, e.parent, e.psym, comp), nil
}

// autoRankMin is the right-hand-side state count from which kernel.Auto
// picks the lazy rank route for Büchi inclusion/universality. The eager
// complement is 2^O(n log n) in this count; below the threshold it is
// small enough that laziness cannot win.
const autoRankMin = 8

// ResolveKernel resolves an Auto kernel choice for a Büchi inclusion or
// universality check whose right-hand side is c: the lazy rank route
// from autoRankMin states, the eager complement-then-intersect route
// below. Explicit choices pass through.
func ResolveKernel(k kernel.Kind, c *Buchi) kernel.Kind {
	switch k {
	case kernel.Subset, kernel.Antichain:
		return k
	}
	if c.NumStates() >= autoRankMin {
		return kernel.Antichain
	}
	return kernel.Subset
}

// IncludedKernelCtx is Büchi inclusion dispatched over the kernel
// choice: the lazy rank route when k resolves to the antichain/lazy
// kernels, the eager Complement-then-IntersectLasso route otherwise.
func IncludedKernelCtx(ctx context.Context, k kernel.Kind, a, c *Buchi) (bool, word.Lasso, error) {
	if ResolveKernel(k, c) == kernel.Antichain {
		return IncludedRankCtx(ctx, a, c)
	}
	ok, l, err := Included(a, c)
	if err != nil {
		return false, word.Lasso{}, err
	}
	return ok, l, nil
}

// UniversalKernelCtx reports whether L_ω(c) = Σ^ω, dispatched over the
// kernel choice, with a rejected lasso as counterexample.
func UniversalKernelCtx(ctx context.Context, k kernel.Kind, c *Buchi) (bool, word.Lasso, error) {
	return IncludedKernelCtx(ctx, k, UniversalAutomaton(c.ab), c)
}
