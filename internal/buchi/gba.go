package buchi

import (
	"fmt"

	"relive/internal/alphabet"
)

// Generalized is a generalized Büchi automaton: acceptance demands
// visiting every acceptance set infinitely often. It is the natural
// output shape of tableau constructions (one set per Until subformula)
// and of multi-constraint intersections; Degeneralize converts it to an
// ordinary Büchi automaton with a counter.
type Generalized struct {
	ab      *alphabet.Alphabet
	initial []State
	sets    [][]bool // sets[k][s]: state s belongs to acceptance set k
	trans   []map[alphabet.Symbol][]State
}

// NewGeneralized returns an empty generalized Büchi automaton with the
// given number of acceptance sets.
func NewGeneralized(ab *alphabet.Alphabet, numSets int) *Generalized {
	return &Generalized{ab: ab, sets: make([][]bool, numSets)}
}

// Alphabet returns the automaton's alphabet.
func (g *Generalized) Alphabet() *alphabet.Alphabet { return g.ab }

// NumStates returns the number of states.
func (g *Generalized) NumStates() int { return len(g.trans) }

// NumSets returns the number of acceptance sets.
func (g *Generalized) NumSets() int { return len(g.sets) }

// AddState adds a fresh state.
func (g *Generalized) AddState() State {
	s := State(len(g.trans))
	g.trans = append(g.trans, nil)
	for k := range g.sets {
		g.sets[k] = append(g.sets[k], false)
	}
	return s
}

// SetInitial marks s initial.
func (g *Generalized) SetInitial(s State) { g.initial = append(g.initial, s) }

// AddToSet puts s into acceptance set k.
func (g *Generalized) AddToSet(k int, s State) error {
	if k < 0 || k >= len(g.sets) {
		return fmt.Errorf("buchi: acceptance set %d out of range [0,%d)", k, len(g.sets))
	}
	g.sets[k][s] = true
	return nil
}

// AddTransition adds from --sym--> to.
func (g *Generalized) AddTransition(from State, sym alphabet.Symbol, to State) {
	if sym == alphabet.Epsilon {
		panic("buchi: ε-transition added to generalized Büchi automaton")
	}
	m := g.trans[from]
	if m == nil {
		m = make(map[alphabet.Symbol][]State)
		g.trans[from] = m
	}
	for _, t := range m[sym] {
		if t == to {
			return
		}
	}
	m[sym] = append(m[sym], to)
}

// Degeneralize converts the automaton to an equivalent ordinary Büchi
// automaton by the counter construction: counter value v < k awaits
// acceptance set v, advancing when the target state belongs to it; the
// value k marks a completed round (semantically 0) and carries the
// Büchi acceptance. With zero acceptance sets every infinite run
// accepts, so all states accept.
func (g *Generalized) Degeneralize() *Buchi {
	k := len(g.sets)
	b := New(g.ab)
	if k == 0 {
		for range g.trans {
			b.AddState(true)
		}
		for i := range g.trans {
			for sym, ts := range g.trans[i] {
				for _, t := range ts {
					b.AddTransition(State(i), sym, t)
				}
			}
		}
		for _, s := range g.initial {
			b.SetInitial(s)
		}
		return b
	}
	bump := func(counter int, target State) int {
		v := counter
		if v == k {
			v = 0
		}
		if g.sets[v][target] {
			v++
		}
		return v
	}
	type cfg struct {
		s       State
		counter int
	}
	index := map[cfg]State{}
	var queue []cfg
	intern := func(c cfg) State {
		if s, ok := index[c]; ok {
			return s
		}
		s := b.AddState(c.counter == k)
		index[c] = s
		queue = append(queue, c)
		return s
	}
	for _, s := range g.initial {
		b.SetInitial(intern(cfg{s: s, counter: 0}))
	}
	for qi := 0; qi < len(queue); qi++ {
		c := queue[qi]
		from := index[c]
		for sym, ts := range g.trans[c.s] {
			for _, t := range ts {
				b.AddTransition(from, sym, intern(cfg{s: t, counter: bump(c.counter, t)}))
			}
		}
	}
	return b
}

// IntersectAll builds a generalized Büchi automaton for the
// intersection of several Büchi automata over one alphabet — a plain
// product with one acceptance set per operand — and degeneralizes it.
// For many operands this is smaller than iterated binary Intersect.
func IntersectAll(autos ...*Buchi) (*Buchi, error) {
	if len(autos) == 0 {
		return nil, fmt.Errorf("buchi: IntersectAll needs at least one automaton")
	}
	if len(autos) == 1 {
		return autos[0].Clone(), nil
	}
	ab := autos[0].ab
	g := NewGeneralized(ab, len(autos))
	type vec string // packed state vector
	pack := func(states []State) vec {
		b := make([]byte, 0, len(states)*2)
		for _, s := range states {
			b = append(b, byte(s), byte(s>>8))
		}
		return vec(b)
	}
	index := map[vec]State{}
	var queue [][]State
	intern := func(states []State) State {
		k := pack(states)
		if s, ok := index[k]; ok {
			return s
		}
		s := g.AddState()
		for ai, a := range autos {
			if a.accepting[states[ai]] {
				if err := g.AddToSet(ai, s); err != nil {
					panic(err) // set index is structurally in range
				}
			}
		}
		index[k] = s
		queue = append(queue, append([]State(nil), states...))
		return s
	}
	// Cartesian product of initial states.
	var initRec func(prefix []State, i int)
	initRec = func(prefix []State, i int) {
		if i == len(autos) {
			g.SetInitial(intern(prefix))
			return
		}
		for _, s := range autos[i].initial {
			initRec(append(prefix, s), i+1)
		}
	}
	initRec(nil, 0)
	for qi := 0; qi < len(queue); qi++ {
		states := queue[qi]
		from := index[pack(states)]
		for _, sym := range ab.Symbols() {
			var step func(prefix []State, i int)
			step = func(prefix []State, i int) {
				if i == len(autos) {
					g.AddTransition(from, sym, intern(prefix))
					return
				}
				for _, t := range autos[i].trans[states[i]][sym] {
					step(append(prefix, t), i+1)
				}
			}
			step(nil, 0)
		}
	}
	return g.Degeneralize(), nil
}
