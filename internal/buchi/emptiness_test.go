package buchi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relive/internal/genbase"
)

// TestQuickIntersectEmptyMatchesMaterialized: the on-the-fly emptiness
// verdict must agree with materializing the product and reducing it.
func TestQuickIntersectEmptyMatchesMaterialized(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, c := seedBuchi(s1), seedBuchi(s2)
		return IntersectEmpty(a, c) == Intersect(a, c).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectLassoWitnessValid: a returned witness must be
// accepted by BOTH operands, checked through the materialized product
// with the lasso automaton (the pre-optimization membership oracle).
func TestQuickIntersectLassoWitnessValid(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, c := seedBuchi(s1), seedBuchi(s2)
		l, ok := IntersectLasso(a, c)
		if !ok {
			return true
		}
		inA := !Intersect(a, LassoAutomaton(a.Alphabet(), l)).IsEmpty()
		inC := !Intersect(c, LassoAutomaton(c.Alphabet(), l)).IsEmpty()
		return inA && inC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectEmptyFromMatchesRestart: starting the on-the-fly
// search from arbitrary state sets must agree with cloning both
// automata, re-rooting them there, and intersecting.
func TestQuickIntersectEmptyFromMatchesRestart(t *testing.T) {
	f := func(s1, s2 int64) bool {
		rng := rand.New(rand.NewSource(s1 ^ s2<<1))
		a, c := seedBuchi(s1), seedBuchi(s2)
		ainit := randomStateSet(rng, a.NumStates())
		cinit := randomStateSet(rng, c.NumStates())
		got := IntersectEmptyFrom(a, c, ainit, cinit)
		want := Intersect(rerooted(a, ainit), rerooted(c, cinit)).IsEmpty()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestIntersectEmptyPlainMode exercises the all-accepting ("plain
// product") mode of the explorer against the materialized plain product.
func TestIntersectEmptyPlainMode(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		a := seedBuchi(seed).DropAcceptance() // every state accepting
		c := seedBuchi(seed + 1000)
		want := Intersect(a, c).IsEmpty()
		if got := IntersectEmpty(a, c); got != want {
			t.Fatalf("seed %d: plain-mode IntersectEmpty = %v, materialized = %v", seed, got, want)
		}
		l, ok := IntersectLasso(a, c)
		if ok != !want {
			t.Fatalf("seed %d: IntersectLasso ok = %v, want %v", seed, ok, !want)
		}
		if ok {
			if !a.AcceptsLasso(l) || !c.AcceptsLasso(l) {
				t.Fatalf("seed %d: witness %v not accepted by both operands", seed, l)
			}
		}
	}
}

// TestIntersectEmptyDegenerate: empty automata and empty root sets are
// reported empty without exploration.
func TestIntersectEmptyDegenerate(t *testing.T) {
	ab := genbase.Letters(2)
	empty := New(ab)
	nonEmpty := seedBuchi(7)
	if !IntersectEmpty(empty, nonEmpty) || !IntersectEmpty(nonEmpty, empty) {
		t.Error("intersection with the empty automaton must be empty")
	}
	if !IntersectEmptyFrom(nonEmpty, nonEmpty, nil, []State{}) {
		t.Error("empty root set must yield an empty intersection")
	}
}

// randomStateSet draws a nonempty random subset of 0..n-1.
func randomStateSet(rng *rand.Rand, n int) []State {
	var out []State
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.4 {
			out = append(out, State(i))
		}
	}
	if len(out) == 0 {
		out = append(out, State(rng.Intn(n)))
	}
	return out
}

// rerooted clones b with the initial states replaced, mirroring the
// restart helper the decision procedures used before IntersectEmptyFrom.
func rerooted(b *Buchi, initial []State) *Buchi {
	c := New(b.Alphabet())
	for i := 0; i < b.NumStates(); i++ {
		c.AddState(b.Accepting(State(i)))
	}
	for i := 0; i < b.NumStates(); i++ {
		for _, sym := range b.Alphabet().Symbols() {
			for _, t := range b.Succ(State(i), sym) {
				c.AddTransition(State(i), sym, t)
			}
		}
	}
	for _, s := range initial {
		c.SetInitial(s)
	}
	return c
}
