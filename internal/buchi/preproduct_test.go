package buchi

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/genbase"
	"relive/internal/nfa"
)

// materializedPre is the chain PreProductNFACtx fuses, kept as the
// differential reference: product, reduce-to-accepting-cycles, prefix
// NFA, trim.
func materializedPre(t *testing.T, a, c *Buchi) *nfa.NFA {
	t.Helper()
	p, err := IntersectCtx(nil, a, c)
	if err != nil {
		t.Fatalf("IntersectCtx: %v", err)
	}
	return p.PrefixNFA().Trim()
}

// sameNFA asserts got and want are byte-identical automata: same state
// count, same accepting flags, same initial list, and the same
// transition row for every (state, symbol) pair in order.
func sameNFA(t *testing.T, trial int, got, want *nfa.NFA) {
	t.Helper()
	if got.NumStates() != want.NumStates() {
		t.Fatalf("trial %d: state count %d, want %d\ngot:\n%v\nwant:\n%v",
			trial, got.NumStates(), want.NumStates(), got, want)
	}
	gi, wi := got.Initial(), want.Initial()
	if len(gi) != len(wi) {
		t.Fatalf("trial %d: initial count %d, want %d", trial, len(gi), len(wi))
	}
	for i := range gi {
		if gi[i] != wi[i] {
			t.Fatalf("trial %d: initial[%d] = %d, want %d", trial, i, gi[i], wi[i])
		}
	}
	syms := append([]alphabet.Symbol{alphabet.Epsilon}, got.Alphabet().Symbols()...)
	for s := 0; s < got.NumStates(); s++ {
		if got.Accepting(nfa.State(s)) != want.Accepting(nfa.State(s)) {
			t.Fatalf("trial %d: accepting(%d) diverges", trial, s)
		}
		for _, sym := range syms {
			gr := got.Succ(nfa.State(s), sym)
			wr := want.Succ(nfa.State(s), sym)
			if len(gr) != len(wr) {
				t.Fatalf("trial %d: row (%d, %v): %v, want %v", trial, s, sym, gr, wr)
			}
			for i := range gr {
				if gr[i] != wr[i] {
					t.Fatalf("trial %d: row (%d, %v): %v, want %v", trial, s, sym, gr, wr)
				}
			}
		}
	}
}

func TestPreProductMatchesMaterializedChain(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ab := genbase.Letters(2)
	for trial := 0; trial < 200; trial++ {
		a := randomBuchi(rng, ab, 1+rng.Intn(4))
		c := randomBuchi(rng, ab, 1+rng.Intn(4))
		if trial%2 == 0 {
			// The pipeline's left operand is a lim(L) automaton, which is
			// all-accepting; exercise that (plain-product) shape directly.
			for i := 0; i < a.NumStates(); i++ {
				a.SetAccepting(State(i), true)
			}
		}
		fused, _, err := PreProductNFACtx(nil, a, c)
		if err != nil {
			t.Fatalf("trial %d: PreProductNFACtx: %v", trial, err)
		}
		sameNFA(t, trial, fused, materializedPre(t, a, c))
	}
}

func TestPreProductEmptyProduct(t *testing.T) {
	ab := genbase.Letters(2)
	a := New(ab) // no states: L_ω(a) = ∅
	c := UniversalAutomaton(ab)
	fused, explored, err := PreProductNFACtx(nil, a, c)
	if err != nil {
		t.Fatalf("PreProductNFACtx: %v", err)
	}
	if explored != 0 || fused.NumStates() != 0 {
		t.Fatalf("empty product: explored %d states, output has %d", explored, fused.NumStates())
	}
}
