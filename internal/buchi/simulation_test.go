package buchi

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/genbase"
)

func TestSimulationMergesTwins(t *testing.T) {
	ab := alphabet.FromNames("a")
	b := New(ab)
	q0 := b.AddState(false)
	l := b.AddState(true)
	r := b.AddState(true)
	sa := ab.Symbols()[0]
	b.AddTransition(q0, sa, l)
	b.AddTransition(q0, sa, r)
	b.AddTransition(l, sa, l)
	b.AddTransition(r, sa, r)
	b.SetInitial(q0)
	q := b.QuotientBySimulation()
	if q.NumStates() != 2 {
		t.Errorf("quotient has %d states, want 2", q.NumStates())
	}
	if !q.AcceptsLasso(lasso(ab, "", "a")) {
		t.Error("quotient rejects a^ω")
	}
}

func TestSimulationPreservesAcceptanceDistinction(t *testing.T) {
	// Accepting and non-accepting sinks must not merge.
	ab := alphabet.FromNames("a")
	b := New(ab)
	acc := b.AddState(true)
	non := b.AddState(false)
	sa := ab.Symbols()[0]
	b.AddTransition(acc, sa, acc)
	b.AddTransition(non, sa, non)
	b.SetInitial(acc)
	sim := b.DirectSimulation()
	if sim[int(acc)][int(non)] {
		t.Error("non-accepting sink simulates accepting sink")
	}
	if !sim[int(non)][int(acc)] {
		t.Error("accepting self-loop should simulate non-accepting self-loop")
	}
}

// TestQuickSimulationQuotientPreservesLanguage: the quotient accepts
// exactly the same lassos on random automata.
func TestQuickSimulationQuotientPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	ab := genbase.Letters(2)
	for trial := 0; trial < 50; trial++ {
		b := randomBuchi(rng, ab, 1+rng.Intn(6))
		q := b.QuotientBySimulation()
		if q.NumStates() > b.NumStates() {
			t.Fatalf("trial %d: quotient grew %d -> %d", trial, b.NumStates(), q.NumStates())
		}
		for i := 0; i < 25; i++ {
			l := genbase.Lasso(rng, ab, 3, 3)
			if b.AcceptsLasso(l) != q.AcceptsLasso(l) {
				t.Fatalf("trial %d: quotient changed the language on %s\noriginal:\n%s\nquotient:\n%s",
					trial, l.String(ab), b, q)
			}
		}
	}
}

// TestQuickSimulationSoundness: sim[p][q] implies language containment
// from p into q, checked on sampled lassos.
func TestQuickSimulationSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	ab := genbase.Letters(2)
	for trial := 0; trial < 25; trial++ {
		b := randomBuchi(rng, ab, 1+rng.Intn(5))
		sim := b.DirectSimulation()
		n := b.NumStates()
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if !sim[p][q] || p == q {
					continue
				}
				fromP := restartAt(b, State(p))
				fromQ := restartAt(b, State(q))
				for i := 0; i < 10; i++ {
					l := genbase.Lasso(rng, ab, 2, 3)
					if fromP.AcceptsLasso(l) && !fromQ.AcceptsLasso(l) {
						t.Fatalf("trial %d: sim[%d][%d] but language not contained on %s",
							trial, p, q, l.String(ab))
					}
				}
			}
		}
	}
}

func restartAt(b *Buchi, s State) *Buchi {
	c := New(b.Alphabet())
	for i := 0; i < b.NumStates(); i++ {
		c.AddState(b.Accepting(State(i)))
	}
	for i := 0; i < b.NumStates(); i++ {
		for _, sym := range b.Alphabet().Symbols() {
			for _, t := range b.Succ(State(i), sym) {
				c.AddTransition(State(i), sym, t)
			}
		}
	}
	c.SetInitial(s)
	return c
}
