package buchi

import (
	"context"

	"relive/internal/alphabet"
	"relive/internal/interrupt"
	"relive/internal/word"
)

// This file implements on-the-fly emptiness of the intersection
// L_ω(a) ∩ L_ω(c): the two-track product is explored lazily while an
// iterative Tarjan SCC search runs on top of it, stopping at the first
// nontrivial strongly connected component that contains an accepting
// product state. Call sites that previously materialized
// Intersect(a, c) solely to ask IsEmpty (the decision procedures'
// dominant pattern) avoid building — and then reducing — product states
// the search never visits, and stop early on non-empty products.
//
// Witness extraction reuses the exploration: when the accepting SCC
// pops, all of its members are fully expanded, so the lasso prefix is
// the DFS parent chain of an accepting member and the cycle is a BFS
// inside the component.

// pkey identifies a product state: a pair of operand states plus the
// track bit of the standard two-track Büchi intersection. In "plain"
// mode (either operand all-accepting) the track stays 0.
type pkey struct {
	x, y  int32
	track uint8
}

// pedge is one expanded product transition.
type pedge struct {
	to  int32
	sym alphabet.Symbol
}

// explorer is the lazy product automaton: states are interned on first
// visit and their outgoing edges computed once from the operands'
// compiled (CSR) forms.
type explorer struct {
	a, c         *Buchi
	ainit, cinit []State
	ca, cc       *compiled
	syms         int
	plain        bool // acceptance = both accepting; no track flipping

	index  map[pkey]int32
	states []pkey
	acc    []bool // product-state acceptance
	edges  [][]pedge
	parent []int32 // DFS tree parent, -1 for roots
	psym   []alphabet.Symbol
}

func newExplorer(a, c *Buchi, ainit, cinit []State) *explorer {
	return &explorer{
		a: a, c: c,
		ainit: ainit, cinit: cinit,
		ca: a.compiled(), cc: c.compiled(),
		syms:  a.ab.Size(),
		plain: a.allAccepting() || c.allAccepting(),
		index: make(map[pkey]int32),
	}
}

func (e *explorer) intern(k pkey) int32 {
	if id, ok := e.index[k]; ok {
		return id
	}
	id := int32(len(e.states))
	e.index[k] = id
	e.states = append(e.states, k)
	if e.plain {
		e.acc = append(e.acc, e.a.accepting[k.x] && e.c.accepting[k.y])
	} else {
		e.acc = append(e.acc, k.track == 1 && e.c.accepting[k.y])
	}
	e.edges = append(e.edges, nil)
	e.parent = append(e.parent, -1)
	e.psym = append(e.psym, alphabet.Epsilon)
	return id
}

// expand computes (once) the outgoing edges of product state id.
func (e *explorer) expand(id int32) []pedge {
	if e.edges[id] != nil {
		return e.edges[id]
	}
	k := e.states[id]
	track := k.track
	if !e.plain {
		if track == 0 && e.a.accepting[k.x] {
			track = 1
		} else if track == 1 && e.c.accepting[k.y] {
			track = 0
		}
	}
	out := []pedge{}
	for sym := 1; sym <= e.syms; sym++ {
		xs := e.ca.row(State(k.x), alphabet.Symbol(sym))
		if len(xs) == 0 {
			continue
		}
		ys := e.cc.row(State(k.y), alphabet.Symbol(sym))
		for _, x := range xs {
			for _, y := range ys {
				to := e.intern(pkey{x, y, track})
				out = append(out, pedge{to: to, sym: alphabet.Symbol(sym)})
			}
		}
	}
	e.edges[id] = out
	return out
}

// search runs Tarjan over the lazily expanded product, returning the
// members of the first nontrivial SCC containing an accepting state, or
// nil when the intersection is empty. Exploration stops as soon as the
// component is found, or — with a non-nil ctx — as soon as the context
// is cancelled, which is the cooperative cancellation checkpoint of the
// emptiness loop.
func (e *explorer) search(ctx context.Context) ([]int32, error) {
	const unvisited = -1
	var (
		index, low []int32
		onStack    []bool
		stack      []int32
		counter    int32
		tick       interrupt.Tick
	)
	// Grow the per-state Tarjan arrays in step with interning.
	ensure := func(id int32) {
		for int32(len(index)) <= id {
			index = append(index, unvisited)
			low = append(low, 0)
			onStack = append(onStack, false)
		}
	}

	type frame struct {
		v    int32
		next int32 // -1: not yet numbered
	}
	var roots []int32
	for _, x := range e.ainit {
		for _, y := range e.cinit {
			roots = append(roots, e.intern(pkey{int32(x), int32(y), 0}))
		}
	}
	for _, root := range roots {
		ensure(root)
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root, next: -1}}
		for len(callStack) > 0 {
			if err := tick.Poll(ctx); err != nil {
				return nil, err
			}
			f := &callStack[len(callStack)-1]
			if f.next < 0 {
				ensure(f.v)
				index[f.v] = counter
				low[f.v] = counter
				counter++
				stack = append(stack, f.v)
				onStack[f.v] = true
				f.next = 0
			}
			succ := e.expand(f.v)
			advanced := false
			for int(f.next) < len(succ) {
				edge := succ[f.next]
				f.next++
				w := edge.to
				ensure(w)
				if index[w] == unvisited {
					e.parent[w] = f.v
					e.psym[w] = edge.sym
					callStack = append(callStack, frame{v: w, next: -1})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[f.v] == index[f.v] {
				var comp []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				if acceptingComponent(e.edges, e.acc, comp) {
					return comp, nil
				}
			}
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	return nil, nil
}

// acceptingComponent reports whether comp is nontrivial (carries a
// cycle) and contains an accepting product state. Shared with the lazy
// rank-based product of rankinclusion.go.
func acceptingComponent(edges [][]pedge, acc []bool, comp []int32) bool {
	hasAcc := false
	for _, v := range comp {
		if acc[v] {
			hasAcc = true
			break
		}
	}
	if !hasAcc {
		return false
	}
	if len(comp) > 1 {
		return true
	}
	v := comp[0]
	for _, edge := range edges[v] {
		if edge.to == v {
			return true
		}
	}
	return false
}

// lassoWitness builds an accepting lasso from a found component: the
// DFS parent chain of an accepting member is the prefix, a BFS inside
// the (fully expanded, strongly connected) component yields the cycle.
// Shared with the lazy rank-based product of rankinclusion.go.
func lassoWitness(edges [][]pedge, acc []bool, parent []int32, psym []alphabet.Symbol, comp []int32) word.Lasso {
	target := comp[0]
	for _, v := range comp {
		if acc[v] {
			target = v
			break
		}
	}
	var prefix word.Word
	for v := target; parent[v] != -1; v = parent[v] {
		prefix = append(prefix, psym[v])
	}
	for l, r := 0, len(prefix)-1; l < r; l, r = l+1, r-1 {
		prefix[l], prefix[r] = prefix[r], prefix[l]
	}
	return word.MustLasso(prefix, sccCycleWord(edges, target, comp))
}

// sccCycleWord returns the label word of a shortest nonempty cycle
// through target inside its strongly connected component.
func sccCycleWord(edges [][]pedge, target int32, comp []int32) word.Word {
	inComp := make(map[int32]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	for _, edge := range edges[target] {
		if edge.to == target {
			return word.Word{edge.sym}
		}
	}
	type centry struct {
		v      int32
		parent int32
		sym    alphabet.Symbol
	}
	var q []centry
	seen := make(map[int32]bool, len(comp))
	for _, edge := range edges[target] {
		if inComp[edge.to] && !seen[edge.to] {
			seen[edge.to] = true
			q = append(q, centry{v: edge.to, parent: -1, sym: edge.sym})
		}
	}
	for qi := 0; qi < len(q); qi++ {
		cur := q[qi]
		for _, edge := range edges[cur.v] {
			if edge.to == target {
				w := word.Word{edge.sym}
				for j := int32(qi); j != -1; j = q[j].parent {
					w = append(w, q[j].sym)
				}
				for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
					w[l], w[r] = w[r], w[l]
				}
				return w
			}
			if inComp[edge.to] && !seen[edge.to] {
				seen[edge.to] = true
				q = append(q, centry{v: edge.to, parent: int32(qi), sym: edge.sym})
			}
		}
	}
	// Unreachable: a nontrivial SCC has a cycle through every member.
	panic("buchi: no cycle through SCC member")
}

// intersectLasso is the shared engine behind the exported emptiness
// entry points. ainit/cinit override the operands' initial states (nil
// means use their own), which lets the decision procedures ask about
// restarted automata without cloning them. It returns the number of
// product states explored for instrumentation. A non-nil ctx is polled
// inside the search; its error aborts the exploration.
func intersectLasso(ctx context.Context, a, c *Buchi, ainit, cinit []State) (word.Lasso, int, bool, error) {
	if ainit == nil {
		ainit = a.initial
	}
	if cinit == nil {
		cinit = c.initial
	}
	if len(ainit) == 0 || len(cinit) == 0 || a.NumStates() == 0 || c.NumStates() == 0 {
		return word.Lasso{}, 0, false, nil
	}
	e := newExplorer(a, c, ainit, cinit)
	comp, err := e.search(ctx)
	if err != nil {
		return word.Lasso{}, len(e.states), false, err
	}
	if comp == nil {
		return word.Lasso{}, len(e.states), false, nil
	}
	return lassoWitness(e.edges, e.acc, e.parent, e.psym, comp), len(e.states), true, nil
}

// IntersectLasso returns an ultimately periodic word accepted by both a
// and c, or ok=false when L_ω(a) ∩ L_ω(c) = ∅. It is equivalent to
// Intersect(a, c).AcceptingLasso() but explores the product on the fly
// and stops at the first accepting cycle.
func IntersectLasso(a, c *Buchi) (word.Lasso, bool) {
	l, _, ok, _ := intersectLasso(nil, a, c, nil, nil)
	return l, ok
}

// IntersectLassoCtx is IntersectLasso with a cooperative cancellation
// checkpoint inside the product exploration. A nil ctx never cancels.
func IntersectLassoCtx(ctx context.Context, a, c *Buchi) (word.Lasso, bool, error) {
	l, _, ok, err := intersectLasso(ctx, a, c, nil, nil)
	return l, ok, err
}

// IntersectEmpty reports whether L_ω(a) ∩ L_ω(c) is empty, without
// materializing the product.
func IntersectEmpty(a, c *Buchi) bool {
	_, _, ok, _ := intersectLasso(nil, a, c, nil, nil)
	return !ok
}

// IntersectEmptyCtx is IntersectEmpty with a cooperative cancellation
// checkpoint inside the product exploration. A nil ctx never cancels.
func IntersectEmptyCtx(ctx context.Context, a, c *Buchi) (bool, error) {
	_, _, ok, err := intersectLasso(ctx, a, c, nil, nil)
	return !ok, err
}

// IntersectEmptyFrom is IntersectEmpty with the exploration started
// from the given operand states instead of the automata's initial
// states. Decision procedures that ask "is the intersection empty when
// both automata restart from configuration (p, q)?" use this in place
// of cloning and re-rooting the operands per configuration.
func IntersectEmptyFrom(a, c *Buchi, ainit, cinit []State) bool {
	_, _, ok, _ := intersectLasso(nil, a, c, ainit, cinit)
	return !ok
}

// IntersectLassoFrom is IntersectLasso started from the given operand
// states (nil means the automaton's own initial states).
func IntersectLassoFrom(a, c *Buchi, ainit, cinit []State) (word.Lasso, bool) {
	l, _, ok, _ := intersectLasso(nil, a, c, ainit, cinit)
	return l, ok
}
