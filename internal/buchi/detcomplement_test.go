package buchi

import (
	"math/rand"
	"strings"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/genbase"
	"relive/internal/nfa"
)

// detInfA returns a deterministic Büchi automaton for "infinitely many
// a" over {a,b}.
func detInfA(ab *alphabet.Alphabet) *Buchi {
	b := New(ab)
	q0 := b.AddState(false)
	q1 := b.AddState(true)
	sa, _ := ab.Lookup("a")
	sb, _ := ab.Lookup("b")
	b.AddTransition(q0, sb, q0)
	b.AddTransition(q0, sa, q1)
	b.AddTransition(q1, sa, q1)
	b.AddTransition(q1, sb, q0)
	b.SetInitial(q0)
	return b
}

func TestIsDeterministic(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	if !detInfA(ab).IsDeterministic() {
		t.Error("deterministic automaton not recognized")
	}
	nd := detInfA(ab)
	sa, _ := ab.Lookup("a")
	nd.AddTransition(0, sa, 0) // second a-successor of q0
	if nd.IsDeterministic() {
		t.Error("nondeterministic automaton not recognized")
	}
	multi := New(ab)
	multi.SetInitial(multi.AddState(true))
	multi.SetInitial(multi.AddState(true))
	if multi.IsDeterministic() {
		t.Error("two initial states should not count as deterministic")
	}
}

func TestComplementDeterministicAgainstRankBased(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	ab := genbase.Letters(2)
	b := detInfA(ab)
	c1, err := b.ComplementDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := b.Complement()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		l := genbase.Lasso(rng, ab, 4, 4)
		want := !b.AcceptsLasso(l)
		if c1.AcceptsLasso(l) != want {
			t.Errorf("two-copy complement wrong on %s", l.String(ab))
		}
		if c2.AcceptsLasso(l) != want {
			t.Errorf("rank-based complement wrong on %s", l.String(ab))
		}
	}
}

func TestComplementDeterministicPartialRuns(t *testing.T) {
	// Partial deterministic automaton: only a·a·... accepted; any b
	// kills the run, so the complement accepts everything with a b.
	ab := alphabet.FromNames("a", "b")
	b := New(ab)
	q := b.AddState(true)
	sa, _ := ab.Lookup("a")
	b.AddTransition(q, sa, q)
	b.SetInitial(q)
	c, err := b.ComplementDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	if c.AcceptsLasso(lasso(ab, "", "a")) {
		t.Error("complement accepts a^ω")
	}
	if !c.AcceptsLasso(lasso(ab, "a", "b")) {
		t.Error("complement rejects a·b^ω")
	}
	if !c.AcceptsLasso(lasso(ab, "", "ba")) {
		t.Error("complement rejects (ba)^ω")
	}
}

func TestComplementAuto(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	det := detInfA(ab)
	c, err := det.ComplementAuto()
	if err != nil {
		t.Fatal(err)
	}
	if c.AcceptsLasso(lasso(ab, "", "a")) || !c.AcceptsLasso(lasso(ab, "", "b")) {
		t.Error("ComplementAuto wrong on deterministic input")
	}
	nd := infManyA(ab)
	sa, _ := ab.Lookup("a")
	nd.AddTransition(0, sa, 0)
	cnd, err := nd.ComplementAuto()
	if err != nil {
		t.Fatal(err)
	}
	if cnd.AcceptsLasso(lasso(ab, "", "a")) || !cnd.AcceptsLasso(lasso(ab, "", "b")) {
		t.Error("ComplementAuto wrong on nondeterministic input")
	}
}

func TestComplementDeterministicEmpty(t *testing.T) {
	ab := alphabet.FromNames("a")
	empty := New(ab)
	c, err := empty.ComplementDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	if !c.AcceptsLasso(lasso(ab, "", "a")) {
		t.Error("complement of empty automaton rejects a^ω")
	}
}

func TestAccessorsAndString(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	b := detInfA(ab)
	if len(b.Initial()) != 1 || b.Initial()[0] != 0 {
		t.Errorf("Initial = %v", b.Initial())
	}
	b.SetAccepting(0, true)
	if !b.Accepting(0) {
		t.Error("SetAccepting did not stick")
	}
	s := b.String()
	for _, want := range []string{"Buchi(2 states", "*0:", "a->"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestLimitOfAllAcceptingRejectsPartial(t *testing.T) {
	ab := alphabet.FromNames("a")
	a := nfa.New(ab)
	q0 := a.AddState(true)
	q1 := a.AddState(false)
	sa, _ := ab.Lookup("a")
	a.AddTransition(q0, sa, q1)
	a.SetInitial(q0)
	if _, err := LimitOfAllAccepting(a); err == nil {
		t.Error("LimitOfAllAccepting accepted a non-all-accepting automaton")
	}
	a.SetAccepting(q1, true)
	if _, err := LimitOfAllAccepting(a); err != nil {
		t.Errorf("LimitOfAllAccepting rejected a valid automaton: %v", err)
	}
}

func TestGeneralizedAccessors(t *testing.T) {
	ab := alphabet.FromNames("a")
	g := NewGeneralized(ab, 2)
	if g.Alphabet() != ab {
		t.Error("Alphabet accessor wrong")
	}
	g.AddState()
	if g.NumStates() != 1 || g.NumSets() != 2 {
		t.Errorf("NumStates=%d NumSets=%d", g.NumStates(), g.NumSets())
	}
}
