package buchi

import (
	"math/rand"
	"sync"
	"testing"

	"relive/internal/genbase"
)

// TestCompiledSharedAcrossGoroutines shares a single automaton across
// many goroutines that all trigger the lazy CSR compilation and then
// run the compiled-form decision procedures. Before the cache became an
// atomic pointer this was a data race (caught by `go test -race`): one
// goroutine would publish the compiled form while others were reading
// the cache field.
func TestCompiledSharedAcrossGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ab := genbase.Letters(3)
	cfg := genbase.Config{States: 30, Symbols: 3, Density: 0.8, AcceptRatio: 0.3}
	b, err := FromNFA(genbase.NFA(rng, cfg, ab))
	if err != nil {
		t.Fatal(err)
	}
	cfg.States = 15
	other, err := FromNFA(genbase.NFA(rng, cfg, ab))
	if err != nil {
		t.Fatal(err)
	}
	// Inclusion complements its right operand (rank-based, exponential),
	// so it gets a small shared pair; the polynomial procedures share the
	// larger random automata.
	ab2 := genbase.Letters(2)
	inf, fin := infManyA(ab2), finManyA(ab2)

	const goroutines = 16
	empty := make([]bool, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each path below reaches compiled() on a shared automaton.
			empty[g] = b.IsEmpty()
			if l, ok := b.AcceptingLasso(); ok && !b.AcceptsLasso(l) {
				t.Error("witness lasso rejected by its own automaton")
			}
			_ = Intersect(b, other).IsEmpty()
			if ok, _, err := Included(inf, fin); err != nil {
				t.Error(err)
			} else if ok {
				t.Error("inf-many-a reported included in fin-many-a")
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if empty[g] != empty[0] {
			t.Fatalf("goroutine %d saw IsEmpty=%v, goroutine 0 saw %v", g, empty[g], empty[0])
		}
	}
}

// TestCompiledInvalidatedAfterMutation pins the staleness check: a
// mutation after a compile must not serve the stale CSR form.
func TestCompiledInvalidatedAfterMutation(t *testing.T) {
	ab := genbase.Letters(2)
	b := New(ab)
	q0 := b.AddState(false)
	b.SetInitial(q0)
	b.AddTransition(q0, ab.Symbol("a"), q0)
	if !b.IsEmpty() { // compiles: no accepting state yet
		t.Fatal("expected empty before adding an accepting state")
	}
	q1 := b.AddState(true)
	b.AddTransition(q0, ab.Symbol("b"), q1)
	b.AddTransition(q1, ab.Symbol("b"), q1)
	if b.IsEmpty() {
		t.Fatal("stale compiled form served after mutation")
	}
}
