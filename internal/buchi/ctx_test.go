package buchi

import (
	"context"
	"errors"
	"testing"

	"relive/internal/alphabet"
)

// ctxCycle builds a single-letter cycle automaton of the given length
// with only state 0 accepting (allAccepting=false forces the two-track
// product) or with every state accepting (forces the plain product).
// Coprime cycle lengths make the product explore length*length states —
// far past the 1<<10-iteration context poll interval.
func ctxCycle(ab *alphabet.Alphabet, length int, allAcc bool) *Buchi {
	b := New(ab)
	for i := 0; i < length; i++ {
		b.AddState(allAcc || i == 0)
	}
	a := ab.Symbol("a")
	for i := 0; i < length; i++ {
		b.AddTransition(State(i), a, State((i+1)%length))
	}
	b.SetInitial(0)
	return b
}

func cancelled(tb testing.TB) context.Context {
	tb.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestIntersectCtxCancelledTwoTrack(t *testing.T) {
	ab := alphabet.FromNames("a")
	a, c := ctxCycle(ab, 150, false), ctxCycle(ab, 149, false)
	if _, err := IntersectCtx(cancelled(t), a, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	want := Intersect(a, c)
	got, err := IntersectCtx(nil, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates() != want.NumStates() {
		t.Fatalf("nil-ctx product has %d states, want %d", got.NumStates(), want.NumStates())
	}
}

func TestIntersectCtxCancelledPlainProduct(t *testing.T) {
	ab := alphabet.FromNames("a")
	a, c := ctxCycle(ab, 150, true), ctxCycle(ab, 149, true)
	if _, err := IntersectCtx(cancelled(t), a, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := IntersectCtx(context.Background(), a, c); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
}

func TestIntersectLassoCtxCancelled(t *testing.T) {
	ab := alphabet.FromNames("a")
	a, c := ctxCycle(ab, 150, false), ctxCycle(ab, 149, false)
	if _, _, err := IntersectLassoCtx(cancelled(t), a, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	l, ok, err := IntersectLassoCtx(nil, a, c)
	if err != nil || !ok {
		t.Fatalf("nil-ctx lasso = (ok=%v, err=%v), want an accepting lasso", ok, err)
	}
	if !a.AcceptsLasso(l) || !c.AcceptsLasso(l) {
		t.Fatal("returned lasso rejected by an operand")
	}
}

func TestIntersectEmptyCtxCancelled(t *testing.T) {
	ab := alphabet.FromNames("a")
	a, c := ctxCycle(ab, 150, false), ctxCycle(ab, 149, false)
	if _, err := IntersectEmptyCtx(cancelled(t), a, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	empty, err := IntersectEmptyCtx(context.Background(), a, c)
	if err != nil {
		t.Fatal(err)
	}
	if empty != IntersectEmpty(a, c) {
		t.Fatal("ctx and plain emptiness verdicts disagree")
	}
}
