package buchi

import (
	"math/rand"
	"testing"

	"relive/internal/genbase"
	"relive/internal/kernel"
)

// Differential tests for the lazy rank-based inclusion kernel: on
// randomized Büchi pairs the lazy route must agree with the eager
// Complement-then-IntersectLasso reference on every verdict, and every
// counterexample lasso must be a genuine member of L_ω(a) \ L_ω(c).

func TestIncludedRankMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ab := genbase.Letters(2)
	for trial := 0; trial < 100; trial++ {
		a := randomBuchi(rng, ab, 1+rng.Intn(3))
		c := randomBuchi(rng, ab, 1+rng.Intn(3))
		okE, lE, errE := Included(a, c)
		okL, lL, errL := IncludedRankCtx(nil, a, c)
		if (errE == nil) != (errL == nil) {
			t.Fatalf("trial %d: error divergence: eager %v, lazy %v", trial, errE, errL)
		}
		if errE != nil {
			continue
		}
		if okE != okL {
			t.Fatalf("trial %d: verdict divergence: eager %v, lazy %v\na=%v\nc=%v", trial, okE, okL, a, c)
		}
		if okE {
			continue
		}
		if !a.AcceptsLasso(lL) || c.AcceptsLasso(lL) {
			t.Fatalf("trial %d: lazy witness %v not in L(a)\\L(c)\na=%v\nc=%v", trial, lL.String(ab), a, c)
		}
		if !a.AcceptsLasso(lE) || c.AcceptsLasso(lE) {
			t.Fatalf("trial %d: eager witness %v not in L(a)\\L(c)", trial, lE.String(ab))
		}
		// With an all-accepting left operand both routes run the plain
		// product over structurally identical complements, so not just
		// membership but the witness itself must match (the shape the
		// relative-liveness pipeline's IsLimitClosed check relies on).
		if a.allAccepting() && !lE.Equal(lL) {
			t.Fatalf("trial %d: plain-mode witness divergence: eager %v, lazy %v",
				trial, lE.String(ab), lL.String(ab))
		}
	}
}

func TestIncludedRankAllAcceptingLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ab := genbase.Letters(2)
	for trial := 0; trial < 60; trial++ {
		a := randomBuchi(rng, ab, 1+rng.Intn(3))
		for i := 0; i < a.NumStates(); i++ {
			a.SetAccepting(State(i), true)
		}
		c := randomBuchi(rng, ab, 1+rng.Intn(3))
		okE, lE, errE := Included(a, c)
		okL, lL, errL := IncludedRankCtx(nil, a, c)
		if (errE == nil) != (errL == nil) || errE != nil {
			continue
		}
		if okE != okL {
			t.Fatalf("trial %d: verdict divergence: eager %v, lazy %v", trial, okE, okL)
		}
		if !okE && !lE.Equal(lL) {
			t.Fatalf("trial %d: witness divergence: eager %v, lazy %v", trial, lE.String(ab), lL.String(ab))
		}
	}
}

func TestUniversalKernelAgainstComplementEmptiness(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ab := genbase.Letters(2)
	for trial := 0; trial < 100; trial++ {
		c := randomBuchi(rng, ab, 1+rng.Intn(3))
		comp, err := c.Complement()
		if err != nil {
			continue
		}
		_, nonEmpty := comp.AcceptingLasso()
		wantUniversal := !nonEmpty
		for _, k := range []kernel.Kind{kernel.Subset, kernel.Antichain} {
			got, l, err := UniversalKernelCtx(nil, k, c)
			if err != nil {
				t.Fatalf("trial %d: kernel %v: %v", trial, k, err)
			}
			if got != wantUniversal {
				t.Fatalf("trial %d: kernel %v: universal=%v, complement emptiness says %v\nc=%v",
					trial, k, got, wantUniversal, c)
			}
			if !got && c.AcceptsLasso(l) {
				t.Fatalf("trial %d: kernel %v: rejected-lasso witness %v is accepted", trial, k, l.String(ab))
			}
		}
	}
}

func TestBuchiResolveKernelThreshold(t *testing.T) {
	ab := genbase.Letters(2)
	small := New(ab)
	small.AddState(true)
	big := New(ab)
	for i := 0; i < 32; i++ {
		big.AddState(i%3 == 0)
	}
	if got := ResolveKernel(kernel.Auto, small); got != kernel.Subset {
		t.Fatalf("Auto on small rhs = %v, want Subset", got)
	}
	if got := ResolveKernel(kernel.Auto, big); got != kernel.Antichain {
		t.Fatalf("Auto on big rhs = %v, want Antichain", got)
	}
	if got := ResolveKernel(kernel.Subset, big); got != kernel.Subset {
		t.Fatalf("explicit Subset did not pass through: %v", got)
	}
}
