package buchi

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/genbase"
)

// TestGeneralizedInfAInfB builds a one-state GBA for "infinitely many a
// and infinitely many b" and checks the degeneralization.
func TestGeneralizedInfAInfB(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	sa, _ := ab.Lookup("a")
	sb, _ := ab.Lookup("b")
	g := NewGeneralized(ab, 2)
	// States track the last letter so sets can be state-based.
	q0 := g.AddState() // start
	qa := g.AddState() // just read a
	qb := g.AddState() // just read b
	for _, q := range []State{q0, qa, qb} {
		g.AddTransition(q, sa, qa)
		g.AddTransition(q, sb, qb)
	}
	if err := g.AddToSet(0, qa); err != nil {
		t.Fatal(err)
	}
	if err := g.AddToSet(1, qb); err != nil {
		t.Fatal(err)
	}
	g.SetInitial(q0)
	b := g.Degeneralize()

	for _, tc := range []struct {
		prefix, loop string
		want         bool
	}{
		{"", "ab", true},
		{"", "a", false},
		{"", "b", false},
		{"aab", "ba", true},
		{"ab", "bb", false},
	} {
		l := lasso(ab, tc.prefix, tc.loop)
		if got := b.AcceptsLasso(l); got != tc.want {
			t.Errorf("degeneralized accepts %s = %v, want %v", l.String(ab), got, tc.want)
		}
	}
}

func TestGeneralizedZeroSets(t *testing.T) {
	ab := alphabet.FromNames("a")
	g := NewGeneralized(ab, 0)
	q := g.AddState()
	g.AddTransition(q, ab.Symbols()[0], q)
	g.SetInitial(q)
	b := g.Degeneralize()
	if !b.AcceptsLasso(lasso(ab, "", "a")) {
		t.Error("zero-set GBA should accept every infinite run")
	}
}

func TestGeneralizedSetOutOfRange(t *testing.T) {
	g := NewGeneralized(alphabet.FromNames("a"), 1)
	s := g.AddState()
	if err := g.AddToSet(1, s); err == nil {
		t.Error("out-of-range acceptance set accepted")
	}
	if err := g.AddToSet(-1, s); err == nil {
		t.Error("negative acceptance set accepted")
	}
}

// TestQuickIntersectAllAgreesWithBinary: the generalized product of k
// automata accepts exactly the intersection, cross-checked against
// iterated binary intersection on sampled lassos.
func TestQuickIntersectAllAgreesWithBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	ab := genbase.Letters(2)
	for trial := 0; trial < 25; trial++ {
		k := 2 + rng.Intn(2)
		autos := make([]*Buchi, k)
		for i := range autos {
			autos[i] = randomBuchi(rng, ab, 1+rng.Intn(3))
		}
		all, err := IntersectAll(autos...)
		if err != nil {
			t.Fatal(err)
		}
		binary := autos[0]
		for _, a := range autos[1:] {
			binary = Intersect(binary, a)
		}
		for i := 0; i < 25; i++ {
			l := genbase.Lasso(rng, ab, 3, 3)
			if all.AcceptsLasso(l) != binary.AcceptsLasso(l) {
				t.Fatalf("trial %d: IntersectAll disagrees with binary intersection on %s",
					trial, l.String(ab))
			}
		}
	}
}

func TestIntersectAllDegenerate(t *testing.T) {
	if _, err := IntersectAll(); err == nil {
		t.Error("empty IntersectAll accepted")
	}
	ab := alphabet.FromNames("a", "b")
	one := infManyA(ab)
	got, err := IntersectAll(one)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AcceptsLasso(lasso(ab, "", "a")) || got.AcceptsLasso(lasso(ab, "", "b")) {
		t.Error("single-operand IntersectAll changed the language")
	}
}
