package buchi

import (
	"fmt"
	"sort"

	"relive/internal/alphabet"
)

// maxComplementStates bounds the state space of the rank-based
// complementation before it is abandoned. The construction is
// 2^O(n log n); this guard turns a runaway construction into an error
// instead of an out-of-memory condition.
const maxComplementStates = 2_000_000

// Complement returns a Büchi automaton for Σ^ω \ L_ω(b), using the
// Kupferman–Vardi rank-based construction with the Friedgut–Kupferman–
// Vardi rank bound 2(n−|F|):
//
// A level ranking assigns to each automaton state reached so far a rank
// ≤ 2(n−|F|) such that accepting states have even ranks and ranks never
// increase along transitions. The word is rejected by b iff the run DAG
// admits a ranking in which every path eventually gets stuck at an odd
// rank; the O-set (breakpoint construction) checks this by tracking the
// even-ranked states until the set empties, which must happen infinitely
// often.
func (b *Buchi) Complement() (*Buchi, error) {
	n := b.NumStates()
	numAcc := 0
	for _, acc := range b.accepting {
		if acc {
			numAcc++
		}
	}
	maxRank := 2 * (n - numAcc)

	out := New(b.ab)
	type cfg struct {
		ranks string // byte-per-state: 0xFF for ⊥, otherwise rank
		oset  string // byte-per-state: 1 when in O
	}
	index := map[cfg]State{}
	var queue []cfg
	var queueRanks [][]int // decoded ranks, parallel to queue order

	intern := func(ranks []int, oset []bool) State {
		rb := make([]byte, n)
		ob := make([]byte, n)
		empty := true
		for i := 0; i < n; i++ {
			if ranks[i] < 0 {
				rb[i] = 0xFF
			} else {
				rb[i] = byte(ranks[i])
			}
			if oset[i] {
				ob[i] = 1
				empty = false
			}
		}
		k := cfg{ranks: string(rb), oset: string(ob)}
		if s, ok := index[k]; ok {
			return s
		}
		s := out.AddState(empty)
		index[k] = s
		queue = append(queue, k)
		queueRanks = append(queueRanks, append([]int(nil), ranks...))
		return s
	}

	// Initial configuration: initial states at the (even) maximal rank.
	initRanks := make([]int, n)
	for i := range initRanks {
		initRanks[i] = -1
	}
	for _, s := range b.initial {
		initRanks[s] = maxRank
	}
	out.SetInitial(intern(initRanks, make([]bool, n)))

	syms := b.ab.Symbols()
	for qi := 0; qi < len(queue); qi++ {
		if out.NumStates() > maxComplementStates {
			return nil, fmt.Errorf("buchi: complementation exceeded %d states (source has %d states)",
				maxComplementStates, n)
		}
		k := queue[qi]
		ranks := queueRanks[qi]
		from := index[k]
		oset := make([]bool, n)
		for i := 0; i < n; i++ {
			if k.oset[i] == 1 {
				oset[i] = true
			}
		}
		for _, sym := range syms {
			b.rankSuccessors(ranks, oset, sym, func(full []int, nextO []bool) {
				out.AddTransition(from, sym, intern(full, nextO))
			})
		}
	}
	return out, nil
}

// rankSuccessors enumerates the legal successor configurations of the
// level ranking `ranks` (-1 for ⊥) with breakpoint set `oset` on sym,
// calling visit once per successor in a canonical order (sorted domain,
// rankings in enumerateRankings order). The slices handed to visit are
// reused between calls; visit must copy what it retains. Both the eager
// Complement construction above and the lazy inclusion kernel
// (rankinclusion.go) enumerate through this helper, so the transition
// structure they see — and therefore the verdicts and witnesses
// downstream — is identical.
func (b *Buchi) rankSuccessors(ranks []int, oset []bool, sym alphabet.Symbol, visit func(full []int, nextO []bool)) {
	n := b.NumStates()
	oEmpty := true
	for _, in := range oset {
		if in {
			oEmpty = false
			break
		}
	}
	// Successor domain and per-state rank caps (ranks never increase
	// along transitions).
	caps := make([]int, n)
	for i := range caps {
		caps[i] = -1
	}
	domain := []int{}
	for q := 0; q < n; q++ {
		if ranks[q] < 0 {
			continue
		}
		for _, t := range b.trans[q][sym] {
			if caps[t] < 0 {
				caps[t] = ranks[q]
				domain = append(domain, int(t))
			} else if ranks[q] < caps[t] {
				caps[t] = ranks[q]
			}
		}
	}
	sort.Ints(domain)
	// Successors of the O-set (before rank filtering).
	oSucc := make([]bool, n)
	if !oEmpty {
		for q := 0; q < n; q++ {
			if !oset[q] {
				continue
			}
			for _, t := range b.trans[q][sym] {
				oSucc[t] = true
			}
		}
	}
	full := make([]int, n)
	nextO := make([]bool, n)
	b.enumerateRankings(domain, caps, func(g []int) {
		for i := 0; i < n; i++ {
			full[i] = -1
			nextO[i] = false
		}
		for _, t := range domain {
			full[t] = g[t]
			if g[t]%2 == 0 && (oEmpty || oSucc[t]) {
				nextO[t] = true
			}
		}
		visit(full, nextO)
	})
}

// enumerateRankings calls visit for every assignment g of ranks to the
// domain states with 0 ≤ g[t] ≤ caps[t] and g[t] even for accepting
// states. g is reused between calls; visit must not retain it.
func (b *Buchi) enumerateRankings(domain []int, caps []int, visit func(g []int)) {
	g := make([]int, b.NumStates())
	var rec func(i int)
	rec = func(i int) {
		if i == len(domain) {
			visit(g)
			return
		}
		t := domain[i]
		step := 1
		if b.accepting[t] {
			step = 2 // even ranks only
		}
		for r := 0; r <= caps[t]; r += step {
			g[t] = r
			rec(i + 1)
		}
	}
	rec(0)
}

// UniversalAutomaton returns a Büchi automaton accepting Σ^ω.
func UniversalAutomaton(ab *alphabet.Alphabet) *Buchi {
	b := New(ab)
	s := b.AddState(true)
	for _, sym := range ab.Symbols() {
		b.AddTransition(s, sym, s)
	}
	b.SetInitial(s)
	return b
}
