package buchi

import (
	"context"

	"relive/internal/alphabet"
	"relive/internal/graph"
	"relive/internal/interrupt"
	"relive/internal/nfa"
)

// PreProductNFACtx computes pre(L_ω(a) ∩ L_ω(c)) as an NFA in one fused
// pass, replacing the materialized chain
//
//	IntersectCtx(a, c) → PrefixNFA (= Reduce → ToNFA → MarkAllAccepting) → Trim
//
// that built and discarded four intermediate automata. The product is
// explored once into flat edge lists, the reduction (accepting-cycle
// SCCs + co-reachability) runs on that graph directly, and the
// surviving states are emitted straight into the output NFA.
//
// The output is bit-identical to the chain above — same state
// numbering, same per-(state, symbol) transition rows, same initial
// order — because the product interning replicates IntersectCtx's BFS
// discovery order, the reduction keeps survivors in ascending product
// order exactly as Reduce does, and the chain's trailing Trim is an
// identity renumbering on this shape (every PrefixNFA state is
// reachable and accepting, hence trivially co-reachable). Downstream
// inclusion checks therefore see the same automaton either way; the
// equivalence tests in preproduct_test.go pin the construction, not
// just the language. It returns the number of product states explored,
// for instrumentation.
func PreProductNFACtx(ctx context.Context, a, c *Buchi) (*nfa.NFA, int, error) {
	// Mirror IntersectCtx: plain product when either operand accepts
	// with every state (the pipeline's left operand, a lim(L) automaton,
	// always does), the two-track product otherwise.
	plain := a.allAccepting() || c.allAccepting()
	ca, cc := a.compiled(), c.compiled()

	index := map[pkey]int32{}
	var states []pkey
	var acc []bool
	intern := func(k pkey) int32 {
		if id, ok := index[k]; ok {
			return id
		}
		id := int32(len(states))
		index[k] = id
		states = append(states, k)
		if plain {
			acc = append(acc, a.accepting[k.x] && c.accepting[k.y])
		} else {
			acc = append(acc, k.track == 1 && c.accepting[k.y])
		}
		return id
	}

	var inits []int32
	for _, x := range a.initial {
		for _, y := range c.initial {
			inits = append(inits, intern(pkey{int32(x), int32(y), 0}))
		}
	}

	syms := a.ab.Size()
	edges := [][]pedge{}
	var tick interrupt.Tick
	for qi := 0; qi < len(states); qi++ {
		if err := tick.Poll(ctx); err != nil {
			return nil, len(states), err
		}
		k := states[qi]
		track := k.track
		if !plain {
			if track == 0 && a.accepting[k.x] {
				track = 1
			} else if track == 1 && c.accepting[k.y] {
				track = 0
			}
		}
		var row []pedge
		for sym := 1; sym <= syms; sym++ {
			xs := ca.row(State(k.x), alphabet.Symbol(sym))
			if len(xs) == 0 {
				continue
			}
			ys := cc.row(State(k.y), alphabet.Symbol(sym))
			for _, x := range xs {
				for _, y := range ys {
					row = append(row, pedge{to: intern(pkey{x, y, track}), sym: alphabet.Symbol(sym)})
				}
			}
		}
		edges = append(edges, row)
	}

	n := len(states)
	explored := n
	out := nfa.New(a.ab)
	if n == 0 {
		return out, explored, nil
	}

	// The reduction of Reduce, on the flat edges: keep states that can
	// reach an accepting cycle. (Reachability from the initial states
	// holds for every product state by construction.)
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(len(edges[v]))
	}
	dst := make([]int32, off[n])
	for v := 0; v < n; v++ {
		at := off[v]
		for i, e := range edges[v] {
			dst[at+int32(i)] = e.to
		}
	}
	g := graph.CSR{Off: off, Dst: dst}
	onAcceptingCycle := make([]bool, n)
	for _, comp := range graph.SCCsCSR(g) {
		if graph.IsTrivialSCCCSR(comp, g) {
			continue
		}
		hasAcc := false
		for _, v := range comp {
			if acc[v] {
				hasAcc = true
				break
			}
		}
		if hasAcc {
			for _, v := range comp {
				onAcceptingCycle[v] = true
			}
		}
	}
	live := graph.CoReachableCSR(g, onAcceptingCycle)

	// Emit survivors in ascending product order (Reduce's numbering),
	// every state accepting (MarkAllAccepting): the finite-path language
	// from the initial states is exactly pre(L_ω(a) ∩ L_ω(c)).
	keep := make([]nfa.State, n)
	for i := range keep {
		keep[i] = -1
	}
	for i := 0; i < n; i++ {
		if live[i] {
			keep[i] = out.AddState(true)
		}
	}
	for i := 0; i < n; i++ {
		if keep[i] < 0 {
			continue
		}
		for _, e := range edges[i] {
			if keep[e.to] >= 0 {
				out.AddTransition(keep[i], e.sym, keep[e.to])
			}
		}
	}
	for _, id := range inits {
		if keep[id] >= 0 {
			out.SetInitial(keep[id])
		}
	}
	return out, explored, nil
}
