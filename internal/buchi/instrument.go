package buchi

import (
	"context"

	"relive/internal/nfa"
	"relive/internal/obs"
	"relive/internal/word"
)

// Ops bundles the package's automaton operations with an observability
// recorder. Every method with a nil Rec is exactly the plain function —
// one nil check, no allocation, no size walks — so callers thread an
// Ops value unconditionally and pay only when a recorder is attached.
//
// Each instrumented operation records one span named
// "buchi.<Operation>" carrying input/output state and transition counts
// plus its duration, and bumps the counters
// "buchi.<operation>.calls" and "buchi.states_built" (cumulative output
// states — the blowup measure for the PSPACE-dominated pipeline).
//
// A non-nil Ctx makes the construction and emptiness loops of the
// ...Ctx methods cooperatively cancellable: they poll the context and
// return its error, so per-request deadlines and client disconnects
// actually stop the PSPACE work. A nil Ctx never cancels; the methods
// without a Ctx suffix ignore the field entirely.
type Ops struct {
	Rec obs.Recorder
	Ctx context.Context
}

// finish attaches output sizes, accumulates blowup counters, and ends
// the span.
func (o Ops) finish(sp obs.Span, counter string, out *Buchi) {
	sp.Int("out_states", int64(out.NumStates()))
	sp.Int("out_transitions", int64(out.NumTransitions()))
	obs.Count(o.Rec, counter+".calls", 1)
	obs.Count(o.Rec, "buchi.states_built", int64(out.NumStates()))
	sp.End()
}

// Intersect is Intersect with instrumentation.
func (o Ops) Intersect(a, c *Buchi) *Buchi {
	if o.Rec == nil {
		return Intersect(a, c)
	}
	sp := obs.StartSpan(o.Rec, "buchi.Intersect").
		Int("left_states", int64(a.NumStates())).
		Int("right_states", int64(c.NumStates()))
	out := Intersect(a, c)
	o.finish(sp, "buchi.intersect", out)
	return out
}

// IntersectCtx is Intersect with instrumentation and cooperative
// cancellation from o.Ctx inside the product-construction loop.
func (o Ops) IntersectCtx(a, c *Buchi) (*Buchi, error) {
	if o.Rec == nil {
		return IntersectCtx(o.Ctx, a, c)
	}
	sp := obs.StartSpan(o.Rec, "buchi.Intersect").
		Int("left_states", int64(a.NumStates())).
		Int("right_states", int64(c.NumStates()))
	out, err := IntersectCtx(o.Ctx, a, c)
	if err != nil {
		sp.Tag("aborted", "context")
		sp.End()
		return nil, err
	}
	o.finish(sp, "buchi.intersect", out)
	return out, nil
}

// Union is Union with instrumentation.
func (o Ops) Union(a, c *Buchi) *Buchi {
	if o.Rec == nil {
		return Union(a, c)
	}
	sp := obs.StartSpan(o.Rec, "buchi.Union").
		Int("left_states", int64(a.NumStates())).
		Int("right_states", int64(c.NumStates()))
	out := Union(a, c)
	o.finish(sp, "buchi.union", out)
	return out
}

// Reduce is (*Buchi).Reduce with instrumentation.
func (o Ops) Reduce(b *Buchi) *Buchi {
	if o.Rec == nil {
		return b.Reduce()
	}
	sp := obs.StartSpan(o.Rec, "buchi.Reduce").
		Int("in_states", int64(b.NumStates())).
		Int("in_transitions", int64(b.NumTransitions()))
	out := b.Reduce()
	o.finish(sp, "buchi.reduce", out)
	return out
}

// Complement is (*Buchi).Complement (rank-based) with instrumentation.
func (o Ops) Complement(b *Buchi) (*Buchi, error) {
	if o.Rec == nil {
		return b.Complement()
	}
	sp := obs.StartSpan(o.Rec, "buchi.Complement").
		Tag("algorithm", "rank-based").
		Int("in_states", int64(b.NumStates()))
	out, err := b.Complement()
	if err != nil {
		sp.End()
		return nil, err
	}
	o.finish(sp, "buchi.complement", out)
	return out, nil
}

// ComplementAuto is (*Buchi).ComplementAuto with instrumentation: the
// deterministic construction when it applies, rank-based otherwise.
func (o Ops) ComplementAuto(b *Buchi) (*Buchi, error) {
	if o.Rec == nil {
		return b.ComplementAuto()
	}
	algorithm := "rank-based"
	if b.IsDeterministic() {
		algorithm = "deterministic"
	}
	sp := obs.StartSpan(o.Rec, "buchi.ComplementAuto").
		Tag("algorithm", algorithm).
		Int("in_states", int64(b.NumStates()))
	out, err := b.ComplementAuto()
	if err != nil {
		sp.End()
		return nil, err
	}
	o.finish(sp, "buchi.complement", out)
	return out, nil
}

// PrefixNFA is (*Buchi).PrefixNFA with instrumentation: the pre(L_ω)
// construction (reduce, then accept every finite path).
func (o Ops) PrefixNFA(b *Buchi) *nfa.NFA {
	if o.Rec == nil {
		return b.PrefixNFA()
	}
	sp := obs.StartSpan(o.Rec, "buchi.PrefixNFA").
		Int("in_states", int64(b.NumStates()))
	out := o.Reduce(b).ToNFA().MarkAllAccepting()
	sp.Int("out_states", int64(out.NumStates()))
	sp.Int("out_transitions", int64(out.NumTransitions()))
	obs.Count(o.Rec, "buchi.prefixnfa.calls", 1)
	sp.End()
	return out
}

// LimitOfPrefixClosed is LimitOfPrefixClosed with instrumentation,
// including the prefix-closure validation cost.
func (o Ops) LimitOfPrefixClosed(a *nfa.NFA) (*Buchi, error) {
	if o.Rec == nil {
		return LimitOfPrefixClosed(a)
	}
	sp := obs.StartSpan(o.Rec, "buchi.LimitOfPrefixClosed").
		Int("in_states", int64(a.NumStates())).
		Int("in_transitions", int64(a.NumTransitions()))
	out, err := LimitOfPrefixClosed(a)
	if err != nil {
		sp.End()
		return nil, err
	}
	o.finish(sp, "buchi.limit", out)
	return out, nil
}

// LimitOfAllAccepting is LimitOfAllAccepting with instrumentation.
func (o Ops) LimitOfAllAccepting(a *nfa.NFA) (*Buchi, error) {
	if o.Rec == nil {
		return LimitOfAllAccepting(a)
	}
	sp := obs.StartSpan(o.Rec, "buchi.LimitOfAllAccepting").
		Int("in_states", int64(a.NumStates())).
		Int("in_transitions", int64(a.NumTransitions()))
	out, err := LimitOfAllAccepting(a)
	if err != nil {
		sp.End()
		return nil, err
	}
	o.finish(sp, "buchi.limit", out)
	return out, nil
}

// AcceptingLasso is (*Buchi).AcceptingLasso with instrumentation: the
// emptiness check with witness extraction.
func (o Ops) AcceptingLasso(b *Buchi) (word.Lasso, bool) {
	if o.Rec == nil {
		return b.AcceptingLasso()
	}
	sp := obs.StartSpan(o.Rec, "buchi.AcceptingLasso").
		Int("in_states", int64(b.NumStates())).
		Int("in_transitions", int64(b.NumTransitions()))
	l, ok := b.AcceptingLasso()
	empty := int64(1)
	if ok {
		empty = 0
	}
	sp.Int("empty", empty)
	obs.Count(o.Rec, "buchi.emptiness.calls", 1)
	sp.End()
	return l, ok
}

// IsEmpty is (*Buchi).IsEmpty with instrumentation.
func (o Ops) IsEmpty(b *Buchi) bool {
	_, ok := o.AcceptingLasso(b)
	return !ok
}

// IntersectLasso is IntersectLasso — on-the-fly emptiness of the
// product with witness extraction — with instrumentation. The span
// records how many product states the search explored before deciding,
// the measure the laziness is meant to shrink.
func (o Ops) IntersectLasso(a, c *Buchi) (word.Lasso, bool) {
	if o.Rec == nil {
		return IntersectLasso(a, c)
	}
	sp := obs.StartSpan(o.Rec, "buchi.IntersectEmpty").
		Int("left_states", int64(a.NumStates())).
		Int("right_states", int64(c.NumStates()))
	l, explored, ok, _ := intersectLasso(nil, a, c, nil, nil)
	empty := int64(1)
	if ok {
		empty = 0
	}
	sp.Int("explored_states", int64(explored))
	sp.Int("empty", empty)
	obs.Count(o.Rec, "buchi.emptiness.calls", 1)
	sp.End()
	return l, ok
}

// IntersectLassoCtx is IntersectLasso with instrumentation and
// cooperative cancellation from o.Ctx inside the emptiness search.
func (o Ops) IntersectLassoCtx(a, c *Buchi) (word.Lasso, bool, error) {
	if o.Rec == nil {
		return IntersectLassoCtx(o.Ctx, a, c)
	}
	sp := obs.StartSpan(o.Rec, "buchi.IntersectEmpty").
		Int("left_states", int64(a.NumStates())).
		Int("right_states", int64(c.NumStates()))
	l, explored, ok, err := intersectLasso(o.Ctx, a, c, nil, nil)
	sp.Int("explored_states", int64(explored))
	if err != nil {
		sp.Tag("aborted", "context")
		sp.End()
		return word.Lasso{}, false, err
	}
	empty := int64(1)
	if ok {
		empty = 0
	}
	sp.Int("empty", empty)
	obs.Count(o.Rec, "buchi.emptiness.calls", 1)
	sp.End()
	return l, ok, nil
}

// IntersectEmpty is IntersectEmpty with instrumentation.
func (o Ops) IntersectEmpty(a, c *Buchi) bool {
	_, ok := o.IntersectLasso(a, c)
	return !ok
}

// Included is Included with instrumentation; the dominant cost is the
// complementation of c, which appears as a child span.
func (o Ops) Included(a, c *Buchi) (bool, word.Lasso, error) {
	if o.Rec == nil {
		return Included(a, c)
	}
	sp := obs.StartSpan(o.Rec, "buchi.Included").
		Int("left_states", int64(a.NumStates())).
		Int("right_states", int64(c.NumStates()))
	defer sp.End()
	comp, err := o.Complement(c)
	if err != nil {
		return false, word.Lasso{}, err
	}
	l, ok := o.IntersectLasso(a, comp)
	if ok {
		return false, l, nil
	}
	return true, word.Lasso{}, nil
}
