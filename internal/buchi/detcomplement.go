package buchi

import (
	"fmt"
)

// IsDeterministic reports whether the automaton has at most one initial
// state and at most one successor per (state, letter).
func (b *Buchi) IsDeterministic() bool {
	if len(b.initial) > 1 {
		return false
	}
	for _, m := range b.trans {
		for _, ts := range m {
			if len(ts) > 1 {
				return false
			}
		}
	}
	return true
}

// ComplementDeterministic complements a deterministic Büchi automaton
// with the classic two-copy construction, avoiding the 2^O(n log n)
// rank-based blow-up: the complement accepts a word iff the unique run
// either leaves the automaton or visits accepting states only finitely
// often. The result guesses the point after which no accepting state
// occurs and verifies it in a second, acceptance-free copy restricted
// to non-accepting states.
func (b *Buchi) ComplementDeterministic() (*Buchi, error) {
	if !b.IsDeterministic() {
		return nil, fmt.Errorf("buchi: automaton is not deterministic")
	}
	n := b.NumStates()
	out := New(b.ab)
	// Copy 1: tracks the run, never accepting. State i ↦ i.
	for i := 0; i < n; i++ {
		out.AddState(false)
	}
	// Copy 2: the tail without accepting states. State i ↦ n + i, only
	// built for non-accepting i.
	for i := 0; i < n; i++ {
		out.AddState(!b.accepting[i]) // accepting-copy states are unreachable junk otherwise
	}
	// Sink for words whose run leaves b: accepting (word rejected by b).
	sink := out.AddState(true)
	for _, sym := range b.ab.Symbols() {
		out.AddTransition(sink, sym, sink)
	}

	syms := b.ab.Symbols()
	for i := 0; i < n; i++ {
		for _, sym := range syms {
			ts := b.trans[i][sym]
			if len(ts) == 0 {
				// Run dies: the word is rejected by b, accepted here.
				out.AddTransition(State(i), sym, sink)
				if !b.accepting[i] {
					out.AddTransition(State(n+i), sym, sink)
				}
				continue
			}
			t := ts[0]
			out.AddTransition(State(i), sym, t)
			// Nondeterministic jump into the tail copy: guess that from
			// the next position no accepting state occurs.
			if !b.accepting[t] {
				out.AddTransition(State(i), sym, State(n+int(t)))
				if !b.accepting[i] {
					out.AddTransition(State(n+i), sym, State(n+int(t)))
				}
			}
		}
	}
	if len(b.initial) == 0 {
		// Empty automaton: complement is Σ^ω.
		u := UniversalAutomaton(b.ab)
		return u, nil
	}
	init := b.initial[0]
	out.SetInitial(init)
	if !b.accepting[init] {
		out.SetInitial(State(n + int(init)))
	}
	return out, nil
}

// ComplementAuto complements with the cheapest sound construction:
// two-copy for deterministic automata, rank-based otherwise.
func (b *Buchi) ComplementAuto() (*Buchi, error) {
	if b.IsDeterministic() {
		return b.ComplementDeterministic()
	}
	return b.Complement()
}
