// Package buchi implements nondeterministic Büchi automata over interned
// alphabets: products, union, emptiness with ultimately periodic witness
// extraction, reduction (trimming states that cannot contribute to an
// accepted ω-word), limits of prefix-closed regular languages
// (lim(L), Section 3 of Nitsche & Wolper, PODC'97), prefix languages
// pre(L_ω), lasso membership, and rank-based complementation.
package buchi

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"relive/internal/alphabet"
	"relive/internal/graph"
	"relive/internal/interrupt"
	"relive/internal/nfa"
	"relive/internal/word"
)

// State identifies a Büchi automaton state.
type State int

// Buchi is a nondeterministic Büchi automaton. There are no
// ε-transitions; acceptance is "visits an accepting state infinitely
// often".
type Buchi struct {
	ab        *alphabet.Alphabet
	initial   []State
	accepting []bool
	trans     []map[alphabet.Symbol][]State
	// csr is the lazily built compiled form (see compiled.go); it is
	// invalidated whenever a state or transition is added. The atomic
	// pointer makes the lazy build safe under concurrent readers (the
	// parallel decision procedures share automata across goroutines);
	// mutating an automaton concurrently with reads remains unsupported.
	csr atomic.Pointer[compiled]
}

// New returns an empty Büchi automaton over ab.
func New(ab *alphabet.Alphabet) *Buchi {
	return &Buchi{ab: ab}
}

// Alphabet returns the automaton's alphabet.
func (b *Buchi) Alphabet() *alphabet.Alphabet { return b.ab }

// NumStates returns the number of states.
func (b *Buchi) NumStates() int { return len(b.accepting) }

// NumTransitions returns the total number of transitions, so gauges and
// users need not walk the transition maps by hand.
func (b *Buchi) NumTransitions() int {
	n := 0
	for _, m := range b.trans {
		for _, ts := range m {
			n += len(ts)
		}
	}
	return n
}

// NumAccepting returns the number of accepting states.
func (b *Buchi) NumAccepting() int {
	n := 0
	for _, acc := range b.accepting {
		if acc {
			n++
		}
	}
	return n
}

// AddState adds a fresh state.
func (b *Buchi) AddState(accepting bool) State {
	s := State(len(b.accepting))
	b.accepting = append(b.accepting, accepting)
	b.trans = append(b.trans, nil)
	b.csr.Store(nil)
	return s
}

// SetInitial marks s initial.
func (b *Buchi) SetInitial(s State) { b.initial = append(b.initial, s) }

// Initial returns the initial states.
func (b *Buchi) Initial() []State { return b.initial }

// Accepting reports whether s is accepting.
func (b *Buchi) Accepting(s State) bool { return b.accepting[s] }

// SetAccepting sets the acceptance status of s.
func (b *Buchi) SetAccepting(s State, accepting bool) { b.accepting[s] = accepting }

// AddTransition adds from --sym--> to. ε is not a legal Büchi label.
func (b *Buchi) AddTransition(from State, sym alphabet.Symbol, to State) {
	if sym == alphabet.Epsilon {
		panic("buchi: ε-transition added to Büchi automaton")
	}
	m := b.trans[from]
	if m == nil {
		m = make(map[alphabet.Symbol][]State)
		b.trans[from] = m
	}
	for _, t := range m[sym] {
		if t == to {
			return
		}
	}
	m[sym] = append(m[sym], to)
	b.csr.Store(nil)
}

// addEdge appends from --sym--> to without the duplicate scan. It is
// the fast path of the product constructions, whose interning already
// guarantees distinct targets per (state, symbol) row.
func (b *Buchi) addEdge(from State, sym alphabet.Symbol, to State) {
	m := b.trans[from]
	if m == nil {
		m = make(map[alphabet.Symbol][]State, 4)
		b.trans[from] = m
	}
	m[sym] = append(m[sym], to)
	b.csr.Store(nil)
}

// Succ returns the successors of s under sym.
func (b *Buchi) Succ(s State, sym alphabet.Symbol) []State { return b.trans[s][sym] }

// Clone returns a deep copy sharing the alphabet (and the immutable
// compiled form, when one has been built).
func (b *Buchi) Clone() *Buchi {
	c := &Buchi{
		ab:        b.ab,
		initial:   append([]State(nil), b.initial...),
		accepting: append([]bool(nil), b.accepting...),
		trans:     make([]map[alphabet.Symbol][]State, len(b.trans)),
	}
	c.csr.Store(b.csr.Load())
	for i, m := range b.trans {
		if m == nil {
			continue
		}
		cm := make(map[alphabet.Symbol][]State, len(m))
		for sym, ts := range m {
			cm[sym] = append([]State(nil), ts...)
		}
		c.trans[i] = cm
	}
	return c
}

func (b *Buchi) initialInts() []int {
	out := make([]int, len(b.initial))
	for i, s := range b.initial {
		out[i] = int(s)
	}
	return out
}

// DropAcceptance returns the automaton with every state accepting. This
// is the operation of Theorem 5.1: "A with its acceptance condition
// removed" turns a reduced Büchi automaton for L_ω ∩ P into a
// finite-state system accepting L_ω.
func (b *Buchi) DropAcceptance() *Buchi {
	c := b.Clone()
	for i := range c.accepting {
		c.accepting[i] = true
	}
	return c
}

// ToNFA reinterprets the Büchi automaton as an NFA on finite words with
// the same states and acceptance.
func (b *Buchi) ToNFA() *nfa.NFA {
	a := nfa.New(b.ab)
	for i := 0; i < b.NumStates(); i++ {
		a.AddState(b.accepting[i])
	}
	for i, m := range b.trans {
		for sym, ts := range m {
			for _, t := range ts {
				a.AddTransition(nfa.State(i), sym, nfa.State(t))
			}
		}
	}
	for _, s := range b.initial {
		a.SetInitial(nfa.State(s))
	}
	return a
}

// FromNFA reinterprets an ε-free NFA as a Büchi automaton with the same
// states and acceptance.
func FromNFA(a *nfa.NFA) (*Buchi, error) {
	if a.HasEpsilon() {
		return nil, fmt.Errorf("buchi: NFA has ε-transitions")
	}
	b := New(a.Alphabet())
	for i := 0; i < a.NumStates(); i++ {
		b.AddState(a.Accepting(nfa.State(i)))
	}
	for i := 0; i < a.NumStates(); i++ {
		for _, sym := range a.Alphabet().Symbols() {
			for _, t := range a.Succ(nfa.State(i), sym) {
				b.AddTransition(State(i), sym, State(t))
			}
		}
	}
	for _, s := range a.Initial() {
		b.SetInitial(State(s))
	}
	return b, nil
}

// Reduce removes states that are unreachable or from which no ω-word can
// be accepted ("reduced" in the sense of Theorem 5.1). The accepted
// ω-language is unchanged, and afterwards the finite-path language from
// the initial states equals pre(L_ω(b)).
func (b *Buchi) Reduce() *Buchi {
	n := b.NumStates()
	g := b.compiled().graph()
	// States on an accepting cycle: in a nontrivial SCC containing an
	// accepting state.
	comps := graph.SCCsCSR(g)
	onAcceptingCycle := make([]bool, n)
	for _, c := range comps {
		if graph.IsTrivialSCCCSR(c, g) {
			continue
		}
		hasAcc := false
		for _, v := range c {
			if b.accepting[v] {
				hasAcc = true
				break
			}
		}
		if hasAcc {
			for _, v := range c {
				onAcceptingCycle[v] = true
			}
		}
	}
	live := graph.CoReachableCSR(g, onAcceptingCycle)
	reach := graph.ReachableCSR(g, b.initialInts())

	keep := make([]State, n)
	for i := range keep {
		keep[i] = -1
	}
	out := New(b.ab)
	for i := 0; i < n; i++ {
		if reach[i] && live[i] {
			keep[i] = out.AddState(b.accepting[i])
		}
	}
	for i := 0; i < n; i++ {
		if keep[i] < 0 {
			continue
		}
		for sym, ts := range b.trans[i] {
			for _, t := range ts {
				if keep[t] >= 0 {
					out.AddTransition(keep[i], sym, keep[t])
				}
			}
		}
	}
	for _, s := range b.initial {
		if keep[s] >= 0 {
			out.SetInitial(keep[s])
		}
	}
	return out
}

// IsEmpty reports whether L_ω(b) is empty.
func (b *Buchi) IsEmpty() bool {
	_, ok := b.AcceptingLasso()
	return !ok
}

// AcceptingLasso returns an ultimately periodic word accepted by b, or
// ok=false when the language is empty. The witness consists of a shortest
// path to an accepting state lying on a cycle, followed by a cycle
// through that state.
func (b *Buchi) AcceptingLasso() (word.Lasso, bool) {
	n := b.NumStates()
	g := b.compiled().graph()
	reach := graph.ReachableCSR(g, b.initialInts())
	comps := graph.SCCsCSR(g)
	compOf := graph.ComponentOf(n, comps)

	// Find a reachable accepting state inside a nontrivial SCC.
	target := -1
	for _, c := range comps {
		if graph.IsTrivialSCCCSR(c, g) {
			continue
		}
		for _, v := range c {
			if reach[v] && b.accepting[v] {
				target = v
				break
			}
		}
		if target >= 0 {
			break
		}
	}
	if target < 0 {
		return word.Lasso{}, false
	}

	prefix, _ := b.pathWord(b.initial, func(v State) bool { return int(v) == target }, nil)
	// Cycle: shortest nonempty path from target back to target within its SCC.
	inSCC := func(v State) bool { return compOf[v] == compOf[target] }
	var starts []State
	var startSyms []alphabet.Symbol
	for sym, ts := range b.trans[target] {
		for _, t := range ts {
			if inSCC(t) {
				starts = append(starts, t)
				startSyms = append(startSyms, sym)
			}
		}
	}
	// BFS from each first-step successor; take the first (shortest overall
	// is not required, any cycle suffices).
	for i, s := range starts {
		if s == State(target) {
			return word.MustLasso(prefix, word.Word{startSyms[i]}), true
		}
	}
	for i, s := range starts {
		rest, ok := b.pathWord([]State{s}, func(v State) bool { return int(v) == target }, inSCC)
		if ok {
			loop := append(word.Word{startSyms[i]}, rest...)
			return word.MustLasso(prefix, loop), true
		}
	}
	return word.Lasso{}, false
}

// pathWord returns the label word of a shortest path from any of the
// sources to a goal state, restricted to states satisfying within (nil
// means unrestricted). ok is false when no goal is reachable.
func (b *Buchi) pathWord(sources []State, goal func(State) bool, within func(State) bool) (word.Word, bool) {
	type entry struct {
		s      State
		parent int32
		sym    alphabet.Symbol
	}
	c := b.compiled()
	var queue []entry
	seen := make([]bool, b.NumStates())
	for _, s := range sources {
		if within != nil && !within(s) {
			continue
		}
		if !seen[s] {
			seen[s] = true
			queue = append(queue, entry{s: s, parent: -1})
		}
	}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if goal(cur.s) {
			var w word.Word
			for j := int32(i); queue[j].parent != -1; j = queue[j].parent {
				w = append(w, queue[j].sym)
			}
			for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
				w[l], w[r] = w[r], w[l]
			}
			return w, true
		}
		for sym := 1; sym <= c.syms; sym++ {
			for _, t := range c.row(cur.s, alphabet.Symbol(sym)) {
				t := State(t)
				if within != nil && !within(t) {
					continue
				}
				if !seen[t] {
					seen[t] = true
					queue = append(queue, entry{s: t, parent: int32(i), sym: alphabet.Symbol(sym)})
				}
			}
		}
	}
	return nil, false
}

// PrefixNFA returns an NFA for pre(L_ω(b)), the finite prefixes of
// accepted ω-words: reduce, then accept every finite path.
func (b *Buchi) PrefixNFA() *nfa.NFA {
	r := b.Reduce()
	a := r.ToNFA()
	return a.MarkAllAccepting()
}

// Intersect returns a Büchi automaton for L_ω(a) ∩ L_ω(c) using the
// standard two-track product. When either operand has every state
// accepting (a "safety" automaton), the plain product is used instead.
func Intersect(a, c *Buchi) *Buchi {
	out, _ := IntersectCtx(nil, a, c)
	return out
}

// IntersectCtx is Intersect with a cooperative cancellation checkpoint
// inside the product-construction loop: the product of two automata is
// quadratic in their sizes, and a context deadline must be able to stop
// it mid-build. A nil ctx never cancels.
func IntersectCtx(ctx context.Context, a, c *Buchi) (*Buchi, error) {
	if a.allAccepting() || c.allAccepting() {
		return plainProductCtx(ctx, a, c)
	}
	out := New(a.ab)
	ca, cc := a.compiled(), c.compiled()
	type key struct {
		x, y  State
		track uint8
	}
	index := map[key]State{}
	var queue []key
	intern := func(k key) State {
		if s, ok := index[k]; ok {
			return s
		}
		s := out.AddState(k.track == 1 && c.accepting[k.y])
		index[k] = s
		queue = append(queue, k)
		return s
	}
	for _, x := range a.initial {
		for _, y := range c.initial {
			out.SetInitial(intern(key{x, y, 0}))
		}
	}
	syms := a.ab.Size()
	var tick interrupt.Tick
	for qi := 0; qi < len(queue); qi++ {
		if err := tick.Poll(ctx); err != nil {
			return nil, err
		}
		k := queue[qi]
		from := index[k]
		track := k.track
		if track == 0 && a.accepting[k.x] {
			track = 1
		} else if track == 1 && c.accepting[k.y] {
			track = 0
		}
		for sym := 1; sym <= syms; sym++ {
			xs := ca.row(k.x, alphabet.Symbol(sym))
			if len(xs) == 0 {
				continue
			}
			ys := cc.row(k.y, alphabet.Symbol(sym))
			for _, x := range xs {
				for _, y := range ys {
					out.addEdge(from, alphabet.Symbol(sym), intern(key{State(x), State(y), track}))
				}
			}
		}
	}
	return out, nil
}

func (b *Buchi) allAccepting() bool {
	for _, acc := range b.accepting {
		if !acc {
			return false
		}
	}
	return len(b.accepting) > 0
}

// plainProductCtx builds the synchronous product with conjunction of
// acceptance; correct when one operand accepts with every state. The
// construction loop polls ctx (nil never cancels).
func plainProductCtx(ctx context.Context, a, c *Buchi) (*Buchi, error) {
	out := New(a.ab)
	ca, cc := a.compiled(), c.compiled()
	type pair struct{ x, y State }
	index := map[pair]State{}
	var queue []pair
	intern := func(p pair) State {
		if s, ok := index[p]; ok {
			return s
		}
		s := out.AddState(a.accepting[p.x] && c.accepting[p.y])
		index[p] = s
		queue = append(queue, p)
		return s
	}
	for _, x := range a.initial {
		for _, y := range c.initial {
			out.SetInitial(intern(pair{x, y}))
		}
	}
	syms := a.ab.Size()
	var tick interrupt.Tick
	for qi := 0; qi < len(queue); qi++ {
		if err := tick.Poll(ctx); err != nil {
			return nil, err
		}
		p := queue[qi]
		from := index[p]
		for sym := 1; sym <= syms; sym++ {
			xs := ca.row(p.x, alphabet.Symbol(sym))
			if len(xs) == 0 {
				continue
			}
			ys := cc.row(p.y, alphabet.Symbol(sym))
			for _, x := range xs {
				for _, y := range ys {
					out.addEdge(from, alphabet.Symbol(sym), intern(pair{State(x), State(y)}))
				}
			}
		}
	}
	return out, nil
}

// Union returns a Büchi automaton for L_ω(a) ∪ L_ω(c) by disjoint union.
func Union(a, c *Buchi) *Buchi {
	out := a.Clone()
	offset := State(out.NumStates())
	for i := 0; i < c.NumStates(); i++ {
		out.AddState(c.accepting[i])
	}
	for i := range c.trans {
		for sym, ts := range c.trans[i] {
			for _, t := range ts {
				out.AddTransition(State(i)+offset, sym, t+offset)
			}
		}
	}
	for _, s := range c.initial {
		out.SetInitial(s + offset)
	}
	return out
}

// LassoAutomaton returns a Büchi automaton accepting exactly {l}.
func LassoAutomaton(ab *alphabet.Alphabet, l word.Lasso) *Buchi {
	b := New(ab)
	n := len(l.Prefix) + len(l.Loop)
	states := make([]State, n)
	for i := 0; i < n; i++ {
		states[i] = b.AddState(true)
	}
	for i, sym := range l.Prefix {
		if i+1 < n {
			b.AddTransition(states[i], sym, states[i+1])
		}
	}
	loopStart := states[len(l.Prefix)]
	for i, sym := range l.Loop {
		from := states[len(l.Prefix)+i]
		to := loopStart
		if len(l.Prefix)+i+1 < n {
			to = states[len(l.Prefix)+i+1]
		}
		if i == len(l.Loop)-1 {
			to = loopStart
		}
		b.AddTransition(from, sym, to)
	}
	b.SetInitial(states[0])
	return b
}

// AcceptsLasso reports whether b accepts the ultimately periodic word l,
// via on-the-fly emptiness of the product with the lasso automaton.
func (b *Buchi) AcceptsLasso(l word.Lasso) bool {
	return !IntersectEmpty(b, LassoAutomaton(b.ab, l))
}

// LimitOfPrefixClosed returns a Büchi automaton for lim(L(a)) where L(a)
// must be prefix-closed: trim to states with an infinite continuation and
// accept with every state. By König's lemma this accepts exactly the
// ω-words all of whose prefixes are in L(a).
func LimitOfPrefixClosed(a *nfa.NFA) (*Buchi, error) {
	if ok, w := a.IsPrefixClosed(); !ok {
		return nil, fmt.Errorf("buchi: language is not prefix-closed (witness prefix %v)", w)
	}
	return limitOfPrefixClosedUnchecked(a), nil
}

// LimitOfAllAccepting is LimitOfPrefixClosed for automata whose every
// state accepts — the shape produced by transition systems — where
// prefix-closure holds by construction and only the cheap structural
// check is needed.
func LimitOfAllAccepting(a *nfa.NFA) (*Buchi, error) {
	for i := 0; i < a.NumStates(); i++ {
		if !a.Accepting(nfa.State(i)) {
			return nil, fmt.Errorf("buchi: state %d is not accepting; use LimitOfPrefixClosed", i)
		}
	}
	return limitOfPrefixClosedUnchecked(a), nil
}

// limitOfPrefixClosedUnchecked is LimitOfPrefixClosed without the
// (expensive) prefix-closure validation.
func limitOfPrefixClosedUnchecked(a *nfa.NFA) *Buchi {
	// Trim copies, so an already ε-free automaton needs no RemoveEpsilon
	// clone first.
	e := a
	if e.HasEpsilon() {
		e = e.RemoveEpsilon()
	}
	e = e.Trim()
	// Remove dead ends — states with no successors cannot lie on an
	// infinite path — by an O(V+E) worklist on the compiled graph: track
	// each state's count of edges into still-alive states, and when one
	// drops to zero propagate through the reverse graph.
	n := e.NumStates()
	ce := e.Compiled()
	g := ce.Graph()
	rev := g.Reverse()
	alive := make([]bool, n)
	deg := make([]int32, n)
	var queue []int32
	for i := 0; i < n; i++ {
		alive[i] = true
		deg[i] = int32(len(g.Succ(i)))
		if deg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		alive[v] = false
		for _, u := range rev.Succ(int(v)) {
			deg[u]--
			if deg[u] == 0 && alive[u] {
				queue = append(queue, u)
			}
		}
	}
	b := New(a.Alphabet())
	keep := make([]State, n)
	for i := range keep {
		keep[i] = -1
	}
	for i := 0; i < n; i++ {
		if alive[i] {
			keep[i] = b.AddState(true)
		}
	}
	for i := 0; i < n; i++ {
		if keep[i] < 0 {
			continue
		}
		for _, sym := range e.Alphabet().Symbols() {
			for _, t := range ce.Row(nfa.State(i), sym) {
				if keep[t] >= 0 {
					b.AddTransition(keep[i], sym, keep[t])
				}
			}
		}
	}
	for _, s := range e.Initial() {
		if keep[s] >= 0 {
			b.SetInitial(keep[s])
		}
	}
	return b
}

// Limit returns a Büchi automaton for lim(L(a)) = {x | infinitely many
// prefixes of x are in L(a)} for an arbitrary regular L(a): determinize,
// then accept on visiting accepting DFA states infinitely often. This is
// sound because the run of a DFA over an ω-word is unique.
func Limit(a *nfa.NFA) *Buchi {
	d := a.Determinize()
	b := New(a.Alphabet())
	for i := 0; i < d.NumStates(); i++ {
		b.AddState(d.Accepting(nfa.State(i)))
	}
	for i := 0; i < d.NumStates(); i++ {
		for _, sym := range a.Alphabet().Symbols() {
			if t, ok := d.Delta(nfa.State(i), sym); ok {
				b.AddTransition(State(i), sym, State(t))
			}
		}
	}
	if d.Initial() >= 0 {
		b.SetInitial(State(d.Initial()))
	}
	return b
}

// Included reports whether L_ω(a) ⊆ L_ω(c), using rank-based
// complementation of c. On failure it returns an accepted
// counterexample lasso in L_ω(a) \ L_ω(c).
func Included(a, c *Buchi) (bool, word.Lasso, error) {
	comp, err := c.Complement()
	if err != nil {
		return false, word.Lasso{}, fmt.Errorf("inclusion check: %w", err)
	}
	l, ok := IntersectLasso(a, comp)
	if ok {
		return false, l, nil
	}
	return true, word.Lasso{}, nil
}

// String renders the automaton for debugging.
func (b *Buchi) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Buchi(%d states, initial %v)\n", b.NumStates(), b.initial)
	for i := range b.trans {
		mark := " "
		if b.accepting[i] {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s%d:", mark, i)
		syms := make([]alphabet.Symbol, 0, len(b.trans[i]))
		for sym := range b.trans[i] {
			syms = append(syms, sym)
		}
		sort.Slice(syms, func(x, y int) bool { return syms[x] < syms[y] })
		for _, sym := range syms {
			fmt.Fprintf(&sb, " %s->%v", b.ab.Name(sym), b.trans[i][sym])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
