package buchi

import (
	"relive/internal/alphabet"
	"relive/internal/graph"
)

// compiled is the CSR (compressed sparse row) form of a Büchi
// automaton: one flat successor array indexed by (state, symbol). It is
// built once per automaton — the Buchi caches it and invalidates the
// cache on AddState/AddTransition — and every hot algorithm (Reduce,
// AcceptingLasso, Intersect, the on-the-fly emptiness checks) walks it
// instead of the map-based transition tables. Büchi automata have no
// ε-transitions, so symbols are numbered 1..syms and row (s, sym) is
// s*syms + sym-1.
type compiled struct {
	n    int
	syms int
	off  []int32
	dst  []int32
	// stateOff[v] = off[v*syms]: rows of a state are contiguous, so the
	// symbol-blind adjacency is a reslice, not a copy.
	stateOff []int32
}

func compile(b *Buchi) *compiled {
	n := b.NumStates()
	syms := b.ab.Size()
	c := &compiled{n: n, syms: syms}
	c.off = make([]int32, n*syms+1)
	total := 0
	for s, m := range b.trans {
		for sym, ts := range m {
			c.off[s*syms+int(sym)] = int32(len(ts)) // row sym-1, stored at +1 for the prefix sum
			total += len(ts)
		}
	}
	for i := 1; i < len(c.off); i++ {
		c.off[i] += c.off[i-1]
	}
	c.dst = make([]int32, total)
	for s, m := range b.trans {
		for sym, ts := range m {
			base := c.off[s*syms+int(sym)-1]
			for i, t := range ts {
				c.dst[base+int32(i)] = int32(t)
			}
		}
	}
	c.stateOff = make([]int32, n+1)
	for v := 0; v <= n; v++ {
		c.stateOff[v] = c.off[v*syms]
	}
	return c
}

// compiled returns the cached CSR form, building it on first use. The
// shape checks guard against a stale cache: shared alphabets may grow
// after the automaton was compiled. The load/compile/store sequence is
// safe under concurrent readers: compile only reads the automaton, two
// racing compiles produce identical values, and the atomic store
// publishes a fully built form; whichever store lands last wins.
func (b *Buchi) compiled() *compiled {
	if c := b.csr.Load(); c != nil && c.n == len(b.accepting) && c.syms == b.ab.Size() {
		return c
	}
	c := compile(b)
	b.csr.Store(c)
	return c
}

// row returns the successors of s under sym as a shared int32 slice.
func (c *compiled) row(s State, sym alphabet.Symbol) []int32 {
	r := int(s)*c.syms + int(sym) - 1
	return c.dst[c.off[r]:c.off[r+1]]
}

// graph returns the symbol-blind adjacency for the graph algorithms.
func (c *compiled) graph() graph.CSR {
	return graph.CSR{Off: c.stateOff, Dst: c.dst}
}
