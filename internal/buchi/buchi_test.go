package buchi

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/genbase"
	"relive/internal/nfa"
	"relive/internal/word"
)

// infManyA returns a Büchi automaton over {a,b} accepting words with
// infinitely many a's.
func infManyA(ab *alphabet.Alphabet) *Buchi {
	b := New(ab)
	q0 := b.AddState(false)
	q1 := b.AddState(true)
	sa, sb := ab.Symbol("a"), ab.Symbol("b")
	b.AddTransition(q0, sb, q0)
	b.AddTransition(q0, sa, q1)
	b.AddTransition(q1, sa, q1)
	b.AddTransition(q1, sb, q0)
	b.SetInitial(q0)
	return b
}

// finManyA returns a Büchi automaton accepting words with finitely many
// a's (eventually only b's).
func finManyA(ab *alphabet.Alphabet) *Buchi {
	b := New(ab)
	q0 := b.AddState(false)
	q1 := b.AddState(true)
	sa, sb := ab.Symbol("a"), ab.Symbol("b")
	b.AddTransition(q0, sa, q0)
	b.AddTransition(q0, sb, q0)
	b.AddTransition(q0, sb, q1)
	b.AddTransition(q1, sb, q1)
	b.SetInitial(q0)
	return b
}

func lasso(ab *alphabet.Alphabet, prefix, loop string) word.Lasso {
	toWord := func(s string) word.Word {
		var w word.Word
		for _, r := range s {
			w = append(w, ab.Symbol(string(r)))
		}
		return w
	}
	return word.MustLasso(toWord(prefix), toWord(loop))
}

func TestAcceptsLasso(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	inf := infManyA(ab)
	fin := finManyA(ab)
	tests := []struct {
		prefix, loop string
		wantInf      bool
	}{
		{"", "a", true},
		{"", "b", false},
		{"ab", "ba", true},
		{"aaaa", "b", false},
		{"b", "ab", true},
	}
	for _, tc := range tests {
		l := lasso(ab, tc.prefix, tc.loop)
		if got := inf.AcceptsLasso(l); got != tc.wantInf {
			t.Errorf("infManyA accepts %s = %v, want %v", l.String(ab), got, tc.wantInf)
		}
		if got := fin.AcceptsLasso(l); got != !tc.wantInf {
			t.Errorf("finManyA accepts %s = %v, want %v", l.String(ab), got, !tc.wantInf)
		}
	}
}

func TestIsEmptyAndWitness(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	b := infManyA(ab)
	l, ok := b.AcceptingLasso()
	if !ok {
		t.Fatal("infManyA reported empty")
	}
	if !b.AcceptsLasso(l) {
		t.Errorf("witness %s not accepted by its own automaton", l.String(ab))
	}
	// Empty automaton: accepting state unreachable from a cycle.
	e := New(ab)
	q0 := e.AddState(false)
	q1 := e.AddState(true)
	e.AddTransition(q0, ab.Symbol("a"), q0) // cycle without acceptance
	e.AddTransition(q0, ab.Symbol("b"), q1) // accepting but no cycle
	e.SetInitial(q0)
	if !e.IsEmpty() {
		t.Error("automaton with acceptance off-cycle reported nonempty")
	}
}

func TestIntersect(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	inf := infManyA(ab)
	fin := finManyA(ab)
	both := Intersect(inf, fin)
	if !both.IsEmpty() {
		l, _ := both.AcceptingLasso()
		t.Errorf("inf∩fin nonempty: %s", l.String(ab))
	}
	// inf ∩ (words with infinitely many b's): (ab)^ω accepted.
	infB := New(ab)
	q0 := infB.AddState(false)
	q1 := infB.AddState(true)
	infB.AddTransition(q0, ab.Symbol("a"), q0)
	infB.AddTransition(q0, ab.Symbol("b"), q1)
	infB.AddTransition(q1, ab.Symbol("b"), q1)
	infB.AddTransition(q1, ab.Symbol("a"), q0)
	infB.SetInitial(q0)
	prod := Intersect(inf, infB)
	for _, tc := range []struct {
		prefix, loop string
		want         bool
	}{
		{"", "ab", true},
		{"", "a", false},
		{"", "b", false},
		{"bbb", "ba", true},
	} {
		l := lasso(ab, tc.prefix, tc.loop)
		if got := prod.AcceptsLasso(l); got != tc.want {
			t.Errorf("product accepts %s = %v, want %v", l.String(ab), got, tc.want)
		}
	}
}

func TestUnion(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	u := Union(infManyA(ab), finManyA(ab)) // should be Σ^ω
	for _, tc := range []struct{ prefix, loop string }{
		{"", "a"}, {"", "b"}, {"ab", "ab"}, {"bbb", "a"},
	} {
		l := lasso(ab, tc.prefix, tc.loop)
		if !u.AcceptsLasso(l) {
			t.Errorf("union rejects %s", l.String(ab))
		}
	}
}

func TestReducePreservesLanguage(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	b := infManyA(ab)
	// Add junk: a dead state reachable but unable to accept.
	dead := b.AddState(false)
	b.AddTransition(0, ab.Symbol("b"), dead)
	b.AddTransition(dead, ab.Symbol("b"), dead)
	r := b.Reduce()
	if r.NumStates() != 2 {
		t.Errorf("Reduce left %d states, want 2", r.NumStates())
	}
	for _, tc := range []struct {
		prefix, loop string
		want         bool
	}{
		{"", "a", true}, {"", "b", false}, {"ab", "ba", true},
	} {
		l := lasso(ab, tc.prefix, tc.loop)
		if got := r.AcceptsLasso(l); got != tc.want {
			t.Errorf("reduced accepts %s = %v, want %v", l.String(ab), got, tc.want)
		}
	}
}

func TestPrefixNFA(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	// Automaton accepting only a^ω from initial: pre = a*.
	b := New(ab)
	q0 := b.AddState(true)
	b.AddTransition(q0, ab.Symbol("a"), q0)
	b.AddTransition(q0, ab.Symbol("b"), b.AddState(false)) // dead branch
	b.SetInitial(q0)
	p := b.PrefixNFA()
	for _, tc := range []struct {
		w    string
		want bool
	}{
		{"", true}, {"a", true}, {"aaa", true}, {"b", false}, {"ab", false},
	} {
		var w word.Word
		for _, r := range tc.w {
			w = append(w, ab.Symbol(string(r)))
		}
		if got := p.Accepts(w); got != tc.want {
			t.Errorf("pre(a^ω) accepts %q = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestLimitOfPrefixClosed(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	// L = prefix language of (ab)*: words alternating starting with a.
	a := nfa.New(ab)
	q0 := a.AddState(true)
	q1 := a.AddState(true)
	a.AddTransition(q0, ab.Symbol("a"), q1)
	a.AddTransition(q1, ab.Symbol("b"), q0)
	a.SetInitial(q0)
	b, err := LimitOfPrefixClosed(a)
	if err != nil {
		t.Fatal(err)
	}
	if !b.AcceptsLasso(lasso(ab, "", "ab")) {
		t.Error("lim rejects (ab)^ω")
	}
	if b.AcceptsLasso(lasso(ab, "", "a")) {
		t.Error("lim accepts a^ω")
	}
	// Non-prefix-closed input must be rejected.
	bad := nfa.New(ab)
	p0 := bad.AddState(false)
	p1 := bad.AddState(true)
	bad.AddTransition(p0, ab.Symbol("a"), p1)
	bad.SetInitial(p0)
	if _, err := LimitOfPrefixClosed(bad); err == nil {
		t.Error("LimitOfPrefixClosed accepted a non-prefix-closed language")
	}
}

func TestLimitGeneral(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	// L = words ending in a: lim(L) = words with infinitely many a's.
	a := nfa.New(ab)
	q0 := a.AddState(false)
	q1 := a.AddState(true)
	for _, s := range []nfa.State{q0, q1} {
		a.AddTransition(s, ab.Symbol("a"), q1)
		a.AddTransition(s, ab.Symbol("b"), q0)
	}
	a.SetInitial(q0)
	b := Limit(a)
	ref := infManyA(ab)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		l := genbase.Lasso(rng, ab, 4, 3)
		if got, want := b.AcceptsLasso(l), ref.AcceptsLasso(l); got != want {
			t.Errorf("lim accepts %s = %v, want %v", l.String(ab), got, want)
		}
	}
}

func TestDropAcceptance(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	b := infManyA(ab).DropAcceptance()
	if !b.AcceptsLasso(lasso(ab, "", "b")) {
		t.Error("acceptance-free automaton rejects b^ω")
	}
}

func TestComplementSmall(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	inf := infManyA(ab)
	comp, err := inf.Complement()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		prefix, loop string
		inInf        bool
	}{
		{"", "a", true},
		{"", "b", false},
		{"ab", "ba", true},
		{"aaaa", "b", false},
		{"b", "ab", true},
		{"", "ab", true},
		{"ba", "bba", true},
	} {
		l := lasso(ab, tc.prefix, tc.loop)
		if got := comp.AcceptsLasso(l); got != !tc.inInf {
			t.Errorf("complement accepts %s = %v, want %v", l.String(ab), got, !tc.inInf)
		}
	}
	// comp ∩ inf must be empty.
	if !Intersect(comp, inf).IsEmpty() {
		t.Error("L ∩ complement(L) nonempty")
	}
}

func TestComplementEmptyAndUniversal(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	empty := New(ab)
	comp, err := empty.Complement()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		l := genbase.Lasso(rng, ab, 3, 3)
		if !comp.AcceptsLasso(l) {
			t.Errorf("complement of ∅ rejects %s", l.String(ab))
		}
	}
	u := UniversalAutomaton(ab)
	compU, err := u.Complement()
	if err != nil {
		t.Fatal(err)
	}
	if !compU.IsEmpty() {
		l, _ := compU.AcceptingLasso()
		t.Errorf("complement of Σ^ω accepts %s", l.String(ab))
	}
}

// TestQuickComplementPartition: on random Büchi automata, every sampled
// lasso is accepted by exactly one of the automaton and its complement.
func TestQuickComplementPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ab := genbase.Letters(2)
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(4)
		b := randomBuchi(rng, ab, n)
		comp, err := b.Complement()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 25; i++ {
			l := genbase.Lasso(rng, ab, 3, 3)
			inB := b.AcceptsLasso(l)
			inC := comp.AcceptsLasso(l)
			if inB == inC {
				t.Fatalf("trial %d: %s in both or neither (B=%v C=%v)\n%s", trial, l.String(ab), inB, inC, b)
			}
		}
		if !Intersect(b, comp).IsEmpty() {
			t.Fatalf("trial %d: L ∩ complement nonempty", trial)
		}
	}
}

func randomBuchi(rng *rand.Rand, ab *alphabet.Alphabet, n int) *Buchi {
	b := New(ab)
	for i := 0; i < n; i++ {
		b.AddState(rng.Float64() < 0.4)
	}
	for i := 0; i < n; i++ {
		for _, sym := range ab.Symbols() {
			for k := 0; k < 2; k++ {
				if rng.Float64() < 0.55 {
					b.AddTransition(State(i), sym, State(rng.Intn(n)))
				}
			}
		}
	}
	b.SetInitial(0)
	return b
}

func TestIncludedWitness(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	inf := infManyA(ab)
	uni := UniversalAutomaton(ab)
	ok, _, err := Included(inf, uni)
	if err != nil || !ok {
		t.Errorf("inf ⊆ Σ^ω = %v, %v", ok, err)
	}
	ok, l, err := Included(uni, inf)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Σ^ω ⊆ inf reported true")
	}
	if !uni.AcceptsLasso(l) || inf.AcceptsLasso(l) {
		t.Errorf("counterexample %s not in Σ^ω \\ inf", l.String(ab))
	}
}

func TestLassoAutomaton(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		l := genbase.Lasso(rng, ab, 3, 3)
		auto := LassoAutomaton(ab, l)
		if !auto.AcceptsLasso(l) {
			t.Fatalf("lasso automaton rejects its own word %s", l.String(ab))
		}
		other := genbase.Lasso(rng, ab, 3, 3)
		if got, want := auto.AcceptsLasso(other), other.Equal(l); got != want {
			t.Fatalf("lasso automaton for %s accepts %s = %v, want %v",
				l.String(ab), other.String(ab), got, want)
		}
	}
}

func TestFromNFARoundTrip(t *testing.T) {
	ab := alphabet.FromNames("a", "b")
	a := infManyA(ab).ToNFA()
	b, err := FromNFA(a)
	if err != nil {
		t.Fatal(err)
	}
	if !b.AcceptsLasso(lasso(ab, "", "a")) || b.AcceptsLasso(lasso(ab, "", "b")) {
		t.Error("FromNFA(ToNFA(b)) changed the ω-language")
	}
	eps := nfa.New(ab)
	q := eps.AddState(true)
	eps.AddTransition(q, alphabet.Epsilon, q)
	eps.SetInitial(q)
	if _, err := FromNFA(eps); err == nil {
		t.Error("FromNFA accepted an automaton with ε-transitions")
	}
}
