package buchi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relive/internal/genbase"
	"relive/internal/word"
)

// seedBuchi deterministically derives a small Büchi automaton from a
// seed, letting testing/quick explore automata through integers.
func seedBuchi(seed int64) *Buchi {
	rng := rand.New(rand.NewSource(seed))
	return randomBuchi(rng, genbase.Letters(2), 1+rng.Intn(4))
}

func seedLasso(seed int64) word.Lasso {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	return genbase.Lasso(rng, genbase.Letters(2), 3, 3)
}

// TestQuickIntersectCommutes: membership in A ∩ B and B ∩ A agree.
func TestQuickIntersectCommutes(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		a, b := seedBuchi(s1), seedBuchi(s2)
		l := seedLasso(s3)
		return Intersect(a, b).AcceptsLasso(l) == Intersect(b, a).AcceptsLasso(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectIsConjunction: x ∈ A ∩ B ⟺ x ∈ A and x ∈ B.
func TestQuickIntersectIsConjunction(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		a, b := seedBuchi(s1), seedBuchi(s2)
		l := seedLasso(s3)
		return Intersect(a, b).AcceptsLasso(l) == (a.AcceptsLasso(l) && b.AcceptsLasso(l))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionIsDisjunction: x ∈ A ∪ B ⟺ x ∈ A or x ∈ B.
func TestQuickUnionIsDisjunction(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		a, b := seedBuchi(s1), seedBuchi(s2)
		l := seedLasso(s3)
		return Union(a, b).AcceptsLasso(l) == (a.AcceptsLasso(l) || b.AcceptsLasso(l))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickReducePreservesMembership.
func TestQuickReducePreservesMembership(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := seedBuchi(s1)
		l := seedLasso(s2)
		return a.AcceptsLasso(l) == a.Reduce().AcceptsLasso(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickEmptinessConsistentWithWitness: nonempty automata accept
// their own witness; empty ones accept no sampled lasso.
func TestQuickEmptinessConsistentWithWitness(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := seedBuchi(s1)
		if l, ok := a.AcceptingLasso(); ok {
			return a.AcceptsLasso(l)
		}
		return !a.AcceptsLasso(seedLasso(s2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
