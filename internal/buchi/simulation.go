package buchi

// DirectSimulation computes the direct (strong) simulation preorder on
// the automaton's states as a greatest fixpoint: sim[p][q] means q
// direct-simulates p, i.e. q is accepting whenever p is, and every
// a-successor of p is direct-simulated by some a-successor of q.
// Quotienting by mutual direct simulation preserves the accepted
// ω-language, which makes it a safe reduction before the expensive
// constructions (products, complementation).
func (b *Buchi) DirectSimulation() [][]bool {
	n := b.NumStates()
	sim := make([][]bool, n)
	for p := 0; p < n; p++ {
		sim[p] = make([]bool, n)
		for q := 0; q < n; q++ {
			// Initial over-approximation: acceptance condition only.
			sim[p][q] = !b.accepting[p] || b.accepting[q]
		}
	}
	syms := b.ab.Symbols()
	for changed := true; changed; {
		changed = false
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if !sim[p][q] {
					continue
				}
				ok := true
				for _, a := range syms {
					for _, ps := range b.trans[p][a] {
						matched := false
						for _, qs := range b.trans[q][a] {
							if sim[ps][qs] {
								matched = true
								break
							}
						}
						if !matched {
							ok = false
							break
						}
					}
					if !ok {
						break
					}
				}
				if !ok {
					sim[p][q] = false
					changed = true
				}
			}
		}
	}
	return sim
}

// QuotientBySimulation merges states that mutually direct-simulate each
// other and drops transitions to simulation-dominated duplicates,
// returning a language-equivalent, usually smaller automaton.
func (b *Buchi) QuotientBySimulation() *Buchi {
	n := b.NumStates()
	if n == 0 {
		return b.Clone()
	}
	sim := b.DirectSimulation()
	// Representative per mutual-simulation class: the smallest index.
	rep := make([]int, n)
	for p := 0; p < n; p++ {
		rep[p] = p
		for q := 0; q < p; q++ {
			if sim[p][q] && sim[q][p] {
				rep[p] = rep[q]
				break
			}
		}
	}
	out := New(b.ab)
	newID := make([]State, n)
	for i := range newID {
		newID[i] = -1
	}
	for p := 0; p < n; p++ {
		if rep[p] == p {
			newID[p] = out.AddState(b.accepting[p])
		}
	}
	for p := 0; p < n; p++ {
		if rep[p] != p {
			continue
		}
		for sym, ts := range b.trans[p] {
			// Keep only simulation-maximal targets: if t1 is simulated by
			// a distinct sibling t2, the edge to t1 is redundant.
			var keep []State
			for _, t := range ts {
				dominated := false
				for _, u := range ts {
					if rep[u] == rep[t] {
						continue
					}
					if sim[t][u] {
						dominated = true
						break
					}
				}
				if !dominated {
					keep = append(keep, t)
				}
			}
			for _, t := range keep {
				out.AddTransition(newID[p], sym, newID[rep[t]])
			}
		}
	}
	for _, s := range b.initial {
		out.SetInitial(newID[rep[s]])
	}
	return out.Reduce()
}
