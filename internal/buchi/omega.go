package buchi

import (
	"fmt"

	"relive/internal/alphabet"
	"relive/internal/nfa"
)

// OmegaConcat returns a Büchi automaton for U·V^ω, where U = L(prefix)
// and V = L(loop) are regular languages of finite words. V must not
// contain the empty word (V^ω would be ill-defined); U may.
//
// Construction: an "anchor" state marks the seam between consecutive
// V-words. The anchor simulates V's initial states; any transition of V
// into an accepting state may instead re-enter the anchor, and any
// transition of U into an accepting state may enter the anchor to start
// the loop. The anchor is the only Büchi-accepting state, so accepted
// runs cross a seam infinitely often, decomposing the word as u·v₁·v₂⋯
// with u ∈ U and vᵢ ∈ V.
func OmegaConcat(prefix, loop *nfa.NFA) (*Buchi, error) {
	u, v := prefix, loop
	if u.HasEpsilon() {
		u = u.RemoveEpsilon()
	}
	if v.HasEpsilon() {
		v = v.RemoveEpsilon()
	}
	u, v = u.Trim(), v.Trim()
	if v.Accepts(nil) {
		return nil, fmt.Errorf("buchi: loop language contains ε; V^ω is ill-defined")
	}
	if v.IsEmpty() || u.IsEmpty() {
		return New(u.Alphabet()), nil // U·V^ω is empty
	}
	ab := u.Alphabet()
	b := New(ab)
	// States: u-states, then v-states, then the anchor.
	uBase := 0
	for i := 0; i < u.NumStates(); i++ {
		b.AddState(false)
	}
	vBase := u.NumStates()
	for i := 0; i < v.NumStates(); i++ {
		b.AddState(false)
	}
	anchor := b.AddState(true)

	vAccepting := func(s nfa.State) bool { return v.Accepting(s) }
	// U-internal transitions, plus seam entry on transitions into
	// accepting U-states.
	for i := 0; i < u.NumStates(); i++ {
		for _, sym := range ab.Symbols() {
			for _, t := range u.Succ(nfa.State(i), sym) {
				b.AddTransition(State(uBase+i), sym, State(uBase+int(t)))
				if u.Accepting(t) {
					b.AddTransition(State(uBase+i), sym, anchor)
				}
			}
		}
	}
	// V-internal transitions plus seams.
	addVStep := func(from State, sym alphabet.Symbol, t nfa.State) {
		b.AddTransition(from, sym, State(vBase+int(t)))
		if vAccepting(t) {
			b.AddTransition(from, sym, anchor)
		}
	}
	for i := 0; i < v.NumStates(); i++ {
		for _, sym := range ab.Symbols() {
			for _, t := range v.Succ(nfa.State(i), sym) {
				addVStep(State(vBase+i), sym, t)
			}
		}
	}
	// Anchor simulates V's initial states.
	for _, init := range v.Initial() {
		for _, sym := range ab.Symbols() {
			for _, t := range v.Succ(init, sym) {
				addVStep(anchor, sym, t)
			}
		}
	}
	// Initial states: U's initials; the anchor too when ε ∈ U.
	for _, init := range u.Initial() {
		b.SetInitial(State(uBase + int(init)))
		if u.Accepting(init) {
			b.SetInitial(anchor)
		}
	}
	return b, nil
}
