package graph

import (
	"context"
	"errors"
	"testing"
)

// The BFS loops poll their context once every 1<<10 iterations
// (internal/interrupt), so the cancellation tests need graphs whose
// traversal runs well past that.
const ctxLineLen = 5000

func lineSucc(n int) Succ {
	return func(v int) []int {
		if v+1 < n {
			return []int{v + 1}
		}
		return nil
	}
}

func lineCSR(n int) CSR {
	off := make([]int32, n+1)
	var dst []int32
	for v := 0; v < n; v++ {
		off[v] = int32(len(dst))
		if v+1 < n {
			dst = append(dst, int32(v+1))
		}
	}
	off[n] = int32(len(dst))
	return CSR{Off: off, Dst: dst}
}

func TestReachableCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seen, err := ReachableCtx(ctx, ctxLineLen, []int{0}, lineSucc(ctxLineLen))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen != nil {
		t.Fatal("cancelled traversal returned a partial result")
	}
}

func TestReachableCtxNilAndLive(t *testing.T) {
	want := Reachable(ctxLineLen, []int{0}, lineSucc(ctxLineLen))
	for _, ctx := range []context.Context{nil, context.Background()} {
		seen, err := ReachableCtx(ctx, ctxLineLen, []int{0}, lineSucc(ctxLineLen))
		if err != nil {
			t.Fatalf("ctx=%v: %v", ctx, err)
		}
		for v := range want {
			if seen[v] != want[v] {
				t.Fatalf("ctx=%v: seen[%d] = %v, want %v", ctx, v, seen[v], want[v])
			}
		}
	}
}

func TestReachableCSRCtxCancelled(t *testing.T) {
	g := lineCSR(ctxLineLen)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReachableCSRCtx(ctx, g, []int{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	seen, err := ReachableCSRCtx(nil, g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("state %d unreachable in line graph", v)
		}
	}
}
